// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. One
// benchmark iteration regenerates one full figure at the paper's scale
// (models, batch sizes, Table 2 system); a session cache inside each
// benchmark makes b.N > 1 iterations cheap.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=Figure11.
package g10sim

import (
	"fmt"
	"testing"

	"g10sim/internal/experiments"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

func benchFigure[T any](b *testing.B, f func(*experiments.Session) ([]T, error), modelSubset ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// A fresh session per iteration keeps ns/op honest: the session
		// caches runs, so reusing one would make iterations 2+ nearly free.
		s := experiments.NewSession(experiments.Options{Models: modelSubset})
		if _, err := f(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §3 characterisation ---

func BenchmarkFigure2Characterization(b *testing.B) { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3InactivePeriods(b *testing.B)  { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4SizeVsDuration(b *testing.B)   { benchFigure(b, experiments.Figure4) }

// --- §7 end-to-end evaluation (Table 2 system, paper batch sizes) ---

func BenchmarkFigure11EndToEnd(b *testing.B)       { benchFigure(b, experiments.Figure11) }
func BenchmarkFigure12Breakdown(b *testing.B)      { benchFigure(b, experiments.Figure12) }
func BenchmarkFigure13KernelSlowdown(b *testing.B) { benchFigure(b, experiments.Figure13) }
func BenchmarkFigure14Traffic(b *testing.B)        { benchFigure(b, experiments.Figure14) }
func BenchmarkFigure15BatchSweep(b *testing.B)     { benchFigure(b, experiments.Figure15) }
func BenchmarkFigure16HostMemory(b *testing.B)     { benchFigure(b, experiments.Figure16) }
func BenchmarkFigure17HostPolicies(b *testing.B)   { benchFigure(b, experiments.Figure17) }
func BenchmarkFigure18SSDBandwidth(b *testing.B)   { benchFigure(b, experiments.Figure18) }
func BenchmarkFigure19ProfilingError(b *testing.B) { benchFigure(b, experiments.Figure19) }
func BenchmarkSSDLifetime(b *testing.B)            { benchFigure(b, experiments.SSDLifetime) }

// --- component benchmarks ---

// BenchmarkPlannerAlgorithm1 measures the smart eviction scheduler alone on
// the heaviest workload (SENet154 at the paper's batch size).
func BenchmarkPlannerAlgorithm1(b *testing.B) {
	spec, err := models.ByName("SENet154")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build(spec.PaperBatch)
	tr := profile.Profile(g, profile.A100(spec.TimeScale))
	a := vitality.MustAnalyze(g, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := planner.New(a, planner.Default())
		if len(plan.Decisions) == 0 {
			b.Fatal("no decisions")
		}
	}
}

// BenchmarkVitalityAnalysis measures §4.2 alone.
func BenchmarkVitalityAnalysis(b *testing.B) {
	spec, err := models.ByName("ResNet152")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build(spec.PaperBatch)
	tr := profile.Profile(g, profile.A100(spec.TimeScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vitality.Analyze(g, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphConstruction measures the model zoo builders.
func BenchmarkGraphConstruction(b *testing.B) {
	for _, name := range models.Names() {
		spec, _ := models.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec.Build(spec.PaperBatch)
			}
		})
	}
}

// BenchmarkSimulateG10 measures one full runtime simulation.
func BenchmarkSimulateG10(b *testing.B) {
	w, err := BuildModel("ResNet152", 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(w, "G10", cfg)
		if err != nil || rep.Failed {
			b.Fatalf("%v %v", err, rep.FailReason)
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---

// ablationConfig is a mid-pressure BERT scenario shared by the ablations.
func ablationAnalysis(b *testing.B) *vitality.Analysis {
	b.Helper()
	spec, err := models.ByName("BERT")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build(spec.PaperBatch)
	tr := profile.Profile(g, profile.A100(spec.TimeScale))
	return vitality.MustAnalyze(g, tr)
}

// BenchmarkAblationHostSpill contrasts the planner with and without the
// host-memory destination (G10 vs G10-GDS in Fig. 11): the report lines
// show the planned peak pressure each achieves.
func BenchmarkAblationHostSpill(b *testing.B) {
	a := ablationAnalysis(b)
	for _, useHost := range []bool{true, false} {
		name := "ssd-only"
		if useHost {
			name = "host+ssd"
		}
		b.Run(name, func(b *testing.B) {
			cfg := planner.Default()
			cfg.UseHost = useHost
			var residual units.Bytes
			for i := 0; i < b.N; i++ {
				residual = planner.New(a, cfg).ResidualOverflow
			}
			b.ReportMetric(residual.GiB(), "residual-GB")
		})
	}
}

// BenchmarkAblationCandidateRanking contrasts Algorithm 1's benefit/cost
// ranking against a naive largest-tensor-first eviction order, measuring
// residual pressure after the same number of decisions.
func BenchmarkAblationCandidateRanking(b *testing.B) {
	a := ablationAnalysis(b)
	// Benefit/cost ranking (the paper's Algorithm 1).
	b.Run("benefit-cost", func(b *testing.B) {
		var traffic units.Bytes
		for i := 0; i < b.N; i++ {
			p := planner.New(a, planner.Default())
			traffic = p.PlannedSSDBytes + p.PlannedHostBytes
		}
		b.ReportMetric(traffic.GiB(), "planned-GB")
	})
	// Degenerate ranking: an (almost) zero-capacity GPU forces the
	// scheduler to take every candidate, approximating unranked greedy
	// selection; the extra planned traffic is the cost of not ranking.
	b.Run("take-everything", func(b *testing.B) {
		cfg := planner.Default()
		cfg.GPUCapacity = a.PeakActive() + units.GB
		var traffic units.Bytes
		for i := 0; i < b.N; i++ {
			p := planner.New(a, cfg)
			traffic = p.PlannedSSDBytes + p.PlannedHostBytes
		}
		b.ReportMetric(traffic.GiB(), "planned-GB")
	})
}

// BenchmarkAblationEagerPrefetch quantifies §4.4's eager prefetching: the
// fraction of prefetches the scheduler managed to move earlier than their
// latest-safe boundary (what makes Fig. 19 flat).
func BenchmarkAblationEagerPrefetch(b *testing.B) {
	a := ablationAnalysis(b)
	var moved, total int
	for i := 0; i < b.N; i++ {
		p := planner.New(a, planner.Default())
		moved, total = 0, 0
		for _, d := range p.Decisions {
			total++
			latest := d.Period.NextUse
			if d.PrefetchBoundary < latest-1 {
				moved++
			}
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(moved)/float64(total), "%-moved-earlier")
	}
}

// BenchmarkAblationGCOverprovision measures sustained write amplification
// at different SSD overprovisioning ratios under fragmented churn.
func BenchmarkAblationGCOverprovision(b *testing.B) {
	for _, op := range []float64{0.07, 0.15, 0.30} {
		b.Run(opName(op), func(b *testing.B) {
			var wa float64
			for i := 0; i < b.N; i++ {
				wa = churnWA(b, op)
			}
			b.ReportMetric(wa, "write-amp")
		})
	}
}

func opName(op float64) string { return fmt.Sprintf("op=%.0f%%", op*100) }

func churnWA(b *testing.B, op float64) float64 {
	b.Helper()
	cfg := benchSSDConfig()
	cfg.OverProvision = op
	dev, err := benchSSDNew(cfg)
	if err != nil {
		b.Fatal(err)
	}
	logical := int64(cfg.Capacity / cfg.PageSize)
	n := logical * 9 / 10
	r, err := dev.Alloc(n)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Write(r); err != nil {
		b.Fatal(err)
	}
	// Deterministic fragmented overwrites.
	state := int64(12345)
	for i := int64(0); i < 8*n/16; i++ {
		state = (state*6364136223846793005 + 1442695040888963407) % (n - 16)
		off := state
		if off < 0 {
			off = -off
		}
		if _, err := dev.Write(benchRange(r.Start+off%(n-16), 16)); err != nil {
			b.Fatal(err)
		}
	}
	return dev.WriteAmplification()
}

// BenchmarkMultiGPU regenerates the §6 multi-GPU extension study
// (co-simulation plus the legacy static-share comparison).
func BenchmarkMultiGPU(b *testing.B) { benchFigure(b, experiments.MultiGPU) }

// BenchmarkColocate regenerates the heterogeneous co-location study on the
// cluster engine.
func BenchmarkColocate(b *testing.B) { benchFigure(b, experiments.Colocate) }

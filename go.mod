module g10sim

go 1.24

// Package g10sim is a from-scratch reproduction of G10 (Zhang et al.,
// MICRO 2023): a unified GPU memory and storage architecture that scales
// GPU memory with flash while hiding migration latency behind compiler-
// planned smart tensor migrations.
//
// The package exposes the end-to-end pipeline the paper describes:
//
//	workload, _ := g10sim.BuildModel("BERT", 256)      // dataflow graph + profiled trace
//	report, _ := g10sim.Simulate(workload, "G10", g10sim.DefaultConfig())
//	fmt.Printf("%.1f%% of ideal\n", 100*report.NormalizedPerf)
//
// Under the hood this runs tensor vitality analysis (§4.2), the smart
// migration scheduler (§4.3–4.4, Algorithm 1), and an event-driven
// execution simulation over a PCIe/SSD/host bandwidth model, a flash FTL
// with garbage collection, and an extended-UVM page table. Custom models
// can be supplied through NewGraphBuilder.
package g10sim

import (
	"fmt"
	"sort"

	"g10sim/internal/adapt"
	"g10sim/internal/dnn"
	"g10sim/internal/experiments"
	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/policy"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// Policies lists the migration policies available to Simulate, in the
// paper's presentation order, plus "Ideal".
func Policies() []string {
	return append([]string{"Ideal"}, experiments.PolicyNames...)
}

// Models lists the built-in workloads of the paper's Table 1.
func Models() []string { return models.Names() }

// Config is the simulated system configuration (Table 2 defaults).
type Config struct {
	GPUMemoryGB       float64 // on-board HBM capacity (default 40)
	HostMemoryGB      float64 // host DRAM available for migrations (default 128)
	PCIeBandwidthGBps float64 // per-direction GPU link bandwidth (default 15.754)
	SSDReadGBps       float64 // sustained flash read bandwidth (default 3.2)
	SSDWriteGBps      float64 // sustained flash write bandwidth (default 3.0)
	SSDCapacityGB     float64 // flash capacity (default 3200)
	Iterations        int     // training iterations; the last is measured (default 2)

	// Adaptive attaches the online replanning layer to the G10 policies:
	// each iteration the runtime folds the observed migration lateness
	// (realized vs exclusive-bandwidth transfer times) into an EMA and
	// re-times the next iteration's pre-eviction/prefetch instructions —
	// earlier prefetch issue under contention, deferred eviction when the
	// device is idle. Reactive policies are unaffected, and an uncontended
	// adaptive run is bit-identical to the static plan.
	Adaptive bool
}

// DefaultConfig returns the paper's Table 2 testbed.
func DefaultConfig() Config {
	return Config{
		GPUMemoryGB:       40,
		HostMemoryGB:      128,
		PCIeBandwidthGBps: 15.754,
		SSDReadGBps:       3.2,
		SSDWriteGBps:      3.0,
		SSDCapacityGB:     3200,
		Iterations:        2,
	}
}

func (c Config) toInternal() gpu.Config {
	cfg := gpu.Default()
	if c.GPUMemoryGB > 0 {
		cfg.GPUCapacity = units.Bytes(c.GPUMemoryGB * float64(units.GB))
	}
	cfg.HostCapacity = units.Bytes(c.HostMemoryGB * float64(units.GB))
	if c.PCIeBandwidthGBps > 0 {
		cfg.PCIeBandwidth = units.GBps(c.PCIeBandwidthGBps)
	}
	if c.SSDReadGBps > 0 {
		cfg.SSD.ReadBandwidth = units.GBps(c.SSDReadGBps)
	}
	if c.SSDWriteGBps > 0 {
		cfg.SSD.WriteBandwidth = units.GBps(c.SSDWriteGBps)
	}
	if c.SSDCapacityGB > 0 {
		cfg.SSD.Capacity = units.Bytes(c.SSDCapacityGB * float64(units.GB))
	}
	if c.Iterations > 0 {
		cfg.Iterations = c.Iterations
	}
	return cfg
}

// Workload is an analyzed training iteration: the dataflow graph, its
// profiled kernel trace, and the tensor vitality analysis.
type Workload struct {
	analysis *vitality.Analysis
}

// BuildModel constructs a built-in workload at the given batch size
// (batch <= 0 selects the paper's evaluation batch).
func BuildModel(name string, batch int) (*Workload, error) {
	spec, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	g := spec.Build(batch)
	tr := profile.Profile(g, profile.A100(spec.TimeScale))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		return nil, err
	}
	return &Workload{analysis: a}, nil
}

// Summary reports headline workload statistics.
type Summary struct {
	Model           string
	Batch           int
	Kernels         int
	Tensors         int
	FootprintGB     float64 // total tensor bytes (the paper's M)
	PeakAliveGB     float64 // peak no-migration memory pressure
	MaxWorkingSetGB float64 // largest single-kernel working set
	IdealSeconds    float64 // stall-free iteration time
	InactivePeriods int
}

// Summary computes workload statistics.
func (w *Workload) Summary() Summary {
	g := w.analysis.Graph
	return Summary{
		Model:           g.Name,
		Batch:           g.Batch,
		Kernels:         len(g.Kernels),
		Tensors:         len(g.Tensors),
		FootprintGB:     g.Footprint().GiB(),
		PeakAliveGB:     w.analysis.PeakAlive().GiB(),
		MaxWorkingSetGB: g.MaxWorkingSet().GiB(),
		IdealSeconds:    w.analysis.Trace.Total().Seconds(),
		InactivePeriods: len(w.analysis.Periods),
	}
}

// Report is the outcome of one simulated run.
type Report struct {
	Model  string
	Batch  int
	Policy string

	IterationSeconds float64
	IdealSeconds     float64
	NormalizedPerf   float64 // ideal/iteration (1.0 = ideal)
	Throughput       float64 // examples per second
	StallSeconds     float64

	GPUToSSDGB  float64
	SSDToGPUGB  float64
	GPUToHostGB float64
	HostToGPUGB float64

	Faults             int64
	WriteAmplification float64
	SSDLifetimeYears   float64 // at the measured flash write rate

	Failed     bool
	FailReason string

	// Fault-injection accounting (cluster runs with ClusterConfig.Faults):
	// crash recoveries, simulated progress lost to them, and the durable
	// checkpoint traffic the job's recovery policy wrote to flash.
	Restarts         int
	WastedSeconds    float64
	CheckpointGB     float64
	CheckpointWrites int
}

// Simulate runs the workload under the named policy.
func Simulate(w *Workload, policyName string, cfg Config) (Report, error) {
	pol, err := newPolicy(policyName, cfg.Adaptive)
	if err != nil {
		return Report{}, err
	}
	icfg := tenantConfig(cfg.toInternal(), policyName)
	res, err := gpu.Run(gpu.RunParams{Analysis: w.analysis, Policy: pol, Config: icfg})
	if err != nil {
		return Report{}, err
	}
	return reportFrom(res, icfg), nil
}

// tenantConfig applies per-policy config overrides: the Ideal bound runs
// with effectively infinite GPU memory (one definition, in internal/policy).
func tenantConfig(icfg gpu.Config, policyName string) gpu.Config {
	if policyName == "Ideal" {
		icfg = policy.IdealConfig(icfg)
	}
	return icfg
}

// newPolicy constructs the named policy, attaching the online replanning
// controller when adaptive is set (planning G10 variants only; the
// reactive baselines have no instrumented program to re-time).
func newPolicy(policyName string, adaptive bool) (gpu.Policy, error) {
	pol, err := experiments.NewPolicy(policyName)
	if err != nil {
		return nil, err
	}
	if adaptive {
		pol = policy.Adaptive(pol, adapt.Config{})
	}
	return pol, nil
}

// reportFrom converts an internal result to the public report.
func reportFrom(res gpu.Result, icfg gpu.Config) Report {
	var rate units.Bandwidth
	if res.IterationTime > 0 {
		rate = units.Bandwidth(float64(res.GPUToSSD) / res.IterationTime.Seconds())
	}
	return Report{
		Model:              res.Model,
		Batch:              res.Batch,
		Policy:             res.Policy,
		IterationSeconds:   res.IterationTime.Seconds(),
		IdealSeconds:       res.IdealTime.Seconds(),
		NormalizedPerf:     res.NormalizedPerf(),
		Throughput:         res.Throughput(),
		StallSeconds:       res.StallTime.Seconds(),
		GPUToSSDGB:         res.GPUToSSD.GiB(),
		SSDToGPUGB:         res.SSDToGPU.GiB(),
		GPUToHostGB:        res.GPUToHost.GiB(),
		HostToGPUGB:        res.HostToGPU.GiB(),
		Faults:             res.Faults,
		WriteAmplification: res.WriteAmp,
		SSDLifetimeYears:   icfg.SSD.LifetimeYears(rate),
		Failed:             res.Failed,
		FailReason:         res.FailReason,
		Restarts:           res.Restarts,
		WastedSeconds:      res.WastedTime.Seconds(),
		CheckpointGB:       res.CheckpointBytes.GiB(),
		CheckpointWrites:   res.CheckpointWrites,
	}
}

// ClusterJob is one tenant of a shared-device co-simulation: a workload
// plus the policy driving its migrations.
type ClusterJob struct {
	Workload *Workload
	Policy   string
	// ArrivalSeconds admits the job mid-simulation: it joins the shared
	// substrate when the cluster clock reaches this value (0 = present
	// from the start), seeding its weights into whatever host and flash
	// space the already-running jobs have left.
	ArrivalSeconds float64
	// Recovery selects how the job resumes after an injected server crash:
	// "restart" (or empty — lose all progress) or "checkpoint" (periodic
	// flash snapshots; resume from the last completed one). Only meaningful
	// when ClusterConfig.Faults schedules crashes.
	Recovery string
}

// ClusterConfig sizes a co-simulation. The embedded Config's per-GPU fields
// (GPU memory, PCIe bandwidth, iterations) apply to every tenant; its SSD
// and host-memory fields describe the single array and host pool all
// tenants share.
type ClusterConfig struct {
	Config
	// SSDs is the number of drives in the shared array (default 1); the
	// array's bandwidth and capacity scale linearly with it.
	SSDs int
	// Shards splits the co-simulation across that many shard workers,
	// advancing independent scheduler state concurrently. The report is
	// byte-identical at any shard count; <= 1 runs sequentially.
	Shards int
	// Faults injects a deterministic fault schedule — server crashes, PCIe
	// link degradation windows, flash die failures. nil injects nothing.
	Faults *FaultPlan
	// CheckpointEvery fixes the snapshot cadence (iterations) for jobs with
	// Recovery "checkpoint"; 0 derives the Young/Daly optimum from the
	// schedule's MTBF.
	CheckpointEvery int
}

// ServerCrash kills one job's server AtSeconds into the run. RepairSeconds
// later the server is rebuilt and the job re-admitted (from scratch or its
// last checkpoint, per ClusterJob.Recovery); Permanent crashes never repair
// and the job fails.
type ServerCrash struct {
	Job           int
	AtSeconds     float64
	RepairSeconds float64
	Permanent     bool
}

// LinkDegrade multiplies one job's PCIe bandwidth by Factor over
// [FromSeconds, UntilSeconds) — a flaky or contended link.
type LinkDegrade struct {
	Job          int
	FromSeconds  float64
	UntilSeconds float64
	Factor       float64
}

// DieFailure removes Dies flash dies from the shared array AtSeconds into
// the run, shrinking its effective bandwidth and remaining capacity.
type DieFailure struct {
	AtSeconds float64
	Dies      int
}

// FaultPlan is a deterministic fault schedule for one cluster run.
type FaultPlan struct {
	Crashes  []ServerCrash
	Degrades []LinkDegrade
	DieFails []DieFailure
}

// toInternal converts the seconds-based public plan to simulator time.
func (p *FaultPlan) toInternal() *gpu.FaultPlan {
	if p == nil {
		return nil
	}
	sec := float64(units.Second)
	out := &gpu.FaultPlan{}
	for _, c := range p.Crashes {
		repair := units.Duration(c.RepairSeconds * sec)
		if c.Permanent {
			repair = -1
		}
		out.Crashes = append(out.Crashes, gpu.CrashFault{
			Tenant: c.Job, At: units.Time(c.AtSeconds * sec), RepairAfter: repair,
		})
	}
	for _, d := range p.Degrades {
		out.Degrades = append(out.Degrades, gpu.LinkDegrade{
			Tenant: d.Job, From: units.Time(d.FromSeconds * sec),
			Until: units.Time(d.UntilSeconds * sec), Factor: d.Factor,
		})
	}
	for _, f := range p.DieFails {
		out.DieFails = append(out.DieFails, gpu.DieFail{At: units.Time(f.AtSeconds * sec), Dies: f.Dies})
	}
	return out
}

// JobSpan is one job's admission and completion times on the cluster
// clock.
type JobSpan struct {
	ArrivalSeconds float64
	FinishSeconds  float64
}

// ClusterReport is the outcome of one co-simulation.
type ClusterReport struct {
	// Jobs holds each tenant's report in input order. A job's SSD traffic
	// and write amplification are its attributed share of the shared array.
	Jobs []Report
	// Spans holds each job's arrival and finish times in input order.
	Spans []JobSpan

	// MakespanSeconds is when the last job finished.
	MakespanSeconds float64
	// AggregateThroughput sums the jobs' examples/second.
	AggregateThroughput float64
	// ArrayWriteGB is the total host-write volume the shared array
	// absorbed; ArrayWriteAmplification its array-level WA.
	ArrayWriteGB            float64
	ArrayWriteAmplification float64
}

// SimulateCluster co-simulates every job on one shared flash array, host
// memory pool, and clock — true shared-device contention, unlike a static
// bandwidth split. A one-job cluster reproduces Simulate exactly.
func SimulateCluster(jobs []ClusterJob, ccfg ClusterConfig) (ClusterReport, error) {
	if len(jobs) == 0 {
		return ClusterReport{}, fmt.Errorf("g10sim: cluster with no jobs")
	}
	shared := ccfg.Config.toInternal()
	shared.SSD = shared.SSD.Array(ccfg.SSDs)
	tenants := make([]gpu.ClusterTenant, len(jobs))
	for i, j := range jobs {
		if j.Workload == nil {
			return ClusterReport{}, fmt.Errorf("g10sim: job %d has no workload", i)
		}
		pol, err := newPolicy(j.Policy, ccfg.Adaptive)
		if err != nil {
			return ClusterReport{}, err
		}
		var rec gpu.Recovery
		switch j.Recovery {
		case "", "restart":
			rec = policy.Restart()
		case "checkpoint":
			rec = policy.Checkpoint(ccfg.CheckpointEvery)
		default:
			return ClusterReport{}, fmt.Errorf("g10sim: job %d: unknown recovery %q", i, j.Recovery)
		}
		tenants[i] = gpu.ClusterTenant{
			Analysis:    j.Workload.analysis,
			Policy:      pol,
			Config:      tenantConfig(shared, j.Policy),
			Tag:         fmt.Sprintf("gpu%d", i),
			ArrivalTime: units.Time(j.ArrivalSeconds * float64(units.Second)),
			Recovery:    rec,
		}
	}
	cres, err := gpu.RunCluster(gpu.ClusterParams{
		Tenants: tenants, Shared: shared, Shards: ccfg.Shards,
		Faults: ccfg.Faults.toInternal(),
	})
	if err != nil {
		return ClusterReport{}, err
	}
	out := ClusterReport{
		Jobs:                    make([]Report, len(cres.Tenants)),
		Spans:                   make([]JobSpan, len(cres.Tenants)),
		MakespanSeconds:         cres.Makespan.Seconds(),
		ArrayWriteGB:            cres.SSDStats.HostWriteBytes.GiB(),
		ArrayWriteAmplification: cres.WriteAmp,
	}
	for i, res := range cres.Tenants {
		out.Jobs[i] = reportFrom(res, shared)
		out.Spans[i] = JobSpan{
			ArrivalSeconds: cres.Spans[i].Arrival.Seconds(),
			FinishSeconds:  cres.Spans[i].Finish.Seconds(),
		}
		out.AggregateThroughput += out.Jobs[i].Throughput
	}
	return out, nil
}

// InferenceRequest is one request of an LLM serving trace.
type InferenceRequest struct {
	// ArrivalSeconds admits the request mid-simulation (0 = present at
	// start).
	ArrivalSeconds float64
	// PromptTokens is the prefill length; OutputTokens the decode length.
	PromptTokens int
	OutputTokens int
}

// InferenceConfig sizes the serving cluster. Zero values take the engine
// defaults (four servers, 2048-block GPU KV pools, 512-block host tier,
// 16-token 2 MiB blocks).
type InferenceConfig struct {
	Servers     int
	GPUBlocks   int // per-server KV block pool
	HostBlocks  int // shared host DRAM tier capacity, in blocks
	BlockTokens int
	BlockMB     float64

	// Tiered swaps memory-pressure victims' KV to the host DRAM tier and
	// reloads on demand, instead of vLLM-style preempt-and-recompute;
	// OffloadThreshold is the GPU residency fraction above which cold KV
	// offloads proactively while admissions queue (default 0.8).
	Tiered           bool
	OffloadThreshold float64

	// Shards splits the simulation across shard workers; the report is
	// byte-identical at any shard count.
	Shards int
}

// InferenceRequestStat is one request's simulated timeline.
type InferenceRequestStat struct {
	ArrivalSeconds    float64
	FirstTokenSeconds float64 // prefill completion (TTFT deadline)
	FinishSeconds     float64
	Server            int
	Preempts          int
	Offloads          int
	Reloads           int
}

// InferenceReport is the outcome of one serving simulation.
type InferenceReport struct {
	Policy   string
	Requests []InferenceRequestStat

	// TTFT is arrival to first token; E2E arrival to finish (seconds,
	// nearest-rank percentiles over the trace).
	TTFTp50 float64
	TTFTp99 float64
	E2Ep50  float64
	E2Ep99  float64

	Preemptions     int64
	Offloads        int64
	Reloads         int64
	OffloadedGB     float64
	MakespanSeconds float64
}

// SimulateInference plays a request trace against the serving engine:
// per-request KV caches grow block by block as tokens decode, and memory
// pressure resolves by preemption (single-tier) or by swapping cold KV over
// the tier edge to host DRAM (Tiered).
func SimulateInference(reqs []InferenceRequest, cfg InferenceConfig) (InferenceReport, error) {
	specs := make([]gpu.RequestSpec, len(reqs))
	for i, rq := range reqs {
		specs[i] = gpu.RequestSpec{
			Arrival:      units.Time(rq.ArrivalSeconds * float64(units.Second)),
			PromptTokens: rq.PromptTokens,
			OutputTokens: rq.OutputTokens,
		}
	}
	pol := policy.SingleTierKV()
	if cfg.Tiered {
		pol = policy.TieredKV(cfg.OffloadThreshold)
	}
	res, err := gpu.RunInference(gpu.InferenceParams{
		Requests:    specs,
		Policy:      pol,
		Servers:     cfg.Servers,
		GPUBlocks:   cfg.GPUBlocks,
		HostBlocks:  cfg.HostBlocks,
		BlockTokens: cfg.BlockTokens,
		BlockBytes:  units.Bytes(cfg.BlockMB * float64(units.MB)),
		Shards:      cfg.Shards,
	})
	if err != nil {
		return InferenceReport{}, err
	}
	out := InferenceReport{
		Policy:          pol.Name(),
		Requests:        make([]InferenceRequestStat, len(res.Requests)),
		Preemptions:     res.Preemptions,
		Offloads:        res.Offloads,
		Reloads:         res.Reloads,
		OffloadedGB:     res.OffloadedBytes.GiB(),
		MakespanSeconds: res.Makespan.Seconds(),
	}
	ttft := make([]float64, len(res.Requests))
	e2e := make([]float64, len(res.Requests))
	for i, rq := range res.Requests {
		out.Requests[i] = InferenceRequestStat{
			ArrivalSeconds:    rq.Arrival.Seconds(),
			FirstTokenSeconds: rq.FirstToken.Seconds(),
			FinishSeconds:     rq.Finish.Seconds(),
			Server:            rq.Server,
			Preempts:          rq.Preempts,
			Offloads:          rq.Offloads,
			Reloads:           rq.Reloads,
		}
		ttft[i] = units.Duration(rq.FirstToken - rq.Arrival).Seconds()
		e2e[i] = units.Duration(rq.Finish - rq.Arrival).Seconds()
	}
	sort.Float64s(ttft)
	sort.Float64s(e2e)
	out.TTFTp50, out.TTFTp99 = quantile(ttft, 0.50), quantile(ttft, 0.99)
	out.E2Ep50, out.E2Ep99 = quantile(e2e, 0.50), quantile(e2e, 0.99)
	return out, nil
}

// quantile reads the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// TensorKind classifies custom-model tensors (see NewGraphBuilder).
type TensorKind int

// Tensor kinds for custom graphs.
const (
	Weight       TensorKind = TensorKind(dnn.Global)       // lives across iterations
	Intermediate TensorKind = TensorKind(dnn.Intermediate) // activations/gradients
	Workspace    TensorKind = TensorKind(dnn.Workspace)    // single-kernel scratch
)

// Phase tags kernels of custom graphs.
type Phase int

// Kernel phases.
const (
	Forward  Phase = Phase(dnn.Forward)
	Backward Phase = Phase(dnn.Backward)
)

// TensorID names a tensor within a GraphBuilder.
type TensorID int

// GraphBuilder assembles a custom training-iteration graph for simulation
// through the same pipeline as the built-in models.
type GraphBuilder struct {
	b       *dnn.Builder
	tensors []*dnn.Tensor
}

// NewGraphBuilder starts a custom model.
func NewGraphBuilder(name string, batch int) *GraphBuilder {
	return &GraphBuilder{b: dnn.NewBuilder(name, batch)}
}

// Tensor declares a tensor of the given size in bytes.
func (gb *GraphBuilder) Tensor(name string, kind TensorKind, sizeBytes int64) TensorID {
	t := gb.b.Tensor(name, dnn.TensorKind(kind), units.Bytes(sizeBytes))
	gb.tensors = append(gb.tensors, t)
	return TensorID(t.ID)
}

// Kernel appends a kernel in execution order.
func (gb *GraphBuilder) Kernel(name string, phase Phase, flops float64, inputs, outputs []TensorID) {
	gb.b.Kernel(name, dnn.Phase(phase), flops, gb.resolve(inputs), gb.resolve(outputs))
}

func (gb *GraphBuilder) resolve(ids []TensorID) []*dnn.Tensor {
	out := make([]*dnn.Tensor, len(ids))
	for i, id := range ids {
		out[i] = gb.tensors[id]
	}
	return out
}

// Workload profiles the custom graph (on the calibrated A100 timing model
// scaled by timeScale; 1.0 = raw roofline) and analyzes tensor vitality.
func (gb *GraphBuilder) Workload(timeScale float64) (*Workload, error) {
	g, err := gb.b.Build()
	if err != nil {
		return nil, err
	}
	tr := profile.Profile(g, profile.A100(timeScale))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		return nil, err
	}
	return &Workload{analysis: a}, nil
}

// String renders a compact report line.
func (r Report) String() string {
	if r.Failed {
		return fmt.Sprintf("%s/%d %s: FAILED (%s)", r.Model, r.Batch, r.Policy, r.FailReason)
	}
	return fmt.Sprintf("%s/%d %s: %.3fs (%.1f%% of ideal, %.1f ex/s)",
		r.Model, r.Batch, r.Policy, r.IterationSeconds, 100*r.NormalizedPerf, r.Throughput)
}

package g10sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// smallConfig shrinks the system for fast facade tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.GPUMemoryGB = 2
	cfg.HostMemoryGB = 8
	cfg.SSDCapacityGB = 64
	return cfg
}

func TestFacadePipeline(t *testing.T) {
	w, err := BuildModel("BERT", 16)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.Model != "BERT" || s.Batch != 16 || s.Kernels == 0 || s.FootprintGB <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	rep, err := Simulate(w, "G10", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("G10 failed: %s", rep.FailReason)
	}
	if rep.NormalizedPerf <= 0 || rep.NormalizedPerf > 1.0001 {
		t.Errorf("normalized perf %v", rep.NormalizedPerf)
	}
	if !strings.Contains(rep.String(), "G10") {
		t.Error("report string missing policy")
	}
}

func TestFacadeIdealBeatsBase(t *testing.T) {
	w, err := BuildModel("ResNet152", 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	ideal, err := Simulate(w, "Ideal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(w, "Base UVM", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.IterationSeconds > base.IterationSeconds {
		t.Errorf("ideal (%v) slower than Base UVM (%v)", ideal.IterationSeconds, base.IterationSeconds)
	}
	if ideal.NormalizedPerf != 1 {
		t.Errorf("ideal normalized = %v", ideal.NormalizedPerf)
	}
}

func TestFacadeRejectsUnknowns(t *testing.T) {
	if _, err := BuildModel("GPT9", 4); err == nil {
		t.Error("unknown model accepted")
	}
	w, _ := BuildModel("BERT", 8)
	if _, err := Simulate(w, "MagicPolicy", DefaultConfig()); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Models()) != 5 {
		t.Errorf("Models() = %v", Models())
	}
	pols := Policies()
	if pols[0] != "Ideal" || len(pols) != 7 {
		t.Errorf("Policies() = %v", pols)
	}
}

func TestGraphBuilderCustomModel(t *testing.T) {
	gb := NewGraphBuilder("custom-mlp", 8)
	const mb = 1 << 20
	w1 := gb.Tensor("w1", Weight, 64*mb)
	x := gb.Tensor("x", Intermediate, 32*mb)
	h := gb.Tensor("h", Intermediate, 128*mb)
	ws := gb.Tensor("ws", Workspace, 16*mb)
	y := gb.Tensor("y", Intermediate, 32*mb)
	gb.Kernel("fc1", Forward, 5e9, []TensorID{w1, x, ws}, []TensorID{h})
	gb.Kernel("relu", Forward, 1e6, []TensorID{h}, []TensorID{h})
	gb.Kernel("fc2", Forward, 5e9, []TensorID{h, w1}, []TensorID{y})
	gb.Kernel("fc2.bwd", Backward, 1e10, []TensorID{y, h, w1}, []TensorID{h})
	gb.Kernel("fc1.bwd", Backward, 1e10, []TensorID{h, x, w1}, []TensorID{x})

	w, err := gb.Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	s := w.Summary()
	if s.Kernels != 5 || s.Tensors != 5 {
		t.Fatalf("summary = %+v", s)
	}
	cfg := DefaultConfig()
	cfg.GPUMemoryGB = 0.125 // 128MB: forces migrations
	cfg.HostMemoryGB = 1
	cfg.SSDCapacityGB = 16
	rep, err := Simulate(w, "G10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("custom model failed: %s", rep.FailReason)
	}
}

// TestAdaptiveDifferential pins the online replanning layer's equivalence
// guarantees, mirroring the polling-vs-event driver pattern: for every
// built-in model × policy, (a) Config.Adaptive = false replays the exact
// static path, and (b) a zero-lateness run — GPU memory roomy enough that
// nothing ever migrates — with Adaptive = true is bit-identical to the
// static plan: with no migration flows the lateness signal stays zero and
// the controller never touches the program.
func TestAdaptiveDifferential(t *testing.T) {
	batches := map[string]int{"BERT": 8, "ViT": 8, "Inceptionv3": 8, "ResNet152": 8, "SENet154": 4}
	// Roomy: every working set and the full footprint fit on the GPU.
	cfg := smallConfig()
	cfg.GPUMemoryGB = 64
	acfg := cfg
	acfg.Adaptive = true
	for _, model := range Models() {
		w, err := BuildModel(model, batches[model])
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			t.Run(fmt.Sprintf("%s/%s", model, pol), func(t *testing.T) {
				static, err := Simulate(w, pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				adaptive, err := Simulate(w, pol, acfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(static, adaptive) {
					t.Errorf("zero-lateness adaptive run diverged from static:\nstatic:   %+v\nadaptive: %+v", static, adaptive)
				}
				if static.GPUToSSDGB+static.SSDToGPUGB+static.GPUToHostGB+static.HostToGPUGB > 0 {
					t.Fatalf("roomy config still migrated; the zero-lateness premise is broken: %+v", static)
				}
			})
		}
	}
	// The cluster path honours the flag the same way: a roomy two-job
	// co-simulation with Adaptive on matches the one with it off.
	bert, err := BuildModel("BERT", 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []ClusterJob{
		{Workload: bert, Policy: "G10"},
		{Workload: bert, Policy: "DeepUM+"},
	}
	off, err := SimulateCluster(jobs, ClusterConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	on, err := SimulateCluster(jobs, ClusterConfig{Config: acfg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, on) {
		t.Errorf("zero-lateness adaptive cluster diverged:\noff: %+v\non:  %+v", off, on)
	}
}

// TestClusterSingleTenantMatchesSimulate: for every built-in model × policy
// combination, a one-job SimulateCluster result must be field-for-field
// identical to Simulate — the cluster engine is the same step machine on
// the same substrate, just scheduled by the shared-clock driver.
func TestClusterSingleTenantMatchesSimulate(t *testing.T) {
	batches := map[string]int{"BERT": 8, "ViT": 8, "Inceptionv3": 8, "ResNet152": 8, "SENet154": 4}
	cfg := smallConfig()
	for _, model := range Models() {
		w, err := BuildModel(model, batches[model])
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			t.Run(fmt.Sprintf("%s/%s", model, pol), func(t *testing.T) {
				solo, err := Simulate(w, pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cluster, err := SimulateCluster([]ClusterJob{{Workload: w, Policy: pol}}, ClusterConfig{Config: cfg})
				if err != nil {
					t.Fatal(err)
				}
				if len(cluster.Jobs) != 1 {
					t.Fatalf("%d job reports", len(cluster.Jobs))
				}
				if !reflect.DeepEqual(solo, cluster.Jobs[0]) {
					t.Errorf("1-job cluster diverged from Simulate:\nsimulate: %+v\ncluster:  %+v", solo, cluster.Jobs[0])
				}
			})
		}
	}
}

// TestSimulateClusterContention: two jobs on one array must not beat their
// solo runs, and the report aggregates must be consistent.
func TestSimulateClusterContention(t *testing.T) {
	cfg := smallConfig()
	bert, err := BuildModel("BERT", 8)
	if err != nil {
		t.Fatal(err)
	}
	resnet, err := BuildModel("ResNet152", 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateCluster([]ClusterJob{
		{Workload: bert, Policy: "G10"},
		{Workload: resnet, Policy: "Base UVM"},
	}, ClusterConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("%d jobs", len(rep.Jobs))
	}
	var sum float64
	for i, j := range rep.Jobs {
		if j.Failed {
			t.Fatalf("job %d failed: %s", i, j.FailReason)
		}
		if j.IterationSeconds <= 0 {
			t.Errorf("job %d iteration %v", i, j.IterationSeconds)
		}
		if rep.MakespanSeconds+1e-12 < j.IterationSeconds {
			t.Errorf("makespan %v below job %d iteration %v", rep.MakespanSeconds, i, j.IterationSeconds)
		}
		sum += j.Throughput
	}
	if rep.AggregateThroughput != sum {
		t.Errorf("aggregate throughput %v != sum %v", rep.AggregateThroughput, sum)
	}
	for _, pol := range []string{"G10", "Base UVM"} {
		var w *Workload
		if pol == "G10" {
			w = bert
		} else {
			w = resnet
		}
		solo, err := Simulate(w, pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var shared Report
		for _, j := range rep.Jobs {
			if j.Policy == pol {
				shared = j
			}
		}
		if shared.IterationSeconds < 0.999*solo.IterationSeconds {
			t.Errorf("%s ran faster co-located (%.4fs) than alone (%.4fs)",
				pol, shared.IterationSeconds, solo.IterationSeconds)
		}
	}
}

// TestSimulateClusterRejectsBadInput covers the error paths.
func TestSimulateClusterRejectsBadInput(t *testing.T) {
	if _, err := SimulateCluster(nil, ClusterConfig{Config: DefaultConfig()}); err == nil {
		t.Error("empty cluster accepted")
	}
	w, _ := BuildModel("BERT", 8)
	if _, err := SimulateCluster([]ClusterJob{{Workload: w, Policy: "nope"}}, ClusterConfig{Config: DefaultConfig()}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := SimulateCluster([]ClusterJob{{Policy: "G10"}}, ClusterConfig{Config: DefaultConfig()}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestGraphBuilderValidates(t *testing.T) {
	gb := NewGraphBuilder("bad", 1)
	gb.Tensor("orphan", Intermediate, 1024)
	x := gb.Tensor("x", Intermediate, 1024)
	gb.Kernel("k", Forward, 1, []TensorID{x}, []TensorID{x})
	if _, err := gb.Workload(1); err == nil {
		t.Error("orphan tensor accepted")
	}
}

// TestSimulateClusterFaults exercises the public fault surface end to end:
// a crash mid-run destroys work and forces a restart, checkpointing
// recovers from the last snapshot instead of iteration zero, a permanent
// crash fails the job, and an unknown recovery name is rejected.
func TestSimulateClusterFaults(t *testing.T) {
	cfg := smallConfig()
	bert, err := BuildModel("BERT", 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := func(rec string) []ClusterJob {
		return []ClusterJob{
			{Workload: bert, Policy: "G10", Recovery: rec},
			{Workload: bert, Policy: "DeepUM+", Recovery: rec},
		}
	}
	clean, err := SimulateCluster(jobs(""), ClusterConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	crash := &FaultPlan{Crashes: []ServerCrash{
		{Job: 0, AtSeconds: clean.MakespanSeconds * 0.6, RepairSeconds: clean.MakespanSeconds * 0.05},
	}}

	restart, err := SimulateCluster(jobs("restart"), ClusterConfig{Config: cfg, Faults: crash})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := SimulateCluster(jobs("checkpoint"), ClusterConfig{Config: cfg, Faults: crash, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]ClusterReport{"restart": restart, "checkpoint": ckpt} {
		v := rep.Jobs[0]
		if v.Failed {
			t.Fatalf("%s: victim failed: %s", name, v.FailReason)
		}
		if v.Restarts != 1 || v.WastedSeconds <= 0 {
			t.Errorf("%s: restarts=%d wasted=%.3fs — crash left no trace", name, v.Restarts, v.WastedSeconds)
		}
		if rep.MakespanSeconds <= clean.MakespanSeconds {
			t.Errorf("%s: faulted makespan %.3fs not above clean %.3fs", name, rep.MakespanSeconds, clean.MakespanSeconds)
		}
	}
	if ckpt.Jobs[0].CheckpointWrites == 0 || ckpt.Jobs[0].CheckpointGB <= 0 {
		t.Errorf("checkpoint job wrote no snapshots: %+v", ckpt.Jobs[0])
	}
	if restart.Jobs[0].CheckpointWrites != 0 {
		t.Errorf("restart job wrote %d snapshots", restart.Jobs[0].CheckpointWrites)
	}
	if ckpt.Jobs[0].WastedSeconds > restart.Jobs[0].WastedSeconds {
		t.Errorf("checkpoint wasted %.3fs, restart %.3fs", ckpt.Jobs[0].WastedSeconds, restart.Jobs[0].WastedSeconds)
	}

	perm := &FaultPlan{Crashes: []ServerCrash{{Job: 1, AtSeconds: clean.MakespanSeconds * 0.3, Permanent: true}}}
	dead, err := SimulateCluster(jobs("restart"), ClusterConfig{Config: cfg, Faults: perm})
	if err != nil {
		t.Fatal(err)
	}
	if !dead.Jobs[1].Failed {
		t.Error("permanently crashed job reported success")
	}
	if dead.Jobs[0].Failed {
		t.Errorf("surviving job failed: %s", dead.Jobs[0].FailReason)
	}

	if _, err := SimulateCluster(jobs("reincarnate"), ClusterConfig{Config: cfg}); err == nil {
		t.Error("unknown recovery name accepted")
	}
	bad := &FaultPlan{Crashes: []ServerCrash{{Job: 5, AtSeconds: 1}}}
	if _, err := SimulateCluster(jobs(""), ClusterConfig{Config: cfg, Faults: bad}); err == nil {
		t.Error("out-of-range crash victim accepted")
	}
}

// Command g10sim runs one (model, batch size, policy) simulation and prints
// a run report: iteration time versus ideal, stall breakdown, migration
// traffic by channel, fault counts, and SSD statistics.
//
// Example:
//
//	g10sim -model BERT -batch 256 -policy G10
//	g10sim -model ResNet152 -batch 1280 -policy "Base UVM" -host 64
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/policy"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

func main() {
	var (
		modelName = flag.String("model", "BERT", "model name (BERT, ViT, Inceptionv3, ResNet152, SENet154)")
		batch     = flag.Int("batch", 0, "batch size (0 = the paper's batch for the model)")
		polName   = flag.String("policy", "G10", "policy: Ideal, Base UVM, DeepUM+, FlashNeuron, G10-GDS, G10-Host, G10")
		gpuGB     = flag.Float64("gpu", 40, "GPU memory capacity in GB")
		hostGB    = flag.Float64("host", 128, "host memory capacity in GB")
		ssdBW     = flag.Float64("ssdbw", 0, "override SSD read/write bandwidth in GB/s (0 = Z-NAND defaults)")
		pcieBW    = flag.Float64("pcie", 15.754, "PCIe per-direction bandwidth in GB/s")
		iters     = flag.Int("iters", 2, "iterations to simulate (last one measured)")
		errPct    = flag.Float64("proferr", 0, "profiling error percent injected into the planning trace (Fig. 19)")
		seed      = flag.Int64("seed", 1, "seed for profiling-error injection")
	)
	flag.Parse()

	spec, err := models.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	b := *batch
	if b == 0 {
		b = spec.PaperBatch
	}

	fmt.Printf("building %s at batch %d...\n", spec.Name, b)
	t0 := time.Now()
	g := spec.Build(b)
	trace := profile.Profile(g, profile.A100(spec.TimeScale))

	cfg := gpu.Default()
	cfg.GPUCapacity = units.Bytes(*gpuGB * float64(units.GB))
	cfg.HostCapacity = units.Bytes(*hostGB * float64(units.GB))
	cfg.PCIeBandwidth = units.GBps(*pcieBW)
	cfg.Iterations = *iters
	if *ssdBW > 0 {
		cfg.SSD.ReadBandwidth = units.GBps(*ssdBW)
		cfg.SSD.WriteBandwidth = units.GBps(*ssdBW * 3.0 / 3.2)
	}

	planTrace := trace
	if *errPct > 0 {
		planTrace = trace.Perturb(*errPct/100, *seed)
	}
	a, err := vitality.Analyze(g, planTrace)
	if err != nil {
		fatal(err)
	}

	var pol gpu.Policy
	switch *polName {
	case "Ideal":
		pol = policy.Ideal()
		cfg = policy.IdealConfig(cfg)
	case "Base UVM", "BaseUVM":
		pol = policy.BaseUVM()
	case "DeepUM+", "DeepUM":
		pol = policy.DeepUMPlus(0)
	case "FlashNeuron":
		pol = policy.FlashNeuron()
	case "G10-GDS":
		pol = policy.G10GDS(planner.Config{})
	case "G10-Host":
		pol = policy.G10Host(planner.Config{})
	case "G10":
		pol = policy.G10Full(planner.Config{})
	default:
		fatal(fmt.Errorf("unknown policy %q", *polName))
	}

	s := g.Summary()
	fmt.Printf("graph: %d kernels, %d tensors, footprint %v (%.1f%% of GPU), max working set %v\n",
		s.Kernels, s.Tensors, s.Footprint,
		100*float64(s.Footprint)/float64(cfg.GPUCapacity), s.MaxWorkingSet)

	res, err := gpu.Run(gpu.RunParams{Analysis: a, Policy: pol, Config: cfg, ExecTrace: trace})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0)

	if res.Failed {
		fmt.Printf("\nRUN FAILED: %s\n", res.FailReason)
		os.Exit(2)
	}
	fmt.Printf("\n=== %s / batch %d / %s ===\n", res.Model, res.Batch, res.Policy)
	fmt.Printf("iteration time:   %v (ideal %v, %.1f%% of ideal)\n",
		res.IterationTime, res.IdealTime, 100*res.NormalizedPerf())
	fmt.Printf("throughput:       %.2f examples/s\n", res.Throughput())
	fmt.Printf("stall time:       %v (%.1f%%)\n", res.StallTime,
		100*float64(res.StallTime)/float64(res.IterationTime))
	fmt.Printf("traffic GPU→SSD:  %v   SSD→GPU: %v\n", res.GPUToSSD, res.SSDToGPU)
	fmt.Printf("traffic GPU→Host: %v   Host→GPU: %v\n", res.GPUToHost, res.HostToGPU)
	fmt.Printf("faults:           %d events, %v (%d pages)\n", res.Faults, res.FaultedBytes, res.FaultedPages)
	if res.OverflowKernels > 0 {
		fmt.Printf("overflow kernels: %d (streamed %v)\n", res.OverflowKernels, res.OverflowBytes)
	}
	fmt.Printf("SSD: %v host writes, WA %.2f, %d GC runs, lifetime at this write rate: %.1f years\n",
		res.SSDStats.HostWriteBytes, res.WriteAmp, res.SSDStats.GCRuns,
		cfg.SSD.LifetimeYears(writeRate(res)))
	fmt.Printf("TLB hit rate:     %.3f\n", res.TLBHitRate)
	fmt.Printf("(simulated in %v)\n", wall.Round(time.Millisecond))
}

// writeRate converts the measured iteration's SSD write volume into a
// sustained bandwidth for the §7.7 lifetime model.
func writeRate(res gpu.Result) units.Bandwidth {
	if res.IterationTime <= 0 {
		return 0
	}
	return units.Bandwidth(float64(res.GPUToSSD) / res.IterationTime.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "g10sim:", err)
	os.Exit(1)
}

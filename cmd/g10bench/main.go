// Command g10bench regenerates the paper's evaluation figures as text
// tables: the §3 characterisation (Figures 2–4), the §7 performance study
// (Figures 11–19), the §7.7 SSD-lifetime analysis, and the cluster-engine
// studies — the §6 multi-GPU grid (true co-simulation vs the legacy static
// bandwidth split) and the heterogeneous co-location study.
//
// Examples:
//
//	g10bench -fig 11                 # end-to-end normalized performance
//	g10bench -fig all                # the full harness (takes a while)
//	g10bench -fig 15 -models BERT    # one sweep, one model
//	g10bench -fig 11 -short          # shrunken fast mode
//	g10bench -fig multigpu -short    # cosim-vs-static multi-GPU comparison
//	g10bench -fig colocate -short    # heterogeneous jobs on one array
//	g10bench -fig all -json BENCH_figures.json   # machine-readable timings
//	                                 # (includes the cluster-engine figures)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"g10sim/internal/experiments"
)

var figures = []struct {
	name string
	run  func(*experiments.Session) error
}{
	{"2", wrap(experiments.Figure2)},
	{"3", wrap(experiments.Figure3)},
	{"4", wrap(experiments.Figure4)},
	{"11", wrap(experiments.Figure11)},
	{"12", wrap(experiments.Figure12)},
	{"13", wrap(experiments.Figure13)},
	{"14", wrap(experiments.Figure14)},
	{"15", wrap(experiments.Figure15)},
	{"16", wrap(experiments.Figure16)},
	{"17", wrap(experiments.Figure17)},
	{"18", wrap(experiments.Figure18)},
	{"19", wrap(experiments.Figure19)},
	{"lifetime", wrap(experiments.SSDLifetime)},
	{"multigpu", wrap(experiments.MultiGPU)},
	{"colocate", wrap(experiments.Colocate)},
	{"fleet", wrap(experiments.Fleet)},
	{"adapt", wrap(experiments.Adapt)},
}

func wrap[T any](f func(*experiments.Session) ([]T, error)) func(*experiments.Session) error {
	return func(s *experiments.Session) error {
		_, err := f(s)
		return err
	}
}

// benchRecord is one figure's timing in the BENCH_*.json perf-trajectory
// format: a flat list of named ns-per-regeneration samples plus run
// metadata, so successive commits' files can be diffed or plotted.
type benchRecord struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

type benchReport struct {
	Suite      string        `json:"suite"`
	Short      bool          `json:"short"`
	Models     []string      `json:"models,omitempty"`
	Benchmarks []benchRecord `json:"benchmarks"`
	TotalNs    int64         `json:"total_ns"`
}

func main() {
	var (
		fig        = flag.String("fig", "11", "figure to regenerate: 2,3,4,11..19,lifetime,multigpu,colocate,fleet,adapt, or 'all'")
		short      = flag.Bool("short", false, "shrunken workloads for a fast pass")
		models     = flag.String("models", "", "comma-separated model subset (default: all five)")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = serial)")
		jsonPath   = flag.String("json", "", "write per-figure timings as JSON (BENCH_*.json perf-trajectory format) to this path")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the figure runs to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the figure runs) to this path")
	)
	flag.Parse()

	// Profiles bracket the figure runs; run() returns instead of exiting so
	// the deferred profile writers always flush (pprof evidence survives a
	// failed figure too). The exiting defer is registered first — defers
	// unwind LIFO, so the profiles are stopped and written before os.Exit.
	failed := false
	defer func() {
		if failed {
			os.Exit(1)
		}
	}()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "g10bench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "g10bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "g10bench: creating %s: %v\n", *memProfile, err)
				failed = true
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "g10bench: writing heap profile: %v\n", err)
				failed = true
			}
		}()
	}

	if err := run(*fig, *short, *models, *workers, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "g10bench: %v\n", err)
		failed = true
	}
}

func run(fig string, short bool, models string, workers int, jsonPath string) error {
	opt := experiments.Options{Short: short, W: os.Stdout, Workers: workers}
	if models != "" {
		opt.Models = strings.Split(models, ",")
	}
	s := experiments.NewSession(opt)

	want := map[string]bool{}
	if fig == "all" {
		for _, f := range figures {
			want[f.name] = true
		}
	} else {
		for _, f := range strings.Split(fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	report := benchReport{Suite: "g10bench-figures", Short: short, Models: opt.Models}
	ran := 0
	for _, f := range figures {
		if !want[f.name] {
			continue
		}
		t0 := time.Now()
		if err := f.run(s); err != nil {
			return fmt.Errorf("figure %s: %w", f.name, err)
		}
		elapsed := time.Since(t0)
		fmt.Printf("\n[figure %s regenerated in %v]\n\n", f.name, elapsed.Round(time.Millisecond))
		report.Benchmarks = append(report.Benchmarks, benchRecord{Name: "figure-" + f.name, Ns: elapsed.Nanoseconds()})
		report.TotalNs += elapsed.Nanoseconds()
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matched %q", fig)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding %s: %w", jsonPath, err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
	}
	return nil
}

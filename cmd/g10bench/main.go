// Command g10bench regenerates the paper's evaluation figures as text
// tables: the §3 characterisation (Figures 2–4), the §7 performance study
// (Figures 11–19), the §7.7 SSD-lifetime analysis, and the cluster-engine
// studies — the §6 multi-GPU grid (true co-simulation vs the legacy static
// bandwidth split) and the heterogeneous co-location study.
//
// Examples:
//
//	g10bench -fig 11                 # end-to-end normalized performance
//	g10bench -fig all                # the full harness (takes a while)
//	g10bench -fig 15 -models BERT    # one sweep, one model
//	g10bench -fig 11 -short          # shrunken fast mode
//	g10bench -fig multigpu -short    # cosim-vs-static multi-GPU comparison
//	g10bench -fig colocate -short    # heterogeneous jobs on one array
//	g10bench -fig all -json BENCH_figures.json   # machine-readable timings
//	                                 # (includes the cluster-engine figures)
//	g10bench -bench -short -workers 1 -json BENCH_smoke.json \
//	         -gate BENCH_baseline.json           # CI regression gate: run the
//	                                 # headline figures once, compare against
//	                                 # the committed baseline (scaled by a
//	                                 # machine-speed calibration), fail >20%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"g10sim/internal/experiments"
	"g10sim/internal/gpu"
)

var figures = []struct {
	name string
	run  func(*experiments.Session) error
}{
	{"2", wrap(experiments.Figure2)},
	{"3", wrap(experiments.Figure3)},
	{"4", wrap(experiments.Figure4)},
	{"11", wrap(experiments.Figure11)},
	{"12", wrap(experiments.Figure12)},
	{"13", wrap(experiments.Figure13)},
	{"14", wrap(experiments.Figure14)},
	{"15", wrap(experiments.Figure15)},
	{"16", wrap(experiments.Figure16)},
	{"17", wrap(experiments.Figure17)},
	{"18", wrap(experiments.Figure18)},
	{"19", wrap(experiments.Figure19)},
	{"lifetime", wrap(experiments.SSDLifetime)},
	{"multigpu", wrap(experiments.MultiGPU)},
	{"colocate", wrap(experiments.Colocate)},
	{"fleet", wrap(experiments.Fleet)},
	{"adapt", wrap(experiments.Adapt)},
	{"scaling", wrap(experiments.Scaling)},
	{"maxminfill", wrap(experiments.MaxMinFill)},
	{"inference", wrap(experiments.Inference)},
	{"faults", wrap(experiments.Faults)},
}

func wrap[T any](f func(*experiments.Session) ([]T, error)) func(*experiments.Session) error {
	return func(s *experiments.Session) error {
		_, err := f(s)
		return err
	}
}

// benchRecord is one figure's timing in the BENCH_*.json perf-trajectory
// format: a flat list of named ns-per-regeneration samples plus run
// metadata, so successive commits' files can be diffed or plotted.
type benchRecord struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

type benchReport struct {
	Suite      string        `json:"suite"`
	Short      bool          `json:"short"`
	Workers    int           `json:"workers"`
	Shards     int           `json:"shards,omitempty"`
	Models     []string      `json:"models,omitempty"`
	Benchmarks []benchRecord `json:"benchmarks"`
	TotalNs    int64         `json:"total_ns"`
	// Engine reports the engine-internal work counters summed over every
	// cluster simulation the suite ran (recompute/succession/progress/reap
	// and epoch-TLB tallies) — the O(events) evidence alongside the wall
	// times. Omitted when the selected figures ran no cluster.
	Engine *engineRecord `json:"engine_stats,omitempty"`
	// CalibrationNs is the wall time of a fixed CPU-bound loop measured in
	// the same process (-bench mode): the regression gate scales a committed
	// baseline by the calibration ratio, so a slower or faster CI machine
	// does not read as a code regression or mask one.
	CalibrationNs int64 `json:"calibration_ns,omitempty"`
}

// trajectoryFile is BENCH_trajectory.json: the machine-readable per-PR
// bench history. Each entry is one labeled benchReport; `-trajectory`
// appends the current run (replacing an existing entry with the same
// label, so re-running a PR's bench refreshes rather than duplicates).
// BENCH.md documents the format and the provenance of historical entries.
type trajectoryFile struct {
	Format  int               `json:"format"`
	Entries []trajectoryEntry `json:"entries"`
}

type trajectoryEntry struct {
	Label  string      `json:"label"`
	Note   string      `json:"note,omitempty"`
	Report benchReport `json:"report"`
}

// appendTrajectory folds rep into the trajectory file under label.
func appendTrajectory(path, label, note string, rep benchReport) error {
	var tf trajectoryFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &tf); err != nil {
			return fmt.Errorf("decoding %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	if tf.Format == 0 {
		tf.Format = 1
	}
	entry := trajectoryEntry{Label: label, Note: note, Report: rep}
	replaced := false
	for i := range tf.Entries {
		if tf.Entries[i].Label == label {
			tf.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		tf.Entries = append(tf.Entries, entry)
	}
	out, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// engineRecord is the JSON shape of gpu.EngineStats in bench reports.
type engineRecord struct {
	FlowRecomputes     int64 `json:"flow_recomputes"`
	FlowSuccessions    int64 `json:"flow_successions"`
	ProgressTouches    int64 `json:"progress_touches"`
	ReapScans          int64 `json:"reap_scans"`
	TLBEpochShootdowns int64 `json:"tlb_epoch_shootdowns"`
	FillRounds         int64 `json:"fill_rounds"`
	FillResScans       int64 `json:"fill_res_scans"`
	FrontierReuses     int64 `json:"frontier_reuses"`
	TenantAborts       int64 `json:"tenant_aborts"`
	TenantRestarts     int64 `json:"tenant_restarts"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
}

// headlineFigures is the -bench suite: the figures whose wall time the
// BENCH.md trajectory and the CI regression gate track.
const headlineFigures = "11,multigpu,colocate,fleet,adapt,scaling,maxminfill,inference,faults"

// calibrate times a fixed xorshift loop, a machine-speed yardstick for
// scaling committed baselines across runner generations.
func calibrate() int64 {
	t0 := time.Now()
	x := uint64(88172645463325252)
	for i := 0; i < 1<<26; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 { // defeat dead-code elimination
		fmt.Fprintln(os.Stderr, x)
	}
	return time.Since(t0).Nanoseconds()
}

// gateDelta is one figure's baseline-vs-current comparison in the delta
// artifact the CI gate publishes.
type gateDelta struct {
	Name             string  `json:"name"`
	BaselineNs       int64   `json:"baseline_ns"`
	ScaledBaselineNs int64   `json:"scaled_baseline_ns"`
	CurrentNs        int64   `json:"current_ns"`
	Ratio            float64 `json:"ratio"`
	Regressed        bool    `json:"regressed"`
}

type gateReport struct {
	Tolerance   float64     `json:"tolerance"`
	CalibScale  float64     `json:"calibration_scale"`
	Deltas      []gateDelta `json:"deltas"`
	Regressions int         `json:"regressions"`
}

// runGate compares the current report against a committed baseline: each
// figure's wall time may exceed the (machine-speed-scaled) baseline by at
// most the tolerance factor. The full comparison is written to outPath as
// the CI artifact; any regression is an error.
func runGate(cur benchReport, baselinePath, outPath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding %s: %w", baselinePath, err)
	}
	if base.Short != cur.Short {
		return fmt.Errorf("baseline short=%v but this run short=%v; compare like with like", base.Short, cur.Short)
	}
	if base.Workers != cur.Workers {
		return fmt.Errorf("baseline workers=%d but this run workers=%d; compare like with like", base.Workers, cur.Workers)
	}
	if base.Shards != cur.Shards {
		return fmt.Errorf("baseline shards=%d but this run shards=%d; compare like with like", base.Shards, cur.Shards)
	}
	if fmt.Sprint(base.Models) != fmt.Sprint(cur.Models) {
		return fmt.Errorf("baseline models=%v but this run models=%v; compare like with like", base.Models, cur.Models)
	}
	scale := 1.0
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		scale = float64(cur.CalibrationNs) / float64(base.CalibrationNs)
	}
	baseNs := map[string]int64{}
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.Ns
	}
	rep := gateReport{Tolerance: tolerance, CalibScale: scale}
	matched := map[string]bool{}
	for _, b := range cur.Benchmarks {
		bn, ok := baseNs[b.Name]
		if !ok {
			continue // new figure: no baseline yet
		}
		matched[b.Name] = true
		scaled := int64(float64(bn) * scale)
		d := gateDelta{Name: b.Name, BaselineNs: bn, ScaledBaselineNs: scaled, CurrentNs: b.Ns}
		if scaled > 0 {
			d.Ratio = float64(b.Ns) / float64(scaled)
		}
		// An absolute slack absorbs scheduler jitter on sub-100ms figures,
		// where a few preempted milliseconds dwarf the relative tolerance.
		const slackNs = 75e6
		d.Regressed = float64(b.Ns) > float64(scaled)*tolerance+slackNs
		if d.Regressed {
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
		fmt.Printf("gate: %-16s baseline %8.0fms (scaled %8.0fms) current %8.0fms ratio %.2f%s\n",
			d.Name, float64(bn)/1e6, float64(scaled)/1e6, float64(b.Ns)/1e6, d.Ratio,
			map[bool]string{true: "  REGRESSED", false: ""}[d.Regressed])
	}
	if outPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding gate report: %w", err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
	}
	// A baseline entry with no current counterpart means gate coverage
	// silently shrank (a renamed or dropped figure) — refuse, so the
	// baseline is refreshed deliberately instead.
	for _, b := range base.Benchmarks {
		if !matched[b.Name] {
			return fmt.Errorf("baseline figure %q was not produced by this run; refresh %s", b.Name, baselinePath)
		}
	}
	if rep.Regressions > 0 {
		return fmt.Errorf("%d of %d figures regressed beyond %.0f%% of the scaled baseline",
			rep.Regressions, len(rep.Deltas), (tolerance-1)*100)
	}
	return nil
}

func main() {
	var (
		fig        = flag.String("fig", "11", "figure to regenerate: 2,3,4,11..19,lifetime,multigpu,colocate,fleet,adapt,scaling,maxminfill, or 'all'")
		bench      = flag.Bool("bench", false, "run the headline benchmark figures ("+headlineFigures+") once each, with a machine-speed calibration, and emit the timing JSON the CI gate consumes (see -json/-gate)")
		short      = flag.Bool("short", false, "shrunken workloads for a fast pass")
		models     = flag.String("models", "", "comma-separated model subset (default: all five)")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = serial)")
		shards     = flag.Int("shards", 0, "split every cluster co-simulation across this many shard workers (results are byte-identical at any setting; <= 1 runs the sequential driver)")
		jsonPath   = flag.String("json", "", "write per-figure timings as JSON (BENCH_*.json perf-trajectory format) to this path")
		gatePath   = flag.String("gate", "", "compare this run's timings against the baseline JSON at this path; exit nonzero on regression")
		gateOut    = flag.String("gateout", "BENCH_delta.json", "write the gate's per-figure delta report to this path (with -gate)")
		gateTol    = flag.Float64("gatetol", 1.20, "regression tolerance: a figure fails the gate above this multiple of its scaled baseline")
		trajPath   = flag.String("trajectory", "", "append this run's report to the per-PR bench history JSON at this path (BENCH_trajectory.json format; see BENCH.md)")
		trajLabel  = flag.String("trajlabel", "head", "entry label for -trajectory; an existing entry with the same label is replaced")
		trajNote   = flag.String("trajnote", "", "free-form provenance note stored with the -trajectory entry")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the figure runs to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the figure runs) to this path")
	)
	flag.Parse()
	if *bench {
		*fig = headlineFigures
	}

	// Profiles bracket the figure runs; run() returns instead of exiting so
	// the deferred profile writers always flush (pprof evidence survives a
	// failed figure too). The exiting defer is registered first — defers
	// unwind LIFO, so the profiles are stopped and written before os.Exit.
	failed := false
	defer func() {
		if failed {
			os.Exit(1)
		}
	}()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "g10bench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "g10bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "g10bench: creating %s: %v\n", *memProfile, err)
				failed = true
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "g10bench: writing heap profile: %v\n", err)
				failed = true
			}
		}()
	}

	if err := run(*fig, *short, *models, *workers, *shards, *jsonPath, *bench, *gatePath, *gateOut, *gateTol, *trajPath, *trajLabel, *trajNote); err != nil {
		fmt.Fprintf(os.Stderr, "g10bench: %v\n", err)
		failed = true
	}
}

func run(fig string, short bool, models string, workers, shards int, jsonPath string, bench bool, gatePath, gateOut string, gateTol float64, trajPath, trajLabel, trajNote string) error {
	opt := experiments.Options{Short: short, W: os.Stdout, Perf: os.Stdout, Workers: workers, Shards: shards}
	if models != "" {
		opt.Models = strings.Split(models, ",")
	}
	s := experiments.NewSession(opt)

	want := map[string]bool{}
	if fig == "all" {
		for _, f := range figures {
			want[f.name] = true
		}
	} else {
		for _, f := range strings.Split(fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	report := benchReport{Suite: "g10bench-figures", Short: short, Workers: workers, Shards: shards, Models: opt.Models}
	if bench || gatePath != "" {
		report.CalibrationNs = calibrate()
	}
	ran := 0
	for _, f := range figures {
		if !want[f.name] {
			continue
		}
		t0 := time.Now()
		if err := f.run(s); err != nil {
			return fmt.Errorf("figure %s: %w", f.name, err)
		}
		elapsed := time.Since(t0)
		fmt.Printf("\n[figure %s regenerated in %v]\n\n", f.name, elapsed.Round(time.Millisecond))
		report.Benchmarks = append(report.Benchmarks, benchRecord{Name: "figure-" + f.name, Ns: elapsed.Nanoseconds()})
		report.TotalNs += elapsed.Nanoseconds()
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matched %q", fig)
	}
	if es := s.EngineStats(); es != (gpu.EngineStats{}) {
		report.Engine = &engineRecord{
			FlowRecomputes:     es.FlowRecomputes,
			FlowSuccessions:    es.FlowSuccessions,
			ProgressTouches:    es.ProgressTouches,
			ReapScans:          es.ReapScans,
			TLBEpochShootdowns: es.TLBEpochShootdowns,
			FillRounds:         es.FillRounds,
			FillResScans:       es.FillResScans,
			FrontierReuses:     es.FrontierReuses,
			TenantAborts:       es.TenantAborts,
			TenantRestarts:     es.TenantRestarts,
			CheckpointBytes:    es.CheckpointBytes,
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding %s: %w", jsonPath, err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
	}
	if trajPath != "" {
		if err := appendTrajectory(trajPath, trajLabel, trajNote, report); err != nil {
			return err
		}
	}
	if gatePath != "" {
		return runGate(report, gatePath, gateOut, gateTol)
	}
	return nil
}

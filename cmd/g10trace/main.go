// Command g10trace inspects the compiler-side artifacts of the pipeline:
// it builds a model, profiles its kernels, runs tensor vitality analysis,
// and prints the graph summary, memory curves, the largest tensors and
// inactive periods, and (with -plan) the instrumented program the smart
// migration scheduler emits.
//
// With -save it writes the kernel trace as JSON, and -load replays a trace
// saved earlier (the offline profiling flow of §4.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

func main() {
	var (
		modelName = flag.String("model", "BERT", "model name")
		batch     = flag.Int("batch", 0, "batch size (0 = paper batch)")
		top       = flag.Int("top", 10, "how many top tensors/periods to list")
		showPlan  = flag.Bool("plan", false, "run the migration scheduler and summarize the instrumented program")
		save      = flag.String("save", "", "write the kernel trace JSON to this file")
		load      = flag.String("load", "", "replay a kernel trace JSON from this file")
	)
	flag.Parse()

	spec, err := models.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	b := *batch
	if b == 0 {
		b = spec.PaperBatch
	}
	g := spec.Build(b)

	var trace *profile.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		trace, err = profile.Load(f, g)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		trace = profile.Profile(g, profile.A100(spec.TimeScale))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := trace.Save(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("trace saved to %s\n", *save)
	}

	a, err := vitality.Analyze(g, trace)
	if err != nil {
		fatal(err)
	}

	s := g.Summary()
	fmt.Printf("=== %s batch %d ===\n", s.Name, s.Batch)
	fmt.Printf("kernels: %d   tensors: %d   footprint: %v   weights: %v\n",
		s.Kernels, s.Tensors, s.Footprint, s.GlobalBytes)
	fmt.Printf("peak alive: %v   peak working set: %v   ideal iteration: %v\n",
		a.PeakAlive(), a.PeakActive(), trace.Total())
	fmt.Printf("inactive periods: %d (%.0f%% can hide an SSD round trip)\n\n",
		len(a.Periods), 100*a.HideablePeriods(20*units.Microsecond))

	fmt.Printf("top %d tensors by size:\n", *top)
	byID := make([]int, len(g.Tensors))
	for i := range byID {
		byID[i] = i
	}
	sort.Slice(byID, func(i, j int) bool { return g.Tensors[byID[i]].Size > g.Tensors[byID[j]].Size })
	for i := 0; i < *top && i < len(byID); i++ {
		t := g.Tensors[byID[i]]
		fmt.Printf("  %-44s %-12s %v\n", t.Name, t.Kind, t.Size)
	}

	fmt.Printf("\ntop %d inactive periods by size x duration:\n", *top)
	idx := make([]int, len(a.Periods))
	for i := range idx {
		idx[i] = i
	}
	weight := func(i int) float64 {
		p := &a.Periods[i]
		return float64(p.Tensor.Size) * p.Duration().Seconds()
	}
	sort.Slice(idx, func(i, j int) bool { return weight(idx[i]) > weight(idx[j]) })
	for i := 0; i < *top && i < len(idx); i++ {
		p := &a.Periods[idx[i]]
		wrap := ""
		if p.Wraps {
			wrap = " (wraps iteration)"
		}
		fmt.Printf("  %-44s %v idle %v after k%d until k%d%s\n",
			p.Tensor.Name, p.Tensor.Size, p.Duration(), p.AfterKernel, p.NextUse, wrap)
	}

	if *showPlan {
		plan := planner.New(a, planner.Default())
		fmt.Printf("\n=== instrumented program (smart migration plan) ===\n")
		fmt.Printf("decisions: %d (%v to SSD, %v to host)\n",
			len(plan.Decisions), plan.PlannedSSDBytes, plan.PlannedHostBytes)
		fmt.Printf("planned peak pressure: %v (GPU capacity %v, residual overflow %v)\n",
			plan.PeakPressure, plan.Config.GPUCapacity, plan.ResidualOverflow)
		fmt.Printf("instructions: %d allocs, %d frees, %d pre-evictions, %d prefetches\n",
			plan.Program.CountKind(planner.OpAlloc), plan.Program.CountKind(planner.OpFree),
			plan.Program.CountKind(planner.OpPreEvict), plan.Program.CountKind(planner.OpPrefetch))
		fmt.Printf("\nfirst instrumented boundaries:\n")
		shown := 0
		for bIdx, instrs := range plan.Program.Boundaries {
			for _, in := range instrs {
				if in.Kind == planner.OpPreEvict || in.Kind == planner.OpPrefetch {
					fmt.Printf("  before kernel %4d: %v\n", bIdx, in)
					shown++
					if shown >= *top {
						return
					}
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "g10trace:", err)
	os.Exit(1)
}

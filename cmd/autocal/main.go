// Command autocal recomputes the SizeScale/TimeScale calibration constants
// (DESIGN.md §1) after structural model changes: SizeScale is solved by a
// secant iteration on total footprint; TimeScale follows directly from the
// paper's Ideal throughput.
package main

import (
	"fmt"

	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/vitality"
)

func main() {
	for _, spec := range models.Catalog() {
		target := float64(spec.PaperFootprint())
		s0, s1 := spec.SizeScale*0.7, spec.SizeScale
		f := func(scale float64) float64 {
			s := spec
			s.SizeScale = scale
			return float64(s.Build(s.PaperBatch).Footprint()) - target
		}
		f0, f1 := f(s0), f(s1)
		for i := 0; i < 20 && absf(f1) > 0.002*target; i++ {
			s2 := s1 - f1*(s1-s0)/(f1-f0)
			s0, f0 = s1, f1
			s1, f1 = s2, f(s2)
		}
		s := spec
		s.SizeScale = s1
		g := s.Build(s.PaperBatch)
		tr := profile.Profile(g, profile.A100(1))
		a := vitality.MustAnalyze(g, tr)
		ts := (float64(s.PaperBatch) / s.PaperIdealRate) / tr.Total().Seconds()
		fmt.Printf("%-12s SizeScale %.4f TimeScale %.4f (footprint %v, peakAlive %v, maxWS %v)\n",
			spec.Name, s1, ts, g.Footprint(), a.PeakAlive(), g.MaxWorkingSet())
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

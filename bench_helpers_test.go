package g10sim

import (
	"g10sim/internal/ssd"
	"g10sim/internal/units"
)

// Small indirections so bench_test.go reads cleanly without leaking the
// internal ssd package into every line.

func benchSSDConfig() ssd.Config {
	cfg := ssd.ZNAND()
	cfg.Capacity = 256 * units.MB
	cfg.PageSize = 16 * units.KB
	cfg.PagesPerBlock = 32
	return cfg
}

func benchSSDNew(cfg ssd.Config) (*ssd.Device, error) { return ssd.New(cfg) }

func benchRange(start, count int64) ssd.LogicalRange {
	return ssd.LogicalRange{Start: start, Count: count}
}

// Batchsweep reproduces the spirit of the paper's Figure 15 through the
// public API: training throughput versus batch size for each design on one
// model, showing where each memory system falls off the Ideal curve.
//
// Run with:
//
//	go run ./examples/batchsweep [-model ResNet152]
package main

import (
	"flag"
	"fmt"
	"log"

	g10 "g10sim"
)

func main() {
	model := flag.String("model", "ResNet152", "one of g10sim.Models()")
	full := flag.Bool("full", false, "use the paper's batch sizes (slow)")
	flag.Parse()

	batches := []int{16, 32, 64, 128}
	if *full {
		batches = []int{256, 512, 768, 1024, 1280}
	}
	policies := []string{"Ideal", "Base UVM", "FlashNeuron", "DeepUM+", "G10"}

	cfg := g10.DefaultConfig()
	if !*full {
		// Scale the machine down with the workload so the small batches
		// still oversubscribe GPU memory.
		cfg.GPUMemoryGB = 4
		cfg.HostMemoryGB = 12
		cfg.SSDCapacityGB = 128
	}

	fmt.Printf("%s throughput (examples/sec) on a %.0fGB GPU:\n\n%-8s", *model, cfg.GPUMemoryGB, "batch")
	for _, p := range policies {
		fmt.Printf(" %12s", p)
	}
	fmt.Println()

	for _, batch := range batches {
		w, err := g10.BuildModel(*model, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d", batch)
		for _, p := range policies {
			rep, err := g10.Simulate(w, p, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Failed {
				fmt.Printf(" %12s", "FAIL")
			} else {
				fmt.Printf(" %12.2f", rep.Throughput)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nThe G10 column should track Ideal the longest as batch size grows (Fig. 15).")
}

// Ssdlifetime reproduces the paper's §7.7 analysis through the public API:
// how much each design writes to flash per iteration, the resulting write
// amplification inside the FTL, and the drive lifetime the measured write
// rate implies for a 30-DWPD Z-NAND device.
//
// Run with:
//
//	go run ./examples/ssdlifetime
package main

import (
	"fmt"
	"log"

	g10 "g10sim"
)

func main() {
	// A CNN at memory pressure: CNN traffic leans on the SSD (the paper's
	// Figure 14), which is what stresses flash endurance.
	w, err := g10.BuildModel("ResNet152", 64)
	if err != nil {
		log.Fatal(err)
	}
	s := w.Summary()

	cfg := g10.DefaultConfig()
	cfg.GPUMemoryGB = s.PeakAliveGB * 0.55
	cfg.HostMemoryGB = 8 // small host: flash must absorb part of the traffic
	cfg.SSDCapacityGB = 256

	fmt.Printf("%s batch %d, GPU %.1f GB, host %.0f GB\n\n", s.Model, s.Batch, cfg.GPUMemoryGB, cfg.HostMemoryGB)
	fmt.Printf("%-12s %12s %12s %8s %12s\n", "policy", "flashWr(GB)", "flashRd(GB)", "WA", "life(years)")
	for _, policy := range []string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"} {
		rep, err := g10.Simulate(w, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Failed {
			fmt.Printf("%-12s %12s\n", policy, "FAIL")
			continue
		}
		life := fmt.Sprintf("%12.1f", rep.SSDLifetimeYears)
		if rep.GPUToSSDGB == 0 {
			life = "           -" // no flash writes: endurance is not in play
		}
		fmt.Printf("%-12s %12.2f %12.2f %8.2f %s\n",
			policy, rep.GPUToSSDGB, rep.SSDToGPUGB, rep.WriteAmplification, life)
	}
	fmt.Println("\nFlashNeuron routes every byte through flash (the paper reports G10 writes")
	fmt.Println("2.20x less than it); G10 splits traffic with host memory, so the SSD")
	fmt.Println("absorbs only what its bandwidth can hide. Lifetime here is at the measured")
	fmt.Println("write rate: a faster iteration writes the same bytes in less wall time.")
}

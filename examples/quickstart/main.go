// Quickstart: build one of the paper's workloads, run it under the full
// G10 design and the Base UVM baseline, and compare against the Ideal
// (infinite GPU memory) bound.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	g10 "g10sim"
)

func main() {
	// BERT at a reduced batch size keeps this example fast; pass the
	// paper's batch (256) for the full-scale run.
	workload, err := g10.BuildModel("BERT", 64)
	if err != nil {
		log.Fatal(err)
	}
	s := workload.Summary()
	fmt.Printf("workload: %s batch %d — %d kernels, %d tensors\n", s.Model, s.Batch, s.Kernels, s.Tensors)
	fmt.Printf("memory:   footprint %.1f GB, peak pressure %.1f GB, largest kernel %.2f GB\n",
		s.FootprintGB, s.PeakAliveGB, s.MaxWorkingSetGB)
	fmt.Printf("compute:  %.3f s/iteration with unlimited GPU memory\n\n", s.IdealSeconds)

	// Squeeze the GPU so the workload oversubscribes memory ~2x.
	cfg := g10.DefaultConfig()
	cfg.GPUMemoryGB = s.PeakAliveGB / 2
	cfg.HostMemoryGB = 32

	for _, policy := range []string{"Ideal", "Base UVM", "DeepUM+", "G10"} {
		report, err := g10.Simulate(workload, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		if policy == "G10" && !report.Failed {
			fmt.Printf("  traffic: %.1f GB to SSD, %.1f GB to host; %d page faults\n",
				report.GPUToSSDGB, report.GPUToHostGB, report.Faults)
		}
	}
}

// Custommodel shows how a user brings their own network to the G10
// pipeline: describe one training iteration as tensors and kernels with
// the GraphBuilder, then let the vitality analyzer and migration scheduler
// plan its execution on a small GPU.
//
// The model here is a toy encoder-decoder with a deliberately awkward
// memory profile: a huge encoder state that stays inactive through the
// whole decoder phase — exactly the "large tensor, long inactive period"
// candidate G10's Algorithm 1 looks for.
//
// Run with:
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"log"

	g10 "g10sim"
)

func main() {
	const mb = int64(1) << 20
	gb := g10.NewGraphBuilder("toy-encdec", 32)

	// Weights.
	wEnc := gb.Tensor("enc.w", g10.Weight, 256*mb)
	wDec := gb.Tensor("dec.w", g10.Weight, 256*mb)

	// Encoder: produces a 2GB state used once at the very end.
	input := gb.Tensor("input", g10.Intermediate, 512*mb)
	encState := gb.Tensor("enc.state", g10.Intermediate, 2048*mb)
	ws := gb.Tensor("enc.ws", g10.Workspace, 512*mb)
	gb.Kernel("encode", g10.Forward, 3e12, []g10.TensorID{wEnc, input, ws}, []g10.TensorID{encState})

	// Decoder: eight steps over small hidden states.
	prev := gb.Tensor("dec.h0", g10.Intermediate, 256*mb)
	gb.Kernel("dec.init", g10.Forward, 1e11, []g10.TensorID{input}, []g10.TensorID{prev})
	hs := []g10.TensorID{prev}
	for i := 1; i <= 8; i++ {
		h := gb.Tensor(fmt.Sprintf("dec.h%d", i), g10.Intermediate, 256*mb)
		gb.Kernel(fmt.Sprintf("dec.step%d", i), g10.Forward, 8e11,
			[]g10.TensorID{wDec, prev}, []g10.TensorID{h})
		hs = append(hs, h)
		prev = h
	}

	// Attention over the encoder state closes the forward pass, then the
	// backward pass revisits every decoder state.
	out := gb.Tensor("out", g10.Intermediate, 256*mb)
	gb.Kernel("attend", g10.Forward, 2e12, []g10.TensorID{encState, prev}, []g10.TensorID{out})
	grad := gb.Tensor("dout", g10.Intermediate, 256*mb)
	gb.Kernel("loss", g10.Backward, 1e10, []g10.TensorID{out}, []g10.TensorID{grad})
	for i := 8; i >= 1; i-- {
		gb.Kernel(fmt.Sprintf("dec.step%d.bwd", i), g10.Backward, 1.6e12,
			[]g10.TensorID{grad, hs[i], wDec}, []g10.TensorID{grad})
	}
	gb.Kernel("encode.bwd", g10.Backward, 6e12,
		[]g10.TensorID{grad, encState, wEnc}, []g10.TensorID{grad})

	w, err := gb.Workload(1)
	if err != nil {
		log.Fatal(err)
	}
	s := w.Summary()
	fmt.Printf("custom model: %d kernels, %.2f GB footprint, %.2f GB peak, ideal %.1f ms\n\n",
		s.Kernels, s.FootprintGB, s.PeakAliveGB, 1000*s.IdealSeconds)

	// A 3.5GB GPU cannot hold the encoder state alongside the decoder.
	cfg := g10.DefaultConfig()
	cfg.GPUMemoryGB = 3.5
	cfg.HostMemoryGB = 8
	cfg.SSDCapacityGB = 64

	for _, policy := range []string{"Ideal", "Base UVM", "G10"} {
		rep, err := g10.Simulate(w, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}
	fmt.Println("\nG10 pre-evicts enc.state right after the encoder and prefetches it")
	fmt.Println("back just before 'attend' — the decoder runs at full speed in between.")
}

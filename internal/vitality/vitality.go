// Package vitality implements the paper's Tensor Vitality Analyzer (§4.2).
//
// Given a training-iteration graph and a kernel-duration trace, it derives
// for every tensor: when it is born and dead, at which kernels it is active
// (used by the currently executing kernel), and its inactive periods — the
// intervals in which it is alive but unused and may therefore be migrated
// out of GPU memory and back before its next use.
//
// Global (weight) tensors get a wrap-around inactive period spanning from
// their last use in this iteration to their first use in the next (Figure 6:
// "the inactive time period of a global tensor may span across two
// consecutive training iterations").
//
// The analysis also produces the per-kernel active/alive memory-consumption
// curves of Figure 2 and the inactive-period distributions of Figures 3–4.
package vitality

import (
	"fmt"

	"g10sim/internal/dnn"
	"g10sim/internal/profile"
	"g10sim/internal/units"
)

// TensorInfo is the per-tensor lifetime summary.
type TensorInfo struct {
	Tensor *dnn.Tensor
	// Uses are the kernel indices at which the tensor is active, ascending.
	Uses []int
	// BornAt is the first kernel that uses the tensor; global tensors are
	// born before the iteration (BornAt == -1).
	BornAt int
	// DeadAt is the index one past the last kernel that uses the tensor;
	// global tensors never die (DeadAt == number of kernels + 1 sentinel).
	DeadAt int
}

// AliveAt reports whether the tensor occupies memory during kernel k when
// nothing has been swapped out.
func (ti *TensorInfo) AliveAt(k int) bool { return ti.BornAt <= k && k < ti.DeadAt }

// Period is one inactive period of one tensor (§4.2): the tensor is alive
// but unused between the end of kernel AfterKernel and the start of kernel
// NextUse.
type Period struct {
	Tensor *dnn.Tensor
	// AfterKernel is the last kernel to use the tensor before the gap.
	AfterKernel int
	// NextUse is the kernel at which the tensor becomes active again. For a
	// wrap-around period this is a kernel of the *next* iteration, so
	// NextUse <= AfterKernel there.
	NextUse int
	// Wraps marks a global tensor's period spanning the iteration boundary.
	Wraps bool
	// Start and End place the period on the estimated (stall-free)
	// timeline; for wrap-around periods End = iteration total + next start.
	Start, End units.Time
}

// Duration reports the period's length on the estimated timeline.
func (p *Period) Duration() units.Duration { return p.End - p.Start }

// Analysis is the complete §4.2 output for one (graph, trace) pair.
type Analysis struct {
	Graph *dnn.Graph
	Trace *profile.Trace
	// Starts[k] is kernel k's start time on the stall-free timeline;
	// Starts[len(Kernels)] is the iteration's total time.
	Starts []units.Time
	// Infos is indexed by tensor ID.
	Infos []TensorInfo
	// Periods lists every inactive period of every tensor, ordered by
	// (tensor ID, start).
	Periods []Period
	// ActiveBytes[k] is the memory used by kernel k's working set.
	ActiveBytes []units.Bytes
	// AliveBytes[k] is the memory pressure at kernel k with no migrations:
	// the total size of all tensors alive during k.
	AliveBytes []units.Bytes
}

// Analyze runs tensor vitality analysis.
func Analyze(g *dnn.Graph, tr *profile.Trace) (*Analysis, error) {
	if len(tr.Durations) != len(g.Kernels) {
		return nil, fmt.Errorf("vitality: trace has %d kernels, graph %q has %d",
			len(tr.Durations), g.Name, len(g.Kernels))
	}
	n := len(g.Kernels)
	a := &Analysis{
		Graph:       g,
		Trace:       tr,
		Starts:      tr.StartTimes(),
		Infos:       make([]TensorInfo, len(g.Tensors)),
		ActiveBytes: make([]units.Bytes, n),
		AliveBytes:  make([]units.Bytes, n),
	}

	uses := g.UseIndices()
	for id, t := range g.Tensors {
		info := TensorInfo{Tensor: t, Uses: uses[id]}
		switch t.Kind {
		case dnn.Global:
			info.BornAt = -1
			info.DeadAt = n + 1
		default:
			info.BornAt = uses[id][0]
			info.DeadAt = uses[id][len(uses[id])-1] + 1
		}
		a.Infos[id] = info
	}

	// Memory-consumption curves (Figure 2).
	for ki, k := range g.Kernels {
		a.ActiveBytes[ki] = k.WorkingSet()
	}
	// AliveBytes via +size at born, -size after death sweep.
	delta := make([]units.Bytes, n+1)
	for id := range a.Infos {
		info := &a.Infos[id]
		born := info.BornAt
		if born < 0 {
			born = 0
		}
		delta[born] += info.Tensor.Size
		if info.DeadAt <= n {
			delta[info.DeadAt] -= info.Tensor.Size
		}
	}
	var acc units.Bytes
	for ki := 0; ki < n; ki++ {
		acc += delta[ki]
		a.AliveBytes[ki] = acc
	}

	// Inactive periods (§4.2).
	total := a.Starts[n]
	for id := range a.Infos {
		info := &a.Infos[id]
		u := info.Uses
		for i := 0; i+1 < len(u); i++ {
			if u[i+1] == u[i]+1 {
				continue // back-to-back uses leave no gap
			}
			a.Periods = append(a.Periods, Period{
				Tensor:      info.Tensor,
				AfterKernel: u[i],
				NextUse:     u[i+1],
				Start:       a.Starts[u[i]+1],
				End:         a.Starts[u[i+1]],
			})
		}
		if info.Tensor.Kind == dnn.Global {
			// Wrap-around period: last use this iteration to first use next.
			last, first := u[len(u)-1], u[0]
			start := a.Starts[last+1]
			end := total + a.Starts[first]
			if end > start {
				a.Periods = append(a.Periods, Period{
					Tensor:      info.Tensor,
					AfterKernel: last,
					NextUse:     first,
					Wraps:       true,
					Start:       start,
					End:         end,
				})
			}
		}
	}
	return a, nil
}

// MustAnalyze is Analyze for deterministic inputs.
func MustAnalyze(g *dnn.Graph, tr *profile.Trace) *Analysis {
	a, err := Analyze(g, tr)
	if err != nil {
		panic(err)
	}
	return a
}

// PeakAlive reports the maximum no-migration memory pressure — what the
// Ideal baseline's GPU would have to hold.
func (a *Analysis) PeakAlive() units.Bytes {
	var peak units.Bytes
	for _, b := range a.AliveBytes {
		if b > peak {
			peak = b
		}
	}
	return peak
}

// PeakActive reports the maximum single-kernel working set.
func (a *Analysis) PeakActive() units.Bytes {
	var peak units.Bytes
	for _, b := range a.ActiveBytes {
		if b > peak {
			peak = b
		}
	}
	return peak
}

// KernelSpan reports the [start, end) interval of kernel k on the
// stall-free timeline.
func (a *Analysis) KernelSpan(k int) (units.Time, units.Time) {
	return a.Starts[k], a.Starts[k+1]
}

// HideablePeriods reports the fraction of inactive periods long enough to
// hide a round-trip to a device with the given one-way transfer time — the
// §3 observation that 60–80% of periods can hide SSD swap latency.
func (a *Analysis) HideablePeriods(latency units.Duration) float64 {
	if len(a.Periods) == 0 {
		return 0
	}
	var ok int
	for i := range a.Periods {
		p := &a.Periods[i]
		transfer := 2 * (latency + units.TransferTime(p.Tensor.Size, units.GBps(3.0)))
		if p.Duration() >= transfer {
			ok++
		}
	}
	return float64(ok) / float64(len(a.Periods))
}

package vitality

import (
	"testing"
	"testing/quick"

	"g10sim/internal/dnn"
	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
)

// chain builds K0(uses A) -> K1 -> K2(uses A) with unit durations, where A
// is inactive during K1.
func chain(t *testing.T) (*dnn.Graph, *profile.Trace) {
	t.Helper()
	b := dnn.NewBuilder("chain", 1)
	a := b.Tensor("A", dnn.Intermediate, 8*units.MB)
	x := b.Tensor("X", dnn.Intermediate, units.MB)
	y := b.Tensor("Y", dnn.Intermediate, units.MB)
	w := b.Tensor("W", dnn.Global, 2*units.MB)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{w}, []*dnn.Tensor{a, x})
	b.Kernel("k1", dnn.Forward, 1, []*dnn.Tensor{x}, []*dnn.Tensor{y})
	b.Kernel("k2", dnn.Backward, 1, []*dnn.Tensor{a, y, w}, []*dnn.Tensor{y})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := &profile.Trace{Model: "chain", Batch: 1,
		Durations: []units.Duration{100 * units.Microsecond, 200 * units.Microsecond, 300 * units.Microsecond}}
	return g, tr
}

func TestAnalyzeLifetimes(t *testing.T) {
	g, tr := chain(t)
	a := MustAnalyze(g, tr)

	find := func(name string) *TensorInfo {
		for i := range a.Infos {
			if a.Infos[i].Tensor.Name == name {
				return &a.Infos[i]
			}
		}
		t.Fatalf("tensor %q missing", name)
		return nil
	}
	A := find("A")
	if A.BornAt != 0 || A.DeadAt != 3 {
		t.Errorf("A lifetime = [%d,%d), want [0,3)", A.BornAt, A.DeadAt)
	}
	X := find("X")
	if X.BornAt != 0 || X.DeadAt != 2 {
		t.Errorf("X lifetime = [%d,%d), want [0,2)", X.BornAt, X.DeadAt)
	}
	W := find("W")
	if W.BornAt != -1 || W.DeadAt != 4 {
		t.Errorf("W lifetime = [%d,%d), want [-1,4)", W.BornAt, W.DeadAt)
	}
	if !W.AliveAt(0) || !W.AliveAt(2) {
		t.Error("global tensor not alive")
	}
	if A.AliveAt(3) {
		t.Error("A alive past death")
	}
}

func TestAnalyzePeriods(t *testing.T) {
	g, tr := chain(t)
	a := MustAnalyze(g, tr)

	var aPeriod, wWrap *Period
	for i := range a.Periods {
		p := &a.Periods[i]
		switch {
		case p.Tensor.Name == "A":
			aPeriod = p
		case p.Tensor.Name == "W" && p.Wraps:
			wWrap = p
		}
	}
	if aPeriod == nil {
		t.Fatal("A has no inactive period")
	}
	// A inactive from end of k0 (100µs) to start of k2 (300µs).
	if aPeriod.Start != 100*units.Microsecond || aPeriod.End != 300*units.Microsecond {
		t.Errorf("A period = [%v,%v]", aPeriod.Start, aPeriod.End)
	}
	if aPeriod.Duration() != 200*units.Microsecond {
		t.Errorf("A period duration = %v", aPeriod.Duration())
	}
	if aPeriod.AfterKernel != 0 || aPeriod.NextUse != 2 {
		t.Errorf("A period kernels = (%d,%d)", aPeriod.AfterKernel, aPeriod.NextUse)
	}

	// W is used at k0 (first kernel) and k2 (last kernel): its wrap-around
	// gap from end-of-k2 to next-iteration k0 has zero length and must be
	// omitted. Its only period is the in-iteration one [100µs, 300µs].
	if wWrap != nil {
		t.Errorf("W has a zero-length wrap period [%v, %v]", wWrap.Start, wWrap.End)
	}
	var wMid *Period
	for i := range a.Periods {
		if p := &a.Periods[i]; p.Tensor.Name == "W" && !p.Wraps {
			wMid = p
		}
	}
	if wMid == nil || wMid.Start != 100*units.Microsecond || wMid.End != 300*units.Microsecond {
		t.Errorf("W in-iteration period = %+v, want [100µs,300µs]", wMid)
	}
}

func TestWrapPeriodForLateFirstUse(t *testing.T) {
	// W used only by the middle kernel: wrap period spans end-of-k1 to
	// start-of-k1 next iteration.
	b := dnn.NewBuilder("wrap", 1)
	x := b.Tensor("X", dnn.Intermediate, units.MB)
	w := b.Tensor("W", dnn.Global, units.MB)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{x}, []*dnn.Tensor{x})
	b.Kernel("k1", dnn.Forward, 1, []*dnn.Tensor{w, x}, []*dnn.Tensor{x})
	b.Kernel("k2", dnn.Forward, 1, []*dnn.Tensor{x}, []*dnn.Tensor{x})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	us := units.Microsecond
	tr := &profile.Trace{Durations: []units.Duration{10 * us, 20 * us, 30 * us}}
	a := MustAnalyze(g, tr)
	var wrap *Period
	for i := range a.Periods {
		if a.Periods[i].Wraps {
			wrap = &a.Periods[i]
		}
	}
	if wrap == nil {
		t.Fatal("no wrap period")
	}
	// End of k1 = 30µs; next-iteration k1 start = 60 + 10 = 70µs.
	if wrap.Start != 30*us || wrap.End != 70*us {
		t.Errorf("wrap = [%v,%v], want [30µs,70µs]", wrap.Start, wrap.End)
	}
	if wrap.Duration() != 40*us {
		t.Errorf("wrap duration = %v", wrap.Duration())
	}
}

func TestMemoryCurves(t *testing.T) {
	g, tr := chain(t)
	a := MustAnalyze(g, tr)
	// Active: k0 = W+A+X = 11MB; k1 = X+Y = 2MB; k2 = A+Y+W = 11MB.
	want := []units.Bytes{11 * units.MB, 2 * units.MB, 11 * units.MB}
	for i, w := range want {
		if a.ActiveBytes[i] != w {
			t.Errorf("ActiveBytes[%d] = %v, want %v", i, a.ActiveBytes[i], w)
		}
	}
	// Alive: k0 = all born at 0 (A,X,Y? Y born at k1)... A+X+W = 11MB;
	// k1 = A+X+Y+W = 12MB; k2 = A+Y+W (X dead) = 11MB.
	wantAlive := []units.Bytes{11 * units.MB, 12 * units.MB, 11 * units.MB}
	for i, w := range wantAlive {
		if a.AliveBytes[i] != w {
			t.Errorf("AliveBytes[%d] = %v, want %v", i, a.AliveBytes[i], w)
		}
	}
	if a.PeakAlive() != 12*units.MB {
		t.Errorf("PeakAlive = %v", a.PeakAlive())
	}
	if a.PeakActive() != 11*units.MB {
		t.Errorf("PeakActive = %v", a.PeakActive())
	}
}

func TestAnalyzeRejectsMismatchedTrace(t *testing.T) {
	g, _ := chain(t)
	tr := &profile.Trace{Durations: []units.Duration{1}}
	if _, err := Analyze(g, tr); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestKernelSpan(t *testing.T) {
	g, tr := chain(t)
	a := MustAnalyze(g, tr)
	s, e := a.KernelSpan(1)
	if s != 100*units.Microsecond || e != 300*units.Microsecond {
		t.Errorf("span(1) = [%v,%v]", s, e)
	}
}

// Invariants on real model graphs.
func TestInvariantsOnModels(t *testing.T) {
	for _, g := range []*dnn.Graph{models.TinyMLP(8), models.TinyCNN(8), models.TinyTransformer(4)} {
		tr := profile.Profile(g, profile.A100(1))
		a := MustAnalyze(g, tr)
		n := len(g.Kernels)

		// Periods lie within lifetimes and do not overlap per tensor.
		lastEnd := map[int]units.Time{}
		for i := range a.Periods {
			p := &a.Periods[i]
			info := &a.Infos[p.Tensor.ID]
			if p.Duration() <= 0 {
				t.Fatalf("%s: zero/negative period for %s", g.Name, p.Tensor.Name)
			}
			if !p.Wraps {
				if p.AfterKernel < info.BornAt || p.NextUse >= info.DeadAt {
					t.Fatalf("%s: period outside lifetime for %s", g.Name, p.Tensor.Name)
				}
				if p.Start < lastEnd[p.Tensor.ID] {
					t.Fatalf("%s: overlapping periods for %s", g.Name, p.Tensor.Name)
				}
				lastEnd[p.Tensor.ID] = p.End
			}
		}

		// Active ⊆ alive at every kernel.
		for ki := 0; ki < n; ki++ {
			if a.ActiveBytes[ki] > a.AliveBytes[ki] {
				t.Fatalf("%s: active %v > alive %v at kernel %d", g.Name, a.ActiveBytes[ki], a.AliveBytes[ki], ki)
			}
		}

		// Alive curve matches a direct recomputation.
		for ki := 0; ki < n; ki += 7 {
			var direct units.Bytes
			for id := range a.Infos {
				if a.Infos[id].AliveAt(ki) {
					direct += a.Infos[id].Tensor.Size
				}
			}
			if direct != a.AliveBytes[ki] {
				t.Fatalf("%s: AliveBytes[%d] = %v, direct = %v", g.Name, ki, a.AliveBytes[ki], direct)
			}
		}
	}
}

// TestPaperObservationO1: active tensors are a small fraction of the total
// (paper: <10% of total requirement for most models).
func TestPaperObservationO1(t *testing.T) {
	g := models.TinyCNN(64)
	tr := profile.Profile(g, profile.A100(1))
	a := MustAnalyze(g, tr)
	ratio := float64(a.PeakActive()) / float64(a.PeakAlive())
	if ratio > 0.5 {
		t.Errorf("peak active / peak alive = %.2f; expected well below 1", ratio)
	}
}

// TestPaperObservationO2: most tensors are used only a few times, so
// inactive periods exist in quantity.
func TestPaperObservationO2(t *testing.T) {
	g := models.TinyCNN(16)
	tr := profile.Profile(g, profile.A100(1))
	a := MustAnalyze(g, tr)
	if len(a.Periods) < len(g.Tensors)/4 {
		t.Errorf("only %d periods for %d tensors", len(a.Periods), len(g.Tensors))
	}
	if h := a.HideablePeriods(20 * units.Microsecond); h <= 0 {
		t.Errorf("HideablePeriods = %v, want > 0", h)
	}
}

// Property: on random linear chains, every intermediate tensor consumed
// j-i > 1 kernels after production has exactly one period of the gap length.
func TestPeriodsOnRandomChains(t *testing.T) {
	f := func(gapsRaw []uint8) bool {
		if len(gapsRaw) == 0 || len(gapsRaw) > 12 {
			return true
		}
		b := dnn.NewBuilder("prop", 1)
		cur := b.Tensor("t", dnn.Intermediate, units.MB)
		prev := cur
		k := 0
		var durs []units.Duration
		// Build a chain where tensor i is re-read gaps[i] kernels later.
		for _, graw := range gapsRaw {
			gap := int(graw%3) + 1
			for j := 0; j < gap; j++ {
				next := b.Tensor("t", dnn.Intermediate, units.MB)
				b.Kernel("op", dnn.Forward, 1, []*dnn.Tensor{prev}, []*dnn.Tensor{next})
				prev = next
				durs = append(durs, units.Duration(k+1)*units.Microsecond)
				k++
			}
		}
		g, err := b.Build()
		if err != nil {
			return true
		}
		tr := &profile.Trace{Durations: durs}
		a, err := Analyze(g, tr)
		if err != nil {
			return false
		}
		// Every period must be positive and start/end aligned to kernel
		// boundaries.
		for i := range a.Periods {
			p := &a.Periods[i]
			if p.Duration() <= 0 {
				return false
			}
			if p.Start != a.Starts[p.AfterKernel+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package adapt

import (
	"testing"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// sig builds a fetch-direction signal with the given inflation over one
// second of exclusive wire time.
func sig(fetchInflation float64) gpu.LatenessSignal {
	return gpu.LatenessSignal{
		FetchFlows:     4,
		FetchBytes:     units.GB,
		FetchExclusive: units.Second,
		FetchRealized:  units.Duration(fetchInflation * float64(units.Second)),
	}
}

func TestControllerDeadband(t *testing.T) {
	c := New(Config{})
	// No observations: nothing to do.
	if _, ok := c.Retiming(); ok {
		t.Error("fresh controller asked for a retiming")
	}
	// Inflation inside the default deadband: still nothing.
	c.Observe(sig(1.1))
	if _, ok := c.Retiming(); ok {
		t.Errorf("retiming requested inside the deadband (EMA %.2f)", c.FetchInflation())
	}
	// Past the deadband the factor is the EMA.
	c.Observe(sig(3.0))
	rt, ok := c.Retiming()
	if !ok {
		t.Fatal("no retiming past the deadband")
	}
	want := 0.5*3.0 + 0.5*1.1
	if diff := rt.FetchInflation - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("FetchInflation = %v, want EMA %v", rt.FetchInflation, want)
	}
}

func TestControllerClampsInflation(t *testing.T) {
	c := New(Config{MaxInflation: 4})
	c.Observe(sig(100))
	rt, ok := c.Retiming()
	if !ok {
		t.Fatal("no retiming at 100x inflation")
	}
	if rt.FetchInflation != 4 {
		t.Errorf("FetchInflation = %v, want clamp 4", rt.FetchInflation)
	}
}

func TestControllerIgnoresEmptyDirections(t *testing.T) {
	c := New(Config{})
	c.Observe(gpu.LatenessSignal{}) // no flows at all
	if c.FetchInflation() != 1 || c.EvictInflation() != 1 {
		t.Errorf("EMAs moved on an empty signal: %v / %v", c.FetchInflation(), c.EvictInflation())
	}
	// An eviction-only signal must not disturb the fetch EMA.
	c.Observe(gpu.LatenessSignal{
		EvictFlows: 2, EvictBytes: units.MB,
		EvictExclusive: units.Millisecond, EvictRealized: 3 * units.Millisecond,
	})
	if c.FetchInflation() != 1 {
		t.Errorf("fetch EMA moved on an evict-only signal: %v", c.FetchInflation())
	}
	if c.EvictInflation() != 3 {
		t.Errorf("evict EMA = %v, want 3", c.EvictInflation())
	}
}

func TestControllerDeferOnIdleWritePath(t *testing.T) {
	c := New(Config{})
	c.Observe(gpu.LatenessSignal{
		EvictFlows: 2, EvictBytes: units.MB,
		EvictExclusive: units.Millisecond, EvictRealized: units.Millisecond,
	})
	rt, ok := c.Retiming()
	if !ok || !rt.DeferEvictions {
		t.Errorf("idle write path did not enable deferral: %+v ok=%v", rt, ok)
	}
	// A busy write path disables it again.
	c.Observe(gpu.LatenessSignal{
		EvictFlows: 2, EvictBytes: units.MB,
		EvictExclusive: units.Millisecond, EvictRealized: 10 * units.Millisecond,
	})
	if rt, _ := c.Retiming(); rt.DeferEvictions {
		t.Errorf("busy write path (EMA %.2f) still deferring", c.EvictInflation())
	}
}

// planProgram builds a retimable program over a pressured workload.
func planProgram(t *testing.T) *planner.Program {
	t.Helper()
	g := models.TinyCNN(128)
	tr := profile.Profile(g, profile.A100(200))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := planner.Default()
	cfg.GPUCapacity = a.PeakAlive() / 2
	cfg.HostCapacity = a.PeakAlive()
	plan := planner.New(a, cfg)
	if len(plan.Decisions) == 0 {
		t.Fatal("plan scheduled no migrations")
	}
	return plan.Program
}

// TestControllerNextProgram: contention re-times the plan, persistent calm
// reverts to the exact base program, and an unobserved controller never
// touches it.
func TestControllerNextProgram(t *testing.T) {
	base := planProgram(t)
	c := New(Config{})
	if np := c.NextProgram(base); np != nil {
		t.Fatal("unobserved controller replaced the program")
	}
	c.Observe(sig(6))
	retimed := c.NextProgram(base)
	if retimed == nil || retimed == base {
		t.Fatal("6x inflation did not re-time the program")
	}
	// Calm iterations bring the EMA back inside the deadband; the
	// controller must hand back the base program itself, not a copy.
	for i := 0; i < 10; i++ {
		c.Observe(sig(1))
	}
	if np := c.NextProgram(retimed); np != base {
		t.Errorf("calm controller returned %p, want the base program %p", np, base)
	}
	if np := c.NextProgram(base); np != nil {
		t.Error("calm controller replaced the base program again")
	}
}

// Package adapt is the online replanning layer for G10's smart tensor
// migrations. G10's plan is computed offline assuming exclusive SSD and
// host bandwidth (§4); on a shared flash array the realized transfer times
// stretch by the tenant's contention share and planned prefetches silently
// miss their deadlines. The controller closes that loop without re-running
// the planner: each iteration it folds the machine's observed per-direction
// lateness (gpu.LatenessSignal) into an EMA of the bandwidth-inflation
// factor, and re-times the next iteration's instrumented instructions
// against it — prefetches issue early enough that their reads, slowed by
// the observed share, still meet the plan's deadlines; evictions are
// deferred while the write path is idle. Adaptation is per-iteration, not
// per-instruction: one iteration is the shortest window over which the
// contention share is a stable, measurable quantity (a single transfer's
// slowdown is mostly queueing noise), and re-timing between iterations
// keeps the instruction stream — and with it the simulation — a pure
// function of the tenant's own observation history.
package adapt

import (
	"g10sim/internal/gpu"
	"g10sim/internal/planner"
)

// Config tunes the controller. The zero value selects the defaults.
type Config struct {
	// Alpha is the EMA weight of the newest iteration's inflation sample
	// (default 0.5: the last two iterations dominate, so the controller
	// tracks admissions and departures of co-tenants within a few
	// iterations).
	Alpha float64
	// Deadband is the inflation above 1 the controller ignores (default
	// 0.15). Self-contention between a tenant's own overlapping chunk
	// flows produces small inflations even alone on the device; within the
	// deadband the program is left untouched, so an uncontended adaptive
	// run replays the static plan bit for bit.
	Deadband float64
	// MaxInflation clamps the fetch re-timing factor (default 8): beyond
	// it, earlier issue just parks transfers in the metadata queues.
	MaxInflation float64
	// DeferIdleBelow enables eviction deferral while the observed evict
	// inflation stays at or below it (default 1.05: the write path is
	// effectively private).
	DeferIdleBelow float64
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.Deadband <= 0 {
		c.Deadband = 0.15
	}
	if c.MaxInflation < 1 {
		c.MaxInflation = 8
	}
	if c.DeferIdleBelow < 1 {
		c.DeferIdleBelow = 1.05
	}
	return c
}

// Controller folds per-iteration lateness signals into per-direction
// inflation EMAs and re-times programs against them. One controller serves
// one tenant; it carries per-run state.
type Controller struct {
	cfg Config
	// fetchEMA/evictEMA track the per-direction inflation; sampled reports
	// whether any signal with flows has arrived yet.
	fetchEMA, evictEMA   float64
	fetchSeen, evictSeen bool
	lateFetches          int64
	// base is the static plan the first NextProgram call saw; every
	// re-timing is derived from it, and the controller hands it back when
	// contention subsides.
	base *planner.Program
}

// New builds a controller.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), fetchEMA: 1, evictEMA: 1}
}

// Observe folds one iteration's signal into the EMAs. Directions with no
// completed flows carry no information and leave their EMA untouched.
func (c *Controller) Observe(sig gpu.LatenessSignal) {
	c.lateFetches += sig.LateFetches
	if sig.FetchFlows > 0 {
		c.fetchEMA = c.fold(c.fetchEMA, sig.FetchInflation(), &c.fetchSeen)
	}
	if sig.EvictFlows > 0 {
		c.evictEMA = c.fold(c.evictEMA, sig.EvictInflation(), &c.evictSeen)
	}
}

func (c *Controller) fold(ema, sample float64, seen *bool) float64 {
	if !*seen {
		*seen = true
		return sample
	}
	return c.cfg.Alpha*sample + (1-c.cfg.Alpha)*ema
}

// FetchInflation reports the smoothed fetch-direction inflation (>= 1).
func (c *Controller) FetchInflation() float64 { return c.fetchEMA }

// EvictInflation reports the smoothed evict-direction inflation (>= 1).
func (c *Controller) EvictInflation() float64 { return c.evictEMA }

// Retiming derives the re-timing the current EMAs call for. ok is false
// when they call for nothing: no signal yet, or everything inside the
// deadband with a busy (non-deferrable) write path.
func (c *Controller) Retiming() (planner.Retiming, bool) {
	var rt planner.Retiming
	rt.FetchInflation = 1
	if c.fetchSeen && c.fetchEMA > 1+c.cfg.Deadband {
		rt.FetchInflation = c.fetchEMA
		if rt.FetchInflation > c.cfg.MaxInflation {
			rt.FetchInflation = c.cfg.MaxInflation
		}
	}
	rt.EvictInflation = c.evictEMA
	rt.DeferEvictions = c.evictSeen && c.evictEMA <= c.cfg.DeferIdleBelow
	if rt.FetchInflation <= 1 && !rt.DeferEvictions {
		return planner.Retiming{FetchInflation: 1, EvictInflation: 1}, false
	}
	return rt, true
}

// NextProgram re-times the plan against the controller's current view, or
// returns nil when the program should stay as it is. The first call's cur
// is the static plan; it is kept as the anchor, so successive re-timings
// never compound factors and a quiet device reverts to the plan exactly.
func (c *Controller) NextProgram(cur *planner.Program) *planner.Program {
	if c.base == nil {
		c.base = cur
	}
	rt, ok := c.Retiming()
	if !ok {
		if cur != c.base {
			return c.base // contention subsided: back to the static plan
		}
		return nil
	}
	np := c.base.Retime(rt)
	if np == cur {
		return nil
	}
	return np
}

// LateFetches reports the cumulative plan deadline misses observed.
func (c *Controller) LateFetches() int64 { return c.lateFetches }

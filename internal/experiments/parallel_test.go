package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestParallelSessionMatchesSerial asserts the worker-pool engine is
// deterministic: a session fanning runs across many workers produces
// byte-identical tables and deeply equal rows to a fully serial session.
func TestParallelSessionMatchesSerial(t *testing.T) {
	models := []string{"BERT", "ResNet152"}
	run := func(workers int) (string, []PerfRow, []SweepRow, []Fig19Row) {
		var buf bytes.Buffer
		s := NewSession(Options{Short: true, Models: models, W: &buf, Workers: workers})
		rows11, err := Figure11(s)
		if err != nil {
			t.Fatalf("workers=%d: Figure11: %v", workers, err)
		}
		rows15, err := Figure15(s)
		if err != nil {
			t.Fatalf("workers=%d: Figure15: %v", workers, err)
		}
		rows19, err := Figure19(s)
		if err != nil {
			t.Fatalf("workers=%d: Figure19: %v", workers, err)
		}
		return buf.String(), rows11, rows15, rows19
	}

	serialOut, s11, s15, s19 := run(1)
	parallelOut, p11, p15, p19 := run(8)

	if serialOut != parallelOut {
		t.Errorf("printed tables differ between serial and parallel sessions")
	}
	if !reflect.DeepEqual(s11, p11) {
		t.Errorf("Figure11 rows differ between serial and parallel sessions")
	}
	if !reflect.DeepEqual(s15, p15) {
		t.Errorf("Figure15 rows differ between serial and parallel sessions")
	}
	if !reflect.DeepEqual(s19, p19) {
		t.Errorf("Figure19 rows differ between serial and parallel sessions")
	}
}

// TestSessionSingleFlight asserts concurrent identical requests collapse to
// one simulation: both calls must observe the very same cached value.
func TestSessionSingleFlight(t *testing.T) {
	s := NewSession(Options{Short: true, Models: []string{"BERT"}, Workers: 4})
	type out struct {
		res interface{}
		err error
	}
	results := make([]out, 8)
	parallelDo(len(results), 4, func(i int) {
		r, err := s.RunBase("BERT", "G10")
		results[i] = out{res: r, err: err}
	})
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("call %d: %v", i, r.err)
		}
		if !reflect.DeepEqual(r.res, results[0].res) {
			t.Errorf("call %d diverged from call 0", i)
		}
	}
}

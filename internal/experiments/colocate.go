// Heterogeneous co-location study: distinct models under distinct policies
// sharing one flash array — the scenario the cluster engine exists for.
// 10Cache and TENSILE both observe that co-located training jobs interact
// through shared storage and host memory in ways per-job models miss; this
// experiment quantifies that interference for G10 against its baselines.
package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/units"
)

// colocateJob names one tenant of a co-location mix.
type colocateJob struct {
	Model  string
	Policy string
}

// ColocateRow reports one job of one mix.
type ColocateRow struct {
	Mix    string // e.g. "BERT:G10 + ResNet152:Base UVM"
	Model  string
	Batch  int
	Policy string

	// Norm is the job's normalized performance co-located; SoloNorm the
	// same job alone on the same shared array and host pool. Interference
	// is SoloNorm − Norm (percentage points of ideal lost to neighbours).
	Norm         float64
	SoloNorm     float64
	Interference float64

	// SSDWriteGB and TenantWA are the job's attributed share of the shared
	// array: its flash writes and the write amplification (including GC
	// its writes triggered).
	SSDWriteGB float64
	TenantWA   float64

	Failed bool
}

// colocateMixes is the study's fixed job set: a transformer and a CNN, G10
// against G10 and against reactive baselines on one array.
var colocateMixes = [][]colocateJob{
	{{"BERT", "G10"}, {"ResNet152", "G10"}},
	{{"BERT", "G10"}, {"ResNet152", "Base UVM"}},
	{{"BERT", "DeepUM+"}, {"ResNet152", "G10"}},
}

func mixName(jobs []colocateJob) string {
	out := ""
	for i, j := range jobs {
		if i > 0 {
			out += " + "
		}
		out += j.Model + ":" + j.Policy
	}
	return out
}

// colocateParams assembles one mix's cluster: per-tenant GPU sizing from
// each job's own analysis, one shared array, and a host pool holding the
// sum of the per-job host budgets (so the static and shared totals match).
func (s *Session) colocateParams(jobs []colocateJob) (gpu.ClusterParams, error) {
	var p gpu.ClusterParams
	var hostTotal units.Bytes
	for _, j := range jobs {
		spec, err := models.ByName(j.Model)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		batch := s.batchFor(spec)
		a, err := s.Analysis(j.Model, batch)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		cfg := s.baseConfig(a)
		pol, err := s.clusterPolicy(j.Policy)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		hostTotal += cfg.HostCapacity
		p.Tenants = append(p.Tenants, gpu.ClusterTenant{Analysis: a, Policy: pol, Config: cfg})
		if p.Shared.SSD.Capacity == 0 {
			p.Shared = cfg
		}
	}
	p.Shared.HostCapacity = hostTotal
	return p, nil
}

// colocateSolo runs one job alone on the same shared substrate as mix. The
// cache key names the substrate-relevant inputs (job, batch, host pool)
// rather than the mix, so identical solo runs appearing in several mixes
// simulate once.
func (s *Session) colocateSolo(jobs []colocateJob, idx int) (gpu.Result, error) {
	p, err := s.colocateParams(jobs)
	if err != nil {
		return gpu.Result{}, err
	}
	job := jobs[idx]
	key := fmt.Sprintf("colo-solo/%s/%d/%s/host=%d",
		job.Model, p.Tenants[idx].Analysis.Graph.Batch, job.Policy, p.Shared.HostCapacity)
	res, err := s.RunCluster(key, func() (gpu.ClusterParams, error) {
		p, err := s.colocateParams(jobs)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		p.Tenants = p.Tenants[idx : idx+1]
		return p, nil
	})
	if err != nil {
		return gpu.Result{}, err
	}
	return res.Tenants[0], nil
}

// Colocate runs the heterogeneous co-location study on the cluster engine
// and prints per-job interference and attributed flash wear.
func Colocate(s *Session) ([]ColocateRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Co-location study: heterogeneous jobs sharing one SSD array ===")
	fmt.Fprintf(w, "%-34s %-14s %-10s %7s %7s %8s %10s %6s\n",
		"mix", "job", "policy", "co%", "solo%", "interf", "ssd-wr(GB)", "WA")

	var jobs []func()
	for _, mix := range colocateMixes {
		mix := mix
		jobs = append(jobs, func() {
			key := "colo/" + mixName(mix)
			_, _ = s.RunCluster(key, func() (gpu.ClusterParams, error) { return s.colocateParams(mix) })
		})
		for i := range mix {
			i := i
			jobs = append(jobs, func() { _, _ = s.colocateSolo(mix, i) })
		}
	}
	s.prewarm(jobs)

	var rows []ColocateRow
	for _, mix := range colocateMixes {
		name := mixName(mix)
		cres, err := s.RunCluster("colo/"+name, func() (gpu.ClusterParams, error) { return s.colocateParams(mix) })
		if err != nil {
			return nil, err
		}
		for i, job := range mix {
			co := cres.Tenants[i]
			solo, err := s.colocateSolo(mix, i)
			if err != nil {
				return nil, err
			}
			row := ColocateRow{
				Mix:        name,
				Model:      co.Model,
				Batch:      co.Batch,
				Policy:     job.Policy,
				Norm:       co.NormalizedPerf(),
				SoloNorm:   solo.NormalizedPerf(),
				SSDWriteGB: co.SSDStats.HostWriteBytes.GiB(),
				TenantWA:   co.WriteAmp,
				Failed:     co.Failed,
			}
			row.Interference = row.SoloNorm - row.Norm
			rows = append(rows, row)
			if row.Failed {
				fmt.Fprintf(w, "%-34s %-14s %-10s %7s\n", name, co.Model, job.Policy, "FAIL")
				continue
			}
			fmt.Fprintf(w, "%-34s %-14s %-10s %6.1f%% %6.1f%% %7.1fpp %10.1f %6.2f\n",
				name, co.Model, job.Policy, 100*row.Norm, 100*row.SoloNorm,
				100*row.Interference, row.SSDWriteGB, row.TenantWA)
		}
		fmt.Fprintf(w, "%-34s array WA %.2f, makespan %v\n", "", cres.WriteAmp, cres.Makespan)
	}
	return rows, nil
}

// Inference serving study: the tiered KV-cache under dynamic request
// traffic. A fixed-seed trace of LLM inference requests (Poisson arrivals,
// near-normal prompt lengths, exponential output lengths) plays against the
// serving engine twice — the single-tier baseline, whose only pressure
// relief is vLLM-style preempt-and-recompute, and the tiered policy, which
// offloads cold KV blocks to host DRAM past a residency threshold and
// reloads them on demand. Rows report the request-latency distribution
// (TTFT and end-to-end, p50/p99), the eviction traffic, and the makespan at
// each trace scale; the host wall-clock cost of simulating each cell (the
// simulator-throughput figure of merit) prints to the session's perf writer
// only, since it is a property of the machine running the simulation, not
// of the simulated system.
package experiments

import (
	"fmt"
	"math"
	"time"

	"g10sim/internal/gpu"
	"g10sim/internal/policy"
	"g10sim/internal/units"
)

// inferenceSeed fixes the request trace; both policy rows replay the same
// trace, so they differ only in KV tiering.
const inferenceSeed = 0x67313069 // "g10i"

// inferencePolicies compares the serving baseline against the tiered
// design at the H10-style 0.8 residency threshold.
func inferencePolicies() []gpu.KVPolicy {
	return []gpu.KVPolicy{policy.SingleTierKV(), policy.TieredKV(0.8)}
}

// InferenceRow summarises one (policy, trace size) cell.
type InferenceRow struct {
	Policy   string
	Requests int

	// TTFT is first-token latency (arrival to prefill completion); E2E the
	// full request span. Percentiles are over the trace's requests.
	TTFTp50ms float64
	TTFTp99ms float64
	E2Ep50s   float64
	E2Ep99s   float64

	Preemptions int64
	Offloads    int64
	Reloads     int64
	OffloadedGB float64
	MakespanSec float64
}

// inferenceSizes reports the studied trace scales: 10^4..10^6 requests in
// full mode, a sub-second pair under Short.
func (s *Session) inferenceSizes() []int {
	if s.opt.Short {
		return []int{240, 960}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// inferenceTraceShape is the request distribution for the session scope.
// Full mode models an 8B-class chat service near saturation: ~151 req/s
// against four servers, prompts N(512, 160) tokens, outputs Exp(160); Short
// shrinks everything onto the churn-scale serving config so the same
// pressure dynamics (waits, offloads, preemptions) appear in milliseconds.
type inferenceTraceShape struct {
	meanGap                          units.Duration
	promptMean, promptDev, promptMax int
	outMean, outMax                  int
}

func (s *Session) inferenceShape() inferenceTraceShape {
	if s.opt.Short {
		return inferenceTraceShape{
			meanGap:    12 * units.Millisecond,
			promptMean: 48, promptDev: 16, promptMax: 96,
			outMean: 40, outMax: 120,
		}
	}
	return inferenceTraceShape{
		meanGap:    6600 * units.Microsecond,
		promptMean: 512, promptDev: 160, promptMax: 1024,
		outMean: 160, outMax: 512,
	}
}

// inferenceTrace builds the n-request arrival trace: exponential
// inter-arrival gaps (Poisson process), Box-Muller prompt lengths,
// exponential output lengths — a pure function of n, the shape, and the
// fixed seed.
func (s *Session) inferenceTrace(n int) []gpu.RequestSpec {
	shape := s.inferenceShape()
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	specs := make([]gpu.RequestSpec, n)
	x := uint64(inferenceSeed)
	var at, u float64
	for i := range specs {
		x, u = fleetLCG(x)
		at += -math.Log(u) * float64(shape.meanGap)
		x, u = fleetLCG(x)
		r := math.Sqrt(-2 * math.Log(u))
		x, u = fleetLCG(x)
		z := r * math.Cos(2*math.Pi*u)
		prompt := clamp(shape.promptMean+int(z*float64(shape.promptDev)), 4, shape.promptMax)
		x, u = fleetLCG(x)
		out := clamp(int(-math.Log(u)*float64(shape.outMean)), 4, shape.outMax)
		specs[i] = gpu.RequestSpec{
			Arrival:      units.Time(at) + 1,
			PromptTokens: prompt,
			OutputTokens: out,
		}
	}
	return specs
}

// inferenceParams assembles one cell's simulation: the defaults (four
// 2048-block servers, 2 MiB blocks) in full mode, the churn-scale config
// under Short.
func (s *Session) inferenceParams(pol gpu.KVPolicy, n int) gpu.InferenceParams {
	p := gpu.InferenceParams{Requests: s.inferenceTrace(n), Policy: pol}
	if s.opt.Short {
		p.Servers = 2
		p.GPUBlocks = 64
		p.HostBlocks = 24
		p.BlockTokens = 4
		p.BlockBytes = 256 * units.KB
	}
	return p
}

// inferenceCell runs (or returns the cached) serving simulation for one
// (policy, size) cell.
func (s *Session) inferenceCell(pol gpu.KVPolicy, n int) (gpu.InferenceResult, time.Duration, error) {
	key := fmt.Sprintf("inference/%s/%d", pol.Name(), n)
	return s.RunInference(key, func() (gpu.InferenceParams, error) {
		return s.inferenceParams(pol, n), nil
	})
}

// Inference runs the serving study and prints per-policy rows at each trace
// scale. The table is deterministic at any Options.Workers/Shards setting;
// the per-cell simulated-requests-per-wall-second lines go to Options.Perf.
func Inference(s *Session) ([]InferenceRow, error) {
	w := s.opt.writer()
	pw := s.opt.perfWriter()
	fmt.Fprintln(w, "=== Inference serving: tiered KV-cache under dynamic request traffic ===")
	fmt.Fprintln(w, "fixed-seed Poisson request trace; single-tier preempts (recompute), tiered-kv offloads cold KV to host DRAM")
	fmt.Fprintf(w, "%-12s %9s %11s %11s %10s %10s %9s %9s %9s %9s %10s\n",
		"policy", "requests", "ttft-p50", "ttft-p99", "e2e-p50", "e2e-p99",
		"preempt", "offload", "reload", "off(GB)", "makespan")

	var jobs []func()
	for _, n := range s.inferenceSizes() {
		for _, pol := range inferencePolicies() {
			n, pol := n, pol
			jobs = append(jobs, func() { _, _, _ = s.inferenceCell(pol, n) })
		}
	}
	s.prewarm(jobs)

	var rows []InferenceRow
	for _, n := range s.inferenceSizes() {
		for _, pol := range inferencePolicies() {
			res, wall, err := s.inferenceCell(pol, n)
			if err != nil {
				return nil, err
			}
			ttft := make([]float64, len(res.Requests))
			e2e := make([]float64, len(res.Requests))
			for i, rq := range res.Requests {
				ttft[i] = units.Duration(rq.FirstToken-rq.Arrival).Seconds() * 1e3
				e2e[i] = units.Duration(rq.Finish - rq.Arrival).Seconds()
			}
			ttftSorted, e2eSorted := sortedCopy(ttft), sortedCopy(e2e)
			row := InferenceRow{
				Policy:      pol.Name(),
				Requests:    n,
				TTFTp50ms:   percentile(ttftSorted, 0.50),
				TTFTp99ms:   percentile(ttftSorted, 0.99),
				E2Ep50s:     percentile(e2eSorted, 0.50),
				E2Ep99s:     percentile(e2eSorted, 0.99),
				Preemptions: res.Preemptions,
				Offloads:    res.Offloads,
				Reloads:     res.Reloads,
				OffloadedGB: res.OffloadedBytes.GiB(),
				MakespanSec: res.Makespan.Seconds(),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %9d %9.1fms %9.1fms %9.2fs %9.2fs %9d %9d %9d %9.2f %9.1fs\n",
				row.Policy, row.Requests, row.TTFTp50ms, row.TTFTp99ms,
				row.E2Ep50s, row.E2Ep99s, row.Preemptions, row.Offloads,
				row.Reloads, row.OffloadedGB, row.MakespanSec)
			if wall > 0 {
				fmt.Fprintf(pw, "[inference %s n=%d: %.0f simulated requests/s of host wall time]\n",
					row.Policy, n, float64(n)/wall.Seconds())
			}
		}
	}
	return rows, nil
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// flight is a single-flight cell: the first caller computes the value, all
// callers block on the same computation, and the result is cached. Each
// (model, batch, policy, config) simulation runs exactly once no matter how
// many figures request it concurrently.
type flight[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (f *flight[T]) do(fn func() (T, error)) (T, error) {
	f.once.Do(func() { f.val, f.err = fn() })
	return f.val, f.err
}

// workers reports the session's worker-pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelDo runs fn(i) for every i in [0, n) across up to w workers. Jobs
// must be independent; with w == 1 it degenerates to a serial loop.
func parallelDo(n, w int, fn func(int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// prewarm executes the given simulation jobs across the worker pool. Each
// job ends in a cached Session call (Analysis or Run), so the serial
// figure-printing pass that follows hits the cache; errors are ignored here
// and resurface — identically, via the flight cache — on the serial pass.
// Results are deterministic: every run is a pure function of its inputs and
// the single-flight cache keeps exactly one evaluation per key.
func (s *Session) prewarm(jobs []func()) {
	parallelDo(len(jobs), s.opt.workers(), func(i int) { jobs[i]() })
}

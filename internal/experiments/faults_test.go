package experiments

import (
	"bytes"
	"io"
	"testing"
)

// TestFaultsFigureDeterministic is the acceptance differential for the
// fault study: the printed figure must be byte-identical across prewarm
// worker counts and shard counts — fault injection rides the drivers'
// common pump point, so the parallelism knobs change wall time only.
func TestFaultsFigureDeterministic(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 3} {
			var buf bytes.Buffer
			s := NewSession(Options{Short: true, W: &buf, Workers: workers, Shards: shards})
			if _, err := Faults(s); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("workers=%d shards=%d drifted%s", workers, shards,
					goldenDiff(want, buf.Bytes()))
			}
		}
	}
}

// TestFaultsFigureShape pins the study's qualitative claims: crashes
// inflate the makespan and destroy work, restart loses more than
// checkpointing at the same crash schedule, and only checkpoint rows write
// snapshot traffic (attributed to per-model flash wear).
func TestFaultsFigureShape(t *testing.T) {
	s := NewSession(Options{Short: true, W: io.Discard})
	rows, err := Faults(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want baseline + 2 schedules x 2 recoveries = 5", len(rows))
	}
	base := rows[0]
	if base.Recovery != "none" || base.Crashes != 0 || base.Inflation != 1 || base.Goodput != 1 {
		t.Fatalf("baseline row malformed: %+v", base)
	}
	byRec := func(k int, rec string) FaultRow {
		for _, r := range rows[1:] {
			if r.Crashes == k && r.Recovery == rec {
				return r
			}
		}
		t.Fatalf("missing row k=%d recovery=%s", k, rec)
		return FaultRow{}
	}
	for _, r := range rows[1:] {
		if r.Inflation < 1 {
			t.Errorf("k=%d %s: inflation %.3f < 1", r.Crashes, r.Recovery, r.Inflation)
		}
		if r.Restarts == 0 || r.WastedSec <= 0 {
			t.Errorf("k=%d %s: restarts=%d wasted=%.2fs — crashes left no trace", r.Crashes, r.Recovery, r.Restarts, r.WastedSec)
		}
		if r.Goodput >= 1 || r.Goodput <= 0 {
			t.Errorf("k=%d %s: goodput %.3f outside (0,1)", r.Crashes, r.Recovery, r.Goodput)
		}
		switch r.Recovery {
		case "restart":
			if r.CheckpointGB != 0 {
				t.Errorf("k=%d restart row wrote %.2f GB of checkpoints", r.Crashes, r.CheckpointGB)
			}
		case "checkpoint":
			if r.CheckpointGB <= 0 {
				t.Errorf("k=%d checkpoint row wrote no snapshots", r.Crashes)
			}
		}
		var wear float64
		for _, gb := range r.WearByModelGB {
			wear += gb
		}
		if wear <= 0 {
			t.Errorf("k=%d %s: no per-model wear attributed", r.Crashes, r.Recovery)
		}
	}
	// Checkpointing never wastes more than restart; at the densest schedule
	// (shortest MTBF, tightest Young/Daly interval) it must win outright. At
	// sparse schedules the auto-interval can exceed a job's remaining
	// iterations, legitimately degenerating to restart.
	kDense := rows[len(rows)-1].Crashes
	for _, k := range []int{rows[1].Crashes, kDense} {
		re, ck := byRec(k, "restart"), byRec(k, "checkpoint")
		if ck.WastedSec > re.WastedSec {
			t.Errorf("k=%d: checkpoint wasted %.2fs > restart %.2fs", k, ck.WastedSec, re.WastedSec)
		}
		if k == kDense && ck.WastedSec >= re.WastedSec {
			t.Errorf("k=%d: checkpoint wasted %.2fs, restart %.2fs — want a strict win at the dense schedule", k, ck.WastedSec, re.WastedSec)
		}
	}
}

// Fault-injection study: the dynamic-arrival fleet under deterministic
// server-crash schedules, comparing recovery policies. A fault-free run
// fixes the horizon H; crash schedules then sweep the per-server MTBF
// (few crashes vs one per server) and each schedule runs once per recovery
// policy — lose-everything restart vs periodic flash checkpoints at the
// Young/Daly auto-interval. The figure reports makespan inflation over the
// fault-free baseline, wasted (re-executed) work, restarts, checkpoint
// flash traffic with per-model wear attribution, and goodput — the fraction
// of occupied span that was useful. Every cell is byte-identical across
// drivers and shard counts: fault events are applied at the drivers' common
// pump point (see internal/gpu/faults.go).
package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/policy"
	"g10sim/internal/units"
)

// faultPolicy fixes the migration policy; the study varies fault pressure
// and recovery, not migration planning.
const faultPolicy = "G10"

// FaultRow summarises one (MTBF, recovery) cell.
type FaultRow struct {
	// MTBFSec is the per-server mean time between failures the crash
	// schedule implies (0 = the fault-free baseline).
	MTBFSec  float64
	Crashes  int
	Recovery string

	MakespanSec float64
	// Inflation is makespan over the fault-free baseline's.
	Inflation float64
	// WastedSec sums the simulated progress crashes destroyed; Restarts the
	// crash recoveries.
	WastedSec float64
	Restarts  int
	// CheckpointGB is the durable snapshot volume written to flash and
	// ArrayWriteGB the shared array's total absorbed writes; WearByModelGB
	// attributes NAND wear (checkpoints included) to job classes.
	CheckpointGB  float64
	ArrayWriteGB  float64
	WearByModelGB map[string]float64
	// Goodput is the useful fraction of the fleet's occupied span:
	// 1 − wasted / Σ per-job spans.
	Goodput float64
}

// faultTenants reports the fleet size under the session's scope.
func (s *Session) faultTenants() int {
	if s.opt.Short {
		return 8
	}
	return 12
}

// faultSchedule builds the k-crash plan over horizon H (seconds): crashes
// spread evenly across the horizon, victims stride through the fleet, and
// every server repairs after H/20. A pure function of (n, k, H), so the
// schedule is as deterministic as the fleet trace itself.
func faultSchedule(n, k int, H float64) *gpu.FaultPlan {
	sec := float64(units.Second)
	plan := &gpu.FaultPlan{}
	for j := 0; j < k; j++ {
		plan.Crashes = append(plan.Crashes, gpu.CrashFault{
			Tenant:      (j*5 + 1) % n,
			At:          units.Time(H * float64(j+1) / float64(k+1) * sec),
			RepairAfter: units.Duration(H / 20 * sec),
		})
	}
	return plan
}

// faultBaseline runs (or returns the cached) fault-free fleet.
func (s *Session) faultBaseline() (gpu.ClusterResult, error) {
	n := s.faultTenants()
	return s.RunCluster(fmt.Sprintf("faults/baseline/%d", n), func() (gpu.ClusterParams, error) {
		jobs, err := s.fleetTrace(n)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		return s.fleetParams(faultPolicy, jobs)
	})
}

// faultCell runs one (crash count, recovery) cell: the baseline fleet with
// the k-crash schedule injected and every tenant using the given recovery.
func (s *Session) faultCell(k int, recName string, rec gpu.Recovery, H float64) (gpu.ClusterResult, error) {
	n := s.faultTenants()
	key := fmt.Sprintf("faults/%s/%d/%d", recName, n, k)
	return s.RunCluster(key, func() (gpu.ClusterParams, error) {
		jobs, err := s.fleetTrace(n)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		p, err := s.fleetParams(faultPolicy, jobs)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		p.Faults = faultSchedule(n, k, H)
		for i := range p.Tenants {
			p.Tenants[i].Recovery = rec
		}
		return p, nil
	})
}

// faultRecoveries are the compared policies: lose-everything restart and
// Young/Daly auto-interval checkpointing.
func faultRecoveries() []struct {
	name string
	rec  gpu.Recovery
} {
	return []struct {
		name string
		rec  gpu.Recovery
	}{
		{"restart", policy.Restart()},
		{"checkpoint", policy.Checkpoint(0)},
	}
}

// faultRowFrom folds one cluster result into a figure row.
func faultRowFrom(cres gpu.ClusterResult, trace []FleetJob, k int, recName string, H float64) FaultRow {
	row := FaultRow{
		Crashes:       k,
		Recovery:      recName,
		MakespanSec:   cres.Makespan.Seconds(),
		ArrayWriteGB:  cres.SSDStats.HostWriteBytes.GiB(),
		WearByModelGB: make(map[string]float64),
	}
	if k > 0 {
		row.MTBFSec = H * float64(len(trace)) / float64(k)
	}
	if H > 0 {
		row.Inflation = row.MakespanSec / H
	}
	var spanSum float64
	for i, j := range trace {
		t := cres.Tenants[i]
		row.WastedSec += t.WastedTime.Seconds()
		row.Restarts += t.Restarts
		row.CheckpointGB += t.CheckpointBytes.GiB()
		row.WearByModelGB[j.Model] += t.SSDStats.NANDWriteBytes.GiB()
		spanSum += cres.Spans[i].Duration().Seconds()
	}
	row.Goodput = 1
	if spanSum > 0 {
		row.Goodput = 1 - row.WastedSec/spanSum
	}
	return row
}

// Faults runs the fault-injection study: the fleet under crash schedules of
// decreasing MTBF, each recovered by restart and by checkpointing.
func Faults(s *Session) ([]FaultRow, error) {
	w := s.opt.writer()
	n := s.faultTenants()
	fmt.Fprintln(w, "=== Fault injection: crash schedules x recovery policy on the shared-array fleet ===")
	fmt.Fprintf(w, "%d %s tenants, evenly spread crashes (repair H/20), checkpoint = Young/Daly auto-interval\n",
		n, faultPolicy)
	fmt.Fprintf(w, "%-9s %7s %-11s %10s %8s %10s %8s %9s %9s %8s\n",
		"mtbf", "crashes", "recovery", "makespan", "inflate", "wasted", "restarts", "ckpt(GB)", "arr-wr(GB)", "goodput")

	base, err := s.faultBaseline()
	if err != nil {
		return nil, err
	}
	H := base.Makespan.Seconds()
	trace, err := s.fleetTrace(n)
	if err != nil {
		return nil, err
	}
	ks := []int{(n + 3) / 4, n}

	var jobs []func()
	for _, k := range ks {
		for _, rc := range faultRecoveries() {
			k, rc := k, rc
			jobs = append(jobs, func() { _, _ = s.faultCell(k, rc.name, rc.rec, H) })
		}
	}
	s.prewarm(jobs)

	rows := []FaultRow{faultRowFrom(base, trace, 0, "none", H)}
	for _, k := range ks {
		for _, rc := range faultRecoveries() {
			cres, err := s.faultCell(k, rc.name, rc.rec, H)
			if err != nil {
				return nil, err
			}
			rows = append(rows, faultRowFrom(cres, trace, k, rc.name, H))
		}
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%8.1fs %7d %-11s %9.2fs %7.2fx %9.2fs %8d %9.2f %9.1f %8.3f\n",
			row.MTBFSec, row.Crashes, row.Recovery, row.MakespanSec, row.Inflation,
			row.WastedSec, row.Restarts, row.CheckpointGB, row.ArrayWriteGB, row.Goodput)
		for _, model := range fleetModels {
			fmt.Fprintf(w, "%-9s   wear %-12s %8.1f GB NAND (attributed)\n", "", model, row.WearByModelGB[model])
		}
	}
	return rows, nil
}

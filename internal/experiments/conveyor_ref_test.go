package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"g10sim/internal/gpu"
)

// TestChunkReferenceMatchesGolden closes the conveyor differential at full
// figure scale: the retained naive per-chunk migration path must reproduce
// the committed golden snapshots byte for byte. TestGoldenFigures pins the
// production conveyor path against the same files, so together they pin
// conveyor == per-chunk reference across every model × policy (figure 11),
// the cluster engine's fleet workload, and adaptive replanning runs.
func TestChunkReferenceMatchesGolden(t *testing.T) {
	gpu.ForceChunkReferenceForTest(true)
	defer gpu.ForceChunkReferenceForTest(false)
	sw := &switchWriter{}
	s := NewSession(Options{Short: true, Models: goldenModels, W: sw})
	for _, name := range []string{"11", "fleet", "adapt"} {
		for _, fig := range goldenFigures {
			if fig.name != name {
				continue
			}
			t.Run(name, func(t *testing.T) {
				var buf bytes.Buffer
				sw.w = &buf
				defer func() { sw.w = nil }()
				if err := fig.run(s); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", "figure-"+name+".golden")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing snapshot: %v", err)
				}
				if got := buf.Bytes(); !bytes.Equal(got, want) {
					t.Errorf("per-chunk reference drifted from golden figure %s%s", name, goldenDiff(want, got))
				}
			})
		}
	}
}

package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/units"
)

// PerfRow is one (model, policy) cell of Figures 11–14.
type PerfRow struct {
	Model  string
	Batch  int
	Policy string
	Result gpu.Result
}

// runMatrix simulates every model × policy combination of the end-to-end
// evaluation, fanning the runs across the worker pool and reusing the
// session cache. Row order (and every Result) is identical to a serial
// sweep.
func (s *Session) runMatrix(policies []string) ([]PerfRow, error) {
	var jobs []func()
	for _, model := range s.opt.modelSet() {
		for _, pol := range policies {
			model, pol := model, pol
			jobs = append(jobs, func() { _, _ = s.RunBase(model, pol) })
		}
	}
	s.prewarm(jobs)
	var rows []PerfRow
	for _, model := range s.opt.modelSet() {
		for _, pol := range policies {
			res, err := s.RunBase(model, pol)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PerfRow{Model: model, Batch: res.Batch, Policy: pol, Result: res})
		}
	}
	return rows, nil
}

// Figure11 reproduces the end-to-end training throughput, normalized to the
// Ideal (infinite GPU memory) baseline.
func Figure11(s *Session) ([]PerfRow, error) {
	w := s.opt.writer()
	rows, err := s.runMatrix(append([]string{"Ideal"}, PolicyNames...))
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "=== Figure 11: normalized training performance (1.0 = Ideal) ===")
	fmt.Fprintf(w, "%-14s", "model")
	for _, p := range PolicyNames {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)
	byModel := map[string]map[string]gpu.Result{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]gpu.Result{}
		}
		byModel[r.Model][r.Policy] = r.Result
	}
	var g10Sum float64
	var g10N int
	for _, model := range s.opt.modelSet() {
		fmt.Fprintf(w, "%-14s", model)
		for _, p := range PolicyNames {
			res := byModel[model][p]
			if res.Failed {
				fmt.Fprintf(w, " %12s", "FAIL")
				continue
			}
			fmt.Fprintf(w, " %11.1f%%", 100*res.NormalizedPerf())
		}
		fmt.Fprintln(w)
		if g10 := byModel[model]["G10"]; !g10.Failed {
			g10Sum += g10.NormalizedPerf()
			g10N++
		}
	}
	if g10N > 0 {
		fmt.Fprintf(w, "\nG10 mean of ideal: %.1f%% (paper: 90.3%%)\n", 100*g10Sum/float64(g10N))
	}
	return rows, nil
}

// Figure12 reproduces the execution-time breakdown: the fraction of
// iteration time where compute and transfers overlap versus compute stall.
func Figure12(s *Session) ([]PerfRow, error) {
	w := s.opt.writer()
	rows, err := s.runMatrix([]string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "=== Figure 12: execution time breakdown (compute&transfer %% / stall %%) ===")
	fmt.Fprintf(w, "%-14s %-12s %12s %10s\n", "model", "policy", "overlapped", "stall")
	for _, r := range rows {
		res := r.Result
		if res.Failed {
			fmt.Fprintf(w, "%-14s %-12s %12s\n", r.Model, r.Policy, "FAIL")
			continue
		}
		stall := float64(res.StallTime) / float64(res.IterationTime)
		fmt.Fprintf(w, "%-14s %-12s %11.1f%% %9.1f%%\n", r.Model, r.Policy, 100*(1-stall), 100*stall)
	}
	return rows, nil
}

// Fig13Row summarises one kernel-slowdown distribution.
type Fig13Row struct {
	Model, Policy       string
	P50, P90, P99, Max  float64
	FracSlowed          float64 // kernels slowed >5% vs ideal
	FracSlowedBeyondTwo float64
	Kernels             int
}

// Figure13 reproduces the distribution of per-kernel execution slowdowns
// versus the ideal trace.
func Figure13(s *Session) ([]Fig13Row, error) {
	w := s.opt.writer()
	rows, err := s.runMatrix([]string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "=== Figure 13: kernel slowdown distribution (vs ideal; lower is better) ===")
	fmt.Fprintf(w, "%-14s %-12s %8s %8s %8s %8s %9s %8s\n", "model", "policy", "p50", "p90", "p99", "max", "slowed", ">2x")
	var out []Fig13Row
	for _, r := range rows {
		if r.Result.Failed {
			fmt.Fprintf(w, "%-14s %-12s %8s\n", r.Model, r.Policy, "FAIL")
			continue
		}
		a, err := s.Analysis(r.Model, r.Batch)
		if err != nil {
			return nil, err
		}
		cdf := gpu.SlowdownCDF(r.Result, a.Trace)
		var slowed, beyond2 int
		for _, v := range cdf {
			if v > 1.05 {
				slowed++
			}
			if v > 2 {
				beyond2++
			}
		}
		row := Fig13Row{
			Model: r.Model, Policy: r.Policy,
			P50: percentile(cdf, 0.50), P90: percentile(cdf, 0.90),
			P99: percentile(cdf, 0.99), Max: percentile(cdf, 1.0),
			FracSlowed:          frac(slowed, len(cdf)),
			FracSlowedBeyondTwo: frac(beyond2, len(cdf)),
			Kernels:             len(cdf),
		}
		out = append(out, row)
		fmt.Fprintf(w, "%-14s %-12s %8.2f %8.2f %8.2f %8.1f %8.1f%% %7.1f%%\n",
			r.Model, r.Policy, row.P50, row.P90, row.P99, row.Max, 100*row.FracSlowed, 100*row.FracSlowedBeyondTwo)
	}
	return out, nil
}

// Figure14 reproduces the tensor migration traffic breakdown by channel.
func Figure14(s *Session) ([]PerfRow, error) {
	w := s.opt.writer()
	rows, err := s.runMatrix([]string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "=== Figure 14: migration traffic per iteration (GB) ===")
	fmt.Fprintf(w, "%-14s %-12s %10s %10s %10s %10s %10s\n",
		"model", "policy", "gpu->ssd", "ssd->gpu", "gpu->host", "host->gpu", "total")
	for _, r := range rows {
		res := r.Result
		if res.Failed {
			fmt.Fprintf(w, "%-14s %-12s %10s\n", r.Model, r.Policy, "FAIL")
			continue
		}
		fmt.Fprintf(w, "%-14s %-12s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			r.Model, r.Policy, res.GPUToSSD.GiB(), res.SSDToGPU.GiB(),
			res.GPUToHost.GiB(), res.HostToGPU.GiB(), res.TotalTraffic().GiB())
	}
	return rows, nil
}

// SSDLifetimeRow is one §7.7 lifetime table entry.
type SSDLifetimeRow struct {
	Model, Policy string
	WriteGB       float64
	WriteShare    float64 // writes / (reads+writes) on the SSD
	WriteAmp      float64
	LifetimeYears float64
}

// SSDLifetime reproduces §7.7: the flash write traffic of each design and
// the DWPD lifetime it implies at the measured write rate.
func SSDLifetime(s *Session) ([]SSDLifetimeRow, error) {
	w := s.opt.writer()
	rows, err := s.runMatrix([]string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "=== §7.7: SSD write traffic and lifetime ===")
	fmt.Fprintf(w, "%-14s %-12s %12s %10s %6s %10s\n", "model", "policy", "writes(GB)", "write-frac", "WA", "life(yrs)")
	var out []SSDLifetimeRow
	for _, r := range rows {
		res := r.Result
		if res.Failed {
			fmt.Fprintf(w, "%-14s %-12s %12s\n", r.Model, r.Policy, "FAIL")
			continue
		}
		total := res.GPUToSSD + res.SSDToGPU
		var share float64
		if total > 0 {
			share = float64(res.GPUToSSD) / float64(total)
		}
		var rate units.Bandwidth
		if res.IterationTime > 0 {
			rate = units.Bandwidth(float64(res.GPUToSSD) / res.IterationTime.Seconds())
		}
		a, err := s.Analysis(r.Model, r.Batch)
		if err != nil {
			return nil, err
		}
		cfg := s.baseConfig(a)
		row := SSDLifetimeRow{
			Model: r.Model, Policy: r.Policy,
			WriteGB:       res.GPUToSSD.GiB(),
			WriteShare:    share,
			WriteAmp:      res.WriteAmp,
			LifetimeYears: cfg.SSD.LifetimeYears(rate),
		}
		out = append(out, row)
		life := fmt.Sprintf("%10.1f", row.LifetimeYears)
		if rate == 0 {
			life = "       inf"
		}
		fmt.Fprintf(w, "%-14s %-12s %12.1f %9.1f%% %6.2f %s\n",
			r.Model, r.Policy, row.WriteGB, 100*row.WriteShare, row.WriteAmp, life)
	}
	return out, nil
}

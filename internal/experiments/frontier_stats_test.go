package experiments

import (
	"reflect"
	"testing"

	"g10sim/internal/flownet"
	"g10sim/internal/gpu"
)

// TestFleetFrontierReuses pins the PR 8 perf mechanism on the workload it
// targets: the fleet study's real dynamic-arrival trace couples most
// tenants through the shared array channels into one giant component, so a
// healthy share of rate re-derivations must be served by frontier refills
// of the recorded fill trace. Under ForceReferenceFillForTest the count
// must be exactly zero — and the simulation results bit-identical.
func TestFleetFrontierReuses(t *testing.T) {
	s := NewSession(Options{Short: true})
	jobs, err := s.fleetTrace(16)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() (gpu.ClusterResult, gpu.EngineStats) {
		p, err := s.fleetParams("G10", jobs)
		if err != nil {
			t.Fatal(err)
		}
		var es gpu.EngineStats
		p.Engine = &es
		res, err := gpu.RunCluster(p)
		if err != nil {
			t.Fatal(err)
		}
		return res, es
	}
	heapRes, heapES := runOnce()
	if heapES.FillRounds <= 0 || heapES.FillResScans <= 0 {
		t.Fatalf("fill counters not populated: %+v", heapES)
	}
	if heapES.FrontierReuses <= 0 {
		t.Errorf("fleet trace produced no frontier reuses (recomputes=%d)", heapES.FlowRecomputes)
	}

	flownet.ForceReferenceFillForTest(true)
	defer flownet.ForceReferenceFillForTest(false)
	refRes, refES := runOnce()
	if refES.FrontierReuses != 0 {
		t.Errorf("reference fill reported %d frontier reuses, want 0", refES.FrontierReuses)
	}
	if !reflect.DeepEqual(heapRes, refRes) {
		t.Errorf("heap fill diverged from reference fill on the fleet trace")
	}
	t.Logf("fleet trace: recomputes=%d frontier reuses=%d (%.0f%%); resScans heap=%d ref=%d",
		heapES.FlowRecomputes, heapES.FrontierReuses,
		100*float64(heapES.FrontierReuses)/float64(heapES.FlowRecomputes),
		heapES.FillResScans, refES.FillResScans)
}

// Adapt study: contention-adaptive smart migrations on the fleet trace.
// G10's offline plan assumes exclusive SSD and host bandwidth; on a shared
// array its prefetch deadlines silently slip — the gap TENSILE (runtime
// tensor scheduling under multi-workload dynamics) and 10Cache (migration
// from observed resource pressure) make central. The study replays the PR 3
// fixed-seed fleet trace and compares static G10 against G10 with the
// online replanning layer (internal/adapt) and the strongest reactive
// baseline, on the per-job slowdown distribution. This is the first
// scenario where G10's offline plan is measurably beaten by its own
// adaptive variant.
package experiments

import (
	"fmt"
)

// adaptPolicies are the compared designs: the static plan, the plan with
// online re-timing, and the reactive baseline that needs no plan at all.
var adaptPolicies = []string{"G10", "G10-Adaptive", "DeepUM+"}

// AdaptRow summarises one (policy, fleet size) cell of the adapt study.
type AdaptRow struct {
	Policy  string
	Tenants int

	MakespanSec  float64
	MeanSlowdown float64
	P50Slowdown  float64
	P95Slowdown  float64
	MaxSlowdown  float64

	FailedTenants int
}

// Adapt runs the contention-adaptation study: the fleet arrival trace at
// each studied size under static G10, adaptive G10, and DeepUM+, reporting
// the per-job slowdown distribution versus a dedicated slice. Rows share
// the session's cluster cache with the Fleet study (the G10 and DeepUM+
// cells are the same co-simulations), and the output is deterministic at
// any Options.Workers setting.
func Adapt(s *Session) ([]AdaptRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Adapt study: static vs contention-adaptive G10 on the fleet trace ===")
	fmt.Fprintf(w, "catalogue %v, fixed-seed arrivals; adaptive G10 re-times its plan against observed lateness\n", fleetModels)
	fmt.Fprintf(w, "%-14s %7s %10s %7s %7s %7s %7s %5s\n",
		"policy", "tenants", "makespan", "mean", "p50", "p95", "max", "fail")

	var jobs []func()
	for _, n := range s.fleetCounts() {
		for _, pol := range adaptPolicies {
			n, pol := n, pol
			jobs = append(jobs, func() { _, _ = s.fleetCell(pol, n) })
			for _, model := range fleetModels {
				model := model
				jobs = append(jobs, func() { _, _ = s.fleetSolo(model, pol) })
			}
		}
	}
	s.prewarm(jobs)

	var rows []AdaptRow
	for _, n := range s.fleetCounts() {
		trace, err := s.fleetTrace(n)
		if err != nil {
			return nil, err
		}
		for _, pol := range adaptPolicies {
			cres, err := s.fleetCell(pol, n)
			if err != nil {
				return nil, err
			}
			row := AdaptRow{
				Policy:      pol,
				Tenants:     n,
				MakespanSec: cres.Makespan.Seconds(),
			}
			slowdowns, failed, err := s.slowdownDistribution(pol, trace, cres)
			if err != nil {
				return nil, err
			}
			row.FailedTenants = failed
			st := summarize(slowdowns)
			row.MeanSlowdown, row.P50Slowdown, row.P95Slowdown, row.MaxSlowdown = st.Mean, st.P50, st.P95, st.Max
			rows = append(rows, row)
			fmt.Fprintf(w, "%-14s %7d %9.2fs %6.2fx %6.2fx %6.2fx %6.2fx %5d\n",
				pol, n, row.MakespanSec, row.MeanSlowdown, row.P50Slowdown,
				row.P95Slowdown, row.MaxSlowdown, row.FailedTenants)
		}
	}
	return rows, nil
}

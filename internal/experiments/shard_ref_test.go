package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"g10sim/internal/gpu"
	"g10sim/internal/units"
)

// shardCounts are the shard dimensions the experiments-level differentials
// run; 1 degenerates to the sequential driver, 8 exceeds the two-tenant
// clusters' tenant count.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedMatchesSequentialEveryModelPolicy is the experiments-level
// sharded differential: for every built-in model under every policy, a
// two-tenant co-simulation (one tenant arriving mid-run) under the sharded
// driver must be bit-identical to the sequential driver at every shard
// count — the sharded mirror of the polling differential above it.
func TestShardedMatchesSequentialEveryModelPolicy(t *testing.T) {
	s := NewSession(Options{Short: true})
	for _, model := range (Options{}).modelSet() {
		for _, polName := range PolicyNames {
			model, polName := model, polName
			t.Run(model+"/"+polName, func(t *testing.T) {
				a, err := s.Analysis(model, shortBatch[model])
				if err != nil {
					t.Fatal(err)
				}
				build := func() (gpu.ClusterParams, error) {
					cfg := scaledConfig(a)
					shared := cfg
					shared.HostCapacity = cfg.HostCapacity * 3 / 2
					var p gpu.ClusterParams
					p.Shared = shared
					for i := 0; i < 2; i++ {
						pol, err := s.clusterPolicy(polName)
						if err != nil {
							return gpu.ClusterParams{}, err
						}
						tenant := gpu.ClusterTenant{Analysis: a, Policy: pol, Config: cfg}
						if i == 1 {
							tenant.ArrivalTime = 50 * units.Millisecond
						}
						p.Tenants = append(p.Tenants, tenant)
					}
					return p, nil
				}
				runOnce := func(shards int) (gpu.ClusterResult, int64) {
					params, err := build()
					if err != nil {
						t.Fatal(err)
					}
					params.Shards = shards
					var steps int64
					params.StepCount = &steps
					res, err := gpu.RunCluster(params)
					if err != nil {
						t.Fatal(err)
					}
					return res, steps
				}
				want, wantSteps := runOnce(0)
				for _, shards := range shardCounts {
					got, steps := runOnce(shards)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("shards=%d diverged from sequential driver:\nsharded:    %+v\nsequential: %+v", shards, got, want)
					}
					if steps != wantSteps {
						t.Errorf("shards=%d: %d scheduler steps, sequential took %d", shards, steps, wantSteps)
					}
				}
			})
		}
	}
}

// TestShardedMatchesSequentialFleetTrace runs the fleet study's real
// 16-job dynamic-arrival trace — mixed models, mid-run arrivals, one
// shared array — sharded against sequential at every shard count.
func TestShardedMatchesSequentialFleetTrace(t *testing.T) {
	s := NewSession(Options{Short: true})
	jobs, err := s.fleetTrace(16)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(shards int) (gpu.ClusterResult, int64) {
		p, err := s.fleetParams("G10", jobs)
		if err != nil {
			t.Fatal(err)
		}
		p.Shards = shards
		var steps int64
		p.StepCount = &steps
		res, err := gpu.RunCluster(p)
		if err != nil {
			t.Fatal(err)
		}
		return res, steps
	}
	want, wantSteps := runOnce(0)
	for _, shards := range shardCounts {
		got, steps := runOnce(shards)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from sequential driver on the fleet trace", shards)
		}
		if steps != wantSteps {
			t.Errorf("shards=%d: %d scheduler steps, sequential took %d", shards, steps, wantSteps)
		}
	}
}

// TestShardedMatchesGolden closes the sharded differential at full figure
// scale: every cluster-engine figure re-run with the sharded driver forced
// on must reproduce the committed golden snapshots byte for byte.
// TestGoldenFigures pins the sequential driver against the same files, so
// together they pin sharded == sequential across the multi-GPU grid, the
// co-location study, the dynamic-arrival fleet, adaptive replanning, and
// the scaling study's step counts.
func TestShardedMatchesGolden(t *testing.T) {
	sw := &switchWriter{}
	s := NewSession(Options{Short: true, Models: goldenModels, W: sw, Shards: 3})
	for _, name := range []string{"multigpu", "colocate", "fleet", "adapt", "scaling", "inference", "faults"} {
		for _, fig := range goldenFigures {
			if fig.name != name {
				continue
			}
			t.Run(name, func(t *testing.T) {
				var buf bytes.Buffer
				sw.w = &buf
				defer func() { sw.w = nil }()
				if err := fig.run(s); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", "figure-"+name+".golden")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing snapshot: %v", err)
				}
				if got := buf.Bytes(); !bytes.Equal(got, want) {
					t.Errorf("sharded driver drifted from golden figure %s%s", name, goldenDiff(want, got))
				}
			})
		}
	}
}

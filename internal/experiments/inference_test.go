package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"g10sim/internal/gpu"
)

// TestInferenceFigureDeterministic is the experiments-level serving
// differential: the printed inference figure must be byte-identical across
// prewarm worker counts and shard counts — the parallelism knobs change
// wall time only, never a number. Each combination runs a fresh session so
// the single-flight caches cannot mask a divergence.
func TestInferenceFigureDeterministic(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 3} {
			var buf bytes.Buffer
			s := NewSession(Options{Short: true, W: &buf, Workers: workers, Shards: shards})
			if _, err := Inference(s); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("workers=%d shards=%d drifted%s", workers, shards,
					goldenDiff(want, buf.Bytes()))
			}
		}
	}
}

// TestInferenceCellDriversMatch closes the driver differential at figure
// scale: every short-mode cell re-run under the polling reference scheduler
// and the sharded driver must reproduce the event driver's result exactly.
func TestInferenceCellDriversMatch(t *testing.T) {
	s := NewSession(Options{Short: true})
	for _, n := range s.inferenceSizes() {
		for _, pol := range inferencePolicies() {
			base := s.inferenceParams(pol, n)
			runWith := func(driver gpu.Driver, shards int) gpu.InferenceResult {
				p := base
				p.Driver = driver
				p.Shards = shards
				res, err := gpu.RunInference(p)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := runWith(gpu.DriverEvents, 1)
			if got := runWith(gpu.DriverPolling, 1); !reflect.DeepEqual(got, want) {
				t.Errorf("%s n=%d: polling driver diverged from events", pol.Name(), n)
			}
			if got := runWith(gpu.DriverAuto, 3); !reflect.DeepEqual(got, want) {
				t.Errorf("%s n=%d: sharded driver diverged from events", pol.Name(), n)
			}
		}
	}
}

// TestInferenceSessionEngineStats pins the session-level counter plumbing
// on the serving path: a tiered inference cell must fold its engine work
// counters (flownet fill rounds, lazy progress touches, reap scans) into
// the session totals that g10bench -json reports, and the memoized re-read
// must add nothing.
func TestInferenceSessionEngineStats(t *testing.T) {
	s := NewSession(Options{Short: true})
	tiered := inferencePolicies()[1]
	if !tiered.HostTier() {
		t.Fatalf("policy order changed: %s has no host tier", tiered.Name())
	}
	res, _, err := s.inferenceCell(tiered, 240)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloads == 0 {
		t.Fatal("tiered short cell performed no offloads; the trace is undersized")
	}
	es := s.EngineStats()
	if es.FillRounds <= 0 || es.ProgressTouches <= 0 || es.ReapScans <= 0 {
		t.Fatalf("inference run left session engine counters empty: %+v", es)
	}
	if _, _, err := s.inferenceCell(tiered, 240); err != nil {
		t.Fatal(err)
	}
	if again := s.EngineStats(); !reflect.DeepEqual(again, es) {
		t.Errorf("memoized cell re-read changed engine stats: %+v -> %+v", es, again)
	}
}

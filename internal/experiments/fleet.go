// Fleet study: a dynamic-arrival job mix on one shared flash array — the
// regime TENSILE (many workloads on one GPU memory scheduler) and 10Cache
// (tensor caching across large training fleets) describe, now tractable
// because the cluster engine's event-driven scheduler steps only the
// tenants whose events fire. Jobs drawn from a mixed BERT/ResNet/Inception
// catalogue arrive on a fixed-seed Poisson-style trace and contend on the
// array, the host pool, and the host bus; the study compares G10 against
// reactive baselines on per-job slowdown distribution, makespan, and
// attributed flash wear.
package experiments

import (
	"fmt"
	"math"

	"g10sim/internal/gpu"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// fleetModels is the job catalogue, cycled in arrival order.
var fleetModels = []string{"BERT", "ResNet152", "Inceptionv3"}

// fleetPolicies are the compared designs: the full system against the
// strongest reactive baseline and plain demand paging.
var fleetPolicies = []string{"G10", "DeepUM+", "Base UVM"}

// fleetSeed fixes the arrival trace; every policy row replays the same
// trace, so rows differ only in migration policy.
const fleetSeed = 0x67313066 // "g10f"

// FleetJob describes one admitted job of a fleet trace.
type FleetJob struct {
	Model      string
	Batch      int
	ArrivalSec float64
}

// FleetRow summarises one (policy, fleet size) cell.
type FleetRow struct {
	Policy  string
	Tenants int

	MakespanSec float64
	// Slowdown is a job's wall-clock span (finish − arrival) divided by its
	// span running alone on a dedicated slice of the same hardware under
	// the same policy; the distribution is over the fleet's jobs.
	MeanSlowdown float64
	P50Slowdown  float64
	P95Slowdown  float64
	MaxSlowdown  float64

	// ArrayWriteGB is the shared array's absorbed host-write volume and
	// ArrayWA its array-level write amplification; WearByModelGB attributes
	// the NAND wear (including GC relocations each job triggered) to the
	// job classes that caused it.
	ArrayWriteGB  float64
	ArrayWA       float64
	WearByModelGB map[string]float64
	FailedTenants int
}

// fleetCounts reports the studied fleet sizes under the session's scope.
func (s *Session) fleetCounts() []int {
	if s.opt.Short {
		return []int{16}
	}
	return []int{16, 64}
}

// fleetLCG advances the fixed-seed generator (the same multiplier the SSD
// churn bench uses); the high 53 bits become a uniform in (0, 1].
func fleetLCG(x uint64) (uint64, float64) {
	x = x*6364136223846793005 + 1442695040888963407
	u := (float64(x>>11) + 1) / (1 << 53)
	return x, u
}

// fleetTrace builds the n-job arrival trace: models cycle through the
// catalogue and inter-arrival gaps are exponential (Poisson process) with a
// mean of 1/8 of the catalogue's average ideal iteration span, so arrivals
// heavily overlap. The trace is a pure function of n and the fixed seed.
func (s *Session) fleetTrace(n int) ([]FleetJob, error) {
	var meanIdeal float64
	for _, model := range fleetModels {
		a, err := s.fleetAnalysis(model)
		if err != nil {
			return nil, err
		}
		iters := gpu.Default().Iterations
		meanIdeal += a.Trace.Total().Seconds() * float64(iters)
	}
	meanIdeal /= float64(len(fleetModels))
	meanGap := meanIdeal / 8

	jobs := make([]FleetJob, n)
	x := uint64(fleetSeed)
	at := 0.0
	for i := range jobs {
		model := fleetModels[i%len(fleetModels)]
		jobs[i] = FleetJob{Model: model, Batch: shortBatch[model], ArrivalSec: at}
		var u float64
		x, u = fleetLCG(x)
		at += -meanGap * math.Log(u)
	}
	return jobs, nil
}

// fleetAnalysis is the catalogue workload at its fleet (short) batch size.
func (s *Session) fleetAnalysis(model string) (*vitality.Analysis, error) {
	return s.Analysis(model, shortBatch[model])
}

// fleetShared sizes the substrate for an n-job fleet: one drive per 16
// GPUs (bandwidth and capacity scale with the array), and a host pool of
// twice the mean per-job dedicated budget — a quarter of the ~8-job steady
// concurrency the arrival rate produces — so overlapping jobs genuinely
// contend for host capacity and spill to the shared flash, the regime the
// study is about. The pool tracks concurrency rather than total job count:
// a longer trace raises sustained pressure, not provisioned capacity.
func (s *Session) fleetShared(jobs []FleetJob) (gpu.Config, error) {
	var shared gpu.Config
	var hostSum units.Bytes
	for _, j := range jobs {
		a, err := s.fleetAnalysis(j.Model)
		if err != nil {
			return gpu.Config{}, err
		}
		cfg := scaledConfig(a)
		if shared.SSD.Capacity == 0 {
			shared = cfg
		}
		hostSum += cfg.HostCapacity
	}
	drives := len(jobs) / 16
	if drives < 1 {
		drives = 1
	}
	shared.SSD = shared.SSD.Array(drives)
	shared.HostCapacity = 2 * hostSum / units.Bytes(len(jobs))
	return shared, nil
}

// fleetParams assembles the co-simulation for one (policy, trace) cell.
func (s *Session) fleetParams(polName string, jobs []FleetJob) (gpu.ClusterParams, error) {
	shared, err := s.fleetShared(jobs)
	if err != nil {
		return gpu.ClusterParams{}, err
	}
	p := gpu.ClusterParams{Shared: shared}
	for _, j := range jobs {
		a, err := s.fleetAnalysis(j.Model)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		pol, err := s.clusterPolicy(polName)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		p.Tenants = append(p.Tenants, gpu.ClusterTenant{
			Analysis:    a,
			Policy:      pol,
			Config:      scaledConfig(a),
			ArrivalTime: units.Time(j.ArrivalSec * float64(units.Second)),
		})
	}
	return p, nil
}

// fleetSolo runs one catalogue job alone on a dedicated slice (its own
// scaled config as the whole substrate) under the given policy — the
// slowdown baseline.
func (s *Session) fleetSolo(model, polName string) (gpu.ClusterResult, error) {
	key := fmt.Sprintf("fleet-solo/%s/%s", model, polName)
	return s.RunCluster(key, func() (gpu.ClusterParams, error) {
		a, err := s.fleetAnalysis(model)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		pol, err := s.clusterPolicy(polName)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		cfg := scaledConfig(a)
		return gpu.ClusterParams{
			Tenants: []gpu.ClusterTenant{{Analysis: a, Policy: pol, Config: cfg}},
			Shared:  cfg,
		}, nil
	})
}

// slowdownDistribution computes each trace job's slowdown — its
// co-simulated span over the span of the same job alone on a dedicated
// slice under the same policy — in trace order, skipping (and counting)
// failed tenants. Shared by the fleet and adapt studies.
func (s *Session) slowdownDistribution(pol string, trace []FleetJob, cres gpu.ClusterResult) (slowdowns []float64, failed int, err error) {
	for i, j := range trace {
		if cres.Tenants[i].Failed {
			failed++
			continue
		}
		solo, err := s.fleetSolo(j.Model, pol)
		if err != nil {
			return nil, 0, err
		}
		soloSpan := solo.Spans[0].Duration()
		if soloSpan <= 0 {
			continue
		}
		slowdowns = append(slowdowns, float64(cres.Spans[i].Duration())/float64(soloSpan))
	}
	return slowdowns, failed, nil
}

// distStats summarises a slowdown sample (zero when the sample is empty).
type distStats struct {
	Mean, P50, P95, Max float64
}

func summarize(slowdowns []float64) distStats {
	if len(slowdowns) == 0 {
		return distStats{}
	}
	var st distStats
	for _, sd := range slowdowns {
		st.Mean += sd
	}
	st.Mean /= float64(len(slowdowns))
	sorted := sortedCopy(slowdowns)
	st.P50 = percentile(sorted, 0.50)
	st.P95 = percentile(sorted, 0.95)
	st.Max = sorted[len(sorted)-1]
	return st
}

// fleetCell runs (or returns the cached) co-simulation for one cell.
func (s *Session) fleetCell(polName string, n int) (gpu.ClusterResult, error) {
	key := fmt.Sprintf("fleet/%s/%d", polName, n)
	return s.RunCluster(key, func() (gpu.ClusterParams, error) {
		jobs, err := s.fleetTrace(n)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		return s.fleetParams(polName, jobs)
	})
}

// Fleet runs the dynamic-arrival fleet study and prints per-policy rows:
// slowdown distribution across jobs, makespan, and attributed flash wear.
// Results are deterministic at any Options.Workers setting — the arrival
// trace is a fixed-seed pure function and every cluster simulates once
// behind the session's single-flight cache.
func Fleet(s *Session) ([]FleetRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Fleet study: dynamic-arrival mixed jobs on one shared array ===")
	fmt.Fprintf(w, "catalogue %v, Poisson-style fixed-seed arrivals, per-job slowdown vs dedicated slice\n", fleetModels)
	fmt.Fprintf(w, "%-10s %7s %10s %7s %7s %7s %7s %10s %6s %5s\n",
		"policy", "tenants", "makespan", "mean", "p50", "p95", "max", "arr-wr(GB)", "WA", "fail")

	var jobs []func()
	for _, n := range s.fleetCounts() {
		for _, pol := range fleetPolicies {
			n, pol := n, pol
			jobs = append(jobs, func() { _, _ = s.fleetCell(pol, n) })
			for _, model := range fleetModels {
				model := model
				jobs = append(jobs, func() { _, _ = s.fleetSolo(model, pol) })
			}
		}
	}
	s.prewarm(jobs)

	var rows []FleetRow
	for _, n := range s.fleetCounts() {
		trace, err := s.fleetTrace(n)
		if err != nil {
			return nil, err
		}
		for _, pol := range fleetPolicies {
			cres, err := s.fleetCell(pol, n)
			if err != nil {
				return nil, err
			}
			row := FleetRow{
				Policy:        pol,
				Tenants:       n,
				MakespanSec:   cres.Makespan.Seconds(),
				ArrayWriteGB:  cres.SSDStats.HostWriteBytes.GiB(),
				ArrayWA:       cres.WriteAmp,
				WearByModelGB: make(map[string]float64),
			}
			for i, j := range trace {
				row.WearByModelGB[j.Model] += cres.Tenants[i].SSDStats.NANDWriteBytes.GiB()
			}
			slowdowns, failed, err := s.slowdownDistribution(pol, trace, cres)
			if err != nil {
				return nil, err
			}
			row.FailedTenants = failed
			st := summarize(slowdowns)
			row.MeanSlowdown, row.P50Slowdown, row.P95Slowdown, row.MaxSlowdown = st.Mean, st.P50, st.P95, st.Max
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %7d %9.2fs %6.2fx %6.2fx %6.2fx %6.2fx %10.1f %6.2f %5d\n",
				pol, n, row.MakespanSec, row.MeanSlowdown, row.P50Slowdown,
				row.P95Slowdown, row.MaxSlowdown, row.ArrayWriteGB, row.ArrayWA, row.FailedTenants)
			for _, model := range fleetModels {
				fmt.Fprintf(w, "%-10s   wear %-12s %8.1f GB NAND (attributed)\n", "", model, row.WearByModelGB[model])
			}
		}
	}
	return rows, nil
}

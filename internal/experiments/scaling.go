// Scaling study: the cluster engine at fleet sizes. One policy (the full
// system) replays growing prefixes of the fixed-seed fleet arrival trace,
// and the figure reports the scheduler's step-machine cost next to the
// simulated makespan — the near-linear-steps claim of the event-driven
// engine, and the workload the sharded driver (Options.Shards) splits
// across workers. Every printed number is a pure function of the trace:
// the sharded driver is byte-identical to the sequential one (including
// the step count), so this figure's golden snapshot pins both.
package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
)

// scalingPolicy fixes the compared design; the fleet study covers the
// policy spread, this study covers the size axis.
const scalingPolicy = "G10"

// scalingCounts reports the studied fleet sizes under the session's scope.
// The jobs come from the fleet catalogue at its short batches in either
// scope, so the large sizes stay tractable.
func (s *Session) scalingCounts() []int {
	if s.opt.Short {
		return []int{16, 32}
	}
	return []int{64, 256}
}

// ScalingRow summarises one fleet size.
type ScalingRow struct {
	Tenants     int
	MakespanSec float64
	// Steps counts scheduler step-machine invocations across the run —
	// the engine-cost metric the near-linear scaling claim is about.
	Steps          int64
	StepsPerTenant float64
	FailedTenants  int
}

// Scaling runs the cluster-engine scaling study. It bypasses the session's
// cluster cache so the step counter is attributed to exactly one run per
// size; the trace and jobs are shared with the fleet study through the
// session's analysis and program caches.
func Scaling(s *Session) ([]ScalingRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Scaling study: cluster engine cost vs fleet size ===")
	fmt.Fprintf(w, "policy %s, fleet arrival trace, scheduler steps per co-simulation\n", scalingPolicy)
	fmt.Fprintf(w, "%7s %10s %12s %12s %5s\n", "tenants", "makespan", "steps", "steps/tenant", "fail")

	var rows []ScalingRow
	for _, n := range s.scalingCounts() {
		jobs, err := s.fleetTrace(n)
		if err != nil {
			return nil, err
		}
		p, err := s.fleetParams(scalingPolicy, jobs)
		if err != nil {
			return nil, err
		}
		var steps int64
		p.StepCount = &steps
		p.Shards = s.opt.Shards
		res, err := gpu.RunCluster(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %d: %w", n, err)
		}
		row := ScalingRow{
			Tenants:        n,
			MakespanSec:    res.Makespan.Seconds(),
			Steps:          steps,
			StepsPerTenant: float64(steps) / float64(n),
		}
		for _, tr := range res.Tenants {
			if tr.Failed {
				row.FailedTenants++
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%7d %9.2fs %12d %12.1f %5d\n",
			row.Tenants, row.MakespanSec, row.Steps, row.StepsPerTenant, row.FailedTenants)
	}
	return rows, nil
}

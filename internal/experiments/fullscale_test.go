package experiments

import (
	"io"
	"testing"
)

// TestFullScaleHeadlineClaims reruns the paper's headline comparison at the
// full Table 2 configuration and batch sizes and asserts the claims the
// paper's conclusions rest on (EXPERIMENTS.md records the exact values).
// Skipped under -short: it simulates all five workloads under seven
// designs (~10s).
func TestFullScaleHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale evaluation in -short mode")
	}
	s := NewSession(Options{W: io.Discard})
	rows, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]map[string]float64{}
	for _, r := range rows {
		if perf[r.Model] == nil {
			perf[r.Model] = map[string]float64{}
		}
		perf[r.Model][r.Policy] = r.Result.NormalizedPerf()
	}

	var g10Sum, dumRatioSum float64
	var n int
	for model, p := range perf {
		g10, dum, host, gds, base := p["G10"], p["DeepUM+"], p["G10-Host"], p["G10-GDS"], p["Base UVM"]
		// Ordering: G10 >= G10-Host >= G10-GDS (ablations only remove
		// capability) and G10 > DeepUM+ > Base UVM.
		if g10+1e-9 < host {
			t.Errorf("%s: G10 (%.3f) below G10-Host (%.3f)", model, g10, host)
		}
		if host+1e-9 < gds {
			t.Errorf("%s: G10-Host (%.3f) below G10-GDS (%.3f)", model, host, gds)
		}
		if g10 < dum {
			t.Errorf("%s: G10 (%.3f) below DeepUM+ (%.3f)", model, g10, dum)
		}
		if dum < base {
			t.Errorf("%s: DeepUM+ (%.3f) below Base UVM (%.3f)", model, dum, base)
		}
		g10Sum += g10
		if dum > 0 {
			dumRatioSum += g10 / dum
		}
		n++
	}
	// Paper: G10 delivers 90.3% of ideal on average; we require >= 80%.
	if mean := g10Sum / float64(n); mean < 0.80 {
		t.Errorf("G10 mean normalized perf %.3f below 0.80 (paper: 0.903)", mean)
	}
	// Paper: G10 outperforms DeepUM+ by 1.31x on average; we require the
	// mean speedup to land in [1.1, 1.8].
	if ratio := dumRatioSum / float64(n); ratio < 1.1 || ratio > 1.8 {
		t.Errorf("G10/DeepUM+ mean speedup %.2fx outside [1.1, 1.8] (paper: 1.31x)", ratio)
	}
	// ViT must be the workload furthest from ideal (the paper's one
	// exception).
	for model, p := range perf {
		if model == "ViT" {
			continue
		}
		if p["G10"] < perf["ViT"]["G10"] {
			t.Errorf("%s G10 (%.3f) below ViT (%.3f); ViT should be the outlier",
				model, p["G10"], perf["ViT"]["G10"])
		}
	}
}

// TestFullScaleCharacterizationClaims checks the §3 observations at the
// Figure 2–4 batch sizes.
func TestFullScaleCharacterizationClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale characterization in -short mode")
	}
	s := NewSession(Options{W: io.Discard})

	// O1: active tensors a small fraction of total (paper: <10%).
	rows2, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if r.ActivePct > 15 {
			t.Errorf("%s kernel %d: active %.1f%% of peak; O1 expects ~<10%%",
				r.Model, r.KernelIndex, r.ActivePct)
		}
	}

	// O2: transformers have ~50% of periods above 10^5 µs; CNNs more.
	rows3, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if r.FracAbove100ms < 0.35 {
			t.Errorf("%s: only %.0f%% of periods exceed 100ms; O2 expects ~50%%+",
				r.Model, 100*r.FracAbove100ms)
		}
	}
}

// Max-min fill study: the PR 8 engine mechanism on its target topology.
// A synthetic one-giant-component network (F flows crossing 8 shared
// channels, every route chaining two channels so all tenants couple into
// one component) runs a fixed number of attach/detach churn events — the
// fleet regime's hot loop — and the figure reports the engine's fill
// counters: bottleneck rounds, resource scans, and how many rate
// re-derivations the frontier-incremental refill served from the recorded
// fill trace. Every printed number is a pure function of the seeded
// workload, so the golden snapshot pins the mechanism; the figure's wall
// time in `g10bench -bench` is the regression-gated cost of the same loop.
package experiments

import (
	"fmt"
	"math/rand"

	"g10sim/internal/flownet"
	"g10sim/internal/units"
)

// maxMinFillSizes reports the studied fleet sizes under the session's
// scope. Full mode includes the F=10⁴ point the tentpole's ≥5x claim is
// about; short mode stays in the sub-second range.
func (s *Session) maxMinFillSizes() (sizes []int, events int) {
	if s.opt.Short {
		return []int{100, 1000}, 400
	}
	return []int{100, 1000, 10000}, 1200
}

// MaxMinFillRow summarises one fleet size of the churn study.
type MaxMinFillRow struct {
	Flows  int
	Events int
	// FillRounds counts bottleneck selections across every rate
	// re-derivation; FillResScans counts resource examinations (heap
	// builds plus per-round touched sets).
	FillRounds   int64
	FillResScans int64
	// FrontierReuses counts the re-derivations served by replaying the
	// recorded fill trace from the first delta-affected level instead of
	// refilling the whole component.
	FrontierReuses int64
	ReuseFrac      float64
}

// MaxMinFill runs the max-min fill churn study. Each event advances the
// network to the next flow completion and restarts the finished flows on
// their original routes, so every event costs one detach, one attach, and
// one rate re-derivation on the giant component.
func MaxMinFill(s *Session) ([]MaxMinFillRow, error) {
	w := s.opt.writer()
	sizes, events := s.maxMinFillSizes()
	fmt.Fprintln(w, "=== Max-min fill study: heap fill + frontier refill on giant-component churn ===")
	fmt.Fprintf(w, "%7s %7s %10s %12s %10s %7s\n", "flows", "events", "rounds", "res-scans", "frontier", "reuse")

	var rows []MaxMinFillRow
	for _, F := range sizes {
		n := flownet.New()
		chans := make([]*flownet.Resource, 8)
		for i := range chans {
			chans[i] = n.AddResource(fmt.Sprintf("chan%d", i), units.GBps(4))
		}
		rng := rand.New(rand.NewSource(42))
		size := func() units.Bytes { return units.Bytes(8+rng.Intn(64)) * units.MB }
		for i := 0; i < F; i++ {
			p := n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(16))
			route := []*flownet.Resource{p, chans[i%8], chans[(i+1)%8]}
			n.Start(fmt.Sprintf("f%d", i), size(), route, route...)
		}
		for e := 0; e < events; e++ {
			done := n.AdvanceTo(n.NextEvent())
			for _, f := range done {
				route := f.Data.([]*flownet.Resource)
				n.Start(f.Label, size(), route, route...)
			}
		}
		row := MaxMinFillRow{
			Flows: F, Events: events,
			FillRounds:     n.FillRounds(),
			FillResScans:   n.FillResScans(),
			FrontierReuses: n.FrontierReuses(),
		}
		if n.Recomputes() > 0 {
			row.ReuseFrac = float64(row.FrontierReuses) / float64(n.Recomputes())
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%7d %7d %10d %12d %10d %6.1f%%\n",
			row.Flows, row.Events, row.FillRounds, row.FillResScans,
			row.FrontierReuses, 100*row.ReuseFrac)
	}
	return rows, nil
}

package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/policy"
	"g10sim/internal/vitality"
)

// Fig19Row is one (model, error level) cell.
type Fig19Row struct {
	Model      string
	ErrPct     float64
	Normalized float64 // iteration time at 0% error / iteration time here
}

// Figure19 reproduces G10's robustness to kernel-timing prediction errors:
// the plan is derived from a trace with ±err% uniform noise per kernel, but
// execution replays the true durations. Performance is normalized to the
// no-error plan.
func Figure19(s *Session) ([]Fig19Row, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 19: G10 under kernel timing prediction errors (normalized to 0%) ===")
	errs := []float64{0, 0.05, 0.10, 0.15, 0.20}
	if s.opt.Short {
		errs = []float64{0, 0.20}
	}
	fmt.Fprintf(w, "%-14s", "model")
	for _, e := range errs {
		fmt.Fprintf(w, " %9.0f%%", 100*e)
	}
	fmt.Fprintln(w)

	var rows []Fig19Row
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := s.batchFor(spec)
		aTrue, err := s.Analysis(model, batch)
		if err != nil {
			return nil, err
		}
		cfg := s.baseConfig(aTrue)
		var base float64
		fmt.Fprintf(w, "%-14s", model)
		for _, e := range errs {
			planAnalysis := aTrue
			if e > 0 {
				perturbed := aTrue.Trace.Perturb(e, 12345)
				planAnalysis, err = vitality.Analyze(aTrue.Graph, perturbed)
				if err != nil {
					return nil, err
				}
			}
			res, err := gpu.Run(gpu.RunParams{
				Analysis:  planAnalysis,
				Policy:    policy.G10Full(planner.Config{}),
				Config:    cfg,
				ExecTrace: aTrue.Trace,
			})
			if err != nil {
				return nil, err
			}
			secs := res.IterationTime.Seconds()
			if e == 0 {
				base = secs
			}
			norm := 0.0
			if secs > 0 {
				norm = base / secs
			}
			rows = append(rows, Fig19Row{Model: model, ErrPct: 100 * e, Normalized: norm})
			fmt.Fprintf(w, " %9.3f", norm)
		}
		fmt.Fprintln(w)
	}
	return rows, nil
}

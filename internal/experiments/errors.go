package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/policy"
	"g10sim/internal/vitality"
)

// Fig19Row is one (model, error level) cell.
type Fig19Row struct {
	Model      string
	ErrPct     float64
	Normalized float64 // iteration time at 0% error / iteration time here
}

// Figure19 reproduces G10's robustness to kernel-timing prediction errors:
// the plan is derived from a trace with ±err% uniform noise per kernel, but
// execution replays the true durations. Performance is normalized to the
// no-error plan.
func Figure19(s *Session) ([]Fig19Row, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 19: G10 under kernel timing prediction errors (normalized to 0%) ===")
	errs := []float64{0, 0.05, 0.10, 0.15, 0.20}
	if s.opt.Short {
		errs = []float64{0, 0.20}
	}
	fmt.Fprintf(w, "%-14s", "model")
	for _, e := range errs {
		fmt.Fprintf(w, " %9.0f%%", 100*e)
	}
	fmt.Fprintln(w)

	// Every (model, error level) cell is an independent perturbed-plan run
	// (uncached — the execution trace differs from the plan's), so fan them
	// across the worker pool and print from the collected grid.
	mset := s.opt.modelSet()
	for _, model := range mset {
		// Fail fast on an unknown model before fanning out the (expensive,
		// uncached) grid.
		if _, err := models.ByName(model); err != nil {
			return nil, err
		}
	}
	type cell struct {
		res gpu.Result
		err error
	}
	grid := make([]cell, len(mset)*len(errs))
	runCell := func(model string, e float64) (gpu.Result, error) {
		spec, err := models.ByName(model)
		if err != nil {
			return gpu.Result{}, err
		}
		batch := s.batchFor(spec)
		aTrue, err := s.Analysis(model, batch)
		if err != nil {
			return gpu.Result{}, err
		}
		planAnalysis := aTrue
		if e > 0 {
			perturbed := aTrue.Trace.Perturb(e, 12345)
			planAnalysis, err = vitality.Analyze(aTrue.Graph, perturbed)
			if err != nil {
				return gpu.Result{}, err
			}
		}
		return gpu.Run(gpu.RunParams{
			Analysis:  planAnalysis,
			Policy:    policy.G10Full(planner.Config{}),
			Config:    s.baseConfig(aTrue),
			ExecTrace: aTrue.Trace,
		})
	}
	parallelDo(len(grid), s.opt.workers(), func(i int) {
		model, e := mset[i/len(errs)], errs[i%len(errs)]
		grid[i].res, grid[i].err = runCell(model, e)
	})

	var rows []Fig19Row
	for mi, model := range mset {
		var base float64
		fmt.Fprintf(w, "%-14s", model)
		for ei, e := range errs {
			c := grid[mi*len(errs)+ei]
			if c.err != nil {
				return nil, c.err
			}
			secs := c.res.IterationTime.Seconds()
			if e == 0 {
				base = secs
			}
			norm := 0.0
			if secs > 0 {
				norm = base / secs
			}
			rows = append(rows, Fig19Row{Model: model, ErrPct: 100 * e, Normalized: norm})
			fmt.Fprintf(w, " %9.3f", norm)
		}
		fmt.Fprintln(w)
	}
	return rows, nil
}

package experiments

import (
	"reflect"
	"testing"

	"g10sim/internal/gpu"
	"g10sim/internal/units"
)

// TestFleetDeterministicAcrossWorkers: the fleet study is a pure function
// of its inputs at any worker-pool size — the arrival trace is fixed-seed
// and every cluster simulates once behind the single-flight cache.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []FleetRow {
		s := NewSession(Options{Short: true, Workers: workers})
		rows, err := Fleet(s)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("fleet rows differ between Workers=1 and Workers=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("fleet produced no rows")
	}
	for _, row := range serial {
		if row.MakespanSec <= 0 {
			t.Errorf("%s/%d: non-positive makespan %v", row.Policy, row.Tenants, row.MakespanSec)
		}
		if row.FailedTenants == 0 && row.P50Slowdown < 1-1e-9 {
			t.Errorf("%s/%d: median slowdown %v below 1 (faster than dedicated slice)",
				row.Policy, row.Tenants, row.P50Slowdown)
		}
	}
}

// TestFleetTraceFixedSeed: the arrival trace is deterministic, ordered,
// and cycles the catalogue.
func TestFleetTraceFixedSeed(t *testing.T) {
	s := NewSession(Options{Short: true})
	t1, err := s.fleetTrace(16)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewSession(Options{Short: true}).fleetTrace(16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Error("fleet trace differs across sessions")
	}
	prev := -1.0
	for i, j := range t1 {
		if j.ArrivalSec < prev {
			t.Errorf("job %d arrives at %v before predecessor %v", i, j.ArrivalSec, prev)
		}
		prev = j.ArrivalSec
		if want := fleetModels[i%len(fleetModels)]; j.Model != want {
			t.Errorf("job %d model %s, want %s", i, j.Model, want)
		}
	}
	if t1[0].ArrivalSec != 0 {
		t.Errorf("first job arrives at %v, want 0", t1[0].ArrivalSec)
	}
	if t1[len(t1)-1].ArrivalSec <= 0 {
		t.Error("arrival trace never advances")
	}
}

// TestEventDriverMatchesPollingEveryModelPolicy is the experiments-level
// differential: for every built-in model under every policy, a two-tenant
// co-simulation under the event-driven scheduler must be bit-identical to
// the retained polling reference — including one tenant arriving
// mid-simulation.
func TestEventDriverMatchesPollingEveryModelPolicy(t *testing.T) {
	s := NewSession(Options{Short: true})
	for _, model := range (Options{}).modelSet() {
		for _, polName := range PolicyNames {
			model, polName := model, polName
			t.Run(model+"/"+polName, func(t *testing.T) {
				a, err := s.Analysis(model, shortBatch[model])
				if err != nil {
					t.Fatal(err)
				}
				build := func() (gpu.ClusterParams, error) {
					cfg := scaledConfig(a)
					shared := cfg
					shared.HostCapacity = cfg.HostCapacity * 3 / 2
					var p gpu.ClusterParams
					p.Shared = shared
					for i := 0; i < 2; i++ {
						pol, err := s.clusterPolicy(polName)
						if err != nil {
							return gpu.ClusterParams{}, err
						}
						tenant := gpu.ClusterTenant{Analysis: a, Policy: pol, Config: cfg}
						if i == 1 {
							tenant.ArrivalTime = 50 * units.Millisecond
						}
						p.Tenants = append(p.Tenants, tenant)
					}
					return p, nil
				}
				runOnce := func(drv gpu.Driver) gpu.ClusterResult {
					params, err := build()
					if err != nil {
						t.Fatal(err)
					}
					params.Driver = drv
					res, err := gpu.RunCluster(params)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				event := runOnce(gpu.DriverAuto)
				polling := runOnce(gpu.DriverPolling)
				if !reflect.DeepEqual(event, polling) {
					t.Errorf("event-driven diverged from polling reference:\nevent:   %+v\npolling: %+v", event, polling)
				}
			})
		}
	}
}

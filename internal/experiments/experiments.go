// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 characterisation Figures 2–4, §7 Figures 11–19, and the
// §7.7 SSD-lifetime analysis) as printed series/rows, using the same models,
// policies, and system configuration as the paper.
//
// A Session caches graph analyses and run results so that figures sharing
// the same (model, batch, policy, config) runs — Figures 11–14 all consume
// one set — simulate each combination only once.
//
// Short mode shrinks batch sizes and scales the GPU capacity against each
// workload's footprint so the complete code path runs in seconds inside
// `go test`; full mode reproduces the paper's configuration.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"g10sim/internal/adapt"
	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/policy"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// PolicyNames lists the evaluated designs in the paper's presentation order.
var PolicyNames = []string{"Base UVM", "FlashNeuron", "DeepUM+", "G10-GDS", "G10-Host", "G10"}

// NewPolicy constructs a policy by its paper name.
func NewPolicy(name string) (gpu.Policy, error) {
	switch name {
	case "Ideal":
		return policy.Ideal(), nil
	case "Base UVM":
		return policy.BaseUVM(), nil
	case "DeepUM+":
		return policy.DeepUMPlus(0), nil
	case "FlashNeuron":
		return policy.FlashNeuron(), nil
	case "G10-GDS":
		return policy.G10GDS(planner.Config{}), nil
	case "G10-Host":
		return policy.G10Host(planner.Config{}), nil
	case "G10":
		return policy.G10Full(planner.Config{}), nil
	case "G10-Adaptive":
		// The full system plus the online replanning layer (internal/
		// adapt). Not part of PolicyNames: the paper's figures compare the
		// static designs; the adaptive variant appears in the Adapt study.
		return policy.G10Adaptive(planner.Config{}, adapt.Config{}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// Options selects scope and output.
type Options struct {
	// Short shrinks workloads for fast test runs.
	Short bool
	// Models restricts the workload set (nil = all five).
	Models []string
	// W receives the printed tables; nil discards them.
	W io.Writer
	// Perf receives nondeterministic performance lines (host wall-clock
	// simulator throughput); nil discards them. Kept separate from W so
	// golden snapshots and differential runs stay byte-stable.
	Perf io.Writer
	// Workers bounds the simulation worker pool (0 = GOMAXPROCS, 1 =
	// serial). Results are identical at any setting: runs are pure and the
	// session cache is single-flight.
	Workers int
	// Shards splits every cluster co-simulation across that many shard
	// workers (<= 1 runs the sequential driver). The sharded driver is
	// byte-identical to the sequential one, so figures are unchanged at any
	// setting.
	Shards int
}

func (o Options) writer() io.Writer {
	if o.W == nil {
		return io.Discard
	}
	return o.W
}

func (o Options) perfWriter() io.Writer {
	if o.Perf == nil {
		return io.Discard
	}
	return o.Perf
}

func (o Options) modelSet() []string {
	if len(o.Models) > 0 {
		return o.Models
	}
	return []string{"BERT", "ViT", "Inceptionv3", "ResNet152", "SENet154"}
}

// shortBatch maps each model to a small batch used in Short mode.
var shortBatch = map[string]int{
	"BERT": 16, "ViT": 32, "Inceptionv3": 32, "ResNet152": 32, "SENet154": 16,
}

// Session caches analyses and simulation results across figures. It is
// safe for concurrent use: figures fan their runs across a worker pool
// (prewarm) and the caches single-flight each key, so every (model, batch,
// policy, config) combination simulates exactly once and the results are
// identical to serial execution.
type Session struct {
	opt       Options
	mu        sync.Mutex
	analyses  map[string]*flight[*vitality.Analysis]
	results   map[string]*flight[gpu.Result]
	clusters  map[string]*flight[gpu.ClusterResult]
	inference map[string]*flight[inferenceCell]
	programs  map[programKey]*flight[*planner.Program]
	// engine accumulates engine-internal work counters over every cluster
	// the session actually ran (cache hits add nothing: the work happened
	// once). Guarded by mu.
	engine gpu.EngineStats
}

// NewSession builds a session.
func NewSession(opt Options) *Session {
	return &Session{
		opt:       opt,
		analyses:  make(map[string]*flight[*vitality.Analysis]),
		results:   make(map[string]*flight[gpu.Result]),
		clusters:  make(map[string]*flight[gpu.ClusterResult]),
		inference: make(map[string]*flight[inferenceCell]),
		programs:  make(map[programKey]*flight[*planner.Program]),
	}
}

// programKey identifies one planner run: the analysis (cached per
// model/batch, so pointer identity is stable within a session), the
// effective machine configuration the program was planned against, and the
// policy variant.
type programKey struct {
	a   *vitality.Analysis
	cfg gpu.Config
	pol string
}

// cachedProgramPolicy wraps a planning policy (a G10 variant) so its
// instrumented program is computed once per (analysis, config, policy)
// across a whole cluster — a 64-tenant fleet cell re-plans each distinct
// job once instead of once per tenant, and identical jobs across cluster
// configurations share the warm program. The planner is deterministic, so
// the shared *planner.Program is bit-identical to a per-tenant build; it is
// read-only during simulation.
type cachedProgramPolicy struct {
	gpu.Policy
	s *Session
}

func (c *cachedProgramPolicy) Program(a *vitality.Analysis, cfg gpu.Config) *planner.Program {
	pb := c.Policy.(gpu.ProgramBuilder)
	key := programKey{a: a, cfg: cfg, pol: c.Policy.Name()}
	s := c.s
	s.mu.Lock()
	f, ok := s.programs[key]
	if !ok {
		f = &flight[*planner.Program]{}
		s.programs[key] = f
	}
	s.mu.Unlock()
	p, _ := f.do(func() (*planner.Program, error) { return pb.Program(a, cfg), nil })
	return p
}

// cachedReplanPolicy additionally forwards the Replanner hook the wrapped
// adaptive policy implements (the per-tenant controller state stays with
// the wrapped instance; only the initial plan is shared).
type cachedReplanPolicy struct {
	cachedProgramPolicy
	rp gpu.Replanner
}

func (c *cachedReplanPolicy) NextProgram(iter int, sig gpu.LatenessSignal, cur *planner.Program) *planner.Program {
	return c.rp.NextProgram(iter, sig, cur)
}

// clusterPolicy builds a fresh per-tenant policy instance whose planner
// output is shared through the session's program cache.
func (s *Session) clusterPolicy(name string) (gpu.Policy, error) {
	pol, err := NewPolicy(name)
	if err != nil {
		return nil, err
	}
	if _, ok := pol.(gpu.ProgramBuilder); ok {
		cp := cachedProgramPolicy{Policy: pol, s: s}
		if rp, ok := pol.(gpu.Replanner); ok {
			return &cachedReplanPolicy{cachedProgramPolicy: cp, rp: rp}, nil
		}
		return &cp, nil
	}
	return pol, nil
}

// batchFor reports the evaluation batch size for a model under the
// session's scope.
func (s *Session) batchFor(spec models.Spec) int {
	if s.opt.Short {
		return shortBatch[spec.Name]
	}
	return spec.PaperBatch
}

// Analysis builds (or returns the cached) vitality analysis for one
// workload.
func (s *Session) Analysis(model string, batch int) (*vitality.Analysis, error) {
	key := fmt.Sprintf("%s/%d", model, batch)
	s.mu.Lock()
	f, ok := s.analyses[key]
	if !ok {
		f = &flight[*vitality.Analysis]{}
		s.analyses[key] = f
	}
	s.mu.Unlock()
	return f.do(func() (*vitality.Analysis, error) {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		g := spec.Build(batch)
		tr := profile.Profile(g, profile.A100(spec.TimeScale))
		return vitality.Analyze(g, tr)
	})
}

// baseConfig is the Table 2 system, scaled down against the workload's
// memory demand in Short mode so that the same pressure dynamics appear.
func (s *Session) baseConfig(a *vitality.Analysis) gpu.Config {
	if s.opt.Short {
		return scaledConfig(a)
	}
	return gpu.Default()
}

// scaledConfig shrinks the Table 2 system against one workload's memory
// demand: GPU capacity a fixed fraction of the no-migration peak (but
// always fitting the largest working set), host memory a small multiple of
// that, and a smaller flash array. Short mode uses it for every figure;
// the fleet study uses it at any scope so a 64-tenant co-simulation stays
// tractable while showing the same pressure dynamics.
func scaledConfig(a *vitality.Analysis) gpu.Config {
	cfg := gpu.Default()
	cap := units.Bytes(float64(a.PeakAlive()) * 0.55)
	if min := a.PeakActive() + a.PeakActive()/4; cap < min {
		cap = min
	}
	cfg.GPUCapacity = cap
	cfg.HostCapacity = cap * 3
	ssdCfg := cfg.SSD
	ssdCfg.Capacity = 64 * units.GB
	ssdCfg.PageSize = 256 * units.KB
	cfg.SSD = ssdCfg
	return cfg
}

// Run simulates one (model, batch, policy, config) combination, caching by
// a caller-supplied config tag ("" for the base configuration).
func (s *Session) Run(model string, batch int, polName, cfgTag string, cfg gpu.Config, exec *profile.Trace) (gpu.Result, error) {
	key := fmt.Sprintf("%s/%d/%s/%s", model, batch, polName, cfgTag)
	run := func() (gpu.Result, error) {
		a, err := s.Analysis(model, batch)
		if err != nil {
			return gpu.Result{}, err
		}
		pol, err := NewPolicy(polName)
		if err != nil {
			return gpu.Result{}, err
		}
		if polName == "Ideal" {
			cfg = policy.IdealConfig(cfg)
		}
		res, err := gpu.Run(gpu.RunParams{Analysis: a, Policy: pol, Config: cfg, ExecTrace: exec})
		if err != nil {
			return gpu.Result{}, fmt.Errorf("experiments: %s: %w", key, err)
		}
		return res, nil
	}
	if exec != nil {
		// Perturbed-trace runs (Fig. 19) bypass the cache.
		return run()
	}
	s.mu.Lock()
	f, ok := s.results[key]
	if !ok {
		f = &flight[gpu.Result]{}
		s.results[key] = f
	}
	s.mu.Unlock()
	return f.do(run)
}

// RunCluster co-simulates a multi-tenant cluster, caching by key. build
// assembles the cluster parameters (fresh policy instances per call; only
// one call survives thanks to the single-flight cell), so concurrent
// prewarming is as deterministic as the serial pass.
func (s *Session) RunCluster(key string, build func() (gpu.ClusterParams, error)) (gpu.ClusterResult, error) {
	s.mu.Lock()
	f, ok := s.clusters[key]
	if !ok {
		f = &flight[gpu.ClusterResult]{}
		s.clusters[key] = f
	}
	s.mu.Unlock()
	return f.do(func() (gpu.ClusterResult, error) {
		p, err := build()
		if err != nil {
			return gpu.ClusterResult{}, err
		}
		if p.Shards == 0 {
			p.Shards = s.opt.Shards
		}
		var es gpu.EngineStats
		if p.Engine == nil {
			p.Engine = &es
		}
		res, err := gpu.RunCluster(p)
		if err != nil {
			return gpu.ClusterResult{}, fmt.Errorf("experiments: cluster %s: %w", key, err)
		}
		s.mu.Lock()
		s.engine.Add(es)
		s.mu.Unlock()
		return res, nil
	})
}

// inferenceCell is one cached serving simulation plus the host wall time
// its one real run took (cache hits reuse the measured time, so the perf
// line reflects the simulation, not the memoization).
type inferenceCell struct {
	res  gpu.InferenceResult
	wall time.Duration
}

// RunInference simulates a serving trace, caching by key and folding the
// engine counters into the session like RunCluster does.
func (s *Session) RunInference(key string, build func() (gpu.InferenceParams, error)) (gpu.InferenceResult, time.Duration, error) {
	s.mu.Lock()
	f, ok := s.inference[key]
	if !ok {
		f = &flight[inferenceCell]{}
		s.inference[key] = f
	}
	s.mu.Unlock()
	cell, err := f.do(func() (inferenceCell, error) {
		p, err := build()
		if err != nil {
			return inferenceCell{}, err
		}
		if p.Shards == 0 {
			p.Shards = s.opt.Shards
		}
		var es gpu.EngineStats
		if p.Engine == nil {
			p.Engine = &es
		}
		t0 := time.Now()
		res, err := gpu.RunInference(p)
		wall := time.Since(t0)
		if err != nil {
			return inferenceCell{}, fmt.Errorf("experiments: inference %s: %w", key, err)
		}
		s.mu.Lock()
		s.engine.Add(es)
		s.mu.Unlock()
		return inferenceCell{res: res, wall: wall}, nil
	})
	return cell.res, cell.wall, err
}

// EngineStats reports the engine-internal work counters accumulated over
// every cluster simulation the session ran (memoized re-reads add nothing).
func (s *Session) EngineStats() gpu.EngineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine
}

// RunBase runs with the session's default (Table 2 or short-scaled) config.
func (s *Session) RunBase(model string, polName string) (gpu.Result, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return gpu.Result{}, err
	}
	batch := s.batchFor(spec)
	a, err := s.Analysis(model, batch)
	if err != nil {
		return gpu.Result{}, err
	}
	return s.Run(model, batch, polName, "", s.baseConfig(a), nil)
}

// percentile returns the q-quantile (0..1) of sorted xs.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

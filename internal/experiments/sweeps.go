package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// SweepRow is one point of a parameter sweep.
type SweepRow struct {
	Model  string
	Batch  int
	Policy string
	// X is the swept parameter (batch size, host GB, or SSD GB/s).
	X      float64
	Result gpu.Result
}

// batchSweep reports the batch sizes to sweep for a model.
func (s *Session) batchSweep(spec models.Spec) []int {
	if s.opt.Short {
		b := shortBatch[spec.Name]
		return []int{b / 2, b}
	}
	return spec.BatchSweep
}

// Figure15 reproduces training throughput (examples/sec) as batch size
// varies, for each design and the Ideal bound.
func Figure15(s *Session) ([]SweepRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 15: training throughput vs batch size (examples/sec) ===")
	policies := []string{"Base UVM", "FlashNeuron", "DeepUM+", "G10", "Ideal"}
	var jobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		for _, batch := range s.batchSweep(spec) {
			for _, p := range policies {
				model, batch, p := model, batch, p
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						_, _ = s.Run(model, batch, p, "", s.baseConfig(a), nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)
	var rows []SweepRow
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\n%s:\n%-8s", model, "batch")
		for _, p := range policies {
			fmt.Fprintf(w, " %12s", p)
		}
		fmt.Fprintln(w)
		for _, batch := range s.batchSweep(spec) {
			a, err := s.Analysis(model, batch)
			if err != nil {
				return nil, err
			}
			cfg := s.baseConfig(a)
			fmt.Fprintf(w, "%-8d", batch)
			for _, p := range policies {
				res, err := s.Run(model, batch, p, "", cfg, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SweepRow{Model: model, Batch: batch, Policy: p, X: float64(batch), Result: res})
				if res.Failed {
					fmt.Fprintf(w, " %12s", "FAIL")
				} else {
					fmt.Fprintf(w, " %12.2f", res.Throughput())
				}
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

// hostSweep reports the host-memory capacities of Figures 16–17.
func (s *Session) hostSweep(a interface{ PeakAlive() units.Bytes }) []units.Bytes {
	if s.opt.Short {
		base := a.PeakAlive()
		return []units.Bytes{0, base / 4, base}
	}
	return []units.Bytes{0, 32 * units.GB, 64 * units.GB, 128 * units.GB, 256 * units.GB}
}

// Figure16 reproduces G10's execution time as host memory capacity varies,
// for several batch sizes per model.
func Figure16(s *Session) ([]SweepRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 16: G10 execution time (s) vs host memory capacity ===")
	// Stage 1: build the analyses across the pool (the host sweep below
	// needs each model's largest-batch analysis before its run jobs can be
	// enumerated).
	var aJobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batches := s.batchSweep(spec)
		if len(batches) > 4 {
			batches = batches[len(batches)-4:]
		}
		for _, batch := range batches {
			model, batch := model, batch
			aJobs = append(aJobs, func() { _, _ = s.Analysis(model, batch) })
		}
	}
	s.prewarm(aJobs)
	// Stage 2: fan out the simulations.
	var jobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batches := s.batchSweep(spec)
		if len(batches) > 4 {
			batches = batches[len(batches)-4:]
		}
		aRef, err := s.Analysis(model, batches[len(batches)-1])
		if err != nil {
			return nil, err
		}
		for _, host := range s.hostSweep(aRef) {
			for _, batch := range batches {
				host, batch, model := host, batch, model
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						cfg := s.baseConfig(a)
						cfg.HostCapacity = host
						_, _ = s.Run(model, batch, "G10", fmt.Sprintf("host=%d", host), cfg, nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)
	var rows []SweepRow
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batches := s.batchSweep(spec)
		if len(batches) > 4 {
			batches = batches[len(batches)-4:]
		}
		fmt.Fprintf(w, "\n%s (rows: host GB, cols: batch %v):\n", model, batches)
		// Determine the host sweep from the largest batch's analysis.
		aRef, err := s.Analysis(model, batches[len(batches)-1])
		if err != nil {
			return nil, err
		}
		for _, host := range s.hostSweep(aRef) {
			fmt.Fprintf(w, "%8.0f", host.GiB())
			for _, batch := range batches {
				a, err := s.Analysis(model, batch)
				if err != nil {
					return nil, err
				}
				cfg := s.baseConfig(a)
				cfg.HostCapacity = host
				tag := fmt.Sprintf("host=%d", host)
				res, err := s.Run(model, batch, "G10", tag, cfg, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SweepRow{Model: model, Batch: batch, Policy: "G10", X: host.GiB(), Result: res})
				fmt.Fprintf(w, " %10.2f", res.IterationTime.Seconds())
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

// fig17Workloads are the two representative models of Figure 17.
var fig17Workloads = []struct {
	Model string
	Batch int
}{
	{"ViT", 1024},
	{"Inceptionv3", 1280},
}

// Figure17 compares G10, DeepUM+, and FlashNeuron as host memory varies.
func Figure17(s *Session) ([]SweepRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 17: execution time (s) vs host memory, by policy ===")
	policies := []string{"DeepUM+", "FlashNeuron", "G10"}
	// Stage 1: build both workloads' analyses across the pool (the host
	// sweep depends on them).
	var aJobs []func()
	for _, wl := range fig17Workloads {
		batch := wl.Batch
		if s.opt.Short {
			batch = shortBatch[wl.Model]
		}
		model, batch := wl.Model, batch
		aJobs = append(aJobs, func() { _, _ = s.Analysis(model, batch) })
	}
	s.prewarm(aJobs)
	// Stage 2: fan out the simulations.
	var jobs []func()
	for _, wl := range fig17Workloads {
		batch := wl.Batch
		if s.opt.Short {
			batch = shortBatch[wl.Model]
		}
		a, err := s.Analysis(wl.Model, batch)
		if err != nil {
			return nil, err
		}
		for _, host := range s.hostSweep(a) {
			for _, p := range policies {
				model, host, p, batch := wl.Model, host, p, batch
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						cfg := s.baseConfig(a)
						cfg.HostCapacity = host
						_, _ = s.Run(model, batch, p, fmt.Sprintf("host=%d", host), cfg, nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)
	var rows []SweepRow
	for _, wl := range fig17Workloads {
		batch := wl.Batch
		if s.opt.Short {
			batch = shortBatch[wl.Model]
		}
		a, err := s.Analysis(wl.Model, batch)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\n%s-%d:\n%-8s", wl.Model, batch, "hostGB")
		for _, p := range policies {
			fmt.Fprintf(w, " %12s", p)
		}
		fmt.Fprintln(w)
		for _, host := range s.hostSweep(a) {
			cfg := s.baseConfig(a)
			cfg.HostCapacity = host
			tag := fmt.Sprintf("host=%d", host)
			fmt.Fprintf(w, "%-8.0f", host.GiB())
			for _, p := range policies {
				res, err := s.Run(wl.Model, batch, p, tag, cfg, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SweepRow{Model: wl.Model, Batch: batch, Policy: p, X: host.GiB(), Result: res})
				if res.Failed {
					fmt.Fprintf(w, " %12s", "FAIL")
				} else {
					fmt.Fprintf(w, " %12.2f", res.IterationTime.Seconds())
				}
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

// Figure18 reproduces normalized performance as the SSD bandwidth scales
// (stacking SSDs), with the interconnect upgraded to PCIe 4.0 ×16.
func Figure18(s *Session) ([]SweepRow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 18: normalized performance vs SSD bandwidth (PCIe 4.0 x16) ===")
	policies := []string{"Base UVM", "FlashNeuron", "DeepUM+", "G10"}
	bandwidths := []float64{6.4, 12.8, 19.2, 25.6, 32.0}
	if s.opt.Short {
		bandwidths = []float64{6.4, 32.0}
	}
	fig18Batch := func(spec models.Spec) int {
		batch := s.batchFor(spec)
		if !s.opt.Short && spec.Name == "BERT" {
			return 512 // the paper uses BERT-512 in this sweep
		}
		return batch
	}
	fig18Cfg := func(a *vitality.Analysis, bw float64) gpu.Config {
		cfg := s.baseConfig(a)
		cfg.PCIeBandwidth = units.GBps(32)
		ssdCfg := cfg.SSD
		ssdCfg.ReadBandwidth = units.GBps(bw)
		ssdCfg.WriteBandwidth = units.GBps(bw * 3.0 / 3.2)
		cfg.SSD = ssdCfg
		return cfg
	}
	var jobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := fig18Batch(spec)
		for _, bw := range bandwidths {
			for _, p := range policies {
				model, bw, p, batch := model, bw, p, batch
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						_, _ = s.Run(model, batch, p, fmt.Sprintf("ssd=%.1f", bw), fig18Cfg(a, bw), nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)
	var rows []SweepRow
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := fig18Batch(spec)
		a, err := s.Analysis(model, batch)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\n%s-%d:\n%-8s", model, batch, "GB/s")
		for _, p := range policies {
			fmt.Fprintf(w, " %12s", p)
		}
		fmt.Fprintln(w)
		for _, bw := range bandwidths {
			cfg := fig18Cfg(a, bw)
			tag := fmt.Sprintf("ssd=%.1f", bw)
			fmt.Fprintf(w, "%-8.1f", bw)
			for _, p := range policies {
				res, err := s.Run(model, batch, p, tag, cfg, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SweepRow{Model: model, Batch: batch, Policy: p, X: bw, Result: res})
				if res.Failed {
					fmt.Fprintf(w, " %12s", "FAIL")
				} else {
					fmt.Fprintf(w, " %11.1f%%", 100*res.NormalizedPerf())
				}
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

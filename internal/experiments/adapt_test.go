package experiments

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

// adaptRowsByPolicy indexes study rows by (policy, tenant count).
func adaptRowsByPolicy(rows []AdaptRow) map[string]map[int]AdaptRow {
	out := map[string]map[int]AdaptRow{}
	for _, r := range rows {
		if out[r.Policy] == nil {
			out[r.Policy] = map[int]AdaptRow{}
		}
		out[r.Policy][r.Tenants] = r
	}
	return out
}

// TestAdaptStudy: in short mode the study covers every policy at the
// 16-tenant fleet, no tenant fails, and the adaptive variant strictly
// improves on the static plan's slowdown distribution.
func TestAdaptStudy(t *testing.T) {
	s, buf := shortSession(t)
	rows, err := Adapt(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(adaptPolicies) {
		t.Fatalf("%d rows, want %d", len(rows), len(adaptPolicies))
	}
	byPol := adaptRowsByPolicy(rows)
	for _, pol := range adaptPolicies {
		r, ok := byPol[pol][16]
		if !ok {
			t.Fatalf("no 16-tenant row for %s", pol)
		}
		if r.FailedTenants != 0 {
			t.Errorf("%s: %d failed tenants", pol, r.FailedTenants)
		}
		if r.MeanSlowdown < 1 || r.P50Slowdown > r.P95Slowdown || r.P95Slowdown > r.MaxSlowdown {
			t.Errorf("%s: malformed distribution %+v", pol, r)
		}
	}
	static, adaptive := byPol["G10"][16], byPol["G10-Adaptive"][16]
	if adaptive.P95Slowdown >= static.P95Slowdown {
		t.Errorf("adaptive p95 %.4f not below static %.4f", adaptive.P95Slowdown, static.P95Slowdown)
	}
	if adaptive.P50Slowdown > static.P50Slowdown {
		t.Errorf("adaptive p50 %.4f above static %.4f", adaptive.P50Slowdown, static.P50Slowdown)
	}
	if adaptive.MeanSlowdown >= static.MeanSlowdown {
		t.Errorf("adaptive mean %.4f not below static %.4f", adaptive.MeanSlowdown, static.MeanSlowdown)
	}
	if !strings.Contains(buf.String(), "Adapt study") {
		t.Error("missing header")
	}
}

// TestAdaptDeterministicAcrossWorkers: the study's cells land in the
// single-flight cluster cache, so the rows are identical at any worker-pool
// size.
func TestAdaptDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []AdaptRow {
		s := NewSession(Options{Short: true, Workers: workers})
		rows, err := Adapt(s)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if serial, parallel := run(1), run(8); !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker-pool size changed the adapt results:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestFullScaleAdaptClaim pins the headline claim of the adaptation layer
// at the full study scope: on the 64-tenant fixed-seed fleet trace,
// adaptive G10 strictly improves both the p50 and p95 slowdown over the
// static plan. Skipped under -short (the 64-tenant co-simulations take a
// few seconds).
func TestFullScaleAdaptClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale adapt study in -short mode")
	}
	s := NewSession(Options{W: io.Discard})
	rows, err := Adapt(s)
	if err != nil {
		t.Fatal(err)
	}
	byPol := adaptRowsByPolicy(rows)
	for _, n := range []int{16, 64} {
		static, ok := byPol["G10"][n]
		if !ok {
			t.Fatalf("no %d-tenant static row", n)
		}
		adaptive, ok := byPol["G10-Adaptive"][n]
		if !ok {
			t.Fatalf("no %d-tenant adaptive row", n)
		}
		if adaptive.P50Slowdown >= static.P50Slowdown {
			t.Errorf("%d tenants: adaptive p50 %.4f not strictly below static %.4f",
				n, adaptive.P50Slowdown, static.P50Slowdown)
		}
		if adaptive.P95Slowdown >= static.P95Slowdown {
			t.Errorf("%d tenants: adaptive p95 %.4f not strictly below static %.4f",
				n, adaptive.P95Slowdown, static.P95Slowdown)
		}
	}
}

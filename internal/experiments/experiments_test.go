package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"g10sim/internal/gpu"
)

func shortSession(t *testing.T, modelSet ...string) (*Session, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	if len(modelSet) == 0 {
		modelSet = []string{"BERT", "ResNet152"}
	}
	return NewSession(Options{Short: true, Models: modelSet, W: &buf}), &buf
}

func TestFigure2Characterization(t *testing.T) {
	s, buf := shortSession(t)
	rows, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.AllPct < 0 || r.AllPct > 100.0001 {
			t.Errorf("AllPct = %v out of range", r.AllPct)
		}
		if r.ActivePct > r.AllPct+1e-9 {
			t.Errorf("active %.2f%% above all %.2f%% at kernel %d", r.ActivePct, r.AllPct, r.KernelIndex)
		}
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("missing header")
	}
}

func TestFigure3PeriodsObservationO2(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Periods == 0 {
			t.Errorf("%s has no inactive periods", r.Model)
		}
		if r.P10 > r.P50 || r.P50 > r.P90 {
			t.Errorf("%s percentiles not monotone: %v %v %v", r.Model, r.P10, r.P50, r.P90)
		}
	}
}

func TestFigure4Buckets(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no buckets")
	}
}

func TestFigure11Shape(t *testing.T) {
	s, buf := shortSession(t)
	rows, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]map[string]float64{}
	for _, r := range rows {
		if perf[r.Model] == nil {
			perf[r.Model] = map[string]float64{}
		}
		perf[r.Model][r.Policy] = r.Result.NormalizedPerf()
	}
	for model, p := range perf {
		// The paper's headline ordering must hold even in short mode.
		if p["G10"] < p["Base UVM"] {
			t.Errorf("%s: G10 (%.2f) below Base UVM (%.2f)", model, p["G10"], p["Base UVM"])
		}
		if p["G10"] < p["DeepUM+"]*0.98 {
			t.Errorf("%s: G10 (%.2f) below DeepUM+ (%.2f)", model, p["G10"], p["DeepUM+"])
		}
		if p["G10"] > 1.0001 {
			t.Errorf("%s: G10 above ideal (%.3f)", model, p["G10"])
		}
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("missing header")
	}
}

func TestFigure12BreakdownSums(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure12(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Result.Failed {
			continue
		}
		if r.Result.StallTime < 0 || r.Result.StallTime > r.Result.IterationTime {
			t.Errorf("%s/%s stall %v outside iteration %v", r.Model, r.Policy, r.Result.StallTime, r.Result.IterationTime)
		}
	}
}

func TestFigure13CDFs(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure13(s)
	if err != nil {
		t.Fatal(err)
	}
	byPol := map[string]float64{}
	for _, r := range rows {
		if r.P50 > r.P90 || r.P90 > r.P99 || r.P99 > r.Max {
			t.Errorf("%s/%s: non-monotone percentiles %+v", r.Model, r.Policy, r)
		}
		byPol[r.Policy] += r.FracSlowed
	}
	// G10 slows fewer kernels than Base UVM (paper: 1-6% vs >50%).
	if byPol["G10"] > byPol["Base UVM"] {
		t.Errorf("G10 slowed more kernels (%v) than Base UVM (%v)", byPol["G10"], byPol["Base UVM"])
	}
}

func TestFigure14TrafficConsistency(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure14(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		res := r.Result
		if res.Failed {
			continue
		}
		if res.GPUToSSD < 0 || res.SSDToGPU < 0 || res.GPUToHost < 0 || res.HostToGPU < 0 {
			t.Errorf("%s/%s negative traffic: %+v", r.Model, r.Policy, res)
		}
	}
	// G10-GDS is covered in Figure 11; here check Base UVM/G10 move data.
	var any bool
	for _, r := range rows {
		if !r.Result.Failed && r.Result.TotalTraffic() > 0 {
			any = true
		}
	}
	if !any {
		t.Error("no policy moved any data under memory pressure")
	}
}

func TestFigure15Sweep(t *testing.T) {
	s, _ := shortSession(t, "BERT")
	rows, err := Figure15(s)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal throughput should not increase when the batch shrinks by half
	// beyond small noise, and must be positive.
	for _, r := range rows {
		if r.Policy == "Ideal" && !r.Result.Failed && r.Result.Throughput() <= 0 {
			t.Errorf("ideal throughput %v at batch %d", r.Result.Throughput(), r.Batch)
		}
	}
}

func TestFigure16HostSweepMonotoneish(t *testing.T) {
	s, _ := shortSession(t, "ResNet152")
	rows, err := Figure16(s)
	if err != nil {
		t.Fatal(err)
	}
	// More host memory must not make G10 slower by more than 10% (it can
	// only add an eviction destination).
	byBatch := map[int][]SweepRow{}
	for _, r := range rows {
		byBatch[r.Batch] = append(byBatch[r.Batch], r)
	}
	for batch, rs := range byBatch {
		first := rs[0].Result.IterationTime
		last := rs[len(rs)-1].Result.IterationTime
		if float64(last) > 1.1*float64(first) {
			t.Errorf("batch %d: more host memory slowed G10: %v -> %v", batch, first, last)
		}
	}
}

func TestFigure17PolicyComparison(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := Figure17(s)
	if err != nil {
		t.Fatal(err)
	}
	// FlashNeuron must be insensitive to host memory (it never uses it).
	fn := map[string][]gpu.Result{}
	for _, r := range rows {
		if r.Policy == "FlashNeuron" {
			fn[r.Model] = append(fn[r.Model], r.Result)
		}
	}
	for model, rs := range fn {
		for i := 1; i < len(rs); i++ {
			if rs[i].Failed != rs[0].Failed {
				continue
			}
			if rs[i].IterationTime != rs[0].IterationTime {
				t.Errorf("%s: FlashNeuron time changed with host memory: %v vs %v",
					model, rs[0].IterationTime, rs[i].IterationTime)
			}
		}
	}
}

func TestFigure18BandwidthHelps(t *testing.T) {
	s, _ := shortSession(t, "ResNet152")
	rows, err := Figure18(s)
	if err != nil {
		t.Fatal(err)
	}
	// G10 at the top SSD bandwidth must be at least as fast as at the
	// bottom one.
	var lo, hi float64
	for _, r := range rows {
		if r.Policy != "G10" || r.Result.Failed {
			continue
		}
		switch r.X {
		case 6.4:
			lo = r.Result.NormalizedPerf()
		case 32.0:
			hi = r.Result.NormalizedPerf()
		}
	}
	if hi < lo-0.02 {
		t.Errorf("more SSD bandwidth hurt G10: %.3f -> %.3f", lo, hi)
	}
}

func TestFigure19Robustness(t *testing.T) {
	s, _ := shortSession(t, "ResNet152")
	rows, err := Figure19(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ErrPct == 0 && r.Normalized != 1 {
			t.Errorf("%s: zero-error normalized = %v", r.Model, r.Normalized)
		}
		// The paper reports <0.5% degradation at ±20%; allow more slack in
		// the shrunken short configuration but degradation must stay small.
		if r.Normalized < 0.85 {
			t.Errorf("%s at ±%.0f%%: normalized %v — scheduler not robust", r.Model, r.ErrPct, r.Normalized)
		}
	}
}

func TestSSDLifetime(t *testing.T) {
	s, _ := shortSession(t)
	rows, err := SSDLifetime(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WriteAmp < 1 {
			t.Errorf("%s/%s WA %v < 1", r.Model, r.Policy, r.WriteAmp)
		}
		if r.WriteShare < 0 || r.WriteShare > 1 {
			t.Errorf("%s/%s write share %v", r.Model, r.Policy, r.WriteShare)
		}
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range append([]string{"Ideal"}, PolicyNames...) {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSessionCaching(t *testing.T) {
	s, _ := shortSession(t, "BERT")
	r1, err := s.RunBase("BERT", "G10")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunBase("BERT", "G10")
	if err != nil {
		t.Fatal(err)
	}
	if r1.IterationTime != r2.IterationTime {
		t.Error("cache returned different results")
	}
}

func TestMultiGPUExtension(t *testing.T) {
	s, buf := shortSession(t, "ResNet152")
	rows, err := MultiGPU(s)
	if err != nil {
		t.Fatal(err)
	}
	cosim := map[[2]int]float64{}
	static := map[[2]int]float64{}
	for _, r := range rows {
		cosim[[2]int{r.GPUs, r.SSDs}] = r.CosimPerGPUNorm
		static[[2]int{r.GPUs, r.SSDs}] = r.StaticPerGPUNorm
	}
	for name, perf := range map[string]map[[2]int]float64{"cosim": cosim, "static": static} {
		// More GPUs per SSD means less flash bandwidth per GPU: per-GPU
		// performance must not improve.
		if perf[[2]int{4, 1}] > perf[[2]int{1, 1}]+0.02 {
			t.Errorf("%s: per-GPU perf improved when sharing one SSD across 4 GPUs: %.3f vs %.3f",
				name, perf[[2]int{4, 1}], perf[[2]int{1, 1}])
		}
		// Scaling SSDs with GPUs (as §6 recommends) must recover performance.
		if perf[[2]int{4, 4}] < perf[[2]int{4, 1}]-0.02 {
			t.Errorf("%s: 4 GPUs/4 SSDs (%.3f) below 4 GPUs/1 SSD (%.3f)",
				name, perf[[2]int{4, 4}], perf[[2]int{4, 1}])
		}
	}
	// At one GPU the two sharing models describe the same system: no
	// static split happens and the cluster holds one tenant.
	for _, ssds := range []int{1, 4} {
		c, st := cosim[[2]int{1, ssds}], static[[2]int{1, ssds}]
		if diff := c - st; diff > 0.03 || diff < -0.03 {
			t.Errorf("1 GPU / %d SSDs: cosim %.3f and static %.3f should agree", ssds, c, st)
		}
	}
	if !strings.Contains(buf.String(), "cosim") {
		t.Error("output missing the cosim-vs-static comparison")
	}
}

func TestColocateStudy(t *testing.T) {
	s, buf := shortSession(t)
	rows, err := Colocate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 mixes × 2 jobs
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Failed {
			t.Errorf("%s %s failed", r.Mix, r.Model)
			continue
		}
		if r.Norm <= 0 || r.Norm > 1.001 || r.SoloNorm <= 0 || r.SoloNorm > 1.001 {
			t.Errorf("%s %s: norms out of range: co %.3f solo %.3f", r.Mix, r.Model, r.Norm, r.SoloNorm)
		}
		// Sharing the array can only take performance away (up to noise).
		if r.Interference < -0.02 {
			t.Errorf("%s %s: co-located (%.3f) beat solo (%.3f)", r.Mix, r.Model, r.Norm, r.SoloNorm)
		}
		if r.TenantWA < 1 {
			t.Errorf("%s %s: tenant WA %.2f < 1", r.Mix, r.Model, r.TenantWA)
		}
	}
	if !strings.Contains(buf.String(), "Co-location") {
		t.Error("missing header")
	}
}

// TestColocateDeterministicAcrossWorkers: the co-location study's cluster
// runs land in the single-flight cache, so the output is identical at any
// worker-pool size.
func TestColocateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []ColocateRow {
		s := NewSession(Options{Short: true, Workers: workers})
		rows, err := Colocate(s)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker-pool size changed the co-location results:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestMultiGPUDeterministicAcrossWorkers: same for the cosim multi-GPU grid.
func TestMultiGPUDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []MultiGPURow {
		s := NewSession(Options{Short: true, Models: []string{"ResNet152"}, Workers: workers})
		rows, err := MultiGPU(s)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if serial, parallel := run(1), run(8); !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker-pool size changed the multi-GPU results:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

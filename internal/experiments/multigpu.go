package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// MultiGPURow is one cell of the §6 multi-GPU study.
type MultiGPURow struct {
	Model       string
	GPUs        int
	SSDs        int
	PerGPUNorm  float64 // each GPU's normalized performance
	AggregateEx float64 // total examples/sec across GPUs
}

// MultiGPU implements the paper's §6 extension sketch: multiple GPUs each
// run an independent G10 instance (each makes its own migration decisions)
// while sharing the flash array. Following §6, the SSD array appears to
// every GPU as a shared flash space, so with G GPUs and S SSDs each
// instance sees S/G of the array's bandwidth; each GPU keeps its own PCIe
// link and an equal share of host memory. The sweep reports per-GPU
// normalized performance and aggregate throughput as GPUs and SSDs scale —
// the sensitivity analysis §6 defers to §7.5.
func MultiGPU(s *Session) ([]MultiGPURow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== §6 extension: multi-GPU sharing an SSD array (G10, per-GPU % of ideal) ===")
	gpuCounts := []int{1, 2, 4, 8}
	ssdCounts := []int{1, 2, 4, 8}
	if s.opt.Short {
		gpuCounts = []int{1, 4}
		ssdCounts = []int{1, 4}
	}
	shareCfg := func(a *vitality.Analysis, gpus, ssds int) gpu.Config {
		cfg := s.baseConfig(a)
		// Each GPU sees its share of the array's bandwidth and capacity,
		// and of the host memory.
		share := float64(ssds) / float64(gpus)
		ssdCfg := cfg.SSD
		ssdCfg.ReadBandwidth = units.Bandwidth(float64(ssdCfg.ReadBandwidth) * share)
		ssdCfg.WriteBandwidth = units.Bandwidth(float64(ssdCfg.WriteBandwidth) * share)
		ssdCfg.Capacity = units.Bytes(float64(ssdCfg.Capacity) * share)
		cfg.SSD = ssdCfg
		cfg.HostCapacity = units.Bytes(float64(cfg.HostCapacity) / float64(gpus))
		return cfg
	}
	var jobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := s.batchFor(spec)
		for _, gpus := range gpuCounts {
			for _, ssds := range ssdCounts {
				model, batch, gpus, ssds := model, batch, gpus, ssds
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						_, _ = s.Run(model, batch, "G10", fmt.Sprintf("mg=%dx%d", gpus, ssds), shareCfg(a, gpus, ssds), nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)
	var rows []MultiGPURow
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := s.batchFor(spec)
		a, err := s.Analysis(model, batch)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\n%s-%d (rows: GPUs, cols: SSDs %v):\n", model, batch, ssdCounts)
		for _, gpus := range gpuCounts {
			fmt.Fprintf(w, "%4d", gpus)
			for _, ssds := range ssdCounts {
				tag := fmt.Sprintf("mg=%dx%d", gpus, ssds)
				res, err := s.Run(model, batch, "G10", tag, shareCfg(a, gpus, ssds), nil)
				if err != nil {
					return nil, err
				}
				row := MultiGPURow{
					Model: model, GPUs: gpus, SSDs: ssds,
					PerGPUNorm:  res.NormalizedPerf(),
					AggregateEx: float64(gpus) * res.Throughput(),
				}
				rows = append(rows, row)
				fmt.Fprintf(w, " %7.1f%%", 100*row.PerGPUNorm)
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

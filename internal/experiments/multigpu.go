package experiments

import (
	"fmt"

	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// MultiGPURow is one cell of the §6 multi-GPU study, reporting the same
// (GPUs, SSDs) point under two models of sharing:
//
//   - Cosim: true co-simulation — G tenants on one cluster engine, one
//     clock, one flash array (shared FTL and GC), one host memory pool.
//     Tenants contend dynamically: bursty channel interference, GC noise
//     from a neighbour's writes, host-capacity stealing.
//   - Static: the legacy approximation — each GPU simulated alone with a
//     pre-divided S/G share of the array's bandwidth and 1/G of host
//     memory.
//
// The cosim−static delta is the contention dynamics a static split cannot
// capture — the new result of this study.
type MultiGPURow struct {
	Model string
	GPUs  int
	SSDs  int

	CosimPerGPUNorm  float64 // mean per-tenant normalized performance
	CosimAggregateEx float64 // summed tenant examples/sec

	StaticPerGPUNorm  float64
	StaticAggregateEx float64
}

// Delta reports cosim minus static per-GPU normalized performance.
func (r MultiGPURow) Delta() float64 { return r.CosimPerGPUNorm - r.StaticPerGPUNorm }

// multiGPUCounts reports the (GPUs, SSDs) grid under the session's scope.
func (s *Session) multiGPUCounts() ([]int, []int) {
	if s.opt.Short {
		return []int{1, 4}, []int{1, 4}
	}
	return []int{1, 2, 4, 8}, []int{1, 2, 4, 8}
}

// multiGPUShared scales the base array to an s-drive aggregate
// (ssd.Config.Array); host memory is one shared pool — the cluster's
// capacity arbiter hands it out dynamically.
func multiGPUShared(cfg gpu.Config, ssds int) gpu.Config {
	cfg.SSD = cfg.SSD.Array(ssds)
	return cfg
}

// multiGPUStaticCfg is the legacy static-share model: with G GPUs and S
// SSDs each instance sees S/G of the array's bandwidth and capacity and
// 1/G of host memory.
func multiGPUStaticCfg(cfg gpu.Config, gpus, ssds int) gpu.Config {
	share := float64(ssds) / float64(gpus)
	cfg.SSD.ReadBandwidth = units.Bandwidth(float64(cfg.SSD.ReadBandwidth) * share)
	cfg.SSD.WriteBandwidth = units.Bandwidth(float64(cfg.SSD.WriteBandwidth) * share)
	cfg.SSD.Capacity = units.Bytes(float64(cfg.SSD.Capacity) * share)
	cfg.HostCapacity = units.Bytes(float64(cfg.HostCapacity) / float64(gpus))
	return cfg
}

// multiGPUClusterParams assembles the G-tenant co-simulation of one cell.
func (s *Session) multiGPUClusterParams(a *vitality.Analysis, gpus, ssds int) (gpu.ClusterParams, error) {
	base := s.baseConfig(a)
	tenants := make([]gpu.ClusterTenant, gpus)
	for i := range tenants {
		pol, err := s.clusterPolicy("G10")
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		tenants[i] = gpu.ClusterTenant{Analysis: a, Policy: pol, Config: base}
	}
	return gpu.ClusterParams{Tenants: tenants, Shared: multiGPUShared(base, ssds)}, nil
}

// multiGPUCell runs (or returns the cached) co-simulation for one cell.
func (s *Session) multiGPUCell(model string, batch, gpus, ssds int) (gpu.ClusterResult, error) {
	key := fmt.Sprintf("mg-cosim/%s/%d/%dx%d", model, batch, gpus, ssds)
	return s.RunCluster(key, func() (gpu.ClusterParams, error) {
		a, err := s.Analysis(model, batch)
		if err != nil {
			return gpu.ClusterParams{}, err
		}
		return s.multiGPUClusterParams(a, gpus, ssds)
	})
}

// MultiGPU implements the paper's §6 extension sketch — multiple GPUs, each
// running its own G10 instance, sharing one flash array — as a true
// co-simulation on the cluster engine, with the legacy static-share numbers
// kept as the comparison column. The sweep reports per-GPU normalized
// performance and aggregate throughput as GPUs and SSDs scale.
func MultiGPU(s *Session) ([]MultiGPURow, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== §6 extension: multi-GPU sharing an SSD array (G10, per-GPU % of ideal) ===")
	fmt.Fprintln(w, "cosim: true shared-device co-simulation; static: legacy pre-divided bandwidth")
	gpuCounts, ssdCounts := s.multiGPUCounts()

	var jobs []func()
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := s.batchFor(spec)
		for _, gpus := range gpuCounts {
			for _, ssds := range ssdCounts {
				model, gpus, ssds := model, gpus, ssds
				jobs = append(jobs, func() {
					_, _ = s.multiGPUCell(model, batch, gpus, ssds)
				})
				jobs = append(jobs, func() {
					if a, err := s.Analysis(model, batch); err == nil {
						tag := fmt.Sprintf("mg=%dx%d", gpus, ssds)
						_, _ = s.Run(model, batch, "G10", tag, multiGPUStaticCfg(s.baseConfig(a), gpus, ssds), nil)
					}
				})
			}
		}
	}
	s.prewarm(jobs)

	var rows []MultiGPURow
	for _, model := range s.opt.modelSet() {
		spec, err := models.ByName(model)
		if err != nil {
			return nil, err
		}
		batch := s.batchFor(spec)
		a, err := s.Analysis(model, batch)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\n%s-%d (rows: GPUs, cols: SSDs %v; cosim%% / static%%):\n", model, batch, ssdCounts)
		for _, gpus := range gpuCounts {
			fmt.Fprintf(w, "%4d", gpus)
			for _, ssds := range ssdCounts {
				cres, err := s.multiGPUCell(model, batch, gpus, ssds)
				if err != nil {
					return nil, err
				}
				var norm, aggr float64
				for _, tr := range cres.Tenants {
					norm += tr.NormalizedPerf()
					aggr += tr.Throughput()
				}
				norm /= float64(len(cres.Tenants))

				tag := fmt.Sprintf("mg=%dx%d", gpus, ssds)
				static, err := s.Run(model, batch, "G10", tag, multiGPUStaticCfg(s.baseConfig(a), gpus, ssds), nil)
				if err != nil {
					return nil, err
				}
				row := MultiGPURow{
					Model: model, GPUs: gpus, SSDs: ssds,
					CosimPerGPUNorm:   norm,
					CosimAggregateEx:  aggr,
					StaticPerGPUNorm:  static.NormalizedPerf(),
					StaticAggregateEx: float64(gpus) * static.Throughput(),
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "  %5.1f/%5.1f", 100*row.CosimPerGPUNorm, 100*row.StaticPerGPUNorm)
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

package experiments

import (
	"fmt"

	"g10sim/internal/units"
)

// characterizationModels are Fig. 2–4's (model, batch) pairs.
var characterizationModels = []struct {
	Model string
	Batch int
}{
	{"BERT", 128},
	{"ViT", 512},
	{"ResNet152", 512},
	{"Inceptionv3", 512},
}

func (s *Session) characterizationBatch(model string, batch int) int {
	if s.opt.Short {
		return shortBatch[model]
	}
	return batch
}

// prewarmCharacterization builds the Fig. 2–4 analyses across the worker
// pool; the figures then read them from the cache.
func (s *Session) prewarmCharacterization() {
	var jobs []func()
	for _, cm := range characterizationModels {
		cm := cm
		jobs = append(jobs, func() {
			_, _ = s.Analysis(cm.Model, s.characterizationBatch(cm.Model, cm.Batch))
		})
	}
	s.prewarm(jobs)
}

// Fig2Row is one sampled point of the memory-consumption curves.
type Fig2Row struct {
	Model       string
	KernelIndex int
	AllPct      float64 // alive bytes / peak alive, percent
	ActivePct   float64 // active bytes / peak alive, percent
}

// Figure2 reproduces the memory consumption of all vs active tensors
// (w.r.t. peak consumption) over kernel index.
func Figure2(s *Session) ([]Fig2Row, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 2: memory consumption of all and active tensors (% of peak) ===")
	s.prewarmCharacterization()
	var rows []Fig2Row
	for _, cm := range characterizationModels {
		batch := s.characterizationBatch(cm.Model, cm.Batch)
		a, err := s.Analysis(cm.Model, batch)
		if err != nil {
			return nil, err
		}
		peak := float64(a.PeakAlive())
		n := len(a.AliveBytes)
		step := n / 16
		if step == 0 {
			step = 1
		}
		fmt.Fprintf(w, "\n%s-%d (%d kernels, peak %v):\n  kernel     all%%   active%%\n", cm.Model, batch, n, a.PeakAlive())
		for k := 0; k < n; k += step {
			row := Fig2Row{
				Model:       cm.Model,
				KernelIndex: k,
				AllPct:      100 * float64(a.AliveBytes[k]) / peak,
				ActivePct:   100 * float64(a.ActiveBytes[k]) / peak,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "  %6d  %6.1f%%  %7.2f%%\n", k, row.AllPct, row.ActivePct)
		}
	}
	return rows, nil
}

// Fig3Row summarises one model's inactive-period length distribution.
type Fig3Row struct {
	Model   string
	Periods int
	// Percentile durations in microseconds at 10%..90%.
	P10, P50, P90 float64
	// FracAbove1ms/FracAbove100ms echo the paper's observation O2.
	FracAbove1ms   float64
	FracAbove100ms float64
}

// Figure3 reproduces the distribution of tensor inactive-period lengths.
func Figure3(s *Session) ([]Fig3Row, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 3: inactive period length distribution (µs) ===")
	s.prewarmCharacterization()
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s %8s %8s\n", "model", "periods", "p10", "p50", "p90", ">1ms", ">100ms")
	var rows []Fig3Row
	for _, cm := range characterizationModels {
		batch := s.characterizationBatch(cm.Model, cm.Batch)
		a, err := s.Analysis(cm.Model, batch)
		if err != nil {
			return nil, err
		}
		var durs []float64
		var over1ms, over100ms int
		for i := range a.Periods {
			d := a.Periods[i].Duration()
			durs = append(durs, d.Micros())
			if d > units.Millisecond {
				over1ms++
			}
			if d > 100*units.Millisecond {
				over100ms++
			}
		}
		sorted := sortedCopy(durs)
		row := Fig3Row{
			Model:          cm.Model,
			Periods:        len(durs),
			P10:            percentile(sorted, 0.10),
			P50:            percentile(sorted, 0.50),
			P90:            percentile(sorted, 0.90),
			FracAbove1ms:   frac(over1ms, len(durs)),
			FracAbove100ms: frac(over100ms, len(durs)),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-14s %8d %10.1f %10.1f %10.1f %7.1f%% %7.1f%%\n",
			fmt.Sprintf("%s-%d", cm.Model, batch), row.Periods, row.P10, row.P50, row.P90,
			100*row.FracAbove1ms, 100*row.FracAbove100ms)
	}
	return rows, nil
}

// Fig4Row is one (size bucket × duration) summary of the scatter plot.
type Fig4Row struct {
	Model       string
	SizeBucket  string
	Periods     int
	MedianMicro float64
}

// Figure4 reproduces the joint distribution of inactive period length and
// tensor size, bucketed by size decade.
func Figure4(s *Session) ([]Fig4Row, error) {
	w := s.opt.writer()
	fmt.Fprintln(w, "=== Figure 4: inactive periods by tensor size (median µs per size decade) ===")
	s.prewarmCharacterization()
	var rows []Fig4Row
	for _, cm := range characterizationModels {
		batch := s.characterizationBatch(cm.Model, cm.Batch)
		a, err := s.Analysis(cm.Model, batch)
		if err != nil {
			return nil, err
		}
		buckets := map[int][]float64{}
		for i := range a.Periods {
			p := &a.Periods[i]
			decade := 0
			for sz := p.Tensor.Size; sz >= 10; sz /= 10 {
				decade++
			}
			buckets[decade] = append(buckets[decade], p.Duration().Micros())
		}
		var decades []int
		for d := range buckets {
			decades = append(decades, d)
		}
		sortInts(decades)
		fmt.Fprintf(w, "\n%s-%d:\n", cm.Model, batch)
		for _, d := range decades {
			sorted := sortedCopy(buckets[d])
			row := Fig4Row{
				Model:       cm.Model,
				SizeBucket:  fmt.Sprintf("1e%d-1e%dB", d, d+1),
				Periods:     len(sorted),
				MedianMicro: percentile(sorted, 0.5),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "  size %-12s: %5d periods, median %12.1f µs\n", row.SizeBucket, row.Periods, row.MedianMicro)
		}
	}
	return rows, nil
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden figure snapshots instead of diffing them:
//
//	go test ./internal/experiments/ -run TestGoldenFigures -update
var update = flag.Bool("update", false, "rewrite the golden figure snapshots under testdata/")

// goldenModels fixes the model subset the snapshots are taken with (the
// fleet/adapt studies use their own catalogue regardless).
var goldenModels = []string{"BERT", "ResNet152"}

// goldenFigures is every figure the harness pins, in g10bench order: the §3
// characterisation, the §7 evaluation, the SSD-lifetime analysis, and the
// cluster-engine studies. Each runs in short mode against one shared
// session, so the pass costs one simulation per distinct cell.
var goldenFigures = []struct {
	name string
	run  func(*Session) error
}{
	{"2", discard(Figure2)},
	{"3", discard(Figure3)},
	{"4", discard(Figure4)},
	{"11", discard(Figure11)},
	{"12", discard(Figure12)},
	{"13", discard(Figure13)},
	{"14", discard(Figure14)},
	{"15", discard(Figure15)},
	{"16", discard(Figure16)},
	{"17", discard(Figure17)},
	{"18", discard(Figure18)},
	{"19", discard(Figure19)},
	{"lifetime", discard(SSDLifetime)},
	{"multigpu", discard(MultiGPU)},
	{"colocate", discard(Colocate)},
	{"fleet", discard(Fleet)},
	{"adapt", discard(Adapt)},
	{"scaling", discard(Scaling)},
	{"maxminfill", discard(MaxMinFill)},
	{"inference", discard(Inference)},
	{"faults", discard(Faults)},
}

func discard[T any](f func(*Session) ([]T, error)) func(*Session) error {
	return func(s *Session) error {
		_, err := f(s)
		return err
	}
}

// switchWriter lets one session's figures print into per-figure buffers.
type switchWriter struct{ w io.Writer }

func (s *switchWriter) Write(p []byte) (int, error) {
	if s.w == nil {
		return len(p), nil
	}
	return s.w.Write(p)
}

// TestGoldenFigures diffs every figure's printed output against its
// testdata/*.golden snapshot, byte for byte. The snapshots pin the numbers
// themselves — a refactor that drifts any figure's results fails here even
// if every shape property still holds. Regenerate intentionally with
// -update and review the diff like code.
func TestGoldenFigures(t *testing.T) {
	sw := &switchWriter{}
	s := NewSession(Options{Short: true, Models: goldenModels, W: sw})
	for _, fig := range goldenFigures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			var buf bytes.Buffer
			sw.w = &buf
			defer func() { sw.w = nil }()
			if err := fig.run(s); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "figure-"+fig.name+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing snapshot (regenerate with -update): %v", err)
			}
			if got := buf.Bytes(); !bytes.Equal(got, want) {
				t.Errorf("figure %s drifted from its golden snapshot%s", fig.name, goldenDiff(want, got))
			}
		})
	}
}

// goldenDiff renders the first divergent lines of a golden mismatch.
func goldenDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf(" at line %d:\n  golden:  %s\n  current: %s", i+1, w, g)
		}
	}
	return fmt.Sprintf(": lengths differ (golden %d bytes, current %d)", len(want), len(got))
}

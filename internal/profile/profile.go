// Package profile substitutes for the paper's offline A100 kernel profiling
// (§4.2: "G10 performs offline compile-time profiling, and uses the
// execution times of the GPU kernels to estimate the lengths of the inactive
// time periods").
//
// Kernel durations come from a roofline model — a kernel takes
// max(FLOPs/peak-compute, bytes/peak-bandwidth)/efficiency plus a fixed
// launch overhead — multiplied by a per-model TimeScale calibrated so the
// Ideal (infinite-memory) iteration time matches the Ideal throughput the
// paper reports in Fig. 15. The calibration is what preserves the paper's
// compute-vs-PCIe-bandwidth balance; see DESIGN.md §1.
//
// Perturb implements the profiling-error injection of Fig. 19.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

// Config models the GPU the kernels are profiled on.
type Config struct {
	// PeakFLOPS is the peak FP32 compute rate (A100: 19.5 TFLOP/s).
	PeakFLOPS float64
	// MemBandwidth is the on-board memory bandwidth (A100 40GB: ~1.55 TB/s).
	MemBandwidth units.Bandwidth
	// Efficiency is the fraction of the roofline real kernels achieve.
	Efficiency float64
	// LaunchOverhead is the fixed per-kernel launch/dispatch cost.
	LaunchOverhead units.Duration
	// TimeScale is the per-model calibration multiplier (models.Spec).
	TimeScale float64
}

// A100 returns the default configuration for the paper's testbed GPU
// (Table 2) with the given per-model time scale.
func A100(timeScale float64) Config {
	return Config{
		PeakFLOPS:      19.5e12,
		MemBandwidth:   units.GBps(1555),
		Efficiency:     0.45,
		LaunchOverhead: 4 * units.Microsecond,
		TimeScale:      timeScale,
	}
}

func (c Config) withDefaults() Config {
	if c.PeakFLOPS <= 0 {
		c.PeakFLOPS = 19.5e12
	}
	if c.MemBandwidth <= 0 {
		c.MemBandwidth = units.GBps(1555)
	}
	if c.Efficiency <= 0 {
		c.Efficiency = 0.45
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	return c
}

// KernelTime reports the modeled duration of one kernel.
func (c Config) KernelTime(k *dnn.Kernel) units.Duration {
	c = c.withDefaults()
	compute := k.FLOPs / c.PeakFLOPS
	memory := float64(k.MemBytes) / float64(c.MemBandwidth)
	bound := compute
	if memory > bound {
		bound = memory
	}
	secs := bound / c.Efficiency
	d := units.Duration(secs*float64(units.Second)) + c.LaunchOverhead
	d = units.Duration(float64(d) * c.TimeScale)
	if d < 1 {
		d = 1
	}
	return d
}

// Trace holds the profiled duration of every kernel of a graph, in
// execution order. It is the second input (besides the graph) to the tensor
// vitality analyzer.
type Trace struct {
	Model     string           `json:"model"`
	Batch     int              `json:"batch"`
	Durations []units.Duration `json:"durations_ns"`
}

// Profile runs the timing model over a graph.
func Profile(g *dnn.Graph, cfg Config) *Trace {
	t := &Trace{
		Model:     g.Name,
		Batch:     g.Batch,
		Durations: make([]units.Duration, len(g.Kernels)),
	}
	for i, k := range g.Kernels {
		t.Durations[i] = cfg.KernelTime(k)
	}
	return t
}

// Total reports the iteration time with no memory stalls — the Ideal
// baseline's execution time.
func (t *Trace) Total() units.Duration {
	var sum units.Duration
	for _, d := range t.Durations {
		sum += d
	}
	return sum
}

// StartTimes reports each kernel's start time on the ideal timeline
// (prefix sums of durations), plus a final entry equal to Total.
func (t *Trace) StartTimes() []units.Time {
	starts := make([]units.Time, len(t.Durations)+1)
	var acc units.Time
	for i, d := range t.Durations {
		starts[i] = acc
		acc += d
	}
	starts[len(t.Durations)] = acc
	return starts
}

// Perturb returns a copy with each duration scaled by a uniform random
// factor in [1-maxFrac, 1+maxFrac] — the Fig. 19 profiling-error experiment.
// The receiver is unmodified.
func (t *Trace) Perturb(maxFrac float64, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{Model: t.Model, Batch: t.Batch, Durations: make([]units.Duration, len(t.Durations))}
	for i, d := range t.Durations {
		f := 1 + maxFrac*(2*rng.Float64()-1)
		nd := units.Duration(float64(d) * f)
		if nd < 1 {
			nd = 1
		}
		out.Durations[i] = nd
	}
	return out
}

// Save writes the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Load reads a JSON trace and validates it against the graph it will be
// replayed with (nil graph skips the check).
func Load(r io.Reader, g *dnn.Graph) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: load: %w", err)
	}
	if g != nil {
		if len(t.Durations) != len(g.Kernels) {
			return nil, fmt.Errorf("profile: trace has %d kernels, graph %q has %d",
				len(t.Durations), g.Name, len(g.Kernels))
		}
	}
	var total units.Duration
	for i, d := range t.Durations {
		if d <= 0 {
			return nil, fmt.Errorf("profile: kernel %d has non-positive duration %d", i, d)
		}
		total += d
		if total < 0 {
			return nil, fmt.Errorf("profile: trace total overflows at kernel %d", i)
		}
	}
	return &t, nil
}

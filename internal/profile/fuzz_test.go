package profile

import (
	"bytes"
	"strings"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

// fuzzGraph is a tiny two-kernel graph the loader validates traces against.
func fuzzGraph(tb testing.TB) *dnn.Graph {
	tb.Helper()
	b := dnn.NewBuilder("fuzz", 1)
	x := b.Tensor("x", dnn.Intermediate, units.MB)
	y := b.Tensor("y", dnn.Intermediate, units.MB)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{x}, []*dnn.Tensor{y})
	b.Kernel("k1", dnn.Backward, 1, []*dnn.Tensor{y}, []*dnn.Tensor{x})
	return b.MustBuild()
}

// FuzzTraceLoad fuzzes the kernel-trace JSON loader behind `g10trace
// -load`: whatever the bytes, Load must return a trace satisfying its
// documented invariants or an error — never panic, and never accept a
// trace that would later break the replay (non-positive durations, kernel
// count mismatch). The seed corpus includes genuine `-save` output so the
// mutator starts from the real wire format.
func FuzzTraceLoad(f *testing.F) {
	g := fuzzGraph(f)

	// Seeds: a genuine Save round trip, plus edge shapes.
	var saved bytes.Buffer
	tr := Profile(g, A100(100))
	if err := tr.Save(&saved); err != nil {
		f.Fatal(err)
	}
	f.Add(saved.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"model":"m","batch":1,"durations_ns":[1,2]}`))
	f.Add([]byte(`{"durations_ns":[0]}`))
	f.Add([]byte(`{"durations_ns":[-5,3]}`))
	f.Add([]byte(`{"durations_ns":[9223372036854775807,1]}`))
	f.Add([]byte(`{"model":` + strings.Repeat("[", 64) + strings.Repeat("]", 64) + `}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Unvalidated load (nil graph): must still enforce duration
		// positivity and never panic.
		tr, err := Load(bytes.NewReader(data), nil)
		if err == nil {
			for i, d := range tr.Durations {
				if d <= 0 {
					t.Fatalf("Load accepted non-positive duration %v at %d", d, i)
				}
			}
			if tr.Total() < 0 {
				t.Fatalf("accepted trace has negative total %v", tr.Total())
			}
			// A loadable trace must survive a Save/Load round trip.
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatalf("accepted trace failed to save: %v", err)
			}
			rt, err := Load(&buf, nil)
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if len(rt.Durations) != len(tr.Durations) {
				t.Fatalf("round trip changed kernel count: %d -> %d", len(tr.Durations), len(rt.Durations))
			}
		}

		// Graph-validated load: anything accepted must match the graph.
		tr, err = Load(bytes.NewReader(data), g)
		if err == nil && len(tr.Durations) != len(g.Kernels) {
			t.Fatalf("validated Load accepted %d durations for a %d-kernel graph",
				len(tr.Durations), len(g.Kernels))
		}
	})
}

package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"g10sim/internal/dnn"
	"g10sim/internal/models"
	"g10sim/internal/units"
)

func testConfig() Config { return A100(1) }

func TestKernelTimeComputeBound(t *testing.T) {
	cfg := Config{PeakFLOPS: 1e12, MemBandwidth: units.GBps(1000), Efficiency: 1, TimeScale: 1}
	k := &dnn.Kernel{FLOPs: 1e12, MemBytes: units.KB}
	// 1e12 FLOPs at 1e12 FLOP/s = 1s.
	got := cfg.KernelTime(k)
	if got < units.Second || got > units.Second+units.Millisecond {
		t.Errorf("compute-bound time = %v, want ~1s", got)
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	cfg := Config{PeakFLOPS: 1e15, MemBandwidth: units.GBps(1), Efficiency: 1, TimeScale: 1}
	k := &dnn.Kernel{FLOPs: 1, MemBytes: units.GB}
	got := cfg.KernelTime(k)
	if got < units.Second || got > units.Second+units.Millisecond {
		t.Errorf("memory-bound time = %v, want ~1s", got)
	}
}

func TestEfficiencyScalesTime(t *testing.T) {
	k := &dnn.Kernel{FLOPs: 1e12, MemBytes: units.KB}
	full := Config{PeakFLOPS: 1e12, MemBandwidth: units.GBps(1000), Efficiency: 1}.KernelTime(k)
	half := Config{PeakFLOPS: 1e12, MemBandwidth: units.GBps(1000), Efficiency: 0.5}.KernelTime(k)
	ratio := float64(half) / float64(full)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("efficiency 0.5 gave ratio %v, want 2", ratio)
	}
}

func TestTimeScaleMultiplies(t *testing.T) {
	k := &dnn.Kernel{FLOPs: 1e12, MemBytes: units.KB}
	base := Config{PeakFLOPS: 1e12, MemBandwidth: units.GBps(1000), Efficiency: 1, TimeScale: 1}.KernelTime(k)
	tripled := Config{PeakFLOPS: 1e12, MemBandwidth: units.GBps(1000), Efficiency: 1, TimeScale: 3}.KernelTime(k)
	ratio := float64(tripled) / float64(base)
	if ratio < 2.99 || ratio > 3.01 {
		t.Errorf("TimeScale 3 gave ratio %v", ratio)
	}
}

func TestProfileAndTotals(t *testing.T) {
	g := models.TinyMLP(8)
	tr := Profile(g, testConfig())
	if len(tr.Durations) != len(g.Kernels) {
		t.Fatalf("durations = %d, kernels = %d", len(tr.Durations), len(g.Kernels))
	}
	var sum units.Duration
	for _, d := range tr.Durations {
		if d <= 0 {
			t.Fatal("non-positive duration")
		}
		sum += d
	}
	if tr.Total() != sum {
		t.Errorf("Total = %v, want %v", tr.Total(), sum)
	}
}

func TestStartTimes(t *testing.T) {
	tr := &Trace{Durations: []units.Duration{10, 20, 30}}
	starts := tr.StartTimes()
	want := []units.Time{0, 10, 30, 60}
	if len(starts) != len(want) {
		t.Fatalf("len = %d", len(starts))
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("starts[%d] = %v, want %v", i, starts[i], want[i])
		}
	}
}

func TestPerturbBounds(t *testing.T) {
	g := models.TinyCNN(4)
	tr := Profile(g, testConfig())
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		p := tr.Perturb(frac, 7)
		if len(p.Durations) != len(tr.Durations) {
			t.Fatal("length changed")
		}
		for i := range p.Durations {
			lo := float64(tr.Durations[i]) * (1 - frac - 1e-9)
			hi := float64(tr.Durations[i]) * (1 + frac + 1e-9)
			got := float64(p.Durations[i])
			if got < lo || got > hi {
				t.Fatalf("perturbed duration %v outside [%v, %v]", got, lo, hi)
			}
		}
	}
}

func TestPerturbDeterministicPerSeed(t *testing.T) {
	tr := &Trace{Durations: []units.Duration{1000, 2000, 3000}}
	a := tr.Perturb(0.2, 42)
	b := tr.Perturb(0.2, 42)
	c := tr.Perturb(0.2, 43)
	same, diff := true, false
	for i := range a.Durations {
		if a.Durations[i] != b.Durations[i] {
			same = false
		}
		if a.Durations[i] != c.Durations[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different traces")
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestPerturbZeroIsIdentityModuloRounding(t *testing.T) {
	tr := &Trace{Durations: []units.Duration{1000, 2000}}
	p := tr.Perturb(0, 1)
	for i := range p.Durations {
		if p.Durations[i] != tr.Durations[i] {
			t.Errorf("Perturb(0) changed duration %d", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := models.TinyMLP(4)
	tr := Profile(g, testConfig())
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != tr.Model || got.Batch != tr.Batch {
		t.Errorf("metadata mismatch: %+v", got)
	}
	for i := range got.Durations {
		if got.Durations[i] != tr.Durations[i] {
			t.Fatalf("duration %d mismatch", i)
		}
	}
}

func TestLoadRejectsMismatchedGraph(t *testing.T) {
	g := models.TinyMLP(4)
	tr := Profile(g, testConfig())
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := models.TinyCNN(4)
	if _, err := Load(&buf, other); err == nil || !strings.Contains(err.Error(), "kernels") {
		t.Errorf("expected kernel-count error, got %v", err)
	}
}

func TestLoadRejectsBadDurations(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"model":"x","batch":1,"durations_ns":[0]}`), nil); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := Load(strings.NewReader(`not json`), nil); err == nil {
		t.Error("expected error for bad JSON")
	}
}

// Property: perturbed totals stay within the global bound.
func TestPerturbTotalProperty(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		tr := &Trace{Durations: make([]units.Duration, len(raw))}
		for i, r := range raw {
			tr.Durations[i] = units.Duration(r) + 1
		}
		p := tr.Perturb(0.15, seed)
		lo := float64(tr.Total()) * (1 - 0.15 - 1e-6)
		hi := float64(tr.Total())*(1+0.15+1e-6) + float64(len(raw)) // rounding slack
		tot := float64(p.Total())
		return tot >= lo-float64(len(raw)) && tot <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

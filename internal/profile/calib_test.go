package profile

import (
	"testing"

	"g10sim/internal/models"
)

// TestTimeScaleCalibration verifies that, with each model's calibrated
// TimeScale, the Ideal (infinite-memory) iteration time reproduces the Ideal
// throughput the paper reports in Fig. 15 within 2%.
func TestTimeScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-batch model construction in -short mode")
	}
	for _, spec := range models.Catalog() {
		g := spec.Build(spec.PaperBatch)
		tr := Profile(g, A100(spec.TimeScale))
		gotRate := float64(spec.PaperBatch) / tr.Total().Seconds()
		dev := (gotRate - spec.PaperIdealRate) / spec.PaperIdealRate
		t.Logf("%-12s ideal rate %7.2f/s, paper %7.2f/s (dev %+.1f%%)",
			spec.Name, gotRate, spec.PaperIdealRate, 100*dev)
		if dev < -0.02 || dev > 0.02 {
			t.Errorf("%s ideal rate %v off paper's %v by more than 2%%", spec.Name, gotRate, spec.PaperIdealRate)
		}
	}
}

package planner

import (
	"g10sim/internal/units"
)

// channel is the planner's fluid model of one migration channel's bandwidth
// over the estimated iteration timeline (Algorithm 1's "I/O bandwidth
// utilization" state). Time is bucketed by kernel slots; each slot holds a
// budget of transferable seconds that bookings consume. Bookings placed
// where the channel is busy spill into later slots — modeling queueing —
// and the timeline wraps cyclically so that a global tensor's iteration-
// crossing migration lands in the next iteration's early slots.
type channel struct {
	name   string
	starts []units.Time // kernel boundaries; starts[n] = iteration total
	free   []float64    // free seconds remaining per slot
	span   []float64    // slot lengths in seconds
	bw     float64      // bytes/sec
	total  units.Time
	// scratch holds the pending draws of one schedule call; reused across
	// calls to keep the (very frequent) previews allocation-free.
	scratch []draw
}

// draw is one slot's share of a booking being placed.
type draw struct {
	slot int
	amt  float64
}

func newChannel(name string, starts []units.Time, bw units.Bandwidth) *channel {
	n := len(starts) - 1
	c := &channel{
		name:   name,
		starts: starts,
		free:   make([]float64, n),
		span:   make([]float64, n),
		bw:     float64(bw),
		total:  starts[n],
	}
	for k := 0; k < n; k++ {
		c.span[k] = (starts[k+1] - starts[k]).Seconds()
		c.free[k] = c.span[k]
	}
	return c
}

func (c *channel) slots() int { return len(c.free) }

// slotOf locates the kernel slot containing time t (clamped).
func (c *channel) slotOf(t units.Time) int {
	n := c.slots()
	if t <= 0 {
		return 0
	}
	if t >= c.total {
		return n - 1
	}
	// Binary search: last k with starts[k] <= t.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.starts[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// freeAfter reports the free seconds of slot k past time t, assuming the
// slot's busy time is spread uniformly.
func (c *channel) freeAfter(k int, t units.Time) float64 {
	s, e := c.starts[k], c.starts[k+1]
	if t <= s {
		return c.free[k]
	}
	if t >= e {
		return 0
	}
	frac := float64(e-t) / float64(e-s)
	return c.free[k] * frac
}

// freeBefore is the symmetric helper for backward placement.
func (c *channel) freeBefore(k int, t units.Time) float64 {
	s, e := c.starts[k], c.starts[k+1]
	if t >= e {
		return c.free[k]
	}
	if t <= s {
		return 0
	}
	frac := float64(t-s) / float64(e-s)
	return c.free[k] * frac
}

// scheduleForward books a transfer of n bytes starting no earlier than t,
// consuming free channel time slot by slot (wrapping once past the end of
// the iteration). Returns the completion time — beyond total for wrapped
// bookings — and false if the channel cannot absorb the transfer within one
// extra iteration. commit=false previews without booking.
func (c *channel) scheduleForward(t units.Time, n units.Bytes, commit bool) (units.Time, bool) {
	if c.bw <= 0 {
		return 0, false
	}
	need := float64(n) / c.bw // seconds of channel time
	if need == 0 {
		return t, true
	}
	draws := c.scratch[:0]
	defer func() { c.scratch = draws[:0] }()
	nslots := c.slots()
	k := c.slotOf(t)
	pos := t
	for step := 0; step < 2*nslots; step++ {
		idx := k % nslots
		lap := units.Time(k/nslots) * c.total
		slotEnd := c.starts[idx+1] + lap
		avail := c.freeAfter(idx, pos-lap)
		if avail >= need {
			// Completion inside this slot: advance proportionally to the
			// remaining free density.
			var done units.Time
			if avail > 0 {
				remFrac := need / avail
				done = pos + units.Time(float64(slotEnd-pos)*remFrac)
			} else {
				done = slotEnd
			}
			draws = append(draws, draw{idx, need})
			if commit {
				for _, d := range draws {
					c.free[d.slot] -= d.amt
					if c.free[d.slot] < 0 {
						c.free[d.slot] = 0
					}
				}
			}
			return done, true
		}
		if avail > 0 {
			draws = append(draws, draw{idx, avail})
			need -= avail
		}
		k++
		pos = slotEnd
	}
	return 0, false
}

// scheduleBackward books a transfer of n bytes finishing no later than
// deadline, walking slots backward (wrapping once below zero for
// iteration-crossing prefetches). Returns the start time — negative times
// denote the previous iteration — and false if it cannot fit. commit=false
// previews.
func (c *channel) scheduleBackward(deadline units.Time, n units.Bytes, commit bool) (units.Time, bool) {
	if c.bw <= 0 {
		return 0, false
	}
	need := float64(n) / c.bw
	if need == 0 {
		return deadline, true
	}
	draws := c.scratch[:0]
	defer func() { c.scratch = draws[:0] }()
	nslots := c.slots()
	pos := deadline
	if pos > c.total {
		pos = c.total
	}
	k := c.slotOf(pos - 1)
	for step := 0; step < 2*nslots; step++ {
		idx := ((k % nslots) + nslots) % nslots
		var lap units.Time
		if k < 0 {
			lap = -c.total
		}
		slotStart := c.starts[idx] + lap
		avail := c.freeBefore(idx, pos-lap)
		if avail >= need {
			var start units.Time
			if avail > 0 {
				remFrac := need / avail
				start = pos - units.Time(float64(pos-slotStart)*remFrac)
			} else {
				start = slotStart
			}
			draws = append(draws, draw{idx, need})
			if commit {
				for _, d := range draws {
					c.free[d.slot] -= d.amt
					if c.free[d.slot] < 0 {
						c.free[d.slot] = 0
					}
				}
			}
			return start, true
		}
		if avail > 0 {
			draws = append(draws, draw{idx, avail})
			need -= avail
		}
		k--
		pos = slotStart
	}
	return 0, false
}

// busyFrac reports the booked fraction of the channel over [t0, t1]
// (clamped to the iteration, wrapping when t1 > total).
func (c *channel) busyFrac(t0, t1 units.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	var window, busy float64
	add := func(a, b units.Time) {
		if b <= a {
			return
		}
		k0, k1 := c.slotOf(a), c.slotOf(b-1)
		for k := k0; k <= k1; k++ {
			s, e := c.starts[k], c.starts[k+1]
			if s < a {
				s = a
			}
			if e > b {
				e = b
			}
			if e <= s {
				continue
			}
			frac := float64(e-s) / float64(c.starts[k+1]-c.starts[k])
			span := (e - s).Seconds()
			window += span
			busy += span - c.free[k]*frac
		}
	}
	if t1 > c.total {
		add(t0, c.total)
		add(0, t1-c.total)
	} else {
		add(t0, t1)
	}
	if window <= 0 {
		return 0
	}
	if busy < 0 {
		busy = 0
	}
	return busy / window
}

package planner

import (
	"math/rand"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// randomLayeredGraph builds a random forward/backward chain whose tensors
// have varied sizes and reuse distances — a fuzz source for Algorithm 1.
func randomLayeredGraph(rng *rand.Rand, layers int) (*dnn.Graph, *profile.Trace) {
	b := dnn.NewBuilder("fuzz", 1)
	prev := b.Tensor("in", dnn.Intermediate, units.Bytes(rng.Intn(8)+1)*units.MB)
	acts := []*dnn.Tensor{prev}
	var durs []units.Duration
	for i := 0; i < layers; i++ {
		out := b.Tensor("a", dnn.Intermediate, units.Bytes(rng.Intn(32)+1)*units.MB)
		ins := []*dnn.Tensor{prev}
		if rng.Intn(3) == 0 && len(acts) > 2 {
			// Random skip connection: an old activation joins in.
			ins = append(ins, acts[rng.Intn(len(acts))])
		}
		if rng.Intn(4) == 0 {
			w := b.Tensor("w", dnn.Global, units.Bytes(rng.Intn(4)+1)*units.MB)
			ins = append(ins, w)
		}
		b.Kernel("f", dnn.Forward, 1e9, ins, []*dnn.Tensor{out})
		durs = append(durs, units.Duration(rng.Intn(9)+2)*units.Millisecond)
		acts = append(acts, out)
		prev = out
	}
	// Backward: touch activations in reverse.
	grad := b.Tensor("g", dnn.Intermediate, 4*units.MB)
	b.Kernel("loss", dnn.Backward, 1e6, []*dnn.Tensor{prev}, []*dnn.Tensor{grad})
	durs = append(durs, 2*units.Millisecond)
	for i := len(acts) - 1; i >= 0; i-- {
		b.Kernel("b", dnn.Backward, 1e9, []*dnn.Tensor{acts[i], grad}, []*dnn.Tensor{grad})
		durs = append(durs, units.Duration(rng.Intn(9)+2)*units.Millisecond)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, &profile.Trace{Durations: durs}
}

// TestPlanInvariantsOnRandomGraphs fuzzes Algorithm 1 and checks the plan
// invariants from DESIGN.md §7 on every sample.
func TestPlanInvariantsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g, tr := randomLayeredGraph(rng, 10+rng.Intn(30))
		a := vitality.MustAnalyze(g, tr)

		cfg := Default()
		// Random capacity between the largest working set and the peak.
		lo := float64(a.PeakActive())
		hi := float64(a.PeakAlive())
		if hi <= lo {
			continue
		}
		cfg.GPUCapacity = units.Bytes(lo + rng.Float64()*(hi-lo))
		cfg.HostCapacity = units.Bytes(rng.Intn(256)) * units.MB
		cfg.UseHost = rng.Intn(2) == 0

		plan := New(a, cfg)
		if err := plan.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The plan never makes pressure worse than the no-migration case.
		if plan.PeakPressure > a.PeakAlive() {
			t.Fatalf("trial %d: planned peak %v above baseline %v", trial, plan.PeakPressure, a.PeakAlive())
		}
		// Residual is consistent with the reported peak.
		wantResidual := units.Bytes(0)
		if plan.PeakPressure > cfg.GPUCapacity {
			wantResidual = plan.PeakPressure - cfg.GPUCapacity
		}
		if plan.ResidualOverflow != wantResidual {
			t.Fatalf("trial %d: residual %v, want %v", trial, plan.ResidualOverflow, wantResidual)
		}
		// Host-disabled plans never target host memory.
		if !cfg.UseHost {
			for _, d := range plan.Decisions {
				if d.Target == uvm.InHost {
					t.Fatalf("trial %d: host eviction with UseHost=false", trial)
				}
			}
		}
		// Traffic bookkeeping adds up.
		var ssd, host units.Bytes
		for _, d := range plan.Decisions {
			if d.Target == uvm.InFlash {
				ssd += d.Period.Tensor.Size
			} else {
				host += d.Period.Tensor.Size
			}
		}
		if ssd != plan.PlannedSSDBytes || host != plan.PlannedHostBytes {
			t.Fatalf("trial %d: traffic bookkeeping mismatch", trial)
		}
	}
}

// TestPlanDeterministic: the scheduler must be a pure function of its
// inputs (same graph, trace, config => identical decisions).
func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, tr := randomLayeredGraph(rng, 24)
	a := vitality.MustAnalyze(g, tr)
	cfg := Default()
	cfg.GPUCapacity = a.PeakActive() + (a.PeakAlive()-a.PeakActive())/3
	cfg.HostCapacity = 64 * units.MB

	p1 := New(a, cfg)
	p2 := New(a, cfg)
	if len(p1.Decisions) != len(p2.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(p1.Decisions), len(p2.Decisions))
	}
	for i := range p1.Decisions {
		d1, d2 := p1.Decisions[i], p2.Decisions[i]
		if d1.Period != d2.Period || d1.Target != d2.Target ||
			d1.EvictBoundary != d2.EvictBoundary || d1.PrefetchBoundary != d2.PrefetchBoundary {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1, d2)
		}
	}
	if p1.PeakPressure != p2.PeakPressure {
		t.Fatalf("peaks differ: %v vs %v", p1.PeakPressure, p2.PeakPressure)
	}
}

// TestMoreCapacityNeverIncreasesDecisions: giving the scheduler more GPU
// memory can only reduce (or keep) the planned migration volume.
func TestMoreCapacityNeverIncreasesDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, tr := randomLayeredGraph(rng, 28)
	a := vitality.MustAnalyze(g, tr)

	var prevTraffic units.Bytes = 1 << 60
	lo, hi := float64(a.PeakActive()), float64(a.PeakAlive())
	for frac := 0.2; frac <= 1.01; frac += 0.2 {
		cfg := Default()
		cfg.GPUCapacity = units.Bytes(lo + frac*(hi-lo))
		cfg.HostCapacity = units.GB
		plan := New(a, cfg)
		traffic := plan.PlannedSSDBytes + plan.PlannedHostBytes
		if traffic > prevTraffic {
			t.Errorf("capacity %.0f%%: planned traffic %v rose from %v",
				100*frac, traffic, prevTraffic)
		}
		prevTraffic = traffic
	}
}

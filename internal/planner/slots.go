package planner

import (
	"math"
	"sort"

	"g10sim/internal/units"
)

// maxTree is an iterative segment tree maintaining range maxima over a
// float64 slice whose elements are updated in place. It lets the scheduler
// answer "is any slot over capacity?" (maxExcess) and "does the tensor fit
// in host memory across this window?" (hostFits) in O(log n) instead of
// scanning every slot, while the underlying per-slot float arithmetic —
// and therefore every rounding decision — stays exactly as before.
type maxTree struct {
	base int
	t    []float64
	src  []float64
}

func newMaxTree(src []float64) *maxTree {
	base := 1
	for base < len(src) {
		base <<= 1
	}
	t := make([]float64, 2*base)
	for i := range t {
		t[i] = math.Inf(-1)
	}
	m := &maxTree{base: base, t: t, src: src}
	copy(t[base:], src)
	for i := base - 1; i >= 1; i-- {
		t[i] = math.Max(t[2*i], t[2*i+1])
	}
	return m
}

// update re-syncs leaves [a, b) from src and their ancestors.
func (m *maxTree) update(a, b int) {
	if b <= a {
		return
	}
	copy(m.t[m.base+a:m.base+b], m.src[a:b])
	lo, hi := (m.base+a)>>1, (m.base+b-1)>>1
	for lo >= 1 {
		for i := lo; i <= hi; i++ {
			m.t[i] = math.Max(m.t[2*i], m.t[2*i+1])
		}
		lo >>= 1
		hi >>= 1
	}
}

// rootMax reports the maximum over all elements.
func (m *maxTree) rootMax() float64 { return m.t[1] }

// queryMax reports the maximum over [a, b); -Inf when empty.
func (m *maxTree) queryMax(a, b int) float64 {
	out := math.Inf(-1)
	lo, hi := a+m.base, b+m.base
	for lo < hi {
		if lo&1 == 1 {
			out = math.Max(out, m.t[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			out = math.Max(out, m.t[hi])
		}
		lo >>= 1
		hi >>= 1
	}
	return out
}

// bitset indexes the kernel slots whose pressure exceeds GPU capacity, so
// the benefit integral (excessArea) visits only contributing slots.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// fullSlotSpan reports the global-slot interval [g0, gEnd) that
// forEachFullSlot(from, to) visits: slot g (lap g/n, kernel g%n) is visited
// iff it starts at or after from and ends at or before to, with the
// timeline wrapping cyclically every iteration.
func (pl *planner) fullSlotSpan(from, to units.Time) (g0, gEnd int64) {
	n := int64(pl.n)
	lap := int64(from / pl.total)
	rem := from - units.Time(lap)*pl.total
	k := int64(sort.Search(pl.n, func(i int) bool { return pl.starts[i] >= rem }))
	g0 = lap*n + k
	if to <= from {
		return g0, g0
	}
	startOf := func(g int64) units.Time {
		return pl.starts[int(g%n)] + units.Time(g/n)*pl.total
	}
	// startOf is nondecreasing in g, so the exit condition of the original
	// per-slot loop is a monotone predicate and the interval end can be
	// binary-searched.
	span := (int64(to/pl.total)+2)*n - g0
	if span < 0 {
		span = 0
	}
	cnt := int64(sort.Search(int(span), func(i int) bool {
		return startOf(g0+int64(i)+1) > to
	}))
	return g0, g0 + cnt
}

// touchedSlotRange reports the local slot interval [k0, kEnd) overlapping
// the (non-wrapped) window [a, b) — the per-subwindow decomposition of
// forEachTouchedSlot.
func (pl *planner) touchedSlotRange(a, b units.Time) (int, int) {
	if b <= a {
		return 0, 0
	}
	n := pl.n
	k0 := sort.Search(n, func(i int) bool { return pl.starts[i+1] > a })
	kEnd := sort.Search(n, func(i int) bool { return pl.starts[i] >= b })
	if kEnd < k0 {
		kEnd = k0
	}
	return k0, kEnd
}

// Package planner implements G10's smart tensor migration scheduler: the
// smart eviction algorithm of §4.3 (Algorithm 1), the eviction-destination
// policy (SSD first, host when the SSD channel saturates), and the smart
// prefetching pass of §4.4 (latest-safe prefetch times, eagerly rescheduled
// earlier while GPU memory allows). Its output is the instrumented program
// of Figure 9: the kernel stream annotated with g10_alloc / g10_free /
// g10_pre_evict / g10_prefetch instructions at kernel boundaries.
//
// The planner works entirely on the estimated timeline (profiled kernel
// durations) and tracks three global states, exactly as §4.3 describes:
// the set of candidate inactive periods, the estimated memory pressure over
// time, and the estimated per-channel bandwidth utilization.
package planner

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"

	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// Config holds the planning-time view of the system (Table 2 defaults).
type Config struct {
	GPUCapacity  units.Bytes
	HostCapacity units.Bytes
	// UseHost enables host memory as an eviction destination; disabled for
	// the G10-GDS ablation.
	UseHost bool
	// UseSSD enables the SSD as an eviction destination.
	UseSSD bool

	SSDWriteBW  units.Bandwidth
	SSDReadBW   units.Bandwidth
	HostWriteBW units.Bandwidth // GPU -> host (PCIe-bound)
	HostReadBW  units.Bandwidth // host -> GPU (PCIe-bound)

	// SSDFullThreshold is the busy fraction above which the to-SSD channel
	// counts as "full" in Algorithm 1's destination choice.
	SSDFullThreshold float64
	// MaxDecisions bounds the eviction search (safety valve).
	MaxDecisions int
}

// Default returns the paper's system configuration: 40 GB GPU, 128 GB host,
// Z-NAND SSD bandwidths, PCIe 3.0 ×16 host link.
func Default() Config {
	return Config{
		GPUCapacity:      40 * units.GB,
		HostCapacity:     128 * units.GB,
		UseHost:          true,
		UseSSD:           true,
		SSDWriteBW:       units.GBps(3.0),
		SSDReadBW:        units.GBps(3.2),
		HostWriteBW:      units.GBps(15.754),
		HostReadBW:       units.GBps(15.754),
		SSDFullThreshold: 0.85,
		MaxDecisions:     200000,
	}
}

func (c Config) withDefaults() Config {
	if c.SSDFullThreshold <= 0 {
		c.SSDFullThreshold = 0.85
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = 200000
	}
	if !c.UseSSD && !c.UseHost {
		c.UseSSD = true
	}
	return c
}

// Decision is one scheduled eviction/prefetch pair for one inactive period.
type Decision struct {
	Period *vitality.Period
	Target uvm.Location // InFlash or InHost
	// EvictBoundary: the g10_pre_evict instruction is instrumented before
	// kernel EvictBoundary (right after the period's last-use kernel).
	EvictBoundary int
	// PrefetchBoundary: the g10_prefetch instruction is instrumented
	// before kernel PrefetchBoundary.
	PrefetchBoundary int
	// Estimated times on the planning timeline.
	EvictStart    units.Time
	EvictDone     units.Time
	PrefetchStart units.Time
	Deadline      units.Time
}

// Plan is the scheduler's output.
type Plan struct {
	Analysis  *vitality.Analysis
	Config    Config
	Decisions []Decision
	Program   *Program
	// PeakPressure is the planned maximum GPU memory pressure.
	PeakPressure units.Bytes
	// ResidualOverflow is how far the planned pressure still exceeds the
	// GPU capacity (0 when the plan fully fits; the runtime pays faults
	// for any residual).
	ResidualOverflow units.Bytes
	// PlannedSSDBytes / PlannedHostBytes are the eviction volumes by
	// destination (one direction; prefetch doubles them).
	PlannedSSDBytes  units.Bytes
	PlannedHostBytes units.Bytes
}

// planner carries Algorithm 1's three global states.
type planner struct {
	a   *vitality.Analysis
	cfg Config

	n        int
	starts   []units.Time
	total    units.Time
	pressure []float64 // bytes per kernel slot
	hostUsed []float64 // bytes per kernel slot

	// Derived indexes over the eviction-phase state (see DESIGN.md §4):
	// slotSec caches slot durations in seconds; excess marks slots whose
	// pressure exceeds GPU capacity (the only slots that contribute to a
	// candidate's benefit integral); presTree/hostTree maintain range
	// maxima over pressure and hostUsed.
	slotSec  []float64
	excess   bitset
	presTree *maxTree
	hostTree *maxTree

	ssdWrite, ssdRead   *channel
	hostWrite, hostRead *channel

	decisions []Decision
	// prefetchSlots records each decision's final global prefetch slot from
	// the eager-rescheduling walk (parallel to decisions); the online
	// re-timing layer anchors on it.
	prefetchSlots []int

	// areaCache memoizes excessArea by its full argument tuple between
	// pressure mutations: the lazy-greedy heap re-evaluates many candidates
	// whose free window and size are unchanged since the last commit, and
	// each repeat is the identical integral (same slots, same order, same
	// floats) — a hit returns the previously accumulated value, so plans
	// cannot change. Every writer of pressure/excess flushes it.
	areaCache map[areaKey]float64
}

// areaKey identifies one excessArea query within a planning pass.
type areaKey struct {
	from, to units.Time
	size     float64
}

// New runs the full scheduling pipeline and returns the plan.
func New(a *vitality.Analysis, cfg Config) *Plan {
	cfg = cfg.withDefaults()
	n := len(a.Graph.Kernels)
	pl := &planner{
		a:        a,
		cfg:      cfg,
		n:        n,
		starts:   a.Starts,
		total:    a.Starts[n],
		pressure: make([]float64, n),
		hostUsed: make([]float64, n),
	}
	for k := 0; k < n; k++ {
		pl.pressure[k] = float64(a.AliveBytes[k])
	}
	pl.slotSec = make([]float64, n)
	for k := 0; k < n; k++ {
		pl.slotSec[k] = (pl.starts[k+1] - pl.starts[k]).Seconds()
	}
	capBytes := float64(cfg.GPUCapacity)
	pl.excess = newBitset(n)
	for k := 0; k < n; k++ {
		if pl.pressure[k]-capBytes > 0 {
			pl.excess.set(k)
		}
	}
	pl.presTree = newMaxTree(pl.pressure)
	pl.hostTree = newMaxTree(pl.hostUsed)
	pl.ssdWrite = newChannel("ssd-write", a.Starts, cfg.SSDWriteBW)
	pl.ssdRead = newChannel("ssd-read", a.Starts, cfg.SSDReadBW)
	pl.hostWrite = newChannel("host-write", a.Starts, cfg.HostWriteBW)
	pl.hostRead = newChannel("host-read", a.Starts, cfg.HostReadBW)

	pl.scheduleEvictions()
	pl.schedulePrefetches()

	plan := &Plan{
		Analysis:  a,
		Config:    cfg,
		Decisions: pl.decisions,
	}
	for k := 0; k < n; k++ {
		b := units.Bytes(pl.pressure[k])
		if b > plan.PeakPressure {
			plan.PeakPressure = b
		}
	}
	if plan.PeakPressure > cfg.GPUCapacity {
		plan.ResidualOverflow = plan.PeakPressure - cfg.GPUCapacity
	}
	for i := range pl.decisions {
		d := &pl.decisions[i]
		if d.Target == uvm.InFlash {
			plan.PlannedSSDBytes += d.Period.Tensor.Size
		} else {
			plan.PlannedHostBytes += d.Period.Tensor.Size
		}
	}
	plan.Program = emit(a, pl.decisions)
	plan.Program.retime = &retimeState{
		a:             a,
		cfg:           cfg,
		n:             n,
		total:         pl.total,
		starts:        pl.starts,
		decisions:     pl.decisions,
		prefetchSlots: pl.prefetchSlots,
	}
	return plan
}

// ---- Phase 1: smart tensor eviction (Algorithm 1) ----

// candidate is a heap entry for the lazy-greedy search. Benefits only
// decrease as pressure drops, so a popped candidate whose recomputed ratio
// still dominates the next entry is the true argmax.
type candidate struct {
	period *vitality.Period
	ratio  float64 // benefit/cost at last evaluation
}

type candHeap []candidate

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].ratio > h[j].ratio }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() any          { old := *h; c := old[len(old)-1]; *h = old[:len(old)-1]; return c }
func (h candHeap) peekRatio() float64 { return h[0].ratio }

func (pl *planner) scheduleEvictions() {
	cap := float64(pl.cfg.GPUCapacity)

	h := &candHeap{}
	for i := range pl.a.Periods {
		p := &pl.a.Periods[i]
		ratio := pl.evalRatio(p)
		if ratio > 0 {
			*h = append(*h, candidate{period: p, ratio: ratio})
		}
	}
	heap.Init(h)

	for len(*h) > 0 && len(pl.decisions) < pl.cfg.MaxDecisions {
		if pl.maxExcess(cap) <= 0 {
			break // Algorithm 1 line 3: pressure fits — done.
		}
		c := heap.Pop(h).(candidate)
		ratio := pl.evalRatio(c.period)
		if ratio <= 0 {
			continue // no longer beneficial; drop (benefit is monotone).
		}
		if h.Len() > 0 && ratio < h.peekRatio() {
			// Stale value: reinsert with the fresh ratio.
			heap.Push(h, candidate{period: c.period, ratio: ratio})
			continue
		}
		pl.commit(c.period)
	}
}

// maxExcess reports the largest pressure overshoot in bytes. Subtracting
// the capacity is monotone under float64 rounding, so the maximum of
// (pressure - cap) is the (maintained) maximum pressure minus cap.
func (pl *planner) maxExcess(cap float64) float64 {
	return pl.presTree.rootMax() - cap
}

// evictCost is Algorithm 1's candidate cost: eviction plus prefetch latency
// on the chosen destination's channels.
func (pl *planner) evictCost(size units.Bytes, target uvm.Location) float64 {
	if target == uvm.InFlash {
		return float64(size)/float64(pl.cfg.SSDWriteBW) + float64(size)/float64(pl.cfg.SSDReadBW)
	}
	return float64(size)/float64(pl.cfg.HostWriteBW) + float64(size)/float64(pl.cfg.HostReadBW)
}

// chooseTarget applies Algorithm 1's destination policy (lines 7–17): evict
// to the SSD unless its write channel is full over the eviction window and
// the host has room — and fall back to whichever destination is feasible
// when only one can complete the round trip inside the period.
func (pl *planner) chooseTarget(p *vitality.Period) (target uvm.Location, from, to units.Time, ok bool) {
	size := p.Tensor.Size
	var sFrom, sTo, hFrom, hTo units.Time
	ssdOK, hostOK := false, false
	if pl.cfg.UseSSD {
		sFrom, sTo, ssdOK = pl.freeWindow(p, uvm.InFlash)
	}
	if pl.cfg.UseHost && pl.hostFits(p, size) {
		hFrom, hTo, hostOK = pl.freeWindow(p, uvm.InHost)
	}
	switch {
	case ssdOK && hostOK:
		ts := units.TransferTime(size, pl.cfg.SSDWriteBW)
		ssdFull := pl.ssdWrite.busyFrac(p.Start, p.Start+ts) >= pl.cfg.SSDFullThreshold
		if ssdFull {
			return uvm.InHost, hFrom, hTo, true
		}
		return uvm.InFlash, sFrom, sTo, true
	case ssdOK:
		return uvm.InFlash, sFrom, sTo, true
	case hostOK:
		return uvm.InHost, hFrom, hTo, true
	default:
		return uvm.Unmapped, 0, 0, false
	}
}

// evalRatio computes the candidate's current benefit/cost: the pressure-
// above-capacity area the eviction removes (Figure 7's shaded area) divided
// by the I/O time it occupies.
func (pl *planner) evalRatio(p *vitality.Period) float64 {
	target, from, to, ok := pl.chooseTarget(p)
	if !ok {
		return 0
	}
	cost := pl.evictCost(p.Tensor.Size, target)
	if cost <= 0 {
		return 0
	}
	return pl.excessArea(from, to, float64(p.Tensor.Size)) / cost
}

// freeWindow previews the interval during which the eviction would leave
// GPU memory free: from the (contention-aware) eviction completion to the
// (analytic) latest-safe prefetch start.
func (pl *planner) freeWindow(p *vitality.Period, target uvm.Location) (from, to units.Time, ok bool) {
	size := p.Tensor.Size
	wch, rbw := pl.ssdWrite, pl.cfg.SSDReadBW
	if target == uvm.InHost {
		wch, rbw = pl.hostWrite, pl.cfg.HostReadBW
	}
	done, ok := wch.scheduleForward(p.Start, size, false)
	if !ok {
		return 0, 0, false
	}
	latest := p.End - units.TransferTime(size, rbw)
	if latest <= done {
		return 0, 0, false
	}
	return done, latest, true
}

// excessArea integrates min(size, pressure-cap) over the full kernel slots
// inside [from, to] — the eviction's benefit in byte·seconds. Only slots in
// the over-capacity bitset contribute, and they are visited in the same
// order (ascending global slot) with the same per-slot arithmetic as a full
// scan, so the float accumulation is identical.
func (pl *planner) excessArea(from, to units.Time, size float64) float64 {
	key := areaKey{from: from, to: to, size: size}
	if v, ok := pl.areaCache[key]; ok {
		return v
	}
	cap := float64(pl.cfg.GPUCapacity)
	var area float64
	g0, gEnd := pl.fullSlotSpan(from, to)
	n := int64(pl.n)
	for gs := g0; gs < gEnd; {
		kStart := int(gs % n)
		span := int(n) - kStart
		if rem := gEnd - gs; int64(span) > rem {
			span = int(rem)
		}
		kLim := kStart + span
		// Walk the over-capacity bitset word by word (ascending slot
		// order, so the float accumulation matches a full scan exactly).
		for w := kStart >> 6; w<<6 < kLim; w++ {
			word := pl.excess[w]
			if word == 0 {
				continue
			}
			base := w << 6
			if base < kStart {
				word &= ^uint64(0) << (uint(kStart) & 63)
			}
			for word != 0 {
				k := base + bits.TrailingZeros64(word)
				if k >= kLim {
					break
				}
				word &= word - 1
				excess := pl.pressure[k] - cap
				if excess > size {
					excess = size
				}
				area += excess * pl.slotSec[k]
			}
		}
		gs += int64(span)
	}
	if pl.areaCache == nil {
		pl.areaCache = make(map[areaKey]float64, 64)
	}
	pl.areaCache[key] = area
	return area
}

// commit applies Algorithm 1's lines 6–17 for the selected period: pick the
// destination, book the eviction on its channel, and update pressure and
// host-occupancy state.
func (pl *planner) commit(p *vitality.Period) {
	size := p.Tensor.Size
	target, from, to, ok := pl.chooseTarget(p)
	if !ok {
		return
	}
	wch := pl.ssdWrite
	if target == uvm.InHost {
		wch = pl.hostWrite
	}
	done, ok := wch.scheduleForward(p.Start, size, true)
	if !ok {
		return
	}

	// Reduce pressure over the free window, keeping the over-capacity
	// bitset and pressure max-tree in sync. Pressure changes invalidate
	// every memoized benefit integral.
	clear(pl.areaCache)
	capBytes := float64(pl.cfg.GPUCapacity)
	g0, gEnd := pl.fullSlotSpan(from, to)
	n64 := int64(pl.n)
	for gs := g0; gs < gEnd; {
		kStart := int(gs % n64)
		span := int(n64) - kStart
		if rem := gEnd - gs; int64(span) > rem {
			span = int(rem)
		}
		for k := kStart; k < kStart+span; k++ {
			pl.pressure[k] -= float64(size)
			if pl.pressure[k]-capBytes > 0 {
				pl.excess.set(k)
			} else {
				pl.excess.clear(k)
			}
		}
		pl.presTree.update(kStart, kStart+span)
		gs += int64(span)
	}
	// Host occupancy covers the whole period.
	if target == uvm.InHost {
		pl.eachTouchedWindow(p.Start, p.End, func(k0, kEnd int) {
			for k := k0; k < kEnd; k++ {
				pl.hostUsed[k] += float64(size)
			}
			pl.hostTree.update(k0, kEnd)
		})
	}

	pl.decisions = append(pl.decisions, Decision{
		Period:        p,
		Target:        target,
		EvictBoundary: p.AfterKernel + 1,
		EvictStart:    p.Start,
		EvictDone:     done,
		Deadline:      p.End,
	})
}

// hostFits checks host capacity across the period's slots (line 10).
// Adding the tensor size is monotone under float64 rounding, so comparing
// against the window's maintained occupancy maximum decides exactly as the
// per-slot scan did.
func (pl *planner) hostFits(p *vitality.Period, size units.Bytes) bool {
	if !pl.cfg.UseHost || pl.cfg.HostCapacity <= 0 {
		return false
	}
	fits := true
	pl.eachTouchedWindow(p.Start, p.End, func(k0, kEnd int) {
		if k0 < kEnd && pl.hostTree.queryMax(k0, kEnd)+float64(size) > float64(pl.cfg.HostCapacity) {
			fits = false
		}
	})
	return fits
}

// eachTouchedWindow yields the local slot interval(s) overlapping
// [from, to] (cyclic), in visit order.
func (pl *planner) eachTouchedWindow(from, to units.Time, fn func(k0, kEnd int)) {
	if to <= from {
		return
	}
	visit := func(a, b units.Time) {
		k0, kEnd := pl.touchedSlotRange(a, b)
		if k0 < kEnd {
			fn(k0, kEnd)
		}
	}
	if to > pl.total {
		visit(from, pl.total)
		visit(0, to-pl.total)
	} else {
		visit(from, to)
	}
}

// ---- Phase 2: smart tensor prefetching (§4.4) ----

func (pl *planner) schedulePrefetches() {
	capBytes := float64(pl.cfg.GPUCapacity)
	pl.prefetchSlots = make([]int, len(pl.decisions))
	// §4.4: traverse evicted periods in latest-safe-prefetch-time order.
	order := make([]int, len(pl.decisions))
	for i := range order {
		order[i] = i
	}
	type latestInfo struct {
		start units.Time
		ok    bool
	}
	latest := make([]latestInfo, len(pl.decisions))
	for i := range pl.decisions {
		d := &pl.decisions[i]
		rch := pl.ssdRead
		if d.Target == uvm.InHost {
			rch = pl.hostRead
		}
		s, ok := rch.scheduleBackward(d.Deadline, d.Period.Tensor.Size, false)
		latest[i] = latestInfo{start: s, ok: ok}
	}
	sort.SliceStable(order, func(x, y int) bool { return latest[order[x]].start < latest[order[y]].start })

	for _, i := range order {
		d := &pl.decisions[i]
		size := d.Period.Tensor.Size
		rch := pl.ssdRead
		if d.Target == uvm.InHost {
			rch = pl.hostRead
		}
		start, ok := rch.scheduleBackward(d.Deadline, size, true)
		if !ok {
			// Channel saturated: fall back to the analytic latest time;
			// the runtime will absorb the stall.
			start = d.Deadline - units.TransferTime(size, units.Bandwidth(rch.bw))
		}
		d.PrefetchStart = start

		// Map the start to an issue boundary (the kernel during which the
		// transfer should begin), in cyclic terms.
		bLatest := pl.cyclicSlot(start)
		bEarliestLimit := pl.cyclicSlot(d.EvictDone) + 1 // cannot fetch before eviction lands

		// Eager rescheduling: walk backwards while the tensor also fits.
		b := bLatest
		for b > bEarliestLimit {
			k := ((b-1)%pl.n + pl.n) % pl.n
			if pl.pressure[k]+float64(size) > capBytes {
				break
			}
			b--
		}
		// The tensor re-occupies memory from the issue slot to the latest
		// slot (it was counted from the latest slot onwards already).
		clear(pl.areaCache)
		for g := b; g < bLatest; g++ {
			k := (g%pl.n + pl.n) % pl.n
			pl.pressure[k] += float64(size)
		}
		pl.prefetchSlots[i] = b
		d.PrefetchBoundary = ((b % pl.n) + pl.n) % pl.n
	}
}

// cyclicSlot maps a (possibly negative or wrapped) time to a global slot
// number such that consecutive times map to consecutive numbers.
func (pl *planner) cyclicSlot(t units.Time) int {
	lap := 0
	for t < 0 {
		t += pl.total
		lap -= 1
	}
	for t >= pl.total {
		t -= pl.total
		lap += 1
	}
	k := sort.Search(pl.n, func(i int) bool { return pl.starts[i+1] > t })
	if k >= pl.n {
		k = pl.n - 1
	}
	return lap*pl.n + k
}

// Validate checks the plan's invariants (used by tests): evictions sit
// inside their periods and prefetch boundaries precede the next use.
func (p *Plan) Validate() error {
	n := len(p.Analysis.Graph.Kernels)
	seen := map[*vitality.Period]bool{}
	for i := range p.Decisions {
		d := &p.Decisions[i]
		if seen[d.Period] {
			return fmt.Errorf("planner: period of %s scheduled twice", d.Period.Tensor.Name)
		}
		seen[d.Period] = true
		if d.EvictBoundary != d.Period.AfterKernel+1 {
			return fmt.Errorf("planner: eviction of %s at boundary %d, period starts after kernel %d",
				d.Period.Tensor.Name, d.EvictBoundary, d.Period.AfterKernel)
		}
		if d.PrefetchBoundary < 0 || d.PrefetchBoundary > n {
			return fmt.Errorf("planner: prefetch boundary %d out of range", d.PrefetchBoundary)
		}
		if !d.Period.Wraps {
			if d.PrefetchBoundary > d.Period.NextUse {
				return fmt.Errorf("planner: prefetch of %s at boundary %d after next use %d",
					d.Period.Tensor.Name, d.PrefetchBoundary, d.Period.NextUse)
			}
		}
		if d.Target != uvm.InFlash && d.Target != uvm.InHost {
			return fmt.Errorf("planner: decision %d has target %v", i, d.Target)
		}
	}
	return nil
}

package planner

import (
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// pressureGraph builds a graph where tensor BIG (30MB) is produced by k0,
// idle through k1..k8 (10ms each), and consumed by k9. A chain of small
// tensors flows through the middle, bulging to 10MB at k4/k5 so the peak
// pressure (50MB at k4) exceeds a 45MB GPU only in the middle of the
// timeline — after an eviction of BIG has had time to complete.
func pressureGraph(t *testing.T) *vitality.Analysis {
	t.Helper()
	b := dnn.NewBuilder("pressure", 1)
	chainSize := func(i int) units.Bytes {
		if i == 4 || i == 5 {
			return 10 * units.MB
		}
		return 2 * units.MB
	}
	c0 := b.Tensor("c0", dnn.Intermediate, chainSize(0))
	big := b.Tensor("BIG", dnn.Intermediate, 30*units.MB)
	c1 := b.Tensor("c1", dnn.Intermediate, chainSize(1))
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{c0}, []*dnn.Tensor{big, c1})
	prev := c1
	for i := 1; i <= 8; i++ {
		next := b.Tensor("c", dnn.Intermediate, chainSize(i+1))
		b.Kernel("k", dnn.Forward, 1, []*dnn.Tensor{prev}, []*dnn.Tensor{next})
		prev = next
	}
	b.Kernel("k9", dnn.Backward, 1, []*dnn.Tensor{big, prev}, []*dnn.Tensor{prev})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	durs := make([]units.Duration, len(g.Kernels))
	for i := range durs {
		durs[i] = 10 * units.Millisecond
	}
	return vitality.MustAnalyze(g, &profile.Trace{Durations: durs})
}

func testConfig() Config {
	cfg := Default()
	cfg.GPUCapacity = 45 * units.MB
	cfg.HostCapacity = 100 * units.MB
	return cfg
}

func TestPlanEvictsTheBeneficialTensor(t *testing.T) {
	a := pressureGraph(t)
	if a.PeakAlive() <= 45*units.MB {
		t.Fatalf("test graph peak %v not above capacity", a.PeakAlive())
	}
	plan := New(a, testConfig())
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Decisions) == 0 {
		t.Fatal("no decisions scheduled")
	}
	d := plan.Decisions[0]
	if d.Period.Tensor.Name != "BIG" {
		t.Errorf("first eviction is %s, want BIG", d.Period.Tensor.Name)
	}
	if d.EvictBoundary != 1 {
		t.Errorf("evict boundary = %d, want 1 (right after k0)", d.EvictBoundary)
	}
	if plan.PeakPressure > 45*units.MB {
		t.Errorf("planned peak %v still above capacity", plan.PeakPressure)
	}
	if plan.ResidualOverflow != 0 {
		t.Errorf("residual overflow %v", plan.ResidualOverflow)
	}
}

func TestPlanStopsWhenPressureFits(t *testing.T) {
	a := pressureGraph(t)
	cfg := testConfig()
	cfg.GPUCapacity = 64 * units.MB // everything fits (peak is 50MB)
	plan := New(a, cfg)
	if len(plan.Decisions) != 0 {
		t.Errorf("scheduled %d evictions with ample memory", len(plan.Decisions))
	}
}

func TestPlanPrefersSSDWhenChannelFree(t *testing.T) {
	a := pressureGraph(t)
	plan := New(a, testConfig())
	for _, d := range plan.Decisions {
		if d.Target != uvm.InFlash {
			t.Errorf("eviction of %s went to %v with an idle SSD channel", d.Period.Tensor.Name, d.Target)
		}
	}
}

func TestGDSConfigNeverUsesHost(t *testing.T) {
	a := pressureGraph(t)
	cfg := testConfig()
	cfg.UseHost = false
	plan := New(a, cfg)
	if len(plan.Decisions) == 0 {
		t.Fatal("no decisions")
	}
	for _, d := range plan.Decisions {
		if d.Target != uvm.InFlash {
			t.Errorf("G10-GDS evicted to %v", d.Target)
		}
	}
	if plan.PlannedHostBytes != 0 {
		t.Errorf("PlannedHostBytes = %v", plan.PlannedHostBytes)
	}
}

// TestHostSpillWhenSSDSaturated drives many simultaneous evictions through
// a tiny SSD write channel so Algorithm 1's lines 8–14 must divert some to
// host memory.
func TestHostSpillWhenSSDSaturated(t *testing.T) {
	b := dnn.NewBuilder("spill", 1)
	var bigs []*dnn.Tensor
	prev := b.Tensor("x0", dnn.Intermediate, 2*units.MB)
	// k0 produces four 25MB tensors all idle until the last kernel.
	outs := []*dnn.Tensor{}
	for i := 0; i < 4; i++ {
		big := b.Tensor("BIG", dnn.Intermediate, 25*units.MB)
		bigs = append(bigs, big)
		outs = append(outs, big)
	}
	x1 := b.Tensor("x1", dnn.Intermediate, 2*units.MB)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{prev}, append(append([]*dnn.Tensor{}, outs...), x1))
	prev = x1
	for i := 1; i <= 8; i++ {
		next := b.Tensor("x", dnn.Intermediate, 2*units.MB)
		b.Kernel("k", dnn.Forward, 1, []*dnn.Tensor{prev}, []*dnn.Tensor{next})
		prev = next
	}
	b.Kernel("k9", dnn.Backward, 1, append(append([]*dnn.Tensor{}, bigs...), prev), []*dnn.Tensor{prev})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	durs := make([]units.Duration, len(g.Kernels))
	for i := range durs {
		durs[i] = 20 * units.Millisecond
	}
	a := vitality.MustAnalyze(g, &profile.Trace{Durations: durs})

	cfg := Default()
	cfg.GPUCapacity = 40 * units.MB
	cfg.HostCapacity = 200 * units.MB
	cfg.SSDWriteBW = units.GBps(0.8) // 25MB takes ~31ms: one eviction fills the channel
	cfg.SSDReadBW = units.GBps(0.8)
	plan := New(a, cfg)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.PlannedHostBytes == 0 {
		t.Errorf("no host spill despite saturated SSD (ssd=%v host=%v, %d decisions)",
			plan.PlannedSSDBytes, plan.PlannedHostBytes, len(plan.Decisions))
	}
}

func TestEagerPrefetchMovesEarlierWhenRoomAllows(t *testing.T) {
	a := pressureGraph(t)
	cfg := testConfig()
	// Capacity just below the 50MB peak forces one eviction, while leaving
	// room to hold BIG again through most of the middle of the timeline.
	cfg.GPUCapacity = 49 * units.MB
	plan := New(a, cfg)
	if len(plan.Decisions) == 0 {
		t.Fatal("no decisions")
	}
	d := plan.Decisions[0]
	// Latest-safe prefetch would be around kernel 8-9 (30MB at 3.2GB/s is
	// ~9.4ms, one kernel's worth); eager prefetch should pull it earlier
	// since pressure is only 20MB+30MB < 49MB for middle kernels.
	if d.PrefetchBoundary >= 8 {
		t.Errorf("prefetch boundary = %d; eager prefetch should move it earlier", d.PrefetchBoundary)
	}
	if d.PrefetchBoundary <= d.EvictBoundary {
		t.Errorf("prefetch boundary %d not after evict boundary %d", d.PrefetchBoundary, d.EvictBoundary)
	}
}

func TestProgramEmission(t *testing.T) {
	a := pressureGraph(t)
	plan := New(a, testConfig())
	prog := plan.Program
	if prog == nil || len(prog.Boundaries) != len(a.Graph.Kernels)+1 {
		t.Fatal("program missing or wrong boundary count")
	}
	if got := prog.CountKind(OpPreEvict); got != len(plan.Decisions) {
		t.Errorf("pre-evict instructions = %d, decisions = %d", got, len(plan.Decisions))
	}
	if got := prog.CountKind(OpPrefetch); got != len(plan.Decisions) {
		t.Errorf("prefetch instructions = %d, decisions = %d", got, len(plan.Decisions))
	}
	// Every intermediate/workspace tensor allocs exactly once and frees
	// exactly once (they all die before the iteration ends except those
	// used by the last kernel — DeadAt == n frees at boundary n).
	var nonGlobal int
	for _, tensor := range a.Graph.Tensors {
		if tensor.Kind != dnn.Global {
			nonGlobal++
		}
	}
	if got := prog.CountKind(OpAlloc); got != nonGlobal {
		t.Errorf("allocs = %d, non-global tensors = %d", got, nonGlobal)
	}
	if got := prog.CountKind(OpFree); got != nonGlobal {
		t.Errorf("frees = %d, non-global tensors = %d", got, nonGlobal)
	}
	// Allocation for BIG must appear at boundary 0 (born at k0); its
	// pre-evict at boundary 1.
	foundAlloc := false
	for _, in := range prog.Boundaries[0] {
		if in.Kind == OpAlloc && in.Tensor.Name == "BIG" {
			foundAlloc = true
		}
	}
	if !foundAlloc {
		t.Error("BIG not allocated at boundary 0")
	}
}

func TestEmptyProgramHasNoMigrations(t *testing.T) {
	a := pressureGraph(t)
	prog := EmptyProgram(a)
	if prog.CountKind(OpPreEvict) != 0 || prog.CountKind(OpPrefetch) != 0 {
		t.Error("EmptyProgram contains migrations")
	}
	if prog.CountKind(OpAlloc) == 0 {
		t.Error("EmptyProgram missing allocs")
	}
}

func TestPlanOnRealModelFitsCapacity(t *testing.T) {
	g := models.TinyCNN(256)
	// Stretch kernel times (as the calibrated paper models do) so the
	// channels can move hundreds of MB within one iteration.
	tr := profile.Profile(g, profile.A100(200))
	a := vitality.MustAnalyze(g, tr)

	cfg := Default()
	// Squeeze: capacity at 60% of peak, but above the largest working set.
	cap := units.Bytes(float64(a.PeakAlive()) * 0.6)
	if cap < a.PeakActive() {
		cap = a.PeakActive() + units.MB
	}
	cfg.GPUCapacity = cap
	cfg.HostCapacity = 2 * units.GB
	plan := New(a, cfg)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Decisions) == 0 {
		t.Fatal("no evictions scheduled under memory pressure")
	}
	// Planned peak should be at or very near capacity (small residual is
	// tolerable when working sets constrain scheduling).
	if plan.PeakPressure > cap+cap/10 {
		t.Errorf("planned peak %v far above capacity %v", plan.PeakPressure, cap)
	}
	t.Logf("TinyCNN: peak alive %v, cap %v, planned peak %v, decisions %d (ssd %v, host %v)",
		a.PeakAlive(), cap, plan.PeakPressure, len(plan.Decisions), plan.PlannedSSDBytes, plan.PlannedHostBytes)
}

func TestWrapDecisionForGlobalTensor(t *testing.T) {
	// Weights used early in forward and late in backward have a wrap
	// period; under pressure the planner may evict them across the
	// iteration boundary, and validation must accept those decisions.
	g := models.TinyMLP(512)
	tr := profile.Profile(g, profile.A100(200))
	a := vitality.MustAnalyze(g, tr)
	cfg := Default()
	cfg.GPUCapacity = a.PeakActive() + 2*units.MB
	cfg.HostCapacity = units.GB
	plan := New(a, cfg)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("TinyMLP: %d decisions, peak %v -> %v", len(plan.Decisions), a.PeakAlive(), plan.PeakPressure)
}

func TestOpKindStrings(t *testing.T) {
	names := map[OpKind]string{
		OpAlloc:    "g10_alloc",
		OpFree:     "g10_free",
		OpPreEvict: "g10_pre_evict",
		OpPrefetch: "g10_prefetch",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	in := Instr{Kind: OpPreEvict, Tensor: &dnn.Tensor{Name: "T", Size: units.MB}, Target: uvm.InFlash}
	if in.String() == "" {
		t.Error("empty Instr string")
	}
}

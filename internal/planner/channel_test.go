package planner

import (
	"testing"

	"g10sim/internal/units"
)

// evenStarts builds n slots of 1ms each.
func evenStarts(n int) []units.Time {
	s := make([]units.Time, n+1)
	for i := range s {
		s[i] = units.Time(i) * units.Millisecond
	}
	return s
}

func TestChannelForwardEmpty(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	// 1MB at 1GB/s = ~1ms starting at t=0 -> done ~1ms.
	done, ok := c.scheduleForward(0, units.MB, true)
	if !ok {
		t.Fatal("schedule failed")
	}
	lo, hi := 900*units.Microsecond, 1100*units.Microsecond
	if done < lo || done > hi {
		t.Errorf("done = %v, want ~1ms", done)
	}
}

func TestChannelForwardQueuesBehindBookings(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	// Fill the first two slots entirely.
	if _, ok := c.scheduleForward(0, 2*units.MB, true); !ok {
		t.Fatal("first booking failed")
	}
	// The next transfer starting at 0 must finish around 3ms.
	done, ok := c.scheduleForward(0, units.MB, true)
	if !ok {
		t.Fatal("second booking failed")
	}
	if done < 2900*units.Microsecond || done > 3100*units.Microsecond {
		t.Errorf("queued done = %v, want ~3ms", done)
	}
}

func TestChannelPreviewDoesNotBook(t *testing.T) {
	c := newChannel("x", evenStarts(4), units.GBps(1))
	d1, _ := c.scheduleForward(0, units.MB, false)
	d2, _ := c.scheduleForward(0, units.MB, false)
	if d1 != d2 {
		t.Errorf("preview mutated state: %v then %v", d1, d2)
	}
}

func TestChannelForwardWraps(t *testing.T) {
	c := newChannel("x", evenStarts(4), units.GBps(1))
	// Start near the end: 2MB from t=3.5ms needs 2ms of channel; only
	// 0.5ms remains before total (4ms), so it wraps into the next
	// iteration and completes around 5.5ms.
	done, ok := c.scheduleForward(3500*units.Microsecond, 2*units.MB, true)
	if !ok {
		t.Fatal("wrapped booking failed")
	}
	if done < 5300*units.Microsecond || done > 5700*units.Microsecond {
		t.Errorf("wrapped done = %v, want ~5.5ms", done)
	}
}

func TestChannelForwardRejectsOverload(t *testing.T) {
	c := newChannel("x", evenStarts(4), units.GBps(1))
	// 4ms total capacity per lap, 2 laps max => 8MB limit from t=0.
	if _, ok := c.scheduleForward(0, 100*units.MB, true); ok {
		t.Error("overload accepted")
	}
	if _, ok := newChannel("dead", evenStarts(4), 0).scheduleForward(0, units.MB, true); ok {
		t.Error("zero-bandwidth channel accepted booking")
	}
}

func TestChannelBackwardEmpty(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	// 1MB finishing by 5ms starts ~4ms.
	start, ok := c.scheduleBackward(5*units.Millisecond, units.MB, true)
	if !ok {
		t.Fatal("backward failed")
	}
	if start < 3900*units.Microsecond || start > 4100*units.Microsecond {
		t.Errorf("start = %v, want ~4ms", start)
	}
}

func TestChannelBackwardQueues(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	// Book slot 4 fully; a transfer ending at 5ms must start ~3ms.
	if _, ok := c.scheduleForward(4*units.Millisecond, units.MB, true); !ok {
		t.Fatal("forward fill failed")
	}
	start, ok := c.scheduleBackward(5*units.Millisecond, units.MB, true)
	if !ok {
		t.Fatal("backward failed")
	}
	if start < 2900*units.Microsecond || start > 3100*units.Microsecond {
		t.Errorf("start = %v, want ~3ms", start)
	}
}

func TestChannelBackwardWrapsNegative(t *testing.T) {
	c := newChannel("x", evenStarts(4), units.GBps(1))
	// 2MB finishing by 1ms: 1ms available in [0,1ms), the rest wraps to
	// the previous iteration -> start ~-1ms.
	start, ok := c.scheduleBackward(1*units.Millisecond, 2*units.MB, true)
	if !ok {
		t.Fatal("backward wrap failed")
	}
	if start > -900*units.Microsecond || start < -1100*units.Microsecond {
		t.Errorf("start = %v, want ~-1ms", start)
	}
}

func TestChannelBusyFrac(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	if f := c.busyFrac(0, 10*units.Millisecond); f != 0 {
		t.Errorf("fresh channel busyFrac = %v", f)
	}
	// Fill slots 0-4: 5 binary MB at 1 binary GB/s is 5/1.024 ≈ 4.88ms.
	if _, ok := c.scheduleForward(0, 5*units.MB, true); !ok {
		t.Fatal("booking failed")
	}
	if f := c.busyFrac(0, 5*units.Millisecond); f < 0.95 || f > 1.0 {
		t.Errorf("busyFrac over booked window = %v, want ~0.977", f)
	}
	if f := c.busyFrac(5*units.Millisecond, 10*units.Millisecond); f > 0.01 {
		t.Errorf("busyFrac over free window = %v, want ~0", f)
	}
	full := c.busyFrac(0, 10*units.Millisecond)
	if full < 0.46 || full > 0.52 {
		t.Errorf("busyFrac over all = %v, want ~0.49", full)
	}
}

func TestChannelSlotOf(t *testing.T) {
	c := newChannel("x", evenStarts(10), units.GBps(1))
	cases := []struct {
		t    units.Time
		want int
	}{
		{0, 0},
		{500 * units.Microsecond, 0},
		{units.Millisecond, 1},
		{9500 * units.Microsecond, 9},
		{20 * units.Millisecond, 9}, // clamped
	}
	for _, cse := range cases {
		if got := c.slotOf(cse.t); got != cse.want {
			t.Errorf("slotOf(%v) = %d, want %d", cse.t, got, cse.want)
		}
	}
}

func TestChannelConservation(t *testing.T) {
	// Total booked seconds never exceed the channel's capacity per lap ×2.
	c := newChannel("x", evenStarts(8), units.GBps(1))
	var booked float64
	for i := 0; i < 100; i++ {
		if _, ok := c.scheduleForward(units.Time(i%8)*units.Millisecond, 512*units.KB, true); ok {
			booked += 0.5e-3
		}
	}
	var free float64
	for _, f := range c.free {
		free += f
	}
	total := 8e-3
	if booked > total+1e-9 {
		t.Errorf("booked %v seconds on a %v-second channel", booked, total)
	}
	if free < -1e-9 {
		t.Errorf("negative free time: %v", free)
	}
}

package planner

import (
	"reflect"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// planFor builds a plan over a real model at a capacity that forces
// migrations.
func planFor(t *testing.T) *Plan {
	t.Helper()
	g := models.TinyCNN(128)
	tr := profile.Profile(g, profile.A100(200))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.GPUCapacity = a.PeakAlive() / 2
	cfg.HostCapacity = a.PeakAlive()
	plan := New(a, cfg)
	if len(plan.Decisions) == 0 {
		t.Fatal("plan scheduled no migrations; the retime tests need some")
	}
	return plan
}

// TestRetimeIdentity: unit factors (and the zero Retiming) must return the
// receiver itself — the anchor of the adaptive differential guarantees.
func TestRetimeIdentity(t *testing.T) {
	p := planFor(t).Program
	for _, rt := range []Retiming{
		{},
		{FetchInflation: 1, EvictInflation: 1},
		{FetchInflation: 0.5}, // sub-unit factors clamp to identity
	} {
		if got := p.Retime(rt); got != p {
			t.Errorf("Retime(%+v) rebuilt the program", rt)
		}
	}
}

// TestRetimeNotRetimable: programs without a plan (baselines, externally
// emitted decisions) pass through unchanged.
func TestRetimeNotRetimable(t *testing.T) {
	plan := planFor(t)
	empty := EmptyProgram(plan.Analysis)
	if got := empty.Retime(Retiming{FetchInflation: 4}); got != empty {
		t.Error("empty program was retimed")
	}
	ext := EmitProgram(plan.Analysis, plan.Decisions)
	if got := ext.Retime(Retiming{FetchInflation: 4}); got != ext {
		t.Error("externally emitted program was retimed")
	}
}

// TestRetimeMovesPrefetchesEarlierOnly: under inflation every prefetch
// boundary moves to (or stays at) an earlier slot, instruction multisets
// are preserved per kind, and the allocation/free instrumentation is
// untouched.
func TestRetimeMovesPrefetchesEarlierOnly(t *testing.T) {
	plan := planFor(t)
	p := plan.Program
	np := p.Retime(Retiming{FetchInflation: 4, EvictInflation: 1})
	if np == p {
		t.Fatal("4x inflation changed nothing")
	}
	for _, k := range []OpKind{OpAlloc, OpFree, OpPreEvict, OpPrefetch} {
		if got, want := np.CountKind(k), p.CountKind(k); got != want {
			t.Errorf("%v count changed: %d -> %d", k, want, got)
		}
	}
	// Per tensor, the retimed prefetch boundary must not be later than the
	// planned one in the issue-to-deadline sense: compare against the
	// plan's decisions directly.
	planned := map[string]int{}
	for i := range plan.Decisions {
		d := &plan.Decisions[i]
		planned[d.Period.Tensor.Name] = d.PrefetchBoundary
	}
	rs := np.retime
	moved := 0
	for i := range rs.decisions {
		d := &rs.decisions[i]
		nb := boundaryOf(np, d.Period.Tensor.Name)
		pb := planned[d.Period.Tensor.Name]
		// In global-slot terms the retimed issue is never later; modularly
		// it may wrap, so assert via the global anchor instead.
		if nb != pb {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no prefetch moved under 4x inflation")
	}
	// Frees and allocs are byte-identical to the original program.
	for b := range p.Boundaries {
		var po, no []Instr
		for _, in := range p.Boundaries[b] {
			if in.Kind == OpAlloc || in.Kind == OpFree {
				po = append(po, in)
			}
		}
		for _, in := range np.Boundaries[b] {
			if in.Kind == OpAlloc || in.Kind == OpFree {
				no = append(no, in)
			}
		}
		if !reflect.DeepEqual(po, no) {
			t.Errorf("boundary %d alloc/free instrumentation changed", b)
		}
	}
}

// boundaryOf finds the boundary holding the tensor's prefetch instruction.
func boundaryOf(p *Program, tensor string) int {
	for b, instrs := range p.Boundaries {
		for _, in := range instrs {
			if in.Kind == OpPrefetch && in.Tensor.Name == tensor {
				return b
			}
		}
	}
	return -1
}

// TestRetimeGlobalSlotBounds: at every inflation the retimed global
// prefetch slot stays within [eviction-done limit, planned slot] (the
// planned slot itself may sit below the limit; then it is kept as is),
// and increasing inflation never moves a prefetch later.
func TestRetimeGlobalSlotBounds(t *testing.T) {
	p := planFor(t).Program
	rs := p.retime
	prev := make([]int, len(rs.decisions))
	for i := range prev {
		prev[i] = rs.prefetchSlots[i]
	}
	for _, f := range []float64{1.5, 2, 4, 8} {
		np := p.Retime(Retiming{FetchInflation: f, EvictInflation: 1})
		if np.retime != rs {
			t.Fatal("retimed program lost its anchor state")
		}
		for i := range rs.decisions {
			d := &rs.decisions[i]
			span := d.Deadline - d.PrefetchStart
			g := rs.cyclicSlot(d.Deadline - units.Time(float64(span)*f))
			if lim := rs.cyclicSlot(d.EvictDone) + 1; g < lim {
				g = lim
			}
			if g > rs.prefetchSlots[i] {
				g = rs.prefetchSlots[i]
			}
			if g > prev[i] {
				t.Errorf("decision %d: inflation %.1f moved the slot later (%d after %d)", i, f, g, prev[i])
			}
			prev[i] = g
		}
	}
}

// TestRetimeDeferEvictions: with an idle write path the eviction boundaries
// may move later but never past the write-completion bound, and the planned
// behaviour is recovered by a follow-up identity retiming.
func TestRetimeDeferEvictions(t *testing.T) {
	// Force plan-time write-channel queueing (SSD-only destinations on a
	// slow channel): the queue-pessimistic EvictDone estimates then leave
	// slack an idle device can spend on deferral.
	g := models.TinyCNN(128)
	tr := profile.Profile(g, profile.A100(200))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.GPUCapacity = a.PeakAlive() / 2
	cfg.UseHost = false
	cfg.SSDWriteBW = cfg.SSDWriteBW / 8
	cfg.SSDReadBW = cfg.SSDReadBW / 8
	plan := New(a, cfg)
	if len(plan.Decisions) == 0 {
		t.Fatal("no migrations scheduled")
	}
	p := plan.Program
	rs := p.retime
	np := p.Retime(Retiming{FetchInflation: 1, EvictInflation: 1, DeferEvictions: true})
	if np == p {
		t.Fatal("no eviction deferred despite plan-time channel queueing")
	}
	nrs := np.retime
	if nrs != rs {
		t.Fatal("retimed program lost its anchor state")
	}
	// A tensor may have several inactive periods (and so several
	// pre-evictions); compare each tensor's sorted boundary lists —
	// deferral may only move entries later, pairwise.
	evictBoundaries := func(pr *Program) map[string][]int {
		out := map[string][]int{}
		for b, instrs := range pr.Boundaries {
			for _, in := range instrs {
				if in.Kind == OpPreEvict {
					out[in.Tensor.Name] = append(out[in.Tensor.Name], b)
				}
			}
		}
		return out
	}
	orig, after := evictBoundaries(p), evictBoundaries(np)
	deferred := 0
	for name, ob := range orig {
		nb := after[name]
		if len(nb) != len(ob) {
			t.Errorf("eviction count of %s changed: %v -> %v", name, ob, nb)
			continue
		}
		for i := range ob {
			if nb[i] < ob[i] {
				t.Errorf("eviction of %s moved earlier: %d -> %d", name, ob[i], nb[i])
			}
			if nb[i] > ob[i] {
				deferred++
			}
		}
	}
	if deferred == 0 {
		t.Error("no eviction actually deferred")
	}
}

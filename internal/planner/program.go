package planner

import (
	"fmt"

	"g10sim/internal/dnn"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// OpKind is the instrumentation instruction set of §4.4/Figure 9.
type OpKind int

const (
	// OpAlloc is g10_alloc: asynchronously allocate a GPU buffer.
	OpAlloc OpKind = iota
	// OpFree is g10_free: asynchronously release a buffer.
	OpFree
	// OpPreEvict is g10_pre_evict(vaddr, size, target).
	OpPreEvict
	// OpPrefetch is g10_prefetch(vaddr, size).
	OpPrefetch
)

func (k OpKind) String() string {
	switch k {
	case OpAlloc:
		return "g10_alloc"
	case OpFree:
		return "g10_free"
	case OpPreEvict:
		return "g10_pre_evict"
	case OpPrefetch:
		return "g10_prefetch"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Instr is one instrumented instruction.
type Instr struct {
	Kind   OpKind
	Tensor *dnn.Tensor
	// Target is the eviction destination for OpPreEvict.
	Target uvm.Location
}

func (in Instr) String() string {
	if in.Kind == OpPreEvict {
		return fmt.Sprintf("%s(%s, %v, %v)", in.Kind, in.Tensor.Name, in.Tensor.Size, in.Target)
	}
	return fmt.Sprintf("%s(%s, %v)", in.Kind, in.Tensor.Name, in.Tensor.Size)
}

// Program is the instrumented GPU program: the graph's kernel stream plus
// instructions issued at kernel boundaries. Boundaries[b] runs before
// kernel b; Boundaries[n] runs after the last kernel of the iteration.
type Program struct {
	Graph      *dnn.Graph
	Boundaries [][]Instr
}

// emit lowers vitality analysis plus migration decisions into the
// instruction stream, ordering each boundary as: frees, pre-evictions,
// allocations, prefetches (release memory before claiming it).
func emit(a *vitality.Analysis, decisions []Decision) *Program {
	n := len(a.Graph.Kernels)
	frees := make([][]Instr, n+1)
	evicts := make([][]Instr, n+1)
	allocs := make([][]Instr, n+1)
	fetches := make([][]Instr, n+1)

	for id := range a.Infos {
		info := &a.Infos[id]
		t := info.Tensor
		if t.Kind == dnn.Global {
			continue // allocated once at program start, never freed
		}
		allocs[info.BornAt] = append(allocs[info.BornAt], Instr{Kind: OpAlloc, Tensor: t})
		if info.DeadAt <= n {
			frees[info.DeadAt] = append(frees[info.DeadAt], Instr{Kind: OpFree, Tensor: t})
		}
	}
	for i := range decisions {
		d := &decisions[i]
		evicts[d.EvictBoundary] = append(evicts[d.EvictBoundary],
			Instr{Kind: OpPreEvict, Tensor: d.Period.Tensor, Target: d.Target})
		fetches[d.PrefetchBoundary] = append(fetches[d.PrefetchBoundary],
			Instr{Kind: OpPrefetch, Tensor: d.Period.Tensor})
	}

	p := &Program{Graph: a.Graph, Boundaries: make([][]Instr, n+1)}
	for b := 0; b <= n; b++ {
		var list []Instr
		list = append(list, frees[b]...)
		list = append(list, evicts[b]...)
		list = append(list, allocs[b]...)
		list = append(list, fetches[b]...)
		p.Boundaries[b] = list
	}
	return p
}

// EmptyProgram builds a program with allocation/free instrumentation only —
// what a non-G10 memory manager sees (baselines manage migrations
// themselves).
func EmptyProgram(a *vitality.Analysis) *Program {
	return emit(a, nil)
}

// CountKind reports how many instructions of one kind the program contains.
func (p *Program) CountKind(k OpKind) int {
	var n int
	for _, b := range p.Boundaries {
		for _, in := range b {
			if in.Kind == k {
				n++
			}
		}
	}
	return n
}

// EmitProgram lowers externally constructed decisions (e.g. FlashNeuron's
// offline offload plan) into an instrumented program.
func EmitProgram(a *vitality.Analysis, decisions []Decision) *Program {
	return emit(a, decisions)
}

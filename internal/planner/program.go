package planner

import (
	"fmt"
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// OpKind is the instrumentation instruction set of §4.4/Figure 9.
type OpKind int

const (
	// OpAlloc is g10_alloc: asynchronously allocate a GPU buffer.
	OpAlloc OpKind = iota
	// OpFree is g10_free: asynchronously release a buffer.
	OpFree
	// OpPreEvict is g10_pre_evict(vaddr, size, target).
	OpPreEvict
	// OpPrefetch is g10_prefetch(vaddr, size).
	OpPrefetch
)

func (k OpKind) String() string {
	switch k {
	case OpAlloc:
		return "g10_alloc"
	case OpFree:
		return "g10_free"
	case OpPreEvict:
		return "g10_pre_evict"
	case OpPrefetch:
		return "g10_prefetch"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Instr is one instrumented instruction.
type Instr struct {
	Kind   OpKind
	Tensor *dnn.Tensor
	// Target is the eviction destination for OpPreEvict.
	Target uvm.Location
}

func (in Instr) String() string {
	if in.Kind == OpPreEvict {
		return fmt.Sprintf("%s(%s, %v, %v)", in.Kind, in.Tensor.Name, in.Tensor.Size, in.Target)
	}
	return fmt.Sprintf("%s(%s, %v)", in.Kind, in.Tensor.Name, in.Tensor.Size)
}

// Program is the instrumented GPU program: the graph's kernel stream plus
// instructions issued at kernel boundaries. Boundaries[b] runs before
// kernel b; Boundaries[n] runs after the last kernel of the iteration.
type Program struct {
	Graph      *dnn.Graph
	Boundaries [][]Instr

	// retime anchors online re-timing at the original plan (see Retime).
	// Only programs built by planner.New carry it; emit-only programs
	// (baselines, externally constructed decisions) are not retimable.
	retime *retimeState
}

// retimeState is the planning-time context Retime rebuilds boundaries from.
// Every field is read-only after planner.New returns, so retimed copies of
// one program share it freely across goroutines.
type retimeState struct {
	a         *vitality.Analysis
	cfg       Config
	n         int
	total     units.Time
	starts    []units.Time
	decisions []Decision
	// prefetchSlots holds each decision's final global prefetch slot from
	// the eager-rescheduling walk — the anchor Retime never issues later
	// than (the modular PrefetchBoundary alone cannot recover it for
	// wrapping periods).
	prefetchSlots []int
}

// emit lowers vitality analysis plus migration decisions into the
// instruction stream, ordering each boundary as: frees, pre-evictions,
// allocations, prefetches (release memory before claiming it).
func emit(a *vitality.Analysis, decisions []Decision) *Program {
	n := len(a.Graph.Kernels)
	frees := make([][]Instr, n+1)
	evicts := make([][]Instr, n+1)
	allocs := make([][]Instr, n+1)
	fetches := make([][]Instr, n+1)

	for id := range a.Infos {
		info := &a.Infos[id]
		t := info.Tensor
		if t.Kind == dnn.Global {
			continue // allocated once at program start, never freed
		}
		allocs[info.BornAt] = append(allocs[info.BornAt], Instr{Kind: OpAlloc, Tensor: t})
		if info.DeadAt <= n {
			frees[info.DeadAt] = append(frees[info.DeadAt], Instr{Kind: OpFree, Tensor: t})
		}
	}
	for i := range decisions {
		d := &decisions[i]
		evicts[d.EvictBoundary] = append(evicts[d.EvictBoundary],
			Instr{Kind: OpPreEvict, Tensor: d.Period.Tensor, Target: d.Target})
		fetches[d.PrefetchBoundary] = append(fetches[d.PrefetchBoundary],
			Instr{Kind: OpPrefetch, Tensor: d.Period.Tensor})
	}

	p := &Program{Graph: a.Graph, Boundaries: make([][]Instr, n+1)}
	for b := 0; b <= n; b++ {
		var list []Instr
		list = append(list, frees[b]...)
		list = append(list, evicts[b]...)
		list = append(list, allocs[b]...)
		list = append(list, fetches[b]...)
		p.Boundaries[b] = list
	}
	return p
}

// EmptyProgram builds a program with allocation/free instrumentation only —
// what a non-G10 memory manager sees (baselines manage migrations
// themselves).
func EmptyProgram(a *vitality.Analysis) *Program {
	return emit(a, nil)
}

// CountKind reports how many instructions of one kind the program contains.
func (p *Program) CountKind(k OpKind) int {
	var n int
	for _, b := range p.Boundaries {
		for _, in := range b {
			if in.Kind == k {
				n++
			}
		}
	}
	return n
}

// EmitProgram lowers externally constructed decisions (e.g. FlashNeuron's
// offline offload plan) into an instrumented program.
func EmitProgram(a *vitality.Analysis, decisions []Decision) *Program {
	return emit(a, decisions)
}

// Retiming scales the plan's transfer-time estimates by the inflation an
// online controller observed on the shared substrate (realized transfer
// duration over the exclusive-bandwidth duration the plan assumed, >= 1).
type Retiming struct {
	// FetchInflation stretches each prefetch's transfer window: the issue
	// boundary moves early enough that the read, slowed by this factor,
	// still lands by the plan's original deadline. 1 leaves prefetches at
	// their planned boundaries.
	FetchInflation float64
	// EvictInflation stretches eviction write times when deferring.
	EvictInflation float64
	// DeferEvictions pushes each pre-eviction's issue boundary later while
	// the write — at EvictInflation times its exclusive duration — still
	// completes by the plan's original completion estimate. Intended for
	// an idle device (EvictInflation ~ 1), where the plan's channel-queue
	// pessimism leaves slack: tensors stay resident longer and a use
	// before the deferred boundary cancels the eviction entirely.
	DeferEvictions bool
}

// Retime rebuilds the instruction stream with each decision's prefetch
// (and, optionally, pre-eviction) boundary re-timed against rt. Re-timing
// is always anchored at the original plan — retiming a retimed program with
// new factors recomputes from the same planning-time estimates, so factors
// do not compound across iterations. A prefetch never issues later than its
// planned boundary and never before the boundary after its eviction's
// planned completion. The receiver is returned unchanged when the factors
// ask for nothing (or the program is not retimable: it carries no plan).
func (p *Program) Retime(rt Retiming) *Program {
	rs := p.retime
	if rs == nil || len(rs.decisions) == 0 {
		return p
	}
	if rt.FetchInflation <= 1 && !rt.DeferEvictions {
		return p
	}
	if rt.FetchInflation < 1 {
		rt.FetchInflation = 1
	}
	if rt.EvictInflation < 1 {
		rt.EvictInflation = 1
	}
	dec := make([]Decision, len(rs.decisions))
	copy(dec, rs.decisions)
	changed := false
	for i := range dec {
		d := &dec[i]
		size := d.Period.Tensor.Size

		// Prefetch: issue early enough that the transfer, stretched by the
		// observed inflation, still meets the planned deadline.
		span := d.Deadline - d.PrefetchStart
		newStart := d.Deadline - units.Time(float64(span)*rt.FetchInflation)
		g := rs.cyclicSlot(newStart)
		if lim := rs.cyclicSlot(d.EvictDone) + 1; g < lim {
			g = lim
		}
		if planned := rs.prefetchSlots[i]; g > planned {
			g = planned // never later than the plan's eager boundary
		}
		if nb := rs.mod(g); nb != d.PrefetchBoundary {
			d.PrefetchBoundary = nb
			changed = true
		}

		// Pre-eviction: on an idle write path, defer the issue while the
		// write still lands by the plan's (queue-pessimistic) completion.
		if rt.DeferEvictions {
			write := units.Duration(float64(writeTime(size, d.Target, rs.cfg)) * rt.EvictInflation)
			e := d.EvictBoundary
			for e+1 <= rs.n && e+1 < g &&
				rs.starts[e+1]+write <= d.EvictDone {
				e++
			}
			if e != d.EvictBoundary {
				d.EvictBoundary = e
				changed = true
			}
		}
	}
	if !changed {
		return p
	}
	np := emit(rs.a, dec)
	np.retime = rs
	return np
}

// writeTime is the exclusive-bandwidth eviction write duration the plan
// assumed for a decision's destination.
func writeTime(size units.Bytes, target uvm.Location, cfg Config) units.Duration {
	if target == uvm.InHost {
		return units.TransferTime(size, cfg.HostWriteBW)
	}
	return units.TransferTime(size, cfg.SSDWriteBW)
}

// cyclicSlot maps a (possibly negative or wrapped) planning-timeline time to
// a global slot number — the same mapping the planner's prefetch pass uses.
func (rs *retimeState) cyclicSlot(t units.Time) int {
	lap := 0
	for t < 0 {
		t += rs.total
		lap--
	}
	for t >= rs.total {
		t -= rs.total
		lap++
	}
	k := sort.Search(rs.n, func(i int) bool { return rs.starts[i+1] > t })
	if k >= rs.n {
		k = rs.n - 1
	}
	return lap*rs.n + k
}

// mod folds a global slot into a boundary index in [0, n).
func (rs *retimeState) mod(g int) int {
	return ((g % rs.n) + rs.n) % rs.n
}

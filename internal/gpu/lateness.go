package gpu

import (
	"g10sim/internal/flownet"
	"g10sim/internal/planner"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
)

// LatenessSignal is the migration-contention observation a machine
// accumulates: for every completed chunk flow, the realized wire time
// against the exclusive-bandwidth time the same bytes would have taken with
// the route to itself — the planning-time assumption. Under contention the
// realized durations stretch; the ratio is the per-direction inflation an
// online replanner re-times the next iteration's instructions with. The
// machine keeps cumulative totals; the runner snapshots per-iteration
// deltas with Sub.
type LatenessSignal struct {
	// Fetch covers host/flash -> GPU transfers (prefetches and demand
	// fetches); Evict covers GPU -> host/flash pre-evictions.
	FetchFlows, EvictFlows int64
	FetchBytes, EvictBytes units.Bytes
	// Realized sums each chunk flow's wall time on the wire (completion
	// minus activation; fixed device latencies are excluded from both
	// sides). Exclusive sums the bottleneck-bandwidth time of the same
	// flows.
	FetchRealized, FetchExclusive units.Duration
	EvictRealized, EvictExclusive units.Duration
	// LateFetches counts planned tensors a kernel still had to wait for:
	// scheduled fetches issued for absent planned tensors and queued
	// prefetches upgraded to fault priority — the plan's deadline misses.
	LateFetches int64
}

// Sub returns the delta signal since prev (a snapshot of the same machine).
func (s LatenessSignal) Sub(prev LatenessSignal) LatenessSignal {
	return LatenessSignal{
		FetchFlows:     s.FetchFlows - prev.FetchFlows,
		EvictFlows:     s.EvictFlows - prev.EvictFlows,
		FetchBytes:     s.FetchBytes - prev.FetchBytes,
		EvictBytes:     s.EvictBytes - prev.EvictBytes,
		FetchRealized:  s.FetchRealized - prev.FetchRealized,
		FetchExclusive: s.FetchExclusive - prev.FetchExclusive,
		EvictRealized:  s.EvictRealized - prev.EvictRealized,
		EvictExclusive: s.EvictExclusive - prev.EvictExclusive,
		LateFetches:    s.LateFetches - prev.LateFetches,
	}
}

// FetchInflation reports realized over exclusive fetch time (>= 1); 1 when
// nothing was fetched.
func (s LatenessSignal) FetchInflation() float64 {
	return inflation(s.FetchRealized, s.FetchExclusive)
}

// EvictInflation reports realized over exclusive evict time (>= 1); 1 when
// nothing was evicted.
func (s LatenessSignal) EvictInflation() float64 {
	return inflation(s.EvictRealized, s.EvictExclusive)
}

// FetchLateness reports the mean extra wire time per fetch flow.
func (s LatenessSignal) FetchLateness() units.Duration {
	return meanLateness(s.FetchRealized, s.FetchExclusive, s.FetchFlows)
}

// EvictLateness reports the mean extra wire time per evict flow.
func (s LatenessSignal) EvictLateness() units.Duration {
	return meanLateness(s.EvictRealized, s.EvictExclusive, s.EvictFlows)
}

// FetchAchievedBW reports the realized fetch bandwidth share (0 when idle).
func (s LatenessSignal) FetchAchievedBW() units.Bandwidth {
	return achievedBW(s.FetchBytes, s.FetchRealized)
}

// EvictAchievedBW reports the realized evict bandwidth share (0 when idle).
func (s LatenessSignal) EvictAchievedBW() units.Bandwidth {
	return achievedBW(s.EvictBytes, s.EvictRealized)
}

func inflation(realized, exclusive units.Duration) float64 {
	if exclusive <= 0 {
		return 1
	}
	f := float64(realized) / float64(exclusive)
	if f < 1 {
		return 1
	}
	return f
}

func meanLateness(realized, exclusive units.Duration, flows int64) units.Duration {
	if flows <= 0 || realized <= exclusive {
		return 0
	}
	return (realized - exclusive) / units.Duration(flows)
}

func achievedBW(bytes units.Bytes, realized units.Duration) units.Bandwidth {
	if realized <= 0 {
		return 0
	}
	return units.Bandwidth(float64(bytes) / realized.Seconds())
}

// Replanner is implemented by policies that re-time their instrumented
// program between iterations from observed migration lateness — the
// contention-adaptive G10 variant. The runner calls NextProgram at every
// iteration-closing boundary (except the last) with the just-finished
// iteration's signal; returning nil keeps the current program. Static
// policies simply do not implement it, so the two variants coexist on one
// runner without a mode flag.
type Replanner interface {
	NextProgram(iter int, sig LatenessSignal, cur *planner.Program) *planner.Program
}

// Lateness reports the machine's cumulative lateness signal.
func (m *Machine) Lateness() LatenessSignal { return m.lat }

// noteChunkDone folds one completed chunk flow into the lateness ledger.
func (m *Machine) noteChunkDone(mig *migration, f *flownet.Flow) {
	realized := f.CompletedAt - f.StartAt
	exclusive := units.TransferTime(f.Size, routeBottleneck(mig.route))
	if realized < exclusive {
		realized = exclusive // absorb completion-time rounding
	}
	if mig.kind == uvm.PreEvict {
		m.lat.EvictFlows++
		m.lat.EvictBytes += mig.chunk
		m.lat.EvictRealized += realized
		m.lat.EvictExclusive += exclusive
	} else {
		m.lat.FetchFlows++
		m.lat.FetchBytes += mig.chunk
		m.lat.FetchRealized += realized
		m.lat.FetchExclusive += exclusive
	}
}

// routeBottleneck reports the narrowest current capacity on a route.
func routeBottleneck(route []*flownet.Resource) units.Bandwidth {
	var min units.Bandwidth
	for i, r := range route {
		if c := r.Capacity(); i == 0 || c < min {
			min = c
		}
	}
	return min
}

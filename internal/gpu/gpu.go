// Package gpu is the runtime execution simulator: it replays a profiled
// kernel trace while executing the instrumented program's migration
// instructions (or a baseline policy's dynamic decisions) over a shared
// PCIe/SSD/host interconnect, a flash device with FTL and GC, and the
// extended-UVM page table and TLB.
//
// This substitutes for the paper's UVMSmart+GPGPU-Sim replay framework
// (§5): kernels run for their traced durations; a kernel cannot start until
// its working set is resident in GPU memory; migrations proceed
// concurrently with compute and contend for bandwidth; absent tensors
// trigger page faults with the Table 2 fault-handling latency; and when a
// single kernel's working set exceeds GPU memory, UVM-based policies stream
// the overflow at a degraded on-demand bandwidth (FlashNeuron-style
// non-UVM managers fail instead — footnote 1 of the paper).
package gpu

import (
	"g10sim/internal/ssd"
	"g10sim/internal/units"
)

// Config describes the simulated system (Table 2 defaults).
type Config struct {
	GPUCapacity  units.Bytes
	HostCapacity units.Bytes
	// PCIeBandwidth is the GPU link's per-direction bandwidth.
	PCIeBandwidth units.Bandwidth
	// HostDRAMBandwidth bounds host-side staging (rarely the bottleneck).
	HostDRAMBandwidth units.Bandwidth
	// SSD is the flash device configuration.
	SSD ssd.Config

	// FaultLatency is the GPU page-fault round trip (Table 2: 45 µs),
	// paid by UVM policies on demand misses.
	FaultLatency units.Duration
	// HostMediationOverhead is the extra software latency per flash
	// migration when the SSD is reached through the host fault path
	// rather than G10's extended UVM (§7.2's G10 vs G10-Host gap).
	HostMediationOverhead units.Duration
	// DMALatency is the setup cost of any migration.
	DMALatency units.Duration
	// FaultEfficiency is the fraction of channel bandwidth on-demand
	// (page-fault) migrations achieve versus planned batched transfers
	// when the fault is serviced through the host UVM driver.
	FaultEfficiency float64
	// DirectFaultLatency and DirectFaultEfficiency apply instead when the
	// policy's extended UVM (or GPUDirect library) services the demand
	// miss without the host round trip (§4.5: "reduced software overhead
	// of accessing flash pages and handling page faults").
	DirectFaultLatency    units.Duration
	DirectFaultEfficiency float64
	// HostMediationEfficiency is the throughput fraction flash transfers
	// achieve when bounced through host software (non-extended-UVM
	// systems); 1.0 for direct access.
	HostMediationEfficiency float64

	// MigrationChunk is the transfer-set granularity (Figure 10): tensor
	// migrations move in chunks of this size, freeing and claiming GPU
	// memory incrementally the way page-group migrations do.
	MigrationChunk units.Bytes
	// PageSize is the UVM page size (Table 2: 4KB) used for fault and
	// traffic accounting.
	PageSize units.Bytes
	// TranslationGranularity is the granularity at which the simulator
	// materialises page-table entries (DESIGN.md §1).
	TranslationGranularity units.Bytes
	// PTWalkLatency is charged per TLB miss.
	PTWalkLatency units.Duration

	// Iterations is how many training iterations to simulate; the last
	// one is measured (steady state). Default 2.
	Iterations int
}

// Default returns the paper's Table 2 configuration.
func Default() Config {
	return Config{
		GPUCapacity:             40 * units.GB,
		HostCapacity:            128 * units.GB,
		PCIeBandwidth:           units.GBps(15.754),
		HostDRAMBandwidth:       units.GBps(50),
		SSD:                     ssd.ZNAND(),
		FaultLatency:            45 * units.Microsecond,
		HostMediationOverhead:   25 * units.Microsecond,
		DMALatency:              3 * units.Microsecond,
		FaultEfficiency:         0.18,
		DirectFaultLatency:      10 * units.Microsecond,
		DirectFaultEfficiency:   0.60,
		HostMediationEfficiency: 0.80,
		MigrationChunk:          64 * units.MB,
		PageSize:                4 * units.KB,
		TranslationGranularity:  2 * units.MB,
		PTWalkLatency:           600 * units.Nanosecond,
		Iterations:              2,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.GPUCapacity <= 0 {
		c.GPUCapacity = d.GPUCapacity
	}
	if c.PCIeBandwidth <= 0 {
		c.PCIeBandwidth = d.PCIeBandwidth
	}
	if c.HostDRAMBandwidth <= 0 {
		c.HostDRAMBandwidth = d.HostDRAMBandwidth
	}
	if c.SSD.Capacity == 0 {
		c.SSD = d.SSD
	}
	if c.FaultLatency <= 0 {
		c.FaultLatency = d.FaultLatency
	}
	if c.HostMediationOverhead <= 0 {
		c.HostMediationOverhead = d.HostMediationOverhead
	}
	if c.DMALatency <= 0 {
		c.DMALatency = d.DMALatency
	}
	if c.FaultEfficiency <= 0 || c.FaultEfficiency > 1 {
		c.FaultEfficiency = d.FaultEfficiency
	}
	if c.DirectFaultLatency <= 0 {
		c.DirectFaultLatency = d.DirectFaultLatency
	}
	if c.DirectFaultEfficiency <= 0 || c.DirectFaultEfficiency > 1 {
		c.DirectFaultEfficiency = d.DirectFaultEfficiency
	}
	if c.HostMediationEfficiency <= 0 || c.HostMediationEfficiency > 1 {
		c.HostMediationEfficiency = d.HostMediationEfficiency
	}
	if c.MigrationChunk <= 0 {
		c.MigrationChunk = d.MigrationChunk
	}
	if c.PageSize <= 0 {
		c.PageSize = d.PageSize
	}
	if c.TranslationGranularity <= 0 {
		c.TranslationGranularity = d.TranslationGranularity
	}
	if c.PTWalkLatency <= 0 {
		c.PTWalkLatency = d.PTWalkLatency
	}
	if c.Iterations <= 0 {
		c.Iterations = d.Iterations
	}
	return c
}

// Result reports one simulated run.
type Result struct {
	Model  string
	Batch  int
	Policy string

	// IterationTime is the measured (steady-state) iteration time.
	IterationTime units.Duration
	// IdealTime is the stall-free iteration time (sum of kernel times).
	IdealTime units.Duration
	// StallTime is IterationTime − IdealTime.
	StallTime units.Duration
	// KernelTimes is the per-kernel wall time (including stalls) of the
	// measured iteration.
	KernelTimes []units.Duration

	// Traffic over the measured iteration, by channel and direction.
	SSDToGPU  units.Bytes
	GPUToSSD  units.Bytes
	HostToGPU units.Bytes
	GPUToHost units.Bytes

	// Faults counts demand-miss events in the measured iteration;
	// FaultedBytes the bytes they moved; FaultedPages the 4KB pages.
	Faults       int64
	FaultedBytes units.Bytes
	FaultedPages int64

	// OverflowKernels counts kernels whose working set exceeded GPU
	// memory and had to stream (footnote-1 situations).
	OverflowKernels int
	// OverflowBytes is the streamed volume.
	OverflowBytes units.Bytes

	SSDStats   ssd.Stats
	WriteAmp   float64
	TLBHitRate float64

	// Failed marks a run the policy could not execute (FlashNeuron with a
	// working set above GPU memory).
	Failed     bool
	FailReason string

	// Fault-injection accounting (faults.go): Restarts counts crash
	// recoveries, WastedTime the simulated progress lost to them, and
	// CheckpointBytes/CheckpointWrites the durable snapshot traffic the
	// tenant's recovery policy wrote to flash.
	Restarts         int
	WastedTime       units.Duration
	CheckpointBytes  units.Bytes
	CheckpointWrites int
}

// NormalizedPerf reports IterationTime relative to ideal (1.0 = ideal).
func (r Result) NormalizedPerf() float64 {
	if r.Failed || r.IterationTime <= 0 {
		return 0
	}
	return float64(r.IdealTime) / float64(r.IterationTime)
}

// Throughput reports examples/second for the measured iteration.
func (r Result) Throughput() float64 {
	if r.Failed || r.IterationTime <= 0 {
		return 0
	}
	return float64(r.Batch) / r.IterationTime.Seconds()
}

// TotalTraffic sums migration traffic in both directions.
func (r Result) TotalTraffic() units.Bytes {
	return r.SSDToGPU + r.GPUToSSD + r.HostToGPU + r.GPUToHost
}

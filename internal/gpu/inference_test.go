package gpu

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"g10sim/internal/units"
)

// kvTestPolicy is a local KVPolicy (internal/policy would import-cycle into
// package gpu's tests via gpu itself; the real implementations live there
// and are structurally identical).
type kvTestPolicy struct {
	name    string
	tier    bool
	offload float64
}

func (p kvTestPolicy) Name() string       { return p.name }
func (p kvTestPolicy) HostTier() bool     { return p.tier }
func (p kvTestPolicy) OffloadAt() float64 { return p.offload }

func singleTierKV() KVPolicy { return kvTestPolicy{name: "single-tier"} }
func tieredKV() KVPolicy {
	return kvTestPolicy{name: "tiered-kv", tier: true, offload: 0.8}
}

// servingTrace builds a fixed-seed request trace: Poisson arrivals with the
// given mean gap, near-normal prompt lengths (Box-Muller), exponential
// output lengths — the same shape the experiments figure uses, scaled down.
func servingTrace(n int, seed uint64, meanGap units.Duration,
	promptMean, promptDev, promptMax, outMean, outMax int) []RequestSpec {
	x := seed
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (float64(x>>11) + 1) / (1 << 53)
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	specs := make([]RequestSpec, n)
	var at float64
	for i := range specs {
		at += -math.Log(next()) * float64(meanGap)
		z := math.Sqrt(-2*math.Log(next())) * math.Cos(2*math.Pi*next())
		prompt := clamp(promptMean+int(z*float64(promptDev)), 4, promptMax)
		out := clamp(int(-math.Log(next())*float64(outMean)), 4, outMax)
		specs[i] = RequestSpec{
			Arrival:      units.Time(at) + 1,
			PromptTokens: prompt,
			OutputTokens: out,
		}
	}
	return specs
}

// churnParams is a deliberately tiny serving configuration that forces
// heavy block-pool churn (waits, preemptions, swaps) on a short trace.
func churnParams(n int, seed uint64, pol KVPolicy) InferenceParams {
	return InferenceParams{
		Requests:    servingTrace(n, seed, 12*units.Millisecond, 48, 16, 96, 40, 120),
		Policy:      pol,
		Servers:     2,
		GPUBlocks:   64,
		HostBlocks:  24,
		BlockTokens: 4,
		BlockBytes:  256 * units.KB,
	}
}

// TestInferenceDriversMatch pins the serving engine deterministic and
// byte-identical across the event-driven, polling, and sharded drivers for
// both KV policies, in the style of TestShardedMatchesSequential.
func TestInferenceDriversMatch(t *testing.T) {
	for _, polName := range []string{"single", "tiered"} {
		pol := singleTierKV
		if polName == "tiered" {
			pol = tieredKV
		}
		base := churnParams(240, 0x67313069, pol())
		base.Driver = DriverEvents
		var refSteps int64
		base.StepCount = &refSteps
		ref, err := RunInference(base)
		if err != nil {
			t.Fatalf("%s events: %v", polName, err)
		}
		if ref.Makespan <= 0 {
			t.Fatalf("%s: empty run (makespan %v)", polName, ref.Makespan)
		}
		cases := []struct {
			name   string
			driver Driver
			shards int
		}{
			{"polling", DriverPolling, 0},
			{"sharded-2", DriverAuto, 2},
			{"sharded-3", DriverAuto, 3},
		}
		for _, tc := range cases {
			p := churnParams(240, 0x67313069, pol())
			p.Driver = tc.driver
			p.Shards = tc.shards
			var steps int64
			p.StepCount = &steps
			got, err := RunInference(p)
			if err != nil {
				t.Fatalf("%s %s: %v", polName, tc.name, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: %s result diverged from the events driver", polName, tc.name)
			}
			// The sharded driver advances the same step machine the same
			// number of times; the polling reference legitimately steps
			// blocked tenants extra (no-op) times.
			if tc.driver == DriverAuto && steps != refSteps {
				t.Errorf("%s %s: %d steps, events driver took %d", polName, tc.name, steps, refSteps)
			}
		}
	}
}

// TestInferenceKVAccounting is the KV-growth property test: across fuzzed
// seeds and both policies, every request at every step satisfies the exact
// block-accounting table — resident + offloaded + freed blocks reconcile
// with the tokens decoded so far — and the server pools and host tier
// conserve capacity.
func TestInferenceKVAccounting(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 0x67313069, 0xdeadbeef}
	for _, seed := range seeds {
		for _, pol := range []KVPolicy{singleTierKV(), tieredKV()} {
			p := churnParams(160, seed, pol)
			audits := 0
			p.audit = func(q *infReq) {
				audits++
				eng := q.eng
				span := func(tokens int) int { return eng.blocksFor(tokens) }
				pd := q.spec.PromptTokens + q.decoded
				fail := func(why string) {
					t.Fatalf("seed %#x %s req %d state %d: %s (blocks %d gpu %d host %d alloc %d freed %d decoded %d)",
						seed, pol.Name(), q.r.idx, q.state, why, q.blocks, q.gpu, q.host, q.alloc, q.freed, q.decoded)
				}
				if q.alloc != q.freed+q.gpu {
					fail("alloc != freed + resident")
				}
				switch q.state {
				case reqQueued:
					want := 0
					if q.granted {
						want = span(pd)
					}
					if q.blocks != want || q.gpu != want || q.host != 0 {
						fail("queued accounting")
					}
				case reqPrefill:
					if q.blocks != span(pd) || q.gpu != q.blocks || q.host != 0 {
						fail("prefill accounting")
					}
				case reqDecode:
					// Executing a step always holds the grown span; parked
					// between steps (a reload just landed, or the aborted
					// step's block survived the swap round-trip) the span is
					// within one block of the decoded tokens.
					if q.r.phase == phaseExec {
						if q.blocks != span(pd+1) {
							fail("decode-exec accounting")
						}
					} else if q.blocks != span(pd) && q.blocks != span(pd+1) {
						fail("decode-wait accounting")
					}
					if q.gpu != q.blocks || q.host != 0 {
						fail("decode accounting")
					}
				case reqBlockWait:
					want := span(pd)
					if q.granted {
						want = span(pd + 1)
					}
					if q.blocks != want || q.gpu != q.blocks || q.host != 0 {
						fail("block-wait accounting")
					}
				case reqSwapOut, reqSwapIn:
					// A victim taken mid-step carries the aborted token's
					// block through the swap round-trip.
					if q.blocks != span(pd) && q.blocks != span(pd+1) {
						fail("swap span accounting")
					}
					if q.gpu != q.blocks || q.host != q.blocks {
						fail("swap residency accounting")
					}
				case reqSwapQueued:
					wantGPU := 0
					if q.granted {
						wantGPU = q.blocks
					}
					if q.blocks != span(pd) && q.blocks != span(pd+1) {
						fail("swap-queued span accounting")
					}
					if q.gpu != wantGPU || q.host != q.blocks {
						fail("swap-queued accounting")
					}
				case reqDone:
					if q.blocks != 0 || q.gpu != 0 || q.host != 0 || q.decoded != q.spec.OutputTokens {
						fail("done accounting")
					}
				}
				// Pool conservation: each server's capacity splits exactly
				// into free blocks and per-request residency (granted
				// requests join active immediately, so active covers every
				// holder); the host tier holds exactly the swapped spans.
				var hostBlocks int
				for _, srv := range eng.servers {
					held := srv.free
					for _, a := range srv.active {
						held += a.gpu
					}
					if held != srv.capacity {
						fail("server pool leak")
					}
				}
				for _, srv := range eng.servers {
					for _, a := range srv.active {
						hostBlocks += a.host
					}
					for i := range srv.admit {
						hostBlocks += srv.admit[i].q.host
					}
				}
				if got := eng.host.Used(); got != units.Bytes(hostBlocks)*eng.p.BlockBytes {
					fail("host tier leak")
				}
			}
			res, err := RunInference(p)
			if err != nil {
				t.Fatalf("seed %#x %s: %v", seed, pol.Name(), err)
			}
			if audits == 0 {
				t.Fatalf("seed %#x %s: audit hook never ran", seed, pol.Name())
			}
			for i, rq := range res.Requests {
				if rq.FirstToken <= rq.Arrival || rq.Finish < rq.FirstToken {
					t.Fatalf("seed %#x %s req %d: inverted timeline %v -> %v -> %v",
						seed, pol.Name(), i, rq.Arrival, rq.FirstToken, rq.Finish)
				}
				if rq.Offloads != rq.Reloads {
					t.Fatalf("seed %#x %s req %d: %d offloads but %d reloads at completion",
						seed, pol.Name(), i, rq.Offloads, rq.Reloads)
				}
			}
			if pol.HostTier() {
				if res.Offloads != res.Reloads {
					t.Fatalf("seed %#x tiered: offloads %d != reloads %d", seed, res.Offloads, res.Reloads)
				}
			} else if res.Offloads != 0 || res.OffloadedBytes != 0 {
				t.Fatalf("seed %#x single-tier offloaded %d flows / %v", seed, res.Offloads, res.OffloadedBytes)
			}
		}
	}
}

// TestInferenceEngineStats pins the engine-stats plumbing through the
// serving path: a tiered run drives the flow network (fill rounds, progress
// touches) and the counters accumulate across runs like Session does.
func TestInferenceEngineStats(t *testing.T) {
	var es EngineStats
	p := churnParams(240, 0x67313069, tieredKV())
	p.Engine = &es
	res, err := RunInference(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloads == 0 {
		t.Fatal("tiered churn run performed no offloads; the trace is undersized")
	}
	if es.FillRounds == 0 || es.ProgressTouches == 0 || es.ReapScans == 0 {
		t.Errorf("tiered run left engine counters empty: %+v", es)
	}
	first := es
	p2 := churnParams(240, 0x67313069, tieredKV())
	p2.Engine = &es
	if _, err := RunInference(p2); err != nil {
		t.Fatal(err)
	}
	if es.FillRounds != 2*first.FillRounds || es.ProgressTouches != 2*first.ProgressTouches {
		t.Errorf("engine stats did not accumulate: first %+v, after second run %+v", first, es)
	}
}

// TestInferenceTieredClaim is the acceptance claim at full scale: on the
// 10^4-request trace the tiered policy strictly reduces preemptions and
// improves TTFT p99 against the single-tier baseline.
func TestInferenceTieredClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale serving comparison (10^4 requests)")
	}
	trace := servingTrace(10_000, 0x67313069, 6600*units.Microsecond, 512, 160, 1024, 160, 512)
	run := func(pol KVPolicy) InferenceResult {
		res, err := RunInference(InferenceParams{Requests: trace, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(singleTierKV())
	tiered := run(tieredKV())
	if single.Preemptions == 0 {
		t.Fatal("single-tier baseline never preempted; the trace does not pressure the pool")
	}
	if tiered.Preemptions >= single.Preemptions {
		t.Errorf("tiered preemptions %d not strictly below single-tier %d",
			tiered.Preemptions, single.Preemptions)
	}
	p99 := func(res InferenceResult) units.Duration {
		ttft := make([]units.Duration, len(res.Requests))
		for i, rq := range res.Requests {
			ttft[i] = rq.FirstToken - rq.Arrival
		}
		return percentileDuration(ttft, 0.99)
	}
	sp, tp := p99(single), p99(tiered)
	if tp >= sp {
		t.Errorf("tiered TTFT p99 %v not below single-tier %v", tp, sp)
	}
}

// percentileDuration reports the q-quantile (nearest-rank) of ds.
func percentileDuration(ds []units.Duration, q float64) units.Duration {
	sorted := append([]units.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

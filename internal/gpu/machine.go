package gpu

import (
	"fmt"
	"sync/atomic"

	"g10sim/internal/dnn"
	"g10sim/internal/flownet"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// Policy is the migration decision-maker plugged into the machine. The G10
// variants are almost entirely static (the instrumented program carries
// their decisions); baselines are dynamic. Policies carry per-run state, so
// every machine — every tenant of a cluster — needs its own instance.
type Policy interface {
	Name() string
	// Attach is called once before simulation begins.
	Attach(m *Machine)
	// AtBoundary runs after the program's instructions at boundary b of
	// iteration iter — dynamic policies issue prefetches here.
	AtBoundary(iter, b int)
	// OnMiss is called when kernel k needs tensor t but it is not in GPU
	// memory and no fetch is in flight. The policy issues the demand
	// migration (typically m.RequestFetch(t.ID, uvm.FaultFetch)).
	OnMiss(k int, t *dnn.Tensor)
	// MakeRoom schedules evictions to free need bytes of GPU memory.
	// pinned tensors (the current kernel's working set) must stay.
	// Returns false if it cannot free anything further right now.
	MakeRoom(need units.Bytes, pinned map[int]bool) bool
	// UsesUVM: demand misses pay the GPU page-fault latency; overflowing
	// working sets stream instead of failing.
	UsesUVM() bool
	// DirectFlash: SSD migrations bypass host software mediation
	// (G10's extended UVM, FlashNeuron's GPUDirect Storage).
	DirectFlash() bool
}

// Shared is the substrate a cluster's tenants contend on: one simulation
// clock and flow network, one flash array behind one FTL, and one host
// memory pool with its DRAM bus. A single-machine Run owns a private
// Shared, so the one-tenant and N-tenant configurations execute identical
// code paths.
type Shared struct {
	net  *flownet.Network
	dev  *ssd.Device
	host *uvm.MemPool

	ssdRead, ssdWrite     *flownet.Resource
	hostBusIn, hostBusOut *flownet.Resource
}

// NewShared builds the shared substrate from cfg's cross-tenant fields
// (SSD, HostCapacity, HostDRAMBandwidth) on net. Resource-creation order is
// the caller's: RunCluster registers tenant 0's PCIe links first so a
// one-tenant cluster's flownet evaluation order matches the single-machine
// path exactly.
func NewShared(net *flownet.Network, cfg Config) (*Shared, error) {
	cfg = cfg.withDefaults()
	dev, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, fmt.Errorf("gpu: %w", err)
	}
	sh := &Shared{net: net, dev: dev, host: uvm.NewMemPool(cfg.HostCapacity)}
	sh.ssdRead = net.AddResource("ssd-read", dev.EffectiveReadBandwidth())
	sh.ssdWrite = net.AddResource("ssd-write", dev.EffectiveWriteBandwidth())
	sh.hostBusIn = net.AddResource("hostmem-in", cfg.HostDRAMBandwidth)
	sh.hostBusOut = net.AddResource("hostmem-out", cfg.HostDRAMBandwidth)
	return sh, nil
}

// tensorState tracks one tensor's placement and any in-flight migration.
type tensorState struct {
	t    *dnn.Tensor
	loc  uvm.Location // Unmapped = not allocated
	va   uint64
	pend *uvm.Request // queued or flying request, nil if none
	fly  *flownet.Flow
	mig  *migration
	// dying marks a tensor freed while its migration was in flight; the
	// destination space is released on completion.
	dying   bool
	flash   ssd.LogicalRange
	hasRng  bool
	lastUse units.Time
	// labels are the tensor's interned "kind:name" flow labels, one per
	// uvm.RequestKind, built once at machine construction so the migration
	// hot path never concatenates strings.
	labels [3]string
	// inLRU marks membership in the machine's resident-LRU index; lruPrev/
	// lruNext are its links (tensor ids, -1 at the ends). The index key is
	// (lastUse, id), so lastUse must only change while the tensor is
	// untracked.
	inLRU            bool
	lruPrev, lruNext int
}

// Machine is one simulated GPU system: a tenant of a Shared substrate. Its
// PCIe link, migration metadata queues, page table, and TLB are private;
// the clock, the flash array (seen through a per-tenant attribution view),
// and host memory are the substrate's.
type Machine struct {
	cfg    Config
	a      *vitality.Analysis
	g      *dnn.Graph
	pol    Policy
	sh     *Shared
	net    *flownet.Network // == sh.net
	dev    *ssd.Tenant      // attribution view on sh.dev
	host   *uvm.MemPool     // == sh.host
	pt     *uvm.PageTable
	tlb    *uvm.TLB
	queues uvm.Queues
	arb    uvm.Arbiter

	pcieIn, pcieOut *flownet.Resource

	states  []tensorState
	gpuUsed units.Bytes
	ledger  traffic

	// inflight counts this machine's active or scheduled flows on the
	// shared network; the step machine waits on the clock only while it is
	// non-zero (otherwise nothing will ever unblock it).
	inflight int

	// idx is the machine's tenant slot in its cluster (0 for a stand-alone
	// machine); every flow it starts is tagged with it so the event-driven
	// scheduler wakes exactly the tenants a completion batch affects.
	idx int

	// hostRejects counts denied host-pool reservations and lastHostReject
	// the size of the most recent one: the runner subscribes to the pool's
	// waiter queue when a blocked wait follows a denial, so a grant wakes
	// this tenant specifically instead of every tenant re-polling the pool.
	hostRejects    int64
	lastHostReject units.Bytes

	// Derived indexes, maintained incrementally at every state transition
	// (track/untrack) instead of recomputed by O(tensors) scans:
	//   pendFetchBytes   — sum of sizes with a queued (not yet flying) fetch
	//   evictPendBytes   — sum of sizes with a pending eviction
	//   lruHead/lruTail  — doubly-linked list (by tensor id) of GPU-resident
	//                      tensors with no pending migration, ordered by
	//                      (lastUse, id), least recent first
	pendFetchBytes units.Bytes
	evictPendBytes units.Bytes
	lruHead        int
	lruTail        int
	lruLen         int
	lruScratch     []int

	// lat is the cumulative migration-lateness ledger (see lateness.go);
	// the runner snapshots per-iteration deltas for adaptive policies.
	lat LatenessSignal

	// migPool recycles migration structs: a migration returns to the pool
	// when it commits, cancels, or unwinds, so steady-state chunk trains
	// allocate nothing. routes holds the four possible route slices (fixed
	// once the policy's DirectFlash choice is known at bind time); every
	// migration aliases one of them read-only.
	migPool []*migration
	reqPool []*uvm.Request
	routes  struct {
		evictFlash, evictHost, fetchFlash, fetchHost []*flownet.Resource
	}

	// Counters (cumulative; the runner snapshots around the measured
	// iteration).
	faults        int64
	faultedBytes  units.Bytes
	overflowKerns int
	overflowBytes units.Bytes
	walkPenalty   units.Duration

	failed     bool
	failReason string
}

// migration is one in-progress tensor transfer. Transfers move in chunks
// of Config.MigrationChunk (the arbiter's transfer sets, Figure 10): each
// chunk is one flow; evictions release GPU memory chunk by chunk and
// fetches claim it chunk by chunk, the way page-group migrations do.
type migration struct {
	owner *Machine // the tenant whose transfer this is
	id    int
	kind  uvm.RequestKind
	src   uvm.Location
	dst   uvm.Location
	// size is the true tensor size; chunk the bytes of the flow currently
	// in flight; moved the bytes already transferred. inflate models
	// reduced effective throughput for on-demand or host-mediated paths.
	size    units.Bytes
	chunk   units.Bytes
	moved   units.Bytes
	inflate float64
	// latency still to charge before the next chunk (first chunk only).
	latency units.Duration
	// label names this migration's flows and route the resources they
	// traverse; both computed once rather than per chunk.
	label string
	route []*flownet.Resource
}

// NewMachine builds a stand-alone system around an analysis (graph +
// trace): a private network, flash device, and host pool of its own.
func NewMachine(a *vitality.Analysis, pol Policy, cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	net := flownet.New()
	m := newTenantShell(a, cfg, net, "")
	sh, err := NewShared(net, cfg)
	if err != nil {
		return nil, err
	}
	m.bind(sh, pol)
	return m, nil
}

// newTenantShell creates the machine struct, its tensor states, and its
// private PCIe resources — everything except the shared substrate binding.
func newTenantShell(a *vitality.Analysis, cfg Config, net *flownet.Network, tag string) *Machine {
	m := &Machine{
		cfg: cfg,
		a:   a,
		g:   a.Graph,
		net: net,
		pt:  uvm.MustNewPageTable(cfg.TranslationGranularity),
		tlb: uvm.MustNewTLB(64, 8, cfg.TranslationGranularity),
		arb: uvm.Arbiter{MaxBatchBytes: 256 * units.MB},
	}
	prefix := ""
	if tag != "" {
		prefix = tag + "/"
	}
	m.pcieIn = net.AddResource(prefix+"pcie-in", cfg.PCIeBandwidth)
	m.pcieOut = net.AddResource(prefix+"pcie-out", cfg.PCIeBandwidth)

	m.lruHead, m.lruTail = -1, -1
	m.states = make([]tensorState, len(m.g.Tensors))
	var va uint64 = 1 << 21 // leave page zero unmapped
	for id, t := range m.g.Tensors {
		m.states[id] = tensorState{t: t, loc: uvm.Unmapped, va: va, lruPrev: -1, lruNext: -1,
			labels: [3]string{
				uvm.FaultFetch: uvm.FaultFetch.String() + ":" + t.Name,
				uvm.Prefetch:   uvm.Prefetch.String() + ":" + t.Name,
				uvm.PreEvict:   uvm.PreEvict.String() + ":" + t.Name,
			}}
		va += uint64(m.pagesOf(t)) * uint64(cfg.TranslationGranularity)
	}
	return m
}

// bind attaches the machine to its substrate and policy.
func (m *Machine) bind(sh *Shared, pol Policy) {
	m.sh = sh
	m.dev = sh.dev.Tenant()
	m.host = sh.host
	m.pol = pol
	if pol.DirectFlash() {
		m.routes.evictFlash = []*flownet.Resource{m.pcieOut, sh.ssdWrite}
		m.routes.fetchFlash = []*flownet.Resource{sh.ssdRead, m.pcieIn}
	} else {
		m.routes.evictFlash = []*flownet.Resource{m.pcieOut, sh.ssdWrite, sh.hostBusOut}
		m.routes.fetchFlash = []*flownet.Resource{sh.ssdRead, m.pcieIn, sh.hostBusIn}
	}
	m.routes.evictHost = []*flownet.Resource{m.pcieOut, sh.hostBusOut}
	m.routes.fetchHost = []*flownet.Resource{sh.hostBusIn, m.pcieIn}
	pol.Attach(m)
}

func (m *Machine) pagesOf(t *dnn.Tensor) int64 {
	return units.PagesFor(t.Size, m.cfg.TranslationGranularity)
}

// reserveHost claims host-pool capacity, recording denials so the runner
// can subscribe this tenant to the pool's grant queue (an explicit wakeup
// reason instead of re-polling).
func (m *Machine) reserveHost(n units.Bytes) bool {
	if m.host.ReserveFor(m.idx, n) {
		return true
	}
	m.hostRejects++
	m.lastHostReject = n
	return false
}

// ---- Derived-index maintenance ----

// untrack removes st's contributions from the derived indexes. Every
// mutation of st.loc, st.pend, st.fly, or st.lastUse must be bracketed by
// untrack/track (never nested).
func (m *Machine) untrack(st *tensorState) {
	if st.pend != nil {
		if st.pend.Kind == uvm.PreEvict {
			m.evictPendBytes -= st.t.Size
		} else if st.fly == nil {
			m.pendFetchBytes -= st.t.Size
		}
	}
	if st.inLRU {
		m.lruRemove(st)
		st.inLRU = false
	}
}

// track re-adds st's contributions after a mutation.
func (m *Machine) track(st *tensorState) {
	if st.pend != nil {
		if st.pend.Kind == uvm.PreEvict {
			m.evictPendBytes += st.t.Size
		} else if st.fly == nil {
			m.pendFetchBytes += st.t.Size
		}
	}
	if st.loc == uvm.InGPU && st.pend == nil {
		m.lruInsert(st)
		st.inLRU = true
	}
}

// lruBefore reports whether a sorts before b in the (lastUse, id) order.
func (m *Machine) lruBefore(a, b *tensorState) bool {
	if a.lastUse != b.lastUse {
		return a.lastUse < b.lastUse
	}
	return a.t.ID < b.t.ID
}

// lruInsert links st into the recency list. The simulation clock is
// monotone, so insertions land at (or within a few same-timestamp entries
// of) the tail.
func (m *Machine) lruInsert(st *tensorState) {
	id := st.t.ID
	after := m.lruTail // walk back to the first entry sorting before st
	for after >= 0 && m.lruBefore(st, &m.states[after]) {
		after = m.states[after].lruPrev
	}
	if after < 0 {
		st.lruPrev, st.lruNext = -1, m.lruHead
		if m.lruHead >= 0 {
			m.states[m.lruHead].lruPrev = id
		} else {
			m.lruTail = id
		}
		m.lruHead = id
	} else {
		o := &m.states[after]
		st.lruPrev, st.lruNext = after, o.lruNext
		if o.lruNext >= 0 {
			m.states[o.lruNext].lruPrev = id
		} else {
			m.lruTail = id
		}
		o.lruNext = id
	}
	m.lruLen++
}

func (m *Machine) lruRemove(st *tensorState) {
	if st.lruPrev >= 0 {
		m.states[st.lruPrev].lruNext = st.lruNext
	} else {
		m.lruHead = st.lruNext
	}
	if st.lruNext >= 0 {
		m.states[st.lruNext].lruPrev = st.lruPrev
	} else {
		m.lruTail = st.lruPrev
	}
	m.lruLen--
}

// clearPend cancels st's queued request, keeping the indexes consistent.
func (m *Machine) clearPend(st *tensorState) {
	m.untrack(st)
	st.pend = nil
	m.track(st)
}

// ---- Introspection for policies ----

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Graph returns the workload graph.
func (m *Machine) Graph() *dnn.Graph { return m.g }

// Analysis returns the vitality analysis the run was set up with.
func (m *Machine) Analysis() *vitality.Analysis { return m.a }

// Now returns the simulation clock.
func (m *Machine) Now() units.Time { return m.net.Now() }

// Loc reports where tensor id currently lives.
func (m *Machine) Loc(id int) uvm.Location { return m.states[id].loc }

// InFlight reports whether tensor id has a queued or flying migration.
func (m *Machine) InFlight(id int) bool { return m.states[id].pend != nil }

// GPUFree reports unreserved GPU memory.
func (m *Machine) GPUFree() units.Bytes { return m.cfg.GPUCapacity - m.gpuUsed }

// HostFree reports unreserved host memory (shared across a cluster's
// tenants).
func (m *Machine) HostFree() units.Bytes { return m.host.Free() }

// ResidentLRU lists GPU-resident tensors with no in-flight migration,
// least recently used first. The list is maintained incrementally as
// tensors move. The returned slice is scratch owned by the Machine — the
// caller may reorder it freely but must not retain it past the next call
// (policies consume it inside one MakeRoom decision).
func (m *Machine) ResidentLRU() []int {
	out := m.lruScratch[:0]
	for id := m.lruHead; id >= 0; id = m.states[id].lruNext {
		out = append(out, id)
	}
	m.lruScratch = out
	return out
}

// ---- Memory operations ----

// alloc places an unallocated tensor into GPU memory. Reports false when
// there is no room.
func (m *Machine) alloc(id int) bool {
	st := &m.states[id]
	if st.loc != uvm.Unmapped {
		return true
	}
	if m.gpuUsed+st.t.Size > m.cfg.GPUCapacity {
		return false
	}
	m.gpuUsed += st.t.Size
	m.untrack(st)
	st.loc = uvm.InGPU
	st.lastUse = m.Now()
	m.track(st)
	m.pt.MapRange(st.va, m.pagesOf(st.t), uvm.InGPU, st.va>>21)
	return true
}

// seed places a tensor at simulation start: GPU if it fits, then host,
// then flash. Used for the initial residency of global tensors.
func (m *Machine) seed(id int) error {
	st := &m.states[id]
	if m.alloc(id) {
		return nil
	}
	size := st.t.Size
	if m.reserveHost(size) {
		m.untrack(st)
		st.loc = uvm.InHost
		m.track(st)
		m.pt.MapRange(st.va, m.pagesOf(st.t), uvm.InHost, st.va>>21)
		return nil
	}
	rng, err := m.dev.Alloc(m.dev.PagesFor(size))
	if err != nil {
		return fmt.Errorf("gpu: seeding %s: %w", st.t.Name, err)
	}
	st.flash, st.hasRng = rng, true
	if _, err := m.dev.Write(rng); err != nil {
		return fmt.Errorf("gpu: seeding %s: %w", st.t.Name, err)
	}
	m.refreshSSDWrite()
	m.untrack(st)
	st.loc = uvm.InFlash
	m.track(st)
	m.pt.MapRange(st.va, m.pagesOf(st.t), uvm.InFlash, uint64(rng.Start))
	return nil
}

// free releases a tensor wherever it lives. In-flight migrations mark the
// tensor dying and release on completion.
func (m *Machine) free(id int) {
	st := &m.states[id]
	if st.fly != nil {
		st.dying = true
		return
	}
	m.clearPend(st) // cancel anything queued
	m.release(st)
}

func (m *Machine) release(st *tensorState) {
	m.untrack(st)
	defer m.track(st)
	if mig := st.mig; mig != nil {
		// A tensor freed mid-migration: return whatever the chunks hold.
		if mig.kind == uvm.PreEvict {
			m.gpuUsed -= mig.size - mig.moved // chunks still in GPU
			if mig.dst == uvm.InHost {
				m.host.ReleaseFor(m.idx, mig.size) // reservation made at start
			}
		} else {
			m.gpuUsed -= mig.moved + mig.chunk // chunks landed + reserved
			if mig.src == uvm.InHost {
				m.host.ReleaseFor(m.idx, mig.size)
			}
		}
		st.mig = nil
		st.fly = nil
		st.pend = nil
		m.putMigration(mig)
		if st.hasRng {
			m.dev.Free(st.flash)
			st.hasRng = false
		}
		m.pt.UnmapRange(st.va, m.pagesOf(st.t))
		m.tlb.InvalidateRange(st.va, m.pagesOf(st.t))
		st.loc = uvm.Unmapped
		st.dying = false
		return
	}
	switch st.loc {
	case uvm.InGPU:
		m.gpuUsed -= st.t.Size
	case uvm.InHost:
		m.host.ReleaseFor(m.idx, st.t.Size)
	}
	if st.hasRng {
		m.dev.Free(st.flash)
		st.hasRng = false
	}
	m.pt.UnmapRange(st.va, m.pagesOf(st.t))
	m.tlb.InvalidateRange(st.va, m.pagesOf(st.t))
	st.loc = uvm.Unmapped
	st.dying = false
}

// RequestEvict queues a migration of a GPU-resident tensor to dst
// (host or flash). Returns false when the tensor is not evictable now.
func (m *Machine) RequestEvict(id int, dst uvm.Location) bool {
	st := &m.states[id]
	if st.loc != uvm.InGPU || st.pend != nil {
		return false
	}
	if dst != uvm.InHost && dst != uvm.InFlash {
		return false
	}
	r := m.getRequest()
	*r = uvm.Request{Kind: uvm.PreEvict, TensorID: id, VA: st.va, Bytes: st.t.Size, Src: uvm.InGPU, Dst: dst}
	m.untrack(st)
	st.pend = r
	m.track(st)
	m.queues.Push(r)
	m.dispatch()
	return true
}

// RequestFetch queues a migration of an evicted tensor back to the GPU.
// kind selects demand (FaultFetch) or planned (Prefetch) semantics.
func (m *Machine) RequestFetch(id int, kind uvm.RequestKind) bool {
	return m.requestFetch(id, kind, false)
}

// RequestScheduledFetch queues a demand miss that the migration handler
// services as a planned transfer: it jumps to the fault queue (the current
// kernel is stalled on it) but runs at scheduled-transfer cost — how G10's
// instrumented runtime handles a tensor whose prefetch is late (§4.6).
func (m *Machine) RequestScheduledFetch(id int) bool {
	return m.requestFetch(id, uvm.FaultFetch, true)
}

func (m *Machine) requestFetch(id int, kind uvm.RequestKind, scheduled bool) bool {
	st := &m.states[id]
	late := scheduled // a scheduled fetch is by definition a deadline miss
	if st.pend != nil {
		if st.pend.Kind == uvm.PreEvict && st.fly == nil {
			// Still queued, not started: cancel the eviction instead.
			m.clearPend(st)
			return true
		}
		if kind == uvm.FaultFetch && st.pend.Kind == uvm.Prefetch && st.fly == nil && st.mig == nil {
			// Upgrade a queued (not yet started) prefetch to fault
			// priority: the kernel is now blocked on it — a planned
			// migration that missed its deadline.
			late = true
			m.clearPend(st)
		} else {
			return false
		}
	}
	if st.loc != uvm.InHost && st.loc != uvm.InFlash {
		return false
	}
	if late {
		// One deadline miss per late tensor, whether the plan's prefetch
		// was still queued (upgraded above) or never issued and the
		// instrumented runtime services it as a scheduled transfer (§4.6).
		m.lat.LateFetches++
	}
	r := m.getRequest()
	*r = uvm.Request{Kind: kind, TensorID: id, VA: st.va, Bytes: st.t.Size, Src: st.loc, Dst: uvm.InGPU, Scheduled: scheduled}
	m.untrack(st)
	st.pend = r
	m.track(st)
	m.queues.Push(r)
	m.dispatch()
	return true
}

// dispatch drains the migration metadata queues through the arbiter
// (Figure 10 steps 2–4): transfer sets are formed fault-first; requests
// that cannot start yet (a fetch with no free GPU memory) are requeued.
func (m *Machine) dispatch() {
	for {
		set := m.arb.NextTransferSet(&m.queues)
		if len(set) == 0 {
			return
		}
		progress := false
		for _, r := range set {
			st := &m.states[r.TensorID]
			if st.pend != r {
				m.putRequest(r) // stale: cancelled or superseded, and now unreferenced
				continue
			}
			if m.startFlow(r, st) {
				progress = true
			} else {
				m.queues.Push(r)
			}
		}
		if !progress {
			return
		}
	}
}

// startFlow launches (or resumes) a migration. Returns false if the
// request must wait: a fetch with no free GPU memory for its next chunk.
// The first call decides the final destination, allocates flash space, and
// computes latency and throughput inflation; subsequent calls continue the
// chunk chain.
func (m *Machine) startFlow(r *uvm.Request, st *tensorState) bool {
	if st.mig == nil {
		mig, ok := m.beginMigration(r, st)
		if !ok {
			return false
		}
		st.mig = mig
	}
	return m.startChunk(st)
}

// getMigration pops a pooled migration struct (or allocates the pool's
// first); putMigration returns one once nothing references it.
func (m *Machine) getMigration() *migration {
	if n := len(m.migPool); n > 0 {
		mig := m.migPool[n-1]
		m.migPool = m.migPool[:n-1]
		*mig = migration{}
		return mig
	}
	return &migration{}
}

func (m *Machine) putMigration(mig *migration) {
	m.migPool = append(m.migPool, mig)
}

// getRequest pops a pooled metadata-queue request. putRequest returns one —
// only at points where it provably sits in no queue (a committed migration's
// request, or a superseded request the dispatcher just popped), so a pooled
// request is never aliased by a live queue entry.
func (m *Machine) getRequest() *uvm.Request {
	if n := len(m.reqPool); n > 0 {
		r := m.reqPool[n-1]
		m.reqPool = m.reqPool[:n-1]
		*r = uvm.Request{}
		return r
	}
	return &uvm.Request{}
}

func (m *Machine) putRequest(r *uvm.Request) {
	m.reqPool = append(m.reqPool, r)
}

// beginMigration performs the once-per-tensor setup of a migration.
func (m *Machine) beginMigration(r *uvm.Request, st *tensorState) (*migration, bool) {
	size := st.t.Size
	mig := m.getMigration()
	mig.owner, mig.id, mig.kind, mig.src, mig.dst = m, r.TensorID, r.Kind, r.Src, r.Dst
	mig.size, mig.inflate, mig.latency = size, 1, m.cfg.DMALatency

	switch r.Kind {
	case uvm.PreEvict:
		if mig.dst == uvm.InHost && !m.reserveHost(size) {
			mig.dst = uvm.InFlash // host full: fall back to the SSD
		}
		if mig.dst == uvm.InFlash {
			if !st.hasRng {
				rng, err := m.dev.Alloc(m.dev.PagesFor(size))
				if err != nil {
					m.fail(fmt.Sprintf("ssd alloc: %v", err))
					m.putMigration(mig)
					return nil, false
				}
				st.flash = rng
				st.hasRng = true
			}
			mig.latency += m.cfg.SSD.WriteLatency
			if !m.pol.DirectFlash() {
				mig.latency += m.cfg.HostMediationOverhead
				mig.inflate = 1 / m.cfg.HostMediationEfficiency
			}
		}
		r.Dst = mig.dst

	case uvm.Prefetch, uvm.FaultFetch:
		if mig.src == uvm.InFlash {
			mig.latency += m.cfg.SSD.ReadLatency
			if !m.pol.DirectFlash() {
				mig.latency += m.cfg.HostMediationOverhead
				mig.inflate = 1 / m.cfg.HostMediationEfficiency
			}
			if err := m.dev.Read(st.flash); err != nil {
				m.fail(fmt.Sprintf("ssd read: %v", err))
				m.putMigration(mig)
				return nil, false
			}
		}
		if r.Kind == uvm.FaultFetch && !r.Scheduled {
			// Demand misses run at on-demand efficiency. With the
			// extended UVM (or a GPUDirect library) the miss is serviced
			// directly; through the host UVM driver it pays the full
			// fault round trip and a lower streaming efficiency.
			if m.pol.DirectFlash() && mig.src == uvm.InFlash {
				mig.latency += m.cfg.DirectFaultLatency
				mig.inflate = 1 / m.cfg.DirectFaultEfficiency
			} else {
				if m.pol.UsesUVM() {
					mig.latency += m.cfg.FaultLatency
				}
				mig.inflate = 1 / m.cfg.FaultEfficiency
			}
			m.faults++
			m.faultedBytes += size
		}
	default:
		m.putMigration(mig)
		return nil, false
	}
	mig.label = st.labels[r.Kind] // kind validated by the switch above
	mig.route = m.route(mig)
	return mig, true
}

// route returns the resources a migration's flows traverse: this tenant's
// PCIe link plus the substrate's shared SSD channels and host bus. The four
// slices are built once at bind time and shared read-only.
func (m *Machine) route(mig *migration) []*flownet.Resource {
	switch {
	case mig.kind == uvm.PreEvict && mig.dst == uvm.InFlash:
		return m.routes.evictFlash
	case mig.kind == uvm.PreEvict:
		return m.routes.evictHost
	case mig.src == uvm.InFlash:
		return m.routes.fetchFlash
	default:
		return m.routes.fetchHost
	}
}

// forceChunkReference switches migrations to the naive per-chunk reference
// path (a fresh flow per chunk, full rate recompute at every boundary);
// differential tests use it to pin the conveyor fast path bit-identical.
var forceChunkReference atomic.Bool

// ForceChunkReferenceForTest selects the retained per-chunk reference path
// for subsequent runs. Tests only; the conveyor is the production path.
func ForceChunkReferenceForTest(v bool) { forceChunkReference.Store(v) }

// nextChunk sizes and (for fetches) claims GPU memory for the migration's
// next chunk. Reports false when a fetch must wait for space — the memory
// claim is the semantic boundary that forces the slow path: a conveyor may
// only keep rolling while each chunk's destination memory is granted.
func (m *Machine) nextChunk(mig *migration) (units.Bytes, bool) {
	chunk := m.cfg.MigrationChunk
	if rem := mig.size - mig.moved; chunk > rem {
		chunk = rem
	}
	if mig.kind != uvm.PreEvict {
		if m.gpuUsed+chunk > m.cfg.GPUCapacity {
			return 0, false // wait for space
		}
		m.gpuUsed += chunk
	}
	return chunk, true
}

// startChunk launches the next chunk of a migration as a fresh flow. Fetch
// chunks claim GPU memory up front and return false (leaving the request
// queued) when none is free.
func (m *Machine) startChunk(st *tensorState) bool {
	mig := st.mig
	chunk, ok := m.nextChunk(mig)
	if !ok {
		return false
	}
	mig.chunk = chunk
	flowBytes := units.Bytes(float64(chunk) * mig.inflate)
	lat := mig.latency
	mig.latency = 0 // only the first chunk pays setup latency
	m.untrack(st)
	st.fly = m.net.StartAt(mig.label, flowBytes, m.Now()+lat, mig, mig.route...)
	st.fly.Owner = m.idx
	m.inflight++
	m.track(st)
	return true
}

// continueChunk advances a chunk train at one of its boundaries: the just-
// finished flow is succeeded in place on the same route (the conveyor fast
// path — no teardown, no recompute unless the flownet detects the event was
// impure). Memory-tight fetches and the test reference hook fall back to
// startChunk's fresh-flow slow path, which is observationally identical.
func (m *Machine) continueChunk(st *tensorState, f *flownet.Flow) bool {
	mig := st.mig
	if forceChunkReference.Load() || mig.latency != 0 {
		return m.startChunk(st)
	}
	chunk, ok := m.nextChunk(mig)
	if !ok {
		return false
	}
	mig.chunk = chunk
	flowBytes := units.Bytes(float64(chunk) * mig.inflate)
	m.untrack(st)
	st.fly = m.net.Succeed(f, flowBytes)
	m.inflight++
	m.track(st)
	return true
}

// refreshSSDWrite re-derives the shared ssd-write channel capacity after a
// device write: GC triggered by any tenant degrades the array's sustained
// write bandwidth for every tenant. Call after every dev.Write site.
func (m *Machine) refreshSSDWrite() {
	m.net.SetCapacity(m.sh.ssdWrite, m.dev.EffectiveWriteBandwidth())
}

func (m *Machine) fail(reason string) {
	if !m.failed {
		m.failed = true
		m.failReason = reason
	}
}

// deliver hands a completed flow back to the tenant that started it: a
// migration to its machine, a KV swap to its inference request.
func deliver(f *flownet.Flow) {
	switch d := f.Data.(type) {
	case *migration:
		d.owner.complete(f)
	case *kvTransfer:
		d.q.kvLanded(d)
	case *ckptOp:
		d.r.ckptLanded(d)
	}
}

// complete accounts a finished flow of this machine and advances its
// migration.
func (m *Machine) complete(f *flownet.Flow) {
	m.inflight--
	m.onComplete(f)
}

// onComplete advances a migration when one of its chunk flows finishes:
// intermediate chunks release (evict) GPU memory and continue the chain;
// the final chunk commits the location change, device write, page-table
// update and TLB shootdown.
func (m *Machine) onComplete(f *flownet.Flow) {
	mig, ok := f.Data.(*migration)
	if !ok {
		return
	}
	st := &m.states[mig.id]
	if st.fly != f || st.mig != mig {
		return // superseded (freed tensor)
	}
	m.untrack(st)
	st.fly = nil
	m.track(st)
	m.noteChunkDone(mig, f)
	mig.moved += mig.chunk
	if mig.kind == uvm.PreEvict {
		m.gpuUsed -= mig.chunk
		if mig.dst == uvm.InFlash {
			m.ledger.ssdOut += mig.chunk
		} else {
			m.ledger.hostOut += mig.chunk
		}
	} else {
		if mig.src == uvm.InFlash {
			m.ledger.ssdIn += mig.chunk
		} else {
			m.ledger.hostIn += mig.chunk
		}
	}
	mig.chunk = 0

	if st.dying {
		// Freed mid-migration: unwind partial state and stop the chain.
		m.release(st)
		return
	}
	if mig.moved < mig.size {
		// Continue the chain. A blocked fetch chunk goes back to its
		// metadata queue and resumes when memory frees.
		if !m.continueChunk(st, f) {
			m.queues.Push(st.pend)
		}
		return
	}

	// Final chunk: commit.
	m.untrack(st)
	req := st.pend // committed: provably in no metadata queue
	st.mig = nil
	st.pend = nil
	if req != nil {
		m.putRequest(req)
	}
	pages := m.pagesOf(st.t)
	switch mig.kind {
	case uvm.PreEvict:
		st.loc = mig.dst
		if mig.dst == uvm.InFlash {
			if _, err := m.dev.Write(st.flash); err != nil {
				m.fail(fmt.Sprintf("ssd write: %v", err))
				m.track(st)
				m.putMigration(mig)
				return
			}
			m.refreshSSDWrite()
			m.pt.MapRange(st.va, pages, uvm.InFlash, uint64(st.flash.Start))
		} else {
			m.pt.MapRange(st.va, pages, uvm.InHost, st.va>>21)
		}
	case uvm.Prefetch, uvm.FaultFetch:
		if mig.src == uvm.InHost {
			m.host.ReleaseFor(m.idx, mig.size)
		}
		st.loc = uvm.InGPU
		st.lastUse = m.Now()
		m.pt.MapRange(st.va, pages, uvm.InGPU, st.va>>21)
	}
	m.track(st)
	m.tlb.InvalidateRange(st.va, pages)
	m.putMigration(mig)
	if st.dying {
		m.release(st)
	}
}

// cancelStalledFetches rolls back partially completed fetches that are
// blocked on memory for tensors outside the pinned set, releasing the GPU
// bytes their completed chunks hold. Copies are non-destructive, so the
// source copy is still intact; the queued request restarts the migration
// later. Returns the bytes released.
func (m *Machine) cancelStalledFetches(pinned map[int]bool) units.Bytes {
	var freed units.Bytes
	for id := range m.states {
		st := &m.states[id]
		mig := st.mig
		if mig == nil || mig.kind == uvm.PreEvict || st.fly != nil || pinned[id] {
			continue
		}
		// Blocked mid-fetch: release landed chunks; the tensor is still
		// whole at its source. Drop the request too, so the retry does
		// not immediately reclaim the freed memory ahead of the blocked
		// kernel's own fetches (the policy re-issues it later).
		m.gpuUsed -= mig.moved
		freed += mig.moved
		m.untrack(st)
		st.mig = nil
		st.pend = nil
		m.track(st)
		m.putMigration(mig)
	}
	return freed
}

// advanceTo moves simulated time forward, delivering flow completions at
// the moment they land (a test helper; production runs are advanced by the
// drivers in cluster.go, which use the same event-wise semantics).
func (m *Machine) advanceTo(t units.Time) {
	m.net.AdvanceEventwise(t, func(done []*flownet.Flow) {
		for _, f := range done {
			deliver(f)
		}
		m.dispatch()
	})
	m.dispatch()
}

// waitNext advances to the next network event; reports false if the
// network is idle (nothing will ever complete).
func (m *Machine) waitNext() bool {
	e := m.net.NextEvent()
	if e == units.Forever {
		return false
	}
	m.advanceTo(e)
	return true
}

// touch records a use for LRU ordering and models the translation lookup.
func (m *Machine) touch(id int) {
	st := &m.states[id]
	m.untrack(st)
	st.lastUse = m.Now()
	m.track(st)
	if _, hit := m.tlb.Lookup(st.va); !hit {
		m.walkPenalty += m.cfg.PTWalkLatency
		if pte, ok := m.pt.Translate(st.va); ok {
			m.tlb.Insert(st.va, pte)
		}
	}
}

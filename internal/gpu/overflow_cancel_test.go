package gpu

import (
	"strings"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// oversizedWorkload builds a one-kernel graph whose working set (a 100MB
// weight plus a 1MB intermediate) exceeds a 10MB GPU.
func oversizedWorkload(t *testing.T) *vitality.Analysis {
	t.Helper()
	b := dnn.NewBuilder("fat", 1)
	w := b.Tensor("W", dnn.Global, 100*units.MB)
	x := b.Tensor("X", dnn.Intermediate, units.MB)
	b.Kernel("k", dnn.Forward, 1, []*dnn.Tensor{w, x}, []*dnn.Tensor{x})
	g := b.MustBuild()
	a, err := vitality.Analyze(g, &profile.Trace{Durations: []units.Duration{units.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestStreamOverflowCountersUVM: a working set above GPU memory streams
// under a UVM policy, and every ledger and fault counter reflects exactly
// the streamed volume.
func TestStreamOverflowCountersUVM(t *testing.T) {
	a := oversizedWorkload(t)
	cfg := testCfg(10*units.MB, units.GB)
	res, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: "uvm"}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("UVM run failed: %s", res.FailReason)
	}
	const streamed = 100 * units.MB // the host-resident weight streams; X fits
	if res.OverflowKernels != 1 {
		t.Errorf("overflow kernels = %d, want 1", res.OverflowKernels)
	}
	if res.OverflowBytes != streamed {
		t.Errorf("overflow bytes = %v, want %v", res.OverflowBytes, streamed)
	}
	// Faults are charged per 32MB fault group of the streamed volume.
	wantGroups := int64(units.PagesFor(streamed, 32*units.MB))
	if res.Faults != wantGroups {
		t.Errorf("faults = %d, want %d fault groups", res.Faults, wantGroups)
	}
	if res.FaultedBytes != streamed {
		t.Errorf("faulted bytes = %v, want %v", res.FaultedBytes, streamed)
	}
	// The weight streams in from host memory over the measured iteration;
	// nothing is written back out (X lives in GPU memory).
	if res.HostToGPU != streamed {
		t.Errorf("host->gpu ledger = %v, want %v", res.HostToGPU, streamed)
	}
	if res.GPUToHost != 0 || res.SSDToGPU != 0 || res.GPUToSSD != 0 {
		t.Errorf("unexpected traffic: gpu->host %v, ssd->gpu %v, gpu->ssd %v",
			res.GPUToHost, res.SSDToGPU, res.GPUToSSD)
	}
	// The streaming penalty shows up as stall time on top of the trace.
	if res.StallTime <= 0 {
		t.Errorf("stall time = %v; overflow streaming charged nothing", res.StallTime)
	}
}

// TestStreamOverflowFailsNonUVM: the same workload under a FlashNeuron-
// style (non-UVM) manager must abort with the footnote-1 reason and move
// nothing.
func TestStreamOverflowFailsNonUVM(t *testing.T) {
	a := oversizedWorkload(t)
	cfg := testCfg(10*units.MB, units.GB)
	res, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: "strict", strict: true}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("non-UVM policy executed a working set above GPU memory")
	}
	if !strings.Contains(res.FailReason, "exceeds GPU memory") {
		t.Errorf("fail reason %q does not state the footnote-1 cause", res.FailReason)
	}
	if res.OverflowKernels != 0 || res.OverflowBytes != 0 {
		t.Errorf("failed run recorded overflow streaming: %d kernels, %v",
			res.OverflowKernels, res.OverflowBytes)
	}
}

// scanPendBytes recomputes the machine's incremental pending-fetch and
// pending-eviction byte counters from a fresh scan over every tensor state.
func scanPendBytes(m *Machine) (fetch, evict units.Bytes) {
	for i := range m.states {
		st := &m.states[i]
		if st.pend == nil {
			continue
		}
		if st.pend.Kind == uvm.PreEvict {
			evict += st.t.Size
		} else if st.fly == nil {
			fetch += st.t.Size
		}
	}
	return fetch, evict
}

// checkPendCounters compares the incremental counters against a fresh scan.
func checkPendCounters(t *testing.T, m *Machine, when string) {
	t.Helper()
	fetch, evict := scanPendBytes(m)
	if m.pendFetchBytes != fetch {
		t.Errorf("%s: pendFetchBytes = %v, fresh scan %v", when, m.pendFetchBytes, fetch)
	}
	if m.evictPendBytes != evict {
		t.Errorf("%s: evictPendBytes = %v, fresh scan %v", when, m.evictPendBytes, evict)
	}
}

// TestCancelStalledFetchesRollsBackExactly: a fetch blocked mid-chain is
// rolled back; the bytes reported freed match the GPU-memory delta, the
// source copy survives, and the incremental pend counters agree with a
// fresh scan before and after.
func TestCancelStalledFetchesRollsBackExactly(t *testing.T) {
	cfg := testCfg(130*units.MB, units.GB)
	cfg.MigrationChunk = 10 * units.MB
	m, ids := twoTensorMachine(t, cfg)

	// Park A (100MB) in host memory.
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InHost)
	for m.Loc(ids["A"]) == uvm.InGPU {
		if !m.waitNext() {
			t.Fatal("eviction stuck")
		}
	}
	// Occupy 50MB with B, then fetch A back: 8 of its 10 chunks fit
	// (50 + 80 = 130), the 9th blocks.
	if !m.alloc(ids["B"]) {
		t.Fatal("alloc B failed")
	}
	if !m.RequestFetch(ids["A"], uvm.Prefetch) {
		t.Fatal("fetch rejected")
	}
	for m.waitNext() {
	}
	stA := &m.states[ids["A"]]
	if stA.mig == nil || stA.fly != nil {
		t.Fatalf("A not blocked mid-fetch: mig=%v fly=%v", stA.mig, stA.fly)
	}
	landed := stA.mig.moved
	if landed != 80*units.MB {
		t.Fatalf("landed chunks = %v, want 80MB", landed)
	}
	checkPendCounters(t, m, "before cancel")

	freeBefore := m.GPUFree()
	hostBefore := m.host.Used()
	freed := m.cancelStalledFetches(map[int]bool{ids["B"]: true})
	if freed != landed {
		t.Errorf("cancel reported %v freed, landed chunks were %v", freed, landed)
	}
	if got := m.GPUFree() - freeBefore; got != freed {
		t.Errorf("GPU free grew by %v, cancel claimed %v", got, freed)
	}
	checkPendCounters(t, m, "after cancel")
	if stA.pend != nil || stA.mig != nil {
		t.Error("cancelled fetch left request/migration state behind")
	}
	if m.Loc(ids["A"]) != uvm.InHost {
		t.Errorf("A at %v; the host source copy must survive a rollback", m.Loc(ids["A"]))
	}
	if m.host.Used() != hostBefore {
		t.Errorf("host pool changed across rollback: %v -> %v", hostBefore, m.host.Used())
	}

	// The fetch restarts cleanly afterwards.
	if !m.RequestFetch(ids["A"], uvm.Prefetch) {
		t.Fatal("re-fetch rejected after rollback")
	}
	m.free(ids["B"])
	for m.Loc(ids["A"]) != uvm.InGPU {
		if !m.waitNext() {
			t.Fatal("re-fetch stuck")
		}
	}
	checkPendCounters(t, m, "after re-fetch")
}

// TestCancelStalledFetchesSkipsPinnedAndFlying: pinned tensors and fetches
// with a chunk in flight are left alone.
func TestCancelStalledFetchesSkipsPinnedAndFlying(t *testing.T) {
	cfg := testCfg(130*units.MB, units.GB)
	cfg.MigrationChunk = 10 * units.MB
	m, ids := twoTensorMachine(t, cfg)
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InHost)
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
	m.alloc(ids["B"])
	m.RequestFetch(ids["A"], uvm.Prefetch)

	// First chunk is still in flight: nothing to cancel.
	if freed := m.cancelStalledFetches(nil); freed != 0 {
		t.Errorf("cancelled %v from an in-flight fetch", freed)
	}
	for m.waitNext() {
	}
	// Blocked now, but pinned: still nothing.
	if freed := m.cancelStalledFetches(map[int]bool{ids["A"]: true}); freed != 0 {
		t.Errorf("cancelled %v from a pinned fetch", freed)
	}
	checkPendCounters(t, m, "after pinned no-op")
}

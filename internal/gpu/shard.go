// Sharded cluster driver: conservative parallel discrete-event simulation
// over the same tenant step machines driveEvents advances.
//
// Tenants are partitioned into contiguous shards; each shard owns its
// scheduler bookkeeping — kernel-end heap, ready set, wake buffer, step
// counter — and a crew of goroutines advances that bookkeeping concurrently
// between barriers. Everything that can touch cross-tenant state (tenant
// steps mutating the shared host pool, flash array, and flow network; event
// delivery; arrival admission) runs on the coordinator in global tenant
// index order, which is exactly the order driveEvents uses: shards are
// contiguous index ranges, so concatenating per-shard wake lists in shard
// order reproduces the global ascending-index wake order. The shared-clock
// horizon is conservative — the minimum over every shard's earliest private
// event (kernel end), the next arrival, and the network's next event — so
// no shard ever observes state from beyond the barrier.
//
// The multi-core work under this driver is in the flow network itself:
// SetWorkers lets each rate re-derivation fill independent flow/resource
// components concurrently (flownet/components.go), and the sharded crew
// drains per-shard wake and heap state in parallel. Both merge in fixed
// shard/component order, so the result is byte-identical to driveEvents at
// any shard count — pinned by TestShardedMatchesSequential and the sharded
// golden-figure run.

package gpu

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"g10sim/internal/flownet"
	"g10sim/internal/units"
)

// shardSpan is one shard's contiguous tenant index range [lo, hi).
type shardSpan struct{ lo, hi int }

// planShards partitions n tenants into at most k contiguous, balanced
// shards. All tenants currently share one resource-reachability class —
// every migration route can touch the shared SSD channels and host DRAM bus
// — so balancing tenant counts is the whole plan; contiguity is what makes
// the per-shard wake order concatenate into the global index order.
func planShards(n, k int) []shardSpan {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	spans := make([]shardSpan, 0, k)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		if lo < hi {
			spans = append(spans, shardSpan{lo, hi})
		}
	}
	return spans
}

// shard is one shard's scheduler state. ready and execH are touched only by
// this shard's crew task or by the coordinator between barriers, never
// both at once.
type shard struct {
	span  shardSpan
	ready *wakeSet
	execH execHeap
	wake  []int
	steps int64
	// next is the shard's earliest private event, filled at the horizon
	// fold.
	next units.Time
}

// shardCrew runs one phase function over every shard on a fixed pool of
// goroutines, with a barrier at the end of each phase. The phase field is
// published by the channel sends and joined by the WaitGroup, so phases
// are totally ordered with the coordinator's sequential work.
type shardCrew struct {
	shards []shard
	work   chan int
	wg     sync.WaitGroup
	phase  func(*shard)
}

func newShardCrew(shards []shard, workers int) *shardCrew {
	c := &shardCrew{shards: shards, work: make(chan int, len(shards))}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range c.work {
				c.phase(&c.shards[i])
				c.wg.Done()
			}
		}()
	}
	return c
}

// run executes phase over every shard and returns after all finished.
func (c *shardCrew) run(phase func(*shard)) {
	c.phase = phase
	c.wg.Add(len(c.shards))
	for i := range c.shards {
		c.work <- i
	}
	c.wg.Wait()
}

func (c *shardCrew) stop() { close(c.work) }

// driveSharded schedules the tenants like driveEvents, with per-shard
// bookkeeping advanced concurrently and all shared-state mutation
// serialized at the barrier in global index order.
func driveSharded(net *flownet.Network, tenants []*runner, nshards int, faults *faultClock, steps *int64) error {
	n := len(tenants)
	spans := planShards(n, nshards)
	if len(spans) <= 1 {
		return driveEvents(net, tenants, faults, steps)
	}
	// Rate re-derivations inside the shared advance may fill independent
	// flow components concurrently on the same budget.
	net.SetWorkers(len(spans))

	shards := make([]shard, len(spans))
	shardOf := make([]int, n)
	for si, sp := range spans {
		shards[si] = shard{span: sp, ready: newWakeSet(n)}
		for i := sp.lo; i < sp.hi; i++ {
			shardOf[i] = si
		}
	}
	queued := newWakeSet(n)

	// Jobs arriving mid-simulation: one global (arrival, index)-ordered
	// queue, admitted on the coordinator — admission seeds tensors into the
	// shared pool and array, so its order is part of the bit-identity
	// contract.
	var arrivals []int
	for i, r := range tenants {
		if r.arrival > 0 {
			r.phase = phasePending
			arrivals = append(arrivals, i)
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		a, b := tenants[arrivals[i]], tenants[arrivals[j]]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		return a.idx < b.idx
	})
	arrCursor := 0

	// Host-pool grants mark the owner ready in its own shard; grants fire
	// only during coordinator-sequential phases (steps and delivery).
	for _, r := range tenants {
		r := r
		s := &shards[shardOf[r.idx]]
		r.onHostWake = func() {
			r.hostSubscribed = false
			s.ready.set(r.idx)
		}
	}

	remaining := n
	for _, r := range tenants {
		if r.phase == phasePending {
			continue
		}
		if err := r.start(); err != nil {
			return err
		}
		shards[shardOf[r.idx]].ready.set(r.idx)
	}

	workers := len(spans)
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	crew := newShardCrew(shards, workers)
	defer crew.stop()

	for {
		// Parallel phase: each shard drains its ready set into its wake
		// buffer (ascending indices within the shard).
		crew.run(func(s *shard) { s.wake = s.ready.drain(s.wake[:0]) })

		// Step round on the coordinator, shards in order — the global
		// ascending index order driveEvents steps in.
		for si := range shards {
			s := &shards[si]
			for _, i := range s.wake {
				r := tenants[i]
				if r.phase == phaseDone || r.phase == phasePending || r.phase == phaseCrashed {
					continue
				}
				s.steps++
				r.step()
				if r.err != nil {
					return r.err
				}
				switch r.phase {
				case phaseDone:
					remaining--
				case phaseExec:
					if !r.inExecHeap {
						r.inExecHeap = true
						heap.Push(&s.execH, execEntry{at: r.execEnd, idx: i})
					}
				}
				if r.queuedWork() {
					queued.set(i)
				} else {
					queued.clear(i)
				}
			}
		}
		again := false
		for si := range shards {
			if shards[si].ready.any() {
				again = true
				break
			}
		}
		if again {
			continue
		}
		if remaining == 0 {
			break
		}

		// Conservative horizon: fold each shard's earliest private event
		// with the next arrival and the network's next event. The union of
		// the shard heaps is driveEvents' global heap, so the minimum is
		// identical.
		next := units.Forever
		for si := range shards {
			s := &shards[si]
			s.next = units.Forever
			if len(s.execH) > 0 {
				s.next = s.execH[0].at
			}
			next = units.MinTime(next, s.next)
		}
		if arrCursor < len(arrivals) {
			next = units.MinTime(next, tenants[arrivals[arrCursor]].arrival)
		}
		next = units.MinTime(next, units.MinTime(net.NextEvent(), faults.next()))
		if next == units.Forever {
			return fmt.Errorf("gpu: cluster stalled with no pending events")
		}

		// Shared advance on the coordinator: delivery routes each
		// completion's owner to its shard's ready set; queued metadata
		// re-dispatches in global index order, as in driveEvents.
		net.AdvanceEventwise(next, func(done []*flownet.Flow) {
			for _, f := range done {
				deliver(f)
				if o := f.Owner; o >= 0 {
					shards[shardOf[o]].ready.set(o)
					if tenants[o].queuedWork() {
						queued.set(o)
					} else {
						queued.clear(o)
					}
				}
			}
			queued.forEach(func(i int) {
				r := tenants[i]
				r.redispatch()
				if !r.queuedWork() {
					queued.clear(i)
				}
			})
		})
		now := net.Now()

		// Parallel phase: each shard pops its due kernel-end entries.
		crew.run(func(s *shard) {
			for len(s.execH) > 0 && s.execH[0].at <= now {
				e := heap.Pop(&s.execH).(execEntry)
				tenants[e.idx].inExecHeap = false
				s.ready.set(e.idx)
			}
		})
		// Fault pump point, on the coordinator between barriers — the same
		// position as driveEvents (post-advance, post-pop, pre-arrival), so
		// faulted runs stay byte-identical at any shard count.
		if faults != nil {
			finished, err := faults.apply(now, func(i int) { shards[shardOf[i]].ready.set(i) })
			if err != nil {
				return err
			}
			remaining -= finished
		}
		for arrCursor < len(arrivals) && tenants[arrivals[arrCursor]].arrival <= now {
			r := tenants[arrivals[arrCursor]]
			arrCursor++
			if err := r.admit(); err != nil {
				return err
			}
			shards[shardOf[r.idx]].ready.set(r.idx)
		}
	}

	// Deterministic merge: fold per-shard step counters in shard order.
	for si := range shards {
		*steps += shards[si].steps
	}
	return nil
}

package gpu

import (
	"fmt"
	"reflect"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
)

// runBothDrivers executes the same cluster parameters under the
// event-driven scheduler and the retained polling reference.
func runBothDrivers(t testing.TB, build func() ClusterParams) (event, polling ClusterResult) {
	t.Helper()
	event = mustRunCluster(t, build())
	p := build()
	p.Driver = DriverPolling
	polling = mustRunCluster(t, p)
	return event, polling
}

func mustRunCluster(t testing.TB, p ClusterParams) ClusterResult {
	t.Helper()
	res, err := RunCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEventDriverMatchesPolling: the event-driven scheduler must reproduce
// the polling reference bit for bit — heterogeneous tenants, tight and
// roomy host pools, strict (FlashNeuron-style) and UVM policies, and
// dynamic arrivals.
func TestEventDriverMatchesPolling(t *testing.T) {
	for _, tc := range []struct {
		name     string
		hostCap  units.Bytes
		strict   bool
		arrivals []units.Time
	}{
		{"tight-host", 4 * units.MB, false, nil},
		{"mid-host", 24 * units.MB, false, nil},
		{"roomy-host", 256 * units.MB, false, nil},
		{"strict", 256 * units.MB, true, nil},
		{"staggered-arrivals", 24 * units.MB, false, []units.Time{0, 5 * units.Millisecond, 20 * units.Millisecond}},
		{"same-time-arrivals", 8 * units.MB, false, []units.Time{0, 10 * units.Millisecond, 10 * units.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a1 := analyze(t, models.TinyCNN(128), 200)
			a2 := analyze(t, models.TinyMLP(64), 50)
			build := func() ClusterParams {
				cfg1 := testCfg(a1.PeakAlive()/2, tc.hostCap)
				cfg2 := testCfg(a2.PeakAlive()/2, tc.hostCap)
				p := ClusterParams{
					Tenants: []ClusterTenant{
						{Analysis: a1, Policy: &testPolicy{name: "t1", strict: tc.strict}, Config: cfg1},
						{Analysis: a2, Policy: &testPolicy{name: "t2"}, Config: cfg2},
						{Analysis: a1, Policy: &testPolicy{name: "t3"}, Config: cfg1},
					},
					Shared: cfg1,
				}
				for i := range tc.arrivals {
					p.Tenants[i].ArrivalTime = tc.arrivals[i]
				}
				return p
			}
			ev, poll := runBothDrivers(t, build)
			if !reflect.DeepEqual(ev, poll) {
				t.Errorf("event-driven diverged from polling reference:\nevent:   %+v\npolling: %+v", ev, poll)
			}
		})
	}
}

// TestClusterArrivalSemantics: a dynamically arriving job is admitted at
// its arrival time, its span starts there, and its presence perturbs a
// neighbour only after it joins.
func TestClusterArrivalSemantics(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(a.PeakAlive()/2, 8*units.MB)
	solo := mustRunCluster(t, ClusterParams{
		Tenants: []ClusterTenant{{Analysis: a, Policy: &testPolicy{name: "solo"}, Config: cfg}},
		Shared:  cfg,
	})
	soloSpan := solo.Spans[0].Duration()

	late := units.Time(soloSpan) * 3 // arrives after tenant 0 finished
	staggered := mustRunCluster(t, ClusterParams{
		Tenants: []ClusterTenant{
			{Analysis: a, Policy: &testPolicy{name: "solo"}, Config: cfg},
			{Analysis: a, Policy: &testPolicy{name: "late"}, Config: cfg, ArrivalTime: late},
		},
		Shared: cfg,
	})
	if got := staggered.Spans[1].Arrival; got != late {
		t.Errorf("late tenant arrival = %v, want %v", got, late)
	}
	if staggered.Spans[1].Finish < late {
		t.Errorf("late tenant finished %v before its arrival %v", staggered.Spans[1].Finish, late)
	}
	// A job arriving after the first finished must not slow it down: the
	// first tenant's result matches its solo run exactly.
	if !reflect.DeepEqual(staggered.Tenants[0], solo.Tenants[0]) {
		t.Errorf("tenant 0 perturbed by a job arriving after it finished:\nwith:    %+v\nwithout: %+v",
			staggered.Tenants[0], solo.Tenants[0])
	}
	// The late tenant runs alone on an aged array: its span must be at
	// least its solo span (GC state can only slow it).
	if staggered.Spans[1].Duration() < soloSpan {
		t.Errorf("late tenant span %v below solo span %v", staggered.Spans[1].Duration(), soloSpan)
	}
	if staggered.Makespan != units.Duration(staggered.Spans[1].Finish) {
		t.Errorf("makespan %v != last finish %v", staggered.Makespan, staggered.Spans[1].Finish)
	}
}

// scalingParams builds an N-tenant cluster for the scaling tests:
// per-tenant GPU pressure forces migrations, the shared host pool scales
// with N so per-tenant behaviour stays comparable across sizes, and each
// tenant replays a slightly perturbed exec trace so kernel boundaries
// interleave instead of coinciding (a fleet's events are not synchronised;
// a polling scheduler pays for every tenant at each of them).
func scalingParams(t testing.TB, n int) ClusterParams {
	t.Helper()
	a := analyze(t, models.TinyCNN(64), 200)
	cfg := testCfg(a.PeakAlive()/2, 0)
	cfg.HostCapacity = units.Bytes(n) * 64 * units.MB
	p := ClusterParams{Shared: cfg}
	for i := 0; i < n; i++ {
		exec := &profile.Trace{Durations: make([]units.Duration, len(a.Trace.Durations))}
		for k, d := range a.Trace.Durations {
			exec.Durations[k] = d + d*units.Duration(i)/100
		}
		p.Tenants = append(p.Tenants, ClusterTenant{
			Analysis: a, Policy: &testPolicy{name: fmt.Sprintf("t%d", i)}, Config: cfg,
			ExecTrace: exec,
		})
	}
	return p
}

// stepsFor runs an n-tenant cluster and reports the step-machine
// invocations it cost.
func stepsFor(t testing.TB, n int) int64 {
	t.Helper()
	var steps int64
	p := scalingParams(t, n)
	p.StepCount = &steps
	mustRunCluster(t, p)
	return steps
}

// TestClusterScalingNearLinear pins the tentpole property: total
// step-machine iterations grow near-linearly in tenant count (the polling
// scheduler was quadratic — every tenant stepped on every event). The
// 64-tenant run may cost at most ~1.5x the linear extrapolation of the
// 16-tenant run.
func TestClusterScalingNearLinear(t *testing.T) {
	s16 := stepsFor(t, 16)
	s64 := stepsFor(t, 64)
	linear := 4 * s16
	if s64 > linear+linear/2 {
		t.Errorf("64-tenant steps %d exceed 1.5x linear extrapolation %d of 16-tenant steps %d",
			s64, linear+linear/2, s16)
	}
	t.Logf("steps: 16 tenants = %d, 64 tenants = %d (linear would be %d)", s16, s64, linear)
}

// BenchmarkClusterScaling measures the cluster engine at fleet sizes, with
// a shards dimension at the large ones; the steps/op metric is the
// scheduler-cost figure the near-linear claim is about (ns/op includes the
// simulation work itself, which also grows with tenant count). Sharded and
// sequential runs produce byte-identical results, so steps/op matches
// across the shards dimension by construction.
func BenchmarkClusterScaling(b *testing.B) {
	for _, bc := range []struct{ n, shards int }{
		{1, 0}, {4, 0}, {16, 0}, {64, 0},
		{256, 0}, {256, 2}, {256, 4}, {256, 8},
		{1024, 0}, {1024, 8},
	} {
		name := fmt.Sprintf("%d", bc.n)
		if bc.shards > 0 {
			name = fmt.Sprintf("%d/shards=%d", bc.n, bc.shards)
		}
		b.Run(name, func(b *testing.B) {
			p := scalingParams(b, bc.n)
			p.Shards = bc.shards
			var steps int64
			p.StepCount = &steps
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh policies per run: they carry per-run state.
				for j := range p.Tenants {
					p.Tenants[j].Policy = &testPolicy{name: fmt.Sprintf("t%d", j)}
				}
				mustRunCluster(b, p)
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
			b.ReportMetric(float64(steps)/float64(b.N)/float64(bc.n), "steps/tenant")
		})
	}
}

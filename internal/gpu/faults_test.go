package gpu

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/units"
)

// testRecovery checkpoints at a fixed cadence (0 = never) — a local
// Recovery so gpu's tests do not depend on internal/policy.
type testRecovery struct{ every int }

func (r testRecovery) Name() string { return "test" }
func (r testRecovery) CheckpointInterval(_, _, _ units.Duration) int {
	return r.every
}

// faultTestParams builds a three-tenant pressured cluster (GPU capacity at
// half of peak forces constant migration traffic) with the given fault plan
// and recovery cadence on every tenant.
func faultTestParams(t testing.TB, plan *FaultPlan, every int, iters int) func() ClusterParams {
	t.Helper()
	a1 := analyze(t, models.TinyCNN(128), 200)
	a2 := analyze(t, models.TinyMLP(64), 50)
	return func() ClusterParams {
		cfg1 := testCfg(a1.PeakAlive()/2, 8*units.MB)
		cfg2 := testCfg(a2.PeakAlive()/2, 8*units.MB)
		if iters > 0 {
			cfg1.Iterations = iters
			cfg2.Iterations = iters
		}
		p := ClusterParams{
			Tenants: []ClusterTenant{
				{Analysis: a1, Policy: &testPolicy{name: "t1"}, Config: cfg1, Recovery: testRecovery{every}},
				{Analysis: a2, Policy: &testPolicy{name: "t2"}, Config: cfg2, Recovery: testRecovery{every}},
				{Analysis: a1, Policy: &testPolicy{name: "t3"}, Config: cfg1, Recovery: testRecovery{every}},
			},
			Shared: cfg1,
			Faults: plan,
		}
		return p
	}
}

// makespanOf runs the fault-free cluster once to anchor crash times.
func makespanOf(t testing.TB, build func() ClusterParams) units.Time {
	t.Helper()
	res := mustRunCluster(t, build())
	return units.Time(res.Makespan)
}

// TestFaultedDriversMatch: a run with crashes (one permanent), a link
// degradation window, and a die failure must be byte-identical across the
// event, polling, and sharded drivers at shard counts 1–3 — the fault pump
// point preserves the engines' equivalence contract.
func TestFaultedDriversMatch(t *testing.T) {
	H := makespanOf(t, faultTestParams(t, nil, 0, 3))
	plan := &FaultPlan{
		Crashes: []CrashFault{
			{Tenant: 0, At: H / 4, RepairAfter: units.Duration(H / 10)},
			{Tenant: 2, At: H / 2, RepairAfter: -1}, // permanent
		},
		Degrades: []LinkDegrade{{Tenant: 1, From: H / 8, Until: H / 2, Factor: 0.25}},
		DieFails: []DieFail{{At: H / 3, Dies: 2}},
	}
	build := faultTestParams(t, plan, 1, 3)
	ev, poll := runBothDrivers(t, build)
	if !reflect.DeepEqual(ev, poll) {
		t.Errorf("faulted event run diverged from polling:\nevent:   %+v\npolling: %+v", ev, poll)
	}
	for _, shards := range []int{2, 3} {
		p := build()
		p.Shards = shards
		sh := mustRunCluster(t, p)
		if !reflect.DeepEqual(ev, sh) {
			t.Errorf("faulted sharded run (%d shards) diverged:\nevent:   %+v\nsharded: %+v", shards, ev, sh)
		}
	}
	if ev.Tenants[0].Restarts != 1 {
		t.Errorf("tenant 0 restarts = %d, want 1", ev.Tenants[0].Restarts)
	}
	if !ev.Tenants[2].Failed || !strings.Contains(ev.Tenants[2].FailReason, "crashed") {
		t.Errorf("permanently crashed tenant 2: failed=%v reason=%q", ev.Tenants[2].Failed, ev.Tenants[2].FailReason)
	}
}

// TestIdleCrashInstantRepairIsNoop: crashing a server whose job has not
// arrived (and instantly repairing it) must leave the run byte-identical to
// the fault-free one — crashes only affect running jobs.
func TestIdleCrashInstantRepairIsNoop(t *testing.T) {
	arrival := 20 * units.Millisecond
	withArrival := func(plan *FaultPlan) func() ClusterParams {
		base := faultTestParams(t, plan, 0, 0)
		return func() ClusterParams {
			p := base()
			p.Tenants[1].ArrivalTime = arrival
			return p
		}
	}
	clean := mustRunCluster(t, withArrival(nil)())
	plan := &FaultPlan{Crashes: []CrashFault{{Tenant: 1, At: arrival / 2, RepairAfter: 0}}}
	faulted := mustRunCluster(t, withArrival(plan)())
	if !reflect.DeepEqual(clean, faulted) {
		t.Errorf("idle crash + instant repair perturbed the run:\nclean:   %+v\nfaulted: %+v", clean, faulted)
	}
}

// TestMidExecutionCrashAborts sweeps the crash over the run — hitting
// kernels mid-execution and migrations mid-flight — and checks each driver
// tears the victim down, recovers it, and still completes identically.
func TestMidExecutionCrashAborts(t *testing.T) {
	H := makespanOf(t, faultTestParams(t, nil, 0, 3))
	var aborts int64
	for _, frac := range []int64{1, 2, 3} {
		at := units.Time(int64(H) * frac / 4)
		plan := &FaultPlan{Crashes: []CrashFault{{Tenant: 0, At: at, RepairAfter: units.Duration(H / 20)}}}
		build := faultTestParams(t, plan, 0, 3)
		ev, poll := runBothDrivers(t, build)
		if !reflect.DeepEqual(ev, poll) {
			t.Errorf("crash at %v: event diverged from polling", at)
		}
		p := build()
		p.Shards = 3
		if sh := mustRunCluster(t, p); !reflect.DeepEqual(ev, sh) {
			t.Errorf("crash at %v: sharded diverged", at)
		}
		victim := ev.Tenants[0]
		if victim.Failed {
			t.Errorf("crash at %v: victim failed: %s", at, victim.FailReason)
		}
		if victim.Restarts != 1 {
			t.Errorf("crash at %v: restarts = %d, want 1", at, victim.Restarts)
		}
		if victim.WastedTime <= 0 {
			t.Errorf("crash at %v: wasted time = %v, want > 0", at, victim.WastedTime)
		}
		var es EngineStats
		p = build()
		p.Engine = &es
		mustRunCluster(t, p)
		aborts += es.TenantAborts
		if es.TenantRestarts != 1 {
			t.Errorf("crash at %v: engine restarts = %d", at, es.TenantRestarts)
		}
	}
	if aborts == 0 {
		t.Errorf("no kernel or flow was ever aborted across the crash sweep")
	}
}

// TestCheckpointBeatsRestart: with a crash late in the run, periodic
// checkpointing must waste less re-executed work than restarting from
// scratch, and its snapshots must appear in the flow/wear accounting.
func TestCheckpointBeatsRestart(t *testing.T) {
	iters := 6
	H := makespanOf(t, faultTestParams(t, nil, 0, iters))
	plan := &FaultPlan{Crashes: []CrashFault{{Tenant: 0, At: units.Time(int64(H) * 3 / 4), RepairAfter: units.Duration(H / 20)}}}

	restart := mustRunCluster(t, faultTestParams(t, plan, 0, iters)())
	ckpt := mustRunCluster(t, faultTestParams(t, plan, 1, iters)())

	rv, cv := restart.Tenants[0], ckpt.Tenants[0]
	if rv.Restarts != 1 || cv.Restarts != 1 {
		t.Fatalf("restarts: restart=%d checkpoint=%d, want 1 and 1", rv.Restarts, cv.Restarts)
	}
	if cv.CheckpointWrites == 0 || cv.CheckpointBytes == 0 {
		t.Errorf("checkpoint run wrote no snapshots: writes=%d bytes=%v", cv.CheckpointWrites, cv.CheckpointBytes)
	}
	if rv.CheckpointWrites != 0 {
		t.Errorf("restart run wrote %d snapshots", rv.CheckpointWrites)
	}
	if cv.WastedTime >= rv.WastedTime {
		t.Errorf("checkpoint wasted %v, restart wasted %v — checkpoint should lose less", cv.WastedTime, rv.WastedTime)
	}
	if units.Duration(ckpt.Makespan) >= 2*units.Duration(restart.Makespan) {
		t.Errorf("checkpoint makespan %v implausibly above restart %v", ckpt.Makespan, restart.Makespan)
	}
}

// TestLinkDegradeSlowsVictim: halving a pressured tenant's PCIe bandwidth
// for the whole run must stretch the makespan; a window that closes before
// the job arrives must restore the exact original capacity (byte-identical
// run).
func TestLinkDegradeSlowsVictim(t *testing.T) {
	build := faultTestParams(t, nil, 0, 0)
	clean := mustRunCluster(t, build())
	H := units.Time(clean.Makespan)

	slow := faultTestParams(t, &FaultPlan{
		Degrades: []LinkDegrade{{Tenant: 0, From: 1, Until: 4 * H, Factor: 0.1}},
	}, 0, 0)
	degraded := mustRunCluster(t, slow())
	if degraded.Makespan <= clean.Makespan {
		t.Errorf("degraded makespan %v <= clean %v", degraded.Makespan, clean.Makespan)
	}

	// A degrade window opening and closing before any flow exists must be
	// invisible: capacity restores to the exact original float.
	ghost := faultTestParams(t, &FaultPlan{
		Degrades: []LinkDegrade{{Tenant: 1, From: 1, Until: 2, Factor: 0.5}},
	}, 0, 0)
	gp := ghost()
	gp.Tenants[1].ArrivalTime = 10 * units.Millisecond
	cp := build()
	cp.Tenants[1].ArrivalTime = 10 * units.Millisecond
	if g, c := mustRunCluster(t, gp), mustRunCluster(t, cp); !reflect.DeepEqual(g, c) {
		t.Errorf("closed pre-arrival degrade window perturbed the run")
	}
}

// TestDieFailureDegradesArray: killing flash dies mid-run must slow a
// flash-bound cluster (bandwidth scales with surviving dies) and must be
// reflected by the device's dead-chip accounting.
func TestDieFailureDegradesArray(t *testing.T) {
	build := faultTestParams(t, nil, 0, 0)
	clean := mustRunCluster(t, build())
	H := units.Time(clean.Makespan)

	failed := faultTestParams(t, &FaultPlan{DieFails: []DieFail{{At: H / 8, Dies: 6}}}, 0, 0)
	res := mustRunCluster(t, failed())
	if res.Makespan <= clean.Makespan {
		t.Errorf("die-failed makespan %v <= clean %v", res.Makespan, clean.Makespan)
	}
}

// TestFaultPlanValidateAndRoundTrip pins the plan serializer and its
// validation errors.
func TestFaultPlanValidateAndRoundTrip(t *testing.T) {
	plan := &FaultPlan{
		Crashes:  []CrashFault{{Tenant: 1, At: 5, RepairAfter: -1}, {Tenant: 0, At: 9, RepairAfter: 3}},
		Degrades: []LinkDegrade{{Tenant: 2, From: 1, Until: 7, Factor: 0.5}},
		DieFails: []DieFail{{At: 4, Dies: 1}},
	}
	if err := plan.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFaultPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, got) {
		t.Errorf("round trip changed the plan:\nin:  %+v\nout: %+v", plan, got)
	}

	for name, bad := range map[string]*FaultPlan{
		"tenant-oob":     {Crashes: []CrashFault{{Tenant: 3, At: 1}}},
		"negative-time":  {Crashes: []CrashFault{{Tenant: 0, At: -1}}},
		"empty-window":   {Degrades: []LinkDegrade{{Tenant: 0, From: 5, Until: 5, Factor: 0.5}}},
		"factor-zero":    {Degrades: []LinkDegrade{{Tenant: 0, From: 1, Until: 2, Factor: 0}}},
		"factor-above-1": {Degrades: []LinkDegrade{{Tenant: 0, From: 1, Until: 2, Factor: 1.5}}},
		"zero-dies":      {DieFails: []DieFail{{At: 1, Dies: 0}}},
	} {
		if err := bad.Validate(3); err == nil {
			t.Errorf("%s: invalid plan accepted", name)
		}
	}

	if _, err := LoadFaultPlan(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Errorf("unknown field accepted")
	}
	if mtbf := plan.MTBF(3); mtbf != 9*3/2 {
		t.Errorf("MTBF = %v, want %v", mtbf, 9*3/2)
	}
	if (&FaultPlan{}).MTBF(3) != 0 {
		t.Errorf("crash-free plan has nonzero MTBF")
	}
}

// FuzzFaultPlan: the loader must never panic and must only accept plans
// that re-serialize losslessly.
func FuzzFaultPlan(f *testing.F) {
	var buf bytes.Buffer
	seed := &FaultPlan{
		Crashes:  []CrashFault{{Tenant: 0, At: 3, RepairAfter: 2}},
		Degrades: []LinkDegrade{{Tenant: 1, From: 1, Until: 9, Factor: 0.25}},
		DieFails: []DieFail{{At: 2, Dies: 4}},
	}
	if err := seed.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crashes":[{"tenant":0,"at":1,"repair_after":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadFaultPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(-1); err != nil {
			t.Fatalf("loader returned an invalid plan: %v", err)
		}
		var out bytes.Buffer
		if err := p.Save(&out); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		back, err := LoadFaultPlan(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-load failed: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("save/load not lossless:\nfirst:  %+v\nsecond: %+v", p, back)
		}
	})
}

package gpu

import (
	"fmt"
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/flownet"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// traffic is the machine's migration ledger in true tensor bytes (fault
// flows are inflated on the wire to model degraded on-demand bandwidth, so
// flownet's per-resource byte counters are not ground truth for volume).
type traffic struct {
	ssdIn, ssdOut, hostIn, hostOut units.Bytes
}

// ProgramBuilder lets each policy supply its instrumented program: the G10
// variants return the planner's output; reactive baselines return the
// alloc/free-only program; FlashNeuron builds its own offline offload plan.
type ProgramBuilder interface {
	Program(a *vitality.Analysis, cfg Config) *planner.Program
}

// RunParams bundles one simulation's inputs.
type RunParams struct {
	Analysis *vitality.Analysis
	Policy   Policy
	Config   Config
	// ExecTrace supplies the true kernel durations when they differ from
	// the (possibly perturbed) trace the plan was derived from (Fig. 19).
	// nil uses Analysis.Trace.
	ExecTrace *profile.Trace
}

// Run simulates the workload alone — a one-tenant drive of the same
// resumable step machine the cluster scheduler advances (see cluster.go) —
// and returns the measured-iteration result.
func Run(p RunParams) (Result, error) {
	m, err := NewMachine(p.Analysis, p.Policy, p.Config.withDefaults())
	if err != nil {
		return Result{}, err
	}
	r, err := newRunner(m, p.ExecTrace)
	if err != nil {
		return Result{}, err
	}
	err = drive(m.net, []*runner{r}, driveOptions{})
	return r.result(), err
}

// stepPhase is the explicit state of a tenant's resumable step machine.
type stepPhase int

const (
	// phaseBoundary: about to run the program's instrumentation at
	// boundary (iter, k); k == len(kernels) is the iteration-closing
	// boundary.
	phaseBoundary stepPhase = iota
	// phaseWait: boundary done; assembling kernel k's working set.
	phaseWait
	// phaseExec: kernel k executes until the shared clock reaches execEnd.
	phaseExec
	// phaseDone: the run completed, failed, or errored.
	phaseDone
	// phasePending: the job has not arrived yet (ClusterTenant.ArrivalTime
	// lies in the future); the cluster driver admits it — seeding its
	// global tensors at that moment's contention — when the shared clock
	// reaches its arrival.
	phasePending
	// phaseCrashed: the tenant's server is down (fault injection); only a
	// scheduled repair event revives it. Distinct from phasePending so the
	// drivers' arrival admission never resurrects a crashed tenant.
	phaseCrashed
	// phaseCkpt: a checkpoint snapshot flow is in flight; the tenant resumes
	// at its next boundary when the flow lands (ckptLanded).
	phaseCkpt
	// phaseRestore: a post-repair checkpoint read-back is in flight.
	phaseRestore
)

// runner is one tenant: a resumable step machine that replays its workload
// on a Machine whose clock a driver — Run's single-tenant loop or the
// cluster scheduler — advances. step never consumes simulated time; it runs
// the tenant to the point where only the clock can unblock it.
type runner struct {
	m       *Machine
	cfg     Config
	program *planner.Program
	exec    *profile.Trace

	// rp is non-nil for adaptive policies: at each iteration-closing
	// boundary it receives the iteration's lateness signal (delta from
	// sig0) and may swap the program replayed from the next iteration on.
	rp   Replanner
	sig0 LatenessSignal

	phase   stepPhase
	iter, k int
	// execEnd is when the executing kernel finishes (phaseExec only).
	execEnd units.Time
	// checkFail mirrors the original blocking loop's control flow: machine
	// failure is noticed after each wait on the network, not before the
	// first working-set scan.
	checkFail bool
	// doneAt is the clock value when the tenant reached phaseDone.
	doneAt units.Time
	err    error

	// Scheduler bookkeeping (cluster wakeup subscriptions). idx is the
	// tenant slot; arrival the admission time (<= 0 = present from the
	// start); inExecHeap marks a live entry in the driver's kernel-end
	// heap; onHostWake, when set by the event driver, is registered with
	// the shared host pool after a blocked wait that followed a denied
	// reservation (hostSubscribed dedupes; hostRejects0 is the per-step
	// denial snapshot).
	idx            int
	arrival        units.Time
	inExecHeap     bool
	hostSubscribed bool
	hostRejects0   int64
	onHostWake     func()

	// inf, when non-nil, makes this runner an inference request tenant
	// (inference.go): step/start/admit dispatch to the serving step machine
	// and m stays nil — request tenants have no Machine.
	inf *infReq

	// Fault-injection and recovery state (faults.go). ckptEvery > 0
	// checkpoints every that-many iterations (RunCluster derives it from the
	// tenant's Recovery policy); lastCkpt is the iteration of the last
	// durable snapshot and the resume point after a repair. progressMark is
	// the clock value since which the tenant's work would be lost by a crash
	// (admission, repair, or last checkpoint completion); wasted accumulates
	// exactly those losses.
	ckptEvery    int
	ckptBytes    units.Bytes
	lastCkpt     int
	ckptFly      *flownet.Flow
	ckptRng      ssd.LogicalRange
	hasCkptRng   bool
	ckptWritten  units.Bytes
	ckptWrites   int
	restarts     int
	abortedFlows int
	abortedKerns int
	wasted       units.Duration
	progressMark units.Time

	// Measured-iteration snapshots.
	iterStart    units.Time
	ledger0      traffic
	faults0      int64
	faultBytes0  units.Bytes
	overflow0    units.Bytes
	overflowK0   int
	kernelEnds   []units.Time
	measuredIter bool

	// pinned is the current kernel's working set, reused across kernels.
	pinned map[int]bool
}

// newRunner validates the exec trace, builds the policy's instrumented
// program, and wraps machine m as a resumable tenant.
func newRunner(m *Machine, exec *profile.Trace) (*runner, error) {
	a := m.a
	if exec == nil {
		exec = a.Trace
	}
	if len(exec.Durations) != len(a.Graph.Kernels) {
		return nil, fmt.Errorf("gpu: exec trace has %d kernels, graph has %d",
			len(exec.Durations), len(a.Graph.Kernels))
	}
	var program *planner.Program
	if pb, ok := m.pol.(ProgramBuilder); ok {
		program = pb.Program(a, m.cfg)
	}
	if program == nil {
		program = planner.EmptyProgram(a)
	}
	r := &runner{m: m, cfg: m.cfg, program: program, exec: exec}
	if rp, ok := m.pol.(Replanner); ok {
		r.rp = rp
	}
	return r, nil
}

// start seeds global (weight) tensors into the unified space — those that
// do not fit in GPU memory start in host memory or flash, exactly as a
// first-touch UVM program would find them. Called once before stepping.
func (r *runner) start() error {
	if r.inf != nil {
		r.inf.enqueue(reqQueued)
		return nil
	}
	for id, t := range r.m.g.Tensors {
		if t.Kind != dnn.Global {
			continue
		}
		if err := r.m.seed(id); err != nil {
			return err
		}
	}
	return nil
}

// admit seeds a dynamically arriving tenant at the current clock and makes
// it steppable.
func (r *runner) admit() error {
	if r.inf != nil {
		r.inf.enqueue(reqQueued)
		return nil
	}
	r.phase = phaseBoundary
	r.progressMark = r.m.Now()
	return r.start()
}

// queuedWork reports pending migration metadata to re-dispatch after
// network events (always false for inference tenants, which have no
// Machine).
func (r *runner) queuedWork() bool { return r.m != nil && r.m.queues.Len() > 0 }

// redispatch pumps the machine's migration metadata queues (no-op for
// inference tenants).
func (r *runner) redispatch() {
	if r.m != nil {
		r.m.dispatch()
	}
}

// step advances the tenant as far as it can go without consuming simulated
// time: it stops when the run finishes, when the tenant is executing a
// kernel (waiting for the clock to reach execEnd), or when it is blocked on
// its in-flight migrations (waiting for a network event).
func (r *runner) step() {
	if r.inf != nil {
		r.stepServe()
		return
	}
	m := r.m
	r.hostRejects0 = m.hostRejects
	n := len(m.g.Kernels)
	for {
		switch r.phase {
		case phaseDone, phasePending, phaseCrashed, phaseCkpt, phaseRestore:
			// Crashed tenants wait for their repair event; checkpoint and
			// restore phases wait for their snapshot flow to land.
			return
		case phaseBoundary:
			if r.k == 0 && r.iter == r.cfg.Iterations-1 {
				r.beginMeasurement()
			}
			r.boundary(r.iter, r.k)
			if r.k == n { // iteration-closing boundary
				r.iter++
				r.k = 0
				if r.iter == r.cfg.Iterations {
					r.finish()
					return
				}
				r.replan()
				if r.maybeCheckpoint() {
					return // blocked on the snapshot flow
				}
				continue
			}
			r.beginWait()
		case phaseWait:
			if !r.stepWait() {
				return // blocked on a network event
			}
		case phaseExec:
			if m.Now() < r.execEnd {
				return // still executing; the driver advances the clock
			}
			if r.measuredIter {
				r.kernelEnds = append(r.kernelEnds, m.Now())
			}
			r.k++
			r.phase = phaseBoundary
			if m.failed {
				r.finish()
				return
			}
		}
	}
}

// finish marks the run complete at the current clock.
func (r *runner) finish() {
	r.phase = phaseDone
	r.doneAt = r.m.Now()
}

// replan hands an adaptive policy the finished iteration's lateness signal
// and swaps in any re-timed program for the iterations that follow. A no-op
// (zero work, zero allocation) for static policies.
func (r *runner) replan() {
	if r.rp == nil {
		return
	}
	cum := r.m.lat
	if np := r.rp.NextProgram(r.iter, cum.Sub(r.sig0), r.program); np != nil {
		r.program = np
	}
	r.sig0 = cum
}

func (r *runner) beginMeasurement() {
	r.measuredIter = true
	r.iterStart = r.m.Now()
	r.ledger0 = r.m.ledger
	r.faults0 = r.m.faults
	r.faultBytes0 = r.m.faultedBytes
	r.overflow0 = r.m.overflowBytes
	r.overflowK0 = r.m.overflowKerns
	r.kernelEnds = r.kernelEnds[:0]
}

// boundary executes the program's instrumentation at boundary b, then the
// policy's dynamic hook.
func (r *runner) boundary(iter, b int) {
	m := r.m
	for _, in := range r.program.Boundaries[b] {
		id := in.Tensor.ID
		switch in.Kind {
		case planner.OpFree:
			m.free(id)
		case planner.OpPreEvict:
			m.RequestEvict(id, in.Target)
		case planner.OpAlloc:
			// Best effort; the kernel-start path retries with eviction.
			m.alloc(id)
		case planner.OpPrefetch:
			m.RequestFetch(id, uvm.Prefetch)
		}
	}
	m.dispatch()
	m.pol.AtBoundary(iter, b)
}

// beginWait pins kernel k's working set and enters the assembly phase.
func (r *runner) beginWait() {
	tensors := r.m.g.Kernels[r.k].Tensors()
	if r.pinned == nil {
		r.pinned = make(map[int]bool, len(tensors))
	} else {
		clear(r.pinned)
	}
	for _, t := range tensors {
		r.pinned[t.ID] = true
	}
	r.checkFail = false
	r.phase = phaseWait
}

// stepWait runs the working-set assembly loop until the kernel can start,
// the run fails, or the tenant must wait for one of its migrations.
// Reports false in the waiting case (the caller returns to the driver) and
// true when the phase advanced.
func (r *runner) stepWait() bool {
	m := r.m
	kern := m.g.Kernels[r.k]
	for {
		if r.checkFail {
			// Resume point after a network wait.
			r.checkFail = false
			if m.failed {
				r.finish()
				return true
			}
		}
		ready, allocDeficit := r.scanWorkingSet(kern)
		if ready {
			r.startExec(kern, 0)
			return true
		}

		// Ask the policy to free memory beyond what in-flight evictions
		// will already release. The machine maintains the pending-fetch and
		// in-flight-eviction byte totals incrementally, so this is O(1) per
		// wait iteration instead of a scan over every tensor state.
		deficit := allocDeficit + m.pendFetchBytes - m.GPUFree() - m.evictPendBytes
		if deficit > 0 {
			m.pol.MakeRoom(deficit, r.pinned)
			m.dispatch()
		}

		if m.inflight > 0 {
			// Migrations are flying; resume after the next network event —
			// the scheduler wakes this tenant when one of its own flows
			// completes. If a host reservation was denied this step, also
			// subscribe to the pool's grant queue: released capacity then
			// wakes this tenant explicitly instead of relying on a re-poll.
			if r.onHostWake != nil && !r.hostSubscribed && m.hostRejects > r.hostRejects0 {
				r.hostSubscribed = true
				m.host.AwaitFreeFor(m.idx, m.lastHostReject, r.onHostWake)
			}
			r.checkFail = true
			return false
		}
		// Nothing of ours in flight and still blocked. Partially landed
		// fetches for other kernels may be wedging memory; roll them back
		// before declaring the working set unfittable.
		if m.cancelStalledFetches(r.pinned) > 0 {
			m.dispatch()
			continue
		}
		penalty, err := r.streamOverflow(kern, r.pinned)
		if err != nil {
			r.err = err
			r.finish()
			return true
		}
		if m.failed {
			r.finish()
			return true
		}
		r.startExec(kern, penalty)
		return true
	}
}

// scanWorkingSet checks kernel k's tensors, driving allocation and demand
// fetches (via the policy's OnMiss) and cancelling queued evictions of
// needed tensors. It reports readiness and the bytes of denied allocations.
func (r *runner) scanWorkingSet(kern *dnn.Kernel) (bool, units.Bytes) {
	m := r.m
	ready := true
	var allocDeficit units.Bytes
	for _, t := range kern.Tensors() {
		st := &m.states[t.ID]
		switch {
		case st.loc == uvm.InGPU && st.fly == nil:
			if st.pend != nil && st.pend.Kind == uvm.PreEvict {
				m.clearPend(st) // cancel a queued eviction of a needed tensor
			}
		case st.loc == uvm.InGPU: // eviction in flight; must drain first
			ready = false
		case st.loc == uvm.Unmapped:
			if !m.alloc(t.ID) {
				ready = false
				allocDeficit += t.Size
			}
		default: // InHost or InFlash
			ready = false
			if st.pend == nil {
				m.pol.OnMiss(r.k, t)
			}
		}
	}
	return ready, allocDeficit
}

// startExec launches kernel k: touch its tensors for LRU and the
// translation model (the accumulated walk penalty is reported as a
// statistic; at 4KB-page × 600ns it is negligible against kernel durations
// and is not charged to time), then run until execEnd on the shared clock.
func (r *runner) startExec(kern *dnn.Kernel, penalty units.Duration) {
	m := r.m
	for _, t := range kern.Tensors() {
		m.touch(t.ID)
	}
	r.execEnd = m.Now() + r.exec.Durations[r.k] + penalty
	r.phase = phaseExec
}

// streamOverflow models a kernel whose working set exceeds GPU memory.
// UVM-based systems execute it anyway, faulting pages through the PCIe
// link at on-demand efficiency (inputs stream in, outputs stream out);
// FlashNeuron-style managers cannot, reproducing the paper's footnote 1.
func (r *runner) streamOverflow(kern *dnn.Kernel, pinned map[int]bool) (units.Duration, error) {
	m := r.m
	if !m.pol.UsesUVM() {
		m.fail(fmt.Sprintf("kernel %s working set %v exceeds GPU memory %v",
			kern.Name, kern.WorkingSet(), m.cfg.GPUCapacity))
		return 0, nil
	}

	var streamed []*dnn.Tensor
	var streamBytes units.Bytes
	for _, t := range kern.Tensors() {
		st := &m.states[t.ID]
		if st.loc == uvm.InGPU {
			continue
		}
		m.clearPend(st) // cancel whatever was queued; the stream covers it
		streamed = append(streamed, t)
		streamBytes += t.Size
	}
	if len(streamed) == 0 {
		// Defensive: resident but deadlocked (should not happen).
		return 0, fmt.Errorf("gpu: kernel %s deadlocked with full residency", kern.Name)
	}

	// Unallocated outputs must land somewhere once the kernel finishes.
	for _, t := range streamed {
		st := &m.states[t.ID]
		if st.loc != uvm.Unmapped {
			continue
		}
		if m.reserveHost(t.Size) {
			m.untrack(st)
			st.loc = uvm.InHost
			m.track(st)
			m.pt.MapRange(st.va, m.pagesOf(t), uvm.InHost, st.va>>21)
			r.addTraffic(uvm.InHost, t.Size, false)
		} else {
			rng, err := m.dev.Alloc(m.dev.PagesFor(t.Size))
			if err != nil {
				return 0, fmt.Errorf("gpu: overflow spill: %w", err)
			}
			st.flash, st.hasRng = rng, true
			if _, err := m.dev.Write(rng); err != nil {
				return 0, fmt.Errorf("gpu: overflow spill: %w", err)
			}
			m.refreshSSDWrite()
			m.untrack(st)
			st.loc = uvm.InFlash
			m.track(st)
			m.pt.MapRange(st.va, m.pagesOf(t), uvm.InFlash, uint64(rng.Start))
			r.addTraffic(uvm.InFlash, t.Size, false)
		}
	}
	// Inputs stream in once and their dirty pages stream back out.
	for _, t := range streamed {
		st := &m.states[t.ID]
		if st.loc == uvm.InHost || st.loc == uvm.InFlash {
			r.addTraffic(st.loc, t.Size, true)
		}
	}

	effBW := units.Bandwidth(float64(m.cfg.PCIeBandwidth) * m.cfg.FaultEfficiency)
	penalty := 2 * units.TransferTime(streamBytes, effBW)
	faultGroups := int64(units.PagesFor(streamBytes, 32*units.MB))
	penalty += units.Duration(faultGroups) * m.cfg.FaultLatency

	m.faults += faultGroups
	m.faultedBytes += streamBytes
	m.overflowKerns++
	m.overflowBytes += streamBytes
	return penalty, nil
}

// addTraffic records streamed bytes in the ledger (in = toward GPU).
func (r *runner) addTraffic(loc uvm.Location, n units.Bytes, in bool) {
	switch {
	case loc == uvm.InFlash && in:
		r.m.ledger.ssdIn += n
	case loc == uvm.InFlash:
		r.m.ledger.ssdOut += n
	case in:
		r.m.ledger.hostIn += n
	default:
		r.m.ledger.hostOut += n
	}
}

func (r *runner) result() Result {
	m := r.m
	res := Result{
		Model:  m.g.Name,
		Batch:  m.g.Batch,
		Policy: m.pol.Name(),
	}
	res.IdealTime = r.exec.Total()
	if r.measuredIter {
		end := m.Now()
		if len(r.kernelEnds) > 0 {
			end = r.kernelEnds[len(r.kernelEnds)-1]
		}
		res.IterationTime = end - r.iterStart
		res.StallTime = res.IterationTime - res.IdealTime
		if res.StallTime < 0 {
			res.StallTime = 0
		}
		res.KernelTimes = make([]units.Duration, len(r.kernelEnds))
		prev := r.iterStart
		for i, e := range r.kernelEnds {
			res.KernelTimes[i] = e - prev
			prev = e
		}
		res.SSDToGPU = m.ledger.ssdIn - r.ledger0.ssdIn
		res.GPUToSSD = m.ledger.ssdOut - r.ledger0.ssdOut
		res.HostToGPU = m.ledger.hostIn - r.ledger0.hostIn
		res.GPUToHost = m.ledger.hostOut - r.ledger0.hostOut
		res.Faults = m.faults - r.faults0
		res.FaultedBytes = m.faultedBytes - r.faultBytes0
		res.FaultedPages = int64(units.PagesFor(res.FaultedBytes, r.cfg.PageSize))
		res.OverflowBytes = m.overflowBytes - r.overflow0
		res.OverflowKernels = m.overflowKerns - r.overflowK0
	}
	res.SSDStats = m.dev.Stats()
	res.WriteAmp = m.dev.WriteAmplification()
	res.TLBHitRate = m.tlb.HitRate()
	res.Failed = m.failed
	res.FailReason = m.failReason
	res.Restarts = r.restarts
	res.WastedTime = r.wasted
	res.CheckpointBytes = r.ckptWritten
	res.CheckpointWrites = r.ckptWrites
	return res
}

// SlowdownCDF summarises per-kernel slowdowns versus the ideal trace
// (Fig. 13): the returned slice is sorted ascending.
func SlowdownCDF(res Result, exec *profile.Trace) []float64 {
	if len(res.KernelTimes) == 0 {
		return nil
	}
	out := make([]float64, len(res.KernelTimes))
	for i := range res.KernelTimes {
		out[i] = float64(res.KernelTimes[i]) / float64(exec.Durations[i])
	}
	sort.Float64s(out)
	return out
}

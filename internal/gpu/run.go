package gpu

import (
	"fmt"
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// traffic is the machine's migration ledger in true tensor bytes (fault
// flows are inflated on the wire to model degraded on-demand bandwidth, so
// flownet's per-resource byte counters are not ground truth for volume).
type traffic struct {
	ssdIn, ssdOut, hostIn, hostOut units.Bytes
}

// ProgramBuilder lets each policy supply its instrumented program: the G10
// variants return the planner's output; reactive baselines return the
// alloc/free-only program; FlashNeuron builds its own offline offload plan.
type ProgramBuilder interface {
	Program(a *vitality.Analysis, cfg Config) *planner.Program
}

// RunParams bundles one simulation's inputs.
type RunParams struct {
	Analysis *vitality.Analysis
	Policy   Policy
	Config   Config
	// ExecTrace supplies the true kernel durations when they differ from
	// the (possibly perturbed) trace the plan was derived from (Fig. 19).
	// nil uses Analysis.Trace.
	ExecTrace *profile.Trace
}

// Run simulates the workload and returns the measured-iteration result.
func Run(p RunParams) (Result, error) {
	cfg := p.Config.withDefaults()
	a := p.Analysis
	exec := p.ExecTrace
	if exec == nil {
		exec = a.Trace
	}
	if len(exec.Durations) != len(a.Graph.Kernels) {
		return Result{}, fmt.Errorf("gpu: exec trace has %d kernels, graph has %d",
			len(exec.Durations), len(a.Graph.Kernels))
	}
	var program *planner.Program
	if pb, ok := p.Policy.(ProgramBuilder); ok {
		program = pb.Program(a, cfg)
	}
	if program == nil {
		program = planner.EmptyProgram(a)
	}

	m, err := NewMachine(a, p.Policy, cfg)
	if err != nil {
		return Result{}, err
	}
	r := &runner{m: m, cfg: cfg, program: program, exec: exec}
	return r.run()
}

type runner struct {
	m       *Machine
	cfg     Config
	program *planner.Program
	exec    *profile.Trace

	// Measured-iteration snapshots.
	iterStart    units.Time
	ledger0      traffic
	faults0      int64
	faultBytes0  units.Bytes
	overflow0    units.Bytes
	overflowK0   int
	kernelEnds   []units.Time
	measuredIter bool

	// pinned is the current kernel's working set, reused across kernels.
	pinned map[int]bool
}

func (r *runner) run() (Result, error) {
	m := r.m
	n := len(m.g.Kernels)

	// Global (weight) tensors are allocated in the unified space at
	// program start; those that do not fit in GPU memory start in host
	// memory (or flash), exactly as a first-touch UVM program would find
	// them.
	for id, t := range m.g.Tensors {
		if t.Kind != dnn.Global {
			continue
		}
		if err := m.seed(id); err != nil {
			return Result{}, err
		}
	}

	for iter := 0; iter < r.cfg.Iterations; iter++ {
		last := iter == r.cfg.Iterations-1
		if last {
			r.beginMeasurement()
		}
		for k := 0; k < n; k++ {
			r.boundary(iter, k)
			if err := r.kernel(iter, k, last); err != nil {
				return r.result(), err
			}
			if m.failed {
				res := r.result()
				res.Failed = true
				res.FailReason = m.failReason
				return res, nil
			}
		}
		r.boundary(iter, n)
	}
	return r.result(), nil
}

func (r *runner) beginMeasurement() {
	r.measuredIter = true
	r.iterStart = r.m.Now()
	r.ledger0 = r.m.ledger
	r.faults0 = r.m.faults
	r.faultBytes0 = r.m.faultedBytes
	r.overflow0 = r.m.overflowBytes
	r.overflowK0 = r.m.overflowKerns
	r.kernelEnds = r.kernelEnds[:0]
}

// boundary executes the program's instrumentation at boundary b, then the
// policy's dynamic hook.
func (r *runner) boundary(iter, b int) {
	m := r.m
	for _, in := range r.program.Boundaries[b] {
		id := in.Tensor.ID
		switch in.Kind {
		case planner.OpFree:
			m.free(id)
		case planner.OpPreEvict:
			m.RequestEvict(id, in.Target)
		case planner.OpAlloc:
			// Best effort; the kernel-start path retries with eviction.
			m.alloc(id)
		case planner.OpPrefetch:
			m.RequestFetch(id, uvm.Prefetch)
		}
	}
	m.dispatch()
	m.pol.AtBoundary(iter, b)
}

// kernel waits for kernel k's working set and executes it.
func (r *runner) kernel(iter, k int, measured bool) error {
	m := r.m
	kern := m.g.Kernels[k]
	penalty, err := r.ensureWorkingSet(k, kern)
	if err != nil {
		return err
	}
	if m.failed {
		return nil
	}

	// Touch for LRU and model the translation lookups (the accumulated
	// walk penalty is reported as a statistic; at 4KB-page × 600ns it is
	// negligible against kernel durations and is not charged to time).
	for _, t := range kern.Tensors() {
		m.touch(t.ID)
	}
	dur := r.exec.Durations[k] + penalty
	m.advanceTo(m.Now() + dur)
	if measured {
		r.kernelEnds = append(r.kernelEnds, m.Now())
	}
	return nil
}

// ensureWorkingSet blocks until every tensor of kernel k is resident,
// driving allocation, demand fetches, and policy evictions. When the
// working set cannot fit at all it returns the overflow streaming penalty
// (UVM policies) or fails the run (non-UVM).
func (r *runner) ensureWorkingSet(k int, kern *dnn.Kernel) (units.Duration, error) {
	m := r.m
	tensors := kern.Tensors()
	if r.pinned == nil {
		r.pinned = make(map[int]bool, len(tensors))
	} else {
		clear(r.pinned)
	}
	pinned := r.pinned
	for _, t := range tensors {
		pinned[t.ID] = true
	}

	for {
		ready := true
		var allocDeficit units.Bytes
		for _, t := range tensors {
			st := &m.states[t.ID]
			switch {
			case st.loc == uvm.InGPU && st.fly == nil:
				if st.pend != nil && st.pend.Kind == uvm.PreEvict {
					m.clearPend(st) // cancel a queued eviction of a needed tensor
				}
			case st.loc == uvm.InGPU: // eviction in flight; must drain first
				ready = false
			case st.loc == uvm.Unmapped:
				if !m.alloc(t.ID) {
					ready = false
					allocDeficit += t.Size
				}
			default: // InHost or InFlash
				ready = false
				if st.pend == nil {
					m.pol.OnMiss(k, t)
				}
			}
		}
		if ready {
			return 0, nil
		}

		// Ask the policy to free memory beyond what in-flight evictions
		// will already release. The machine maintains the pending-fetch and
		// in-flight-eviction byte totals incrementally, so this is O(1) per
		// wait iteration instead of a scan over every tensor state.
		deficit := allocDeficit + m.pendFetchBytes - m.GPUFree() - m.evictPendBytes
		if deficit > 0 {
			m.pol.MakeRoom(deficit, pinned)
			m.dispatch()
		}

		if !m.waitNext() {
			// Nothing in flight and still blocked. Partially landed
			// fetches for other kernels may be wedging memory; roll them
			// back before declaring the working set unfittable.
			if m.cancelStalledFetches(pinned) > 0 {
				m.dispatch()
				continue
			}
			return r.streamOverflow(kern, pinned)
		}
		if m.failed {
			return 0, nil
		}
	}
}

// streamOverflow models a kernel whose working set exceeds GPU memory.
// UVM-based systems execute it anyway, faulting pages through the PCIe
// link at on-demand efficiency (inputs stream in, outputs stream out);
// FlashNeuron-style managers cannot, reproducing the paper's footnote 1.
func (r *runner) streamOverflow(kern *dnn.Kernel, pinned map[int]bool) (units.Duration, error) {
	m := r.m
	if !m.pol.UsesUVM() {
		m.fail(fmt.Sprintf("kernel %s working set %v exceeds GPU memory %v",
			kern.Name, kern.WorkingSet(), m.cfg.GPUCapacity))
		return 0, nil
	}

	var streamed []*dnn.Tensor
	var streamBytes units.Bytes
	for _, t := range kern.Tensors() {
		st := &m.states[t.ID]
		if st.loc == uvm.InGPU {
			continue
		}
		m.clearPend(st) // cancel whatever was queued; the stream covers it
		streamed = append(streamed, t)
		streamBytes += t.Size
	}
	if len(streamed) == 0 {
		// Defensive: resident but deadlocked (should not happen).
		return 0, fmt.Errorf("gpu: kernel %s deadlocked with full residency", kern.Name)
	}

	// Unallocated outputs must land somewhere once the kernel finishes.
	for _, t := range streamed {
		st := &m.states[t.ID]
		if st.loc != uvm.Unmapped {
			continue
		}
		if m.hostUsed+t.Size <= m.cfg.HostCapacity {
			m.hostUsed += t.Size
			m.untrack(st)
			st.loc = uvm.InHost
			m.track(st)
			m.pt.MapRange(st.va, m.pagesOf(t), uvm.InHost, st.va>>21)
			r.addTraffic(uvm.InHost, t.Size, false)
		} else {
			rng, err := m.dev.Alloc(m.dev.PagesFor(t.Size))
			if err != nil {
				return 0, fmt.Errorf("gpu: overflow spill: %w", err)
			}
			st.flash, st.hasRng = rng, true
			if _, err := m.dev.Write(rng); err != nil {
				return 0, fmt.Errorf("gpu: overflow spill: %w", err)
			}
			m.untrack(st)
			st.loc = uvm.InFlash
			m.track(st)
			m.pt.MapRange(st.va, m.pagesOf(t), uvm.InFlash, uint64(rng.Start))
			r.addTraffic(uvm.InFlash, t.Size, false)
		}
	}
	// Inputs stream in once and their dirty pages stream back out.
	for _, t := range streamed {
		st := &m.states[t.ID]
		if st.loc == uvm.InHost || st.loc == uvm.InFlash {
			r.addTraffic(st.loc, t.Size, true)
		}
	}

	effBW := units.Bandwidth(float64(m.cfg.PCIeBandwidth) * m.cfg.FaultEfficiency)
	penalty := 2 * units.TransferTime(streamBytes, effBW)
	faultGroups := int64(units.PagesFor(streamBytes, 32*units.MB))
	penalty += units.Duration(faultGroups) * m.cfg.FaultLatency

	m.faults += faultGroups
	m.faultedBytes += streamBytes
	m.overflowKerns++
	m.overflowBytes += streamBytes
	return penalty, nil
}

// addTraffic records streamed bytes in the ledger (in = toward GPU).
func (r *runner) addTraffic(loc uvm.Location, n units.Bytes, in bool) {
	switch {
	case loc == uvm.InFlash && in:
		r.m.ledger.ssdIn += n
	case loc == uvm.InFlash:
		r.m.ledger.ssdOut += n
	case in:
		r.m.ledger.hostIn += n
	default:
		r.m.ledger.hostOut += n
	}
}

func (r *runner) result() Result {
	m := r.m
	res := Result{
		Model:  m.g.Name,
		Batch:  m.g.Batch,
		Policy: m.pol.Name(),
	}
	res.IdealTime = r.exec.Total()
	if r.measuredIter {
		end := m.Now()
		if len(r.kernelEnds) > 0 {
			end = r.kernelEnds[len(r.kernelEnds)-1]
		}
		res.IterationTime = end - r.iterStart
		res.StallTime = res.IterationTime - res.IdealTime
		if res.StallTime < 0 {
			res.StallTime = 0
		}
		res.KernelTimes = make([]units.Duration, len(r.kernelEnds))
		prev := r.iterStart
		for i, e := range r.kernelEnds {
			res.KernelTimes[i] = e - prev
			prev = e
		}
		res.SSDToGPU = m.ledger.ssdIn - r.ledger0.ssdIn
		res.GPUToSSD = m.ledger.ssdOut - r.ledger0.ssdOut
		res.HostToGPU = m.ledger.hostIn - r.ledger0.hostIn
		res.GPUToHost = m.ledger.hostOut - r.ledger0.hostOut
		res.Faults = m.faults - r.faults0
		res.FaultedBytes = m.faultedBytes - r.faultBytes0
		res.FaultedPages = int64(units.PagesFor(res.FaultedBytes, r.cfg.PageSize))
		res.OverflowBytes = m.overflowBytes - r.overflow0
		res.OverflowKernels = m.overflowKerns - r.overflowK0
	}
	res.SSDStats = m.dev.Stats()
	res.WriteAmp = m.dev.WriteAmplification()
	res.TLBHitRate = m.tlb.HitRate()
	return res
}

// SlowdownCDF summarises per-kernel slowdowns versus the ideal trace
// (Fig. 13): the returned slice is sorted ascending.
func SlowdownCDF(res Result, exec *profile.Trace) []float64 {
	if len(res.KernelTimes) == 0 {
		return nil
	}
	out := make([]float64, len(res.KernelTimes))
	for i := range res.KernelTimes {
		out[i] = float64(res.KernelTimes[i]) / float64(exec.Durations[i])
	}
	sort.Float64s(out)
	return out
}

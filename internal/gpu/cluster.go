// Cluster engine: co-simulates N tenant machines on one shared clock.
//
// Each tenant is a resumable runner (see run.go) owning its GPU, PCIe link,
// page table, and migration queues; the flash array (one FTL, shared
// channel bandwidth, shared GC state), host memory capacity, and the host
// DRAM bus are one substrate every tenant contends on. The scheduler
// alternates two moves: step every live tenant until only the clock can
// unblock it, then advance the shared flownet clock to the earliest pending
// event — a migration chunk landing, a dormant flow activating, or a kernel
// finishing — delivering completions to their owning machines at the moment
// they happen. A one-tenant cluster therefore executes exactly the
// single-machine Run loop.
package gpu

import (
	"fmt"

	"g10sim/internal/flownet"
	"g10sim/internal/profile"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// ClusterTenant describes one job of a co-simulation.
type ClusterTenant struct {
	Analysis *vitality.Analysis
	// Policy must be a fresh instance per tenant; policies carry per-run
	// state.
	Policy Policy
	// Config's per-GPU fields (GPUCapacity, PCIeBandwidth, migration and
	// fault parameters, Iterations) apply to this tenant. Its SSD, host
	// capacity, and host bandwidth fields are overridden by the cluster's
	// shared configuration so the tenant's planner sees the array it will
	// actually run on.
	Config Config
	// ExecTrace overrides the replayed kernel durations (nil = the trace
	// the analysis was built from).
	ExecTrace *profile.Trace
	// Tag namespaces the tenant's PCIe resources ("gpu<i>" if empty).
	Tag string
}

// ClusterParams bundles a co-simulation's inputs.
type ClusterParams struct {
	Tenants []ClusterTenant
	// Shared configures the cross-tenant substrate: the SSD array, host
	// memory capacity, and host DRAM bandwidth (its per-GPU fields are
	// ignored).
	Shared Config
}

// ClusterResult reports one co-simulation.
type ClusterResult struct {
	// Tenants holds each job's result in input order. A tenant's SSDStats
	// and WriteAmp are its attributed share of the shared array (host
	// writes, and the GC work those writes triggered).
	Tenants []Result
	// Makespan is the clock value at which the last tenant finished.
	Makespan units.Duration
	// SSDStats aggregates the whole array; WriteAmp is the array-level
	// write amplification.
	SSDStats ssd.Stats
	WriteAmp float64
}

// RunCluster co-simulates every tenant against one flash array, host
// memory pool, and clock. Tenant failures (FlashNeuron-style footnote-1
// aborts) are reported in the per-tenant Result; hard simulator errors
// abort the whole run.
func RunCluster(p ClusterParams) (ClusterResult, error) {
	if len(p.Tenants) == 0 {
		return ClusterResult{}, fmt.Errorf("gpu: cluster with no tenants")
	}
	shCfg := p.Shared.withDefaults()
	net := flownet.New()
	var sh *Shared
	runners := make([]*runner, len(p.Tenants))
	for i, t := range p.Tenants {
		cfg := t.Config.withDefaults()
		cfg.SSD = shCfg.SSD
		cfg.HostCapacity = shCfg.HostCapacity
		cfg.HostDRAMBandwidth = shCfg.HostDRAMBandwidth
		tag := t.Tag
		if tag == "" {
			tag = fmt.Sprintf("gpu%d", i)
		}
		m := newTenantShell(t.Analysis, cfg, net, tag)
		if i == 0 {
			// Shared resources are registered after tenant 0's PCIe links
			// so a one-tenant cluster's resource order — and with it
			// flownet's bottleneck evaluation order — matches the
			// single-machine path exactly.
			var err error
			sh, err = NewShared(net, shCfg)
			if err != nil {
				return ClusterResult{}, err
			}
		}
		m.bind(sh, t.Policy)
		r, err := newRunner(m, t.ExecTrace)
		if err != nil {
			return ClusterResult{}, fmt.Errorf("gpu: tenant %d (%s): %w", i, t.Analysis.Graph.Name, err)
		}
		runners[i] = r
	}
	if err := drive(net, runners); err != nil {
		return ClusterResult{}, err
	}
	out := ClusterResult{Tenants: make([]Result, len(runners))}
	for i, r := range runners {
		out.Tenants[i] = r.result()
		if d := units.Duration(r.doneAt); d > out.Makespan {
			out.Makespan = d
		}
	}
	out.SSDStats = sh.dev.Stats()
	out.WriteAmp = sh.dev.WriteAmplification()
	return out, nil
}

// drive schedules the tenants on one shared clock: step every live tenant
// as far as it can go without consuming simulated time, then advance the
// clock to the earliest pending event. Tenant order is fixed, so the
// co-simulation is deterministic.
func drive(net *flownet.Network, tenants []*runner) error {
	// Global tensors seed in tenant order before the clock moves (their
	// initial host/flash placement contends on the shared pool and array).
	for _, r := range tenants {
		if err := r.start(); err != nil {
			return err
		}
	}
	for {
		next := units.Forever
		live := false
		for _, r := range tenants {
			if r.phase == phaseDone {
				continue
			}
			r.step()
			if r.err != nil {
				return r.err
			}
			switch r.phase {
			case phaseDone:
			case phaseExec:
				live = true
				next = units.MinTime(next, r.execEnd)
			default:
				live = true
			}
		}
		if !live {
			return nil
		}
		next = units.MinTime(next, net.NextEvent())
		if next == units.Forever {
			// Cannot happen: a waiting tenant always has in-flight
			// migrations (otherwise step streams or fails it) and an
			// executing tenant bounds next by its kernel end.
			return fmt.Errorf("gpu: cluster stalled with no pending events")
		}
		advanceShared(net, tenants, next)
	}
}

// advanceShared moves the shared clock to t, delivering each batch of flow
// completions to its owning machines at the moment it lands and letting
// every machine re-dispatch its metadata queues after each event — the
// multi-tenant generalisation of the single-machine wait loop.
func advanceShared(net *flownet.Network, tenants []*runner, t units.Time) {
	net.AdvanceEventwise(t, func(done []*flownet.Flow) {
		for _, f := range done {
			deliver(f)
		}
		for _, r := range tenants {
			r.m.dispatch()
		}
	})
}

// Cluster engine: co-simulates N tenant machines on one shared clock.
//
// Each tenant is a resumable runner (see run.go) owning its GPU, PCIe link,
// page table, and migration queues; the flash array (one FTL, shared
// channel bandwidth, shared GC state), host memory capacity, and the host
// DRAM bus are one substrate every tenant contends on.
//
// Scheduling is event-driven: tenants sleep on explicit wakeup sources — a
// kernel-end heap, flow-completion owner tags, the host pool's grant
// queue, and an arrival queue for jobs that join mid-simulation — and only
// the tenants whose events fire are stepped, so per-event cost is
// O(affected tenants · log n) instead of O(all tenants). A reference
// polling scheduler (the shared-clock loop this engine grew out of) is
// retained behind ClusterParams.Driver; differential tests pin the two
// bit-identical across every model × policy. A one-tenant cluster executes
// exactly the single-machine Run loop. ClusterParams.Shards > 1 selects the
// sharded driver (shard.go), byte-identical to the sequential one.
package gpu

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/flownet"
	"g10sim/internal/profile"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// ClusterTenant describes one job of a co-simulation.
type ClusterTenant struct {
	Analysis *vitality.Analysis
	// Policy must be a fresh instance per tenant; policies carry per-run
	// state.
	Policy Policy
	// Config's per-GPU fields (GPUCapacity, PCIeBandwidth, migration and
	// fault parameters, Iterations) apply to this tenant. Its SSD, host
	// capacity, and host bandwidth fields are overridden by the cluster's
	// shared configuration so the tenant's planner sees the array it will
	// actually run on.
	Config Config
	// ExecTrace overrides the replayed kernel durations (nil = the trace
	// the analysis was built from).
	ExecTrace *profile.Trace
	// Tag namespaces the tenant's PCIe resources ("gpu<i>" if empty).
	Tag string
	// ArrivalTime admits the job mid-simulation: it joins — seeding its
	// global tensors into the then-current shared pool and array — when
	// the shared clock reaches this value. <= 0 means present from the
	// start. The job's PCIe resources are registered up front so flownet's
	// resource order is a function of the tenant list alone.
	ArrivalTime units.Time
	// Recovery selects how this tenant resumes after an injected crash
	// (see faults.go and internal/policy). nil — or a run with no fault
	// plan — restarts from iteration zero with no checkpoint overhead.
	Recovery Recovery
}

// ClusterParams bundles a co-simulation's inputs.
type ClusterParams struct {
	Tenants []ClusterTenant
	// Shared configures the cross-tenant substrate: the SSD array, host
	// memory capacity, and host DRAM bandwidth (its per-GPU fields are
	// ignored).
	Shared Config
	// Shards splits the cluster across that many shard workers (see
	// shard.go); results are byte-identical at any value. <= 1 runs the
	// sequential scheduler.
	Shards int
	// Driver selects the scheduler implementation; the zero value is the
	// production event-driven scheduler (sharded when Shards > 1).
	Driver Driver
	// StepCount, when non-nil, accumulates the run's step-machine
	// invocations — the scheduler-cost metric BenchmarkClusterScaling pins
	// near-linear in tenant count. Per-run state: concurrent RunCluster
	// calls with distinct counters never contend.
	StepCount *int64
	// Engine, when non-nil, accumulates the run's engine-internal work
	// counters (see EngineStats). Like StepCount, this is an out-parameter
	// rather than a ClusterResult field so results stay byte-comparable
	// across drivers and shard counts in differential tests while the
	// bookkeeping costs — which legitimately differ between eager and lazy
	// engine modes — are observable separately.
	Engine *EngineStats
	// Faults injects a deterministic fault schedule (faults.go). The events
	// are applied at the same pump point in every driver, so byte-identity
	// across drivers and shard counts holds for faulted runs too. nil or
	// empty injects nothing and adds no overhead.
	Faults *FaultPlan
}

// EngineStats reports how much internal bookkeeping the simulation engine
// performed during a run — the work the O(events) refactor bounds — as
// opposed to what the simulated system did. The lazy engine keeps
// ProgressTouches and ReapScans proportional to the event count where the
// eager engine paid O(active flows) per clock advance; TestEngineStats
// asserts the bound, and `g10bench -json` reports the counters per suite.
type EngineStats struct {
	// FlowRecomputes counts max-min rate re-derivations of the flow
	// network; FlowSuccessions counts completions absorbed in place by the
	// succession fast path without one.
	FlowRecomputes  int64
	FlowSuccessions int64
	// ProgressTouches counts per-flow byte-accounting settlements;
	// ReapScans counts flows examined for completion. Both are O(events)
	// under the lazy engine and O(events x active flows) under the eager
	// reference (ForceEagerProgressForTest).
	ProgressTouches int64
	ReapScans       int64
	// TLBEpochShootdowns counts range shootdowns served by an epoch bump
	// plus range note instead of a per-entry walk, summed over tenant TLBs.
	TLBEpochShootdowns int64
	// FillRounds counts progressive-filling rounds (bottleneck selections)
	// and FillResScans the resource examinations they performed — the heap
	// fill pays per touched resource where the reference scan pays the whole
	// component every round. FrontierReuses counts rate re-derivations
	// served by a frontier refill of the recorded fill trace (prefix rates
	// reused verbatim) instead of a full component fill; it is zero under
	// ForceReferenceFillForTest.
	FillRounds     int64
	FillResScans   int64
	FrontierReuses int64
	// TenantAborts counts kernels and flows torn down by injected crashes;
	// TenantRestarts counts crash recoveries (a permanently crashed tenant
	// restarts zero times); CheckpointBytes totals durable snapshot bytes
	// written to flash, summed over tenants.
	TenantAborts    int64
	TenantRestarts  int64
	CheckpointBytes int64
}

// Add folds o into s.
func (s *EngineStats) Add(o EngineStats) {
	s.FlowRecomputes += o.FlowRecomputes
	s.FlowSuccessions += o.FlowSuccessions
	s.ProgressTouches += o.ProgressTouches
	s.ReapScans += o.ReapScans
	s.TLBEpochShootdowns += o.TLBEpochShootdowns
	s.FillRounds += o.FillRounds
	s.FillResScans += o.FillResScans
	s.FrontierReuses += o.FrontierReuses
	s.TenantAborts += o.TenantAborts
	s.TenantRestarts += o.TenantRestarts
	s.CheckpointBytes += o.CheckpointBytes
}

// Driver selects a cluster scheduler implementation.
type Driver int

const (
	// DriverAuto is the production path: the event-driven scheduler,
	// sharded when ClusterParams.Shards > 1.
	DriverAuto Driver = iota
	// DriverEvents forces the sequential event-driven scheduler even when a
	// shard count is set (the reference side of sharded differentials).
	DriverEvents
	// DriverPolling selects the retained polling reference scheduler
	// (differential tests; executable documentation of the semantics).
	DriverPolling
)

// TenantSpan is one job's admission and completion times on the shared
// clock.
type TenantSpan struct {
	Arrival units.Time
	Finish  units.Time
}

// Duration reports the job's wall-clock span.
func (s TenantSpan) Duration() units.Duration { return s.Finish - s.Arrival }

// ClusterResult reports one co-simulation.
type ClusterResult struct {
	// Tenants holds each job's result in input order. A tenant's SSDStats
	// and WriteAmp are its attributed share of the shared array (host
	// writes, and the GC work those writes triggered).
	Tenants []Result
	// Spans holds each job's arrival and finish times in input order.
	Spans []TenantSpan
	// Makespan is the clock value at which the last tenant finished.
	Makespan units.Duration
	// SSDStats aggregates the whole array; WriteAmp is the array-level
	// write amplification.
	SSDStats ssd.Stats
	WriteAmp float64
}

// RunCluster co-simulates every tenant against one flash array, host
// memory pool, and clock. Tenant failures (FlashNeuron-style footnote-1
// aborts) are reported in the per-tenant Result; hard simulator errors
// abort the whole run.
func RunCluster(p ClusterParams) (ClusterResult, error) {
	if len(p.Tenants) == 0 {
		return ClusterResult{}, fmt.Errorf("gpu: cluster with no tenants")
	}
	if !p.Faults.Empty() {
		if err := p.Faults.Validate(len(p.Tenants)); err != nil {
			return ClusterResult{}, err
		}
	}
	shCfg := p.Shared.withDefaults()
	net := flownet.New()
	var sh *Shared
	runners := make([]*runner, len(p.Tenants))
	for i, t := range p.Tenants {
		cfg := t.Config.withDefaults()
		cfg.SSD = shCfg.SSD
		cfg.HostCapacity = shCfg.HostCapacity
		cfg.HostDRAMBandwidth = shCfg.HostDRAMBandwidth
		tag := t.Tag
		if tag == "" {
			tag = fmt.Sprintf("gpu%d", i)
		}
		m := newTenantShell(t.Analysis, cfg, net, tag)
		m.idx = i
		if i == 0 {
			// Shared resources are registered after tenant 0's PCIe links
			// so a one-tenant cluster's resource order — and with it
			// flownet's bottleneck evaluation order — matches the
			// single-machine path exactly.
			var err error
			sh, err = NewShared(net, shCfg)
			if err != nil {
				return ClusterResult{}, err
			}
		}
		m.bind(sh, t.Policy)
		r, err := newRunner(m, t.ExecTrace)
		if err != nil {
			return ClusterResult{}, fmt.Errorf("gpu: tenant %d (%s): %w", i, t.Analysis.Graph.Name, err)
		}
		r.idx = i
		r.arrival = t.ArrivalTime
		runners[i] = r
	}
	opt := driveOptions{driver: p.Driver, shards: p.Shards, steps: p.StepCount}
	if !p.Faults.Empty() {
		opt.faults = newFaultClock(p.Faults, runners, sh, net)
		mtbf := p.Faults.MTBF(len(p.Tenants))
		for i, t := range p.Tenants {
			if t.Recovery == nil {
				continue
			}
			r := runners[i]
			// A snapshot covers the job's global (weight/optimizer) tensors;
			// its write cost is bounded by the eviction route's narrowest
			// link. Both feed the policy's Young/Daly interval derivation.
			var snap units.Bytes
			for _, tn := range t.Analysis.Graph.Tensors {
				if tn.Kind == dnn.Global {
					snap += tn.Size
				}
			}
			r.ckptBytes = snap
			bw := r.m.cfg.PCIeBandwidth
			if w := sh.dev.EffectiveWriteBandwidth(); w < bw {
				bw = w
			}
			r.ckptEvery = t.Recovery.CheckpointInterval(r.exec.Total(), units.TransferTime(snap, bw), mtbf)
		}
	}
	if err := drive(net, runners, opt); err != nil {
		return ClusterResult{}, err
	}
	out := ClusterResult{
		Tenants: make([]Result, len(runners)),
		Spans:   make([]TenantSpan, len(runners)),
	}
	for i, r := range runners {
		out.Tenants[i] = r.result()
		arr := r.arrival
		if arr < 0 {
			arr = 0
		}
		out.Spans[i] = TenantSpan{Arrival: arr, Finish: r.doneAt}
		if d := units.Duration(r.doneAt); d > out.Makespan {
			out.Makespan = d
		}
	}
	out.SSDStats = sh.dev.Stats()
	out.WriteAmp = sh.dev.WriteAmplification()
	if p.Engine != nil {
		es := EngineStats{
			FlowRecomputes:  net.Recomputes(),
			FlowSuccessions: net.Successions(),
			ProgressTouches: net.ProgressTouches(),
			ReapScans:       net.ReapScans(),
			FillRounds:      net.FillRounds(),
			FillResScans:    net.FillResScans(),
			FrontierReuses:  net.FrontierReuses(),
		}
		for _, r := range runners {
			es.TLBEpochShootdowns += r.m.tlb.EpochShootdowns()
			es.TenantAborts += int64(r.abortedKerns + r.abortedFlows)
			es.TenantRestarts += int64(r.restarts)
			es.CheckpointBytes += int64(r.ckptWritten)
		}
		p.Engine.Add(es)
	}
	return out, nil
}

// driveOptions is the per-run scheduler configuration — replacing what used
// to be process-global toggles, so concurrent runs (and concurrent shards
// within one run) never share mutable state.
type driveOptions struct {
	driver Driver
	shards int
	steps  *int64
	faults *faultClock
}

// drive schedules the tenants on one shared clock.
func drive(net *flownet.Network, tenants []*runner, opt driveOptions) error {
	var steps int64
	var err error
	switch {
	case opt.driver == DriverPolling:
		err = drivePolling(net, tenants, opt.faults, &steps)
	case opt.driver == DriverAuto && opt.shards > 1:
		err = driveSharded(net, tenants, opt.shards, opt.faults, &steps)
	default:
		err = driveEvents(net, tenants, opt.faults, &steps)
	}
	if opt.steps != nil {
		*opt.steps += steps
	}
	return err
}

// execHeap orders executing tenants by kernel-end time (ties by index, so
// wake order is deterministic).
type execEntry struct {
	at  units.Time
	idx int
}

type execHeap []execEntry

func (h execHeap) Len() int { return len(h) }
func (h execHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].idx < h[j].idx
}
func (h execHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *execHeap) Push(x any)   { *h = append(*h, x.(execEntry)) }
func (h *execHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// bitset is a fixed-size index set iterated in ascending order, so wake and
// dispatch rounds preserve the deterministic tenant ordering the polling
// scheduler had.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// drain appends the set indices (ascending) to out and clears the set.
func (b bitset) drain(out []int) []int {
	for wi, w := range b {
		for w != 0 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
		b[wi] = 0
	}
	return out
}

// forEach visits the set indices in ascending order. The visitor may clear
// bits (including the current one) but must not set bits below the cursor.
func (b bitset) forEach(fn func(i int)) {
	for wi := range b {
		w := b[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			fn(i)
		}
	}
}

// wakeSet is a bitset with a word-range watermark: iteration touches only
// [lo, hi], the words that can hold set bits, instead of the whole backing
// array. The drivers size their sets over every tenant, and a serving trace
// creates one tenant per request — 10^6 words-scans per round would make the
// per-event cost O(tenants) and the whole run quadratic. Live indices
// cluster (arrivals admit in index order and old requests finish), so the
// window tracks the active span, not the trace length. Bounds are
// conservative: clear() leaves them alone, and any()/forEach() tighten or
// reset them while scanning.
type wakeSet struct {
	bits   bitset
	lo, hi int // word bounds of possibly-set words; lo > hi means empty
}

func newWakeSet(n int) *wakeSet { return &wakeSet{bits: newBitset(n), lo: 1, hi: 0} }

func (s *wakeSet) set(i int) {
	w := i >> 6
	if s.lo > s.hi {
		s.lo, s.hi = w, w
	} else if w < s.lo {
		s.lo = w
	} else if w > s.hi {
		s.hi = w
	}
	s.bits.set(i)
}

func (s *wakeSet) clear(i int) { s.bits.clear(i) }

func (s *wakeSet) any() bool {
	for w := s.lo; w <= s.hi; w++ {
		if s.bits[w] != 0 {
			s.lo = w
			return true
		}
	}
	s.lo, s.hi = 1, 0
	return false
}

// drain appends the set indices (ascending) to out and empties the set.
func (s *wakeSet) drain(out []int) []int {
	for wi := s.lo; wi <= s.hi; wi++ {
		w := s.bits[wi]
		for w != 0 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
		s.bits[wi] = 0
	}
	s.lo, s.hi = 1, 0
	return out
}

// forEach visits set indices ascending; the visitor may clear bits and may
// set bits above the cursor. Bounds are rebuilt from what survives.
func (s *wakeSet) forEach(fn func(i int)) {
	lo, hi := s.lo, s.hi
	s.lo, s.hi = 1, 0 // fn's set() calls and the post-word checks rebuild
	for wi := lo; wi <= hi; wi++ {
		w := s.bits[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			fn(i)
		}
		if s.bits[wi] != 0 {
			if s.lo > s.hi || wi < s.lo {
				s.lo = wi
			}
			if wi > s.hi {
				s.hi = wi
			}
		}
	}
}

// driveEvents is the production scheduler: tenants sleep on a global
// time-ordered wakeup structure — the kernel-end heap, the network's event
// heap (whose completions carry owner tags), the host pool's grant queue,
// and the arrival queue — and only woken tenants are stepped.
//
// Determinism and bit-identity with the polling reference rest on two
// invariants. First, within a round every woken tenant is stepped in index
// order, exactly the order the polling loop used. Second, stepping an
// un-woken tenant is a no-op: a blocked tenant's private state changes only
// through its own flow completions, and its re-step reads shared state
// (host pool, flash allocator) only after such a change — so skipping the
// no-op steps cannot alter any decision. Re-dispatch of the migration
// metadata queues per network event is likewise confined to machines with
// queued requests (for the others the arbiter pop/requeue cycle is
// observationally empty).
func driveEvents(net *flownet.Network, tenants []*runner, faults *faultClock, steps *int64) error {
	n := len(tenants)
	ready := newWakeSet(n)
	queued := newWakeSet(n)
	var execH execHeap
	var wake []int

	// Jobs arriving mid-simulation, ordered by (arrival, index).
	var arrivals []int
	for i, r := range tenants {
		if r.arrival > 0 {
			r.phase = phasePending
			arrivals = append(arrivals, i)
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		a, b := tenants[arrivals[i]], tenants[arrivals[j]]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		return a.idx < b.idx
	})
	arrCursor := 0

	// Host-pool grant subscriptions wake their tenant by marking it ready.
	for _, r := range tenants {
		r := r
		r.onHostWake = func() {
			r.hostSubscribed = false
			ready.set(r.idx)
		}
	}

	// Global tensors of day-zero tenants seed in tenant order before the
	// clock moves (their initial host/flash placement contends on the
	// shared pool and array).
	remaining := n
	for _, r := range tenants {
		if r.phase == phasePending {
			continue
		}
		if err := r.start(); err != nil {
			return err
		}
		ready.set(r.idx)
	}

	for {
		// Step round: every woken tenant, in index order. Wakes raised
		// during the round (e.g. a freed host reservation) are stepped in
		// a follow-up round at the same clock before time advances.
		wake = ready.drain(wake[:0])
		for _, i := range wake {
			r := tenants[i]
			if r.phase == phaseDone || r.phase == phasePending || r.phase == phaseCrashed {
				continue
			}
			*steps++
			r.step()
			if r.err != nil {
				return r.err
			}
			switch r.phase {
			case phaseDone:
				remaining--
			case phaseExec:
				if !r.inExecHeap {
					r.inExecHeap = true
					heap.Push(&execH, execEntry{at: r.execEnd, idx: i})
				}
			}
			if r.queuedWork() {
				queued.set(i)
			} else {
				queued.clear(i)
			}
		}
		if ready.any() {
			continue
		}
		if remaining == 0 {
			return nil
		}

		// Advance the shared clock to the earliest pending event.
		next := units.Forever
		if len(execH) > 0 {
			next = execH[0].at
		}
		if arrCursor < len(arrivals) {
			next = units.MinTime(next, tenants[arrivals[arrCursor]].arrival)
		}
		next = units.MinTime(next, units.MinTime(net.NextEvent(), faults.next()))
		if next == units.Forever {
			// Cannot happen: a waiting tenant always has in-flight
			// migrations (otherwise step streams or fails it), an
			// executing tenant bounds next by its kernel end, a pending
			// tenant by its arrival, and a crashed tenant by its repair.
			return fmt.Errorf("gpu: cluster stalled with no pending events")
		}
		net.AdvanceEventwise(next, func(done []*flownet.Flow) {
			for _, f := range done {
				deliver(f)
				if o := f.Owner; o >= 0 {
					ready.set(o)
					if tenants[o].queuedWork() {
						queued.set(o)
					} else {
						queued.clear(o)
					}
				}
			}
			// Every machine with queued migration metadata re-dispatches
			// after each event, in index order — the arbiter's transfer-set
			// rotation the polling loop performed for all tenants.
			queued.forEach(func(i int) {
				r := tenants[i]
				r.redispatch()
				if !r.queuedWork() {
					queued.clear(i)
				}
			})
		})
		now := net.Now()
		for len(execH) > 0 && execH[0].at <= now {
			e := heap.Pop(&execH).(execEntry)
			tenants[e.idx].inExecHeap = false
			ready.set(e.idx)
		}
		// Fault pump point — identical in every driver: after the network
		// advance and kernel-end pops, before arrival admission. A crashed
		// victim's heap entries and wake bits go stale and pop as no-ops; a
		// repaired tenant wakes like any other event.
		if faults != nil {
			finished, err := faults.apply(now, func(i int) { ready.set(i) })
			if err != nil {
				return err
			}
			remaining -= finished
		}
		for arrCursor < len(arrivals) && tenants[arrivals[arrCursor]].arrival <= now {
			r := tenants[arrivals[arrCursor]]
			arrCursor++
			if err := r.admit(); err != nil {
				return err
			}
			ready.set(r.idx)
		}
	}
}

// drivePolling is the reference scheduler the event-driven engine must
// match bit for bit: step every live tenant until only the clock can
// unblock it, then advance the shared clock to the earliest pending event.
// Its per-round cost is O(all tenants); it exists for differential tests
// (ForcePollingDriverForTest) and as executable documentation of the
// semantics.
func drivePolling(net *flownet.Network, tenants []*runner, faults *faultClock, steps *int64) error {
	// Inference tenants' grants (server pump wakes) can land mid-round for
	// an index already stepped; the woke flag re-rounds at the same clock,
	// matching the event driver's same-clock follow-up rounds. Training
	// tenants keep onHostWake nil here so the polling reference semantics
	// they are differentially pinned against are untouched.
	woke := false
	for _, r := range tenants {
		if r.inf != nil {
			r.onHostWake = func() { woke = true }
		}
	}
	for _, r := range tenants {
		if r.arrival > 0 {
			r.phase = phasePending
			continue
		}
		if err := r.start(); err != nil {
			return err
		}
	}
	for {
		woke = false
		next := units.Forever
		live := false
		for _, r := range tenants {
			if r.phase == phaseDone {
				continue
			}
			if r.phase == phasePending {
				live = true
				next = units.MinTime(next, r.arrival)
				continue
			}
			*steps++
			r.step()
			if r.err != nil {
				return r.err
			}
			switch r.phase {
			case phaseDone:
			case phaseExec:
				live = true
				next = units.MinTime(next, r.execEnd)
			default:
				live = true
			}
		}
		if !live {
			return nil
		}
		if woke {
			continue // a mid-round grant: re-round at the same clock
		}
		next = units.MinTime(next, units.MinTime(net.NextEvent(), faults.next()))
		if next == units.Forever {
			return fmt.Errorf("gpu: cluster stalled with no pending events")
		}
		advanceShared(net, tenants, next)
		// Fault pump point (same position as the event driver: after the
		// advance, before arrival admission). Wakes are no-ops here — the
		// polling loop re-steps every live tenant anyway.
		if faults != nil {
			if _, err := faults.apply(net.Now(), func(int) {}); err != nil {
				return err
			}
		}
		for _, r := range tenants {
			if r.phase == phasePending && r.arrival <= net.Now() {
				if err := r.admit(); err != nil {
					return err
				}
			}
		}
	}
}

// advanceShared moves the shared clock to t, delivering each batch of flow
// completions to its owning machines at the moment it lands and letting
// every machine re-dispatch its metadata queues after each event — the
// multi-tenant generalisation of the single-machine wait loop (polling
// reference; the event driver confines the re-dispatch to machines with
// queued requests).
func advanceShared(net *flownet.Network, tenants []*runner, t units.Time) {
	net.AdvanceEventwise(t, func(done []*flownet.Flow) {
		for _, f := range done {
			deliver(f)
		}
		for _, r := range tenants {
			r.redispatch()
		}
	})
}

package gpu

import (
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// testPolicy is a reactive LRU policy (Base UVM semantics) local to this
// package so gpu's tests do not depend on internal/policy.
type testPolicy struct {
	m      *Machine
	name   string
	strict bool
}

func (p *testPolicy) Name() string           { return p.name }
func (p *testPolicy) Attach(m *Machine)      { p.m = m }
func (p *testPolicy) AtBoundary(iter, b int) {}
func (p *testPolicy) OnMiss(k int, t *dnn.Tensor) {
	p.m.RequestFetch(t.ID, uvm.FaultFetch)
}
func (p *testPolicy) MakeRoom(need units.Bytes, pinned map[int]bool) bool {
	var freed units.Bytes
	for _, id := range p.m.ResidentLRU() {
		if freed >= need {
			break
		}
		if pinned[id] {
			continue
		}
		t := p.m.Graph().Tensors[id]
		dst := uvm.InHost
		if p.m.HostFree() < t.Size {
			dst = uvm.InFlash
		}
		if p.m.RequestEvict(id, dst) {
			freed += t.Size
		}
	}
	return freed > 0
}
func (p *testPolicy) UsesUVM() bool     { return !p.strict }
func (p *testPolicy) DirectFlash() bool { return false }

// smallSSD returns an SSD config sized for MB-scale tests.
func smallSSD() ssd.Config {
	cfg := ssd.ZNAND()
	cfg.Capacity = 4 * units.GB
	cfg.PageSize = 64 * units.KB
	return cfg
}

func testCfg(gpuCap, hostCap units.Bytes) Config {
	cfg := Default()
	cfg.GPUCapacity = gpuCap
	cfg.HostCapacity = hostCap
	cfg.SSD = smallSSD()
	cfg.TranslationGranularity = 64 * units.KB
	return cfg
}

func analyze(t testing.TB, g *dnn.Graph, timeScale float64) *vitality.Analysis {
	t.Helper()
	tr := profile.Profile(g, profile.A100(timeScale))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIdealRunMatchesTrace(t *testing.T) {
	a := analyze(t, models.TinyMLP(32), 50)
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "Ideal"},
		Config:   testCfg(1<<40, 1<<40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("ideal run failed: %s", res.FailReason)
	}
	if res.IterationTime != res.IdealTime {
		t.Errorf("ideal iteration %v != trace total %v", res.IterationTime, res.IdealTime)
	}
	if res.TotalTraffic() != 0 {
		t.Errorf("ideal run moved %v", res.TotalTraffic())
	}
	if res.Faults != 0 {
		t.Errorf("ideal run faulted %d times", res.Faults)
	}
	if res.NormalizedPerf() != 1.0 {
		t.Errorf("normalized perf = %v", res.NormalizedPerf())
	}
}

func TestPressuredRunFaultsAndCompletes(t *testing.T) {
	g := models.TinyMLP(64)
	a := analyze(t, g, 50)
	// Capacity at 50% of peak forces swapping.
	cap := a.PeakAlive() / 2
	if cap < a.PeakActive() {
		t.Skip("test net working set too large for pressure scenario")
	}
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "Base UVM"},
		Config:   testCfg(cap, 1*units.GB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if res.Faults == 0 {
		t.Error("no faults under 2x oversubscription")
	}
	if res.IterationTime <= res.IdealTime {
		t.Errorf("pressured run (%v) not slower than ideal (%v)", res.IterationTime, res.IdealTime)
	}
	if res.TotalTraffic() == 0 {
		t.Error("no migration traffic")
	}
	if got := len(res.KernelTimes); got != len(g.Kernels) {
		t.Errorf("kernel times = %d, kernels = %d", got, len(g.Kernels))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		a := analyze(t, models.TinyMLP(64), 50)
		res, err := Run(RunParams{
			Analysis: a,
			Policy:   &testPolicy{name: "Base UVM"},
			Config:   testCfg(a.PeakAlive()/2, 1*units.GB),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.IterationTime != r2.IterationTime || r1.Faults != r2.Faults || r1.TotalTraffic() != r2.TotalTraffic() {
		t.Errorf("non-deterministic: %v/%d/%v vs %v/%d/%v",
			r1.IterationTime, r1.Faults, r1.TotalTraffic(),
			r2.IterationTime, r2.Faults, r2.TotalTraffic())
	}
}

func TestStrictPolicyFailsOnOverflow(t *testing.T) {
	g := models.TinyMLP(64)
	a := analyze(t, g, 50)
	// Capacity below the largest working set: a strict (non-UVM) memory
	// manager must fail, a UVM one must stream.
	cap := a.PeakActive() - units.MB
	if cap <= 0 {
		t.Skip("working set too small")
	}
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "strict", strict: true},
		Config:   testCfg(cap, 1*units.GB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Error("strict policy did not fail with working set above capacity")
	}

	res2, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "uvm"},
		Config:   testCfg(cap, 1*units.GB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed {
		t.Fatalf("UVM policy failed: %s", res2.FailReason)
	}
	if res2.OverflowKernels == 0 {
		t.Error("UVM policy reported no overflow kernels")
	}
}

func TestG10ProgramBeatsReactive(t *testing.T) {
	g := models.TinyCNN(128)
	a := analyze(t, g, 200)
	cap := units.Bytes(float64(a.PeakAlive()) * 0.6)
	if cap < a.PeakActive() {
		cap = a.PeakActive() + units.MB
	}
	cfg := testCfg(cap, 2*units.GB)

	base, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: "Base UVM"}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	pcfg := planner.Default()
	pcfg.GPUCapacity = cap
	pcfg.HostCapacity = 2 * units.GB
	pcfg.SSDWriteBW = cfg.SSD.WriteBandwidth
	pcfg.SSDReadBW = cfg.SSD.ReadBandwidth
	pcfg.HostWriteBW = cfg.PCIeBandwidth
	pcfg.HostReadBW = cfg.PCIeBandwidth
	plan := planner.New(a, pcfg)
	g10res, err := Run(RunParams{
		Analysis: a,
		Policy:   &plannedPolicy{testPolicy: testPolicy{name: "G10"}, prog: plan.Program},
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g10res.Failed || base.Failed {
		t.Fatalf("failed runs: g10=%v base=%v", g10res.FailReason, base.FailReason)
	}
	t.Logf("base: %v (%d faults), g10: %v (%d faults), ideal %v",
		base.IterationTime, base.Faults, g10res.IterationTime, g10res.Faults, base.IdealTime)
	if g10res.IterationTime >= base.IterationTime {
		t.Errorf("planned migrations (%v) not faster than reactive (%v)", g10res.IterationTime, base.IterationTime)
	}
	if g10res.Faults >= base.Faults {
		t.Errorf("planned migrations faulted %d >= reactive %d", g10res.Faults, base.Faults)
	}
}

// plannedPolicy runs a precomputed program with reactive fallbacks.
type plannedPolicy struct {
	testPolicy
	prog *planner.Program
}

func (p *plannedPolicy) Program(a *vitality.Analysis, cfg Config) *planner.Program { return p.prog }
func (p *plannedPolicy) DirectFlash() bool                                         { return true }

func TestRunRejectsMismatchedExecTrace(t *testing.T) {
	a := analyze(t, models.TinyMLP(8), 1)
	_, err := Run(RunParams{
		Analysis:  a,
		Policy:    &testPolicy{name: "x"},
		Config:    testCfg(1<<40, 1<<40),
		ExecTrace: &profile.Trace{Durations: []units.Duration{1}},
	})
	if err == nil {
		t.Error("expected mismatch error")
	}
}

func TestOversizedGlobalsSeedToHost(t *testing.T) {
	// A weight bigger than GPU memory starts in host memory; the kernel
	// that needs it streams (its working set exceeds the GPU outright).
	b := dnn.NewBuilder("fat", 1)
	w := b.Tensor("W", dnn.Global, 100*units.MB)
	x := b.Tensor("X", dnn.Intermediate, units.MB)
	b.Kernel("k", dnn.Forward, 1, []*dnn.Tensor{w, x}, []*dnn.Tensor{x})
	g := b.MustBuild()
	a, err := vitality.Analyze(g, &profile.Trace{Durations: []units.Duration{units.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "x"},
		Config:   testCfg(10*units.MB, units.GB),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if res.OverflowKernels == 0 {
		t.Error("expected overflow streaming for the oversized working set")
	}
}

func TestWriteAmpAndTLBReported(t *testing.T) {
	a := analyze(t, models.TinyMLP(64), 50)
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "Base UVM"},
		Config:   testCfg(a.PeakAlive()/2, 4*units.MB), // tiny host forces SSD traffic
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteAmp < 1 {
		t.Errorf("write amplification %v < 1", res.WriteAmp)
	}
	if res.GPUToSSD == 0 {
		t.Error("no SSD eviction traffic despite tiny host memory")
	}
	if res.TLBHitRate < 0 || res.TLBHitRate > 1 {
		t.Errorf("TLB hit rate %v out of range", res.TLBHitRate)
	}
}

func TestSlowdownCDF(t *testing.T) {
	a := analyze(t, models.TinyMLP(32), 50)
	res, err := Run(RunParams{
		Analysis: a,
		Policy:   &testPolicy{name: "Ideal"},
		Config:   testCfg(1<<40, 1<<40),
	})
	if err != nil {
		t.Fatal(err)
	}
	cdf := SlowdownCDF(res, a.Trace)
	if len(cdf) != len(res.KernelTimes) {
		t.Fatalf("cdf length %d", len(cdf))
	}
	for i, v := range cdf {
		if v < 0.99 {
			t.Errorf("cdf[%d] = %v < 1 for ideal run", i, v)
		}
		if i > 0 && cdf[i] < cdf[i-1] {
			t.Error("cdf not sorted")
		}
	}
}

func TestNormalizedHelpers(t *testing.T) {
	r := Result{IdealTime: units.Second, IterationTime: 2 * units.Second, Batch: 10}
	if r.NormalizedPerf() != 0.5 {
		t.Errorf("NormalizedPerf = %v", r.NormalizedPerf())
	}
	if r.Throughput() != 5 {
		t.Errorf("Throughput = %v", r.Throughput())
	}
	failed := Result{Failed: true, IdealTime: units.Second, IterationTime: units.Second}
	if failed.NormalizedPerf() != 0 || failed.Throughput() != 0 {
		t.Error("failed runs must report zero performance")
	}
}

// TestSteadyState: measuring iteration 2 vs iteration 3 of the same
// workload must agree closely — the simulator reaches a steady state after
// one warm-up iteration.
func TestSteadyState(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cap := units.Bytes(float64(a.PeakAlive()) * 0.6)
	if cap < a.PeakActive() {
		cap = a.PeakActive() + units.MB
	}
	run := func(iters int) Result {
		cfg := testCfg(cap, 2*units.GB)
		cfg.Iterations = iters
		res, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: "Base UVM"}, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	two, three := run(2), run(3)
	ratio := float64(three.IterationTime) / float64(two.IterationTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("iteration 3 (%v) deviates from iteration 2 (%v) by %0.f%%",
			three.IterationTime, two.IterationTime, 100*(ratio-1))
	}
}

// TestMoreGPUMemoryNeverHurts: a strictly larger GPU cannot slow any
// policy down by a meaningful margin.
func TestMoreGPUMemoryNeverHurts(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	small := units.Bytes(float64(a.PeakAlive()) * 0.55)
	if small < a.PeakActive() {
		small = a.PeakActive() + units.MB
	}
	big := units.Bytes(float64(a.PeakAlive()) * 0.85)
	run := func(cap units.Bytes) Result {
		res, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: "Base UVM"}, Config: testCfg(cap, 2*units.GB)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rs, rb := run(small), run(big)
	if float64(rb.IterationTime) > 1.05*float64(rs.IterationTime) {
		t.Errorf("bigger GPU slower: %v (%.0fMB) vs %v (%.0fMB)",
			rb.IterationTime, float64(big)/1e6, rs.IterationTime, float64(small)/1e6)
	}
	if rb.TotalTraffic() > rs.TotalTraffic() {
		t.Errorf("bigger GPU moved more data: %v vs %v", rb.TotalTraffic(), rs.TotalTraffic())
	}
}

package gpu

import (
	"reflect"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/units"
)

// shardCounts are the shard dimensions every sharded differential runs:
// 1 (degenerates to the sequential driver), even splits, an odd split, and
// more shards than some clusters have tenants.
var shardCounts = []int{1, 2, 3, 4, 8}

// runSharded runs build()'s cluster at every shard count and fails unless
// each result — including the step count — is bit-identical to want.
func runSharded(t *testing.T, build func() ClusterParams, want ClusterResult, wantSteps int64) {
	t.Helper()
	for _, shards := range shardCounts {
		p := build()
		p.Shards = shards
		var steps int64
		p.StepCount = &steps
		got := mustRunCluster(t, p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from sequential driver:\nsharded:    %+v\nsequential: %+v", shards, got, want)
		}
		if steps != wantSteps {
			t.Errorf("shards=%d: %d scheduler steps, sequential took %d", shards, steps, wantSteps)
		}
	}
}

// TestShardedMatchesSequential: the sharded driver must reproduce the
// sequential event-driven driver byte for byte at every shard count —
// heterogeneous tenants, tight and roomy host pools, strict policies,
// adaptive replanning, chunk trains, and mid-run arrivals.
func TestShardedMatchesSequential(t *testing.T) {
	a1 := analyze(t, models.TinyCNN(128), 200)
	a2 := analyze(t, models.TinyMLP(64), 50)
	for _, tc := range []struct {
		name     string
		hostCap  units.Bytes
		chunk    units.Bytes
		strict   bool
		adaptive bool
		arrivals []units.Time
	}{
		{name: "tight-host", hostCap: 4 * units.MB},
		{name: "mid-host", hostCap: 24 * units.MB},
		{name: "roomy-host", hostCap: 256 * units.MB},
		{name: "strict", hostCap: 256 * units.MB, strict: true},
		{name: "chunk-trains", hostCap: 24 * units.MB, chunk: 2 * units.MB},
		{name: "staggered-arrivals", hostCap: 24 * units.MB,
			arrivals: []units.Time{0, 5 * units.Millisecond, 20 * units.Millisecond}},
		{name: "same-time-arrivals", hostCap: 8 * units.MB,
			arrivals: []units.Time{0, 10 * units.Millisecond, 10 * units.Millisecond}},
		{name: "adaptive", hostCap: 8 * units.MB, adaptive: true,
			arrivals: []units.Time{0, 0, 5 * units.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() ClusterParams {
				cfg1 := testCfg(a1.PeakAlive()/2, tc.hostCap)
				cfg2 := testCfg(a2.PeakAlive()/2, tc.hostCap)
				if tc.chunk > 0 {
					cfg1.MigrationChunk = tc.chunk
					cfg2.MigrationChunk = tc.chunk
				}
				if tc.adaptive {
					cfg1.Iterations = 3
					cfg2.Iterations = 3
				}
				pol := func(name string) Policy {
					if tc.adaptive {
						return &replanPolicy{testPolicy: testPolicy{name: name}, threshold: 1.05}
					}
					return &testPolicy{name: name, strict: tc.strict}
				}
				p := ClusterParams{
					Tenants: []ClusterTenant{
						{Analysis: a1, Policy: pol("t1"), Config: cfg1},
						{Analysis: a2, Policy: pol("t2"), Config: cfg2},
						{Analysis: a1, Policy: pol("t3"), Config: cfg1},
					},
					Shared: cfg1,
				}
				for i := range tc.arrivals {
					p.Tenants[i].ArrivalTime = tc.arrivals[i]
				}
				return p
			}
			seq := build()
			var seqSteps int64
			seq.StepCount = &seqSteps
			want := mustRunCluster(t, seq)
			runSharded(t, build, want, seqSteps)
		})
	}
}

// TestShardedMatchesSequentialFleetScale: a larger cluster where shards do
// real partitioning work (16 tenants with perturbed traces, 8 of them
// arriving mid-run), compared at every shard count.
func TestShardedMatchesSequentialFleetScale(t *testing.T) {
	const n = 16
	build := func() ClusterParams {
		p := scalingParams(t, n)
		for i := range p.Tenants {
			if i%2 == 1 {
				p.Tenants[i].ArrivalTime = units.Time(i) * 3 * units.Millisecond
			}
		}
		return p
	}
	seq := build()
	var seqSteps int64
	seq.StepCount = &seqSteps
	want := mustRunCluster(t, seq)
	runSharded(t, build, want, seqSteps)
}

// TestShardedForcedSequentialDriver: DriverEvents pins the sequential
// scheduler even when a shard count is set — the reference side the
// differentials rely on.
func TestShardedForcedSequentialDriver(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(a.PeakAlive()/2, 24*units.MB)
	build := func(drv Driver, shards int) ClusterResult {
		return mustRunCluster(t, ClusterParams{
			Tenants: []ClusterTenant{
				{Analysis: a, Policy: &testPolicy{name: "a"}, Config: cfg},
				{Analysis: a, Policy: &testPolicy{name: "b"}, Config: cfg},
			},
			Shared: cfg,
			Driver: drv,
			Shards: shards,
		})
	}
	seq := build(DriverEvents, 0)
	forced := build(DriverEvents, 4)
	if !reflect.DeepEqual(seq, forced) {
		t.Error("DriverEvents with Shards set diverged from the sequential run")
	}
}

// TestPlanShards pins the partition: contiguous, balanced, covering every
// index exactly once, and never more shards than tenants.
func TestPlanShards(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{1, 8, 1}, {3, 8, 3}, {8, 8, 8}, {10, 3, 3}, {256, 8, 8}, {7, 2, 2},
	} {
		spans := planShards(tc.n, tc.k)
		if len(spans) != tc.want {
			t.Errorf("planShards(%d,%d) = %d spans, want %d", tc.n, tc.k, len(spans), tc.want)
		}
		next := 0
		for _, sp := range spans {
			if sp.lo != next || sp.hi <= sp.lo {
				t.Fatalf("planShards(%d,%d): bad span %+v at cursor %d", tc.n, tc.k, sp, next)
			}
			next = sp.hi
		}
		if next != tc.n {
			t.Errorf("planShards(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
		for _, sp := range spans {
			if size := sp.hi - sp.lo; size > tc.n/tc.want+1 {
				t.Errorf("planShards(%d,%d): span %+v unbalanced", tc.n, tc.k, sp)
			}
		}
	}
	if got := len(planShards(5, 0)); got != 1 {
		t.Errorf("planShards(5,0) = %d spans, want 1", got)
	}
}

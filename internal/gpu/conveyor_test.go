package gpu

import (
	"fmt"
	"reflect"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// runFourWays executes the same cluster parameters under every scheduler ×
// migration-path combination: {event-driven, polling} × {conveyor,
// per-chunk reference}. All four must agree bit for bit.
func runFourWays(t *testing.T, build func() ClusterParams) {
	t.Helper()
	ev, poll := runBothDrivers(t, build)
	ForceChunkReferenceForTest(true)
	defer ForceChunkReferenceForTest(false)
	refEv, refPoll := runBothDrivers(t, build)
	if !reflect.DeepEqual(ev, refEv) {
		t.Errorf("conveyor diverged from per-chunk reference (event driver):\nconveyor:  %+v\nreference: %+v", ev, refEv)
	}
	if !reflect.DeepEqual(poll, refPoll) {
		t.Errorf("conveyor diverged from per-chunk reference (polling driver):\nconveyor:  %+v\nreference: %+v", poll, refPoll)
	}
	if !reflect.DeepEqual(ev, poll) {
		t.Errorf("event driver diverged from polling under the conveyor:\nevent:   %+v\npolling: %+v", ev, poll)
	}
}

// TestConveyorMatchesChunkReference: the conveyor fast path must reproduce
// the naive per-chunk migration path bit for bit — under memory pressure
// that blocks fetch chunks mid-train (forcing the slow-path fallback), with
// strict policies, across both cluster drivers, and with dynamic arrivals.
// A small MigrationChunk makes every migration a long train.
func TestConveyorMatchesChunkReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		hostCap  units.Bytes
		chunk    units.Bytes
		strict   bool
		arrivals []units.Time
	}{
		{name: "tight-host", hostCap: 4 * units.MB, chunk: 2 * units.MB},
		{name: "mid-host", hostCap: 24 * units.MB, chunk: 2 * units.MB},
		{name: "roomy-host", hostCap: 256 * units.MB, chunk: 4 * units.MB},
		{name: "strict", hostCap: 256 * units.MB, chunk: 2 * units.MB, strict: true},
		{name: "staggered-arrivals", hostCap: 24 * units.MB, chunk: 2 * units.MB,
			arrivals: []units.Time{0, 5 * units.Millisecond, 20 * units.Millisecond}},
		{name: "default-chunk", hostCap: 24 * units.MB, chunk: 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a1 := analyze(t, models.TinyCNN(128), 200)
			a2 := analyze(t, models.TinyMLP(64), 50)
			build := func() ClusterParams {
				cfg1 := testCfg(a1.PeakAlive()/2, tc.hostCap)
				cfg2 := testCfg(a2.PeakAlive()/2, tc.hostCap)
				if tc.chunk > 0 {
					cfg1.MigrationChunk = tc.chunk
					cfg2.MigrationChunk = tc.chunk
				}
				p := ClusterParams{
					Tenants: []ClusterTenant{
						{Analysis: a1, Policy: &testPolicy{name: "t1", strict: tc.strict}, Config: cfg1},
						{Analysis: a2, Policy: &testPolicy{name: "t2"}, Config: cfg2},
						{Analysis: a1, Policy: &testPolicy{name: "t3"}, Config: cfg1},
					},
					Shared: cfg1,
				}
				for i := range tc.arrivals {
					p.Tenants[i].ArrivalTime = tc.arrivals[i]
				}
				return p
			}
			runFourWays(t, build)
		})
	}
}

// TestConveyorMatchesChunkReferenceAdaptive extends the differential to
// tenants that re-time their programs mid-run from the lateness signal: the
// signal is accumulated per chunk, so it must be bit-identical between the
// conveyor and the per-chunk reference.
func TestConveyorMatchesChunkReferenceAdaptive(t *testing.T) {
	a1 := analyze(t, models.TinyCNN(128), 200)
	a2 := analyze(t, models.TinyMLP(64), 50)
	build := func() ClusterParams {
		cfg1 := testCfg(a1.PeakAlive()/2, 8*units.MB)
		cfg2 := testCfg(a2.PeakAlive()/2, 8*units.MB)
		cfg1.Iterations = 3
		cfg2.Iterations = 3
		cfg1.MigrationChunk = 2 * units.MB
		cfg2.MigrationChunk = 2 * units.MB
		return ClusterParams{
			Tenants: []ClusterTenant{
				{Analysis: a1, Policy: &replanPolicy{testPolicy: testPolicy{name: "t1"}, threshold: 1.05}, Config: cfg1},
				{Analysis: a2, Policy: &replanPolicy{testPolicy: testPolicy{name: "t2"}, threshold: 1.05}, Config: cfg2},
				{Analysis: a1, Policy: &replanPolicy{testPolicy: testPolicy{name: "t3"}, threshold: 1.05}, Config: cfg1,
					ArrivalTime: 5 * units.Millisecond},
			},
			Shared: cfg1,
		}
	}
	runFourWays(t, build)
}

// trainMachine builds a machine over a graph with one large tensor (and a
// token weight), for direct chunk-train measurements.
func trainMachine(tb testing.TB, size units.Bytes, cfg Config) (*Machine, int) {
	tb.Helper()
	b := dnn.NewBuilder("train", 1)
	w := b.Tensor("W", dnn.Global, units.MB)
	big := b.Tensor("BIG", dnn.Intermediate, size)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{w}, []*dnn.Tensor{big})
	b.Kernel("k1", dnn.Backward, 1, []*dnn.Tensor{w, big}, []*dnn.Tensor{big})
	g := b.MustBuild()
	an, err := vitality.Analyze(g, &profile.Trace{Durations: []units.Duration{units.Millisecond, units.Millisecond}})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := NewMachine(an, &testPolicy{name: "train"}, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m, big.ID
}

// roundTrip evicts the tensor to host and fetches it back, draining the
// network in between.
func roundTrip(tb testing.TB, m *Machine, id int) {
	tb.Helper()
	if !m.RequestEvict(id, uvm.InHost) {
		tb.Fatal("evict rejected")
	}
	for m.Loc(id) != uvm.InHost {
		if !m.waitNext() {
			tb.Fatal("eviction stuck")
		}
	}
	if !m.RequestFetch(id, uvm.Prefetch) {
		tb.Fatal("fetch rejected")
	}
	for m.Loc(id) != uvm.InGPU {
		if !m.waitNext() {
			tb.Fatal("fetch stuck")
		}
	}
}

// TestChunkTrainRecomputesIndependentOfChunkCount pins the conveyor's
// scaling property: a migration's rate recomputations are a function of its
// rate-change points (start and end), not of how many chunks it moves in.
func TestChunkTrainRecomputesIndependentOfChunkCount(t *testing.T) {
	const size = 256 * units.MB
	measure := func(chunk units.Bytes) (recomputes, successions int64) {
		cfg := testCfg(512*units.MB, units.GB)
		cfg.MigrationChunk = chunk
		m, id := trainMachine(t, size, cfg)
		if !m.alloc(id) {
			t.Fatal("alloc failed")
		}
		r0, s0 := m.net.Recomputes(), m.net.Successions()
		roundTrip(t, m, id)
		return m.net.Recomputes() - r0, m.net.Successions() - s0
	}
	rSmall, sSmall := measure(2 * units.MB) // 128-chunk trains
	rBig, sBig := measure(256 * units.MB)   // single-chunk migrations
	if wantSmall := 2 * int64(size/(2*units.MB)-1); sSmall != wantSmall {
		t.Errorf("2MB chunks: %d successions, want %d", sSmall, wantSmall)
	}
	if sBig != 0 {
		t.Errorf("single-chunk migrations recorded %d successions", sBig)
	}
	if rSmall != rBig {
		t.Errorf("recomputes depend on chunk count: %d at 2MB chunks vs %d at 256MB", rSmall, rBig)
	}
	t.Logf("round trip: %d recomputes at both chunk sizes; %d successions at 2MB", rSmall, sSmall)
}

// BenchmarkMigrationChunkTrain migrates one large tensor back and forth at
// varying chunk granularity. With the conveyor, ns/op and recomputes/op stay
// nearly flat as the chunk count grows 128x; the reported metrics pin the
// event count to rate-change points rather than chunks.
func BenchmarkMigrationChunkTrain(b *testing.B) {
	const size = 512 * units.MB
	for _, chunk := range []units.Bytes{2 * units.MB, 8 * units.MB, 32 * units.MB, 64 * units.MB, 256 * units.MB} {
		b.Run(fmt.Sprintf("chunk=%dMB", chunk/units.MB), func(b *testing.B) {
			cfg := testCfg(units.GB, units.GB)
			cfg.MigrationChunk = chunk
			m, id := trainMachine(b, size, cfg)
			if !m.alloc(id) {
				b.Fatal("alloc failed")
			}
			b.ResetTimer()
			r0, s0 := m.net.Recomputes(), m.net.Successions()
			for i := 0; i < b.N; i++ {
				roundTrip(b, m, id)
			}
			b.ReportMetric(float64(m.net.Recomputes()-r0)/float64(b.N), "recomputes/op")
			b.ReportMetric(float64(m.net.Successions()-s0)/float64(b.N), "successions/op")
		})
	}
}

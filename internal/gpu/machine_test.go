package gpu

import (
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/profile"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// twoTensorMachine builds a machine over a minimal graph with two
// intermediates (A: 100MB, B: 50MB) plus a weight, for direct migration
// engine tests.
func twoTensorMachine(t *testing.T, cfg Config) (*Machine, map[string]int) {
	t.Helper()
	b := dnn.NewBuilder("m", 1)
	w := b.Tensor("W", dnn.Global, 10*units.MB)
	a := b.Tensor("A", dnn.Intermediate, 100*units.MB)
	bb := b.Tensor("B", dnn.Intermediate, 50*units.MB)
	b.Kernel("k0", dnn.Forward, 1, []*dnn.Tensor{w}, []*dnn.Tensor{a, bb})
	b.Kernel("k1", dnn.Backward, 1, []*dnn.Tensor{a, bb, w}, []*dnn.Tensor{bb})
	g := b.MustBuild()
	an, err := vitality.Analyze(g, &profile.Trace{Durations: []units.Duration{units.Millisecond, units.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(an, &testPolicy{name: "t"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]int{}
	for id, tensor := range g.Tensors {
		ids[tensor.Name] = id
	}
	return m, ids
}

func TestMachineAllocFree(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	if !m.alloc(ids["A"]) {
		t.Fatal("alloc A failed")
	}
	if m.Loc(ids["A"]) != uvm.InGPU {
		t.Error("A not in GPU")
	}
	if m.GPUFree() != 100*units.MB {
		t.Errorf("GPUFree = %v, want 100MB", m.GPUFree())
	}
	m.free(ids["A"])
	if m.Loc(ids["A"]) != uvm.Unmapped {
		t.Error("A not freed")
	}
	if m.GPUFree() != 200*units.MB {
		t.Errorf("GPUFree after free = %v", m.GPUFree())
	}
}

func TestMachineAllocRespectsCapacity(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(120*units.MB, units.GB))
	if !m.alloc(ids["A"]) {
		t.Fatal("alloc A failed")
	}
	if m.alloc(ids["B"]) {
		t.Error("alloc B succeeded beyond capacity")
	}
}

func TestChunkedEvictionFreesIncrementally(t *testing.T) {
	cfg := testCfg(200*units.MB, units.GB)
	cfg.MigrationChunk = 10 * units.MB
	m, ids := twoTensorMachine(t, cfg)
	m.alloc(ids["A"])
	if !m.RequestEvict(ids["A"], uvm.InHost) {
		t.Fatal("evict rejected")
	}
	free0 := m.GPUFree()
	// Advance through a few chunk completions: free memory must grow
	// strictly before the whole tensor is gone.
	var sawPartial bool
	for i := 0; i < 20 && m.Loc(ids["A"]) == uvm.InGPU; i++ {
		if !m.waitNext() {
			break
		}
		f := m.GPUFree()
		if f > free0 && f < 200*units.MB {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("eviction did not free memory chunk by chunk")
	}
	for m.Loc(ids["A"]) == uvm.InGPU {
		if !m.waitNext() {
			t.Fatal("eviction never completed")
		}
	}
	if m.Loc(ids["A"]) != uvm.InHost {
		t.Errorf("A at %v after eviction", m.Loc(ids["A"]))
	}
	if m.GPUFree() != 200*units.MB {
		t.Errorf("GPUFree = %v after full eviction", m.GPUFree())
	}
	if m.ledger.hostOut != 100*units.MB {
		t.Errorf("ledger hostOut = %v", m.ledger.hostOut)
	}
}

func TestEvictionFallsBackToFlashWhenHostFull(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, 20*units.MB))
	m.alloc(ids["A"]) // 100MB > 20MB host capacity
	if !m.RequestEvict(ids["A"], uvm.InHost) {
		t.Fatal("evict rejected")
	}
	for m.Loc(ids["A"]) == uvm.InGPU {
		if !m.waitNext() {
			t.Fatal("eviction stuck")
		}
	}
	if m.Loc(ids["A"]) != uvm.InFlash {
		t.Errorf("A at %v, want flash fallback", m.Loc(ids["A"]))
	}
	if m.ledger.ssdOut != 100*units.MB {
		t.Errorf("ssdOut = %v", m.ledger.ssdOut)
	}
}

func TestFetchRoundTripRestoresResidency(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InFlash)
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
	if !m.RequestFetch(ids["A"], uvm.Prefetch) {
		t.Fatal("fetch rejected")
	}
	for m.Loc(ids["A"]) != uvm.InGPU {
		if !m.waitNext() {
			t.Fatal("fetch stuck")
		}
	}
	if m.ledger.ssdIn != 100*units.MB || m.ledger.ssdOut != 100*units.MB {
		t.Errorf("ledger ssd in/out = %v/%v", m.ledger.ssdIn, m.ledger.ssdOut)
	}
	// Flash copy space is retained (sticky range) until death.
	st := &m.states[ids["A"]]
	if !st.hasRng {
		t.Error("flash range released on fetch; should stay for re-eviction")
	}
}

func TestFetchCancelsQueuedEviction(t *testing.T) {
	cfg := testCfg(200*units.MB, units.GB)
	m, ids := twoTensorMachine(t, cfg)
	m.alloc(ids["A"])
	m.alloc(ids["B"])
	// Queue two evictions; the second (B) sits behind A in the queue only
	// until dispatch, so instead grab the not-yet-flying state by
	// requesting and immediately re-fetching.
	m.RequestEvict(ids["A"], uvm.InHost)
	// A's first chunk flies immediately; a fetch request now must report
	// false (migration in progress) rather than corrupt state.
	if m.RequestFetch(ids["A"], uvm.Prefetch) {
		t.Error("fetch accepted while eviction flying")
	}
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
}

func TestScheduledFetchDoesNotCountAsFault(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InFlash)
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
	if !m.RequestScheduledFetch(ids["A"]) {
		t.Fatal("scheduled fetch rejected")
	}
	for m.Loc(ids["A"]) != uvm.InGPU {
		m.waitNext()
	}
	if m.faults != 0 {
		t.Errorf("scheduled fetch counted %d faults", m.faults)
	}
}

func TestFaultFetchCountsAndInflates(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InHost)
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
	start := m.Now()
	m.RequestFetch(ids["A"], uvm.FaultFetch)
	for m.Loc(ids["A"]) != uvm.InGPU {
		m.waitNext()
	}
	if m.faults != 1 || m.faultedBytes != 100*units.MB {
		t.Errorf("faults=%d bytes=%v", m.faults, m.faultedBytes)
	}
	faultTime := m.Now() - start
	// At FaultEfficiency 0.18, the transfer must take several times the
	// full-bandwidth time (100MB at 15.75GB/s ≈ 6.2ms).
	fullTime := units.TransferTime(100*units.MB, m.cfg.PCIeBandwidth)
	if faultTime < 3*fullTime {
		t.Errorf("fault fetch took %v; expected at least 3x the full-rate %v", faultTime, fullTime)
	}
}

func TestFreeDuringMigrationUnwinds(t *testing.T) {
	cfg := testCfg(200*units.MB, units.GB)
	cfg.MigrationChunk = 10 * units.MB
	m, ids := twoTensorMachine(t, cfg)
	m.alloc(ids["A"])
	m.RequestEvict(ids["A"], uvm.InHost)
	m.waitNext() // let a chunk or two land
	m.free(ids["A"])
	// Run the network dry; all accounting must return to zero.
	for m.waitNext() {
	}
	if m.Loc(ids["A"]) != uvm.Unmapped {
		t.Errorf("A at %v after free", m.Loc(ids["A"]))
	}
	if m.gpuUsed != 0 { // the weight is never seeded in this direct-machine test
		t.Errorf("gpuUsed = %v, want 0", m.gpuUsed)
	}
	if m.host.Used() != 0 {
		t.Errorf("host pool used = %v, want 0", m.host.Used())
	}
}

func TestPageTableTracksMigrations(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	m.alloc(ids["A"])
	st := &m.states[ids["A"]]
	if loc, ok := m.pt.RangeLocation(st.va, m.pagesOf(st.t)); !ok || loc != uvm.InGPU {
		t.Fatalf("page table after alloc: %v %v", loc, ok)
	}
	m.RequestEvict(ids["A"], uvm.InFlash)
	for m.Loc(ids["A"]) == uvm.InGPU {
		m.waitNext()
	}
	if loc, ok := m.pt.RangeLocation(st.va, m.pagesOf(st.t)); !ok || loc != uvm.InFlash {
		t.Errorf("page table after eviction: %v %v (G10's flash PTEs)", loc, ok)
	}
}

func TestSeedPlacement(t *testing.T) {
	// Globals that fit go to GPU, then host, then flash.
	b := dnn.NewBuilder("seeds", 1)
	w1 := b.Tensor("w1", dnn.Global, 60*units.MB)
	w2 := b.Tensor("w2", dnn.Global, 60*units.MB)
	w3 := b.Tensor("w3", dnn.Global, 60*units.MB)
	x := b.Tensor("x", dnn.Intermediate, units.MB)
	b.Kernel("k", dnn.Forward, 1, []*dnn.Tensor{w1, w2, w3, x}, []*dnn.Tensor{x})
	g := b.MustBuild()
	an, _ := vitality.Analyze(g, &profile.Trace{Durations: []units.Duration{units.Millisecond}})
	m, err := NewMachine(an, &testPolicy{name: "t"}, testCfg(100*units.MB, 100*units.MB))
	if err != nil {
		t.Fatal(err)
	}
	for id := range g.Tensors {
		if g.Tensors[id].Kind != dnn.Global {
			continue
		}
		if err := m.seed(id); err != nil {
			t.Fatal(err)
		}
	}
	locs := []uvm.Location{m.Loc(0), m.Loc(1), m.Loc(2)}
	want := []uvm.Location{uvm.InGPU, uvm.InHost, uvm.InFlash}
	for i := range want {
		if locs[i] != want[i] {
			t.Errorf("w%d at %v, want %v", i+1, locs[i], want[i])
		}
	}
}

func TestResidentLRUOrder(t *testing.T) {
	m, ids := twoTensorMachine(t, testCfg(200*units.MB, units.GB))
	m.alloc(ids["A"])
	m.advanceTo(m.Now() + units.Millisecond)
	m.alloc(ids["B"])
	m.advanceTo(m.Now() + units.Millisecond)
	m.touch(ids["A"]) // A becomes most recent
	lru := m.ResidentLRU()
	// W was seeded never... W not allocated here (no seeding in this path).
	if len(lru) < 2 {
		t.Fatalf("LRU = %v", lru)
	}
	if lru[len(lru)-1] != ids["A"] {
		t.Errorf("most recently used should be A, got order %v", lru)
	}
}

func TestGCDegradesSSDWriteCapacity(t *testing.T) {
	// Shrink the device so the round trips churn it.
	cfg := testCfg(200*units.MB, units.MB)
	sc := cfg.SSD
	sc.Capacity = 256 * units.MB
	sc.PageSize = 64 * units.KB
	sc.OverProvision = 0.08
	cfg.SSD = sc
	m, ids := twoTensorMachine(t, cfg)
	before := m.sh.ssdWrite.Capacity()
	// Repeated evict/fetch cycles of A (100MB on a 256MB device).
	for cycle := 0; cycle < 8; cycle++ {
		m.alloc(ids["A"])
		m.RequestEvict(ids["A"], uvm.InFlash)
		for m.Loc(ids["A"]) != uvm.InFlash {
			if !m.waitNext() {
				t.Fatal("evict stuck")
			}
		}
		m.RequestFetch(ids["A"], uvm.Prefetch)
		for m.Loc(ids["A"]) != uvm.InGPU {
			if !m.waitNext() {
				t.Fatal("fetch stuck")
			}
		}
		m.free(ids["A"])
		m.states[ids["A"]].loc = uvm.Unmapped
	}
	after := m.sh.ssdWrite.Capacity()
	if after > before {
		t.Errorf("SSD write capacity rose: %v -> %v", before, after)
	}
}

package gpu

import (
	"reflect"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

// replanPolicy is a testPolicy that also plans (so its program is
// retimable) and re-times it from the observed signal — a miniature of the
// policy/adapt stack, kept inside the gpu package so the hook mechanics are
// pinned independently of the production controller.
type replanPolicy struct {
	testPolicy
	// threshold is the fetch inflation above which the program is retimed;
	// <= 0 never retimes (signal recording only).
	threshold float64
	calls     int
	signals   []LatenessSignal
	swapped   int
}

func (p *replanPolicy) Program(a *vitality.Analysis, cfg Config) *planner.Program {
	pcfg := planner.Default()
	pcfg.GPUCapacity = cfg.GPUCapacity
	pcfg.HostCapacity = cfg.HostCapacity
	pcfg.SSDWriteBW = cfg.SSD.WriteBandwidth
	pcfg.SSDReadBW = cfg.SSD.ReadBandwidth
	pcfg.HostWriteBW = cfg.PCIeBandwidth
	pcfg.HostReadBW = cfg.PCIeBandwidth
	return planner.New(a, pcfg).Program
}

func (p *replanPolicy) NextProgram(iter int, sig LatenessSignal, cur *planner.Program) *planner.Program {
	p.calls++
	p.signals = append(p.signals, sig)
	if p.threshold <= 0 {
		return nil
	}
	if f := sig.FetchInflation(); f > p.threshold {
		if np := cur.Retime(planner.Retiming{FetchInflation: f, EvictInflation: sig.EvictInflation()}); np != cur {
			p.swapped++
			return np
		}
	}
	return nil
}

// TestReplannerHookCadence: the hook runs at every iteration-closing
// boundary except the last, and the per-iteration signals sum to the
// machine's cumulative ledger.
func TestReplannerHookCadence(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(a.PeakAlive()/2, 256*units.MB)
	cfg.Iterations = 4
	pol := &replanPolicy{testPolicy: testPolicy{name: "replan"}}
	res, err := Run(RunParams{Analysis: a, Policy: pol, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if pol.calls != cfg.Iterations-1 {
		t.Errorf("hook ran %d times, want %d", pol.calls, cfg.Iterations-1)
	}
	var sum LatenessSignal
	for _, s := range pol.signals {
		if s.FetchRealized < s.FetchExclusive || s.EvictRealized < s.EvictExclusive {
			t.Errorf("signal realized below exclusive: %+v", s)
		}
		if s.FetchInflation() < 1 || s.EvictInflation() < 1 {
			t.Errorf("inflation below 1: %+v", s)
		}
		sum.FetchFlows += s.FetchFlows
		sum.EvictFlows += s.EvictFlows
		sum.FetchBytes += s.FetchBytes
		sum.EvictBytes += s.EvictBytes
	}
	if sum.FetchFlows == 0 || sum.EvictFlows == 0 {
		t.Errorf("pressured run reported no migration flows: %+v", sum)
	}
	// The last iteration's flows stay in the cumulative ledger only.
	cum := pol.m.Lateness()
	if cum.FetchFlows < sum.FetchFlows || cum.EvictFlows < sum.EvictFlows {
		t.Errorf("cumulative ledger %+v below per-iteration sum %+v", cum, sum)
	}
}

// TestReplannerZeroLatenessIsInert: on a machine with no migrations the
// signal is exactly zero, the program is never swapped, and the result is
// bit-identical to the same policy without the hook.
func TestReplannerZeroLatenessIsInert(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(1<<40, 1<<40) // roomy: nothing ever migrates
	pol := &replanPolicy{testPolicy: testPolicy{name: "static"}, threshold: 1.0}
	adaptive, err := Run(RunParams{Analysis: a, Policy: pol, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pol.signals {
		if s != (LatenessSignal{}) {
			t.Errorf("migration-free run produced a non-zero signal: %+v", s)
		}
	}
	if pol.swapped != 0 {
		t.Errorf("program swapped %d times with zero lateness", pol.swapped)
	}
	static, err := Run(RunParams{
		Analysis: a,
		Policy:   &staticPlanPolicy{testPolicy{name: "static"}},
		Config:   cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adaptive, static) {
		t.Errorf("zero-lateness adaptive run diverged from static:\nadaptive: %+v\nstatic:   %+v", adaptive, static)
	}
}

// staticPlanPolicy is replanPolicy's planning side without the Replanner
// hook.
type staticPlanPolicy struct {
	testPolicy
}

func (p *staticPlanPolicy) Program(a *vitality.Analysis, cfg Config) *planner.Program {
	return (&replanPolicy{}).Program(a, cfg)
}

// TestReplannerSignalSeesContention: co-running tenants must observe a
// larger fetch inflation than the same tenant alone.
func TestReplannerSignalSeesContention(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(a.PeakAlive()/2, 4*units.MB) // tiny host: all traffic on flash
	inflation := func(tenants int) float64 {
		pols := make([]*replanPolicy, tenants)
		p := ClusterParams{Shared: cfg}
		for i := range pols {
			pols[i] = &replanPolicy{testPolicy: testPolicy{name: "t"}}
			p.Tenants = append(p.Tenants, ClusterTenant{Analysis: a, Policy: pols[i], Config: cfg})
		}
		mustRunCluster(t, p)
		sig := pols[0].m.Lateness()
		if sig.FetchFlows == 0 {
			t.Fatal("no fetch flows under pressure")
		}
		return sig.FetchInflation()
	}
	solo := inflation(1)
	quad := inflation(4)
	if quad <= solo {
		t.Errorf("4-tenant fetch inflation %.3f not above solo %.3f", quad, solo)
	}
	if quad < 1.5 {
		t.Errorf("4 tenants on one array produced inflation of only %.3f", quad)
	}
}

// TestEventDriverMatchesPollingAdaptive: the event-driven scheduler and the
// polling reference must agree bit for bit when tenants re-time their
// programs mid-run — the adaptation extension of the PR 3 differential.
func TestEventDriverMatchesPollingAdaptive(t *testing.T) {
	a1 := analyze(t, models.TinyCNN(128), 200)
	a2 := analyze(t, models.TinyMLP(64), 50)
	build := func() ClusterParams {
		cfg1 := testCfg(a1.PeakAlive()/2, 8*units.MB)
		cfg2 := testCfg(a2.PeakAlive()/2, 8*units.MB)
		cfg1.Iterations = 3
		cfg2.Iterations = 3
		return ClusterParams{
			Tenants: []ClusterTenant{
				{Analysis: a1, Policy: &replanPolicy{testPolicy: testPolicy{name: "t1"}, threshold: 1.05}, Config: cfg1},
				{Analysis: a2, Policy: &replanPolicy{testPolicy: testPolicy{name: "t2"}, threshold: 1.05}, Config: cfg2},
				{Analysis: a1, Policy: &replanPolicy{testPolicy: testPolicy{name: "t3"}, threshold: 1.05}, Config: cfg1,
					ArrivalTime: 5 * units.Millisecond},
			},
			Shared: cfg1,
		}
	}
	swaps := 0
	runOnce := func(drv Driver) ClusterResult {
		p := build()
		p.Driver = drv
		res := mustRunCluster(t, p)
		for _, tn := range p.Tenants {
			swaps += tn.Policy.(*replanPolicy).swapped
		}
		return res
	}
	ev := runOnce(DriverAuto)
	poll := runOnce(DriverPolling)
	if swaps == 0 {
		t.Error("no tenant ever swapped its program; the differential is vacuous")
	}
	if !reflect.DeepEqual(ev, poll) {
		t.Errorf("event-driven diverged from polling with adaptive tenants:\nevent:   %+v\npolling: %+v", ev, poll)
	}
}

package gpu

import (
	"reflect"
	"testing"

	"g10sim/internal/models"
	"g10sim/internal/profile"
	"g10sim/internal/units"
)

// TestClusterSingleTenantMatchesRun: a one-tenant cluster must reproduce
// the single-machine Run bit-identically — same step machine, same
// resource order, same event delivery.
func TestClusterSingleTenantMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name   string
		direct bool
		strict bool
	}{
		{"uvm-lru", false, false},
		{"strict", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := analyze(t, models.TinyCNN(128), 200)
			cfg := testCfg(a.PeakAlive()/2, 256*units.MB)
			solo, err := Run(RunParams{Analysis: a, Policy: &testPolicy{name: tc.name, strict: tc.strict}, Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			cres, err := RunCluster(ClusterParams{
				Tenants: []ClusterTenant{{Analysis: a, Policy: &testPolicy{name: tc.name, strict: tc.strict}, Config: cfg}},
				Shared:  cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(cres.Tenants) != 1 {
				t.Fatalf("%d tenant results", len(cres.Tenants))
			}
			if !reflect.DeepEqual(solo, cres.Tenants[0]) {
				t.Errorf("1-tenant cluster diverged from Run:\nrun:     %+v\ncluster: %+v", solo, cres.Tenants[0])
			}
			if cres.SSDStats != solo.SSDStats {
				t.Errorf("array stats %+v != run stats %+v", cres.SSDStats, solo.SSDStats)
			}
		})
	}
}

// TestClusterDeterminism: co-simulation output is a pure function of its
// inputs.
func TestClusterDeterminism(t *testing.T) {
	run := func() ClusterResult {
		a1 := analyze(t, models.TinyCNN(128), 200)
		a2 := analyze(t, models.TinyMLP(64), 50)
		cfg1 := testCfg(a1.PeakAlive()/2, 256*units.MB)
		cfg2 := testCfg(a2.PeakAlive()/2, 256*units.MB)
		res, err := RunCluster(ClusterParams{
			Tenants: []ClusterTenant{
				{Analysis: a1, Policy: &testPolicy{name: "t1"}, Config: cfg1},
				{Analysis: a2, Policy: &testPolicy{name: "t2"}, Config: cfg2},
			},
			Shared: cfg1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("non-deterministic cluster:\n%+v\nvs\n%+v", r1, r2)
	}
}

// TestClusterContentionSlowsTenants: two tenants sharing one array must
// each run no faster than they do alone on the same array, and at least
// one must be measurably slower (they contend on SSD channels and host
// memory).
func TestClusterContentionSlowsTenants(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	// A small host forces SSD traffic, where the shared channels contend.
	cfg := testCfg(a.PeakAlive()/2, 4*units.MB)
	solo, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{{Analysis: a, Policy: &testPolicy{name: "solo"}, Config: cfg}},
		Shared:  cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{
			{Analysis: a, Policy: &testPolicy{name: "a"}, Config: cfg},
			{Analysis: a, Policy: &testPolicy{name: "b"}, Config: cfg},
		},
		Shared: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	soloTime := solo.Tenants[0].IterationTime
	var slower int
	for i, res := range duo.Tenants {
		if res.Failed {
			t.Fatalf("tenant %d failed: %s", i, res.FailReason)
		}
		if float64(res.IterationTime) < 0.999*float64(soloTime) {
			t.Errorf("tenant %d faster under contention: %v vs solo %v", i, res.IterationTime, soloTime)
		}
		if float64(res.IterationTime) > 1.02*float64(soloTime) {
			slower++
		}
	}
	if slower == 0 {
		t.Errorf("no tenant slowed by sharing the array (solo %v, duo %v/%v)",
			soloTime, duo.Tenants[0].IterationTime, duo.Tenants[1].IterationTime)
	}
	if duo.Makespan < units.Duration(soloTime) {
		t.Errorf("makespan %v below a single tenant's iteration span", duo.Makespan)
	}
}

// TestClusterSSDAttribution: per-tenant attributed SSD stats must sum to
// the array totals.
func TestClusterSSDAttribution(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	cfg := testCfg(a.PeakAlive()/2, 4*units.MB) // tiny host: all traffic hits flash
	res, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{
			{Analysis: a, Policy: &testPolicy{name: "a"}, Config: cfg},
			{Analysis: a, Policy: &testPolicy{name: "b"}, Config: cfg},
		},
		Shared: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hostW, nandW, gcReloc units.Bytes
	for _, tr := range res.Tenants {
		hostW += tr.SSDStats.HostWriteBytes
		nandW += tr.SSDStats.NANDWriteBytes
		gcReloc += units.Bytes(tr.SSDStats.GCRelocated)
	}
	if hostW != res.SSDStats.HostWriteBytes {
		t.Errorf("tenant host writes %v != array %v", hostW, res.SSDStats.HostWriteBytes)
	}
	if nandW != res.SSDStats.NANDWriteBytes {
		t.Errorf("tenant NAND writes %v != array %v", nandW, res.SSDStats.NANDWriteBytes)
	}
	if gcReloc != units.Bytes(res.SSDStats.GCRelocated) {
		t.Errorf("tenant GC relocations %v != array %v", gcReloc, res.SSDStats.GCRelocated)
	}
	if res.SSDStats.HostWriteBytes == 0 {
		t.Error("no flash writes despite tiny host memory")
	}
}

// TestClusterSharedHostPool: one tenant parking data in host memory starves
// the other's host-bound evictions into flash — the contention a static
// capacity split cannot express.
func TestClusterSharedHostPool(t *testing.T) {
	a := analyze(t, models.TinyCNN(128), 200)
	// Host sized so one tenant's evictions roughly fill it.
	cfg := testCfg(a.PeakAlive()/2, 24*units.MB)
	solo, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{{Analysis: a, Policy: &testPolicy{name: "solo"}, Config: cfg}},
		Shared:  cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{
			{Analysis: a, Policy: &testPolicy{name: "a"}, Config: cfg},
			{Analysis: a, Policy: &testPolicy{name: "b"}, Config: cfg},
		},
		Shared: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	soloSSD := solo.Tenants[0].GPUToSSD
	duoSSD := duo.Tenants[0].GPUToSSD + duo.Tenants[1].GPUToSSD
	if duoSSD < 2*soloSSD {
		t.Errorf("shared host pool did not push extra evictions to flash: duo %v < 2x solo %v", duoSSD, soloSSD)
	}
}

// TestClusterRejectsEmptyAndBadTrace covers the error paths.
func TestClusterRejectsEmptyAndBadTrace(t *testing.T) {
	if _, err := RunCluster(ClusterParams{}); err == nil {
		t.Error("empty cluster accepted")
	}
	a := analyze(t, models.TinyMLP(8), 1)
	_, err := RunCluster(ClusterParams{
		Tenants: []ClusterTenant{{
			Analysis:  a,
			Policy:    &testPolicy{name: "x"},
			Config:    testCfg(1<<40, 1<<40),
			ExecTrace: &profile.Trace{Durations: []units.Duration{1}},
		}},
		Shared: testCfg(1<<40, 1<<40),
	})
	if err == nil {
		t.Error("mismatched exec trace accepted")
	}
}

package gpu

import (
	"fmt"
	"reflect"
	"testing"

	"g10sim/internal/flownet"
	"g10sim/internal/models"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
)

// runEngineModes executes the same cluster parameters under the production
// lazy engine (deferred flow settlement, heap-driven reap, epoch-based TLB
// shootdowns) and under the retained eager references
// (ForceEagerProgressForTest + ForceReferenceTLBForTest), across both
// cluster drivers and a sharded run. All results must agree bit for bit:
// laziness is an accounting strategy, never a semantic one.
func runEngineModes(t *testing.T, build func() ClusterParams) {
	t.Helper()
	lazyEv, lazyPoll := runBothDrivers(t, build)
	sp := build()
	sp.Shards = 3
	lazySharded := mustRunCluster(t, sp)

	flownet.ForceEagerProgressForTest(true)
	uvm.ForceReferenceTLBForTest(true)
	defer func() {
		flownet.ForceEagerProgressForTest(false)
		uvm.ForceReferenceTLBForTest(false)
	}()
	eagerEv, eagerPoll := runBothDrivers(t, build)
	flownet.ForceEagerProgressForTest(false)
	uvm.ForceReferenceTLBForTest(false)

	// Third engine mode: the lazy engine with the reference max-min fill
	// (full scan loops, no fill trace, no frontier refills) — pins the
	// heap-driven fill and the frontier refill across models, policies,
	// drivers, and shard counts.
	flownet.ForceReferenceFillForTest(true)
	defer flownet.ForceReferenceFillForTest(false)
	refFillEv, refFillPoll := runBothDrivers(t, build)
	sp = build()
	sp.Shards = 3
	refFillSharded := mustRunCluster(t, sp)
	flownet.ForceReferenceFillForTest(false)

	if !reflect.DeepEqual(lazyEv, eagerEv) {
		t.Errorf("lazy engine diverged from eager reference (event driver):\nlazy:  %+v\neager: %+v", lazyEv, eagerEv)
	}
	if !reflect.DeepEqual(lazyPoll, eagerPoll) {
		t.Errorf("lazy engine diverged from eager reference (polling driver):\nlazy:  %+v\neager: %+v", lazyPoll, eagerPoll)
	}
	if !reflect.DeepEqual(lazyEv, lazySharded) {
		t.Errorf("lazy engine diverged across shard counts:\nsequential: %+v\nsharded:    %+v", lazyEv, lazySharded)
	}
	if !reflect.DeepEqual(lazyEv, refFillEv) {
		t.Errorf("heap fill diverged from reference fill (event driver):\nheap: %+v\nref:  %+v", lazyEv, refFillEv)
	}
	if !reflect.DeepEqual(lazyPoll, refFillPoll) {
		t.Errorf("heap fill diverged from reference fill (polling driver):\nheap: %+v\nref:  %+v", lazyPoll, refFillPoll)
	}
	if !reflect.DeepEqual(lazyEv, refFillSharded) {
		t.Errorf("heap fill diverged from sharded reference fill:\nheap: %+v\nref:  %+v", lazyEv, refFillSharded)
	}
}

// TestLazyEngineMatchesEagerReference pins the tentpole invariant: the lazy
// engine (segment-log flow settlement, completion-heap reap, epoch TLB,
// tombstoned page-table clears) reproduces the eager per-event reference
// bit for bit — under memory pressure, strict policies, dynamic arrivals,
// both cluster drivers, and sharding.
func TestLazyEngineMatchesEagerReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		hostCap  units.Bytes
		strict   bool
		arrivals []units.Time
	}{
		{"tight-host", 4 * units.MB, false, nil},
		{"mid-host", 24 * units.MB, false, nil},
		{"roomy-host", 256 * units.MB, false, nil},
		{"strict", 256 * units.MB, true, nil},
		{"staggered-arrivals", 24 * units.MB, false,
			[]units.Time{0, 5 * units.Millisecond, 20 * units.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a1 := analyze(t, models.TinyCNN(128), 200)
			a2 := analyze(t, models.TinyMLP(64), 50)
			build := func() ClusterParams {
				cfg1 := testCfg(a1.PeakAlive()/2, tc.hostCap)
				cfg2 := testCfg(a2.PeakAlive()/2, tc.hostCap)
				p := ClusterParams{
					Tenants: []ClusterTenant{
						{Analysis: a1, Policy: &testPolicy{name: "t1", strict: tc.strict}, Config: cfg1},
						{Analysis: a2, Policy: &testPolicy{name: "t2"}, Config: cfg2},
						{Analysis: a1, Policy: &testPolicy{name: "t3"}, Config: cfg1},
					},
					Shared: cfg1,
				}
				for i := range tc.arrivals {
					p.Tenants[i].ArrivalTime = tc.arrivals[i]
				}
				return p
			}
			runEngineModes(t, build)
		})
	}
}

// engineStatsFor runs an n-tenant scaling cluster and reports its engine
// counters.
func engineStatsFor(t *testing.T, n int) EngineStats {
	t.Helper()
	var es EngineStats
	p := scalingParams(t, n)
	p.Engine = &es
	mustRunCluster(t, p)
	return es
}

// TestEngineStats asserts the numbers behind the O(events) claim. The
// counters must be populated; the lazy engine must never do more
// per-flow accounting work than the eager reference and must examine far
// fewer flows for completion (heap candidates vs full scans); and the
// per-event bookkeeping — reap scans and rate recomputes — must scale
// near-linearly in tenant count. ProgressTouches carries no scaling
// assertion: on a fully-coupled workload every event legitimately
// re-rates every flow sharing the bottleneck, so the (flow, segment)
// replay count matches the eager engine's; the lazy win there is
// deferral and the aggregate served-bytes fold, not fewer touches.
func TestEngineStats(t *testing.T) {
	es8 := engineStatsFor(t, 8)
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"FlowRecomputes", es8.FlowRecomputes},
		{"ProgressTouches", es8.ProgressTouches},
		{"ReapScans", es8.ReapScans},
		{"TLBEpochShootdowns", es8.TLBEpochShootdowns},
	} {
		if c.v <= 0 {
			t.Errorf("%s = %d, want > 0", c.name, c.v)
		}
	}

	// Same workload under the eager reference: lazy settlement replays
	// each (flow, segment) pair at most once, so it can never exceed the
	// eager per-event loop; heap-driven reap examines only completion
	// candidates where the scanning reference pays the whole active set.
	flownet.ForceEagerProgressForTest(true)
	var eager EngineStats
	p := scalingParams(t, 8)
	p.Engine = &eager
	mustRunCluster(t, p)
	flownet.ForceEagerProgressForTest(false)
	if es8.ProgressTouches > eager.ProgressTouches {
		t.Errorf("lazy ProgressTouches %d exceed eager reference %d",
			es8.ProgressTouches, eager.ProgressTouches)
	}
	if es8.ReapScans >= eager.ReapScans {
		t.Errorf("lazy ReapScans %d not below eager reference %d",
			es8.ReapScans, eager.ReapScans)
	}
	t.Logf("8 tenants: touches lazy=%d eager=%d; reap scans lazy=%d eager=%d (%.1fx)",
		es8.ProgressTouches, eager.ProgressTouches, es8.ReapScans, eager.ReapScans,
		float64(eager.ReapScans)/float64(es8.ReapScans))

	// Near-linear scaling of the per-event bookkeeping: 4x the tenants may
	// cost at most ~6x the reap scans and recomputes (quadratic would be
	// ~16x).
	es32 := engineStatsFor(t, 32)
	if lim := 6 * es8.ReapScans; es32.ReapScans > lim {
		t.Errorf("32-tenant ReapScans %d exceed 1.5x linear extrapolation %d of 8-tenant %d",
			es32.ReapScans, lim, es8.ReapScans)
	}
	if lim := 6 * es8.FlowRecomputes; es32.FlowRecomputes > lim {
		t.Errorf("32-tenant FlowRecomputes %d exceed 1.5x linear extrapolation %d of 8-tenant %d",
			es32.FlowRecomputes, lim, es8.FlowRecomputes)
	}
	t.Logf("reap scans: 8 tenants = %d, 32 tenants = %d; recomputes: %d vs %d",
		es8.ReapScans, es32.ReapScans, es8.FlowRecomputes, es32.FlowRecomputes)
}

// TestEngineStatsAccumulate: the out-parameter adds across runs (a session
// sums a whole suite into one EngineStats).
func TestEngineStatsAccumulate(t *testing.T) {
	var es EngineStats
	p := scalingParams(t, 2)
	p.Engine = &es
	mustRunCluster(t, p)
	first := es
	for j := range p.Tenants {
		p.Tenants[j].Policy = &testPolicy{name: fmt.Sprintf("t%d", j)}
	}
	mustRunCluster(t, p)
	if es.ProgressTouches != 2*first.ProgressTouches {
		t.Errorf("ProgressTouches after second run = %d, want %d (accumulating)",
			es.ProgressTouches, 2*first.ProgressTouches)
	}
}

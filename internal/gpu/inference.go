// Inference serving workload: LLM requests as short-lived tenants on the
// cluster engine.
//
// Each request is a lightweight tenant — no Machine, no page table — whose
// step machine walks an admission queue, a prefill burst, and a per-token
// decode loop. The hot tensor is the request's KV cache: it grows by one
// block every BlockTokens decoded tokens, out of a fixed per-server block
// pool that every request assigned to that server (round-robin by index)
// contends on. Memory pressure is resolved by the KVPolicy: the single-tier
// baseline preempts the youngest admitted request (vLLM-style recompute —
// the KV is dropped and rebuilt by a later re-prefill over prompt plus the
// tokens already decoded), while the tiered policy swaps the victim's
// blocks to a host-DRAM tier through uvm.MemPool over a distinct flownet
// edge (per-server kv link in series with the shared tier bus) and reloads
// them on demand — the request resumes decoding where it stopped, with no
// recompute and no preemption counted. When GPU residency crosses the
// policy's offload threshold while admissions are waiting, the tiered
// policy additionally offloads proactively, so queued prefills start sooner
// (the TTFT mechanism the H10-style tiered-KV studies measure).
//
// Three scheduling rules keep the pool from thrashing, mirroring vLLM's
// scheduler: pressure resolves immediately (the victim's in-flight decode
// step is aborted, its token not counted, so the demanding request gets its
// block now rather than a kernel-end later, and never targets the
// demanding request itself); preempted requests re-enter the admission
// queue in arrival order (FCFS — not at the back of the line), while
// swapped-out KV reloads rank behind every queued prefill; and admission
// requires a free-block watermark beyond the request's span, so a
// just-evicted request cannot instantly readmit into the same full pool
// and burn a prefill for zero progress.
//
// The same three cluster drivers (events / polling / sharded) advance
// request tenants unchanged. Bit-identity across them rests on the same
// two invariants the training runner obeys: woken tenants step in ascending
// index order within a round, and stepping an un-woken request is a strict
// no-op — blocked states change only through explicit grants and evictions
// (applied by the server's pump at deterministic simulation points) and
// through the request's own flow completions, never by re-polling shared
// state.
package gpu

import (
	"container/heap"
	"fmt"

	"g10sim/internal/flownet"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
)

// KVPolicy decides the serving engine's tiering behaviour. Implementations
// live in internal/policy (SingleTierKV, TieredKV).
type KVPolicy interface {
	Name() string
	// HostTier reports whether pressure victims may swap their KV blocks to
	// the host DRAM tier instead of being preempted.
	HostTier() bool
	// OffloadAt is the GPU block-pool residency fraction above which the
	// engine offloads proactively while admissions are queued (<= 0
	// disables proactive offload; pressure then offloads on demand only).
	OffloadAt() float64
}

// RequestSpec describes one inference request of a trace.
type RequestSpec struct {
	// Arrival admits the request mid-simulation (<= 0: present at start).
	Arrival units.Time
	// PromptTokens is the prefill length; OutputTokens the decode length.
	PromptTokens int
	OutputTokens int
}

// InferenceParams bundles one serving simulation's inputs.
type InferenceParams struct {
	Requests []RequestSpec
	Policy   KVPolicy

	// Servers is the GPU instance count; requests are assigned round-robin
	// by index. GPUBlocks is each server's KV block pool and HostBlocks the
	// host tier's capacity (in blocks, arbitrated by one uvm.MemPool).
	Servers    int
	GPUBlocks  int
	HostBlocks int
	// BlockTokens is the KV block granularity in tokens and BlockBytes its
	// wire size.
	BlockTokens int
	BlockBytes  units.Bytes

	// Compute model: prefill costs PrefillBase + tokens·PrefillPerToken;
	// each decode step costs DecodeBase + blocks·DecodePerBlock (attention
	// reads the whole resident KV, so steps lengthen as the cache grows).
	PrefillBase     units.Duration
	PrefillPerToken units.Duration
	DecodeBase      units.Duration
	DecodePerBlock  units.Duration

	// Tier edge: each server owns a kv link pair (KVLinkBandwidth) in
	// series with the shared host-tier bus pair (TierBandwidth); a swap
	// starts TierLatency after the decision.
	KVLinkBandwidth units.Bandwidth
	TierBandwidth   units.Bandwidth
	TierLatency     units.Duration

	// Scheduler plumbing, as in ClusterParams.
	Shards    int
	Driver    Driver
	StepCount *int64
	Engine    *EngineStats

	// audit, when set (package-internal: white-box tests), runs at every
	// request step and at every KV flow landing.
	audit func(*infReq)
}

// withDefaults fills zero fields with the serving defaults: 4 servers of
// 2048 16-token blocks (2 MiB of KV per block — an 8B-class model at fp16),
// a 512-block host tier behind PCIe-class kv links and a host-DRAM-class
// tier bus. The offload threshold itself belongs to the policy.
func (p InferenceParams) withDefaults() InferenceParams {
	if p.Servers == 0 {
		p.Servers = 4
	}
	if p.GPUBlocks == 0 {
		p.GPUBlocks = 2048
	}
	if p.HostBlocks == 0 {
		p.HostBlocks = 512
	}
	if p.BlockTokens == 0 {
		p.BlockTokens = 16
	}
	if p.BlockBytes == 0 {
		p.BlockBytes = 2 * units.MB
	}
	if p.PrefillBase == 0 {
		p.PrefillBase = 4 * units.Millisecond
	}
	if p.PrefillPerToken == 0 {
		p.PrefillPerToken = 120 * units.Microsecond
	}
	if p.DecodeBase == 0 {
		p.DecodeBase = 6 * units.Millisecond
	}
	if p.DecodePerBlock == 0 {
		p.DecodePerBlock = 40 * units.Microsecond
	}
	if p.KVLinkBandwidth == 0 {
		p.KVLinkBandwidth = units.GBps(15.754)
	}
	if p.TierBandwidth == 0 {
		p.TierBandwidth = units.GBps(50)
	}
	if p.TierLatency == 0 {
		p.TierLatency = 500 * units.Microsecond
	}
	return p
}

// RequestStat is one request's measured outcome.
type RequestStat struct {
	Arrival units.Time
	// FirstToken is when the (first) prefill completed — the TTFT deadline.
	// Preemption never moves it: the first token was already emitted.
	FirstToken units.Time
	Finish     units.Time
	Server     int
	// Preempts counts recompute restarts, Offloads swap-outs to the host
	// tier, Reloads swap-ins back.
	Preempts int
	Offloads int
	Reloads  int
}

// InferenceResult reports one serving simulation.
type InferenceResult struct {
	Requests []RequestStat
	// Preemptions, Offloads, Reloads aggregate the per-request counters;
	// OffloadedBytes is the KV volume that crossed the tier edge outward.
	Preemptions    int64
	Offloads       int64
	Reloads        int64
	OffloadedBytes units.Bytes
	Makespan       units.Duration
}

// reqState is the explicit state of a request's serving lifecycle; the
// runner phases (phaseWait / phaseExec / phaseDone / phasePending) carry
// the driver-facing view of the same machine.
type reqState uint8

const (
	// reqQueued: in the server's admission queue, waiting for a prefill
	// block grant (new arrivals and preempted requests alike).
	reqQueued reqState = iota
	// reqPrefill: the prefill burst executes until execEnd.
	reqPrefill
	// reqDecode: a decode step executes until execEnd (or, with homed set,
	// a reload just landed and the next step resumes the loop).
	reqDecode
	// reqBlockWait: the KV must grow by one block and the pool is empty;
	// waiting for a server grant.
	reqBlockWait
	// reqSwapOut: the KV is flying to the host tier.
	reqSwapOut
	// reqSwapQueued: the KV is host-resident; queued for a block re-grant.
	reqSwapQueued
	// reqSwapIn: the KV is flying back to its re-granted GPU blocks.
	reqSwapIn
	// reqDone: all output tokens decoded.
	reqDone
)

// infReq is one request tenant's private state (runner.inf).
type infReq struct {
	r    *runner
	eng  *infEngine
	srv  *infServer
	spec RequestSpec

	state reqState
	// blocks is the KV span in blocks; decoded the decode progress in
	// tokens; gpu/host the block counts currently held on each tier (both
	// at once while a swap is in flight). alloc accumulates blocks ever
	// granted from the pool and freed blocks ever returned (preemption
	// drops, swap-out landings, completion) — alloc == freed + gpu at every
	// step, the conservation half of the KV-accounting property test.
	blocks  int
	decoded int
	gpu     int
	host    int
	alloc   int
	freed   int

	// granted marks an unconsumed server grant (admission, reload, or
	// decode block); homed an unconsumed reload landing. Blocked states
	// act only on these flags — never by re-polling pool state — which is
	// what makes skipped steps no-ops across drivers.
	granted bool
	homed   bool

	firstToken units.Time
	preempts   int
	offloads   int
	reloads    int
}

// admitEntry orders the admission queue in two classes. Prefill admissions
// (new arrivals and preempted requests) go first, FCFS by (arrival, index)
// — a preempted request re-enters at its original position, ahead of every
// later arrival, matching vLLM's requeue-at-front rule; this plus the
// admission watermark is what keeps eviction from starving its own victim.
// Reload admissions (host-resident KV waiting to swap back) rank behind
// every prefill: the whole point of offloading was to serve queued prefills
// first, so the reload happens lazily, once no prefill wants the pool.
type admitEntry struct {
	reload bool
	key    units.Time
	idx    int
	q      *infReq
}

type admitHeap []admitEntry

func (h admitHeap) Len() int { return len(h) }
func (h admitHeap) Less(i, j int) bool {
	if h[i].reload != h[j].reload {
		return !h[i].reload
	}
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].idx < h[j].idx
}
func (h admitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *admitHeap) Push(x any)   { *h = append(*h, x.(admitEntry)) }
func (h *admitHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// infServer is one GPU instance: a KV block pool, the requests holding it,
// and the grant queues.
type infServer struct {
	idx      int
	eng      *infEngine
	out, in  *flownet.Resource
	outLabel string
	inLabel  string

	capacity int
	free     int
	// admitPrefill counts the queued prefill-class admissions (the reload
	// class is excluded): proactive offload only makes sense while a
	// prefill wants the pool — offloading to serve a reload would just
	// ping-pong KV across the tier.
	admitPrefill int
	// wm is the admission watermark: the head is granted only when wm free
	// blocks remain after its span, so admission always leaves decode
	// headroom (vLLM's watermark rule, and the anti-thrash guard for a
	// just-evicted head whose own freed span would otherwise readmit it
	// into the identical dead end).
	wm int

	// active holds the admitted requests (those holding GPU blocks), in
	// grant order; victim scans filter it by state.
	active []*infReq

	admit   admitHeap
	waiters []*infReq
	wHead   int

	// pressure is the request whose swap-out is currently in flight: at
	// most one outbound swap per server at a time, and demand pressure
	// waits for it to land (the freed span serves the waiters) instead of
	// stacking evictions.
	pressure *infReq
	pumping  bool
	repump   bool
}

// infEngine is the cluster-wide serving state.
type infEngine struct {
	p    InferenceParams
	net  *flownet.Network
	host *uvm.MemPool

	tierIn, tierOut *flownet.Resource
	servers         []*infServer

	preemptions    int64
	offloads       int64
	reloads        int64
	offloadedBytes units.Bytes
}

// kvTransfer is the flow payload of a KV swap; deliver routes completions
// through it.
type kvTransfer struct {
	q   *infReq
	out bool // offload (GPU -> host tier); false: reload
}

// blocksFor is the KV span covering the given token count.
func (e *infEngine) blocksFor(tokens int) int {
	return (tokens + e.p.BlockTokens - 1) / e.p.BlockTokens
}

// RunInference simulates the request trace on the cluster engine and
// returns per-request stats. Results are byte-identical across drivers and
// shard counts, like RunCluster.
func RunInference(p InferenceParams) (InferenceResult, error) {
	p = p.withDefaults()
	if len(p.Requests) == 0 {
		return InferenceResult{}, fmt.Errorf("gpu: inference with no requests")
	}
	if p.Policy == nil {
		return InferenceResult{}, fmt.Errorf("gpu: inference with no KV policy")
	}
	net := flownet.New()
	eng := &infEngine{p: p, net: net}
	for s := 0; s < p.Servers; s++ {
		srv := &infServer{idx: s, eng: eng, capacity: p.GPUBlocks, free: p.GPUBlocks}
		srv.wm = p.GPUBlocks / 100
		if srv.wm < 1 {
			srv.wm = 1
		}
		srv.out = net.AddResource(fmt.Sprintf("srv%d/kv-out", s), p.KVLinkBandwidth)
		srv.in = net.AddResource(fmt.Sprintf("srv%d/kv-in", s), p.KVLinkBandwidth)
		srv.outLabel = fmt.Sprintf("kv-offload:srv%d", s)
		srv.inLabel = fmt.Sprintf("kv-reload:srv%d", s)
		eng.servers = append(eng.servers, srv)
	}
	eng.tierIn = net.AddResource("kvtier-in", p.TierBandwidth)
	eng.tierOut = net.AddResource("kvtier-out", p.TierBandwidth)
	eng.host = uvm.NewMemPool(units.Bytes(p.HostBlocks) * p.BlockBytes)

	runners := make([]*runner, len(p.Requests))
	for i, spec := range p.Requests {
		if spec.PromptTokens < 1 || spec.OutputTokens < 1 {
			return InferenceResult{}, fmt.Errorf("gpu: request %d: prompt %d / output %d tokens (both must be >= 1)",
				i, spec.PromptTokens, spec.OutputTokens)
		}
		if need := eng.blocksFor(spec.PromptTokens + spec.OutputTokens); need > p.GPUBlocks {
			return InferenceResult{}, fmt.Errorf("gpu: request %d KV span %d blocks exceeds the %d-block server pool",
				i, need, p.GPUBlocks)
		}
		q := &infReq{eng: eng, srv: eng.servers[i%p.Servers], spec: spec}
		r := &runner{inf: q, idx: i, arrival: spec.Arrival}
		q.r = r
		runners[i] = r
	}
	opt := driveOptions{driver: p.Driver, shards: p.Shards, steps: p.StepCount}
	if err := drive(net, runners, opt); err != nil {
		return InferenceResult{}, err
	}
	out := InferenceResult{Requests: make([]RequestStat, len(runners))}
	for i, r := range runners {
		q := r.inf
		out.Requests[i] = RequestStat{
			Arrival:    units.MaxTime(0, r.arrival),
			FirstToken: q.firstToken,
			Finish:     r.doneAt,
			Server:     q.srv.idx,
			Preempts:   q.preempts,
			Offloads:   q.offloads,
			Reloads:    q.reloads,
		}
		if d := units.Duration(r.doneAt); d > out.Makespan {
			out.Makespan = d
		}
	}
	out.Preemptions = eng.preemptions
	out.Offloads = eng.offloads
	out.Reloads = eng.reloads
	out.OffloadedBytes = eng.offloadedBytes
	if p.Engine != nil {
		p.Engine.Add(EngineStats{
			FlowRecomputes:  net.Recomputes(),
			FlowSuccessions: net.Successions(),
			ProgressTouches: net.ProgressTouches(),
			ReapScans:       net.ReapScans(),
			FillRounds:      net.FillRounds(),
			FillResScans:    net.FillResScans(),
			FrontierReuses:  net.FrontierReuses(),
		})
	}
	return out, nil
}

// enqueue joins the server's admission queue in state st: the prefill
// class FCFS by arrival, the reload class behind it.
func (q *infReq) enqueue(st reqState) {
	q.state = st
	q.r.phase = phaseWait
	reload := st == reqSwapQueued
	if !reload {
		q.srv.admitPrefill++
	}
	heap.Push(&q.srv.admit, admitEntry{reload: reload, key: units.MaxTime(0, q.spec.Arrival), idx: q.r.idx, q: q})
	q.srv.pump()
}

// stepServe advances the request as far as it can go without consuming
// simulated time — the inference arm of runner.step.
func (r *runner) stepServe() {
	q := r.inf
	for {
		if a := q.eng.p.audit; a != nil {
			a(q)
		}
		switch r.phase {
		case phaseDone, phasePending:
			return
		case phaseExec:
			if q.eng.net.Now() < r.execEnd {
				return // still executing; the driver advances the clock
			}
			q.execDone()
		default: // phaseWait
			if !q.resume() {
				return // blocked on a grant or a flow landing
			}
		}
	}
}

// resume consumes an outstanding grant or landing; reports false while the
// request stays blocked (a strict no-op, so extra polling steps are safe).
func (q *infReq) resume() bool {
	switch q.state {
	case reqQueued:
		if !q.granted {
			return false
		}
		q.granted = false
		q.beginPrefill()
		return true
	case reqSwapQueued:
		if !q.granted {
			return false
		}
		q.granted = false
		q.beginSwapIn()
		return true
	case reqBlockWait:
		if !q.granted {
			return false
		}
		q.granted = false
		q.startDecodeExec()
		return true
	case reqDecode:
		// Only a landed reload parks a request here in phaseWait.
		if !q.homed {
			return false
		}
		q.homed = false
		q.beginDecode()
		return true
	}
	return false // reqSwapOut / reqSwapIn: flow landings transition state
}

// execDone handles a kernel end: prefill completion records TTFT and enters
// the decode loop; a decode completion advances the token count, then
// finishes or decodes on.
func (q *infReq) execDone() {
	switch q.state {
	case reqPrefill:
		if q.firstToken == 0 {
			q.firstToken = q.eng.net.Now()
		}
		q.state = reqDecode
		q.beginDecode()
	case reqDecode:
		q.decoded++
		if q.decoded >= q.spec.OutputTokens {
			q.finish()
			return
		}
		q.beginDecode()
	}
}

// beginPrefill starts the prefill burst over prompt plus already-decoded
// tokens (a re-prefill after preemption recomputes the dropped KV in one
// pass, the vLLM recompute rule).
func (q *infReq) beginPrefill() {
	p := &q.eng.p
	tokens := q.spec.PromptTokens + q.decoded
	q.state = reqPrefill
	q.r.execEnd = q.eng.net.Now() + p.PrefillBase + units.Duration(tokens)*p.PrefillPerToken
	q.r.phase = phaseExec
}

// beginDecode grows the KV when the next token crosses a block boundary —
// stealing a free block or joining the wait queue — then starts the step.
func (q *infReq) beginDecode() {
	need := q.eng.blocksFor(q.spec.PromptTokens + q.decoded + 1)
	grew := false
	if q.blocks < need {
		if !q.srv.takeOne(q) {
			q.state = reqBlockWait
			q.r.phase = phaseWait
			q.srv.waiters = append(q.srv.waiters, q)
			q.srv.pump()
			return
		}
		grew = true
	}
	q.startDecodeExec()
	if grew {
		// The residency check runs only after the request settles into its
		// exec state: a threshold crossing may pick this very request as
		// the swap victim, which is only safe once its state is coherent
		// (the swap then aborts the step like any mid-exec eviction).
		q.srv.checkThreshold()
	}
}

func (q *infReq) startDecodeExec() {
	p := &q.eng.p
	q.state = reqDecode
	q.r.execEnd = q.eng.net.Now() + p.DecodeBase + units.Duration(q.blocks)*p.DecodePerBlock
	q.r.phase = phaseExec
}

// beginSwapIn starts the reload flow into the re-granted GPU blocks.
func (q *infReq) beginSwapIn() {
	eng := q.eng
	q.state = reqSwapIn
	q.r.phase = phaseWait
	bytes := units.Bytes(q.blocks) * eng.p.BlockBytes
	f := eng.net.StartAt(q.srv.inLabel, bytes, eng.net.Now()+eng.p.TierLatency,
		&kvTransfer{q: q}, eng.tierOut, q.srv.in)
	f.Owner = q.r.idx
}

// abortExec cancels the victim's in-flight kernel (an eviction does not
// wait for the step to end; the aborted token is not counted). The driver's
// kernel-end heap entry goes stale — clearing inExecHeap lets the victim's
// next phaseExec entry be re-scheduled, and the stale pop is a no-op step.
func (q *infReq) abortExec() {
	if q.r.phase == phaseExec {
		q.r.inExecHeap = false
	}
}

// swapOut starts the victim's KV flight to the host tier (the tier
// reservation was already made by the caller).
func (q *infReq) swapOut() {
	eng := q.eng
	q.abortExec()
	q.state = reqSwapOut
	q.r.phase = phaseWait
	q.host = q.blocks
	bytes := units.Bytes(q.blocks) * eng.p.BlockBytes
	f := eng.net.StartAt(q.srv.outLabel, bytes, eng.net.Now()+eng.p.TierLatency,
		&kvTransfer{q: q, out: true}, q.srv.out, eng.tierIn)
	f.Owner = q.r.idx
	q.srv.pressure = q
	q.offloads++
	eng.offloads++
	eng.offloadedBytes += bytes
}

// preempt drops the KV (recompute later) and requeues the request FCFS.
func (q *infReq) preempt() {
	srv := q.srv
	q.abortExec()
	srv.free += q.gpu
	q.freed += q.gpu
	q.gpu = 0
	q.blocks = 0
	q.preempts++
	q.eng.preemptions++
	srv.dropActive(q)
	q.enqueue(reqQueued)
}

// finish completes the request at the current clock and returns its blocks.
func (q *infReq) finish() {
	srv := q.srv
	srv.free += q.gpu
	q.freed += q.gpu
	q.gpu = 0
	q.blocks = 0
	q.state = reqDone
	q.r.phase = phaseDone
	q.r.doneAt = q.eng.net.Now()
	srv.dropActive(q)
	srv.pump()
}

// kvLanded handles a KV flow completion (called from deliver, so it runs at
// the same simulation point in every driver).
func (q *infReq) kvLanded(t *kvTransfer) {
	eng := q.eng
	srv := q.srv
	if t.out {
		// Offload landed: the GPU copy retires; requeue for a reload.
		srv.free += q.gpu
		q.freed += q.gpu
		q.gpu = 0
		srv.dropActive(q)
		if srv.pressure == q {
			srv.pressure = nil
		}
		q.enqueue(reqSwapQueued)
	} else {
		// Reload landed: the host copy retires; the decode loop resumes on
		// the request's next step.
		eng.host.Release(units.Bytes(q.host) * eng.p.BlockBytes)
		q.host = 0
		q.reloads++
		eng.reloads++
		q.state = reqDecode
		q.homed = true
	}
	if a := eng.p.audit; a != nil {
		a(q)
	}
}

// wake marks the request's tenant ready in the driver (nil-safe: grants
// remain flags either way, and the polling driver re-rounds on any wake).
func (q *infReq) wake() {
	if q.r.onHostWake != nil {
		q.r.onHostWake()
	}
}

// admitNeed is the block grant that readmits this queued request: the full
// KV span for a reload, the (re)prefill span otherwise.
func (q *infReq) admitNeed() int {
	if q.state == reqSwapQueued {
		return q.blocks
	}
	return q.eng.blocksFor(q.spec.PromptTokens + q.decoded)
}

// takeOne steals one free block for a decode step. No threshold check here:
// the caller is mid-transition, and the check may victimize the caller.
func (srv *infServer) takeOne(q *infReq) bool {
	if srv.free < 1 {
		return false
	}
	srv.free--
	q.blocks++
	q.gpu++
	q.alloc++
	return true
}

// nextWaiter pops the oldest live decode waiter (entries whose state moved
// on — preempted, swapped, finished — are skipped lazily).
func (srv *infServer) nextWaiter() *infReq {
	for srv.wHead < len(srv.waiters) {
		q := srv.waiters[srv.wHead]
		srv.wHead++
		if q.state == reqBlockWait && !q.granted {
			return q
		}
	}
	srv.waiters = srv.waiters[:0]
	srv.wHead = 0
	return nil
}

// hasWaiter reports an ungranted decode waiter without consuming it.
func (srv *infServer) hasWaiter() bool {
	for i := srv.wHead; i < len(srv.waiters); i++ {
		q := srv.waiters[i]
		if q.state == reqBlockWait && !q.granted {
			return true
		}
	}
	return false
}

// pump is the server's grant pass, run after anything frees or queues
// blocks: decode waiters first (running requests outrank admissions, one
// block each, FIFO), then the admission queue head — granted only when its
// whole span plus the watermark is free at once, so admission never eats
// the headroom running decodes live on — then the proactive-offload check,
// then demand pressure while ungranted waiters remain. Re-entrant calls
// (an eviction requeue frees blocks mid-pass) fold into one loop.
func (srv *infServer) pump() {
	if srv.pumping {
		srv.repump = true
		return
	}
	srv.pumping = true
	for {
		srv.repump = false
		for srv.free > 0 {
			q := srv.nextWaiter()
			if q == nil {
				break
			}
			srv.free--
			q.blocks++
			q.gpu++
			q.alloc++
			q.granted = true
			q.wake()
		}
		for len(srv.admit) > 0 {
			head := srv.admit[0].q
			need := head.admitNeed()
			wm := srv.wm
			if need+wm > srv.capacity {
				// A span near the whole pool cannot leave the full
				// watermark behind; shrink it so such a request is still
				// admittable when alone.
				wm = srv.capacity - need
			}
			if need+wm > srv.free {
				break
			}
			srv.free -= need
			if e := heap.Pop(&srv.admit).(admitEntry); !e.reload {
				srv.admitPrefill--
			}
			srv.grantAdmit(head, need)
		}
		srv.checkThreshold()
		if srv.hasWaiter() {
			srv.demand()
		}
		if !srv.repump {
			break
		}
	}
	srv.pumping = false
}

// grantAdmit hands the popped admission head its blocks.
func (srv *infServer) grantAdmit(q *infReq, need int) {
	if q.state == reqSwapQueued {
		q.gpu = need // the KV stays host-resident until the reload lands
	} else {
		q.blocks = need
		q.gpu = need
	}
	q.alloc += need
	srv.active = append(srv.active, q)
	q.granted = true
	q.wake()
}

// demand resolves decode pressure immediately: the youngest admitted
// request vacates — swapping to the host tier when the policy and pool
// allow, else preempted — so the waiting decoder gets its block at this
// simulation point, not a kernel-end later. While a swap-out is already in
// flight, demand waits for its landing instead of stacking evictions.
func (srv *infServer) demand() {
	if srv.pressure != nil {
		return
	}
	v := srv.pickVictim()
	if v == nil {
		return
	}
	eng := srv.eng
	if eng.p.Policy.HostTier() && eng.host.Reserve(units.Bytes(v.blocks)*eng.p.BlockBytes) {
		v.swapOut()
		return
	}
	v.preempt()
}

// checkThreshold starts a proactive offload when residency crossed the
// policy threshold while prefill admissions wait (tiered policies only; at
// most one outbound swap per server, and never a preemption — a full host
// tier just stands the action down).
func (srv *infServer) checkThreshold() {
	p := &srv.eng.p
	if !p.Policy.HostTier() || srv.pressure != nil || srv.admitPrefill == 0 {
		return
	}
	th := p.Policy.OffloadAt()
	if th <= 0 {
		return
	}
	if used := srv.capacity - srv.free; float64(used) > th*float64(srv.capacity) {
		v := srv.pickVictim()
		if v == nil {
			return
		}
		if srv.eng.host.Reserve(units.Bytes(v.blocks) * p.BlockBytes) {
			v.swapOut()
		}
	}
}

// pickVictim selects the youngest admitted request that is decoding or
// block-blocked (the vLLM preemption order: last arrival, ties by index)
// and is not already claimed by an unconsumed grant or landing. The oldest
// ungranted waiter — the next demand beneficiary — is never the victim:
// every eviction must buy at least one decoded token for someone, or
// pressure cycles evict their own beneficiaries and the pool thrashes
// without progress.
func (srv *infServer) pickVictim() *infReq {
	var protect *infReq
	for i := srv.wHead; i < len(srv.waiters); i++ {
		if q := srv.waiters[i]; q.state == reqBlockWait && !q.granted {
			protect = q
			break
		}
	}
	var v *infReq
	for _, q := range srv.active {
		if q == protect || q.granted || q.homed {
			continue
		}
		if q.state != reqBlockWait && !(q.state == reqDecode && q.r.phase == phaseExec) {
			continue
		}
		if v == nil || q.spec.Arrival > v.spec.Arrival ||
			(q.spec.Arrival == v.spec.Arrival && q.r.idx > v.r.idx) {
			v = q
		}
	}
	return v
}

// dropActive removes q from the admitted list, preserving order.
func (srv *infServer) dropActive(q *infReq) {
	for i, a := range srv.active {
		if a == q {
			srv.active = append(srv.active[:i], srv.active[i+1:]...)
			return
		}
	}
}

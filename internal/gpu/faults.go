// Fault injection and recovery for the cluster engine.
//
// A FaultPlan is a fixed, fully deterministic schedule of hardware fault
// events — server crashes (with optional repair), PCIe link-degradation
// windows, and flash die failures. The drivers fold the plan's next event
// time into their shared-clock horizon and apply due events at one pump
// point — after the network advance and kernel-end pops, before arrival
// admission — identically in the event, polling, and sharded schedulers, so
// the byte-identity contract between them extends to faulted runs unchanged
// (see DESIGN.md §15).
//
// A crash aborts the victim's in-flight kernel and flows (riding the
// mid-exec abort and stale-heap-entry tolerance the serving engine
// introduced), discards all resident tensor state, and hands the tenant to
// its Recovery policy: restart from iteration zero, or resume from the last
// completed checkpoint — periodic snapshots written as real GPU→SSD flows
// that charge flash wear like any eviction.

package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"g10sim/internal/flownet"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
)

// CrashFault kills one tenant's server at a point on the shared clock.
type CrashFault struct {
	Tenant int        `json:"tenant"`
	At     units.Time `json:"at"`
	// RepairAfter is the delay until the server is rebuilt and the job
	// re-admitted; negative means the server never returns and the job
	// fails. A crash only affects a job that is running: finished and
	// not-yet-arrived tenants lose nothing (so a crash plus instant repair
	// of an idle server is exactly a no-op).
	RepairAfter units.Duration `json:"repair_after"`
}

// LinkDegrade multiplies one tenant's PCIe bandwidth by Factor over
// [From, Until). Overlapping windows multiply.
type LinkDegrade struct {
	Tenant int        `json:"tenant"`
	From   units.Time `json:"from"`
	Until  units.Time `json:"until"`
	Factor float64    `json:"factor"`
}

// DieFail removes dies from the shared flash array at a point in time,
// scaling its effective bandwidths and remaining allocatable capacity.
type DieFail struct {
	At   units.Time `json:"at"`
	Dies int        `json:"dies"`
}

// FaultPlan is a deterministic schedule of fault events for one cluster
// run. The zero value injects nothing.
type FaultPlan struct {
	Crashes  []CrashFault  `json:"crashes,omitempty"`
	Degrades []LinkDegrade `json:"degrades,omitempty"`
	DieFails []DieFail     `json:"die_fails,omitempty"`
}

// Validate checks the plan against a cluster of n tenants (n < 0 skips the
// upper-bound check, for plans loaded before the tenant list is known).
func (p *FaultPlan) Validate(n int) error {
	for i, c := range p.Crashes {
		if c.Tenant < 0 || (n >= 0 && c.Tenant >= n) {
			return fmt.Errorf("gpu: fault plan: crash %d targets tenant %d", i, c.Tenant)
		}
		if c.At < 0 {
			return fmt.Errorf("gpu: fault plan: crash %d at negative time %d", i, c.At)
		}
	}
	for i, d := range p.Degrades {
		if d.Tenant < 0 || (n >= 0 && d.Tenant >= n) {
			return fmt.Errorf("gpu: fault plan: degrade %d targets tenant %d", i, d.Tenant)
		}
		if d.From < 0 || d.Until <= d.From {
			return fmt.Errorf("gpu: fault plan: degrade %d window [%d, %d) is empty", i, d.From, d.Until)
		}
		if !(d.Factor > 0 && d.Factor <= 1) {
			return fmt.Errorf("gpu: fault plan: degrade %d factor %v outside (0, 1]", i, d.Factor)
		}
	}
	for i, f := range p.DieFails {
		if f.At < 0 {
			return fmt.Errorf("gpu: fault plan: die failure %d at negative time %d", i, f.At)
		}
		if f.Dies < 1 {
			return fmt.Errorf("gpu: fault plan: die failure %d removes %d dies", i, f.Dies)
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Degrades) == 0 && len(p.DieFails) == 0)
}

// MTBF derives the per-server mean time between failures the crash schedule
// implies for a fleet of n tenants: the schedule horizon (latest crash
// time) divided by the per-server crash rate. Zero when the plan has no
// crashes — the Young/Daly auto-interval then disables checkpointing.
func (p *FaultPlan) MTBF(n int) units.Duration {
	if p == nil || len(p.Crashes) == 0 || n < 1 {
		return 0
	}
	var horizon units.Time
	for _, c := range p.Crashes {
		if c.At > horizon {
			horizon = c.At
		}
	}
	return units.Duration(horizon) * units.Duration(n) / units.Duration(len(p.Crashes))
}

// Save serializes the plan as JSON.
func (p *FaultPlan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadFaultPlan reads and validates a JSON fault plan.
func LoadFaultPlan(r io.Reader) (*FaultPlan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p FaultPlan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("gpu: fault plan: %w", err)
	}
	if err := p.Validate(-1); err != nil {
		return nil, err
	}
	// Normalise empty event lists to nil so a load/save round trip is
	// lossless (omitempty drops empty slices on save).
	if len(p.Crashes) == 0 {
		p.Crashes = nil
	}
	if len(p.Degrades) == 0 {
		p.Degrades = nil
	}
	if len(p.DieFails) == 0 {
		p.DieFails = nil
	}
	return &p, nil
}

// Recovery decides how a crashed tenant resumes; internal/policy implements
// Restart and Checkpoint.
type Recovery interface {
	Name() string
	// CheckpointInterval reports the checkpoint cadence in iterations for a
	// tenant whose iteration takes iterTime and whose snapshot write costs
	// ckptCost, under per-server mean time between failures mtbf (0 = no
	// crash schedule). <= 0 disables checkpointing (pure restart).
	CheckpointInterval(iterTime, ckptCost, mtbf units.Duration) int
}

// ---- The fault clock ----

type faultKind int

const (
	faultCrash faultKind = iota
	faultRepair
	faultDegradeStart
	faultDegradeEnd
	faultDieFail
)

// faultEvent is one expanded schedule entry. seq preserves plan order among
// same-time events, so a crash always applies before its own instant repair
// and the expansion order is part of the determinism contract.
type faultEvent struct {
	at        units.Time
	seq       int
	kind      faultKind
	tenant    int
	factor    float64
	dies      int
	permanent bool
}

// faultClock owns a run's expanded, time-ordered fault schedule and the
// state fault application touches: the tenants, the shared substrate, and
// each tenant's stack of active link-degradation factors.
type faultClock struct {
	events  []faultEvent
	cursor  int
	tenants []*runner
	sh      *Shared
	net     *flownet.Network
	factors [][]float64
}

func newFaultClock(p *FaultPlan, tenants []*runner, sh *Shared, net *flownet.Network) *faultClock {
	fc := &faultClock{tenants: tenants, sh: sh, net: net, factors: make([][]float64, len(tenants))}
	seq := 0
	add := func(e faultEvent) {
		e.seq = seq
		seq++
		fc.events = append(fc.events, e)
	}
	for _, c := range p.Crashes {
		add(faultEvent{at: c.At, kind: faultCrash, tenant: c.Tenant, permanent: c.RepairAfter < 0})
		if c.RepairAfter >= 0 {
			add(faultEvent{at: c.At + c.RepairAfter, kind: faultRepair, tenant: c.Tenant})
		}
	}
	for _, d := range p.Degrades {
		add(faultEvent{at: d.From, kind: faultDegradeStart, tenant: d.Tenant, factor: d.Factor})
		add(faultEvent{at: d.Until, kind: faultDegradeEnd, tenant: d.Tenant, factor: d.Factor})
	}
	for _, f := range p.DieFails {
		add(faultEvent{at: f.At, kind: faultDieFail, dies: f.Dies})
	}
	sort.SliceStable(fc.events, func(i, j int) bool {
		if fc.events[i].at != fc.events[j].at {
			return fc.events[i].at < fc.events[j].at
		}
		return fc.events[i].seq < fc.events[j].seq
	})
	return fc
}

// next reports the earliest unapplied event time (Forever when drained);
// the drivers fold it into their horizon, so a cluster whose only pending
// wakeup is a repair never trips the stall guard.
func (fc *faultClock) next() units.Time {
	if fc == nil || fc.cursor >= len(fc.events) {
		return units.Forever
	}
	return fc.events[fc.cursor].at
}

// apply fires every event due at or before now, in (time, plan-order)
// order. wake marks a repaired tenant runnable in the calling driver's
// bookkeeping. Returns how many tenants reached phaseDone (permanently
// failed) so the driver can settle its remaining count.
func (fc *faultClock) apply(now units.Time, wake func(int)) (finished int, err error) {
	for fc.cursor < len(fc.events) && fc.events[fc.cursor].at <= now {
		e := fc.events[fc.cursor]
		fc.cursor++
		switch e.kind {
		case faultCrash:
			if fc.tenants[e.tenant].crash(e.permanent) {
				finished++
			}
		case faultRepair:
			r := fc.tenants[e.tenant]
			if r.phase != phaseCrashed {
				continue // the crash was a no-op (idle server); so is the repair
			}
			if err := r.repair(); err != nil {
				return finished, err
			}
			wake(e.tenant)
		case faultDegradeStart:
			fc.factors[e.tenant] = append(fc.factors[e.tenant], e.factor)
			fc.setLink(e.tenant)
		case faultDegradeEnd:
			fs := fc.factors[e.tenant]
			for i, f := range fs {
				if f == e.factor {
					fc.factors[e.tenant] = append(fs[:i], fs[i+1:]...)
					break
				}
			}
			fc.setLink(e.tenant)
		case faultDieFail:
			fc.sh.dev.FailDies(e.dies)
			fc.net.SetCapacity(fc.sh.ssdRead, fc.sh.dev.EffectiveReadBandwidth())
			fc.net.SetCapacity(fc.sh.ssdWrite, fc.sh.dev.EffectiveWriteBandwidth())
		}
	}
	return finished, nil
}

// setLink re-derives tenant t's PCIe capacity from scratch as the
// configured bandwidth times the product of every active window factor —
// an empty stack restores the exact original float, so closed windows leave
// no drift behind.
func (fc *faultClock) setLink(t int) {
	m := fc.tenants[t].m
	bw := float64(m.cfg.PCIeBandwidth)
	for _, f := range fc.factors[t] {
		bw *= f
	}
	fc.net.SetCapacity(m.pcieIn, units.Bandwidth(bw))
	fc.net.SetCapacity(m.pcieOut, units.Bandwidth(bw))
}

// ---- Crash, repair, checkpoint, restore (runner side) ----

// ckptOp is the payload of a checkpoint or restore flow; delivery routes it
// back to the runner (see deliver in machine.go).
type ckptOp struct {
	r       *runner
	restore bool
}

// crash tears the tenant's server down at the current clock: the in-flight
// kernel and every flow abort, all resident tensor/KV state is discarded,
// and the tenant either waits for repair (phaseCrashed) or — when the crash
// is permanent — fails. Idle tenants (done, pending, already crashed) lose
// nothing. Reports whether the tenant reached phaseDone.
func (r *runner) crash(permanent bool) bool {
	if r.m == nil {
		return false // inference request tenants have no server to crash
	}
	switch r.phase {
	case phaseDone, phasePending, phaseCrashed:
		return false
	}
	m := r.m
	now := m.Now()
	if r.phase == phaseExec {
		// The driver's kernel-end heap entry goes stale; it pops as a no-op.
		r.inExecHeap = false
		r.abortedKerns++
	}
	r.wasted += now - r.progressMark
	r.abortedFlows += m.crashReset()
	if r.ckptFly != nil {
		m.net.Abort(r.ckptFly)
		r.ckptFly = nil
		r.abortedFlows++
	}
	r.hostSubscribed = false
	r.checkFail = false
	r.measuredIter = false
	r.kernelEnds = r.kernelEnds[:0]
	r.k = 0
	if permanent {
		if r.hasCkptRng {
			m.dev.Free(r.ckptRng)
			r.hasCkptRng = false
		}
		m.fail("server crashed with no repair scheduled")
		r.finish()
		return true
	}
	r.restarts++
	r.phase = phaseCrashed
	return false
}

// repair re-admits a crashed tenant at the current clock: global tensors
// re-seed into the then-current shared pool and array, and a tenant with a
// durable checkpoint restores it (a real SSD→GPU flow) before resuming from
// that iteration; everyone else restarts from iteration zero.
func (r *runner) repair() error {
	m := r.m
	r.phase = phaseBoundary
	r.k = 0
	r.iter = r.lastCkpt
	r.sig0 = m.lat
	r.progressMark = m.Now()
	if err := r.start(); err != nil {
		return err
	}
	if r.lastCkpt > 0 && r.hasCkptRng {
		r.startRestore()
	}
	return nil
}

// maybeCheckpoint starts a snapshot write if the tenant's cadence says this
// iteration-closing boundary is due. Reports whether the tenant is now
// blocked on the snapshot flow.
func (r *runner) maybeCheckpoint() bool {
	if r.ckptEvery <= 0 || r.iter%r.ckptEvery != 0 {
		return false
	}
	return r.startCheckpoint()
}

// startCheckpoint launches the snapshot as a real flow over the tenant's
// eviction route (GPU → host bus → SSD channel): checkpoint traffic
// contends with every other migration and its device write charges this
// tenant's flash wear. The flash range is allocated once and rewritten in
// place each interval.
func (r *runner) startCheckpoint() bool {
	m := r.m
	if r.ckptBytes <= 0 {
		return false
	}
	if !r.hasCkptRng {
		rng, err := m.dev.Alloc(m.dev.PagesFor(r.ckptBytes))
		if err != nil {
			// Array out of space: degrade gracefully to restart-only.
			r.ckptEvery = 0
			return false
		}
		r.ckptRng, r.hasCkptRng = rng, true
	}
	lat := m.cfg.DMALatency + m.cfg.SSD.WriteLatency
	r.ckptFly = m.net.StartAt("ckpt:"+m.g.Name, r.ckptBytes, m.Now()+lat, &ckptOp{r: r}, m.routes.evictFlash...)
	r.ckptFly.Owner = m.idx
	r.phase = phaseCkpt
	return true
}

// startRestore launches the checkpoint read-back (SSD → GPU) after a
// repair; the tenant resumes stepping when it lands.
func (r *runner) startRestore() {
	m := r.m
	if err := m.dev.Read(r.ckptRng); err != nil {
		// The array shrank under the checkpoint (die failure): restart.
		r.iter = 0
		r.lastCkpt = 0
		return
	}
	lat := m.cfg.DMALatency + m.cfg.SSD.ReadLatency
	r.ckptFly = m.net.StartAt("restore:"+m.g.Name, r.ckptBytes, m.Now()+lat, &ckptOp{r: r, restore: true}, m.routes.fetchFlash...)
	r.ckptFly.Owner = m.idx
	m.ledger.ssdIn += r.ckptBytes
	r.phase = phaseRestore
}

// ckptLanded commits a finished checkpoint or restore flow and re-opens the
// step machine. Aborted flows never deliver, so this only runs for the
// tenant's live snapshot flow.
func (r *runner) ckptLanded(op *ckptOp) {
	m := r.m
	r.ckptFly = nil
	if op.restore {
		r.progressMark = m.Now()
		r.phase = phaseBoundary
		return
	}
	if _, err := m.dev.Write(r.ckptRng); err != nil {
		m.dev.Free(r.ckptRng)
		r.hasCkptRng = false
		r.ckptEvery = 0
		r.phase = phaseBoundary
		return
	}
	m.refreshSSDWrite()
	m.ledger.ssdOut += r.ckptBytes
	r.lastCkpt = r.iter
	r.ckptWritten += r.ckptBytes
	r.ckptWrites++
	r.progressMark = m.Now()
	r.phase = phaseBoundary
}

// crashReset discards every volatile trace of the machine's execution: all
// in-flight flows abort, resident tensors unmap everywhere (GPU, host,
// flash), metadata queues drain, and the tenant's bulk host-pool grant —
// including any pending waiter subscription — releases in one FIFO-
// preserving round. Iteration over states is in tensor-id order, so the
// teardown's effect on shared structures is identical in every driver.
// Returns the number of aborted flows.
func (m *Machine) crashReset() (aborted int) {
	m.queues.Reset()
	for id := range m.states {
		st := &m.states[id]
		if st.fly != nil {
			m.net.Abort(st.fly)
			st.fly = nil
			aborted++
		}
		if st.mig != nil {
			m.putMigration(st.mig)
			st.mig = nil
		}
		if st.pend != nil {
			// Queues are reset: nothing references the request anymore.
			m.putRequest(st.pend)
			st.pend = nil
		}
		if st.hasRng {
			m.dev.Free(st.flash)
			st.hasRng = false
		}
		if st.loc != uvm.Unmapped {
			m.pt.UnmapRange(st.va, m.pagesOf(st.t))
			m.tlb.InvalidateRange(st.va, m.pagesOf(st.t))
		}
		st.loc = uvm.Unmapped
		st.dying = false
		st.lastUse = 0
		st.inLRU = false
		st.lruPrev, st.lruNext = -1, -1
	}
	m.gpuUsed = 0
	m.inflight = 0
	m.pendFetchBytes, m.evictPendBytes = 0, 0
	m.lruHead, m.lruTail, m.lruLen = -1, -1, 0
	m.host.ReleaseAll(m.idx)
	return aborted
}

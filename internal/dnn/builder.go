package dnn

import (
	"fmt"

	"g10sim/internal/units"
)

// Builder incrementally constructs a Graph, assigning tensor and kernel IDs.
type Builder struct {
	g *Graph
}

// NewBuilder starts a graph for the named model at the given batch size.
func NewBuilder(name string, batch int) *Builder {
	return &Builder{g: &Graph{Name: name, Batch: batch}}
}

// Tensor creates and registers a tensor. Sizes below one byte are rejected
// at Build time via Validate.
func (b *Builder) Tensor(name string, kind TensorKind, size units.Bytes) *Tensor {
	t := &Tensor{ID: len(b.g.Tensors), Name: name, Kind: kind, Size: size}
	b.g.Tensors = append(b.g.Tensors, t)
	return t
}

// Kernel appends a kernel in execution order. MemBytes defaults to the sum
// of the working set (each tensor read or written once); use the returned
// kernel to override for ops with different traffic.
func (b *Builder) Kernel(name string, phase Phase, flops float64, inputs, outputs []*Tensor) *Kernel {
	k := &Kernel{
		ID:      len(b.g.Kernels),
		Name:    name,
		Phase:   phase,
		Inputs:  inputs,
		Outputs: outputs,
		FLOPs:   flops,
	}
	k.MemBytes = k.WorkingSet()
	b.g.Kernels = append(b.g.Kernels, k)
	return k
}

// Build validates and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("dnn: build: %w", err)
	}
	return b.g, nil
}

// MustBuild is Build that panics on error; for use by the model zoo whose
// construction is deterministic.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

package dnn

import (
	"strings"
	"testing"
	"testing/quick"

	"g10sim/internal/units"
)

// tinyGraph builds W -> conv -> A -> relu -> B with a workspace on conv.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("tiny", 4)
	w := b.Tensor("W", Global, 16*units.MB)
	x := b.Tensor("X", Intermediate, 8*units.MB)
	ws := b.Tensor("ws", Workspace, 32*units.MB)
	a := b.Tensor("A", Intermediate, 8*units.MB)
	bb := b.Tensor("B", Intermediate, 8*units.MB)
	b.Kernel("conv", Forward, 1e9, []*Tensor{w, x, ws}, []*Tensor{a})
	b.Kernel("relu", Forward, 1e6, []*Tensor{a}, []*Tensor{bb})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderAssignsIDs(t *testing.T) {
	g := tinyGraph(t)
	for i, tensor := range g.Tensors {
		if tensor.ID != i {
			t.Errorf("tensor %q ID = %d, want %d", tensor.Name, tensor.ID, i)
		}
	}
	for i, k := range g.Kernels {
		if k.ID != i {
			t.Errorf("kernel %q ID = %d, want %d", k.Name, k.ID, i)
		}
	}
}

func TestFootprintAndGlobals(t *testing.T) {
	g := tinyGraph(t)
	if got, want := g.Footprint(), 72*units.MB; got != want {
		t.Errorf("Footprint = %v, want %v", got, want)
	}
	if got, want := g.GlobalBytes(), 16*units.MB; got != want {
		t.Errorf("GlobalBytes = %v, want %v", got, want)
	}
}

func TestWorkingSet(t *testing.T) {
	g := tinyGraph(t)
	if got, want := g.Kernels[0].WorkingSet(), 64*units.MB; got != want {
		t.Errorf("conv working set = %v, want %v", got, want)
	}
	if got, want := g.MaxWorkingSet(), 64*units.MB; got != want {
		t.Errorf("MaxWorkingSet = %v, want %v", got, want)
	}
}

func TestWorkingSetCountsDuplicatesOnce(t *testing.T) {
	b := NewBuilder("dup", 1)
	x := b.Tensor("X", Intermediate, 4*units.MB)
	// In-place style op: X both input and output.
	k := b.Kernel("relu_", Forward, 1, []*Tensor{x}, []*Tensor{x})
	if got, want := k.WorkingSet(), 4*units.MB; got != want {
		t.Errorf("WorkingSet = %v, want %v", got, want)
	}
	if got := len(k.Tensors()); got != 1 {
		t.Errorf("Tensors() len = %d, want 1", got)
	}
}

func TestUseIndices(t *testing.T) {
	g := tinyGraph(t)
	uses := g.UseIndices()
	byName := func(name string) []int {
		for _, tensor := range g.Tensors {
			if tensor.Name == name {
				return uses[tensor.ID]
			}
		}
		t.Fatalf("tensor %q not found", name)
		return nil
	}
	if got := byName("A"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("uses(A) = %v, want [0 1]", got)
	}
	if got := byName("ws"); len(got) != 1 || got[0] != 0 {
		t.Errorf("uses(ws) = %v, want [0]", got)
	}
}

func TestValidateCatchesUnusedTensor(t *testing.T) {
	b := NewBuilder("bad", 1)
	x := b.Tensor("X", Intermediate, units.MB)
	b.Tensor("orphan", Intermediate, units.MB)
	b.Kernel("op", Forward, 1, []*Tensor{x}, []*Tensor{x})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never used") {
		t.Errorf("expected 'never used' error, got %v", err)
	}
}

func TestValidateCatchesSharedWorkspace(t *testing.T) {
	b := NewBuilder("bad", 1)
	ws := b.Tensor("ws", Workspace, units.MB)
	x := b.Tensor("X", Intermediate, units.MB)
	b.Kernel("op1", Forward, 1, []*Tensor{ws}, []*Tensor{x})
	b.Kernel("op2", Forward, 1, []*Tensor{x, ws}, []*Tensor{x})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "workspace") {
		t.Errorf("expected workspace error, got %v", err)
	}
}

func TestValidateCatchesZeroSize(t *testing.T) {
	b := NewBuilder("bad", 1)
	x := b.Tensor("X", Intermediate, 0)
	b.Kernel("op", Forward, 1, []*Tensor{x}, []*Tensor{x})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("expected size error, got %v", err)
	}
}

func TestValidateCatchesEmptyGraph(t *testing.T) {
	b := NewBuilder("empty", 1)
	if _, err := b.Build(); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestValidateCatchesForeignTensor(t *testing.T) {
	b := NewBuilder("a", 1)
	x := b.Tensor("X", Intermediate, units.MB)
	b.Kernel("op", Forward, 1, []*Tensor{x}, []*Tensor{x})
	g := b.MustBuild()

	b2 := NewBuilder("b", 1)
	y := b2.Tensor("Y", Intermediate, units.MB)
	b2.Kernel("op", Forward, 1, []*Tensor{y}, []*Tensor{y})
	g2 := b2.MustBuild()

	// Splice a foreign tensor in and re-validate.
	g.Kernels[0].Inputs = []*Tensor{g2.Tensors[0]}
	if err := g.Validate(); err == nil {
		t.Error("expected foreign-tensor error")
	}
}

func TestMemBytesDefaultsToWorkingSet(t *testing.T) {
	g := tinyGraph(t)
	for _, k := range g.Kernels {
		if k.MemBytes != k.WorkingSet() {
			t.Errorf("kernel %q MemBytes = %v, want %v", k.Name, k.MemBytes, k.WorkingSet())
		}
	}
}

func TestSummary(t *testing.T) {
	g := tinyGraph(t)
	s := g.Summary()
	if s.Kernels != 2 || s.Tensors != 5 || s.Batch != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.TotalFLOPs != 1e9+1e6 {
		t.Errorf("TotalFLOPs = %v", s.TotalFLOPs)
	}
}

func TestKindStrings(t *testing.T) {
	if Global.String() != "global" || Intermediate.String() != "intermediate" || Workspace.String() != "workspace" {
		t.Error("TensorKind strings wrong")
	}
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Error("Phase strings wrong")
	}
	if !strings.Contains(TensorKind(9).String(), "9") {
		t.Error("unknown kind string wrong")
	}
}

// Property: for any random set of op chains, UseIndices entries are sorted,
// deduplicated, and within range.
func TestUseIndicesSortedProperty(t *testing.T) {
	f := func(lengths []uint8) bool {
		if len(lengths) == 0 {
			return true
		}
		if len(lengths) > 20 {
			lengths = lengths[:20]
		}
		b := NewBuilder("p", 1)
		prev := b.Tensor("t0", Intermediate, units.MB)
		for i, l := range lengths {
			next := b.Tensor(tname(i+1), Intermediate, units.Bytes(int64(l)+1)*units.KB)
			b.Kernel("op", Forward, 1, []*Tensor{prev}, []*Tensor{next})
			prev = next
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for _, u := range g.UseIndices() {
			for i := 1; i < len(u); i++ {
				if u[i] <= u[i-1] {
					return false
				}
			}
			for _, ki := range u {
				if ki < 0 || ki >= len(g.Kernels) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func tname(i int) string { return "t" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }

// Package dnn defines the dataflow-graph intermediate representation that
// the tensor vitality analyzer (§4.2 of the G10 paper) consumes: tensors
// with byte sizes and lifetime kinds, and kernels (operator launches) in
// execution order with their input/output tensor sets.
//
// One Graph represents a single training iteration (forward pass followed by
// backward pass). Global tensors (weights) live across iterations; the
// analyzer treats their trailing inactive period as wrapping around to their
// first use in the next iteration.
package dnn

import (
	"fmt"
	"sync/atomic"

	"g10sim/internal/units"
)

// TensorKind classifies a tensor's lifetime behaviour (§4.2).
type TensorKind int

const (
	// Global tensors (model weights) are allocated at program start and
	// used across training iterations.
	Global TensorKind = iota
	// Intermediate tensors (activations, gradients) are born at their
	// first use within an iteration and dead after their last.
	Intermediate
	// Workspace tensors are scratch buffers (e.g. cuDNN conv workspaces)
	// alive only during the single kernel that uses them.
	Workspace
)

func (k TensorKind) String() string {
	switch k {
	case Global:
		return "global"
	case Intermediate:
		return "intermediate"
	case Workspace:
		return "workspace"
	default:
		return fmt.Sprintf("TensorKind(%d)", int(k))
	}
}

// Tensor is a named, fixed-size buffer in the unified memory space.
type Tensor struct {
	ID   int
	Name string
	Kind TensorKind
	Size units.Bytes
}

func (t *Tensor) String() string {
	return fmt.Sprintf("%s(%s, %v)", t.Name, t.Kind, t.Size)
}

// Phase tags which part of the training iteration a kernel belongs to.
type Phase int

const (
	Forward Phase = iota
	Backward
)

func (p Phase) String() string {
	if p == Forward {
		return "fwd"
	}
	return "bwd"
}

// Kernel is one operator launch. Inputs and Outputs together form the
// kernel's working set: every listed tensor must be resident in GPU memory
// while the kernel executes (a tensor is "active" then, per §3).
type Kernel struct {
	ID      int
	Name    string
	Phase   Phase
	Inputs  []*Tensor
	Outputs []*Tensor

	// FLOPs is the floating-point work of the kernel; MemBytes the DRAM
	// traffic it generates. Both feed the roofline timing model in
	// internal/profile.
	FLOPs    float64
	MemBytes units.Bytes

	// tensorsCache memoizes the deduplicated working set: the runtime
	// simulator asks for it on every wait-loop iteration and graphs are
	// shared (read-only) across concurrent simulations, so it is stored
	// behind an atomic pointer and invalidated when the Inputs/Outputs
	// slices are replaced.
	tensorsCache atomic.Pointer[kernelTensors]
}

// kernelTensors is one memoized Tensors() result together with the input
// and output slices it was derived from.
type kernelTensors struct {
	in, out []*Tensor
	list    []*Tensor
}

// sameTensorSlice reports whether two slices are the same view (length and
// backing array start).
func sameTensorSlice(a, b []*Tensor) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// WorkingSet reports the total bytes of the kernel's input and output
// tensors (each distinct tensor counted once).
func (k *Kernel) WorkingSet() units.Bytes {
	var total units.Bytes
	seen := make(map[int]bool, len(k.Inputs)+len(k.Outputs))
	for _, t := range k.Inputs {
		if !seen[t.ID] {
			seen[t.ID] = true
			total += t.Size
		}
	}
	for _, t := range k.Outputs {
		if !seen[t.ID] {
			seen[t.ID] = true
			total += t.Size
		}
	}
	return total
}

// Tensors yields each distinct tensor the kernel touches, inputs first.
// The result is memoized (recomputed if Inputs or Outputs are replaced);
// callers must not mutate it.
func (k *Kernel) Tensors() []*Tensor {
	if c := k.tensorsCache.Load(); c != nil && sameTensorSlice(c.in, k.Inputs) && sameTensorSlice(c.out, k.Outputs) {
		return c.list
	}
	out := make([]*Tensor, 0, len(k.Inputs)+len(k.Outputs))
	seen := make(map[int]bool, len(k.Inputs)+len(k.Outputs))
	for _, t := range k.Inputs {
		if !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	for _, t := range k.Outputs {
		if !seen[t.ID] {
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	k.tensorsCache.Store(&kernelTensors{in: k.Inputs, out: k.Outputs, list: out})
	return out
}

// Graph is one training iteration of a DNN model.
type Graph struct {
	Name    string
	Batch   int
	Kernels []*Kernel // execution order
	Tensors []*Tensor // indexed by Tensor.ID
}

// Footprint reports the total bytes of all tensors — the paper's "M",
// expressed as a fraction of GPU memory in its figures.
func (g *Graph) Footprint() units.Bytes {
	var total units.Bytes
	for _, t := range g.Tensors {
		total += t.Size
	}
	return total
}

// GlobalBytes reports the total size of global (weight) tensors.
func (g *Graph) GlobalBytes() units.Bytes {
	var total units.Bytes
	for _, t := range g.Tensors {
		if t.Kind == Global {
			total += t.Size
		}
	}
	return total
}

// MaxWorkingSet reports the largest single-kernel working set, which bounds
// the minimum GPU memory any policy needs.
func (g *Graph) MaxWorkingSet() units.Bytes {
	var max units.Bytes
	for _, k := range g.Kernels {
		if ws := k.WorkingSet(); ws > max {
			max = ws
		}
	}
	return max
}

// TotalFLOPs sums kernel FLOPs across the iteration.
func (g *Graph) TotalFLOPs() float64 {
	var total float64
	for _, k := range g.Kernels {
		total += k.FLOPs
	}
	return total
}

// UseIndices reports, per tensor ID, the sorted kernel indices at which the
// tensor is an input or output.
func (g *Graph) UseIndices() [][]int {
	uses := make([][]int, len(g.Tensors))
	for ki, k := range g.Kernels {
		for _, t := range k.Tensors() {
			n := len(uses[t.ID])
			if n > 0 && uses[t.ID][n-1] == ki {
				continue
			}
			uses[t.ID] = append(uses[t.ID], ki)
		}
	}
	return uses
}

// Validate checks the graph's structural invariants.
func (g *Graph) Validate() error {
	if len(g.Kernels) == 0 {
		return fmt.Errorf("dnn: graph %q has no kernels", g.Name)
	}
	for i, t := range g.Tensors {
		if t == nil {
			return fmt.Errorf("dnn: graph %q tensor slot %d is nil", g.Name, i)
		}
		if t.ID != i {
			return fmt.Errorf("dnn: graph %q tensor %q has ID %d at slot %d", g.Name, t.Name, t.ID, i)
		}
		if t.Size <= 0 {
			return fmt.Errorf("dnn: graph %q tensor %q has size %d", g.Name, t.Name, t.Size)
		}
	}
	uses := g.UseIndices()
	for id, u := range uses {
		t := g.Tensors[id]
		if len(u) == 0 {
			return fmt.Errorf("dnn: graph %q tensor %q is never used", g.Name, t.Name)
		}
		if t.Kind == Workspace && len(u) != 1 {
			return fmt.Errorf("dnn: graph %q workspace %q used by %d kernels", g.Name, t.Name, len(u))
		}
	}
	for ki, k := range g.Kernels {
		if k.ID != ki {
			return fmt.Errorf("dnn: graph %q kernel %q has ID %d at slot %d", g.Name, k.Name, k.ID, ki)
		}
		if len(k.Outputs) == 0 && len(k.Inputs) == 0 {
			return fmt.Errorf("dnn: graph %q kernel %q touches no tensors", g.Name, k.Name)
		}
		for _, t := range k.Tensors() {
			if t.ID < 0 || t.ID >= len(g.Tensors) || g.Tensors[t.ID] != t {
				return fmt.Errorf("dnn: graph %q kernel %q references foreign tensor %q", g.Name, k.Name, t.Name)
			}
		}
	}
	return nil
}

// Stats summarises a graph for reporting (Table 1 of the paper).
type Stats struct {
	Name          string
	Batch         int
	Kernels       int
	Tensors       int
	Footprint     units.Bytes
	GlobalBytes   units.Bytes
	MaxWorkingSet units.Bytes
	TotalFLOPs    float64
}

// Summary computes headline statistics for the graph.
func (g *Graph) Summary() Stats {
	return Stats{
		Name:          g.Name,
		Batch:         g.Batch,
		Kernels:       len(g.Kernels),
		Tensors:       len(g.Tensors),
		Footprint:     g.Footprint(),
		GlobalBytes:   g.GlobalBytes(),
		MaxWorkingSet: g.MaxWorkingSet(),
		TotalFLOPs:    g.TotalFLOPs(),
	}
}

package models

import (
	"fmt"

	"g10sim/internal/dnn"
)

// ResNetConfig parameterises the residual CNNs of Table 1.
type ResNetConfig struct {
	Batch int
	// SizeScale calibrates intermediate tensor sizes so each model's total
	// footprint matches the paper's reported M%. See catalog.go.
	SizeScale float64
}

// ResNet152 builds one training iteration of ResNet-152 (He et al., CVPR'16)
// on 224×224 ImageNet inputs: a 7×7 stem and bottleneck stages of
// [3, 8, 36, 3] blocks.
func ResNet152(cfg ResNetConfig) *dnn.Graph {
	tp := newTape("ResNet152", cfg.Batch, cfg.SizeScale)
	x := tp.inputImage(3, 224, 224)

	// Stem: conv7x7/2 -> bn -> relu -> maxpool/2.
	x = tp.conv2d("stem.conv", x, 64, 7, 2, 3, 1)
	x = tp.batchNorm("stem.bn", x)
	x = tp.relu("stem.relu", x)
	x = tp.pool("stem.maxpool", x, 3, 2, 1)

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{8, 128, 512, 2},
		{36, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			x = bottleneck(tp, fmt.Sprintf("s%d.b%d", si+1, bi), x, st.mid, st.out, stride, 1, nil)
		}
	}

	pooled := tp.globalAvgPool("head.avgpool", x)
	logits := tp.linear("head.fc", pooled, x.C, 1000)
	tp.unary("head.softmax", logits, 5)
	return tp.finish()
}

// seConfig enables squeeze-and-excitation inside bottleneck blocks.
type seConfig struct {
	reduction int
}

// bottleneck emits a (optionally grouped, optionally SE) residual bottleneck:
// 1x1 reduce -> 3x3 (groups) -> 1x1 expand, plus a projection shortcut when
// the shape changes, followed by add and relu.
func bottleneck(tp *tape, name string, in feature, mid, out, stride, groups int, se *seConfig) feature {
	defer tp.enter(name)()

	h := tp.conv2d("conv1", in, mid, 1, 1, 0, 1)
	h = tp.batchNorm("bn1", h)
	h = tp.relu("relu1", h)
	h = tp.conv2d("conv2", h, mid, 3, stride, 1, groups)
	h = tp.batchNorm("bn2", h)
	h = tp.relu("relu2", h)
	h = tp.conv2d("conv3", h, out, 1, 1, 0, 1)
	h = tp.batchNorm("bn3", h)

	if se != nil {
		squeezed := tp.globalAvgPool("se.squeeze", h)
		fc1 := tp.linear("se.fc1", squeezed, h.C, h.C/se.reduction)
		act := tp.unary("se.relu", fc1, 1)
		fc2 := tp.linear("se.fc2", act, h.C/se.reduction, h.C)
		gate := tp.unary("se.sigmoid", fc2, 4)
		h = tp.channelScale("se.scale", h, gate)
	}

	short := in
	if stride != 1 || in.C != out {
		short = tp.conv2d("down.conv", in, out, 1, stride, 0, 1)
		short = tp.batchNorm("down.bn", short)
	}
	sum := tp.add("add", h, short)
	return tp.relu("relu3", sum)
}

// SENet154 builds one training iteration of SENet-154 (Hu et al., CVPR'18):
// a 3-conv stem, grouped 3×3 bottlenecks (64 groups, double-width mid
// channels) with squeeze-and-excitation, stages of [3, 8, 36, 3] blocks.
func SENet154(cfg ResNetConfig) *dnn.Graph {
	tp := newTape("SENet154", cfg.Batch, cfg.SizeScale)
	x := tp.inputImage(3, 224, 224)

	// SENet's deep stem: three 3×3 convs.
	x = tp.conv2d("stem.conv1", x, 64, 3, 2, 1, 1)
	x = tp.batchNorm("stem.bn1", x)
	x = tp.relu("stem.relu1", x)
	x = tp.conv2d("stem.conv2", x, 64, 3, 1, 1, 1)
	x = tp.batchNorm("stem.bn2", x)
	x = tp.relu("stem.relu2", x)
	x = tp.conv2d("stem.conv3", x, 128, 3, 1, 1, 1)
	x = tp.batchNorm("stem.bn3", x)
	x = tp.relu("stem.relu3", x)
	x = tp.pool("stem.maxpool", x, 3, 2, 1)

	se := &seConfig{reduction: 16}
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 128, 256, 1},
		{8, 256, 512, 2},
		{36, 512, 1024, 2},
		{3, 1024, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			x = bottleneck(tp, fmt.Sprintf("s%d.b%d", si+1, bi), x, st.mid, st.out, stride, 64, se)
		}
	}

	pooled := tp.globalAvgPool("head.avgpool", x)
	drop := tp.unary("head.dropout", pooled, 1)
	logits := tp.linear("head.fc", drop, x.C, 1000)
	tp.unary("head.softmax", logits, 5)
	return tp.finish()
}

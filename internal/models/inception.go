package models

import (
	"fmt"

	"g10sim/internal/dnn"
)

// InceptionConfig parameterises Inception-v3.
type InceptionConfig struct {
	Batch     int
	SizeScale float64
}

// Inceptionv3 builds one training iteration of Inception-v3 (Szegedy et al.,
// CVPR'16) on 299×299 ImageNet inputs, including the auxiliary classifier
// used during training. Branch structure follows the torchvision
// implementation the paper traces.
func Inceptionv3(cfg InceptionConfig) *dnn.Graph {
	tp := newTape("Inceptionv3", cfg.Batch, cfg.SizeScale)
	x := tp.inputImage(3, 299, 299)

	// Stem.
	x = basicConv(tp, "stem.1a", x, 32, 3, 3, 2, 0, 0, 1)
	x = basicConv(tp, "stem.2a", x, 32, 3, 3, 1, 0, 0, 1)
	x = basicConv(tp, "stem.2b", x, 64, 3, 3, 1, 1, 1, 1)
	x = tp.pool("stem.maxpool1", x, 3, 2, 0)
	x = basicConv(tp, "stem.3b", x, 80, 1, 1, 1, 0, 0, 1)
	x = basicConv(tp, "stem.4a", x, 192, 3, 3, 1, 0, 0, 1)
	x = tp.pool("stem.maxpool2", x, 3, 2, 0)

	// 3× InceptionA at 35×35.
	for i, pf := range []int{32, 64, 64} {
		x = inceptionA(tp, fmt.Sprintf("mixedA%d", i), x, pf)
	}
	// Reduction to 17×17.
	x = inceptionB(tp, "mixedB", x)
	// 4× InceptionC at 17×17.
	for i, c7 := range []int{128, 160, 160, 192} {
		x = inceptionC(tp, fmt.Sprintf("mixedC%d", i), x, c7)
	}

	// Auxiliary classifier branches off here during training.
	auxLogits := inceptionAux(tp, "aux", x)

	// Reduction to 8×8, then 2× InceptionE.
	x = inceptionD(tp, "mixedD", x)
	x = inceptionE(tp, "mixedE0", x)
	x = inceptionE(tp, "mixedE1", x)

	pooled := tp.globalAvgPool("head.avgpool", x)
	drop := tp.unary("head.dropout", pooled, 1)
	logits := tp.linear("head.fc", drop, x.C, 1000)
	main := tp.unary("head.softmax", logits, 5)

	// Combine the main and auxiliary heads so both receive gradients.
	tp.binary("loss_combine", main, auxLogits)
	return tp.finish()
}

// basicConv is torchvision's BasicConv2d: conv → batchnorm → relu.
func basicConv(tp *tape, name string, in feature, Cout, kh, kw, stride, padH, padW, groups int) feature {
	h := tp.conv2dRect(name+".conv", in, Cout, kh, kw, stride, padH, padW, groups)
	h = tp.batchNorm(name+".bn", h)
	return tp.relu(name+".relu", h)
}

func inceptionA(tp *tape, name string, in feature, poolFeatures int) feature {
	defer tp.enter(name)()
	b1 := basicConv(tp, "b1x1", in, 64, 1, 1, 1, 0, 0, 1)

	b5 := basicConv(tp, "b5x5.1", in, 48, 1, 1, 1, 0, 0, 1)
	b5 = basicConv(tp, "b5x5.2", b5, 64, 5, 5, 1, 2, 2, 1)

	b3 := basicConv(tp, "b3x3dbl.1", in, 64, 1, 1, 1, 0, 0, 1)
	b3 = basicConv(tp, "b3x3dbl.2", b3, 96, 3, 3, 1, 1, 1, 1)
	b3 = basicConv(tp, "b3x3dbl.3", b3, 96, 3, 3, 1, 1, 1, 1)

	bp := tp.pool("bpool.avg", in, 3, 1, 1)
	bp = basicConv(tp, "bpool.conv", bp, poolFeatures, 1, 1, 1, 0, 0, 1)

	return tp.concat("concat", b1, b5, b3, bp)
}

func inceptionB(tp *tape, name string, in feature) feature {
	defer tp.enter(name)()
	b3 := basicConv(tp, "b3x3", in, 384, 3, 3, 2, 0, 0, 1)

	bd := basicConv(tp, "b3x3dbl.1", in, 64, 1, 1, 1, 0, 0, 1)
	bd = basicConv(tp, "b3x3dbl.2", bd, 96, 3, 3, 1, 1, 1, 1)
	bd = basicConv(tp, "b3x3dbl.3", bd, 96, 3, 3, 2, 0, 0, 1)

	bp := tp.pool("bpool.max", in, 3, 2, 0)
	return tp.concat("concat", b3, bd, bp)
}

func inceptionC(tp *tape, name string, in feature, c7 int) feature {
	defer tp.enter(name)()
	b1 := basicConv(tp, "b1x1", in, 192, 1, 1, 1, 0, 0, 1)

	b7 := basicConv(tp, "b7x7.1", in, c7, 1, 1, 1, 0, 0, 1)
	b7 = basicConv(tp, "b7x7.2", b7, c7, 1, 7, 1, 0, 3, 1)
	b7 = basicConv(tp, "b7x7.3", b7, 192, 7, 1, 1, 3, 0, 1)

	bd := basicConv(tp, "b7x7dbl.1", in, c7, 1, 1, 1, 0, 0, 1)
	bd = basicConv(tp, "b7x7dbl.2", bd, c7, 7, 1, 1, 3, 0, 1)
	bd = basicConv(tp, "b7x7dbl.3", bd, c7, 1, 7, 1, 0, 3, 1)
	bd = basicConv(tp, "b7x7dbl.4", bd, c7, 7, 1, 1, 3, 0, 1)
	bd = basicConv(tp, "b7x7dbl.5", bd, 192, 1, 7, 1, 0, 3, 1)

	bp := tp.pool("bpool.avg", in, 3, 1, 1)
	bp = basicConv(tp, "bpool.conv", bp, 192, 1, 1, 1, 0, 0, 1)

	return tp.concat("concat", b1, b7, bd, bp)
}

func inceptionD(tp *tape, name string, in feature) feature {
	defer tp.enter(name)()
	b3 := basicConv(tp, "b3x3.1", in, 192, 1, 1, 1, 0, 0, 1)
	b3 = basicConv(tp, "b3x3.2", b3, 320, 3, 3, 2, 0, 0, 1)

	b7 := basicConv(tp, "b7x7x3.1", in, 192, 1, 1, 1, 0, 0, 1)
	b7 = basicConv(tp, "b7x7x3.2", b7, 192, 1, 7, 1, 0, 3, 1)
	b7 = basicConv(tp, "b7x7x3.3", b7, 192, 7, 1, 1, 3, 0, 1)
	b7 = basicConv(tp, "b7x7x3.4", b7, 192, 3, 3, 2, 0, 0, 1)

	bp := tp.pool("bpool.max", in, 3, 2, 0)
	return tp.concat("concat", b3, b7, bp)
}

func inceptionE(tp *tape, name string, in feature) feature {
	defer tp.enter(name)()
	b1 := basicConv(tp, "b1x1", in, 320, 1, 1, 1, 0, 0, 1)

	b3 := basicConv(tp, "b3x3.1", in, 384, 1, 1, 1, 0, 0, 1)
	b3a := basicConv(tp, "b3x3.2a", b3, 384, 1, 3, 1, 0, 1, 1)
	b3b := basicConv(tp, "b3x3.2b", b3, 384, 3, 1, 1, 1, 0, 1)
	b3c := tp.concat("b3x3.concat", b3a, b3b)

	bd := basicConv(tp, "b3x3dbl.1", in, 448, 1, 1, 1, 0, 0, 1)
	bd = basicConv(tp, "b3x3dbl.2", bd, 384, 3, 3, 1, 1, 1, 1)
	bda := basicConv(tp, "b3x3dbl.3a", bd, 384, 1, 3, 1, 0, 1, 1)
	bdb := basicConv(tp, "b3x3dbl.3b", bd, 384, 3, 1, 1, 1, 0, 1)
	bdc := tp.concat("b3x3dbl.concat", bda, bdb)

	bp := tp.pool("bpool.avg", in, 3, 1, 1)
	bp = basicConv(tp, "bpool.conv", bp, 192, 1, 1, 1, 0, 0, 1)

	return tp.concat("concat", b1, b3c, bdc, bp)
}

// inceptionAux is the training-time auxiliary classifier head.
func inceptionAux(tp *tape, name string, in feature) *val {
	defer tp.enter(name)()
	h := tp.pool("avgpool", in, 5, 3, 0)
	h = basicConv(tp, "conv0", h, 128, 1, 1, 1, 0, 0, 1)
	h = basicConv(tp, "conv1", h, 768, 5, 5, 1, 0, 0, 1)
	pooled := tp.globalAvgPool("gap", h)
	logits := tp.linear("fc", pooled, h.C, 1000)
	return tp.unary("softmax", logits, 5)
}

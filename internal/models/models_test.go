package models

import (
	"strings"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

func TestTinyNetsValidate(t *testing.T) {
	for _, g := range []*dnn.Graph{TinyMLP(8), TinyCNN(8), TinyTransformer(8)} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestTinyMLPStructure(t *testing.T) {
	g := TinyMLP(8)
	// 6 forward ops (3 linears, 2 relus, softmax) + loss seed + backward.
	var fwd, bwd int
	for _, k := range g.Kernels {
		if k.Phase == dnn.Forward {
			fwd++
		} else {
			bwd++
		}
	}
	if fwd != 6 {
		t.Errorf("forward kernels = %d, want 6", fwd)
	}
	// bwd: loss_grad + fc3(2) + softmax... softmax bwd(1) + relu2(1) +
	// fc2(2) + relu1(1) + fc1: input needs no grad so only bwd_w (1),
	// fc3 bwd_data+bwd_w (2), fc2 (2) => total 1+1+2+1+2+1+1+... count loosely.
	if bwd < 8 {
		t.Errorf("backward kernels = %d, want >= 8", bwd)
	}
	// First layer's input must not receive a gradient kernel.
	for _, k := range g.Kernels {
		if strings.Contains(k.Name, "fc1.bwd_data") {
			t.Error("fc1 emitted a data-gradient kernel for the network input")
		}
	}
}

func TestBackwardMirrorsForward(t *testing.T) {
	g := TinyCNN(4)
	// Backward kernels must all come after every forward kernel.
	lastFwd, firstBwd := -1, len(g.Kernels)
	for i, k := range g.Kernels {
		if k.Phase == dnn.Forward && i > lastFwd {
			lastFwd = i
		}
		if k.Phase == dnn.Backward && i < firstBwd {
			firstBwd = i
		}
	}
	if lastFwd >= firstBwd {
		t.Errorf("forward kernel at %d after backward kernel at %d", lastFwd, firstBwd)
	}
}

func TestConvWorkspacesSingleUse(t *testing.T) {
	g := TinyCNN(4)
	uses := g.UseIndices()
	var nWS int
	for _, tensor := range g.Tensors {
		if tensor.Kind != dnn.Workspace {
			continue
		}
		nWS++
		if len(uses[tensor.ID]) != 1 {
			t.Errorf("workspace %s used %d times", tensor.Name, len(uses[tensor.ID]))
		}
	}
	if nWS == 0 {
		t.Error("TinyCNN has no conv workspaces")
	}
}

func TestCatalogBuildsAtSmallBatch(t *testing.T) {
	// Build every paper model at a tiny batch to keep the test fast while
	// validating the full structural path.
	for _, spec := range Catalog() {
		g := spec.Build(2)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.Batch != 2 {
			t.Errorf("%s batch = %d", spec.Name, g.Batch)
		}
	}
}

// TestTable1KernelCounts checks kernel counts against the paper's Table 1.
// CNN counts derive naturally from the architectures and must be close;
// transformer traces in the paper fragment framework ops into more CUDA
// kernels than our operator-level modelling, so we assert a documented
// looser band there (see EXPERIMENTS.md).
func TestTable1KernelCounts(t *testing.T) {
	tolerance := map[string]float64{
		"BERT":        0.60, // operator-level vs CUDA-kernel-level counting
		"ViT":         0.65,
		"Inceptionv3": 0.25,
		"ResNet152":   0.15,
		"SENet154":    0.20,
	}
	for _, spec := range Catalog() {
		g := spec.Build(spec.PaperBatch)
		got := float64(len(g.Kernels))
		want := float64(spec.PaperKernels)
		dev := (got - want) / want
		if dev < 0 {
			dev = -dev
		}
		tol := tolerance[spec.Name]
		t.Logf("%-12s kernels: got %4.0f, paper %4.0f (dev %+.1f%%)", spec.Name, got, want, 100*(got-want)/want)
		if dev > tol {
			t.Errorf("%s kernel count %v deviates more than %.0f%% from paper's %v", spec.Name, got, tol*100, want)
		}
	}
}

// TestFootprintsNearPaper checks that each workload's total footprint at
// the paper's batch size lands within 30% of the paper's M%. The SizeScale
// calibration deliberately trades some footprint accuracy for behavioural
// fidelity: per-kernel working sets stay at the scale the paper's §3
// characterisation reports, which matters more to every Fig. 11–18 dynamic
// than the absolute footprint (see EXPERIMENTS.md).
func TestFootprintsNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-batch model construction in -short mode")
	}
	for _, spec := range Catalog() {
		g := spec.Build(spec.PaperBatch)
		got := g.Footprint()
		want := spec.PaperFootprint()
		dev := (got.GiB() - want.GiB()) / want.GiB()
		t.Logf("%-12s footprint: got %8.1f GB, paper %8.1f GB (dev %+.1f%%)", spec.Name, got.GiB(), want.GiB(), 100*dev)
		if dev < -0.30 || dev > 0.30 {
			t.Errorf("%s footprint %v deviates more than 30%% from paper's %v (adjust SizeScale)", spec.Name, got, want)
		}
	}
}

// TestWorkingSetsFitUVM checks the §3 property that single-kernel working
// sets stay well below GPU memory for the paper-evaluated batch sizes, so
// UVM policies never have to stream a kernel.
func TestWorkingSetsFitUVM(t *testing.T) {
	if testing.Short() {
		t.Skip("full-batch model construction in -short mode")
	}
	for _, spec := range Catalog() {
		g := spec.Build(spec.PaperBatch)
		if ws := g.MaxWorkingSet(); ws > 36*units.GB {
			t.Errorf("%s max working set %v leaves no UVM headroom on a 40GB GPU", spec.Name, ws)
		}
	}
}

func TestSpecPaperFootprint(t *testing.T) {
	s := Spec{PaperMemPct: 100}
	if got := s.PaperFootprint(); got != 40*units.GB {
		t.Errorf("PaperFootprint(100%%) = %v, want 40GB", got)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("BERT"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("GPT5"); err == nil {
		t.Error("expected error for unknown model")
	}
	if len(Names()) != 5 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestBuildDefaultsToPaperBatch(t *testing.T) {
	spec, _ := ByName("BERT")
	g := spec.Build(0)
	if g.Batch != spec.PaperBatch {
		t.Errorf("batch = %d, want %d", g.Batch, spec.PaperBatch)
	}
}

func TestWeightsAreGlobalAndUsedTwice(t *testing.T) {
	g := TinyCNN(4)
	uses := g.UseIndices()
	var multi, total int
	for _, tensor := range g.Tensors {
		if tensor.Kind != dnn.Global {
			continue
		}
		total++
		if len(uses[tensor.ID]) == 0 {
			t.Errorf("global tensor %s never used", tensor.Name)
		}
		if len(uses[tensor.ID]) >= 2 {
			multi++
		}
	}
	// All weights are read in forward; all but the first layer's are also
	// read by their bwd_data kernel (the stem conv has no data gradient).
	if multi < total-2 {
		t.Errorf("only %d of %d global tensors used twice or more", multi, total)
	}
}

func TestSizeScaleScalesIntermediatesOnly(t *testing.T) {
	a := BERTBase(TransformerConfig{Batch: 64, SizeScale: 1})
	b := BERTBase(TransformerConfig{Batch: 64, SizeScale: 2})
	if a.GlobalBytes() != b.GlobalBytes() {
		t.Errorf("weights scaled: %v vs %v", a.GlobalBytes(), b.GlobalBytes())
	}
	// Weight-gradient tensors track (unscaled) weight sizes, so the ratio
	// sits slightly below 2 even when activations dominate.
	ai := a.Footprint() - a.GlobalBytes()
	bi := b.Footprint() - b.GlobalBytes()
	ratio := float64(bi) / float64(ai)
	if ratio < 1.85 || ratio > 2.01 {
		t.Errorf("intermediate scaling ratio = %v, want ~2", ratio)
	}
}

func TestFootprintGrowsWithBatch(t *testing.T) {
	small := TinyCNN(2).Footprint()
	big := TinyCNN(8).Footprint()
	if big <= small {
		t.Errorf("footprint did not grow with batch: %v vs %v", small, big)
	}
}

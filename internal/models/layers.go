package models

import (
	"fmt"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

// feature is a batched CNN feature map: the tape value plus its spatial
// shape (per-example channels × height × width).
type feature struct {
	v       *val
	C, H, W int
}

func (f feature) elemsPerExample() int64 { return int64(f.C) * int64(f.H) * int64(f.W) }

func (tp *tape) featureVal(name string, C, H, W int) feature {
	elems := int64(tp.batch) * int64(C) * int64(H) * int64(W)
	return feature{v: tp.activation(name, elems), C: C, H: H, W: W}
}

// inputImage declares the batched network input.
func (tp *tape) inputImage(C, H, W int) feature {
	elems := int64(tp.batch) * int64(C) * int64(H) * int64(W)
	return feature{v: tp.input("input", elems), C: C, H: H, W: W}
}

func convOut(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }

// conv2d emits a 2D convolution and its im2col workspaces. groups follows
// the grouped-convolution convention (ResNeXt/SENet); k is the square kernel
// size.
func (tp *tape) conv2d(name string, in feature, Cout, k, stride, pad, groups int) feature {
	return tp.conv2dRect(name, in, Cout, k, k, stride, pad, pad, groups)
}

// conv2dRect is conv2d with a rectangular kernel (Inception's 1×7 / 7×1
// factorised convolutions).
func (tp *tape) conv2dRect(name string, in feature, Cout, kh, kw, stride, padH, padW, groups int) feature {
	Hout := convOut(in.H, kh, stride, padH)
	Wout := convOut(in.W, kw, stride, padW)
	if Hout <= 0 || Wout <= 0 {
		panic(fmt.Sprintf("models: conv %s output collapsed (%dx%d)", name, Hout, Wout))
	}
	kk := int64(kh) * int64(kw)
	w := tp.global(name+".w", int64(Cout)*int64(in.C/groups)*kk)
	out := tp.featureVal(name+".out", Cout, Hout, Wout)
	flops := 2 * float64(tp.batch) * float64(Cout) * float64(Hout) * float64(Wout) *
		float64(in.C/groups) * float64(kk)
	var ws units.Bytes
	if kk > 1 {
		// im2col buffer: B × Cin × kh·kw × Hout × Wout elements.
		ws = units.Bytes(int64(tp.batch)*int64(in.C)*kk*int64(Hout)*int64(Wout)) * bytesPerElem
	}
	tp.apply(&op{
		name:    name,
		weights: []*dnn.Tensor{w},
		inputs:  []*val{in.v},
		output:  out.v,
		flops:   flops,
		wsFwd:   ws,
		wsBwd:   ws,
	})
	return out
}

// batchNorm emits a batch normalisation over the feature map. Scale and bias
// are folded into one global tensor of 2C elements.
func (tp *tape) batchNorm(name string, in feature) feature {
	w := tp.global(name+".gb", 2*int64(in.C))
	out := tp.featureVal(name+".out", in.C, in.H, in.W)
	elems := int64(tp.batch) * in.elemsPerExample()
	tp.apply(&op{
		name:      name,
		weights:   []*dnn.Tensor{w},
		inputs:    []*val{in.v},
		output:    out.v,
		flops:     4 * float64(elems),
		bwdReadsX: true,
	})
	return out
}

// relu emits an in-place ReLU (torchvision models use inplace=True): the
// kernel reads and writes the same buffer, so no new tensor is born.
func (tp *tape) relu(name string, in feature) feature {
	elems := int64(tp.batch) * in.elemsPerExample()
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in.v},
		output:    in.v,
		flops:     float64(elems),
		bwdReadsX: true,
	})
	return in
}

// pool emits a max or average pooling layer.
func (tp *tape) pool(name string, in feature, k, stride, pad int) feature {
	Hout := convOut(in.H, k, stride, pad)
	Wout := convOut(in.W, k, stride, pad)
	out := tp.featureVal(name+".out", in.C, Hout, Wout)
	elems := int64(tp.batch) * out.elemsPerExample()
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in.v},
		output:    out.v,
		flops:     float64(elems) * float64(k*k),
		bwdReadsX: true,
	})
	return out
}

// globalAvgPool reduces a feature map to a per-channel vector (B × C).
func (tp *tape) globalAvgPool(name string, in feature) *val {
	out := tp.activation(name+".out", int64(tp.batch)*int64(in.C))
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in.v},
		output:    out,
		flops:     float64(int64(tp.batch) * in.elemsPerExample()),
		bwdReadsX: true,
	})
	return out
}

// add emits an elementwise residual addition accumulated in place into a
// (torchvision's "out += identity").
func (tp *tape) add(name string, a, b feature) feature {
	elems := int64(tp.batch) * a.elemsPerExample()
	tp.apply(&op{
		name:   name,
		inputs: []*val{a.v, b.v},
		output: a.v,
		flops:  float64(elems),
	})
	return a
}

// concat emits a channel-wise concatenation (Inception branches).
func (tp *tape) concat(name string, fs ...feature) feature {
	C := 0
	for _, f := range fs {
		C += f.C
	}
	out := tp.featureVal(name+".out", C, fs[0].H, fs[0].W)
	ins := make([]*val, len(fs))
	for i, f := range fs {
		ins[i] = f.v
	}
	elems := int64(tp.batch) * out.elemsPerExample()
	tp.apply(&op{
		name:   name,
		inputs: ins,
		output: out.v,
		flops:  float64(elems),
	})
	return out
}

// channelScale multiplies a feature map in place by a per-channel vector
// (the SE block's excitation step).
func (tp *tape) channelScale(name string, in feature, scale *val) feature {
	elems := int64(tp.batch) * in.elemsPerExample()
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in.v, scale},
		output:    in.v,
		flops:     float64(elems),
		bwdReadsX: true,
	})
	return in
}

// linear emits a fully connected layer on a flat (B × inF) value.
func (tp *tape) linear(name string, in *val, inF, outF int) *val {
	return tp.linearRows(name, in, int64(tp.batch), inF, outF)
}

// linearRows emits a GEMM over an explicit row count (B·L rows for
// sequence models).
func (tp *tape) linearRows(name string, in *val, rows int64, inF, outF int) *val {
	w := tp.global(name+".w", int64(inF)*int64(outF)+int64(outF))
	out := tp.activation(name+".out", rows*int64(outF))
	tp.apply(&op{
		name:    name,
		weights: []*dnn.Tensor{w},
		inputs:  []*val{in},
		output:  out,
		flops:   2 * float64(rows) * float64(inF) * float64(outF),
	})
	return out
}

// reshape emits a copy kernel producing a value with a different element
// count (cls-token concat, flatten, slicing). Real frameworks launch real
// copy kernels for these, and the copies occupy real memory.
func (tp *tape) reshape(name string, in *val, outElems int64) *val {
	out := tp.activation(name+".out", outElems)
	tp.apply(&op{
		name:   name,
		inputs: []*val{in},
		output: out,
		flops:  float64(outElems),
	})
	return out
}

// withWeight emits an elementwise op that also reads a small global tensor
// (positional-embedding add, scale-by-parameter).
func (tp *tape) withWeight(name string, in *val, weightElems int64, flopsPerElem float64) *val {
	w := tp.global(name+".w", weightElems)
	out := tp.activation(name+".out", in.elems)
	tp.apply(&op{
		name:    name,
		weights: []*dnn.Tensor{w},
		inputs:  []*val{in},
		output:  out,
		flops:   flopsPerElem * float64(in.elems),
	})
	return out
}

// unary emits an elementwise op (gelu, sigmoid, dropout, softmax-style) on a
// flat value, producing an equal-size output.
func (tp *tape) unary(name string, in *val, flopsPerElem float64) *val {
	out := tp.activation(name+".out", in.elems)
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in},
		output:    out,
		flops:     flopsPerElem * float64(in.elems),
		bwdReadsX: true,
	})
	return out
}

// unaryInplace emits an elementwise op that modifies its input buffer
// (in-place dropout and activation functions).
func (tp *tape) unaryInplace(name string, in *val, flopsPerElem float64) *val {
	tp.apply(&op{
		name:      name,
		inputs:    []*val{in},
		output:    in,
		flops:     flopsPerElem * float64(in.elems),
		bwdReadsX: true,
	})
	return in
}

// addInto emits an elementwise addition accumulated into acc (residual
// connections).
func (tp *tape) addInto(name string, acc, other *val) *val {
	tp.apply(&op{
		name:   name,
		inputs: []*val{acc, other},
		output: acc,
		flops:  float64(acc.elems),
	})
	return acc
}

// binary emits an elementwise op over two same-shape flat values.
func (tp *tape) binary(name string, a, b *val) *val {
	out := tp.activation(name+".out", a.elems)
	tp.apply(&op{
		name:   name,
		inputs: []*val{a, b},
		output: out,
		flops:  float64(a.elems),
	})
	return out
}

// matmul emits a generic batched matrix multiply producing outElems elements
// with the given FLOPs (attention score/context products).
func (tp *tape) matmul(name string, a, b *val, outElems int64, flops float64) *val {
	out := tp.activation(name+".out", outElems)
	tp.apply(&op{
		name:      name,
		inputs:    []*val{a, b},
		output:    out,
		flops:     flops,
		bwdReadsX: true,
	})
	return out
}

// normalize emits a layernorm-style op with a small global weight.
func (tp *tape) normalize(name string, in *val, width int) *val {
	w := tp.global(name+".gb", 2*int64(width))
	out := tp.activation(name+".out", in.elems)
	tp.apply(&op{
		name:      name,
		weights:   []*dnn.Tensor{w},
		inputs:    []*val{in},
		output:    out,
		flops:     5 * float64(in.elems),
		bwdReadsX: true,
	})
	return out
}

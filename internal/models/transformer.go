package models

import (
	"fmt"

	"g10sim/internal/dnn"
)

// TransformerConfig parameterises the encoder-only transformers of Table 1.
type TransformerConfig struct {
	Batch     int
	SeqLen    int
	Hidden    int
	Layers    int
	Heads     int
	FFN       int
	Vocab     int // BERT only
	Classes   int
	SizeScale float64
}

// BERTBase builds one training iteration of BERT-Base (Devlin et al., 2018)
// fine-tuning on CoLA: 12 encoder layers, hidden 768, 12 heads, FFN 3072.
func BERTBase(cfg TransformerConfig) *dnn.Graph {
	applyBERTDefaults(&cfg)
	tp := newTape("BERT", cfg.Batch, cfg.SizeScale)

	bl := int64(cfg.Batch) * int64(cfg.SeqLen)
	// Token IDs: one int per position (modeled at element granularity).
	ids := tp.input("input_ids", bl)
	emb := tp.withWeight("emb.word", ids, int64(cfg.Vocab)*int64(cfg.Hidden), 1)
	emb = tp.withWeight("emb.pos", emb, int64(cfg.SeqLen)*int64(cfg.Hidden), 1)
	// The word-embedding lookup expands B·L ids to B·L·H activations.
	x := tp.reshape("emb.expand", emb, bl*int64(cfg.Hidden))
	x = tp.normalize("emb.ln", x, cfg.Hidden)
	x = tp.unary("emb.dropout", x, 2)

	for l := 0; l < cfg.Layers; l++ {
		x = encoderLayer(tp, fmt.Sprintf("layer%d", l), x, cfg)
	}

	// Pooler over the [CLS] token, then the CoLA classification head.
	cls := tp.reshape("pooler.cls", x, int64(cfg.Batch)*int64(cfg.Hidden))
	pooled := tp.linear("pooler.fc", cls, cfg.Hidden, cfg.Hidden)
	pooled = tp.unary("pooler.tanh", pooled, 4)
	logits := tp.linear("head.fc", pooled, cfg.Hidden, cfg.Classes)
	tp.unary("head.softmax", logits, 5)
	return tp.finish()
}

// ViTBase builds one training iteration of ViT-B/32 (Dosovitskiy et al.,
// 2021) on 224×224 ImageNet inputs: 7×7 = 49 patches plus a class token.
func ViTBase(cfg TransformerConfig) *dnn.Graph {
	applyViTDefaults(&cfg)
	tp := newTape("ViT", cfg.Batch, cfg.SizeScale)

	img := tp.inputImage(3, 224, 224)
	// Patch embedding: a 32×32/32 convolution to Hidden channels.
	patches := tp.conv2d("patch.conv", img, cfg.Hidden, 32, 32, 0, 1)
	tokens := int64(patches.H) * int64(patches.W)
	flat := tp.reshape("patch.flatten", patches.v, int64(cfg.Batch)*tokens*int64(cfg.Hidden))
	// Prepend the class token (SeqLen = tokens + 1).
	x := tp.reshape("cls.concat", flat, int64(cfg.Batch)*int64(cfg.SeqLen)*int64(cfg.Hidden))
	x = tp.withWeight("pos.add", x, int64(cfg.SeqLen)*int64(cfg.Hidden), 1)
	x = tp.unary("emb.dropout", x, 2)

	for l := 0; l < cfg.Layers; l++ {
		x = encoderLayer(tp, fmt.Sprintf("layer%d", l), x, cfg)
	}

	x = tp.normalize("head.ln", x, cfg.Hidden)
	cls := tp.reshape("head.cls", x, int64(cfg.Batch)*int64(cfg.Hidden))
	logits := tp.linear("head.fc", cls, cfg.Hidden, cfg.Classes)
	tp.unary("head.softmax", logits, 5)
	return tp.finish()
}

// encoderLayer emits one pre/post-LN transformer encoder block with
// multi-head self-attention and a GELU MLP, at the kernel granularity a
// framework trace shows: separate Q/K/V projections, permute copies,
// batched score and context matmuls, and dropout after attention and both
// residual branches.
func encoderLayer(tp *tape, name string, x *val, cfg TransformerConfig) *val {
	defer tp.enter(name)()
	B, L, H := int64(cfg.Batch), int64(cfg.SeqLen), int64(cfg.Hidden)
	rows := B * L

	q := tp.linearRows("attn.q", x, rows, cfg.Hidden, cfg.Hidden)
	k := tp.linearRows("attn.k", x, rows, cfg.Hidden, cfg.Hidden)
	v := tp.linearRows("attn.v", x, rows, cfg.Hidden, cfg.Hidden)
	qt := tp.unary("attn.q_permute", q, 1)
	kt := tp.unary("attn.k_permute", k, 1)
	vt := tp.unary("attn.v_permute", v, 1)

	scoreElems := B * int64(cfg.Heads) * L * L
	matmulFLOPs := 2 * float64(B) * float64(L) * float64(L) * float64(H)
	scores := tp.matmul("attn.scores", qt, kt, scoreElems, matmulFLOPs)
	probs := tp.unary("attn.softmax", scores, 5)
	probs = tp.unaryInplace("attn.dropout", probs, 2)
	ctx := tp.matmul("attn.context", probs, vt, rows*H, matmulFLOPs)
	ctxT := tp.unary("attn.ctx_permute", ctx, 1)

	proj := tp.linearRows("attn.proj", ctxT, rows, cfg.Hidden, cfg.Hidden)
	proj = tp.unaryInplace("attn.proj_dropout", proj, 2)
	res1 := tp.addInto("attn.residual", proj, x)
	ln1 := tp.normalize("attn.ln", res1, cfg.Hidden)

	fc1 := tp.linearRows("mlp.fc1", ln1, rows, cfg.Hidden, cfg.FFN)
	act := tp.unary("mlp.gelu", fc1, 8)
	fc2 := tp.linearRows("mlp.fc2", act, rows, cfg.FFN, cfg.Hidden)
	fc2 = tp.unaryInplace("mlp.dropout", fc2, 2)
	res2 := tp.addInto("mlp.residual", fc2, ln1)
	return tp.normalize("mlp.ln", res2, cfg.Hidden)
}

func applyBERTDefaults(cfg *TransformerConfig) {
	if cfg.SeqLen == 0 {
		cfg.SeqLen = 128
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 768
	}
	if cfg.Layers == 0 {
		cfg.Layers = 12
	}
	if cfg.Heads == 0 {
		cfg.Heads = 12
	}
	if cfg.FFN == 0 {
		cfg.FFN = 3072
	}
	if cfg.Vocab == 0 {
		cfg.Vocab = 30522
	}
	if cfg.Classes == 0 {
		cfg.Classes = 2 // CoLA is binary acceptability
	}
}

func applyViTDefaults(cfg *TransformerConfig) {
	if cfg.SeqLen == 0 {
		cfg.SeqLen = 50 // 49 patches + class token
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 768
	}
	if cfg.Layers == 0 {
		cfg.Layers = 12
	}
	if cfg.Heads == 0 {
		cfg.Heads = 12
	}
	if cfg.FFN == 0 {
		cfg.FFN = 3072
	}
	if cfg.Classes == 0 {
		cfg.Classes = 1000
	}
}

package models

import (
	"strings"
	"testing"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

// kernelsMatching counts kernels whose name contains sub.
func kernelsMatching(g *dnn.Graph, sub string) int {
	n := 0
	for _, k := range g.Kernels {
		if strings.Contains(k.Name, sub) {
			n++
		}
	}
	return n
}

func TestResNet152Structure(t *testing.T) {
	g := ResNet152(ResNetConfig{Batch: 2, SizeScale: 1})
	// 3+8+36+3 = 50 bottlenecks, three convs each, plus 4 downsample convs
	// and the stem conv: 155 forward conv kernels.
	if got := kernelsMatching(g, "conv") - kernelsMatching(g, "conv"+".bwd"); got <= 0 {
		t.Fatal("no conv kernels")
	}
	fwdConvs := 0
	for _, k := range g.Kernels {
		if k.Phase == dnn.Forward && strings.Contains(k.Name, "conv") && !strings.Contains(k.Name, "bwd") {
			fwdConvs++
		}
	}
	if fwdConvs != 155 {
		t.Errorf("forward conv kernels = %d, want 155 (50x3 + 4 downsample + stem)", fwdConvs)
	}
	if got := kernelsMatching(g, "s3.b35"); got == 0 {
		t.Error("stage 3 block 35 missing (36-block stage)")
	}
	if got := kernelsMatching(g, "se."); got != 0 {
		t.Errorf("ResNet152 has %d SE kernels; only SENet should", got)
	}
}

func TestSENet154Structure(t *testing.T) {
	g := SENet154(ResNetConfig{Batch: 2, SizeScale: 1})
	// Every one of the 50 blocks carries an SE sub-block.
	var seScale int
	for _, k := range g.Kernels {
		if k.Phase == dnn.Forward && strings.Contains(k.Name, "se.scale") {
			seScale++
		}
	}
	if seScale != 50 {
		t.Errorf("SE scale kernels = %d, want 50", seScale)
	}
	// SENet's stem has three convolutions.
	stemConvs := 0
	for _, k := range g.Kernels {
		if k.Phase == dnn.Forward && strings.HasPrefix(k.Name, "stem.conv") && !strings.Contains(k.Name, "bwd") {
			stemConvs++
		}
	}
	if stemConvs != 3 {
		t.Errorf("stem convs = %d, want 3", stemConvs)
	}
}

func TestInceptionv3Structure(t *testing.T) {
	g := Inceptionv3(InceptionConfig{Batch: 2, SizeScale: 1})
	// 3 A blocks, 1 B, 4 C, 1 D, 2 E, one aux head.
	for _, want := range []struct {
		sub string
		n   int
	}{
		{"mixedA0.", 1}, {"mixedA2.", 1}, {"mixedB.", 1},
		{"mixedC3.", 1}, {"mixedD.", 1}, {"mixedE1.", 1}, {"aux.", 1},
	} {
		if kernelsMatching(g, want.sub) == 0 {
			t.Errorf("missing %s kernels", want.sub)
		}
	}
	// The factorised 1x7/7x1 convs exist in the C blocks.
	if kernelsMatching(g, "b7x7dbl.5") == 0 {
		t.Error("factorised 7x7 chain missing")
	}
	// Both heads feed the loss (aux classifier is trained): the combine
	// op appears once forward and once backward.
	if kernelsMatching(g, "loss_combine") == 0 {
		t.Error("aux head not combined into the loss")
	}
}

func TestTransformerLayerCounts(t *testing.T) {
	g := BERTBase(TransformerConfig{Batch: 2, SizeScale: 1})
	for _, sub := range []string{"layer0.", "layer11."} {
		if kernelsMatching(g, sub) == 0 {
			t.Errorf("missing %s kernels", sub)
		}
	}
	if kernelsMatching(g, "layer12.") != 0 {
		t.Error("BERT-Base has more than 12 layers")
	}
	// Attention pipeline present per layer.
	for _, sub := range []string{"attn.q", "attn.scores", "attn.softmax", "attn.context", "mlp.fc1", "mlp.gelu"} {
		if n := kernelsMatching(g, "layer3."+sub); n == 0 {
			t.Errorf("layer3 missing %s", sub)
		}
	}
}

func TestViTPatchesAndClassToken(t *testing.T) {
	g := ViTBase(TransformerConfig{Batch: 2, SizeScale: 1})
	if kernelsMatching(g, "patch.conv") == 0 {
		t.Error("patch embedding conv missing")
	}
	if kernelsMatching(g, "cls.concat") == 0 {
		t.Error("class token concat missing")
	}
	// ViT-B/32 on 224x224: 49 patches + cls = seq 50. The per-layer score
	// tensor must be B*heads*50*50 elements.
	for _, tensor := range g.Tensors {
		if strings.Contains(tensor.Name, "layer0.attn.scores.out") {
			want := units.Bytes(2*12*50*50) * 4
			if tensor.Size != want {
				t.Errorf("scores tensor = %v, want %v", tensor.Size, want)
			}
			return
		}
	}
	t.Error("scores tensor not found")
}

func TestConvDimensionMath(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, want int
	}{
		{224, 7, 2, 3, 112},
		{112, 3, 2, 1, 56},
		{56, 1, 1, 0, 56},
		{299, 3, 2, 0, 149},
		{147, 3, 1, 1, 147},
	}
	for _, c := range cases {
		if got := convOut(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("convOut(%d,k%d,s%d,p%d) = %d, want %d", c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestWorkspaceCap(t *testing.T) {
	// At huge batch, conv workspaces must stay at the 4GB cap (cuDNN
	// workspace-limited algorithm selection; Figure 9's 4.1GB example).
	g := ResNet152(ResNetConfig{Batch: 1280, SizeScale: 1.243})
	var maxWS units.Bytes
	for _, tensor := range g.Tensors {
		if tensor.Kind == dnn.Workspace && tensor.Size > maxWS {
			maxWS = tensor.Size
		}
	}
	if maxWS > 4*units.GB {
		t.Errorf("workspace %v exceeds the 4GB cap", maxWS)
	}
	if maxWS < 2*units.GB {
		t.Errorf("largest workspace %v suspiciously small at batch 1280", maxWS)
	}
}

func TestInPlaceOpsShareBuffers(t *testing.T) {
	g := TinyCNN(4)
	// Find a relu kernel: its input and output must be the same tensor.
	for _, k := range g.Kernels {
		if k.Phase != dnn.Forward || !strings.Contains(k.Name, "relu") {
			continue
		}
		if len(k.Inputs) != 1 || len(k.Outputs) != 1 || k.Inputs[0] != k.Outputs[0] {
			t.Fatalf("relu kernel %s not in-place: in=%v out=%v", k.Name, k.Inputs, k.Outputs)
		}
		return
	}
	t.Fatal("no relu kernel found")
}

func TestFLOPsScaleWithBatch(t *testing.T) {
	f2 := ResNet152(ResNetConfig{Batch: 2, SizeScale: 1}).TotalFLOPs()
	f8 := ResNet152(ResNetConfig{Batch: 8, SizeScale: 1}).TotalFLOPs()
	ratio := f8 / f2
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("FLOPs batch scaling = %.2f, want ~4", ratio)
	}
}

func TestGroupedConvReducesFLOPsNotWorkspace(t *testing.T) {
	tpA := newTape("a", 2, 1)
	in := tpA.inputImage(64, 32, 32)
	dense := tpA.conv2d("c", in, 64, 3, 1, 1, 1)
	_ = dense

	tpB := newTape("b", 2, 1)
	in2 := tpB.inputImage(64, 32, 32)
	grouped := tpB.conv2d("c", in2, 64, 3, 1, 1, 8)
	_ = grouped

	var denseFLOPs, groupFLOPs float64
	for _, k := range tpA.b.MustBuild().Kernels {
		denseFLOPs += k.FLOPs
	}
	for _, k := range tpB.b.MustBuild().Kernels {
		groupFLOPs += k.FLOPs
	}
	if ratio := denseFLOPs / groupFLOPs; ratio < 7.9 || ratio > 8.1 {
		t.Errorf("grouped conv FLOPs ratio = %.2f, want ~8", ratio)
	}
}

package models

import (
	"fmt"
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

// Spec describes one workload from Table 1 of the paper, including the two
// calibration constants that substitute for the authors' real A100 traces
// (see DESIGN.md §1):
//
//   - SizeScale multiplies intermediate/workspace tensor sizes so the
//     model's total footprint at the paper's batch size matches the paper's
//     reported M% of GPU memory (Fig. 11 captions).
//   - TimeScale multiplies roofline kernel durations so the Ideal iteration
//     time matches the paper's Ideal throughput (Fig. 15).
type Spec struct {
	Name         string
	PaperKernels int     // Table 1 kernel count
	PaperBatch   int     // batch size used in Fig. 11
	PaperMemPct  float64 // Fig. 11 caption: footprint / 40GB GPU memory ×100
	SizeScale    float64
	TimeScale    float64
	// PaperIdealRate is the Ideal throughput (examples/sec) read from
	// Fig. 15 at PaperBatch, the TimeScale calibration target.
	PaperIdealRate float64
	// BatchSweep lists the batch sizes of Fig. 15.
	BatchSweep []int

	build func(batch int, sizeScale float64) *dnn.Graph
}

// Build constructs the training-iteration graph at the given batch size.
func (s Spec) Build(batch int) *dnn.Graph {
	if batch <= 0 {
		batch = s.PaperBatch
	}
	return s.build(batch, s.SizeScale)
}

// PaperFootprint reports the absolute footprint the paper's M% implies
// against the 40 GB A100.
func (s Spec) PaperFootprint() units.Bytes {
	return units.Bytes(s.PaperMemPct / 100 * float64(40*units.GB))
}

// catalog lists the five evaluated workloads. SizeScale/TimeScale values are
// the calibration results recorded in EXPERIMENTS.md.
var catalog = []Spec{
	{
		Name:           "BERT",
		PaperKernels:   1368,
		PaperBatch:     256,
		PaperMemPct:    370.10,
		PaperIdealRate: 55,
		BatchSweep:     []int{128, 256, 512, 768, 1024},
		SizeScale:      2.0,
		TimeScale:      2.0707,
		build: func(batch int, ss float64) *dnn.Graph {
			return BERTBase(TransformerConfig{Batch: batch, SizeScale: ss})
		},
	},
	{
		Name:           "ViT",
		PaperKernels:   1435,
		PaperBatch:     1280,
		PaperMemPct:    461.11,
		PaperIdealRate: 380,
		BatchSweep:     []int{256, 512, 768, 1024, 1280},
		SizeScale:      1.5,
		TimeScale:      0.7985,
		build: func(batch int, ss float64) *dnn.Graph {
			return ViTBase(TransformerConfig{Batch: batch, SizeScale: ss})
		},
	},
	{
		Name:           "Inceptionv3",
		PaperKernels:   740,
		PaperBatch:     1536,
		PaperMemPct:    1969.46,
		PaperIdealRate: 33,
		BatchSweep:     []int{512, 768, 1024, 1280, 1536, 1792},
		SizeScale:      0.90,
		TimeScale:      6.7373,
		build: func(batch int, ss float64) *dnn.Graph {
			return Inceptionv3(InceptionConfig{Batch: batch, SizeScale: ss})
		},
	},
	{
		Name:           "ResNet152",
		PaperKernels:   1298,
		PaperBatch:     1280,
		PaperMemPct:    2715.45,
		PaperIdealRate: 11.5,
		BatchSweep:     []int{256, 512, 768, 1024, 1280},
		SizeScale:      1.243,
		TimeScale:      8.9821,
		build: func(batch int, ss float64) *dnn.Graph {
			return ResNet152(ResNetConfig{Batch: batch, SizeScale: ss})
		},
	},
	{
		Name:           "SENet154",
		PaperKernels:   2318,
		PaperBatch:     1024,
		PaperMemPct:    4277.81,
		PaperIdealRate: 7.5,
		BatchSweep:     []int{256, 512, 768, 1024},
		SizeScale:      1.2777,
		TimeScale:      10.5352,
		build: func(batch int, ss float64) *dnn.Graph {
			return SENet154(ResNetConfig{Batch: batch, SizeScale: ss})
		},
	},
}

// Catalog returns the evaluated workloads in the paper's order.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// Names lists the catalog model names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for _, s := range catalog {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// ByName finds a catalog entry.
func ByName(name string) (Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
}

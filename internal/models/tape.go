// Package models re-implements the paper's evaluated DNN workloads (Table 1:
// BERT, ViT, Inceptionv3, ResNet152, SENet154) as dataflow graphs with
// realistic tensor sizes and kernel FLOP counts, parameterised by batch size.
//
// A small autograd "tape" records forward operators and then emits the
// backward pass in reverse order, mirroring how a deep learning framework's
// compiler would lower one training iteration: each weighted op contributes a
// data-gradient kernel and a weight-gradient kernel; elementwise ops
// contribute one backward kernel; conv kernels carry im2col workspace tensors
// in both directions (the paper's Figure 9 shows exactly such a multi-GB
// workspace tensor on a conv2d kernel).
package models

import (
	"fmt"

	"g10sim/internal/dnn"
	"g10sim/internal/units"
)

const bytesPerElem = 4 // FP32, per the paper's §7.1

// val is an activation value on the tape: the forward tensor plus a lazily
// created gradient tensor used during backward emission.
type val struct {
	t         *dnn.Tensor
	grad      *dnn.Tensor
	needsGrad bool
	elems     int64
}

// op records one forward operator for backward emission.
type op struct {
	name      string
	weights   []*dnn.Tensor // global tensors read by forward and bwd-data
	wgrads    []*dnn.Tensor // gradient tensors written by bwd-weight
	inputs    []*val
	output    *val
	flops     float64     // forward FLOPs (bwd kernels approximated from it)
	wsFwd     units.Bytes // forward workspace size (0 = none)
	wsBwd     units.Bytes // backward workspace size (0 = none)
	bwdReadsX bool        // bwd-data also reads the forward inputs (relu, pool, ...)
}

// tape builds a training-iteration graph.
type tape struct {
	b         *dnn.Builder
	batch     int
	ops       []*op
	sizeScale float64 // calibration multiplier on intermediate/workspace sizes
	scope     string
	nameSeq   map[string]int
}

func newTape(model string, batch int, sizeScale float64) *tape {
	if sizeScale <= 0 {
		sizeScale = 1
	}
	return &tape{
		b:         dnn.NewBuilder(model, batch),
		batch:     batch,
		sizeScale: sizeScale,
		nameSeq:   make(map[string]int),
	}
}

// enter pushes a naming scope ("layer3.block2"); returns a restore func.
func (tp *tape) enter(scope string) func() {
	old := tp.scope
	if old == "" {
		tp.scope = scope
	} else {
		tp.scope = old + "." + scope
	}
	return func() { tp.scope = old }
}

func (tp *tape) name(base string) string {
	full := base
	if tp.scope != "" {
		full = tp.scope + "." + base
	}
	n := tp.nameSeq[full]
	tp.nameSeq[full] = n + 1
	if n == 0 {
		return full
	}
	return fmt.Sprintf("%s#%d", full, n)
}

// maxWorkspace caps per-kernel scratch buffers, modeling cuDNN's
// workspace-limited algorithm selection. The paper's largest observed
// kernel allocation is the 4.1GB conv workspace of Figure 9, and its
// largest kernel working set is 5.7GB (§3).
const maxWorkspace = 4 * units.GB

// scaled converts an element count to calibrated bytes.
func (tp *tape) scaled(elems int64) units.Bytes {
	b := units.Bytes(float64(elems) * bytesPerElem * tp.sizeScale)
	if b < 1 {
		b = 1
	}
	return b
}

// input declares the network input (needs no gradient).
func (tp *tape) input(name string, elems int64) *val {
	t := tp.b.Tensor(tp.name(name), dnn.Intermediate, tp.scaled(elems))
	return &val{t: t, needsGrad: false, elems: elems}
}

// activation declares an intermediate value produced by an op.
func (tp *tape) activation(name string, elems int64) *val {
	t := tp.b.Tensor(tp.name(name), dnn.Intermediate, tp.scaled(elems))
	return &val{t: t, needsGrad: true, elems: elems}
}

// global declares a weight tensor (not subject to size calibration: weights
// must stay realistic because FlashNeuron never swaps them).
func (tp *tape) global(name string, elems int64) *dnn.Tensor {
	b := units.Bytes(elems * bytesPerElem)
	if b < 1 {
		b = 1
	}
	return tp.b.Tensor(tp.name(name), dnn.Global, b)
}

// apply emits the forward kernel for an op and records it for backward.
// It returns the op's output value.
func (tp *tape) apply(o *op) *val {
	ins := make([]*dnn.Tensor, 0, len(o.inputs)+len(o.weights)+1)
	for _, w := range o.weights {
		ins = append(ins, w)
	}
	for _, in := range o.inputs {
		ins = append(ins, in.t)
	}
	if o.wsFwd > 0 {
		ws := tp.b.Tensor(tp.name(o.name+".ws"), dnn.Workspace, clampWS(scaleBytes(o.wsFwd, tp.sizeScale)))
		ins = append(ins, ws)
	}
	tp.b.Kernel(tp.name(o.name), dnn.Forward, o.flops, ins, []*dnn.Tensor{o.output.t})
	tp.ops = append(tp.ops, o)
	return o.output
}

func scaleBytes(b units.Bytes, scale float64) units.Bytes {
	s := units.Bytes(float64(b) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

func clampWS(b units.Bytes) units.Bytes {
	if b > maxWorkspace {
		return maxWorkspace
	}
	return b
}

func (tp *tape) gradOf(v *val, hint string) *dnn.Tensor {
	if v.grad == nil {
		v.grad = tp.b.Tensor(tp.name("d"+hint), dnn.Intermediate, v.t.Size)
	}
	return v.grad
}

// backward emits the backward pass: ops in reverse, a data-gradient kernel
// per op (skipped when no input needs a gradient) and a weight-gradient
// kernel per weighted op. The final op's output gradient is seeded by a
// dedicated loss kernel.
func (tp *tape) backward() {
	if len(tp.ops) == 0 {
		return
	}
	// Seed the loss gradient on the last op's output.
	last := tp.ops[len(tp.ops)-1]
	seed := tp.gradOf(last.output, last.output.t.Name)
	tp.b.Kernel(tp.name("loss_grad"), dnn.Backward,
		float64(last.output.elems), []*dnn.Tensor{last.output.t}, []*dnn.Tensor{seed})

	for i := len(tp.ops) - 1; i >= 0; i-- {
		o := tp.ops[i]
		outGrad := o.output.grad
		if outGrad == nil {
			// Output never consumed downstream (dangling head, e.g. an
			// auxiliary output we chose not to train on): skip.
			continue
		}

		// Data-gradient kernel: d(out) -> d(in_0..k).
		var gradOuts []*dnn.Tensor
		for _, in := range o.inputs {
			if in.needsGrad {
				gradOuts = append(gradOuts, tp.gradOf(in, in.t.Name))
			}
		}
		if len(gradOuts) > 0 {
			ins := []*dnn.Tensor{outGrad}
			ins = append(ins, o.weights...)
			if o.bwdReadsX {
				for _, in := range o.inputs {
					ins = append(ins, in.t)
				}
			}
			if o.wsBwd > 0 {
				ws := tp.b.Tensor(tp.name(o.name+".bwd.ws"), dnn.Workspace, clampWS(scaleBytes(o.wsBwd, tp.sizeScale)))
				ins = append(ins, ws)
			}
			tp.b.Kernel(tp.name(o.name+".bwd_data"), dnn.Backward, o.flops, ins, gradOuts)
		}

		// Weight-gradient kernel: d(out) x in -> dW.
		if len(o.weights) > 0 {
			if o.wgrads == nil {
				for _, w := range o.weights {
					dw := tp.b.Tensor(tp.name("d"+w.Name), dnn.Intermediate, w.Size)
					o.wgrads = append(o.wgrads, dw)
				}
			}
			ins := []*dnn.Tensor{outGrad}
			for _, in := range o.inputs {
				ins = append(ins, in.t)
			}
			if o.wsBwd > 0 {
				ws := tp.b.Tensor(tp.name(o.name+".bwd_w.ws"), dnn.Workspace, clampWS(scaleBytes(o.wsBwd, tp.sizeScale)))
				ins = append(ins, ws)
			}
			tp.b.Kernel(tp.name(o.name+".bwd_w"), dnn.Backward, o.flops, ins, o.wgrads)
		}
	}
}

// finish emits the backward pass and builds the validated graph.
func (tp *tape) finish() *dnn.Graph {
	tp.backward()
	return tp.b.MustBuild()
}

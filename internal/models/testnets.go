package models

import "g10sim/internal/dnn"

// TinyMLP builds a small 3-layer perceptron used by unit tests across the
// repository: large enough to have interesting inactive periods, small
// enough to inspect by hand.
func TinyMLP(batch int) *dnn.Graph {
	tp := newTape("TinyMLP", batch, 1)
	x := tp.input("input", int64(batch)*1024)
	h := tp.linear("fc1", x, 1024, 4096)
	h = tp.unary("relu1", h, 1)
	h = tp.linear("fc2", h, 4096, 4096)
	h = tp.unary("relu2", h, 1)
	h = tp.linear("fc3", h, 4096, 10)
	tp.unary("softmax", h, 5)
	return tp.finish()
}

// TinyCNN builds a small residual CNN (stem + 2 bottlenecks + head) that
// exercises convolutions, workspaces, branches, and joins.
func TinyCNN(batch int) *dnn.Graph {
	tp := newTape("TinyCNN", batch, 1)
	x := tp.inputImage(3, 32, 32)
	x = tp.conv2d("stem.conv", x, 16, 3, 1, 1, 1)
	x = tp.batchNorm("stem.bn", x)
	x = tp.relu("stem.relu", x)
	x = bottleneck(tp, "b0", x, 16, 64, 1, 1, nil)
	x = bottleneck(tp, "b1", x, 32, 128, 2, 1, nil)
	pooled := tp.globalAvgPool("head.gap", x)
	logits := tp.linear("head.fc", pooled, x.C, 10)
	tp.unary("head.softmax", logits, 5)
	return tp.finish()
}

// TinyTransformer builds a 2-layer encoder for scheduler unit tests.
func TinyTransformer(batch int) *dnn.Graph {
	cfg := TransformerConfig{
		Batch: batch, SeqLen: 16, Hidden: 64, Layers: 2, Heads: 4,
		FFN: 256, Vocab: 1000, Classes: 2, SizeScale: 1,
	}
	return BERTBase(cfg)
}

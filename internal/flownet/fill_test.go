package flownet

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"g10sim/internal/units"
)

// TestMain lets CI run the whole flownet suite under the reference fill
// (FLOWNET_FORCE_REFERENCE_FILL=1): every engine-level test then exercises
// the retained scan loop instead of the heap fill, so a regression in
// either side of the differential pair is caught.
func TestMain(m *testing.M) {
	if os.Getenv("FLOWNET_FORCE_REFERENCE_FILL") == "1" {
		ForceReferenceFillForTest(true)
	}
	os.Exit(m.Run())
}

// TestHeapFillMatchesReference: the heap-driven fill (and, on top of it,
// the frontier refill) must be bit-identical to the reference per-round
// scan loop on randomized cluster-shaped traffic — capacity changes,
// delayed arrivals, completions and all.
func TestHeapFillMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			driveDifferential(t, seed, func(ref, dut *Network) {
				ref.refFill = true
			})
		})
	}
}

// TestFrontierRefillMatchesReference lowers the tracing threshold so the
// small differential topology actually records fill traces and serves
// recomputes from frontier refills, then pins bit-identity against the
// reference fill. The positive-reuse assertion guards against the refill
// path silently never firing (in which case this test would only re-prove
// the heap fill).
func TestFrontierRefillMatchesReference(t *testing.T) {
	if forceReferenceFill.Load() {
		t.Skip("reference fill forced; no frontier to exercise")
	}
	old := frontierMinFlows
	frontierMinFlows = 4
	defer func() { frontierMinFlows = old }()
	reuses := int64(0)
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var refNet, dutNet *Network
			driveDifferential(t, seed, func(ref, dut *Network) {
				ref.refFill = true
				refNet, dutNet = ref, dut
			})
			reuses += dutNet.FrontierReuses()
			if refNet.FrontierReuses() != 0 {
				t.Fatalf("reference network reported %d frontier reuses, want 0", refNet.FrontierReuses())
			}
		})
	}
	if reuses == 0 {
		t.Fatal("no recompute was served by a frontier refill; the differential exercised nothing")
	}
	t.Logf("frontier reuses across seeds: %d", reuses)
}

// giantDifferential drives a one-giant-component workload — every flow
// crosses one of two shared channels, so all tenants couple — with
// mid-run arrivals, successive completion churn, and occasional capacity
// changes, comparing a heap+frontier network against the reference fill
// after every step.
func giantDifferential(t *testing.T, seed int64, tenants, steps int, mutate func(ref, dut *Network)) (*Network, *Network) {
	t.Helper()
	ref, dut := New(), New()
	build := func(n *Network) (pcie, shared []*Resource) {
		shared = append(shared, n.AddResource("chanA", units.GBps(4)), n.AddResource("chanB", units.GBps(4)))
		for i := 0; i < tenants; i++ {
			pcie = append(pcie, n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(16)))
		}
		return pcie, shared
	}
	refP, refS := build(ref)
	dutP, dutS := build(dut)
	ref.refFill = true
	mutate(ref, dut)

	rng := rand.New(rand.NewSource(seed))
	var refFlows, dutFlows []*Flow
	for step := 0; step < steps; step++ {
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // start a 2-hop flow through a shared channel
			ti, si := rng.Intn(tenants), rng.Intn(2)
			size := units.Bytes(1+rng.Intn(32)) * units.MB
			at := ref.Now() + units.Time(units.Duration(rng.Intn(2))*units.Millisecond)
			label := fmt.Sprintf("f%d", step)
			refFlows = append(refFlows, ref.StartAt(label, size, at, nil, refP[ti], refS[si]))
			dutFlows = append(dutFlows, dut.StartAt(label, size, at, nil, dutP[ti], dutS[si]))
		case 4: // rare capacity change (must force a full refill, correctly)
			if rng.Intn(4) == 0 {
				si := rng.Intn(2)
				bw := units.GBps(2 + float64(rng.Intn(6)))
				ref.SetCapacity(refS[si], bw)
				dut.SetCapacity(dutS[si], bw)
			}
		default:
			d := units.Duration(1+rng.Intn(1500)) * units.Microsecond
			to := ref.Now() + units.Time(d)
			if e := ref.NextEvent(); rng.Intn(2) == 0 && e < units.Forever {
				to = e
			}
			rDone := ref.AdvanceTo(to)
			dDone := dut.AdvanceTo(to)
			if len(rDone) != len(dDone) {
				t.Fatalf("step %d: %d completions (ref) vs %d (dut)", step, len(rDone), len(dDone))
			}
		}
		if rn, dn := ref.NextEvent(), dut.NextEvent(); rn != dn {
			t.Fatalf("step %d: NextEvent %v (ref) vs %v (dut)", step, rn, dn)
		}
		for i := range refFlows {
			if rr, dr := refFlows[i].Rate(), dutFlows[i].Rate(); rr != dr {
				t.Fatalf("step %d: flow %s rate %v (ref) vs %v (dut)", step, refFlows[i].Label, rr, dr)
			}
			if refFlows[i].Remaining() != dutFlows[i].Remaining() {
				t.Fatalf("step %d: flow %s remaining diverged", step, refFlows[i].Label)
			}
		}
	}
	return ref, dut
}

// TestFrontierGiantComponent is the regime the tentpole targets: one giant
// coupling component with steady attach/detach churn. The frontier must
// serve a healthy share of the recomputes (every delta lands inside the
// traced component) and stay bit-identical to the reference fill.
func TestFrontierGiantComponent(t *testing.T) {
	if forceReferenceFill.Load() {
		t.Skip("reference fill forced; no frontier to exercise")
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, dut := giantDifferential(t, seed, 48, 500, func(ref, dut *Network) {})
			if dut.FrontierReuses() == 0 {
				t.Fatal("giant-component churn produced no frontier reuses")
			}
			t.Logf("recomputes=%d frontier reuses=%d rounds=%d resScans=%d",
				dut.Recomputes(), dut.FrontierReuses(), dut.FillRounds(), dut.FillResScans())
		})
	}
}

// TestFrontierGiantComponentParallel re-runs the giant-component
// differential with a worker budget, as the sharded cluster driver sets
// one: the refill itself is single-component (nothing to parallelize), but
// trace recording and invalidation must stay correct around concurrent
// component fills.
func TestFrontierGiantComponentParallel(t *testing.T) {
	if forceReferenceFill.Load() {
		t.Skip("reference fill forced; no frontier to exercise")
	}
	old := parallelFillMinFlows
	parallelFillMinFlows = 2
	defer func() { parallelFillMinFlows = old }()
	for seed := int64(5); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			giantDifferential(t, seed, 32, 400, func(ref, dut *Network) {
				dut.SetWorkers(3)
			})
		})
	}
}

// TestSucceedAfterMidWindowRecompute pins the corner where an in-window
// succession's predecessor no longer has a pending detach record: the
// delivery callback starts a new flow and then queries NextEvent, which
// flushes rates mid-window — the recompute consumes every delta record,
// including the detach of the just-completed train flow — and only then
// calls Succeed. The succession is no longer trace-transparent (the trace
// was re-derived without the predecessor), so the successor must re-enter
// the delta as an attach; a regression here leaves it invisible to every
// later frontier reconstruction, driving resource counts negative and the
// allocation away from max-min. The differential against the reference
// fill (which records no trace) must stay bit-identical through and past
// the corner.
func TestSucceedAfterMidWindowRecompute(t *testing.T) {
	if forceReferenceFill.Load() {
		t.Skip("reference fill forced; no frontier to exercise")
	}
	const tenants = 40 // one giant component above frontierMinFlows: trace records
	seg := units.Bytes(8 * units.MB)
	run := func(refFill bool) (log []string, rates []units.Bandwidth, served []float64, n *Network) {
		n = New()
		n.refFill = refFill
		ch := n.AddResource("chan", units.GBps(4))
		var pcie []*Resource
		for i := 0; i < tenants; i++ {
			pcie = append(pcie, n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(16)))
		}
		var bg []*Flow
		for i := 0; i < tenants; i++ {
			bg = append(bg, n.Start(fmt.Sprintf("bg%d", i), units.Bytes(8+i)*units.MB, nil, pcie[i], ch))
		}
		cur := n.Start("train", seg, nil, pcie[0], ch)
		boundaries, noise := 0, 0
		n.AdvanceEventwise(2*units.Second, func(done []*Flow) {
			for _, f := range done {
				// Every completion time in the run is part of the contract:
				// any allocation divergence surfaces at the first affected
				// completion, pinpointing where the legs split.
				log = append(log, fmt.Sprintf("%v %s", f.CompletedAt, f.Label))
				if f != cur {
					continue
				}
				boundaries++
				if boundaries >= 3 && boundaries <= 6 {
					// The corner, repeatedly: dirty the rates from inside the
					// window, force a mid-window recompute, then succeed the
					// train — its detach record is already consumed, so the
					// succession must re-enter the delta as an attach.
					noise++
					n.Start(fmt.Sprintf("noise%d", noise), 2*units.MB, nil, pcie[noise], ch)
					_ = n.NextEvent()
					cur = n.Succeed(f, seg)
				} else if boundaries < 10 {
					cur = n.Succeed(f, seg)
				}
			}
		})
		if boundaries < 10 {
			t.Fatalf("train reached only %d boundaries, want 10", boundaries)
		}
		for _, f := range bg {
			rates = append(rates, f.Rate())
		}
		rates = append(rates, cur.Rate())
		served = append(served, ch.BytesServed())
		for _, r := range pcie {
			served = append(served, r.BytesServed())
		}
		return
	}
	refL, refR, refS, _ := run(true)
	dutL, dutR, dutS, dut := run(false)
	if len(refL) != len(dutL) {
		t.Fatalf("completion count: reference %d, dut %d", len(refL), len(dutL))
	}
	for i := range refL {
		if refL[i] != dutL[i] {
			t.Fatalf("completion %d: %q (dut) vs %q (reference)", i, dutL[i], refL[i])
		}
	}
	for i := range refR {
		if refR[i] != dutR[i] {
			t.Errorf("flow %d rate %v (dut) vs %v (reference)", i, dutR[i], refR[i])
		}
	}
	for i := range refS {
		// Per-resource byte counters are integrated from aggregate rates at
		// fold points, which differ between the fill paths — exact only up
		// to float reassociation (see Resource.BytesServed); the per-flow
		// observables above are the bit-exact contract.
		if d := math.Abs(refS[i] - dutS[i]); d > 1e-9*math.Max(1, refS[i]) {
			t.Errorf("resource %d served %v bytes (dut) vs %v (reference)", i, dutS[i], refS[i])
		}
	}
	if dut.FrontierReuses() == 0 {
		t.Fatal("no frontier reuse after the corner; the scenario exercised nothing")
	}
}

// TestFillCounters pins the perf mechanisms themselves, not just the
// result. On churn the frontier must skip prefix levels (strictly fewer
// filling rounds than the reference); on a deep fill — per-tenant links
// all distinct bottlenecks, so filling runs one round per flow — the heap
// must examine far fewer resources than the reference's per-round full
// scan. (On shallow fills the two scan counts are comparable: one round
// freezing most flows touches most resources either way; the heap's win
// there is the adjacency-based candidate collection, measured by time in
// BenchmarkMaxMinFill.)
func TestFillCounters(t *testing.T) {
	if forceReferenceFill.Load() {
		t.Skip("reference fill forced")
	}
	ref, dut := giantDifferential(t, 9, 48, 500, func(ref, dut *Network) {})
	if ref.FrontierReuses() != 0 {
		t.Errorf("reference network reports %d frontier reuses, want 0", ref.FrontierReuses())
	}
	if ref.FillRounds() == 0 || dut.FillRounds() == 0 {
		t.Fatalf("fill rounds not counted: ref=%d dut=%d", ref.FillRounds(), dut.FillRounds())
	}
	if dut.FillRounds() >= ref.FillRounds() {
		// Frontier refills skip whole prefix levels, so the heap engine must
		// run strictly fewer filling rounds overall.
		t.Errorf("heap engine ran %d rounds, reference %d — frontier skipped nothing", dut.FillRounds(), ref.FillRounds())
	}
	t.Logf("churn: rounds ref=%d dut=%d; resScans ref=%d dut=%d",
		ref.FillRounds(), dut.FillRounds(), ref.FillResScans(), dut.FillResScans())

	// Deep fill: every tenant link is its own bottleneck level.
	deep := func(refFill bool) *Network {
		n := New()
		ch := n.AddResource("chan", units.GBps(1000))
		n.refFill = refFill
		for i := 0; i < 64; i++ {
			p := n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(float64(i+1)/1000))
			n.Start(fmt.Sprintf("f%d", i), 64*units.MB, nil, p, ch)
		}
		n.NextEvent()
		return n
	}
	dr, dd := deep(true), deep(false)
	if dd.FillResScans()*4 >= dr.FillResScans() {
		t.Errorf("deep fill: heap examined %d resources vs reference %d, want ≥4x fewer",
			dd.FillResScans(), dr.FillResScans())
	}
	t.Logf("deep fill: resScans ref=%d dut=%d (%.1fx)",
		dr.FillResScans(), dd.FillResScans(), float64(dr.FillResScans())/float64(dd.FillResScans()))
}

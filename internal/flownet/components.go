// Component-factorized rate re-derivation.
//
// The max-min fair allocation computed by progressive filling factors
// exactly across connected components of the bipartite graph whose nodes
// are active flows and busy resources and whose edges are route membership:
// a filling round's bottleneck choice in one component neither reads nor
// writes any other component's state, so the global algorithm's round
// sequence restricted to a component is the per-component algorithm's round
// sequence — the same float operations in the same order, hence bit-equal
// rates (DESIGN.md §11 gives the argument in full).
//
// That factorization buys two things. Components whose flow multiset and
// capacities are unchanged since the last recompute (no dirty resource)
// keep their allocation verbatim and skip filling entirely — in a fleet,
// one tenant's chunk completion re-derives that tenant's coupling group,
// not every flow in the cluster. And dirty components are mutually
// independent, so a sharded cluster driver may fill them concurrently
// (SetWorkers) with no synchronization beyond the final join.
package flownet

import (
	"math"
	"sync"
	"sync/atomic"
)

// component is one connected group of active flows and the busy resources
// they traverse. flows is in n.active order and res in registration order,
// so a per-component fill replays the global fill's iteration orders.
type component struct {
	flows []*Flow
	res   []*Resource
	dirty bool
}

// parallelFillMinFlows gates the concurrent fill: below this many flows in
// dirty components the goroutine handoff costs more than the filling. A var
// so tests can force the parallel path on tiny networks.
var parallelFillMinFlows = 64

// SetWorkers caps the goroutines a rate re-derivation may use to fill
// independent dirty components concurrently. Rates are bit-identical at any
// worker count (components share no state); 0 or 1 keeps the recompute
// strictly sequential. The sharded cluster driver raises this to its shard
// count for the run.
func (n *Network) SetWorkers(k int) { n.workers = k }

// markDirty records that r was touched since the last recompute.
func (n *Network) markDirty(r *Resource) {
	if !r.dirty {
		r.dirty = true
		n.dirtyRes = append(n.dirtyRes, r)
	}
}

// markRouteDirty marks every resource on a route (flow started, completed,
// or succeeded there).
func (n *Network) markRouteDirty(route []*Resource) {
	for _, r := range route {
		n.markDirty(r)
	}
}

// ufFind resolves a busy-resource ordinal to its set root, halving the path
// as it walks.
func ufFind(parent []int32, i int32) int32 {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// recomputeComponents is the component-decomposed progressive fill: collect
// busy resources, union routes into components, fill only the dirty ones —
// concurrently when a worker budget is set and the work warrants it.
func (n *Network) recomputeComponents() {
	n.busyStamp++
	busy := n.busyScratch[:0]
	for _, f := range n.active {
		f.prevRate = f.rate
		for _, r := range f.route {
			if r.busyStamp != n.busyStamp {
				r.busyStamp = n.busyStamp
				r.avail = r.capacity
				r.count = 0
				r.busyOrd = int32(len(busy))
				busy = append(busy, r)
			}
			r.count++
		}
	}
	parent := n.ufParent[:0]
	for i := range busy {
		parent = append(parent, int32(i))
	}
	n.ufParent = parent
	for _, f := range n.active {
		a := ufFind(parent, f.route[0].busyOrd)
		for _, r := range f.route[1:] {
			b := ufFind(parent, r.busyOrd)
			if a == b {
				continue
			}
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
				a = b
			}
		}
	}
	// Order busy resources by registration index (insertion sort, as in the
	// global fill) so each component's resource list scans in the order the
	// global bottleneck search would visit it.
	for i := 1; i < len(busy); i++ {
		r := busy[i]
		j := i - 1
		for j >= 0 && busy[j].regIdx > r.regIdx {
			busy[j+1] = busy[j]
			j--
		}
		busy[j+1] = r
	}
	n.busyScratch = busy[:0]

	rootComp := n.rootComp[:0]
	for range parent {
		rootComp = append(rootComp, -1)
	}
	n.rootComp = rootComp
	comps := n.comps
	ncomp := 0
	for _, r := range busy {
		root := ufFind(parent, r.busyOrd)
		ci := rootComp[root]
		if ci < 0 {
			ci = int32(ncomp)
			rootComp[root] = ci
			if ncomp < len(comps) {
				comps[ncomp].flows = comps[ncomp].flows[:0]
				comps[ncomp].res = comps[ncomp].res[:0]
				comps[ncomp].dirty = false
			} else {
				comps = append(comps, component{})
			}
			ncomp++
		}
		c := &comps[ci]
		c.res = append(c.res, r)
		if r.dirty {
			c.dirty = true
		}
	}
	n.comps = comps
	for _, f := range n.active {
		ci := rootComp[ufFind(parent, f.route[0].busyOrd)]
		comps[ci].flows = append(comps[ci].flows, f)
	}

	dirty := n.dirtyComps[:0]
	dirtyFlows := 0
	for i := 0; i < ncomp; i++ {
		if comps[i].dirty {
			dirty = append(dirty, int32(i))
			dirtyFlows += len(comps[i].flows)
		}
	}
	n.dirtyComps = dirty[:0]

	if n.workers > 1 && len(dirty) > 1 && dirtyFlows >= parallelFillMinFlows {
		var cursor atomic.Int32
		var wg sync.WaitGroup
		workers := n.workers
		if workers > len(dirty) {
			workers = len(dirty)
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(dirty) {
						return
					}
					fillComponent(&comps[dirty[i]])
				}
			}()
		}
		wg.Wait()
		return
	}
	for _, ci := range dirty {
		fillComponent(&comps[ci])
	}
}

// fillComponent runs progressive filling over one component: the same loop
// as recomputeGlobal restricted to the component's flows and resources. All
// writes are to component-local state, so dirty components fill in any
// order — or concurrently — with bit-equal results.
func fillComponent(c *component) {
	for _, f := range c.flows {
		f.frozen = false
		f.rate = 0
	}
	unfrozen := len(c.flows)
	for unfrozen > 0 {
		var bottleneck *Resource
		share := math.Inf(1)
		for _, r := range c.res {
			if r.count == 0 {
				continue
			}
			if s := r.avail / float64(r.count); s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range c.flows {
			if f.frozen || !flowUses(f, bottleneck) {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
	}
}

// Component-factorized rate re-derivation.
//
// The max-min fair allocation computed by progressive filling factors
// exactly across connected components of the bipartite graph whose nodes
// are active flows and busy resources and whose edges are route membership:
// a filling round's bottleneck choice in one component neither reads nor
// writes any other component's state, so the global algorithm's round
// sequence restricted to a component is the per-component algorithm's round
// sequence — the same float operations in the same order, hence bit-equal
// rates (DESIGN.md §11 gives the argument in full).
//
// That factorization buys two things. Components whose flow multiset and
// capacities are unchanged since the last recompute (no dirty resource)
// keep their allocation verbatim and skip filling entirely — in a fleet,
// one tenant's chunk completion re-derives that tenant's coupling group,
// not every flow in the cluster. And dirty components are mutually
// independent, so a sharded cluster driver may fill them concurrently
// (SetWorkers) with no synchronization beyond the final join.
package flownet

import (
	"sync"
	"sync/atomic"
)

// component is one connected group of active flows and the busy resources
// they traverse. res is kept in registration order so the bottleneck search
// breaks ties exactly as the global fill's scan would; flow order is free —
// a filling round freezes the set of flows using the bottleneck, and every
// one subtracts the same share, so the fill is flow-order-independent bit
// for bit.
type component struct {
	flows []*Flow
	res   []*Resource
	// fs is this component's private fill scratch and work counters (folded
	// into the network after any parallel workers join); rec, when non-nil,
	// asks the fill to record its trace for frontier refills; ref pins the
	// fill to the reference scan loop (ForceReferenceFillForTest).
	fs  fillState
	rec *fillTrace
	ref bool
}

// parallelFillMinFlows gates the concurrent fill: below this many flows in
// dirty components the goroutine handoff costs more than the filling. A var
// so tests can force the parallel path on tiny networks.
var parallelFillMinFlows = 64

// SetWorkers caps the goroutines a rate re-derivation may use to fill
// independent dirty components concurrently. Rates are bit-identical at any
// worker count (components share no state); 0 or 1 keeps the recompute
// strictly sequential. The sharded cluster driver raises this to its shard
// count for the run.
func (n *Network) SetWorkers(k int) { n.workers = k }

// markDirty records that r was touched since the last recompute.
func (n *Network) markDirty(r *Resource) {
	if !r.dirty {
		r.dirty = true
		n.dirtyRes = append(n.dirtyRes, r)
	}
}

// markRouteDirty marks every resource on a route (flow started, completed,
// or succeeded there).
func (n *Network) markRouteDirty(route []*Resource) {
	for _, r := range route {
		n.markDirty(r)
	}
}

// recomputeComponents is the scoped component-decomposed progressive fill:
// flood-fill the dirty components from the dirty resources through the
// per-resource flow adjacency, then refill only those — concurrently when a
// worker budget is set and the work warrants it. Components untouched since
// the last recompute are never even visited: discovery cost scales with the
// dirty subgraph, not the active set (one tenant's chunk completion walks
// that tenant's coupling group, whatever the fleet size).
func (n *Network) recomputeComponents() {
	if !n.adjacency {
		// First component-decomposed recompute: bring the adjacency up for
		// every already-active flow; activations and completions maintain it
		// from here on.
		n.adjacency = true
		for _, f := range n.active {
			n.attachFlow(f)
		}
	}
	n.busyStamp++
	stamp := n.busyStamp
	comps := n.comps
	ncomp := 0
	touched := n.touched[:0]
	stack := n.resStack[:0]
	traceGen := uint32(0)
	if n.trace != nil {
		traceGen = n.trace.gen
	}
	overlap := false
	for _, seed := range n.dirtyRes {
		if seed.busyStamp == stamp || len(seed.flows) == 0 {
			// Already flooded into an earlier component, or idle: a dirty
			// resource with no active flows constrains nothing.
			continue
		}
		if ncomp < len(comps) {
			comps[ncomp].flows = comps[ncomp].flows[:0]
			comps[ncomp].res = comps[ncomp].res[:0]
		} else {
			comps = append(comps, component{})
		}
		c := &comps[ncomp]
		c.rec = nil
		c.ref = n.refFill
		ncomp++
		seed.busyStamp = stamp
		seed.avail = seed.capacity
		seed.count = 0
		if traceGen != 0 && seed.traceGen == traceGen {
			overlap = true
		}
		stack = append(stack, seed)
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.res = append(c.res, r)
			for _, f := range r.flows {
				if f.fillStamp == stamp {
					continue
				}
				f.fillStamp = stamp
				f.prevRate = f.rate
				c.flows = append(c.flows, f)
				for _, r2 := range f.route {
					if r2.busyStamp != stamp {
						r2.busyStamp = stamp
						r2.avail = r2.capacity
						r2.count = 0
						if traceGen != 0 && r2.traceGen == traceGen {
							overlap = true
						}
						stack = append(stack, r2)
					}
					r2.count++
				}
			}
		}
		// Order the component's resources by registration index (insertion
		// sort, as in the global fill) so the bottleneck search visits them
		// in the order the global scan would.
		rs := c.res
		for i := 1; i < len(rs); i++ {
			r := rs[i]
			j := i - 1
			for j >= 0 && rs[j].regIdx > r.regIdx {
				rs[j+1] = rs[j]
				j--
			}
			rs[j+1] = r
		}
		touched = append(touched, c.flows...)
	}
	n.comps = comps
	n.resStack = stack[:0]
	n.touched = touched

	// Trace bookkeeping: a full fill of any component touching the traced
	// one supersedes the trace (the refilled state no longer matches the
	// recording); with no valid trace left, record the largest dirty
	// component worth refilling incrementally — in the one-giant-component
	// regime that is the coupling group nearly every future delta lands in.
	if !n.refFill {
		if overlap {
			n.invalidateTrace()
		}
		if n.trace == nil {
			best := -1
			for i := 0; i < ncomp; i++ {
				if len(comps[i].flows) >= frontierMinFlows && (best < 0 || len(comps[i].flows) > len(comps[best].flows)) {
					best = i
				}
			}
			if best >= 0 {
				n.trace = n.newTrace()
				comps[best].rec = n.trace
			}
		}
	}

	if n.workers > 1 && ncomp > 1 && len(touched) >= parallelFillMinFlows {
		var cursor atomic.Int32
		var wg sync.WaitGroup
		workers := n.workers
		if workers > ncomp {
			workers = ncomp
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= ncomp {
						return
					}
					fillComponent(&comps[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < ncomp; i++ {
			fillComponent(&comps[i])
		}
	}
	for i := 0; i < ncomp; i++ {
		n.fillRounds += comps[i].fs.rounds
		n.fillResScans += comps[i].fs.scans
		comps[i].fs.rounds, comps[i].fs.scans = 0, 0
	}
	// Settle the flows whose rate the fill changed (replaying elapsed
	// segments at the outgoing rate — untouched components and unchanged
	// flows keep their settlement debt), then re-derive the refilled
	// components' aggregate service rates. Both run serially, after the
	// workers join.
	if !n.eager {
		for ci := 0; ci < ncomp; ci++ {
			c := &comps[ci]
			for _, f := range c.flows {
				if f.rate != f.prevRate {
					n.settleFlowAt(f, f.prevRate)
				}
			}
			for _, r := range c.res {
				n.fold(r)
				r.aggRate = 0
				r.aggN = 0
			}
			for _, f := range c.flows {
				for _, r := range f.route {
					r.aggRate += f.rate
					r.aggN++
				}
			}
		}
	}
}

package flownet

import (
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// TestSegLogCompactionDifferential drives the lazy engine across the
// 1024-segment compaction threshold and pins bit-identity against the
// eager per-event reference. A polling loop advances in 20µs slices so the
// segment log grows by one entry per slice; a steady long flow and a
// churning short flow share an SSD channel, so compaction fires with both
// flows holding long pending-segment spans and must settle them through
// the identical per-segment float replay the eager loop performs. The
// boundary was previously only crossed incidentally by long differentials;
// this test asserts the compaction actually happened.
func TestSegLogCompactionDifferential(t *testing.T) {
	build := func(eager bool) (n *Network, steady, churn *Flow) {
		n = New()
		n.eager = eager
		ssd := n.AddResource("ssd", units.GBps(4))
		p1 := n.AddResource("gpu1/pcie", units.GBps(16))
		p2 := n.AddResource("gpu2/pcie", units.GBps(16))
		steady = n.Start("steady", 2*units.GB, nil, p1, ssd)
		churn = n.Start("churn", 96*units.MB, nil, p2, ssd)
		return n, steady, churn
	}
	ref, refA, refB := build(true)
	dut, dutA, dutB := build(false)

	check := func(step int, rf, df *Flow) {
		t.Helper()
		if rf.Rate() != df.Rate() {
			t.Fatalf("step %d: flow %s rate %v (eager) vs %v (lazy)", step, rf.Label, rf.Rate(), df.Rate())
		}
		if rf.Remaining() != df.Remaining() {
			t.Fatalf("step %d: flow %s remaining %v (eager) vs %v (lazy)", step, rf.Label, rf.Remaining(), df.Remaining())
		}
	}

	rng := rand.New(rand.NewSource(7))
	const step = 20 * units.Microsecond
	const steps = 4000
	for i := 0; i < steps; i++ {
		ne := dut.NextEvent()
		if re := ref.NextEvent(); re != ne {
			t.Fatalf("step %d: NextEvent %v (eager) vs %v (lazy)", i, re, ne)
		}
		to := dut.Now() + step
		if ne < to {
			to = ne
		}
		doneD := dut.AdvanceTo(to)
		doneR := ref.AdvanceTo(to)
		if len(doneD) != len(doneR) {
			t.Fatalf("step %d: %d completions (lazy) vs %d (eager)", i, len(doneD), len(doneR))
		}
		for j := range doneD {
			if doneD[j].Label != doneR[j].Label {
				t.Fatalf("step %d: completion %q (lazy) vs %q (eager)", i, doneD[j].Label, doneR[j].Label)
			}
			// Restart the churned flow on its original route with a fresh
			// (shared-rng) size, keeping both networks in lockstep.
			size := units.Bytes(64+rng.Intn(64)) * units.MB
			dutB = dut.Start(doneD[j].Label, size, nil, doneD[j].Route()...)
			refB = ref.Start(doneR[j].Label, size, nil, doneR[j].Route()...)
		}
		// Sparse checkpoints: settling is itself an observable, so keep the
		// pending-segment spans long enough to reach the compaction limit
		// between observations.
		if i%1250 == 1249 {
			check(i, refA, dutA)
			check(i, refB, dutB)
		}
	}
	if dut.segBase == 0 {
		t.Fatalf("lazy log never crossed the %d-segment compaction threshold (%d steps)", segLogCompactLimit, steps)
	}
	check(steps, refA, dutA)
	check(steps, refB, dutB)
	refServed := ref.resIndex["ssd"].BytesServed()
	dutServed := dut.resIndex["ssd"].BytesServed()
	if diff := refServed - dutServed; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("ssd BytesServed %v (eager) vs %v (lazy)", refServed, dutServed)
	}
}

package flownet

import (
	"fmt"
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// compTopology builds a cluster-shaped network: per-tenant PCIe links plus
// a handful of shared channels, so routes form several coupling groups that
// merge and split as flows come and go.
func compTopology(n *Network, tenants int) (pcie []*Resource, shared []*Resource) {
	for _, name := range []string{"ssd-read", "ssd-write", "host-in", "host-out"} {
		shared = append(shared, n.AddResource(name, units.GBps(4)))
	}
	for i := 0; i < tenants; i++ {
		pcie = append(pcie, n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(16)))
	}
	return pcie, shared
}

// driveDifferential replays one pseudo-random op sequence on two networks
// and fails if their observable state (rates, next event, clock, byte
// counters) ever diverges. mutate configures each network before the run.
func driveDifferential(t *testing.T, seed int64, mutate func(ref, dut *Network)) {
	t.Helper()
	const tenants = 10
	ref, dut := New(), New()
	refP, refS := compTopology(ref, tenants)
	dutP, dutS := compTopology(dut, tenants)
	mutate(ref, dut)

	rng := rand.New(rand.NewSource(seed))
	var refFlows, dutFlows []*Flow
	check := func(op string) {
		t.Helper()
		if rn, dn := ref.NextEvent(), dut.NextEvent(); rn != dn {
			t.Fatalf("%s: NextEvent %v (ref) vs %v (dut)", op, rn, dn)
		}
		for i := range refFlows {
			if rr, dr := refFlows[i].Rate(), dutFlows[i].Rate(); rr != dr {
				t.Fatalf("%s: flow %d rate %v (ref) vs %v (dut)", op, i, rr, dr)
			}
			if refFlows[i].Remaining() != dutFlows[i].Remaining() {
				t.Fatalf("%s: flow %d remaining diverged", op, i)
			}
		}
		for i := range refS {
			// Byte counters are integrated lazily; settlement points differ
			// between the global and component fills (the global fill settles
			// every flow, a component fill only dirty groups), so the sums
			// associate differently — equal to float reassociation error. The
			// per-flow observables above stay bit-exact.
			rb, db := refS[i].BytesServed(), dutS[i].BytesServed()
			if diff := rb - db; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("%s: %s served %v (ref) vs %v (dut)", op, refS[i].Name, rb, db)
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // start a flow on a tenant route
			ti := rng.Intn(tenants)
			si := rng.Intn(len(refS))
			size := units.Bytes(1+rng.Intn(64)) * units.MB
			delay := units.Duration(rng.Intn(3)) * units.Millisecond
			at := ref.Now() + units.Time(delay)
			label := fmt.Sprintf("f%d", step)
			var rRoute, dRoute []*Resource
			rRoute = append(rRoute, refP[ti], refS[si])
			dRoute = append(dRoute, dutP[ti], dutS[si])
			if rng.Intn(3) == 0 { // occasionally a 3-hop route bridging groups
				sj := rng.Intn(len(refS))
				rRoute = append(rRoute, refS[sj])
				dRoute = append(dRoute, dutS[sj])
			}
			refFlows = append(refFlows, ref.StartAt(label, size, at, nil, rRoute...))
			dutFlows = append(dutFlows, dut.StartAt(label, size, at, nil, dRoute...))
		case 5: // capacity change on a shared channel
			si := rng.Intn(len(refS))
			bw := units.GBps(1 + float64(rng.Intn(8)))
			ref.SetCapacity(refS[si], bw)
			dut.SetCapacity(dutS[si], bw)
		default: // advance toward (sometimes past) the next event
			d := units.Duration(1+rng.Intn(2000)) * units.Microsecond
			to := ref.Now() + units.Time(d)
			if e := ref.NextEvent(); rng.Intn(2) == 0 && e < units.Forever {
				to = e
			}
			rDone := ref.AdvanceTo(to)
			dDone := dut.AdvanceTo(to)
			if len(rDone) != len(dDone) {
				t.Fatalf("advance: %d completions (ref) vs %d (dut)", len(rDone), len(dDone))
			}
			for i := range rDone {
				if rDone[i].Label != dDone[i].Label || rDone[i].CompletedAt != dDone[i].CompletedAt {
					t.Fatalf("advance: completion %d diverged: %s@%v vs %s@%v",
						i, rDone[i].Label, rDone[i].CompletedAt, dDone[i].Label, dDone[i].CompletedAt)
				}
			}
		}
		check(fmt.Sprintf("step %d", step))
	}
}

// TestComponentFillMatchesGlobal: the component-decomposed recompute (with
// dirty-component skipping) must be bit-identical to the direct global fill
// on randomized cluster-shaped traffic.
func TestComponentFillMatchesGlobal(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			driveDifferential(t, seed, func(ref, dut *Network) {
				ref.forceGlobalFill = true
			})
		})
	}
}

// TestParallelFillMatchesSequential: concurrent filling of dirty components
// is bit-identical to sequential filling at any worker count. The gate is
// lowered so the tiny test topology actually exercises the goroutine path.
func TestParallelFillMatchesSequential(t *testing.T) {
	old := parallelFillMinFlows
	parallelFillMinFlows = 2
	defer func() { parallelFillMinFlows = old }()
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				driveDifferential(t, seed, func(ref, dut *Network) {
					dut.SetWorkers(workers)
				})
			}
		})
	}
}

// TestDirtySkipActuallySkips pins the perf mechanism itself: completing a
// flow in one coupling group must not re-key rates of flows in another —
// their entries keep rate == prevRate through the recompute.
func TestDirtySkipActuallySkips(t *testing.T) {
	n := New()
	a := n.AddResource("a", units.GBps(4))
	b := n.AddResource("b", units.GBps(4))
	var groupA, groupB []*Flow
	for i := 0; i < 10; i++ {
		groupA = append(groupA, n.Start(fmt.Sprintf("a%d", i), 100*units.MB, nil, a))
		groupB = append(groupB, n.Start(fmt.Sprintf("b%d", i), units.Bytes(10+i)*units.MB, nil, b))
	}
	n.NextEvent() // derive initial rates
	rateA := groupA[0].Rate()
	// Complete group B's shortest flow; group A's component is clean.
	n.AdvanceTo(n.NextEvent())
	if got := groupA[0].Rate(); got != rateA {
		t.Fatalf("group A rate changed from %v to %v without a group A event", rateA, got)
	}
	for _, f := range groupA {
		if f.rate != f.prevRate {
			t.Errorf("clean-component flow %s was re-filled (rate %v, prevRate %v)", f.Label, f.rate, f.prevRate)
		}
	}
	if !groupB[0].Done() {
		t.Fatal("group B flow did not complete")
	}
}

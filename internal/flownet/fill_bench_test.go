package flownet

import (
	"fmt"
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// benchFillChurn measures steady-state attach/detach churn on a synthetic
// one-giant-component topology: F flows over 8 shared channels (each route
// crosses two channels, chaining all eight — and every tenant — into a
// single coupling component). Each iteration advances to the next
// completion and starts a replacement flow on the same route, so every
// iteration costs one detach, one attach, and one rate re-derivation —
// the fleet regime's hot loop.
func benchFillChurn(b *testing.B, F int, refFill bool) {
	n := New()
	n.refFill = refFill
	chans := make([]*Resource, 8)
	for i := range chans {
		chans[i] = n.AddResource(fmt.Sprintf("chan%d", i), units.GBps(4))
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < F; i++ {
		p := n.AddResource(fmt.Sprintf("gpu%d/pcie", i), units.GBps(16))
		size := units.Bytes(8+rng.Intn(64)) * units.MB
		n.Start(fmt.Sprintf("f%d", i), size, nil, p, chans[i%8], chans[(i+1)%8])
	}
	n.NextEvent() // derive the initial allocation outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := n.AdvanceTo(n.NextEvent())
		for _, f := range done {
			size := units.Bytes(8+rng.Intn(64)) * units.MB
			n.Start(f.Label, size, nil, f.route...)
		}
	}
	b.StopTimer()
	if !refFill && n.FrontierReuses() == 0 && b.N > 4 {
		b.Fatal("churn benchmark never hit the frontier refill path")
	}
}

// BenchmarkMaxMinFill is the PR 8 headline microbench: per-churn-event cost
// of the heap-driven fill with frontier refills, across fleet sizes.
func BenchmarkMaxMinFill(b *testing.B) {
	for _, F := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("F=%d", F), func(b *testing.B) {
			benchFillChurn(b, F, false)
		})
	}
}

// BenchmarkMaxMinFillReference is the same workload on the retained
// reference fill (full scan loops, no trace) — the before side of the
// tentpole's ≥5x claim at F=10⁴.
func BenchmarkMaxMinFillReference(b *testing.B) {
	for _, F := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("F=%d", F), func(b *testing.B) {
			benchFillChurn(b, F, true)
		})
	}
}

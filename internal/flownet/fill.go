// Heap-driven progressive filling and frontier-incremental refill.
//
// The reference max-min fill (fillComponentRef, retained behind
// ForceReferenceFillForTest) costs O(rounds × (R + F·routelen)) per
// recompute: every round scans every component resource for the bottleneck
// and every component flow for route membership. In the one-giant-component
// regime — a fleet of tenants coupled through a handful of shared array
// channels — rounds ≈ R and F is the whole fleet, so each recompute is
// quadratic-ish and the fill dominates the profile.
//
// Two layers replace that, bit-identically (DESIGN.md §13):
//
//  1. Heap-driven filling. Resources sit in an indexed min-heap keyed by
//     (avail/count, component-local resource order). The key's second field
//     replicates the reference scan's tie-break exactly: the scan keeps the
//     first strict minimum over resources in registration order, and the
//     min of the set under the lexicographic key is that same resource.
//     Flows through the bottleneck come from the per-resource adjacency
//     (Resource.flows, maintained since PR 7) instead of a scan with an
//     O(routelen) membership test, and are frozen in component-local
//     flow-index order so every share computation and every
//     `r.avail -= share` lands in the identical float order as the
//     reference loop. Cost: O((F·routelen + R) log R) per fill.
//
//  2. Frontier-incremental refill. Each recorded fill snapshots its
//     per-level (bottleneck, share, frozen-set) trace plus a per-resource
//     (avail, count) history. When the next recompute's delta (flows
//     attached or detached since the last fill) is wholly inside the traced
//     component, max-min monotonicity pins a restart level L: every level
//     strictly below L re-derives with identical floats, so the flows
//     frozen there keep their rates verbatim — no settle, no re-key, no
//     arithmetic at all — and only the suffix refills through the heap.
//     The common fleet event (one chunk completes, one fetch starts inside
//     a 10⁴-flow component) costs O(suffix + R) instead of O(F·routelen).
package flownet

import (
	"math"
	"sort"
	"sync/atomic"
)

// forceReferenceFill pins networks created while set to the reference
// per-round-scan fill (and disables frontier refills). Process-global so
// differential tests can force it for whole simulation runs; latched per
// network at New, like ForceEagerProgressForTest.
var forceReferenceFill atomic.Bool

// ForceReferenceFillForTest makes every subsequently created Network use the
// reference progressive-filling loop (full bottleneck scans, no fill trace,
// no frontier refill) instead of the heap-driven fill. The two must agree
// bit for bit on every rate; differential tests pin that.
func ForceReferenceFillForTest(v bool) { forceReferenceFill.Store(v) }

// frontierMinFlows is the component size below which a fill does not record
// a trace: full refills of small components are already cheap, and the
// trace bookkeeping would only add constant overhead. A var so differential
// tests can force tracing on small topologies.
var frontierMinFlows = 32

// noLevel marks a resource as never removed by the recorded fill.
const noLevel = math.MaxInt32

// histEntry is one point of a resource's recorded (avail, count) history:
// the state at the selection of level `level` (entry 0 is the fill's
// initial state). count is the number of route occurrences of still-unfrozen
// flows; avail is the capacity left after the strictly earlier levels'
// subtractions — exactly the operands a reference fill restarted at that
// level would read.
type histEntry struct {
	level int32
	count int32
	avail float64
}

// levelRec is one filling round of a recorded fill: the bottleneck it
// selected, the share it computed, and where its frozen flows begin in the
// trace's freeze sequence.
type levelRec struct {
	bneck       *Resource
	share       float64
	frozenStart int32
}

// fillTrace is the recorded trace of one component's most recent fill,
// kept current across frontier refills (a refill truncates the trace at the
// restart level and re-records the suffix). gen ties the per-resource and
// per-flow trace fields (traceGen, freezeLevel, hist, removedLevel,
// orderIdx) to this trace; invalidation is O(1) — the generation moves on
// and stale stamps simply stop matching.
type fillTrace struct {
	gen       uint32
	levels    []levelRec
	frozenSeq []*Flow
	res       []*Resource // component resources in registration order
}

// attachRec / detachRec accumulate the flow delta between recomputes — the
// input the frontier refill derives its restart level from. Lists are
// consumed (and cleared) by every recompute, whichever path it takes.
//
// In-window flow successions (Succeed during a deferred completion batch)
// are trace-transparent: the successor reuses the predecessor's flow
// object, route, and rate, so the trace keeps describing it verbatim — the
// detach record from its completion is cancelled and no attach record is
// made. Successions outside a deferred window instead keep the detach and
// add a non-fresh attach, so the refill re-keys the successor's completion.
type attachRec struct {
	f *Flow
	// fresh marks a plain activation (the flow's route occurrences are not
	// yet counted in the resource aggregates); a succession carries its
	// aggregate contribution over and is not fresh.
	fresh bool
	live  bool
}

type detachRec struct {
	f     *Flow
	level int32
	gen   uint32
	live  bool
}

// noteAttach records a flow activation for the next recompute's delta.
// Only needed while a trace exists — without one the next recompute
// rediscovers everything anyway.
func (n *Network) noteAttach(f *Flow, fresh bool) {
	if n.trace == nil {
		return
	}
	n.deltaAttach = append(n.deltaAttach, attachRec{f: f, fresh: fresh, live: true})
	f.attachRec = int32(len(n.deltaAttach))
}

// noteDetach records a flow completion for the next recompute's delta. If
// the flow activated after the last recompute (it has a live attach
// record), the pair cancels to a net no-op.
func (n *Network) noteDetach(f *Flow) {
	if n.trace == nil {
		return
	}
	if f.attachRec > 0 {
		n.deltaAttach[f.attachRec-1].live = false
		f.attachRec = 0
		return
	}
	n.deltaDetach = append(n.deltaDetach, detachRec{f: f, level: f.freezeLevel, gen: f.traceGen, live: true})
	f.detachRec = int32(len(n.deltaDetach))
}

// cancelDetach voids a flow's pending detach record (an in-window
// succession replaced the completion in place; the trace still describes
// the flow).
func (n *Network) cancelDetach(f *Flow) {
	if f.detachRec > 0 {
		n.deltaDetach[f.detachRec-1].live = false
		f.detachRec = 0
	}
}

// clearDeltas empties the delta lists after a recompute consumed (or
// superseded) them.
func (n *Network) clearDeltas() {
	for i := range n.deltaAttach {
		if f := n.deltaAttach[i].f; f != nil {
			f.attachRec = 0
		}
		n.deltaAttach[i] = attachRec{}
	}
	n.deltaAttach = n.deltaAttach[:0]
	for i := range n.deltaDetach {
		if f := n.deltaDetach[i].f; f != nil {
			f.detachRec = 0
		}
		n.deltaDetach[i] = detachRec{}
	}
	n.deltaDetach = n.deltaDetach[:0]
	n.deltaRes = n.deltaRes[:0]
}

// invalidateTrace drops the recorded fill trace. Per-resource and per-flow
// stamps go stale by generation mismatch; nothing is walked.
func (n *Network) invalidateTrace() {
	n.trace = nil
	n.clearDeltas()
}

// newTrace returns the (reused) trace buffer primed with a fresh
// generation.
func (n *Network) newTrace() *fillTrace {
	if n.traceBuf == nil {
		n.traceBuf = &fillTrace{}
	}
	t := n.traceBuf
	n.traceGenSrc++
	t.gen = n.traceGenSrc
	t.levels = t.levels[:0]
	t.frozenSeq = t.frozenSeq[:0]
	t.res = t.res[:0]
	return t
}

// ---- layer 1: the heap-driven fill ----

// fillState is per-fill scratch (one per component, so concurrent component
// fills never share it) plus the fill-work counters the caller folds into
// the network after any parallel workers join.
type fillState struct {
	heap    []*Resource
	touched []*Resource
	rounds  int64
	scans   int64
}

func resLess(a, b *Resource) bool {
	if a.fillShare != b.fillShare {
		return a.fillShare < b.fillShare
	}
	return a.orderIdx < b.orderIdx
}

func resHeapSiftDown(h []*Resource, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && resLess(h[r], h[l]) {
			least = r
		}
		if !resLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		h[i].fillHeap = int32(i)
		h[least].fillHeap = int32(least)
		i = least
	}
}

func resHeapSiftUp(h []*Resource, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !resLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		h[i].fillHeap = int32(i)
		h[p].fillHeap = int32(p)
		i = p
	}
}

func resHeapFix(h []*Resource, r *Resource) {
	i := int(r.fillHeap)
	resHeapSiftDown(h, i)
	if int(r.fillHeap) == i {
		resHeapSiftUp(h, i)
	}
}

func resHeapRemove(h *[]*Resource, r *Resource) {
	s := *h
	i := int(r.fillHeap)
	last := len(s) - 1
	if i != last {
		s[i] = s[last]
		s[i].fillHeap = int32(i)
	}
	s[last] = nil
	s = s[:last]
	*h = s
	if i < last {
		resHeapSiftDown(s, i)
		if int(s[i].fillHeap) == i {
			resHeapSiftUp(s, i)
		}
	}
	r.fillHeap = -1
}

// heapFill runs progressive filling over the given unfrozen flows and their
// resources, starting at round number `level`. Resources must arrive with
// avail/count primed, orderIdx assigned in registration order, touchRound
// reset to -1, and flows with frozen=false; adjacency (Resource.flows) must
// be live. When rec is non-nil the fill records its trace (level records,
// freeze sequence, per-resource history and removal levels).
//
// Bit-identity with the reference loop: the bottleneck each round is the
// heap minimum under (avail/count, orderIdx) — the same resource the
// reference scan's first-strict-minimum rule keeps, computing the same
// division. Its candidates come from the bottleneck's adjacency (the frozen
// mark set at freeze time collapses duplicate-route entries) in adjacency
// order rather than the reference's flow order: within a round every frozen
// flow subtracts the identical share, so each resource sees the same
// clamped subtraction sequence regardless of flow order, and the per-flow
// rates are the share itself — freeze order inside a level is
// float-immaterial (DESIGN.md §13).
func heapFill(flows []*Flow, res []*Resource, fs *fillState, rec *fillTrace, level int32) {
	h := fs.heap[:0]
	for _, r := range res {
		if r.count > 0 {
			r.fillShare = r.avail / float64(r.count)
			r.fillHeap = int32(len(h))
			h = append(h, r)
		} else {
			r.fillHeap = -1
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		resHeapSiftDown(h, i)
	}
	fs.scans += int64(len(h))
	touched := fs.touched[:0]
	unfrozen := len(flows)
	for unfrozen > 0 && len(h) > 0 {
		b := h[0]
		share := b.fillShare
		if share < 0 {
			share = 0
		}
		fs.rounds++
		if rec != nil {
			rec.levels = append(rec.levels, levelRec{bneck: b, share: share, frozenStart: int32(len(rec.frozenSeq))})
		}
		touched = touched[:0]
		for _, f := range b.flows {
			if f.frozen {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
				if r.touchRound != level {
					r.touchRound = level
					touched = append(touched, r)
				}
			}
			if rec != nil {
				rec.frozenSeq = append(rec.frozenSeq, f)
				f.freezeLevel = level
				f.traceGen = rec.gen
			}
		}
		fs.scans += int64(len(touched)) + 1
		for _, r := range touched {
			if r.count == 0 {
				if r.fillHeap >= 0 {
					resHeapRemove(&h, r)
				}
				if rec != nil {
					r.removedLevel = level
				}
			} else {
				r.fillShare = r.avail / float64(r.count)
				resHeapFix(h, r)
			}
			if rec != nil {
				r.hist = append(r.hist, histEntry{level: level + 1, count: int32(r.count), avail: r.avail})
			}
		}
		level++
	}
	for i := range h {
		h[i] = nil
	}
	fs.heap = h[:0]
	fs.touched = touched[:0]
}

// fillComponentRef is the reference progressive-filling loop over one
// component: per round, a full scan of the component's resources for the
// first strict minimum of avail/count, then a full scan of the component's
// flows for bottleneck users. Retained behind ForceReferenceFillForTest as
// the executable specification the heap fill and the frontier refill are
// differentially pinned against.
func fillComponentRef(c *component) {
	for _, f := range c.flows {
		f.frozen = false
		f.rate = 0
	}
	unfrozen := len(c.flows)
	for unfrozen > 0 {
		var bottleneck *Resource
		share := math.Inf(1)
		c.fs.rounds++
		c.fs.scans += int64(len(c.res))
		for _, r := range c.res {
			if r.count == 0 {
				continue
			}
			if s := r.avail / float64(r.count); s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range c.flows {
			if f.frozen || !flowUses(f, bottleneck) {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
	}
}

// fillComponent fills one dirty component: the heap-driven fill on the
// production path (recording a trace when the component was chosen for
// one), the reference loop under ForceReferenceFillForTest. All writes are
// to component-local state, so dirty components fill in any order — or
// concurrently — with bit-equal results.
func fillComponent(c *component) {
	if c.ref {
		fillComponentRef(c)
		return
	}
	for i, r := range c.res {
		r.orderIdx = int32(i)
		r.touchRound = -1
		r.fillHeap = -1
	}
	for _, f := range c.flows {
		f.frozen = false
		f.rate = 0
	}
	if c.rec != nil {
		for _, r := range c.res {
			r.traceGen = c.rec.gen
			r.removedLevel = noLevel
			r.hist = append(r.hist[:0], histEntry{level: 0, count: int32(r.count), avail: r.avail})
		}
		c.rec.res = append(c.rec.res[:0], c.res...)
	}
	heapFill(c.flows, c.res, &c.fs, c.rec, 0)
}

// ---- layer 2: the frontier-incremental refill ----

// tryFrontier attempts to serve the pending recompute as a frontier refill
// of the recorded trace. Eligible when a trace exists, every dirty resource
// belongs to it (so the whole delta is inside the traced component and no
// other component needs re-deriving), no capacity changed, and every
// detached flow was frozen by the current trace generation. On success the
// refill ran, n.touched holds the refilled flows, and the caller skips
// component discovery entirely.
func (n *Network) tryFrontier() bool {
	t := n.trace
	if t == nil || n.refFill || n.forceGlobalFill || len(t.levels) == 0 {
		return false
	}
	for _, r := range n.dirtyRes {
		if r.traceGen != t.gen || r.capDirty {
			return false
		}
	}
	for i := range n.deltaDetach {
		if rec := &n.deltaDetach[i]; rec.live && rec.gen != t.gen {
			return false
		}
	}
	for i := range n.deltaAttach {
		if rec := &n.deltaAttach[i]; rec.live && !rec.f.active {
			return false
		}
	}
	n.frontierRefill(t, n.frontierLevel(t))
	return true
}

// frontierLevel derives the restart level for the pending delta: the first
// trace level whose bottleneck selection or frozen set the delta touches.
// Levels strictly below re-derive with identical floats under the new flow
// set (DESIGN.md §13 gives the monotonicity argument), so their frozen
// flows keep their rates verbatim.
//
// A detached flow affects nothing below the level that froze it: earlier
// bottlenecks are off its route (it would have frozen there), and its
// departure only raises the shares of its own route's resources, which
// cannot steal an earlier level's first-strict-minimum. An attached flow
// affects the first level where one of its route's resources — with the
// flow's occurrences added to the count — undercuts the recorded share
// under the scan's tie-break, or where the recorded bottleneck lies on its
// route (the frozen set would gain the flow). The scan evaluates exactly
// the divisions the reference fill would perform, against the recorded
// per-level states.
func (n *Network) frontierLevel(t *fillTrace) int {
	n.deltaStamp++
	stamp := n.deltaStamp
	n.deltaRes = n.deltaRes[:0]
	note := func(route []*Resource, attach bool) {
		for _, r := range route {
			if r.deltaStamp != stamp {
				r.deltaStamp = stamp
				r.deltaAdd = 0
				r.deltaSub = 0
				r.attachMark = 0
				n.deltaRes = append(n.deltaRes, r)
			}
			if attach {
				r.deltaAdd++
				r.attachMark = stamp
			} else {
				r.deltaSub++
			}
		}
	}
	lmax := len(t.levels)
	for i := range n.deltaDetach {
		rec := &n.deltaDetach[i]
		if !rec.live {
			continue
		}
		note(rec.f.route, false)
		if int(rec.level) < lmax {
			lmax = int(rec.level)
		}
	}
	anyAttach := false
	for i := range n.deltaAttach {
		rec := &n.deltaAttach[i]
		if !rec.live {
			continue
		}
		anyAttach = true
		note(rec.f.route, true)
	}
	if len(n.deltaRes) == 0 {
		// Pure no-op delta (successions only): the route multiset is
		// unchanged and the whole trace stands.
		return lmax
	}
	for _, r := range n.deltaRes {
		r.histP = 0
	}
	for l := 0; l < lmax; l++ {
		lv := &t.levels[l]
		if anyAttach && lv.bneck.attachMark == stamp {
			return l // an attached flow would join this level's frozen set
		}
		for _, r := range n.deltaRes {
			dc := r.deltaAdd - r.deltaSub
			if dc <= 0 {
				// Net departures only raise this resource's share; it cannot
				// undercut a level it did not already win.
				continue
			}
			h := r.hist
			p := r.histP
			for int(p)+1 < len(h) && h[p+1].level <= int32(l) {
				p++
			}
			r.histP = p
			e := h[p]
			s := e.avail / float64(e.count+dc)
			if s < lv.share || (s == lv.share && r.orderIdx < lv.bneck.orderIdx) {
				return l
			}
		}
	}
	return lmax
}

// frontierRefill re-derives the traced component's allocation from level L:
// prefix-frozen flows keep their rates untouched; the suffix flows (plus
// the attached delta) refill through the heap from the reconstructed
// per-resource states, and the trace is truncated and re-recorded from L so
// the next delta can restart against it.
func (n *Network) frontierRefill(t *fillTrace, L int) {
	n.frontierReuses++
	stamp := n.deltaStamp
	// Suffix candidates: flows the old fill froze at levels >= L that are
	// still active, in their old freeze order, then the attached delta.
	// (Order within a level is immaterial for bit-identity — every frozen
	// flow subtracts the identical share — so any deterministic order
	// matches the reference; see DESIGN.md §13.)
	prefixLen := len(t.frozenSeq)
	if L < len(t.levels) {
		prefixLen = int(t.levels[L].frozenStart)
	}
	cands := n.touched[:0]
	for _, f := range t.frozenSeq[prefixLen:] {
		if !f.active || f.attachRec > 0 {
			// Departed, or re-attached since the last fill (a succession
			// outside a deferred window leaves the predecessor's freeze-
			// sequence slot and joins as an attach record): the delta loop
			// below owns the latter, and its detach record already removed
			// the old occurrences from the reconstructed counts.
			continue
		}
		f.prevRate = f.rate
		f.frozen = false
		f.rate = 0
		cands = append(cands, f)
	}
	for i := range n.deltaAttach {
		rec := &n.deltaAttach[i]
		if !rec.live {
			continue
		}
		f := rec.f
		f.prevRate = f.rate
		f.frozen = false
		f.rate = 0
		cands = append(cands, f)
	}
	// Reconstruct each surviving resource's (avail, count) at the selection
	// of level L: the recorded history gives the old state — avail is
	// already exact (no flow of the delta had subtracted anything before L)
	// — and the count shifts uniformly by the delta's net route occurrences
	// (every detached flow was still unfrozen throughout the preserved
	// prefix, and every attached flow freezes at or after L). Surviving
	// history entries take the same uniform shift so future restarts read
	// true counts.
	resList := n.refillRes[:0]
	for _, r := range t.res {
		var dc, add int32
		if r.deltaStamp == stamp {
			add = r.deltaAdd
			dc = add - r.deltaSub
		}
		if int(r.removedLevel) < L && add == 0 {
			// Removed before the restart level and not rejoined by an
			// attached flow: every flow through it froze in the preserved
			// prefix; its state and history stand as recorded. (A detached
			// flow cannot route through it: it froze at or above the restart
			// level, but every flow through this resource froze below it.)
			continue
		}
		h := r.hist
		p := sort.Search(len(h), func(i int) bool { return h[i].level > int32(L) }) - 1
		e := h[p]
		r.avail = e.avail
		r.count = int(e.count + dc)
		r.hist = h[:p+1]
		if dc != 0 {
			for i := range r.hist {
				r.hist[i].count += dc
			}
		}
		r.removedLevel = noLevel
		if r.count == 0 {
			// All its flows are prefix-frozen or departed: dead at the
			// restart boundary.
			r.removedLevel = int32(L)
		}
		r.touchRound = -1
		r.fillHeap = -1
		resList = append(resList, r)
	}
	n.refillRes = resList
	t.levels = t.levels[:L]
	t.frozenSeq = t.frozenSeq[:prefixLen]
	fs := &n.refillFS
	heapFill(cands, resList, fs, t, int32(L))
	n.fillRounds += fs.rounds
	n.fillResScans += fs.scans
	fs.rounds, fs.scans = 0, 0
	if !n.eager {
		// Settle the flows whose rate changed at their outgoing rate, then
		// fold the rate deltas into the route aggregates. Prefix flows and
		// their resources keep settlement debt and aggregates untouched —
		// that locality is the whole point of the refill.
		for _, f := range cands {
			if f.rate != f.prevRate {
				n.settleFlowAt(f, f.prevRate)
			}
		}
		for _, f := range cands {
			if d := f.rate - f.prevRate; d != 0 {
				for _, r := range f.route {
					n.fold(r)
					r.aggRate += d
				}
			}
		}
		for i := range n.deltaAttach {
			rec := &n.deltaAttach[i]
			if rec.live && rec.fresh {
				for _, r := range rec.f.route {
					r.aggN++
				}
			}
		}
	}
	n.touched = cands
}

// FillRounds reports how many progressive-filling rounds (bottleneck
// selections) the network has performed.
func (n *Network) FillRounds() int64 { return n.fillRounds }

// FillResScans reports how many resource examinations the fills performed:
// the reference loop scans every component resource every round; the heap
// fill pays the initial key build plus one examination per re-keyed
// resource per round.
func (n *Network) FillResScans() int64 { return n.fillResScans }

// FrontierReuses reports how many recomputes were served by a frontier
// refill of the recorded fill trace instead of a full component fill.
func (n *Network) FrontierReuses() int64 { return n.frontierReuses }

package flownet

import (
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// refNextEvent is the O(active) linear scan NextEvent used to be: the
// earliest dormant activation or active-flow completion, evaluated directly.
func refNextEvent(n *Network) units.Time {
	next := units.Forever
	if len(n.dormant) > 0 {
		next = units.MinTime(next, n.dormant[0].StartAt)
	}
	for _, f := range n.active {
		next = units.MinTime(next, n.completionTime(f))
	}
	return next
}

// TestNextEventMatchesLinearScan drives random traffic through the network
// and asserts the heap-backed NextEvent always returns exactly what the
// reference scan computes — including between events, where completion
// times are re-derived from a moved clock.
func TestNextEventMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := New()
		var res []*Resource
		for i := 0; i < 3; i++ {
			res = append(res, n.AddResource(string(rune('a'+i)), units.GBps(0.5+4*rng.Float64())))
		}
		launch := func() {
			route := []*Resource{res[rng.Intn(len(res))]}
			if rng.Intn(2) == 0 {
				if r2 := res[rng.Intn(len(res))]; r2 != route[0] {
					route = append(route, r2)
				}
			}
			size := units.Bytes(rng.Intn(64)+1) * units.MB
			delay := units.Duration(rng.Intn(2_000_000)) // up to 2ms
			n.StartAt("f", size, n.Now()+delay, nil, route...)
		}
		// Hold a large active population so the heap path (not the
		// small-set linear fallback) is exercised.
		for i := 0; i < 4*compHeapThreshold; i++ {
			launch()
		}
		for step := 0; step < 200; step++ {
			if rng.Intn(3) == 0 {
				launch()
			}
			if got, want := n.NextEvent(), refNextEvent(n); got != want {
				t.Fatalf("trial %d step %d: NextEvent = %v, linear scan %v", trial, step, got, want)
			}
			// Advance either exactly to the next event, past it, or to a
			// mid-interval point (clock moves without any event firing).
			e := n.NextEvent()
			var to units.Time
			switch rng.Intn(3) {
			case 0:
				if e == units.Forever {
					to = n.Now() + units.Millisecond
				} else {
					to = e
				}
			case 1:
				to = n.Now() + units.Duration(rng.Intn(5_000_000))
			default:
				if e == units.Forever || e <= n.Now()+1 {
					to = n.Now() + 1
				} else {
					to = n.Now() + (e-n.Now())/2
				}
			}
			n.AdvanceTo(to)
			if got, want := n.NextEvent(), refNextEvent(n); got != want {
				t.Fatalf("trial %d step %d (post-advance): NextEvent = %v, linear scan %v", trial, step, got, want)
			}
		}
	}
}

// TestSetCapacityNoOpKeepsRates asserts the allocation-reuse fast path:
// re-setting the current capacity must not disturb rates or events.
func TestSetCapacityNoOpKeepsRates(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(10))
	a := n.Start("a", 10*units.GB, nil, link)
	b := n.Start("b", 20*units.GB, nil, link)
	e0, ra, rb := n.NextEvent(), a.Rate(), b.Rate()
	n.SetCapacity(link, units.GBps(10)) // unchanged: reuse allocations
	if a.Rate() != ra || b.Rate() != rb {
		t.Errorf("no-op SetCapacity changed rates: %v/%v -> %v/%v", ra, rb, a.Rate(), b.Rate())
	}
	if e := n.NextEvent(); e != e0 {
		t.Errorf("no-op SetCapacity moved NextEvent: %v -> %v", e0, e)
	}
	n.SetCapacity(link, units.GBps(5)) // a real change must re-derive
	if got := a.Rate().GBpsValue(); got != 2.5 {
		t.Errorf("rate after halving = %v, want 2.5", got)
	}
}

// TestDormantPopResetsHeapIndex guards the dormantHeap bookkeeping: a
// popped flow must not retain a live heap index.
func TestDormantPopResetsHeapIndex(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(1))
	f := n.StartAt("late", units.MB, 100*units.Microsecond, nil, link)
	if f.heapIdx != 0 {
		t.Fatalf("dormant flow heapIdx = %d, want 0", f.heapIdx)
	}
	n.AdvanceTo(200 * units.Microsecond)
	if f.heapIdx != -1 {
		t.Errorf("popped flow heapIdx = %d, want -1", f.heapIdx)
	}
}

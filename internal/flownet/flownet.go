// Package flownet simulates bandwidth sharing between concurrent data
// transfers as a fluid-flow network with max-min fair allocation.
//
// A Network holds named Resources (e.g. "pcie-in", "ssd-read"), each with a
// capacity in bytes/second. A Flow is a transfer of a fixed byte count routed
// through one or more resources; its instantaneous rate is the max-min fair
// share across every resource on its route (progressive filling). The network
// is advanced event-by-event: rates stay piecewise constant between flow
// arrivals, completions, and capacity changes.
//
// This models the paper's interconnect topology: a GPU↔SSD migration
// traverses both the SSD channel and the GPU's PCIe link, so saturating
// either throttles it, while GPU↔host migrations contend only on PCIe.
package flownet

import (
	"container/heap"
	"fmt"
	"math"

	"g10sim/internal/units"
)

// Resource is a shared link or device channel with finite bandwidth.
type Resource struct {
	Name string
	// BytesServed accumulates all bytes that have traversed this resource.
	BytesServed float64

	capacity float64 // bytes/sec
	// scratch fields used by the allocator.
	avail float64
	count int
	// regIdx is the registration order; the busy-resource list is sorted by
	// it so bottleneck ties resolve exactly as a scan over every registered
	// resource would.
	regIdx int
	// busyStamp marks membership in the current recompute's busy list.
	busyStamp uint64
	// busyOrd is this resource's slot in the current recompute's busy list —
	// the union-find key for component decomposition.
	busyOrd int32
	// dirty marks the resource as touched (a flow routed through it started,
	// completed, or succeeded; or its capacity changed) since the last
	// recompute. A connected component with no dirty resource kept its exact
	// allocation and is skipped.
	dirty bool
}

// Capacity reports the resource's current bandwidth.
func (r *Resource) Capacity() units.Bandwidth { return units.Bandwidth(r.capacity) }

// Flow is one transfer in flight (or scheduled to start).
type Flow struct {
	ID    int64
	Label string
	// Size is the total byte count of the transfer.
	Size units.Bytes
	// Data is an arbitrary caller payload carried to completion handling.
	Data any
	// Owner tags the flow with the index of the tenant (cluster machine)
	// that started it, so event-driven schedulers can wake exactly the
	// tenants a completion batch affects. -1 when unowned.
	Owner int
	// StartAt is when the flow becomes active (creation time plus any
	// device latency the caller modeled).
	StartAt units.Time
	// CompletedAt is set when the flow finishes.
	CompletedAt units.Time

	net       *Network
	route     []*Resource
	remaining float64 // bytes
	rate      float64 // bytes/sec
	active    bool
	done      bool
	heapIdx   int
	frozen    bool // allocator scratch
	// prevRate is the rate before the current recompute; the completion
	// index re-keys a flow only when its rate actually changed.
	prevRate float64
	// compGen identifies this flow's current completion-heap entry; stale
	// entries (older generations, or entries of completed flows) are
	// discarded lazily when they surface at the heap top.
	compGen uint32
	inComp  bool
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Rate reports the flow's current allocated bandwidth, applying any pending
// rate re-derivation first (rates are derived lazily between observation
// points).
func (f *Flow) Rate() units.Bandwidth {
	if f.net != nil {
		f.net.flushRates()
	}
	return units.Bandwidth(f.rate)
}

// Remaining reports the bytes not yet transferred.
func (f *Flow) Remaining() units.Bytes { return units.Bytes(math.Ceil(f.remaining)) }

// Route returns the resources the flow traverses.
func (f *Flow) Route() []*Resource { return f.route }

// Network is a set of resources and the flows traversing them.
type Network struct {
	now      units.Time
	nextID   int64
	resIndex map[string]*Resource
	res      []*Resource
	active   []*Flow
	dormant  dormantHeap
	// comp indexes the active flows by (absolute) completion time so
	// NextEvent is a heap peek instead of a scan over every active flow.
	// The heap is persistent across recomputes: a rate change re-keys only
	// the flows whose rate actually changed (generation-stamped entries;
	// superseded or completed entries are discarded lazily at the top).
	// Between re-keys a flow's absolute completion time is invariant, up to
	// float rounding, which minCompletion absorbs by re-evaluating
	// near-minimal candidates.
	comp        compHeap
	compScratch []compEntry
	heapMode    bool
	// busyScratch collects the resources traversed by at least one active
	// flow, so recompute cost scales with the active flows rather than with
	// every registered resource (a cluster registers two PCIe links per
	// tenant; idle tenants' links must not tax every event).
	busyScratch []*Resource
	busyStamp   uint64
	// dirtyRes lists the resources marked dirty since the last recompute
	// (deduplicated via Resource.dirty); cleared when rates are re-derived.
	dirtyRes []*Resource
	// workers caps the goroutines a recompute may use to fill independent
	// dirty components concurrently (see components.go). 0 or 1 keeps the
	// recompute strictly sequential.
	workers int
	// forceGlobalFill pins recompute to the direct global fill at any size —
	// the reference side of the component-decomposition differential tests.
	forceGlobalFill bool
	// Component-decomposition scratch, reused across recomputes.
	ufParent   []int32
	rootComp   []int32
	comps      []component
	dirtyComps []int32
	// doneBuf accumulates one AdvanceTo call's completions; reused.
	doneBuf []*Flow

	// Conveyor (chunk-train) bookkeeping. AdvanceEventwise opens a deferred
	// window around each internal event: reap skips its recompute and the
	// post-delivery settle() decides whether one is needed at all. When every
	// completion of the batch was replaced in place by Succeed and no
	// recompute intervened, the active route multiset — and therefore the
	// unique max-min allocation — is unchanged, and the event costs no
	// recompute (see DESIGN.md §10).
	//
	// deferSettle marks the reap-deferral window (inside AdvanceEventwise's
	// per-event advance); pendingSettle marks a deferred batch awaiting
	// settle; reapGen snapshots the recompute counter when the batch formed;
	// reapedN/succeededN count the batch's completions and in-place
	// successions.
	deferSettle   bool
	pendingSettle bool
	reapGen       int64
	reapedN       int
	succeededN    int

	// recomputes counts rate re-derivations; successions counts completions
	// advanced in place without one. Observability for tests and benchmarks:
	// a pure chunk train's event count scales with rate-change points, not
	// chunk count.
	recomputes  int64
	successions int64

	// nextEvCache memoises NextEvent between state changes: the drivers ask
	// for the next event several times per consumed event (the advance loop,
	// the scheduler's clock bound, the post-settle re-check), and each ask
	// otherwise pays a heap inspection. Any mutation — recompute, flow
	// start/succession, progress, reap — clears nextEvOK.
	nextEvCache units.Time
	nextEvOK    bool

	// ratesDirty defers rate re-derivation to the next observation point
	// (NextEvent, progress, Rate). Rates are only meaningful when simulated
	// time moves or an event time is asked for, so every mutation within one
	// instant — a transfer set starting five flows, a completion batch plus
	// its reactions — coalesces into a single recompute. Values at every
	// observation are identical to eager recomputation: the max-min
	// allocation is a pure function of the active route multiset and
	// capacities, not of the mutation order that produced them.
	ratesDirty bool
}

// dirtyRates marks the allocation stale; flushRates re-derives it at the
// next observation.
func (n *Network) dirtyRates() {
	n.ratesDirty = true
	n.nextEvOK = false
}

func (n *Network) flushRates() {
	if n.ratesDirty {
		n.ratesDirty = false
		n.recompute()
	}
}

// compEntry is one flow keyed by a completion time computed at some earlier
// clock value; it is valid while gen matches the flow's current generation
// and the flow is still active.
type compEntry struct {
	f   *Flow
	at  units.Time
	gen uint32
}

// compHeap is a hand-rolled min-heap of completion entries (ordered by
// (at, flow ID)); avoiding the container/heap interface keeps the per-event
// cost down.
type compHeap []compEntry

func compLess(a, b compEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.f.ID < b.f.ID
}

func (h compHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && compLess(h[r], h[l]) {
			least = r
		}
		if !compLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h compHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !compLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h compHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *compHeap) push(e compEntry) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h *compHeap) pop() compEntry {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	(*h).siftDown(0)
	return e
}

// New returns an empty network at time zero.
func New() *Network {
	return &Network{resIndex: make(map[string]*Resource)}
}

// Now reports the network clock.
func (n *Network) Now() units.Time { return n.now }

// Recomputes reports how many max-min rate re-derivations the network has
// performed.
func (n *Network) Recomputes() int64 { return n.recomputes }

// Successions reports how many flow completions were advanced in place by
// Succeed without a rate recompute (the conveyor fast path).
func (n *Network) Successions() int64 { return n.successions }

// AddResource registers a resource. Names must be unique.
func (n *Network) AddResource(name string, cap units.Bandwidth) *Resource {
	if _, dup := n.resIndex[name]; dup {
		panic(fmt.Sprintf("flownet: duplicate resource %q", name))
	}
	r := &Resource{Name: name, capacity: float64(cap), regIdx: len(n.res)}
	n.resIndex[name] = r
	n.res = append(n.res, r)
	return r
}

// Resource looks up a resource by name, or nil.
func (n *Network) Resource(name string) *Resource { return n.resIndex[name] }

// SetCapacity changes a resource's bandwidth effective now. Rates of all
// flows are re-derived immediately. Setting the current capacity again is a
// no-op: the existing allocation is reused unchanged.
func (n *Network) SetCapacity(r *Resource, cap units.Bandwidth) {
	if r.capacity == float64(cap) {
		return
	}
	r.capacity = float64(cap)
	n.markDirty(r)
	n.dirtyRates()
}

// Start launches a flow at the current time.
func (n *Network) Start(label string, size units.Bytes, data any, route ...*Resource) *Flow {
	return n.StartAt(label, size, n.now, data, route...)
}

// StartAt schedules a flow to become active at time at (>= now). Use this to
// model fixed access latencies (SSD read latency, fault-handling latency)
// preceding the bandwidth-bound part of a transfer.
func (n *Network) StartAt(label string, size units.Bytes, at units.Time, data any, route ...*Resource) *Flow {
	if len(route) == 0 {
		panic("flownet: flow with empty route")
	}
	if at < n.now {
		at = n.now
	}
	n.nextID++
	f := &Flow{
		ID:        n.nextID,
		Label:     label,
		Size:      size,
		Data:      data,
		Owner:     -1,
		StartAt:   at,
		net:       n,
		route:     route,
		remaining: float64(size),
	}
	if f.remaining <= 0 {
		// Zero-byte flows complete instantly at their start time.
		f.remaining = 0
	}
	if at <= n.now {
		n.activate(f)
	} else {
		heap.Push(&n.dormant, f)
		n.nextEvOK = false
	}
	return f
}

func (n *Network) activate(f *Flow) {
	f.active = true
	n.active = append(n.active, f)
	n.markRouteDirty(f.route)
	n.dirtyRates()
}

// NextEvent reports the earliest time at which the network's state changes on
// its own: a dormant flow activates or an active flow completes. Returns
// Forever when nothing is pending.
func (n *Network) NextEvent() units.Time {
	if n.nextEvOK {
		return n.nextEvCache
	}
	n.flushRates()
	next := units.Forever
	if len(n.dormant) > 0 {
		next = units.MinTime(next, n.dormant[0].StartAt)
	}
	next = units.MinTime(next, n.minCompletion())
	n.nextEvCache = next
	n.nextEvOK = true
	return next
}

// completionSlack bounds how far a stored completion time can drift from
// the same flow's completion time re-evaluated at a later clock value. The
// two differ only by float64 rounding around the ceil boundary (at most
// ±1ns for any sane horizon) plus one more for the ceil itself.
const completionSlack = 4

// stale reports whether a heap entry no longer represents its flow: the
// flow completed, or a rate change pushed a newer-generation entry.
func (e compEntry) stale() bool { return !e.f.active || e.gen != e.f.compGen }

// dropStaleTop removes superseded entries from the heap top until the
// minimum entry is valid (or the heap is empty).
func (n *Network) dropStaleTop() {
	for len(n.comp) > 0 && n.comp[0].stale() {
		n.comp.pop()
	}
}

// minCompletion returns min over active flows of completionTime evaluated
// now — exactly the value a linear scan would produce. The heap keys are
// completion times stored when the flow's rate last changed; they are
// within completionSlack of the current value, so the true minimum is found
// by re-evaluating every valid candidate whose stored key is within the
// slack of the best current value seen so far.
func (n *Network) minCompletion() units.Time {
	if !n.heapMode {
		// Below the heap threshold (or idle): scan directly.
		best := units.Forever
		for _, f := range n.active {
			best = units.MinTime(best, n.completionTime(f))
		}
		return best
	}
	n.dropStaleTop()
	if len(n.comp) == 0 {
		return units.Forever
	}
	if n.comp[0].at == units.Forever {
		// All keys at or past the heap minimum are Forever; rates have not
		// changed since they were stored, so every flow is still stalled.
		return units.Forever
	}
	best := units.Forever
	scratch := n.compScratch[:0]
	for len(n.comp) > 0 {
		threshold := units.Forever
		if best < units.Forever-completionSlack {
			threshold = best + completionSlack
		}
		if n.comp[0].at > threshold {
			break
		}
		e := n.comp.pop()
		if e.stale() {
			continue
		}
		e.at = n.completionTime(e.f)
		scratch = append(scratch, e)
		if e.at < best {
			best = e.at
		}
	}
	for _, e := range scratch {
		n.comp.push(e)
	}
	n.compScratch = scratch[:0]
	return best
}

// Idle reports whether no flows are active or pending.
func (n *Network) Idle() bool { return len(n.active) == 0 && len(n.dormant) == 0 }

func (n *Network) completionTime(f *Flow) units.Time {
	if f.remaining <= 0 {
		return n.now
	}
	if f.rate <= 0 {
		return units.Forever
	}
	secs := f.remaining / f.rate
	d := units.Duration(math.Ceil(secs * float64(units.Second)))
	if d < 1 {
		d = 1
	}
	return n.now + d
}

// AdvanceTo moves the clock to t, processing flow activations and
// completions in chronological order, and returns the flows that completed
// in (previous now, t], ordered by completion time. t must be >= Now().
// The returned slice is reused by the next AdvanceTo call.
func (n *Network) AdvanceTo(t units.Time) []*Flow {
	if t < n.now {
		panic(fmt.Sprintf("flownet: AdvanceTo(%v) before now=%v", t, n.now))
	}
	n.doneBuf = n.doneBuf[:0]
	for {
		e := n.NextEvent()
		if e > t {
			break
		}
		n.step(e)
	}
	n.progress(t)
	n.reap()
	return n.doneBuf
}

// AdvanceEventwise moves the clock to t like AdvanceTo, but hands each
// batch of completions to deliver at the moment it lands rather than
// collecting everything until t — so callers can react (start new flows,
// change capacities) at event times. deliver runs once per internal event,
// possibly with an empty batch (a dormant-flow activation); flows or
// capacity changes it introduces before t are processed in order.
func (n *Network) AdvanceEventwise(t units.Time, deliver func(done []*Flow)) {
	for {
		e := n.NextEvent()
		if e > t {
			break
		}
		n.deferSettle = true
		done := n.AdvanceTo(e)
		n.deferSettle = false
		deliver(done)
		n.settle()
	}
	// The final advance normally completes nothing, but a flow whose
	// remaining bytes round below the completion threshold at t can still
	// finish here — deliver those too rather than dropping them.
	n.deferSettle = true
	done := n.AdvanceTo(t)
	n.deferSettle = false
	if len(done) > 0 {
		deliver(done)
	}
	n.settle()
}

// settle closes a deferred completion batch: if every completed flow was
// replaced in place by Succeed and no recompute intervened, the active route
// multiset is unchanged and the rates in force are already the unique
// max-min allocation — the whole event cost no recompute. Any other outcome
// (a chunk train ended, a fetch blocked on memory, a capacity change, a new
// or activated flow) re-derives rates once, exactly as the per-flow path
// would have.
func (n *Network) settle() {
	if !n.pendingSettle {
		return
	}
	n.pendingSettle = false
	if !n.ratesDirty && n.recomputes == n.reapGen && n.succeededN == n.reapedN {
		n.successions += int64(n.succeededN)
		return
	}
	n.dirtyRates()
}

// Succeed replaces a just-completed flow with its successor in place: same
// route, same owner, same payload, active immediately at the current clock
// with no setup latency. It must be called from within an AdvanceEventwise
// delivery callback, on a flow of the batch being delivered. When the whole
// batch is succeeded this way the event skips rate recomputation entirely
// (the route multiset is unchanged, so the max-min allocation is too); in
// every other situation the network falls back to a full re-derivation, so
// semantics never depend on the fast path firing. The flow object is reused;
// it carries a fresh ID, Size, StartAt, and remaining byte count, exactly as
// a StartAt of the successor would have produced.
func (n *Network) Succeed(f *Flow, size units.Bytes) *Flow {
	if !f.done || f.active {
		panic("flownet: Succeed on a flow that has not completed")
	}
	n.nextID++
	f.ID = n.nextID
	f.Size = size
	f.remaining = float64(size)
	if f.remaining < 0 {
		f.remaining = 0
	}
	f.done = false
	f.active = true
	f.StartAt = n.now
	f.CompletedAt = 0
	n.active = append(n.active, f)
	n.nextEvOK = false
	if n.pendingSettle {
		// Deferred window: keep the predecessor's rate (identical by max-min
		// uniqueness if the batch stays pure; otherwise settle re-derives).
		n.succeededN++
		if n.heapMode {
			f.compGen++
			f.inComp = true
			n.comp.push(compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
		} else {
			f.inComp = false
		}
		return f
	}
	// Outside a deferred delivery (plain AdvanceTo callers): equivalent to
	// starting the successor normally.
	f.compGen++
	f.inComp = false
	n.markRouteDirty(f.route)
	n.dirtyRates()
	return f
}

// step advances exactly to internal event time e, handling activations and
// completions there. reap already re-derives rates when flows finish, so a
// second recompute is only needed if dormant flows activated afterwards.
func (n *Network) step(e units.Time) {
	n.progress(e)
	n.reap()
	activated := false
	for len(n.dormant) > 0 && n.dormant[0].StartAt <= n.now {
		f := heap.Pop(&n.dormant).(*Flow)
		f.active = true
		n.active = append(n.active, f)
		n.markRouteDirty(f.route)
		activated = true
	}
	if activated {
		n.dirtyRates()
	}
}

// progress transfers bytes on every active flow for the interval [now, to].
func (n *Network) progress(to units.Time) {
	if to <= n.now {
		return
	}
	n.flushRates()
	n.nextEvOK = false
	dt := (to - n.now).Seconds()
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, r := range f.route {
			r.BytesServed += moved
		}
	}
	n.now = to
}

// reap removes finished flows from the active set (remaining below half a
// byte counts as finished, absorbing float error), appending them to
// doneBuf ordered by flow ID within the batch.
func (n *Network) reap() {
	start := len(n.doneBuf)
	kept := n.active[:0]
	for _, f := range n.active {
		if f.remaining < 0.5 {
			f.remaining = 0
			f.done = true
			f.active = false
			f.CompletedAt = n.now
			n.markRouteDirty(f.route)
			n.doneBuf = append(n.doneBuf, f)
		} else {
			kept = append(kept, f)
		}
	}
	n.active = kept
	if done := n.doneBuf[start:]; len(done) > 0 {
		if n.deferSettle {
			// Conveyor window: leave rates as they are; settle() re-derives
			// after delivery unless every completion is succeeded in place.
			// reapGen is pinned at the first batch of the window, so any
			// intervening recompute (a dormant activation, a second reap)
			// disqualifies the fast path for the whole window.
			if !n.pendingSettle {
				n.pendingSettle = true
				n.reapGen = n.recomputes
				n.reapedN, n.succeededN = 0, 0
			}
			n.reapedN += len(done)
		} else {
			n.dirtyRates()
		}
		n.nextEvOK = false
		// Order the batch by flow ID. Insertion sort: batches are almost
		// always one or two flows, and this avoids sort.Slice's closure and
		// swapper allocations on the per-event path.
		for i := 1; i < len(done); i++ {
			f := done[i]
			j := i - 1
			for j >= 0 && done[j].ID > f.ID {
				done[j+1] = done[j]
				j--
			}
			done[j+1] = f
		}
	}
}

// recompute derives max-min fair rates for all active flows by progressive
// filling: repeatedly find the most constrained resource, give its flows
// their equal share, freeze them, and remove that capacity. Small active
// sets run the direct global fill; larger ones are decomposed into connected
// components of the flow/resource graph (components.go), where components
// untouched since the last recompute keep their allocation verbatim and
// dirty components fill independently — bit-identical to the global fill,
// because the max-min allocation factors across components. Either way the
// completion index is re-keyed only for flows whose rate actually changed.
func (n *Network) recompute() {
	n.recomputes++
	n.nextEvOK = false
	if len(n.active) > smallFillLimit && !n.forceGlobalFill {
		n.recomputeComponents()
	} else {
		n.recomputeGlobal()
	}
	for _, r := range n.dirtyRes {
		r.dirty = false
	}
	n.dirtyRes = n.dirtyRes[:0]
	n.rekeyCompletions()
}

// smallFillLimit is the active-flow count at or below which recompute runs
// the direct global fill: component bookkeeping only pays off once several
// independent groups of flows exist.
const smallFillLimit = 8

// recomputeGlobal is the direct progressive-filling pass over every active
// flow — the reference the component decomposition must match bit for bit.
func (n *Network) recomputeGlobal() {
	n.busyStamp++
	busy := n.busyScratch[:0]
	unfrozen := 0
	for _, f := range n.active {
		f.frozen = false
		f.prevRate = f.rate
		f.rate = 0
		unfrozen++
		for _, r := range f.route {
			if r.busyStamp != n.busyStamp {
				r.busyStamp = n.busyStamp
				r.avail = r.capacity
				r.count = 0
				busy = append(busy, r)
			}
			r.count++
		}
	}
	// Order busy resources by registration index so bottleneck ties break
	// exactly as a scan over every registered resource would. Insertion
	// sort: the list is small and collected in near-registration order, and
	// this avoids sort.Slice's closure allocation on the per-event path.
	for i := 1; i < len(busy); i++ {
		r := busy[i]
		j := i - 1
		for j >= 0 && busy[j].regIdx > r.regIdx {
			busy[j+1] = busy[j]
			j--
		}
		busy[j+1] = r
	}
	n.busyScratch = busy[:0]
	for unfrozen > 0 {
		// Find the bottleneck resource.
		var bottleneck *Resource
		share := math.Inf(1)
		for _, r := range busy {
			if r.count == 0 {
				continue
			}
			s := r.avail / float64(r.count)
			if s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			// No unfrozen flow traverses any resource; cannot happen
			// because routes are non-empty, but guard against it.
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range n.active {
			if f.frozen || !flowUses(f, bottleneck) {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
	}
}

// rekeyCompletions refreshes the completion index after a recompute. Tiny
// active sets skip the heap entirely — a direct scan is cheaper than
// maintaining it; above the threshold the heap is persistent and only flows
// whose rate changed get a new (generation-bumped) entry.
func (n *Network) rekeyCompletions() {
	if len(n.active) <= compHeapThreshold {
		if n.heapMode {
			n.heapMode = false
			n.comp = n.comp[:0]
			for _, f := range n.active {
				f.inComp = false
			}
		}
		return
	}
	changed := 0
	if n.heapMode {
		for _, f := range n.active {
			if !f.inComp || f.rate != f.prevRate {
				changed++
			}
		}
	}
	// When a recompute moved most rates (one shared bottleneck ripples to
	// every flow — the common single-machine case), a wholesale rebuild is
	// cheaper than per-entry pushes into a garbage-laden heap: heap.init is
	// O(F) and leaves no stale entries. The incremental path pays off when
	// ripples are sparse — a fleet's flows on disjoint PCIe links keep
	// their keys. The rebuild also runs when lazily discarded garbage has
	// accumulated past a small multiple of the live entries.
	if !n.heapMode || 4*changed >= len(n.active) || len(n.comp) > 4*len(n.active)+64 {
		n.heapMode = true
		n.comp = n.comp[:0]
		for _, f := range n.active {
			f.compGen++
			f.inComp = true
			n.comp = append(n.comp, compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
		}
		n.comp.init()
		return
	}
	for _, f := range n.active {
		if f.inComp && f.rate == f.prevRate {
			continue // absolute completion time unchanged; entry still valid
		}
		f.compGen++
		f.inComp = true
		n.comp.push(compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
	}
}

// compHeapThreshold is the active-flow count above which NextEvent switches
// from a direct scan to the completion-time heap.
const compHeapThreshold = 12

func flowUses(f *Flow, r *Resource) bool {
	for _, rr := range f.route {
		if rr == r {
			return true
		}
	}
	return false
}

// dormantHeap orders scheduled-but-not-started flows by start time.
type dormantHeap []*Flow

func (h dormantHeap) Len() int { return len(h) }
func (h dormantHeap) Less(i, j int) bool {
	if h[i].StartAt != h[j].StartAt {
		return h[i].StartAt < h[j].StartAt
	}
	return h[i].ID < h[j].ID
}
func (h dormantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *dormantHeap) Push(x any) {
	f := x.(*Flow)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}
func (h *dormantHeap) Pop() any {
	old := *h
	f := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	f.heapIdx = -1 // no longer in the heap
	return f
}

// Package flownet simulates bandwidth sharing between concurrent data
// transfers as a fluid-flow network with max-min fair allocation.
//
// A Network holds named Resources (e.g. "pcie-in", "ssd-read"), each with a
// capacity in bytes/second. A Flow is a transfer of a fixed byte count routed
// through one or more resources; its instantaneous rate is the max-min fair
// share across every resource on its route (progressive filling). The network
// is advanced event-by-event: rates stay piecewise constant between flow
// arrivals, completions, and capacity changes.
//
// This models the paper's interconnect topology: a GPU↔SSD migration
// traverses both the SSD channel and the GPU's PCIe link, so saturating
// either throttles it, while GPU↔host migrations contend only on PCIe.
package flownet

import (
	"container/heap"
	"fmt"
	"math"
	"sync/atomic"

	"g10sim/internal/units"
)

// Resource is a shared link or device channel with finite bandwidth.
type Resource struct {
	Name string

	net      *Network
	capacity float64 // bytes/sec
	// served is the byte count traversed so far, lazily integrated from
	// aggRate (see BytesServed). On the eager reference path it is instead
	// accumulated per flow per event by progress.
	served float64
	// aggRate is the summed rate of the aggN active flows currently routed
	// through this resource; served integrates it between folds. Rebuilt
	// from scratch at every recompute (rebuildAggregates) and adjusted in
	// place by completions and successions; reset to exactly zero whenever
	// the last flow leaves, so float residue cannot accumulate while idle.
	aggRate  float64
	aggN     int
	lastFold units.Time
	// scratch fields used by the allocator.
	avail float64
	count int
	// regIdx is the registration order; the busy-resource list is sorted by
	// it so bottleneck ties resolve exactly as a scan over every registered
	// resource would.
	regIdx int
	// busyStamp marks membership in the current recompute's busy list.
	busyStamp uint64
	// dirty marks the resource as touched (a flow routed through it started,
	// completed, or succeeded; or its capacity changed) since the last
	// recompute. A connected component with no dirty resource kept its exact
	// allocation and is skipped.
	dirty bool
	// capDirty marks a capacity change since the last recompute; a frontier
	// refill cannot absorb one (shares depend on capacity from round zero),
	// so it forces a full fill of the resource's component.
	capDirty bool
	// Heap-fill scratch and fill-trace state (see fill.go). orderIdx is the
	// component-local registration order backing the heap key's tie-break;
	// hist/removedLevel/traceGen record this resource's history under the
	// current fill trace; the delta* fields are per-refill scan scratch.
	orderIdx     int32
	fillHeap     int32
	touchRound   int32
	fillShare    float64
	traceGen     uint32
	removedLevel int32
	histP        int32
	deltaStamp   uint32
	attachMark   uint32
	deltaAdd     int32
	deltaSub     int32
	hist         []histEntry
	// flows lists the active flows routed through this resource (arbitrary
	// order, swap-removed on completion) — the adjacency the scoped
	// recompute flood-fills dirty components through, so discovery cost
	// scales with the dirty subgraph, not the whole active set. Maintained
	// only once Network.adjacency is enabled (the first component-decomposed
	// recompute); small networks never pay for it.
	flows []*Flow
}

// Capacity reports the resource's current bandwidth.
func (r *Resource) Capacity() units.Bandwidth { return units.Bandwidth(r.capacity) }

// BytesServed reports all bytes that have traversed this resource. The value
// is integrated lazily from the aggregate service rate of the flows routed
// through it; flow settlement points reconcile it against the exact
// per-segment byte movement, so it matches the eager per-event accumulation
// up to float reassociation error (the per-flow observables — remaining
// bytes, completion times — stay bit-exact; see DESIGN.md §12).
func (r *Resource) BytesServed() float64 {
	if r.net != nil {
		r.net.fold(r)
	}
	return r.served
}

// Flow is one transfer in flight (or scheduled to start).
type Flow struct {
	ID    int64
	Label string
	// Size is the total byte count of the transfer.
	Size units.Bytes
	// Data is an arbitrary caller payload carried to completion handling.
	Data any
	// Owner tags the flow with the index of the tenant (cluster machine)
	// that started it, so event-driven schedulers can wake exactly the
	// tenants a completion batch affects. -1 when unowned.
	Owner int
	// StartAt is when the flow becomes active (creation time plus any
	// device latency the caller modeled).
	StartAt units.Time
	// CompletedAt is set when the flow finishes.
	CompletedAt units.Time

	net       *Network
	route     []*Resource
	remaining float64 // bytes
	rate      float64 // bytes/sec
	active    bool
	done      bool
	heapIdx   int
	frozen    bool // allocator scratch
	// prevRate is the rate before the current recompute; the completion
	// index re-keys a flow only when its rate actually changed.
	prevRate float64
	// compGen identifies this flow's current completion-heap entry; stale
	// entries (older generations, or entries of completed flows) are
	// discarded lazily when they surface at the heap top.
	compGen uint32
	inComp  bool
	// segIdx is the absolute index into the network's progress-segment log
	// up to which this flow's remaining byte count is settled: remaining is
	// exact as of segLog time segIdx and owed the per-segment deductions of
	// every later segment (settleFlow replays them on demand).
	segIdx int64
	// actIdx is this flow's slot in n.active, so the heap-driven reap can
	// swap-remove a completion without scanning the active set.
	actIdx int
	// resSlot[k] is this flow's slot in route[k].flows (adjacency
	// bookkeeping for O(1) detachment); fillStamp marks discovery by the
	// current recompute's flood fill. slotBuf backs resSlot for the common
	// short route so attachment allocates nothing.
	resSlot   []int32
	slotBuf   [4]int32
	fillStamp uint64
	// Fill-trace state (see fill.go): freezeLevel/traceGen stamp the filling
	// round that froze this flow under the current trace; attachRec/detachRec
	// are 1-based indices into the pending delta lists (0 = none).
	freezeLevel int32
	traceGen    uint32
	attachRec   int32
	detachRec   int32
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Rate reports the flow's current allocated bandwidth, applying any pending
// rate re-derivation first (rates are derived lazily between observation
// points).
func (f *Flow) Rate() units.Bandwidth {
	if f.net != nil {
		f.net.flushRates()
	}
	return units.Bandwidth(f.rate)
}

// Remaining reports the bytes not yet transferred, settling any progress
// segments elapsed since the flow's last observation point first.
func (f *Flow) Remaining() units.Bytes {
	if f.net != nil {
		f.net.settleFlow(f)
	}
	return units.Bytes(math.Ceil(f.remaining))
}

// Route returns the resources the flow traverses.
func (f *Flow) Route() []*Resource { return f.route }

// Network is a set of resources and the flows traversing them.
type Network struct {
	now      units.Time
	nextID   int64
	resIndex map[string]*Resource
	res      []*Resource
	active   []*Flow
	dormant  dormantHeap
	// comp indexes the active flows by (absolute) completion time so
	// NextEvent is a heap peek instead of a scan over every active flow.
	// The heap is persistent across recomputes: a rate change re-keys only
	// the flows whose rate actually changed (generation-stamped entries;
	// superseded or completed entries are discarded lazily at the top).
	// Between re-keys a flow's absolute completion time is invariant, up to
	// float rounding, which minCompletion absorbs by re-evaluating
	// near-minimal candidates.
	comp        compHeap
	compScratch []compEntry
	heapMode    bool
	// busyScratch collects the resources traversed by at least one active
	// flow, so recompute cost scales with the active flows rather than with
	// every registered resource (a cluster registers two PCIe links per
	// tenant; idle tenants' links must not tax every event).
	busyScratch []*Resource
	busyStamp   uint64
	// dirtyRes lists the resources marked dirty since the last recompute
	// (deduplicated via Resource.dirty); cleared when rates are re-derived.
	dirtyRes []*Resource
	// workers caps the goroutines a recompute may use to fill independent
	// dirty components concurrently (see components.go). 0 or 1 keeps the
	// recompute strictly sequential.
	workers int
	// forceGlobalFill pins recompute to the direct global fill at any size —
	// the reference side of the component-decomposition differential tests.
	forceGlobalFill bool
	// adjacency marks the per-resource flow lists as live. Enabled by the
	// first component-decomposed recompute (which bulk-attaches every active
	// flow) and maintained incrementally from then on.
	adjacency bool
	// Component-decomposition scratch, reused across recomputes.
	comps    []component
	resStack []*Resource
	touched  []*Flow // flows in this recompute's dirty components
	// Fill trace and frontier-refill state (see fill.go). trace is the
	// recorded fill of the traced component (nil when none); traceBuf is the
	// reused backing object; the delta lists accumulate flow attach/detach
	// records between recomputes; refillRes/refillFS are refill scratch.
	trace       *fillTrace
	traceBuf    *fillTrace
	traceGenSrc uint32
	deltaAttach []attachRec
	deltaDetach []detachRec
	deltaRes    []*Resource
	deltaStamp  uint32
	refillRes   []*Resource
	refillFS    fillState
	// refFill pins this network to the reference per-round-scan fill (no
	// heap, no trace, no frontier refills). Latched from
	// ForceReferenceFillForTest at New.
	refFill bool
	// doneBuf accumulates one AdvanceTo call's completions; reused.
	doneBuf []*Flow

	// Conveyor (chunk-train) bookkeeping. AdvanceEventwise opens a deferred
	// window around each internal event: reap skips its recompute and the
	// post-delivery settle() decides whether one is needed at all. When every
	// completion of the batch was replaced in place by Succeed and no
	// recompute intervened, the active route multiset — and therefore the
	// unique max-min allocation — is unchanged, and the event costs no
	// recompute (see DESIGN.md §10).
	//
	// deferSettle marks the reap-deferral window (inside AdvanceEventwise's
	// per-event advance); pendingSettle marks a deferred batch awaiting
	// settle; reapGen snapshots the recompute counter when the batch formed;
	// reapedN/succeededN count the batch's completions and in-place
	// successions.
	deferSettle   bool
	pendingSettle bool
	reapGen       int64
	reapedN       int
	succeededN    int

	// segLog is the progress-segment log: the times at which the clock
	// moved since the oldest unsettled flow's settlement point. segLog[0]
	// is the settlement horizon (absolute index segBase) and the last entry
	// always equals now, so segment i spans [segLog[i-1].at, segLog[i].at]
	// with precomputed width segLog[i].dt — the exact float the eager loop
	// would have used for that event's deduction. progress appends one entry
	// per clock move — O(1) per event — and settleFlow replays a flow's
	// pending segments on demand. The log is compacted (all flows settled,
	// log collapsed) past a size bound.
	segLog  []segment
	segBase int64
	// eager pins this network to the reference per-event path: progress
	// deducts bytes from every active flow at every event and reap scans
	// the whole active set. Latched from ForceEagerProgressForTest at New.
	eager bool
	// reapScratch holds heap entries popped and re-keyed by one reap.
	reapScratch []compEntry

	// recomputes counts rate re-derivations; successions counts completions
	// advanced in place without one. Observability for tests and benchmarks:
	// a pure chunk train's event count scales with rate-change points, not
	// chunk count.
	recomputes  int64
	successions int64
	// progressTouches counts per-flow byte-accounting steps: one per active
	// flow per event on the eager path, one per replayed segment per
	// settlement on the lazy path — the O(active × events) vs O(events)
	// claim as an asserted number. reapScans counts flows examined for
	// completion: the whole active set per reap when scanning, only popped
	// completion-heap candidates when heap-driven.
	progressTouches int64
	reapScans       int64
	// fillRounds counts progressive-filling rounds (bottleneck selections);
	// fillResScans counts resource examinations those rounds performed;
	// frontierReuses counts recomputes served by a frontier refill of the
	// recorded fill trace instead of a full component fill.
	fillRounds     int64
	fillResScans   int64
	frontierReuses int64

	// nextEvCache memoises NextEvent between state changes: the drivers ask
	// for the next event several times per consumed event (the advance loop,
	// the scheduler's clock bound, the post-settle re-check), and each ask
	// otherwise pays a heap inspection. Any mutation — recompute, flow
	// start/succession, progress, reap — clears nextEvOK.
	nextEvCache units.Time
	nextEvOK    bool

	// ratesDirty defers rate re-derivation to the next observation point
	// (NextEvent, progress, Rate). Rates are only meaningful when simulated
	// time moves or an event time is asked for, so every mutation within one
	// instant — a transfer set starting five flows, a completion batch plus
	// its reactions — coalesces into a single recompute. Values at every
	// observation are identical to eager recomputation: the max-min
	// allocation is a pure function of the active route multiset and
	// capacities, not of the mutation order that produced them.
	ratesDirty bool
}

// dirtyRates marks the allocation stale; flushRates re-derives it at the
// next observation.
func (n *Network) dirtyRates() {
	n.ratesDirty = true
	n.nextEvOK = false
}

func (n *Network) flushRates() {
	if n.ratesDirty {
		n.ratesDirty = false
		n.recompute()
	}
}

// compEntry is one flow keyed by a completion time computed at some earlier
// clock value; it is valid while gen matches the flow's current generation
// and the flow is still active.
type compEntry struct {
	f   *Flow
	at  units.Time
	gen uint32
}

// compHeap is a hand-rolled min-heap of completion entries (ordered by
// (at, flow ID)); avoiding the container/heap interface keeps the per-event
// cost down.
type compHeap []compEntry

func compLess(a, b compEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.f.ID < b.f.ID
}

func (h compHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && compLess(h[r], h[l]) {
			least = r
		}
		if !compLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h compHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !compLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h compHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *compHeap) push(e compEntry) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h *compHeap) pop() compEntry {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	(*h).siftDown(0)
	return e
}

// forceEagerProgress pins networks created while set to the eager
// reference path. Process-global so differential tests can force it for
// whole simulation runs; latched per network at New.
var forceEagerProgress atomic.Bool

// ForceEagerProgressForTest makes every subsequently created Network use
// the eager per-event progress/reap reference path instead of the lazy
// settlement path. The two must agree bit for bit on every per-flow
// observable; differential tests pin that.
func ForceEagerProgressForTest(v bool) { forceEagerProgress.Store(v) }

// segment is one progress-segment boundary: the clock value and the width
// (in seconds, converted once at append time) of the segment it closes.
type segment struct {
	at units.Time
	dt float64
}

// New returns an empty network at time zero.
func New() *Network {
	return &Network{
		resIndex: make(map[string]*Resource),
		segLog:   []segment{{}},
		eager:    forceEagerProgress.Load(),
		refFill:  forceReferenceFill.Load(),
	}
}

// Now reports the network clock.
func (n *Network) Now() units.Time { return n.now }

// Recomputes reports how many max-min rate re-derivations the network has
// performed.
func (n *Network) Recomputes() int64 { return n.recomputes }

// Successions reports how many flow completions were advanced in place by
// Succeed without a rate recompute (the conveyor fast path).
func (n *Network) Successions() int64 { return n.successions }

// ProgressTouches reports how many per-flow byte-accounting steps the
// network has performed: every (flow, elapsed segment) deduction, whether
// done eagerly at the event or replayed at a settlement point. The lazy
// path's count scales with rate-change points rather than events × flows.
func (n *Network) ProgressTouches() int64 { return n.progressTouches }

// ReapScans reports how many flows reap has examined for completion. The
// heap-driven reap examines only completion-heap candidates near the
// clock; the scanning reference examines the whole active set per event.
func (n *Network) ReapScans() int64 { return n.reapScans }

// AddResource registers a resource. Names must be unique.
func (n *Network) AddResource(name string, cap units.Bandwidth) *Resource {
	if _, dup := n.resIndex[name]; dup {
		panic(fmt.Sprintf("flownet: duplicate resource %q", name))
	}
	r := &Resource{Name: name, net: n, capacity: float64(cap), regIdx: len(n.res)}
	n.resIndex[name] = r
	n.res = append(n.res, r)
	return r
}

// Resource looks up a resource by name, or nil.
func (n *Network) Resource(name string) *Resource { return n.resIndex[name] }

// SetCapacity changes a resource's bandwidth effective now. Rates of all
// flows are re-derived immediately. Setting the current capacity again is a
// no-op: the existing allocation is reused unchanged.
func (n *Network) SetCapacity(r *Resource, cap units.Bandwidth) {
	if r.capacity == float64(cap) {
		return
	}
	r.capacity = float64(cap)
	r.capDirty = true
	n.markDirty(r)
	n.dirtyRates()
}

// Start launches a flow at the current time.
func (n *Network) Start(label string, size units.Bytes, data any, route ...*Resource) *Flow {
	return n.StartAt(label, size, n.now, data, route...)
}

// StartAt schedules a flow to become active at time at (>= now). Use this to
// model fixed access latencies (SSD read latency, fault-handling latency)
// preceding the bandwidth-bound part of a transfer.
func (n *Network) StartAt(label string, size units.Bytes, at units.Time, data any, route ...*Resource) *Flow {
	if len(route) == 0 {
		panic("flownet: flow with empty route")
	}
	if at < n.now {
		at = n.now
	}
	n.nextID++
	f := &Flow{
		ID:        n.nextID,
		Label:     label,
		Size:      size,
		Data:      data,
		Owner:     -1,
		StartAt:   at,
		net:       n,
		route:     route,
		remaining: float64(size),
	}
	if f.remaining <= 0 {
		// Zero-byte flows complete instantly at their start time.
		f.remaining = 0
	}
	if at <= n.now {
		n.activate(f)
	} else {
		heap.Push(&n.dormant, f)
		n.nextEvOK = false
	}
	return f
}

func (n *Network) activate(f *Flow) {
	f.active = true
	f.segIdx = n.segTop()
	f.actIdx = len(n.active)
	n.active = append(n.active, f)
	n.attachFlow(f)
	n.noteAttach(f, true)
	n.markRouteDirty(f.route)
	n.dirtyRates()
}

// attachFlow registers f on each route resource's flow list (no-op until
// the scoped recompute enables adjacency).
func (n *Network) attachFlow(f *Flow) {
	if !n.adjacency {
		return
	}
	if cap(f.resSlot) < len(f.route) {
		if len(f.route) <= len(f.slotBuf) {
			f.resSlot = f.slotBuf[:]
		} else {
			f.resSlot = make([]int32, len(f.route))
		}
	}
	f.resSlot = f.resSlot[:len(f.route)]
	for k, r := range f.route {
		f.resSlot[k] = int32(len(r.flows))
		r.flows = append(r.flows, f)
	}
}

// detachFlow swap-removes f from each route resource's flow list, fixing
// the displaced flow's slot. A route may name the same resource twice; the
// slot value disambiguates which of the displaced flow's entries moved.
func (n *Network) detachFlow(f *Flow) {
	if !n.adjacency {
		return
	}
	for k, r := range f.route {
		s := f.resSlot[k]
		last := int32(len(r.flows) - 1)
		if moved := r.flows[last]; s != last {
			r.flows[s] = moved
			for k2, r2 := range moved.route {
				if r2 == r && moved.resSlot[k2] == last {
					moved.resSlot[k2] = s
					break
				}
			}
		}
		r.flows[last] = nil
		r.flows = r.flows[:last]
	}
}

// segTop is the absolute index of the newest progress segment boundary
// (whose time always equals now).
func (n *Network) segTop() int64 { return n.segBase + int64(len(n.segLog)) - 1 }

// NextEvent reports the earliest time at which the network's state changes on
// its own: a dormant flow activates or an active flow completes. Returns
// Forever when nothing is pending.
func (n *Network) NextEvent() units.Time {
	if n.nextEvOK {
		return n.nextEvCache
	}
	n.flushRates()
	next := units.Forever
	if len(n.dormant) > 0 {
		next = units.MinTime(next, n.dormant[0].StartAt)
	}
	next = units.MinTime(next, n.minCompletion())
	n.nextEvCache = next
	n.nextEvOK = true
	return next
}

// completionSlack bounds how far a stored completion time can drift from
// the same flow's completion time re-evaluated at a later clock value. The
// two differ only by float64 rounding around the ceil boundary (at most
// ±1ns for any sane horizon) plus one more for the ceil itself.
const completionSlack = 4

// stale reports whether a heap entry no longer represents its flow: the
// flow completed, or a rate change pushed a newer-generation entry.
func (e compEntry) stale() bool { return !e.f.active || e.gen != e.f.compGen }

// dropStaleTop removes superseded entries from the heap top until the
// minimum entry is valid (or the heap is empty).
func (n *Network) dropStaleTop() {
	for len(n.comp) > 0 && n.comp[0].stale() {
		n.comp.pop()
	}
}

// minCompletion returns min over active flows of completionTime evaluated
// now — exactly the value a linear scan would produce. The heap keys are
// completion times stored when the flow's rate last changed; they are
// within completionSlack of the current value, so the true minimum is found
// by re-evaluating every valid candidate whose stored key is within the
// slack of the best current value seen so far.
func (n *Network) minCompletion() units.Time {
	if !n.heapMode {
		// Below the heap threshold (or idle): scan directly.
		best := units.Forever
		for _, f := range n.active {
			best = units.MinTime(best, n.completionTime(f))
		}
		return best
	}
	n.dropStaleTop()
	if len(n.comp) == 0 {
		return units.Forever
	}
	if n.comp[0].at == units.Forever {
		// All keys at or past the heap minimum are Forever; rates have not
		// changed since they were stored, so every flow is still stalled.
		return units.Forever
	}
	best := units.Forever
	scratch := n.compScratch[:0]
	for len(n.comp) > 0 {
		threshold := units.Forever
		if best < units.Forever-completionSlack {
			threshold = best + completionSlack
		}
		if n.comp[0].at > threshold {
			break
		}
		e := n.comp.pop()
		if e.stale() {
			continue
		}
		e.at = n.completionTime(e.f)
		scratch = append(scratch, e)
		if e.at < best {
			best = e.at
		}
	}
	for _, e := range scratch {
		n.comp.push(e)
	}
	n.compScratch = scratch[:0]
	return best
}

// Idle reports whether no flows are active or pending.
func (n *Network) Idle() bool { return len(n.active) == 0 && len(n.dormant) == 0 }

func (n *Network) completionTime(f *Flow) units.Time {
	n.settleFlow(f)
	if f.remaining < 0.5 {
		// At or below the completion threshold: finishes at the next reap.
		// (The eager path never evaluates a live flow in this band — reap
		// runs before any completion-time query — so this matches it.)
		return n.now
	}
	if f.rate <= 0 {
		return units.Forever
	}
	secs := f.remaining / f.rate
	d := units.Duration(math.Ceil(secs * float64(units.Second)))
	if d < 1 {
		d = 1
	}
	return n.now + d
}

// AdvanceTo moves the clock to t, processing flow activations and
// completions in chronological order, and returns the flows that completed
// in (previous now, t], ordered by completion time. t must be >= Now().
// The returned slice is reused by the next AdvanceTo call.
func (n *Network) AdvanceTo(t units.Time) []*Flow {
	if t < n.now {
		panic(fmt.Sprintf("flownet: AdvanceTo(%v) before now=%v", t, n.now))
	}
	n.doneBuf = n.doneBuf[:0]
	for {
		e := n.NextEvent()
		if e > t {
			break
		}
		n.step(e)
	}
	n.progress(t)
	n.reap()
	return n.doneBuf
}

// AdvanceEventwise moves the clock to t like AdvanceTo, but hands each
// batch of completions to deliver at the moment it lands rather than
// collecting everything until t — so callers can react (start new flows,
// change capacities) at event times. deliver runs once per internal event,
// possibly with an empty batch (a dormant-flow activation); flows or
// capacity changes it introduces before t are processed in order.
func (n *Network) AdvanceEventwise(t units.Time, deliver func(done []*Flow)) {
	for {
		e := n.NextEvent()
		if e > t {
			break
		}
		n.deferSettle = true
		done := n.AdvanceTo(e)
		n.deferSettle = false
		deliver(done)
		n.settle()
	}
	// The final advance normally completes nothing, but a flow whose
	// remaining bytes round below the completion threshold at t can still
	// finish here — deliver those too rather than dropping them.
	n.deferSettle = true
	done := n.AdvanceTo(t)
	n.deferSettle = false
	if len(done) > 0 {
		deliver(done)
	}
	n.settle()
}

// settle closes a deferred completion batch: if every completed flow was
// replaced in place by Succeed and no recompute intervened, the active route
// multiset is unchanged and the rates in force are already the unique
// max-min allocation — the whole event cost no recompute. Any other outcome
// (a chunk train ended, a fetch blocked on memory, a capacity change, a new
// or activated flow) re-derives rates once, exactly as the per-flow path
// would have.
func (n *Network) settle() {
	if !n.pendingSettle {
		return
	}
	n.pendingSettle = false
	if !n.ratesDirty && n.recomputes == n.reapGen && n.succeededN == n.reapedN {
		n.successions += int64(n.succeededN)
		return
	}
	n.dirtyRates()
}

// Succeed replaces a just-completed flow with its successor in place: same
// route, same owner, same payload, active immediately at the current clock
// with no setup latency. It must be called from within an AdvanceEventwise
// delivery callback, on a flow of the batch being delivered. When the whole
// batch is succeeded this way the event skips rate recomputation entirely
// (the route multiset is unchanged, so the max-min allocation is too); in
// every other situation the network falls back to a full re-derivation, so
// semantics never depend on the fast path firing. The flow object is reused;
// it carries a fresh ID, Size, StartAt, and remaining byte count, exactly as
// a StartAt of the successor would have produced.
func (n *Network) Succeed(f *Flow, size units.Bytes) *Flow {
	if !f.done || f.active {
		panic("flownet: Succeed on a flow that has not completed")
	}
	n.nextID++
	f.ID = n.nextID
	f.Size = size
	f.remaining = float64(size)
	if f.remaining < 0 {
		f.remaining = 0
	}
	f.done = false
	f.active = true
	f.StartAt = n.now
	f.CompletedAt = 0
	f.segIdx = n.segTop()
	f.actIdx = len(n.active)
	n.active = append(n.active, f)
	n.attachFlow(f)
	if !n.eager {
		// Re-enter the successor into the aggregate service rates its
		// completion just left (the rate carries over; settle re-derives if
		// the batch turns out impure).
		for _, r := range f.route {
			n.fold(r)
			r.aggRate += f.rate
			r.aggN++
		}
	}
	n.nextEvOK = false
	if n.pendingSettle {
		// Deferred window: keep the predecessor's rate (identical by max-min
		// uniqueness if the batch stays pure; otherwise settle re-derives).
		// The succession is transparent to the fill trace — same flow object,
		// same route, same rate, completion entry pushed below — so the
		// predecessor's detach record is cancelled and no attach is made.
		// That transparency only holds while the completion's detach record
		// is still pending. It can already be gone: a recompute inside the
		// delivery window (a Rate/NextEvent query after the callback changed
		// something) consumed it — the trace was re-derived without the
		// completed predecessor — or the predecessor activated in this same
		// window and noteDetach annihilated the attach/detach pair, so no
		// trace ever saw the flow. Either way the successor must re-enter
		// the delta as the arrival it is (non-fresh: the aggregate re-entry
		// above already counted it), or it would run invisible to every
		// future frontier reconstruction.
		// And since that recompute may have re-derived the allocation
		// without the predecessor, the carried rate is no longer protected
		// by max-min uniqueness: the route must be marked dirty so the
		// scoped fallback paths revisit this component when settle
		// re-derives.
		if f.detachRec > 0 {
			n.cancelDetach(f)
		} else {
			n.noteAttach(f, false)
			n.markRouteDirty(f.route)
		}
		n.succeededN++
		if n.heapMode {
			f.compGen++
			f.inComp = true
			n.comp.push(compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
		} else {
			f.inComp = false
		}
		return f
	}
	// Outside a deferred delivery (plain AdvanceTo callers): equivalent to
	// starting the successor normally. The predecessor's detach record stays
	// and a (non-fresh: the aggregate re-entry above already counted it)
	// attach record joins it, so a frontier refill re-derives — and re-keys —
	// the successor like any other arrival.
	f.compGen++
	f.inComp = false
	n.noteAttach(f, false)
	n.markRouteDirty(f.route)
	n.dirtyRates()
	return f
}

// step advances exactly to internal event time e, handling activations and
// completions there. reap already re-derives rates when flows finish, so a
// second recompute is only needed if dormant flows activated afterwards.
func (n *Network) step(e units.Time) {
	n.progress(e)
	n.reap()
	activated := false
	for len(n.dormant) > 0 && n.dormant[0].StartAt <= n.now {
		f := heap.Pop(&n.dormant).(*Flow)
		f.active = true
		f.segIdx = n.segTop()
		f.actIdx = len(n.active)
		n.active = append(n.active, f)
		n.attachFlow(f)
		n.noteAttach(f, true)
		n.markRouteDirty(f.route)
		activated = true
	}
	if activated {
		n.dirtyRates()
	}
}

// progress moves the clock to to. On the lazy path this only records the
// segment boundary — O(1) per event; per-flow byte deduction is deferred to
// settlement points (rate change, completion, query). The eager reference
// path transfers bytes on every active flow immediately.
func (n *Network) progress(to units.Time) {
	if to <= n.now {
		return
	}
	n.flushRates()
	n.nextEvOK = false
	dt := (to - n.now).Seconds()
	if n.eager {
		n.progressTouches += int64(len(n.active))
		for _, f := range n.active {
			if f.rate <= 0 {
				continue
			}
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, r := range f.route {
				r.served += moved
			}
		}
		n.now = to
		return
	}
	n.now = to
	n.segLog = append(n.segLog, segment{at: to, dt: dt})
	if len(n.segLog) >= segLogCompactLimit {
		n.compactSegLog()
	}
}

// segLogCompactLimit bounds the retained segment log. Compaction settles
// every active flow — work each would do anyway at its next settlement
// point (a (flow, segment) pair is replayed at most once) — and collapses
// the log to its newest boundary.
const segLogCompactLimit = 1024

func (n *Network) compactSegLog() {
	for _, f := range n.active {
		n.settleFlow(f)
	}
	last := n.segLog[len(n.segLog)-1]
	n.segBase += int64(len(n.segLog)) - 1
	n.segLog = n.segLog[:1]
	n.segLog[0] = segment{at: last.at}
}

// settleFlow brings f's remaining byte count up to the current clock by
// replaying the per-segment rate×dt deductions the eager path would have
// performed between f's last settlement point and now, at the flow's
// current rate (constant across its pending segments by construction:
// every rate change settles the flow with the outgoing rate first — see
// the post-fill settle loops in recompute).
func (n *Network) settleFlow(f *Flow) { n.settleFlowAt(f, f.rate) }

// settleFlowAt replays f's pending segments at the given rate — the same
// float operations in the same order as the eager per-event loop, hence
// bit-identical remaining values (the FP replay rule; one fused
// rate×elapsed multiply would not be).
func (n *Network) settleFlowAt(f *Flow, rate float64) {
	top := n.segTop()
	if f.segIdx >= top || !f.active {
		return
	}
	if rate <= 0 {
		// No bytes moved; the eager loop skips rate-0 flows entirely.
		f.segIdx = top
		return
	}
	segs := n.segLog[f.segIdx-n.segBase:]
	n.progressTouches += int64(len(segs) - 1)
	rem := f.remaining
	for _, s := range segs[1:] {
		moved := rate * s.dt
		if moved > rem {
			moved = rem
		}
		rem -= moved
	}
	exact := f.remaining - rem
	f.remaining = rem
	f.segIdx = top
	// Reconcile the route's integrated byte counts with the exact
	// per-segment sum: the aggregate integral accrued the rate over the
	// whole span in fused terms, but clamping near completion moves fewer
	// bytes.
	if corr := exact - rate*(n.now-segs[0].at).Seconds(); corr != 0 {
		for _, r := range f.route {
			n.fold(r)
			r.served += corr
		}
	}
}

// fold materializes r's served-byte integral up to now under the current
// aggregate rate.
func (n *Network) fold(r *Resource) {
	if r.lastFold < n.now {
		if r.aggRate != 0 {
			r.served += r.aggRate * (n.now - r.lastFold).Seconds()
		}
		r.lastFold = n.now
	}
}

// rebuildAggregates re-derives each busy resource's aggregate service rate
// after a fill. Folding first materializes the integral up to now under the
// outgoing rates; the re-summation runs over n.active in order, so the
// global and component-decomposed fills produce identical aggregates.
func (n *Network) rebuildAggregates(busy []*Resource) {
	if n.eager {
		return
	}
	for _, r := range busy {
		n.fold(r)
		r.aggRate = 0
		r.aggN = 0
	}
	for _, f := range n.active {
		for _, r := range f.route {
			r.aggRate += f.rate
			r.aggN++
		}
	}
}

// reap removes finished flows from the active set (remaining below half a
// byte counts as finished, absorbing float error), appending them to
// doneBuf ordered by flow ID within the batch. In heap mode the candidates
// come from the completion index — cost proportional to flows actually near
// completion; below the heap threshold, and on the eager reference path,
// every active flow is scanned.
func (n *Network) reap() {
	start := len(n.doneBuf)
	if n.heapMode && !n.eager {
		n.reapHeap()
	} else {
		n.reapScan()
	}
	if done := n.doneBuf[start:]; len(done) > 0 {
		if n.deferSettle {
			// Conveyor window: leave rates as they are; settle() re-derives
			// after delivery unless every completion is succeeded in place.
			// reapGen is pinned at the first batch of the window, so any
			// intervening recompute (a dormant activation, a second reap)
			// disqualifies the fast path for the whole window.
			if !n.pendingSettle {
				n.pendingSettle = true
				n.reapGen = n.recomputes
				n.reapedN, n.succeededN = 0, 0
			}
			n.reapedN += len(done)
		} else {
			n.dirtyRates()
		}
		n.nextEvOK = false
		// Order the batch by flow ID. Insertion sort: batches are almost
		// always one or two flows, and this avoids sort.Slice's closure and
		// swapper allocations on the per-event path.
		for i := 1; i < len(done); i++ {
			f := done[i]
			j := i - 1
			for j >= 0 && done[j].ID > f.ID {
				done[j+1] = done[j]
				j--
			}
			done[j+1] = f
		}
	}
}

// reapScan examines every active flow for completion, compacting the
// active set in place — the reference path, and the direct one while the
// completion heap is down.
func (n *Network) reapScan() {
	n.reapScans += int64(len(n.active))
	kept := n.active[:0]
	for _, f := range n.active {
		n.settleFlow(f)
		if f.remaining < 0.5 {
			n.finish(f)
		} else {
			f.actIdx = len(kept)
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = kept
}

// reapSlack is how far past the clock reap looks into the completion heap
// for candidates, in nanoseconds. A stored key can sit later than the
// moment the flow's remaining bytes cross the half-byte completion
// threshold by up to completionSlack of float drift plus 0.5/rate seconds
// of ceil headroom; 256ns covers every rate above ~2 MB/s — far below any
// allocation this simulator produces — so the heap-driven reap completes
// flows at exactly the events the scanning reference would.
const reapSlack = 256

// reapHeap pops completion candidates from the heap: every entry keyed at
// or before now+reapSlack is settled and either finished or re-keyed with
// its freshly evaluated completion time.
func (n *Network) reapHeap() {
	if len(n.comp) == 0 {
		return
	}
	limit := n.now + reapSlack
	scratch := n.reapScratch[:0]
	for len(n.comp) > 0 && n.comp[0].at <= limit {
		e := n.comp.pop()
		if e.stale() {
			continue
		}
		n.reapScans++
		n.settleFlow(e.f)
		if e.f.remaining < 0.5 {
			n.removeActive(e.f)
			n.finish(e.f)
		} else {
			e.at = n.completionTime(e.f)
			scratch = append(scratch, e)
		}
	}
	for _, e := range scratch {
		n.comp.push(e)
	}
	n.reapScratch = scratch[:0]
}

// finish marks f completed at the current clock, retires it from the
// aggregate service rates, and appends it to doneBuf. The caller removes it
// from the active set.
func (n *Network) finish(f *Flow) {
	f.remaining = 0
	f.done = true
	f.active = false
	f.inComp = false
	f.CompletedAt = n.now
	n.detachFlow(f)
	n.noteDetach(f)
	n.markRouteDirty(f.route)
	if !n.eager {
		for _, r := range f.route {
			n.fold(r)
			r.aggRate -= f.rate
			if r.aggN--; r.aggN == 0 {
				r.aggRate = 0
			}
		}
	}
	n.doneBuf = append(n.doneBuf, f)
}

// Abort cancels a flow that will never complete: its byte accounting is
// settled up to now, it leaves the active set (or the dormant heap if it
// has not started), and it is marked done without ever joining a completion
// batch — its payload is not delivered. The fault-injection layer uses this
// to tear down a crashed tenant's in-flight transfers. Call it between
// AdvanceEventwise calls, never from inside a delivery callback; aborting a
// nil or already-finished flow is a no-op.
func (n *Network) Abort(f *Flow) {
	if f == nil || f.done {
		return
	}
	if !f.active {
		// Dormant: scheduled but not yet started.
		if f.heapIdx >= 0 {
			heap.Remove(&n.dormant, f.heapIdx)
		}
		f.done = true
		f.CompletedAt = n.now
		n.nextEvOK = false
		return
	}
	n.settleFlow(f)
	n.removeActive(f)
	f.done = true
	f.active = false
	f.inComp = false
	f.CompletedAt = n.now
	n.detachFlow(f)
	n.noteDetach(f)
	n.markRouteDirty(f.route)
	if !n.eager {
		for _, r := range f.route {
			n.fold(r)
			r.aggRate -= f.rate
			if r.aggN--; r.aggN == 0 {
				r.aggRate = 0
			}
		}
	}
	n.dirtyRates()
}

// removeActive swap-removes f from the active set. The fill's results do
// not depend on active order (each round's share is a pure function of the
// busy resources, and every flow frozen in a round subtracts the same
// value), and completion batches are sorted by ID, so reordering here is
// unobservable.
func (n *Network) removeActive(f *Flow) {
	i, last := f.actIdx, len(n.active)-1
	n.active[i] = n.active[last]
	n.active[i].actIdx = i
	n.active[last] = nil
	n.active = n.active[:last]
}

// recompute derives max-min fair rates for all active flows by progressive
// filling: repeatedly find the most constrained resource, give its flows
// their equal share, freeze them, and remove that capacity. Small active
// sets run the direct global fill; larger ones are decomposed into connected
// components of the flow/resource graph (components.go), where components
// untouched since the last recompute keep their allocation verbatim and
// dirty components fill independently — bit-identical to the global fill,
// because the max-min allocation factors across components. Either way the
// completion index is re-keyed only for flows whose rate actually changed.
func (n *Network) recompute() {
	n.recomputes++
	n.nextEvOK = false
	touched := n.active
	if n.tryFrontier() {
		// The whole delta fell inside the traced component: the frontier
		// refill re-derived only the suffix at or above the restart level
		// (fill.go); touched holds exactly the refilled flows.
		touched = n.touched
	} else if len(n.active) > smallFillLimit && !n.forceGlobalFill {
		n.recomputeComponents()
		touched = n.touched
	} else {
		// The direct global fill re-derives everything and records nothing;
		// any recorded trace is stale afterwards.
		n.invalidateTrace()
		n.recomputeGlobal()
	}
	for _, r := range n.dirtyRes {
		r.dirty = false
		r.capDirty = false
	}
	n.dirtyRes = n.dirtyRes[:0]
	n.clearDeltas()
	n.rekeyCompletions(touched)
	// Restore the steady-state invariant prevRate == rate, so the next
	// scoped recompute and re-key can trust that untouched flows carry
	// unchanged rates (and valid completion keys).
	for _, f := range touched {
		f.prevRate = f.rate
	}
}

// smallFillLimit is the active-flow count at or below which recompute runs
// the direct global fill: component bookkeeping only pays off once several
// independent groups of flows exist.
const smallFillLimit = 8

// recomputeGlobal is the direct progressive-filling pass over every active
// flow — the reference the component decomposition must match bit for bit.
func (n *Network) recomputeGlobal() {
	n.busyStamp++
	busy := n.busyScratch[:0]
	unfrozen := 0
	for _, f := range n.active {
		f.frozen = false
		f.prevRate = f.rate
		f.rate = 0
		unfrozen++
		for _, r := range f.route {
			if r.busyStamp != n.busyStamp {
				r.busyStamp = n.busyStamp
				r.avail = r.capacity
				r.count = 0
				busy = append(busy, r)
			}
			r.count++
		}
	}
	// Order busy resources by registration index so bottleneck ties break
	// exactly as a scan over every registered resource would. Insertion
	// sort: the list is small and collected in near-registration order, and
	// this avoids sort.Slice's closure allocation on the per-event path.
	for i := 1; i < len(busy); i++ {
		r := busy[i]
		j := i - 1
		for j >= 0 && busy[j].regIdx > r.regIdx {
			busy[j+1] = busy[j]
			j--
		}
		busy[j+1] = r
	}
	n.busyScratch = busy[:0]
	for unfrozen > 0 {
		// Find the bottleneck resource.
		var bottleneck *Resource
		share := math.Inf(1)
		n.fillRounds++
		n.fillResScans += int64(len(busy))
		for _, r := range busy {
			if r.count == 0 {
				continue
			}
			s := r.avail / float64(r.count)
			if s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			// No unfrozen flow traverses any resource; cannot happen
			// because routes are non-empty, but guard against it.
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range n.active {
			if f.frozen || !flowUses(f, bottleneck) {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
	}
	// Settle the flows whose rate the fill changed, replaying the elapsed
	// segments at the outgoing rate; unchanged flows keep their settlement
	// debt (their replay stays valid at the rate they still have).
	for _, f := range n.active {
		if f.rate != f.prevRate {
			n.settleFlowAt(f, f.prevRate)
		}
	}
	n.rebuildAggregates(busy)
}

// rekeyCompletions refreshes the completion index after a recompute. Tiny
// active sets skip the heap entirely — a direct scan is cheaper than
// maintaining it; above the threshold the heap is persistent and only flows
// whose rate changed get a new (generation-bumped) entry. Only the
// recompute's touched flows are examined: untouched flows kept their rate
// (prevRate == rate between recomputes), so their absolute completion
// times — and heap entries — are still valid.
func (n *Network) rekeyCompletions(touched []*Flow) {
	if len(n.active) <= compHeapThreshold {
		if n.heapMode {
			n.heapMode = false
			n.comp = n.comp[:0]
			for _, f := range n.active {
				f.inComp = false
			}
		}
		return
	}
	changed := 0
	if n.heapMode {
		for _, f := range touched {
			if !f.inComp || f.rate != f.prevRate {
				changed++
			}
		}
	}
	// When a recompute moved most rates (one shared bottleneck ripples to
	// every flow — the common single-machine case), a wholesale rebuild is
	// cheaper than per-entry pushes into a garbage-laden heap: heap.init is
	// O(F) and leaves no stale entries. The incremental path pays off when
	// ripples are sparse — a fleet's flows on disjoint PCIe links keep
	// their keys. The rebuild also runs when lazily discarded garbage has
	// accumulated past a small multiple of the live entries.
	if !n.heapMode || 4*changed >= len(n.active) || len(n.comp) > 4*len(n.active)+64 {
		n.heapMode = true
		n.comp = n.comp[:0]
		for _, f := range n.active {
			f.compGen++
			f.inComp = true
			n.comp = append(n.comp, compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
		}
		n.comp.init()
		return
	}
	for _, f := range touched {
		if f.inComp && f.rate == f.prevRate {
			continue // absolute completion time unchanged; entry still valid
		}
		f.compGen++
		f.inComp = true
		n.comp.push(compEntry{f: f, at: n.completionTime(f), gen: f.compGen})
	}
}

// compHeapThreshold is the active-flow count above which NextEvent switches
// from a direct scan to the completion-time heap.
const compHeapThreshold = 12

func flowUses(f *Flow, r *Resource) bool {
	for _, rr := range f.route {
		if rr == r {
			return true
		}
	}
	return false
}

// dormantHeap orders scheduled-but-not-started flows by start time.
type dormantHeap []*Flow

func (h dormantHeap) Len() int { return len(h) }
func (h dormantHeap) Less(i, j int) bool {
	if h[i].StartAt != h[j].StartAt {
		return h[i].StartAt < h[j].StartAt
	}
	return h[i].ID < h[j].ID
}
func (h dormantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *dormantHeap) Push(x any) {
	f := x.(*Flow)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}
func (h *dormantHeap) Pop() any {
	old := *h
	f := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	f.heapIdx = -1 // no longer in the heap
	return f
}

// Package flownet simulates bandwidth sharing between concurrent data
// transfers as a fluid-flow network with max-min fair allocation.
//
// A Network holds named Resources (e.g. "pcie-in", "ssd-read"), each with a
// capacity in bytes/second. A Flow is a transfer of a fixed byte count routed
// through one or more resources; its instantaneous rate is the max-min fair
// share across every resource on its route (progressive filling). The network
// is advanced event-by-event: rates stay piecewise constant between flow
// arrivals, completions, and capacity changes.
//
// This models the paper's interconnect topology: a GPU↔SSD migration
// traverses both the SSD channel and the GPU's PCIe link, so saturating
// either throttles it, while GPU↔host migrations contend only on PCIe.
package flownet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"g10sim/internal/units"
)

// Resource is a shared link or device channel with finite bandwidth.
type Resource struct {
	Name string
	// BytesServed accumulates all bytes that have traversed this resource.
	BytesServed float64

	capacity float64 // bytes/sec
	// scratch fields used by the allocator.
	avail float64
	count int
}

// Capacity reports the resource's current bandwidth.
func (r *Resource) Capacity() units.Bandwidth { return units.Bandwidth(r.capacity) }

// Flow is one transfer in flight (or scheduled to start).
type Flow struct {
	ID    int64
	Label string
	// Size is the total byte count of the transfer.
	Size units.Bytes
	// Data is an arbitrary caller payload carried to completion handling.
	Data any
	// StartAt is when the flow becomes active (creation time plus any
	// device latency the caller modeled).
	StartAt units.Time
	// CompletedAt is set when the flow finishes.
	CompletedAt units.Time

	route     []*Resource
	remaining float64 // bytes
	rate      float64 // bytes/sec
	active    bool
	done      bool
	heapIdx   int
	frozen    bool // allocator scratch
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Rate reports the flow's current allocated bandwidth.
func (f *Flow) Rate() units.Bandwidth { return units.Bandwidth(f.rate) }

// Remaining reports the bytes not yet transferred.
func (f *Flow) Remaining() units.Bytes { return units.Bytes(math.Ceil(f.remaining)) }

// Route returns the resources the flow traverses.
func (f *Flow) Route() []*Resource { return f.route }

// Network is a set of resources and the flows traversing them.
type Network struct {
	now      units.Time
	nextID   int64
	resIndex map[string]*Resource
	res      []*Resource
	active   []*Flow
	dormant  dormantHeap
}

// New returns an empty network at time zero.
func New() *Network {
	return &Network{resIndex: make(map[string]*Resource)}
}

// Now reports the network clock.
func (n *Network) Now() units.Time { return n.now }

// AddResource registers a resource. Names must be unique.
func (n *Network) AddResource(name string, cap units.Bandwidth) *Resource {
	if _, dup := n.resIndex[name]; dup {
		panic(fmt.Sprintf("flownet: duplicate resource %q", name))
	}
	r := &Resource{Name: name, capacity: float64(cap)}
	n.resIndex[name] = r
	n.res = append(n.res, r)
	return r
}

// Resource looks up a resource by name, or nil.
func (n *Network) Resource(name string) *Resource { return n.resIndex[name] }

// SetCapacity changes a resource's bandwidth effective now. Rates of all
// flows are re-derived immediately.
func (n *Network) SetCapacity(r *Resource, cap units.Bandwidth) {
	r.capacity = float64(cap)
	n.recompute()
}

// Start launches a flow at the current time.
func (n *Network) Start(label string, size units.Bytes, data any, route ...*Resource) *Flow {
	return n.StartAt(label, size, n.now, data, route...)
}

// StartAt schedules a flow to become active at time at (>= now). Use this to
// model fixed access latencies (SSD read latency, fault-handling latency)
// preceding the bandwidth-bound part of a transfer.
func (n *Network) StartAt(label string, size units.Bytes, at units.Time, data any, route ...*Resource) *Flow {
	if len(route) == 0 {
		panic("flownet: flow with empty route")
	}
	if at < n.now {
		at = n.now
	}
	n.nextID++
	f := &Flow{
		ID:        n.nextID,
		Label:     label,
		Size:      size,
		Data:      data,
		StartAt:   at,
		route:     route,
		remaining: float64(size),
	}
	if f.remaining <= 0 {
		// Zero-byte flows complete instantly at their start time.
		f.remaining = 0
	}
	if at <= n.now {
		n.activate(f)
	} else {
		heap.Push(&n.dormant, f)
	}
	return f
}

func (n *Network) activate(f *Flow) {
	f.active = true
	n.active = append(n.active, f)
	n.recompute()
}

// NextEvent reports the earliest time at which the network's state changes on
// its own: a dormant flow activates or an active flow completes. Returns
// Forever when nothing is pending.
func (n *Network) NextEvent() units.Time {
	next := units.Forever
	if len(n.dormant) > 0 {
		next = units.MinTime(next, n.dormant[0].StartAt)
	}
	for _, f := range n.active {
		next = units.MinTime(next, n.completionTime(f))
	}
	return next
}

// Idle reports whether no flows are active or pending.
func (n *Network) Idle() bool { return len(n.active) == 0 && len(n.dormant) == 0 }

func (n *Network) completionTime(f *Flow) units.Time {
	if f.remaining <= 0 {
		return n.now
	}
	if f.rate <= 0 {
		return units.Forever
	}
	secs := f.remaining / f.rate
	d := units.Duration(math.Ceil(secs * float64(units.Second)))
	if d < 1 {
		d = 1
	}
	return n.now + d
}

// AdvanceTo moves the clock to t, processing flow activations and
// completions in chronological order, and returns the flows that completed
// in (previous now, t], ordered by completion time. t must be >= Now().
func (n *Network) AdvanceTo(t units.Time) []*Flow {
	if t < n.now {
		panic(fmt.Sprintf("flownet: AdvanceTo(%v) before now=%v", t, n.now))
	}
	var completed []*Flow
	for {
		e := n.NextEvent()
		if e > t {
			break
		}
		completed = append(completed, n.step(e)...)
	}
	n.progress(t)
	completed = append(completed, n.reap()...)
	return completed
}

// step advances exactly to internal event time e, handling activations and
// completions there.
func (n *Network) step(e units.Time) []*Flow {
	n.progress(e)
	completed := n.reap()
	changed := len(completed) > 0
	for len(n.dormant) > 0 && n.dormant[0].StartAt <= n.now {
		f := heap.Pop(&n.dormant).(*Flow)
		f.active = true
		n.active = append(n.active, f)
		changed = true
	}
	if changed {
		n.recompute()
	}
	return completed
}

// progress transfers bytes on every active flow for the interval [now, to].
func (n *Network) progress(to units.Time) {
	if to <= n.now {
		return
	}
	dt := (to - n.now).Seconds()
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, r := range f.route {
			r.BytesServed += moved
		}
	}
	n.now = to
}

// reap removes finished flows from the active set (remaining below half a
// byte counts as finished, absorbing float error) and returns them.
func (n *Network) reap() []*Flow {
	var done []*Flow
	kept := n.active[:0]
	for _, f := range n.active {
		if f.remaining < 0.5 {
			f.remaining = 0
			f.done = true
			f.active = false
			f.CompletedAt = n.now
			done = append(done, f)
		} else {
			kept = append(kept, f)
		}
	}
	n.active = kept
	if len(done) > 0 {
		n.recompute()
		sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	}
	return done
}

// recompute derives max-min fair rates for all active flows by progressive
// filling: repeatedly find the most constrained resource, give its flows
// their equal share, freeze them, and remove that capacity.
func (n *Network) recompute() {
	unfrozen := 0
	for _, r := range n.res {
		r.avail = r.capacity
		r.count = 0
	}
	for _, f := range n.active {
		f.frozen = false
		f.rate = 0
		unfrozen++
		for _, r := range f.route {
			r.count++
		}
	}
	for unfrozen > 0 {
		// Find the bottleneck resource.
		var bottleneck *Resource
		share := math.Inf(1)
		for _, r := range n.res {
			if r.count == 0 {
				continue
			}
			s := r.avail / float64(r.count)
			if s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			// No unfrozen flow traverses any resource; cannot happen
			// because routes are non-empty, but guard against it.
			break
		}
		if share < 0 {
			share = 0
		}
		for _, f := range n.active {
			if f.frozen || !flowUses(f, bottleneck) {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, r := range f.route {
				r.avail -= share
				if r.avail < 0 {
					r.avail = 0
				}
				r.count--
			}
		}
	}
}

func flowUses(f *Flow, r *Resource) bool {
	for _, rr := range f.route {
		if rr == r {
			return true
		}
	}
	return false
}

// dormantHeap orders scheduled-but-not-started flows by start time.
type dormantHeap []*Flow

func (h dormantHeap) Len() int { return len(h) }
func (h dormantHeap) Less(i, j int) bool {
	if h[i].StartAt != h[j].StartAt {
		return h[i].StartAt < h[j].StartAt
	}
	return h[i].ID < h[j].ID
}
func (h dormantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *dormantHeap) Push(x any) {
	f := x.(*Flow)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}
func (h *dormantHeap) Pop() any {
	old := *h
	f := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return f
}

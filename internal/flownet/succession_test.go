package flownet

import (
	"testing"

	"g10sim/internal/units"
)

// driveTrain advances a chunk train of `chunks` segments of seg bytes each
// on link, replacing each finished segment from the delivery callback —
// with Succeed when succeed is true, with a fresh StartAt otherwise (the
// per-chunk reference). It returns the per-segment completion times.
func driveTrain(n *Network, cur *Flow, seg units.Bytes, chunks int, horizon units.Time, succeed bool) []units.Time {
	var times []units.Time
	started := 1
	n.AdvanceEventwise(horizon, func(done []*Flow) {
		for _, f := range done {
			if f != cur {
				continue
			}
			times = append(times, f.CompletedAt)
			if started < chunks {
				started++
				if succeed {
					cur = n.Succeed(f, seg)
				} else {
					cur = n.StartAt(f.Label, seg, n.Now(), f.Data, f.route...)
				}
			}
		}
	})
	return times
}

// TestSuccessionMatchesChainedFlows: a conveyor train must complete every
// segment at exactly the time a chain of fresh per-segment flows would, and
// move bit-identical byte counts through every resource — in scan mode (few
// flows) and heap mode (many flows) alike.
func TestSuccessionMatchesChainedFlows(t *testing.T) {
	for _, tc := range []struct {
		name       string
		background int
	}{
		{"scan-mode", 2},
		{"heap-mode", 14}, // above compHeapThreshold: exercises the completion heap
	} {
		t.Run(tc.name, func(t *testing.T) {
			const chunks = 8
			seg := units.Bytes(64 * units.MB)
			run := func(succeed bool) ([]units.Time, []float64, int64) {
				n := New()
				link := n.AddResource("link", units.GBps(1))
				side := n.AddResource("side", units.GBps(1))
				for i := 0; i < tc.background; i++ {
					n.Start("bg", 100*units.GB, nil, link, side)
				}
				cur := n.Start("train", seg, nil, link)
				times := driveTrain(n, cur, seg, chunks, 30*units.Second, succeed)
				return times, []float64{link.BytesServed(), side.BytesServed()}, n.Recomputes()
			}
			refTimes, refServed, refRecomputes := run(false)
			convTimes, convServed, convRecomputes := run(true)
			if len(refTimes) != chunks || len(convTimes) != chunks {
				t.Fatalf("completions: reference %d, conveyor %d, want %d", len(refTimes), len(convTimes), chunks)
			}
			for i := range refTimes {
				if refTimes[i] != convTimes[i] {
					t.Errorf("segment %d completed at %v via succession, %v via chained flows", i, convTimes[i], refTimes[i])
				}
			}
			for i := range refServed {
				if refServed[i] != convServed[i] {
					t.Errorf("resource %d served %v bytes via succession, %v via chained flows", i, convServed[i], refServed[i])
				}
			}
			if convRecomputes >= refRecomputes {
				t.Errorf("succession recomputed %d times, chained flows %d — the fast path never fired", convRecomputes, refRecomputes)
			}
		})
	}
}

// TestSuccessionPureTrainSkipsRecompute: while a train is the only thing
// changing, its boundaries cost no rate recomputation at all — the event
// count scales with rate-change points, not chunk count.
func TestSuccessionPureTrainSkipsRecompute(t *testing.T) {
	n := New()
	link := n.AddResource("link", units.GBps(1))
	n.Start("bg", 100*units.GB, nil, link)
	const chunks = 16
	seg := units.Bytes(16 * units.MB)
	cur := n.Start("train", seg, nil, link)
	_ = n.NextEvent() // flush the start-up recompute
	r0 := n.Recomputes()
	times := driveTrain(n, cur, seg, chunks, 10*units.Second, true)
	if len(times) != chunks {
		t.Fatalf("train completed %d segments, want %d", len(times), chunks)
	}
	if got := n.Successions(); got != chunks-1 {
		t.Errorf("successions = %d, want %d (every boundary except the last)", got, chunks-1)
	}
	// Only the train's end — a genuine rate-change point — re-derives rates.
	if delta := n.Recomputes() - r0; delta > 1 {
		t.Errorf("pure train cost %d recomputes; want at most 1 (the final completion)", delta)
	}
}

// TestSuccessionSuppressedByThirdFlowStart: a third flow activating at
// exactly a chunk boundary changes the active set, so the in-place fast
// path must not fire there — rates are re-derived instead.
func TestSuccessionSuppressedByThirdFlowStart(t *testing.T) {
	n := New()
	link := n.AddResource("link", units.GBps(1))
	seg := units.Bytes(units.GB) // alone on the link: exactly 1s per segment
	cur := n.Start("train", seg, nil, link)
	n.StartAt("third", units.GB, units.Second, nil, link) // lands on boundary 1
	boundaries := 0
	n.AdvanceEventwise(1500*units.Millisecond, func(done []*Flow) {
		for _, f := range done {
			if f == cur {
				boundaries++
				cur = n.Succeed(f, seg)
			}
		}
	})
	if boundaries == 0 {
		t.Fatal("train never reached a boundary")
	}
	if got := n.Successions(); got != 0 {
		t.Errorf("succession fired %d times despite a third flow starting mid-train", got)
	}
	// The re-derivation must have split the link between the two flows.
	if r := cur.Rate(); r != units.GBps(0.5) {
		t.Errorf("train rate after third flow joined = %v, want 0.5 GB/s", r)
	}
}

// TestSuccessionSuppressedByThirdFlowCompletion: a third flow finishing in
// the same completion batch as a chunk boundary frees bandwidth, so the
// fast path must not fire — the batch settles with a recompute.
func TestSuccessionSuppressedByThirdFlowCompletion(t *testing.T) {
	n := New()
	link := n.AddResource("link", units.GBps(1))
	seg := units.Bytes(512 * units.MB)
	cur := n.Start("train", seg, nil, link)
	n.Start("third", 512*units.MB, nil, link) // same share, same completion instant
	var times []units.Time
	n.AdvanceEventwise(2*units.Second, func(done []*Flow) {
		for _, f := range done {
			if f != cur {
				continue
			}
			times = append(times, f.CompletedAt)
			if len(times) == 1 {
				cur = n.Succeed(f, seg)
			}
		}
	})
	if got := n.Successions(); got != 0 {
		t.Errorf("succession fired %d times despite a third flow completing mid-train", got)
	}
	if len(times) != 2 {
		t.Fatalf("train completed %d segments, want 2", len(times))
	}
	// Both flows at 0.5 GB/s finish at 1s; the successor then owns the whole
	// link and its 512MB segment takes exactly 0.5s more.
	if times[0] != units.Second || times[1] != 1500*units.Millisecond {
		t.Errorf("segment completions at %v, want [1s 1.5s]", times)
	}
}

// TestSucceedPanicsOnLiveFlow: succeeding a flow that has not completed is
// a caller bug.
func TestSucceedPanicsOnLiveFlow(t *testing.T) {
	n := New()
	link := n.AddResource("link", units.GBps(1))
	f := n.Start("live", units.GB, nil, link)
	defer func() {
		if recover() == nil {
			t.Error("Succeed on a live flow did not panic")
		}
	}()
	n.Succeed(f, units.GB)
}

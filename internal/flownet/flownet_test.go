package flownet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"g10sim/internal/units"
)

func approxTime(t *testing.T, got, want units.Time, tol units.Duration) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Errorf("time = %v, want %v (±%v)", got, want, tol)
	}
}

func TestSingleFlowCompletion(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(16))
	f := n.Start("xfer", 16*units.GB, nil, link)
	done := n.AdvanceTo(2 * units.Second)
	if len(done) != 1 || done[0] != f {
		t.Fatalf("expected the single flow to complete, got %d", len(done))
	}
	approxTime(t, f.CompletedAt, units.Second, units.Microsecond)
	if !f.Done() {
		t.Error("flow not marked done")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two equal flows over one link each get half the bandwidth.
	n := New()
	link := n.AddResource("pcie", units.GBps(10))
	a := n.Start("a", 10*units.GB, nil, link)
	b := n.Start("b", 10*units.GB, nil, link)
	if a.Rate() != b.Rate() {
		t.Fatalf("rates differ: %v vs %v", a.Rate(), b.Rate())
	}
	if got := a.Rate().GBpsValue(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("rate = %v GB/s, want 5", got)
	}
	done := n.AdvanceTo(3 * units.Second)
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	approxTime(t, a.CompletedAt, 2*units.Second, units.Microsecond)
	approxTime(t, b.CompletedAt, 2*units.Second, units.Microsecond)
}

func TestRateIncreasesWhenCompetitorFinishes(t *testing.T) {
	// a: 5GB, b: 15GB over a 10GB/s link. Both run at 5GB/s; a finishes at
	// t=1s; b then runs at 10GB/s and finishes 1s later (total 2s).
	n := New()
	link := n.AddResource("pcie", units.GBps(10))
	a := n.Start("a", 5*units.GB, nil, link)
	b := n.Start("b", 15*units.GB, nil, link)
	done := n.AdvanceTo(5 * units.Second)
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	approxTime(t, a.CompletedAt, 1*units.Second, units.Microsecond)
	approxTime(t, b.CompletedAt, 2*units.Second, 2*units.Microsecond)
}

func TestMultiResourceBottleneck(t *testing.T) {
	// An SSD flow routed through [ssd-read 3.2, pcie 16] is capped at 3.2;
	// a host flow through [pcie 16] takes the rest (12.8).
	n := New()
	pcie := n.AddResource("pcie-in", units.GBps(16))
	ssd := n.AddResource("ssd-read", units.GBps(3.2))
	sf := n.Start("ssd", 32*units.GB, nil, ssd, pcie)
	hf := n.Start("host", 32*units.GB, nil, pcie)
	if got := sf.Rate().GBpsValue(); math.Abs(got-3.2) > 1e-9 {
		t.Errorf("ssd flow rate = %v, want 3.2", got)
	}
	if got := hf.Rate().GBpsValue(); math.Abs(got-12.8) > 1e-9 {
		t.Errorf("host flow rate = %v, want 12.8", got)
	}
}

func TestPCIeSaturationSharesAcrossClasses(t *testing.T) {
	// Two host flows plus one SSD flow on a 6 GB/s PCIe link with a 3.2 GB/s
	// SSD channel: fair share is 2 GB/s each; the SSD channel is not the
	// bottleneck.
	n := New()
	pcie := n.AddResource("pcie-in", units.GBps(6))
	ssd := n.AddResource("ssd-read", units.GBps(3.2))
	f1 := n.Start("h1", units.GB, nil, pcie)
	f2 := n.Start("h2", units.GB, nil, pcie)
	f3 := n.Start("s", units.GB, nil, ssd, pcie)
	for _, f := range []*Flow{f1, f2, f3} {
		if got := f.Rate().GBpsValue(); math.Abs(got-2) > 1e-9 {
			t.Errorf("flow %s rate = %v, want 2", f.Label, got)
		}
	}
}

func TestDormantFlowActivates(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(1))
	f := n.StartAt("late", units.GB, 500*units.Millisecond, nil, link)
	if f.Rate() != 0 {
		t.Fatal("dormant flow has a rate")
	}
	done := n.AdvanceTo(400 * units.Millisecond)
	if len(done) != 0 {
		t.Fatal("flow completed before activating")
	}
	done = n.AdvanceTo(2 * units.Second)
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1", len(done))
	}
	approxTime(t, f.CompletedAt, 1500*units.Millisecond, units.Microsecond)
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(1))
	f := n.Start("zero", 0, nil, link)
	done := n.AdvanceTo(n.Now())
	if len(done) != 1 || done[0] != f {
		t.Fatalf("zero-byte flow did not complete instantly: %d", len(done))
	}
}

func TestZeroCapacityNeverCompletes(t *testing.T) {
	n := New()
	link := n.AddResource("dead", 0)
	n.Start("stuck", units.GB, nil, link)
	if e := n.NextEvent(); e != units.Forever {
		t.Fatalf("NextEvent = %v, want Forever", e)
	}
	done := n.AdvanceTo(10 * units.Second)
	if len(done) != 0 {
		t.Fatal("flow on zero-capacity link completed")
	}
}

func TestSetCapacityMidFlight(t *testing.T) {
	// 10GB at 10GB/s for 0.5s (5GB moved), then capacity drops to 2.5GB/s:
	// remaining 5GB takes 2s more; completion at 2.5s.
	n := New()
	link := n.AddResource("pcie", units.GBps(10))
	f := n.Start("x", 10*units.GB, nil, link)
	n.AdvanceTo(500 * units.Millisecond)
	n.SetCapacity(link, units.GBps(2.5))
	done := n.AdvanceTo(5 * units.Second)
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1", len(done))
	}
	approxTime(t, f.CompletedAt, 2500*units.Millisecond, 2*units.Microsecond)
}

func TestBytesServedAccounting(t *testing.T) {
	n := New()
	pcie := n.AddResource("pcie", units.GBps(16))
	ssd := n.AddResource("ssd", units.GBps(3.2))
	n.Start("s", 2*units.GB, nil, ssd, pcie)
	n.Start("h", 3*units.GB, nil, pcie)
	n.AdvanceTo(100 * units.Second)
	if got := units.Bytes(ssd.BytesServed()); got != 2*units.GB {
		t.Errorf("ssd served %v, want 2GB", got)
	}
	if got := units.Bytes(pcie.BytesServed()); got != 5*units.GB {
		t.Errorf("pcie served %v, want 5GB", got)
	}
}

func TestAdvanceBackwardPanics(t *testing.T) {
	n := New()
	n.AddResource("x", units.GBps(1))
	n.AdvanceTo(units.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backward did not panic")
		}
	}()
	n.AdvanceTo(0)
}

func TestEmptyRoutePanics(t *testing.T) {
	n := New()
	defer func() {
		if recover() == nil {
			t.Fatal("empty route did not panic")
		}
	}()
	n.Start("bad", units.GB, nil)
}

func TestDuplicateResourcePanics(t *testing.T) {
	n := New()
	n.AddResource("x", units.GBps(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate resource did not panic")
		}
	}()
	n.AddResource("x", units.GBps(2))
}

// TestWorkConservation checks the max-min property: whenever any flow wants
// more bandwidth, at least one resource on its route is fully allocated.
func TestWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := New()
		var res []*Resource
		for i := 0; i < 4; i++ {
			res = append(res, n.AddResource(string(rune('a'+i)), units.GBps(1+10*rng.Float64())))
		}
		var flows []*Flow
		for i := 0; i < 8; i++ {
			route := []*Resource{res[rng.Intn(len(res))]}
			if rng.Intn(2) == 0 {
				r2 := res[rng.Intn(len(res))]
				if r2 != route[0] {
					route = append(route, r2)
				}
			}
			flows = append(flows, n.Start("f", units.GB, nil, route...))
		}
		// Sum rates per resource.
		load := map[*Resource]float64{}
		for _, f := range flows {
			for _, r := range f.Route() {
				load[r] += float64(f.Rate())
			}
		}
		for r, l := range load {
			if l > float64(r.Capacity())*(1+1e-9) {
				t.Fatalf("trial %d: resource %s overloaded: %v > %v", trial, r.Name, l, float64(r.Capacity()))
			}
		}
		for _, f := range flows {
			saturated := false
			for _, r := range f.Route() {
				if load[r] >= float64(r.Capacity())*(1-1e-9) {
					saturated = true
				}
			}
			if !saturated {
				t.Fatalf("trial %d: flow has slack on all resources (rate %v)", trial, f.Rate())
			}
		}
	}
}

// TestByteConservationProperty: for random flow sets, the total bytes served
// on a dedicated per-flow resource equal the flow size once complete.
func TestByteConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		n := New()
		shared := n.AddResource("shared", units.GBps(2))
		var total units.Bytes
		for i, s := range sizes {
			sz := units.Bytes(s) * units.MB
			total += sz
			n.Start("f", sz, i, shared)
		}
		n.AdvanceTo(units.Forever - 1)
		got := units.Bytes(math.Round(shared.BytesServed()))
		return got == total && n.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCompletionOrderMatchesSize: over a fair-shared link, smaller flows
// finish no later than larger ones started at the same time.
func TestCompletionOrderMatchesSize(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(8))
	small := n.Start("small", units.GB, nil, link)
	big := n.Start("big", 4*units.GB, nil, link)
	n.AdvanceTo(units.Forever - 1)
	if small.CompletedAt > big.CompletedAt {
		t.Errorf("small finished at %v after big at %v", small.CompletedAt, big.CompletedAt)
	}
}

func TestResourceLookup(t *testing.T) {
	n := New()
	r := n.AddResource("pcie-in", units.GBps(16))
	if n.Resource("pcie-in") != r {
		t.Error("Resource lookup failed")
	}
	if n.Resource("nope") != nil {
		t.Error("missing resource should be nil")
	}
}

func TestManySequentialFlows(t *testing.T) {
	// Start flows back-to-back; clock and ordering must stay consistent.
	n := New()
	link := n.AddResource("pcie", units.GBps(1))
	var last units.Time
	for i := 0; i < 100; i++ {
		f := n.Start("f", 10*units.MB, nil, link)
		done := n.AdvanceTo(n.NextEvent())
		if len(done) != 1 || done[0] != f {
			t.Fatalf("iteration %d: unexpected completions %d", i, len(done))
		}
		if f.CompletedAt < last {
			t.Fatalf("clock went backwards: %v < %v", f.CompletedAt, last)
		}
		last = f.CompletedAt
	}
}

// TestRatesStablePiecewise: between events, a flow's rate must not change;
// AdvanceTo to a mid-interval time preserves allocations exactly.
func TestRatesStablePiecewise(t *testing.T) {
	n := New()
	link := n.AddResource("pcie", units.GBps(10))
	a := n.Start("a", 10*units.GB, nil, link)
	b := n.Start("b", 20*units.GB, nil, link)
	r0a, r0b := a.Rate(), b.Rate()
	n.AdvanceTo(300 * units.Millisecond) // before any completion
	if a.Rate() != r0a || b.Rate() != r0b {
		t.Errorf("rates drifted without an event: %v/%v -> %v/%v", r0a, r0b, a.Rate(), b.Rate())
	}
	// Remaining bytes decreased proportionally to the elapsed time.
	moved := 10*units.GB - a.Remaining()
	want := units.Bytes(float64(r0a) * 0.3)
	diff := moved - want
	if diff < 0 {
		diff = -diff
	}
	if diff > units.MB {
		t.Errorf("flow a moved %v in 300ms at %v, want ~%v", moved, r0a, want)
	}
}

// TestThreeStageRoute: a flow through three resources is capped by the
// narrowest one.
func TestThreeStageRoute(t *testing.T) {
	n := New()
	r1 := n.AddResource("ssd", units.GBps(3.2))
	r2 := n.AddResource("pcie", units.GBps(16))
	r3 := n.AddResource("hostbus", units.GBps(2))
	f := n.Start("bounce", units.GB, nil, r1, r2, r3)
	if got := f.Rate().GBpsValue(); got < 1.99 || got > 2.01 {
		t.Errorf("rate = %v, want 2 (narrowest hop)", got)
	}
}

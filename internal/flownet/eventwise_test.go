package flownet

import (
	"testing"

	"g10sim/internal/units"
)

// TestAdvanceEventwiseDeliversAtEventTimes: completions arrive in the
// callback with the clock standing at their completion time, and reactions
// (new flows started from the callback) are processed before t.
func TestAdvanceEventwiseDeliversAtEventTimes(t *testing.T) {
	n := New()
	r := n.AddResource("link", units.GBps(1))
	n.Start("first", units.GB, nil, r) // ~1s

	var deliveredAt []units.Time
	chained := false
	n.AdvanceEventwise(10*units.Second, func(done []*Flow) {
		for _, f := range done {
			deliveredAt = append(deliveredAt, n.Now())
			if !chained {
				chained = true
				n.Start("second", units.GB, nil, r)
			}
			_ = f
		}
	})
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d completions, want 2 (the chained flow must run before t)", len(deliveredAt))
	}
	if deliveredAt[0] > units.Second+units.Millisecond {
		t.Errorf("first completion delivered at %v, want ~1s (at its event time, not at t)", deliveredAt[0])
	}
	if deliveredAt[1] < 2*units.Second-units.Millisecond || deliveredAt[1] > 2*units.Second+units.Millisecond {
		t.Errorf("chained completion delivered at %v, want ~2s", deliveredAt[1])
	}
	if n.Now() != 10*units.Second {
		t.Errorf("clock at %v, want 10s", n.Now())
	}
	if !n.Idle() {
		t.Error("network not idle after both flows completed")
	}
}

// TestAdvanceEventwiseMatchesAdvanceTo: the same flow set produces the same
// completion set and final clock under both advance styles.
func TestAdvanceEventwiseMatchesAdvanceTo(t *testing.T) {
	build := func() (*Network, []*Flow) {
		n := New()
		a := n.AddResource("a", units.GBps(2))
		b := n.AddResource("b", units.GBps(1))
		flows := []*Flow{
			n.Start("x", units.Bytes(3e8), nil, a),
			n.Start("y", units.Bytes(5e8), nil, a, b),
			n.StartAt("z", units.Bytes(2e8), 100*units.Millisecond, nil, b),
		}
		return n, flows
	}

	n1, f1 := build()
	done1 := append([]*Flow(nil), n1.AdvanceTo(5*units.Second)...)

	n2, f2 := build()
	var done2 []*Flow
	n2.AdvanceEventwise(5*units.Second, func(done []*Flow) {
		done2 = append(done2, done...)
	})

	if len(done1) != len(done2) || len(done1) != 3 {
		t.Fatalf("completions: AdvanceTo %d, AdvanceEventwise %d", len(done1), len(done2))
	}
	for i := range done1 {
		if done1[i].Label != done2[i].Label {
			t.Errorf("completion %d: %q vs %q", i, done1[i].Label, done2[i].Label)
		}
		if done1[i].CompletedAt != done2[i].CompletedAt {
			t.Errorf("completion %d (%s): at %v vs %v", i, done1[i].Label, done1[i].CompletedAt, done2[i].CompletedAt)
		}
	}
	_, _ = f1, f2
}

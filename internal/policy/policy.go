// Package policy implements the migration policies the paper evaluates
// (§7.1): the Ideal upper bound, Base UVM's on-demand fault-driven paging,
// DeepUM+'s correlation-prefetching UVM with SSD spill, FlashNeuron's
// direct GPU–SSD offload of intermediate tensors, and the three G10
// variants (G10-GDS, G10-Host, full G10) driven by the smart migration
// planner.
package policy

import (
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/gpu"
	"g10sim/internal/planner"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// reactive is the shared machinery of fault-driven UVM policies: demand
// fetches on miss and LRU eviction (host first, SSD when the host is full).
type reactive struct {
	m           *gpu.Machine
	name        string
	direct      bool
	ssdOnly     bool // evict only to flash (GDS-style systems)
	boundary    int
	avoidWindow int // kernels ahead whose tensors LRU eviction avoids
}

func (p *reactive) Name() string          { return p.name }
func (p *reactive) Attach(m *gpu.Machine) { p.m = m }
func (p *reactive) UsesUVM() bool         { return true }
func (p *reactive) DirectFlash() bool     { return p.direct }

func (p *reactive) AtBoundary(iter, b int) { p.boundary = b }

func (p *reactive) OnMiss(k int, t *dnn.Tensor) {
	p.m.RequestFetch(t.ID, uvm.FaultFetch)
}

// MakeRoom evicts least-recently-used tensors until need bytes are on
// their way out, skipping the pinned working set and (with avoidWindow > 0)
// tensors needed by upcoming kernels.
func (p *reactive) MakeRoom(need units.Bytes, pinned map[int]bool) bool {
	avoid := p.soonNeeded()
	var freed units.Bytes
	for _, id := range p.m.ResidentLRU() {
		if freed >= need {
			break
		}
		if pinned[id] || avoid[id] {
			continue
		}
		t := p.m.Graph().Tensors[id]
		dst := uvm.InHost
		if p.ssdOnly || p.m.HostFree() < t.Size {
			dst = uvm.InFlash
		}
		if p.m.RequestEvict(id, dst) {
			freed += t.Size
		}
	}
	return freed > 0
}

func (p *reactive) soonNeeded() map[int]bool {
	if p.avoidWindow <= 0 {
		return nil
	}
	g := p.m.Graph()
	out := make(map[int]bool)
	for j := p.boundary; j < p.boundary+p.avoidWindow && j < len(g.Kernels); j++ {
		for _, t := range g.Kernels[j].Tensors() {
			out[t.ID] = true
		}
	}
	return out
}

// BaseUVM is the paper's "Base UVM": a GPU-CPU-SSD unified memory with
// only on-demand page migrations via page faults and LRU eviction.
func BaseUVM() gpu.Policy { return &reactive{name: "Base UVM"} }

// Ideal is the infinite-GPU-memory upper bound. Run it with a capacity
// override (IdealConfig); no migrations ever trigger.
func Ideal() gpu.Policy { return &reactive{name: "Ideal"} }

// IdealConfig returns cfg with effectively infinite GPU memory.
func IdealConfig(cfg gpu.Config) gpu.Config {
	cfg.GPUCapacity = 1 << 60
	return cfg
}

// deepUM adds DeepUM+'s correlation prefetcher on top of reactive UVM: in
// steady state the correlation tables converge to "prefetch what the next
// kernels touch", modeled as a fixed lookahead window. Eviction avoids
// pages the prefetcher knows are needed soon; when host memory fills, it
// spills to the SSD (the paper's "+" extension).
type deepUM struct {
	reactive
	lookahead int
}

// DeepUMPlus builds the DeepUM+ baseline with the given kernel lookahead
// (0 picks the default of 4).
func DeepUMPlus(lookahead int) gpu.Policy {
	if lookahead <= 0 {
		lookahead = 4
	}
	return &deepUM{
		reactive:  reactive{name: "DeepUM+", avoidWindow: lookahead + 1},
		lookahead: lookahead,
	}
}

func (p *deepUM) AtBoundary(iter, b int) {
	p.boundary = b
	g := p.m.Graph()
	for j := b; j < b+p.lookahead && j < len(g.Kernels); j++ {
		for _, t := range g.Kernels[j].Tensors() {
			loc := p.m.Loc(t.ID)
			if (loc == uvm.InHost || loc == uvm.InFlash) && !p.m.InFlight(t.ID) {
				p.m.RequestFetch(t.ID, uvm.Prefetch)
			}
		}
	}
}

// G10 wraps a planner output as a runtime policy. The planner handles the
// common case; the runtime side adds the dynamic fallbacks the migration
// handler provides (§4.6): when the plan's estimate diverges from reality,
// the policy evicts the resident tensor whose next use is farthest away
// (the compiler gives G10 exact lifetime knowledge, so its fallback is
// Belady-like rather than LRU) and keeps a small free low-water mark so
// allocations never serialize behind an eviction.
type g10 struct {
	reactive
	plannerCfg planner.Config
	plan       *planner.Plan
	uses       [][]int // per tensor: sorted kernel indices of use
}

// G10Full is the complete system: smart migrations to SSD and host plus
// the extended UVM (direct flash access, no host software mediation).
func G10Full(pcfg planner.Config) gpu.Policy {
	pcfg.UseSSD = true
	pcfg.UseHost = true
	return &g10{reactive: reactive{name: "G10", direct: true}, plannerCfg: pcfg}
}

// G10GDS restricts migrations to GPU↔SSD (no host destination), still via
// the host-mediated GPUDirect path.
func G10GDS(pcfg planner.Config) gpu.Policy {
	pcfg.UseSSD = true
	pcfg.UseHost = false
	return &g10{reactive: reactive{name: "G10-GDS", ssdOnly: true}, plannerCfg: pcfg}
}

// G10Host enables host and SSD destinations but without the UVM extension:
// flash migrations pay host software mediation.
func G10Host(pcfg planner.Config) gpu.Policy {
	pcfg.UseSSD = true
	pcfg.UseHost = true
	return &g10{reactive: reactive{name: "G10-Host"}, plannerCfg: pcfg}
}

func (p *g10) Attach(m *gpu.Machine) {
	p.m = m
	p.uses = m.Graph().UseIndices()
}

// MakeRoom evicts the farthest-next-use resident tensors first: the
// compiler gives G10 exact lifetime knowledge, so its runtime fallback is
// Belady-like rather than LRU.
func (p *g10) MakeRoom(need units.Bytes, pinned map[int]bool) bool {
	n := len(p.m.Graph().Kernels)
	ids := p.m.ResidentLRU()
	sort.Slice(ids, func(i, j int) bool {
		return p.distanceToUse(ids[i], n) > p.distanceToUse(ids[j], n)
	})
	var freed units.Bytes
	for _, id := range ids {
		if freed >= need {
			break
		}
		if pinned[id] {
			continue
		}
		t := p.m.Graph().Tensors[id]
		dst := uvm.InHost
		if p.ssdOnly || p.m.HostFree() < t.Size {
			dst = uvm.InFlash
		}
		if p.m.RequestEvict(id, dst) {
			freed += t.Size
		}
	}
	return freed > 0
}

// distanceToUse is the kernel distance from the current boundary to the
// tensor's next use (cyclic across the iteration for globals).
func (p *g10) distanceToUse(id, n int) int {
	u := p.uses[id]
	if len(u) == 0 {
		return 2 * n
	}
	b := p.boundary
	i := sort.SearchInts(u, b)
	if i < len(u) {
		return u[i] - b
	}
	// Next use is in the following iteration.
	return n - b + u[0]
}

// safetyLookahead is how many kernels ahead the runtime migration handler
// re-issues prefetches for tensors the static plan did not cover (e.g.
// dynamically evicted under residual memory pressure). The handler has the
// compiler's exact use information, so unlike DeepUM's correlation window
// this never fetches dead data.
const safetyLookahead = 8

// OnMiss: with the unified page table and the instrumented program in
// hand, the migration handler services a late tensor as a scheduled
// transfer (the kernel stalls on the DMA), not as a page-fault storm —
// §4.6's "G10 minimizes unexpected page faults and data migrations".
func (p *g10) OnMiss(k int, t *dnn.Tensor) {
	p.m.RequestScheduledFetch(t.ID)
}

// AtBoundary re-issues prefetches for any absent tensor used within the
// lookahead window. With a fully resolved plan every upcoming tensor is
// already resident or in flight and this is a no-op.
func (p *g10) AtBoundary(iter, b int) {
	p.boundary = b
	g := p.m.Graph()
	for j := b; j < b+safetyLookahead && j < len(g.Kernels); j++ {
		for _, t := range g.Kernels[j].Tensors() {
			loc := p.m.Loc(t.ID)
			if (loc == uvm.InHost || loc == uvm.InFlash) && !p.m.InFlight(t.ID) {
				p.m.RequestFetch(t.ID, uvm.Prefetch)
			}
		}
	}
}

// Program runs the smart migration scheduler (Algorithm 1 + §4.4) over the
// analysis and returns the instrumented program.
func (p *g10) Program(a *vitality.Analysis, cfg gpu.Config) *planner.Program {
	pcfg := p.plannerCfg
	if pcfg.GPUCapacity == 0 {
		pcfg.GPUCapacity = cfg.GPUCapacity
	}
	if pcfg.HostCapacity == 0 {
		pcfg.HostCapacity = cfg.HostCapacity
	}
	if pcfg.SSDWriteBW == 0 {
		pcfg.SSDWriteBW = cfg.SSD.WriteBandwidth
	}
	if pcfg.SSDReadBW == 0 {
		pcfg.SSDReadBW = cfg.SSD.ReadBandwidth
	}
	if pcfg.HostWriteBW == 0 {
		pcfg.HostWriteBW = cfg.PCIeBandwidth
	}
	if pcfg.HostReadBW == 0 {
		pcfg.HostReadBW = cfg.PCIeBandwidth
	}
	p.plan = planner.New(a, pcfg)
	return p.plan.Program
}

// Plan exposes the planner output after Program has run (for experiments
// that report planned traffic).
func (p *g10) Plan() *planner.Plan { return p.plan }

// Planner is implemented by policies that expose their plan.
type Planner interface {
	Plan() *planner.Plan
}

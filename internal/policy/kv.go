package policy

import "g10sim/internal/gpu"

// kvPolicy implements gpu.KVPolicy for the inference serving engine: the
// single knob is whether a host KV tier exists and, if so, the residency
// fraction above which the engine offloads proactively.
type kvPolicy struct {
	name     string
	hostTier bool
	offload  float64
}

func (p kvPolicy) Name() string       { return p.name }
func (p kvPolicy) HostTier() bool     { return p.hostTier }
func (p kvPolicy) OffloadAt() float64 { return p.offload }

// SingleTierKV is the serving baseline: KV lives on the GPU only, and
// memory pressure preempts the youngest decoding request (vLLM-style
// recompute).
func SingleTierKV() gpu.KVPolicy {
	return kvPolicy{name: "single-tier"}
}

// TieredKV swaps pressure victims' KV blocks to the host DRAM tier instead
// of preempting, and offloads proactively once GPU residency exceeds
// threshold while admissions are queued. A threshold outside (0, 1]
// defaults to 0.8, the H10-style setting.
func TieredKV(threshold float64) gpu.KVPolicy {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.8
	}
	return kvPolicy{name: "tiered-kv", hostTier: true, offload: threshold}
}

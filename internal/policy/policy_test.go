package policy

import (
	"testing"

	"g10sim/internal/adapt"
	"g10sim/internal/gpu"
	"g10sim/internal/models"
	"g10sim/internal/planner"
	"g10sim/internal/profile"
	"g10sim/internal/ssd"
	"g10sim/internal/units"
	"g10sim/internal/vitality"
)

func testCfg(gpuCap, hostCap units.Bytes) gpu.Config {
	cfg := gpu.Default()
	cfg.GPUCapacity = gpuCap
	cfg.HostCapacity = hostCap
	sc := ssd.ZNAND()
	sc.Capacity = 8 * units.GB
	sc.PageSize = 64 * units.KB
	cfg.SSD = sc
	cfg.TranslationGranularity = 64 * units.KB
	return cfg
}

func analyze(t *testing.T, batch int, timeScale float64) *vitality.Analysis {
	t.Helper()
	g := models.TinyCNN(batch)
	tr := profile.Profile(g, profile.A100(timeScale))
	a, err := vitality.Analyze(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runOne(t *testing.T, a *vitality.Analysis, pol gpu.Policy, cfg gpu.Config) gpu.Result {
	t.Helper()
	res, err := gpu.Run(gpu.RunParams{Analysis: a, Policy: pol, Config: cfg})
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	return res
}

// pressured returns an analysis plus a config with 60% of peak memory.
func pressured(t *testing.T) (*vitality.Analysis, gpu.Config) {
	t.Helper()
	a := analyze(t, 128, 200)
	cap := units.Bytes(float64(a.PeakAlive()) * 0.6)
	if cap < a.PeakActive() {
		cap = a.PeakActive() + units.MB
	}
	return a, testCfg(cap, 2*units.GB)
}

func TestPolicyOrderingMatchesPaper(t *testing.T) {
	a, cfg := pressured(t)

	ideal := runOne(t, a, Ideal(), IdealConfig(cfg))
	base := runOne(t, a, BaseUVM(), cfg)
	deep := runOne(t, a, DeepUMPlus(0), cfg)
	flash := runOne(t, a, FlashNeuron(), cfg)
	g10 := runOne(t, a, G10Full(planner.Config{}), cfg)

	for _, r := range []gpu.Result{ideal, base, deep, g10} {
		if r.Failed {
			t.Fatalf("%s failed: %s", r.Policy, r.FailReason)
		}
	}
	t.Logf("ideal=%v base=%v(%.2f) deepum=%v(%.2f) flash=%v(%.2f,fail=%v) g10=%v(%.2f)",
		ideal.IterationTime,
		base.IterationTime, base.NormalizedPerf(),
		deep.IterationTime, deep.NormalizedPerf(),
		flash.IterationTime, flash.NormalizedPerf(), flash.Failed,
		g10.IterationTime, g10.NormalizedPerf())

	// The paper's ordering: Ideal >= G10 > DeepUM+ > Base UVM.
	if g10.IterationTime < ideal.IterationTime {
		t.Error("G10 beat ideal")
	}
	if !(g10.IterationTime <= deep.IterationTime) {
		t.Errorf("G10 (%v) slower than DeepUM+ (%v)", g10.IterationTime, deep.IterationTime)
	}
	if !(deep.IterationTime <= base.IterationTime) {
		t.Errorf("DeepUM+ (%v) slower than Base UVM (%v)", deep.IterationTime, base.IterationTime)
	}
	if !flash.Failed && float64(flash.IterationTime) < 0.98*float64(g10.IterationTime) {
		t.Errorf("FlashNeuron (%v) beat G10 (%v) by more than 2%%", flash.IterationTime, g10.IterationTime)
	}
}

func TestG10VariantsOrdering(t *testing.T) {
	a, cfg := pressured(t)
	gds := runOne(t, a, G10GDS(planner.Config{}), cfg)
	host := runOne(t, a, G10Host(planner.Config{}), cfg)
	full := runOne(t, a, G10Full(planner.Config{}), cfg)
	t.Logf("gds=%.3f host=%.3f full=%.3f", gds.NormalizedPerf(), host.NormalizedPerf(), full.NormalizedPerf())
	// Full G10 must not lose to its own ablations.
	if full.IterationTime > host.IterationTime {
		t.Errorf("G10 (%v) slower than G10-Host (%v)", full.IterationTime, host.IterationTime)
	}
	if full.IterationTime > gds.IterationTime {
		t.Errorf("G10 (%v) slower than G10-GDS (%v)", full.IterationTime, gds.IterationTime)
	}
	// GDS must not touch the host.
	if gds.GPUToHost != 0 || gds.HostToGPU != 0 {
		t.Errorf("G10-GDS used host traffic: out=%v in=%v", gds.GPUToHost, gds.HostToGPU)
	}
}

func TestFlashNeuronNeverSwapsWeights(t *testing.T) {
	a, cfg := pressured(t)
	pol := FlashNeuron()
	prog := pol.(gpu.ProgramBuilder).Program(a, cfg)
	for _, b := range prog.Boundaries {
		for _, in := range b {
			if in.Kind == planner.OpPreEvict && in.Tensor.Kind != 1 /* dnn.Intermediate */ {
				t.Errorf("FlashNeuron scheduled eviction of %v tensor %s", in.Tensor.Kind, in.Tensor.Name)
			}
		}
	}
	res := runOne(t, a, FlashNeuron(), cfg)
	if !res.Failed && res.HostToGPU+res.GPUToHost != 0 {
		t.Errorf("FlashNeuron used host memory: %v/%v", res.GPUToHost, res.HostToGPU)
	}
}

func TestFlashNeuronFailsOnOversizedWorkingSet(t *testing.T) {
	a := analyze(t, 128, 200)
	cfg := testCfg(a.PeakActive()-units.MB, 2*units.GB)
	res := runOne(t, a, FlashNeuron(), cfg)
	if !res.Failed {
		t.Error("FlashNeuron did not fail with a working set above GPU memory (footnote 1)")
	}
	// A UVM policy survives the same configuration.
	res2 := runOne(t, a, BaseUVM(), cfg)
	if res2.Failed {
		t.Errorf("Base UVM failed: %s", res2.FailReason)
	}
}

func TestDeepUMPrefetchReducesFaultsVsBase(t *testing.T) {
	a, cfg := pressured(t)
	base := runOne(t, a, BaseUVM(), cfg)
	deep := runOne(t, a, DeepUMPlus(0), cfg)
	if deep.Faults >= base.Faults {
		t.Errorf("DeepUM+ faults (%d) not below Base UVM (%d)", deep.Faults, base.Faults)
	}
}

func TestG10FaultsAreRare(t *testing.T) {
	a, cfg := pressured(t)
	g10 := runOne(t, a, G10Full(planner.Config{}), cfg)
	base := runOne(t, a, BaseUVM(), cfg)
	if base.Faults == 0 {
		t.Skip("no pressure in scenario")
	}
	if float64(g10.Faults) > 0.2*float64(base.Faults) {
		t.Errorf("G10 faults (%d) not well below Base UVM (%d)", g10.Faults, base.Faults)
	}
}

func TestG10PlanAccessor(t *testing.T) {
	a, cfg := pressured(t)
	pol := G10Full(planner.Config{})
	runOne(t, a, pol, cfg)
	pl, ok := pol.(Planner)
	if !ok || pl.Plan() == nil {
		t.Fatal("G10 policy does not expose its plan")
	}
	if err := pl.Plan().Validate(); err != nil {
		t.Error(err)
	}
}

func TestIdealConfig(t *testing.T) {
	cfg := IdealConfig(testCfg(units.GB, units.GB))
	if cfg.GPUCapacity != 1<<60 {
		t.Errorf("IdealConfig capacity = %v", cfg.GPUCapacity)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]gpu.Policy{
		"Base UVM":    BaseUVM(),
		"DeepUM+":     DeepUMPlus(4),
		"FlashNeuron": FlashNeuron(),
		"G10":         G10Full(planner.Config{}),
		"G10-GDS":     G10GDS(planner.Config{}),
		"G10-Host":    G10Host(planner.Config{}),
		"Ideal":       Ideal(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy name %q != %q", p.Name(), want)
		}
	}
}

func TestAdaptiveWrapper(t *testing.T) {
	// Adaptation is an attribute of the run, not a different design: the
	// wrapped policy keeps the base name, plans, and implements the
	// replanning hook.
	p := G10Adaptive(planner.Config{}, adapt.Config{})
	if p.Name() != "G10" {
		t.Errorf("adaptive name = %q, want G10", p.Name())
	}
	if _, ok := p.(gpu.ProgramBuilder); !ok {
		t.Error("adaptive G10 lost the program builder")
	}
	if _, ok := p.(gpu.Replanner); !ok {
		t.Error("adaptive G10 does not implement Replanner")
	}
	for _, variant := range []gpu.Policy{G10Host(planner.Config{}), G10GDS(planner.Config{})} {
		w := Adaptive(variant, adapt.Config{})
		if w == variant {
			t.Errorf("%s was not wrapped", variant.Name())
		}
		if w.Name() != variant.Name() {
			t.Errorf("wrapped name %q != %q", w.Name(), variant.Name())
		}
	}
	// Non-planning policies have no program to re-time: pass through.
	base := BaseUVM()
	if Adaptive(base, adapt.Config{}) != base {
		t.Error("reactive policy was wrapped")
	}
}

package policy

import (
	"g10sim/internal/adapt"
	"g10sim/internal/gpu"
	"g10sim/internal/planner"
)

// adaptiveG10 is a planning G10 variant with the online replanning layer
// attached: between iterations the controller folds the machine's observed
// migration lateness into per-direction inflation EMAs and re-times the
// instrumented program against them (internal/adapt). Everything else —
// planner, Belady-like MakeRoom fallback, scheduled late fetches — is the
// wrapped policy's, and Name() stays the base policy's name: adaptation is
// an attribute of the run, not a different design, and an uncontended
// adaptive run must be bit-identical to the static one.
type adaptiveG10 struct {
	g10
	ctl *adapt.Controller
}

// Adaptive attaches the online replanning controller to a planning G10
// policy. Non-planning policies (the reactive baselines, which have no
// instrumented program to re-time) are returned unchanged.
func Adaptive(base gpu.Policy, acfg adapt.Config) gpu.Policy {
	g, ok := base.(*g10)
	if !ok {
		return base
	}
	return &adaptiveG10{g10: *g, ctl: adapt.New(acfg)}
}

// G10Adaptive is the full G10 system (smart migrations + extended UVM)
// with contention-adaptive re-timing.
func G10Adaptive(pcfg planner.Config, acfg adapt.Config) gpu.Policy {
	return Adaptive(G10Full(pcfg), acfg)
}

// NextProgram implements gpu.Replanner.
func (p *adaptiveG10) NextProgram(iter int, sig gpu.LatenessSignal, cur *planner.Program) *planner.Program {
	p.ctl.Observe(sig)
	return p.ctl.NextProgram(cur)
}

// Controller exposes the replanning state (experiments report its view).
func (p *adaptiveG10) Controller() *adapt.Controller { return p.ctl }

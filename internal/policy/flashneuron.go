package policy

import (
	"sort"

	"g10sim/internal/dnn"
	"g10sim/internal/gpu"
	"g10sim/internal/planner"
	"g10sim/internal/units"
	"g10sim/internal/uvm"
	"g10sim/internal/vitality"
)

// flashNeuron models FlashNeuron (FAST'21): a DNN training library that
// offloads intermediate tensors (never weights) to the SSD over direct
// GPU–SSD communication. Its offload set is chosen by linear selection in
// production order until the projected memory pressure fits; evictions
// happen right after a tensor's last forward use and prefetches at the
// analytic latest-safe time before its backward use. It manages memory
// itself (no UVM): a kernel whose working set cannot fit fails the run
// (the paper's footnote 1), and demand misses are synchronous GDS reads
// without the UVM fault round trip.
type flashNeuron struct {
	m *gpu.Machine
	// headroom keeps a fraction of GPU memory unplanned as the library's
	// transfer buffers.
	headroom float64
	// offloadable marks the tensors FlashNeuron's memory manager can move
	// at all: forward-produced intermediates consumed in the backward
	// pass. Everything else is pinned wherever it is, which is why
	// FlashNeuron aborts when a kernel's working set plus pinned data
	// exceeds GPU memory (the paper's footnote 1).
	offloadable map[int]bool
}

// FlashNeuron builds the baseline.
func FlashNeuron() gpu.Policy { return &flashNeuron{headroom: 0.05} }

func (p *flashNeuron) Name() string          { return "FlashNeuron" }
func (p *flashNeuron) Attach(m *gpu.Machine) { p.m = m }
func (p *flashNeuron) UsesUVM() bool         { return false }
func (p *flashNeuron) DirectFlash() bool     { return true }
func (p *flashNeuron) AtBoundary(int, int)   {}

func (p *flashNeuron) OnMiss(k int, t *dnn.Tensor) {
	p.m.RequestFetch(t.ID, uvm.FaultFetch)
}

// MakeRoom: FlashNeuron can only move its offloadable set (forward
// activations); weights, gradients, and workspaces stay pinned.
func (p *flashNeuron) MakeRoom(need units.Bytes, pinned map[int]bool) bool {
	var freed units.Bytes
	for _, id := range p.m.ResidentLRU() {
		if freed >= need {
			break
		}
		if pinned[id] || !p.offloadable[id] {
			continue
		}
		t := p.m.Graph().Tensors[id]
		if p.m.RequestEvict(id, uvm.InFlash) {
			freed += t.Size
		}
	}
	return freed > 0
}

// Program builds FlashNeuron's offline offload schedule.
func (p *flashNeuron) Program(a *vitality.Analysis, cfg gpu.Config) *planner.Program {
	budget := units.Bytes(float64(cfg.GPUCapacity) * (1 - p.headroom))
	n := len(a.Graph.Kernels)

	// Candidates: intermediate tensors whose inactive period starts in the
	// forward pass and ends in the backward pass.
	p.offloadable = make(map[int]bool)
	var candidates []*vitality.Period
	for i := range a.Periods {
		per := &a.Periods[i]
		if per.Tensor.Kind != dnn.Intermediate || per.Wraps {
			continue
		}
		if a.Graph.Kernels[per.AfterKernel].Phase != dnn.Forward {
			continue
		}
		if a.Graph.Kernels[per.NextUse].Phase != dnn.Backward {
			continue
		}
		p.offloadable[per.Tensor.ID] = true
		candidates = append(candidates, per)
	}
	// Linear selection in production order.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].AfterKernel != candidates[j].AfterKernel {
			return candidates[i].AfterKernel < candidates[j].AfterKernel
		}
		return candidates[i].Tensor.ID < candidates[j].Tensor.ID
	})

	pressure := make([]units.Bytes, n)
	copy(pressure, a.AliveBytes)
	peak := func() units.Bytes {
		var m units.Bytes
		for _, b := range pressure {
			if b > m {
				m = b
			}
		}
		return m
	}

	wbw := cfg.SSD.WriteBandwidth
	rbw := cfg.SSD.ReadBandwidth
	var decisions []planner.Decision
	for _, per := range candidates {
		if peak() <= budget {
			break
		}
		size := per.Tensor.Size
		evictDone := per.Start + units.TransferTime(size, wbw)
		latest := per.End - units.TransferTime(size, rbw)
		if latest <= evictDone {
			continue // period too short to round-trip the SSD
		}
		// Free window in kernel indices.
		kFrom := sort.Search(n, func(i int) bool { return a.Starts[i] >= evictDone })
		kTo := sort.Search(n, func(i int) bool { return a.Starts[i+1] > latest })
		if kFrom >= kTo {
			continue
		}
		for k := kFrom; k < kTo; k++ {
			pressure[k] -= size
		}
		pf := sort.Search(n, func(i int) bool { return a.Starts[i+1] > latest })
		decisions = append(decisions, planner.Decision{
			Period:           per,
			Target:           uvm.InFlash,
			EvictBoundary:    per.AfterKernel + 1,
			PrefetchBoundary: pf,
			EvictStart:       per.Start,
			EvictDone:        evictDone,
			PrefetchStart:    latest,
			Deadline:         per.End,
		})
	}
	return planner.EmitProgram(a, decisions)
}

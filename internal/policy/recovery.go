package policy

import (
	"math"

	"g10sim/internal/gpu"
	"g10sim/internal/units"
)

// restartRecovery loses all progress on a crash: the tenant re-admits at
// iteration zero and writes no checkpoints.
type restartRecovery struct{}

func (restartRecovery) Name() string { return "restart" }
func (restartRecovery) CheckpointInterval(_, _, _ units.Duration) int {
	return 0
}

// Restart returns the no-checkpoint recovery policy: a crashed job restarts
// from iteration zero.
func Restart() gpu.Recovery { return restartRecovery{} }

// ckptRecovery checkpoints every `every` iterations; every <= 0 derives the
// interval from Young's approximation.
type ckptRecovery struct{ every int }

func (ckptRecovery) Name() string { return "checkpoint" }

// CheckpointInterval returns the fixed cadence, or — when none was given —
// the Young/Daly optimum τ = sqrt(2·ckptCost·MTBF) rounded to whole
// iterations. No crash schedule (mtbf == 0) or a free checkpoint means the
// approximation has no optimum; checkpointing is then disabled (restart
// semantics at zero overhead).
func (c ckptRecovery) CheckpointInterval(iterTime, ckptCost, mtbf units.Duration) int {
	if c.every > 0 {
		return c.every
	}
	if mtbf <= 0 || ckptCost <= 0 || iterTime <= 0 {
		return 0
	}
	tau := math.Sqrt(2 * float64(ckptCost) * float64(mtbf))
	iters := int(math.Round(tau / float64(iterTime)))
	if iters < 1 {
		iters = 1
	}
	return iters
}

// Checkpoint returns the periodic-snapshot recovery policy: every
// everyIters iterations the job writes its global tensors to flash as a
// real flow (charging wear and contending for bandwidth) and resumes from
// the last completed snapshot after a crash. everyIters <= 0 selects the
// Young/Daly auto-interval derived from the fault schedule's MTBF.
func Checkpoint(everyIters int) gpu.Recovery { return ckptRecovery{every: everyIters} }

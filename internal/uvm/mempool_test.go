package uvm

import (
	"testing"

	"g10sim/internal/units"
)

func TestMemPoolReserveRelease(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(60 * units.MB) {
		t.Fatal("reserve 60MB failed")
	}
	if p.Reserve(50 * units.MB) {
		t.Error("over-capacity reserve succeeded")
	}
	if p.Used() != 60*units.MB || p.Free() != 40*units.MB {
		t.Errorf("used/free = %v/%v", p.Used(), p.Free())
	}
	if !p.Reserve(40 * units.MB) {
		t.Error("exact-fit reserve failed")
	}
	p.Release(100 * units.MB)
	if p.Used() != 0 {
		t.Errorf("used = %v after full release", p.Used())
	}
	if p.Capacity() != 100*units.MB {
		t.Errorf("capacity = %v", p.Capacity())
	}
}

func TestMemPoolSharedContention(t *testing.T) {
	// Two tenants draw from one pool: what one holds, the other cannot take.
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(80 * units.MB) { // tenant A
		t.Fatal("A reserve failed")
	}
	if p.Reserve(30 * units.MB) { // tenant B must be refused
		t.Error("B reserved past shared capacity")
	}
	p.Release(80 * units.MB) // A frees
	if !p.Reserve(30 * units.MB) {
		t.Error("B refused after A released")
	}
}

func TestMemPoolReleasePanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("underflow release did not panic")
		}
	}()
	NewMemPool(units.MB).Release(1)
}

package uvm

import (
	"testing"

	"g10sim/internal/units"
)

func TestMemPoolReserveRelease(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(60 * units.MB) {
		t.Fatal("reserve 60MB failed")
	}
	if p.Reserve(50 * units.MB) {
		t.Error("over-capacity reserve succeeded")
	}
	if p.Used() != 60*units.MB || p.Free() != 40*units.MB {
		t.Errorf("used/free = %v/%v", p.Used(), p.Free())
	}
	if !p.Reserve(40 * units.MB) {
		t.Error("exact-fit reserve failed")
	}
	p.Release(100 * units.MB)
	if p.Used() != 0 {
		t.Errorf("used = %v after full release", p.Used())
	}
	if p.Capacity() != 100*units.MB {
		t.Errorf("capacity = %v", p.Capacity())
	}
}

func TestMemPoolSharedContention(t *testing.T) {
	// Two tenants draw from one pool: what one holds, the other cannot take.
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(80 * units.MB) { // tenant A
		t.Fatal("A reserve failed")
	}
	if p.Reserve(30 * units.MB) { // tenant B must be refused
		t.Error("B reserved past shared capacity")
	}
	p.Release(80 * units.MB) // A frees
	if !p.Reserve(30 * units.MB) {
		t.Error("B refused after A released")
	}
}

func TestMemPoolWaiterQueue(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(90 * units.MB) {
		t.Fatal("reserve failed")
	}
	var woken []string
	p.AwaitFree(30*units.MB, func() { woken = append(woken, "a") })
	p.AwaitFree(20*units.MB, func() { woken = append(woken, "b") })
	p.AwaitFree(5*units.MB, func() { woken = append(woken, "c") })
	if p.Waiters() != 3 {
		t.Fatalf("waiters = %d, want 3", p.Waiters())
	}

	// 10MB free: not enough for the head (30MB). FIFO means nobody wakes —
	// grants are handed out in order, not to whoever fits.
	p.Release(5 * units.MB) // free = 15MB
	if len(woken) != 0 {
		t.Fatalf("woken %v with only 15MB free (head needs 30MB)", woken)
	}

	// Free 25MB more (free = 40MB): the head's 30MB grant fits, and after
	// deducting it the remaining 10MB is enough for b's 20MB? No — only
	// 10MB remains, so exactly one waiter wakes.
	p.Release(25 * units.MB)
	if want := []string{"a"}; len(woken) != 1 || woken[0] != "a" {
		t.Fatalf("woken = %v, want %v", woken, want)
	}
	if p.Waiters() != 2 {
		t.Fatalf("waiters = %d after first grant, want 2", p.Waiters())
	}

	// Freeing the rest wakes b and c in FIFO order, each against the
	// capacity left after earlier grants this round.
	p.Release(60 * units.MB) // free = 100MB
	if len(woken) != 3 || woken[1] != "b" || woken[2] != "c" {
		t.Fatalf("woken = %v, want [a b c]", woken)
	}
	if p.Waiters() != 0 {
		t.Errorf("waiters = %d after draining, want 0", p.Waiters())
	}
}

// TestMemPoolWakeMayResubscribe: a wake callback re-subscribing must not
// corrupt the queue (the engine's tenants re-subscribe when still blocked).
func TestMemPoolWakeMayResubscribe(t *testing.T) {
	p := NewMemPool(10 * units.MB)
	if !p.Reserve(10 * units.MB) {
		t.Fatal("reserve failed")
	}
	wakes := 0
	var again func()
	again = func() {
		wakes++
		if wakes < 3 {
			p.AwaitFree(units.MB, again)
		}
	}
	p.AwaitFree(units.MB, again)
	p.Release(5 * units.MB)
	if wakes != 1 {
		t.Fatalf("wakes = %d after first release, want 1", wakes)
	}
	if p.Waiters() != 1 {
		t.Fatalf("waiters = %d (re-subscription lost)", p.Waiters())
	}
	p.Release(5 * units.MB)
	if wakes != 2 || p.Waiters() != 1 {
		t.Fatalf("wakes = %d waiters = %d after second release", wakes, p.Waiters())
	}
}

// TestMemPoolWakeMayRelease: a wake callback releasing capacity triggers a
// nested notify mid-round; the outer round's remaining grants must still
// run, exactly once each, in FIFO order.
func TestMemPoolWakeMayRelease(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	if !p.Reserve(100 * units.MB) {
		t.Fatal("reserve failed")
	}
	var woken []string
	// a's grant hands back 10MB immediately (a tenant that wakes, makes
	// progress, and frees staging space before the round finishes).
	p.AwaitFree(10*units.MB, func() {
		woken = append(woken, "a")
		p.Release(10 * units.MB)
	})
	p.AwaitFree(10*units.MB, func() { woken = append(woken, "b") })
	p.AwaitFree(10*units.MB, func() { woken = append(woken, "c") })
	p.Release(30 * units.MB) // room for all three; a's nested Release re-notifies
	if want := "[a b c]"; len(woken) != 3 || woken[0] != "a" || woken[1] != "b" || woken[2] != "c" {
		t.Fatalf("woken = %v, want %s", woken, want)
	}
	if p.Waiters() != 0 {
		t.Errorf("waiters = %d after draining, want 0", p.Waiters())
	}
}

// TestMemPoolNotifyDoesNotAllocate: steady-state subscribe/release churn
// must not allocate — the two waiter arrays ping-pong through the scratch
// buffer. (The cluster schedulers run this path once per denied tenant per
// release.)
func TestMemPoolNotifyDoesNotAllocate(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	wake := func() {}
	// Warm the two backing arrays past the test's queue depth.
	for i := 0; i < 8; i++ {
		p.AwaitFree(units.MB, wake)
	}
	p.Reserve(50 * units.MB)
	p.Release(50 * units.MB)
	avg := testing.AllocsPerRun(100, func() {
		p.Reserve(50 * units.MB)
		p.AwaitFree(units.MB, wake)
		p.AwaitFree(2*units.MB, wake)
		p.Release(50 * units.MB)
	})
	if avg != 0 {
		t.Errorf("notify churn allocates %.1f times per round, want 0", avg)
	}
}

func TestMemPoolReleasePanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("underflow release did not panic")
		}
	}()
	NewMemPool(units.MB).Release(1)
}

func TestMemPoolOwnerLedger(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	if !p.ReserveFor(1, 30*units.MB) || !p.ReserveFor(2, 20*units.MB) {
		t.Fatal("tagged reserves failed")
	}
	if !p.Reserve(10 * units.MB) { // anonymous traffic alongside
		t.Fatal("anonymous reserve failed")
	}
	if p.OwnedBy(1) != 30*units.MB || p.OwnedBy(2) != 20*units.MB {
		t.Errorf("ledger = %v/%v, want 30MB/20MB", p.OwnedBy(1), p.OwnedBy(2))
	}
	p.ReleaseFor(1, 10*units.MB)
	if p.OwnedBy(1) != 20*units.MB || p.Used() != 50*units.MB {
		t.Errorf("after partial release: owned(1)=%v used=%v", p.OwnedBy(1), p.Used())
	}
	// A denied ReserveFor must not touch the ledger.
	if p.ReserveFor(1, 60*units.MB) {
		t.Error("over-capacity tagged reserve succeeded")
	}
	if p.OwnedBy(1) != 20*units.MB {
		t.Errorf("denied reserve changed the ledger: %v", p.OwnedBy(1))
	}
}

func TestMemPoolReleaseForPanicsBeyondLedger(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	p.ReserveFor(1, 10*units.MB)
	p.Reserve(10 * units.MB) // anonymous bytes owner 1 must not be able to free
	defer func() {
		if recover() == nil {
			t.Error("releasing beyond the owner's ledger did not panic")
		}
	}()
	p.ReleaseFor(1, 20*units.MB)
}

// TestMemPoolReleaseAll: the crash-teardown path must free the owner's
// aggregate, drop its queued subscriptions, and wake survivors in FIFO
// order — without disturbing other owners or anonymous holdings.
func TestMemPoolReleaseAll(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	p.ReserveFor(1, 40*units.MB)
	p.ReserveFor(2, 30*units.MB)
	p.Reserve(30 * units.MB) // pool now full
	var woken []string
	p.AwaitFreeFor(1, 10*units.MB, func() { woken = append(woken, "dead") })
	p.AwaitFreeFor(2, 35*units.MB, func() { woken = append(woken, "b") })
	p.AwaitFree(5*units.MB, func() { woken = append(woken, "anon") })

	if got := p.ReleaseAll(1); got != 40*units.MB {
		t.Fatalf("ReleaseAll freed %v, want 40MB", got)
	}
	// Owner 1's subscription is gone; its 40MB wakes b then anon (FIFO).
	if len(woken) != 2 || woken[0] != "b" || woken[1] != "anon" {
		t.Fatalf("woken = %v, want [b anon]", woken)
	}
	if p.Used() != 60*units.MB || p.OwnedBy(1) != 0 || p.OwnedBy(2) != 30*units.MB {
		t.Errorf("after teardown: used=%v owned(1)=%v owned(2)=%v", p.Used(), p.OwnedBy(1), p.OwnedBy(2))
	}
	// A second teardown of the same owner is a harmless no-op.
	if got := p.ReleaseAll(1); got != 0 {
		t.Errorf("second ReleaseAll freed %v, want 0", got)
	}
}

// TestMemPoolReleaseAllUnblocksQueue: even an owner holding zero bytes must
// have its dead queue-head subscription dropped, unblocking the FIFO queue
// behind it on the next release.
func TestMemPoolReleaseAllUnblocksQueue(t *testing.T) {
	p := NewMemPool(100 * units.MB)
	p.Reserve(100 * units.MB)
	var woken []string
	p.AwaitFreeFor(7, 90*units.MB, func() { woken = append(woken, "dead-head") })
	p.AwaitFree(10*units.MB, func() { woken = append(woken, "live") })
	p.Release(20 * units.MB) // head needs 90MB: nobody wakes
	if len(woken) != 0 {
		t.Fatalf("woken = %v behind an unsatisfied head", woken)
	}
	p.ReleaseAll(7) // owner 7 holds nothing, but its subscription blocks the queue
	if len(woken) != 1 || woken[0] != "live" {
		t.Fatalf("woken = %v after dropping the dead head, want [live]", woken)
	}
}

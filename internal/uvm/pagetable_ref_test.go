package uvm

import (
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// refTable is a trivially correct per-page reference model of the page
// table: one map entry per mapped page.
type refTable struct {
	pageSize units.Bytes
	m        map[uint64]PTE
}

func newRefTable(pageSize units.Bytes) *refTable {
	return &refTable{pageSize: pageSize, m: map[uint64]PTE{}}
}

func (r *refTable) vpn(va uint64) uint64 { return va / uint64(r.pageSize) }

func (r *refTable) mapRange(va uint64, pages int64, loc Location, addr uint64) {
	for i := int64(0); i < pages; i++ {
		r.m[r.vpn(va)+uint64(i)] = PTE{Loc: loc, Addr: addr + uint64(i)}
	}
}

func (r *refTable) unmapRange(va uint64, pages int64) int64 {
	var n int64
	for i := int64(0); i < pages; i++ {
		if _, ok := r.m[r.vpn(va)+uint64(i)]; ok {
			delete(r.m, r.vpn(va)+uint64(i))
			n++
		}
	}
	return n
}

func (r *refTable) translate(va uint64) (PTE, bool) {
	pte, ok := r.m[r.vpn(va)]
	return pte, ok
}

func (r *refTable) rangeLocation(va uint64, pages int64) (Location, bool) {
	if pages <= 0 {
		return Unmapped, false
	}
	first, ok := r.translate(va)
	if !ok {
		return Unmapped, false
	}
	for i := int64(1); i < pages; i++ {
		pte, ok := r.m[r.vpn(va)+uint64(i)]
		if !ok || pte.Loc != first.Loc {
			return Unmapped, false
		}
	}
	return first.Loc, true
}

// TestPageTableDifferential drives random operation sequences through the
// extent-based table and the per-page reference model, comparing every
// observable result: operation return values, Mapped counts, and full-space
// translations.
func TestPageTableDifferential(t *testing.T) {
	const pageSize = 4 * units.KB
	locs := []Location{InGPU, InHost, InFlash}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		pt := MustNewPageTable(pageSize)
		ref := newRefTable(pageSize)
		const vpnSpace = 2048 // small space so ranges overlap frequently
		for op := 0; op < 400; op++ {
			vpn := uint64(rng.Intn(vpnSpace))
			va := vpn * uint64(pageSize)
			pages := int64(rng.Intn(64) + 1)
			switch rng.Intn(6) {
			case 0: // single-page Map
				pte := PTE{Loc: locs[rng.Intn(3)], Addr: uint64(rng.Intn(1 << 20))}
				pt.Map(va, pte)
				ref.m[vpn] = pte
			case 1: // MapRange
				loc := locs[rng.Intn(3)]
				addr := uint64(rng.Intn(1 << 20))
				pt.MapRange(va, pages, loc, addr)
				ref.mapRange(va, pages, loc, addr)
			case 2: // single-page Unmap
				got := pt.Unmap(va)
				want := ref.unmapRange(va, 1) == 1
				if got != want {
					t.Fatalf("trial %d op %d: Unmap(%#x) = %v, ref %v", trial, op, va, got, want)
				}
			case 3: // UnmapRange
				got := pt.UnmapRange(va, pages)
				want := ref.unmapRange(va, pages)
				if got != want {
					t.Fatalf("trial %d op %d: UnmapRange(%#x, %d) = %d, ref %d", trial, op, va, pages, got, want)
				}
			case 4: // RangeLocation
				gl, gok := pt.RangeLocation(va, pages)
				wl, wok := ref.rangeLocation(va, pages)
				if gok != wok || (gok && gl != wl) {
					t.Fatalf("trial %d op %d: RangeLocation(%#x, %d) = %v/%v, ref %v/%v",
						trial, op, va, pages, gl, gok, wl, wok)
				}
			case 5: // Translate probe
				gp, gok := pt.Translate(va)
				wp, wok := ref.translate(va)
				if gok != wok || (gok && gp != wp) {
					t.Fatalf("trial %d op %d: Translate(%#x) = %+v/%v, ref %+v/%v",
						trial, op, va, gp, gok, wp, wok)
				}
			}
			if pt.Mapped() != int64(len(ref.m)) {
				t.Fatalf("trial %d op %d: Mapped = %d, ref %d", trial, op, pt.Mapped(), len(ref.m))
			}
		}
		// Full sweep: every page of the space must agree.
		for vpn := uint64(0); vpn < vpnSpace+64; vpn++ {
			va := vpn * uint64(pageSize)
			gp, gok := pt.Translate(va)
			wp, wok := ref.translate(va)
			if gok != wok || (gok && gp != wp) {
				t.Fatalf("trial %d sweep vpn %d: %+v/%v, ref %+v/%v", trial, vpn, gp, gok, wp, wok)
			}
		}
	}
}

// TestPageTableRunMerging checks the extent structure's coalescing: a
// tensor mapped chunk by chunk with contiguous device addresses collapses
// into one run, so long-lived tensors do not fragment the table.
func TestPageTableRunMerging(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	// Map 16 chunks of 8 pages each, address-contiguous, in scrambled order.
	order := []int{3, 0, 7, 1, 12, 5, 2, 15, 9, 4, 6, 8, 10, 13, 11, 14}
	for _, c := range order {
		pt.MapRange(uint64(c)*8*4096, 8, InGPU, uint64(c)*8)
	}
	if pt.Runs() != 1 {
		t.Errorf("address-contiguous chunked mapping left %d runs, want 1", pt.Runs())
	}
	if pt.Mapped() != 128 {
		t.Errorf("Mapped = %d, want 128", pt.Mapped())
	}
	// Re-mapping the middle to a different location splits ...
	pt.MapRange(5*8*4096, 8, InFlash, 7777)
	if loc, ok := pt.RangeLocation(5*8*4096, 8); !ok || loc != InFlash {
		t.Fatalf("migrated chunk = %v/%v", loc, ok)
	}
	if pt.Runs() != 3 {
		t.Errorf("split mapping has %d runs, want 3", pt.Runs())
	}
	// ... and mapping it back to the original location and address re-merges.
	pt.MapRange(5*8*4096, 8, InGPU, 5*8)
	if pt.Runs() != 1 {
		t.Errorf("re-map did not coalesce: %d runs, want 1", pt.Runs())
	}
}

// TestTLBRangeShootdownLargeRange exercises the entry-scan path (range
// larger than the TLB) against per-page invalidation semantics.
func TestTLBRangeShootdownLargeRange(t *testing.T) {
	tlb := MustNewTLB(64, 8, 4*units.KB)
	// Insert translations spread over a wide range.
	for i := uint64(0); i < 300; i++ {
		tlb.Insert(i*3<<12, PTE{Loc: InGPU, Addr: i})
	}
	// Shoot down a large aligned range; pages > sets triggers the scan.
	tlb.InvalidateRange(0, 450)
	for i := uint64(0); i < 300; i++ {
		va := i * 3 << 12
		if pte, ok := tlb.Lookup(va); ok {
			if i*3 < 450 {
				t.Fatalf("vpn %d survived range shootdown (%+v)", i*3, pte)
			}
		}
	}
	// Entries beyond the range must be untouched (modulo LRU eviction,
	// which only ever removes — a hit here must carry the right PTE).
	for i := uint64(150); i < 300; i++ {
		va := i * 3 << 12
		if pte, ok := tlb.Lookup(va); ok && pte.Addr != i {
			t.Fatalf("vpn %d has stale entry %+v", i*3, pte)
		}
	}
}

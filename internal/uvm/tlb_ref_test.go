package uvm

import (
	"math/rand"
	"testing"

	"g10sim/internal/units"
)

// newRefTLB builds a TLB latched to the eager per-entry reference path.
func newRefTLB(sets, ways int, pageSize units.Bytes) *TLB {
	ForceReferenceTLBForTest(true)
	defer ForceReferenceTLBForTest(false)
	return MustNewTLB(sets, ways, pageSize)
}

// TestTLBFlushCountsDroppedEntries pins Flush's counter semantics: one
// shootdown per entry actually dropped, none for an empty flush — in both
// the epoch and the eager reference modes, and with pending epoch
// shootdowns reconciled first so nothing is double-counted.
func TestTLBFlushCountsDroppedEntries(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() *TLB
	}{
		{"epoch", func() *TLB { return MustNewTLB(4, 4, 4*units.KB) }},
		{"reference", func() *TLB { return newRefTLB(4, 4, 4*units.KB) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			tlb := mode.mk()
			tlb.Flush()
			if _, _, sd := tlb.Stats(); sd != 0 {
				t.Fatalf("empty flush counted %d shootdowns", sd)
			}
			for i := uint64(0); i < 3; i++ {
				tlb.Insert(i<<12, PTE{Loc: InGPU, Addr: i})
			}
			tlb.Flush()
			if _, _, sd := tlb.Stats(); sd != 3 {
				t.Fatalf("flush of 3 live entries counted %d shootdowns, want 3", sd)
			}
			// A single-page invalidation already counted its entry; the
			// following flush may only count the survivor.
			tlb.Insert(0x1000, PTE{Loc: InGPU, Addr: 1})
			tlb.Insert(0x2000, PTE{Loc: InGPU, Addr: 2})
			tlb.Invalidate(0x1000)
			tlb.Flush()
			if _, _, sd := tlb.Stats(); sd != 5 {
				t.Fatalf("shootdowns = %d, want 5 (3 flushed + 1 invalidated + 1 flushed)", sd)
			}
			// A pending range shootdown reconciles inside Flush; each entry
			// is still counted exactly once.
			for i := uint64(0); i < 4; i++ {
				tlb.Insert(i<<12, PTE{Loc: InGPU, Addr: i})
			}
			tlb.InvalidateRange(0, 2)
			tlb.Flush()
			if _, _, sd := tlb.Stats(); sd != 9 {
				t.Fatalf("shootdowns = %d, want 9 (2 by range + 2 by flush on top of 5)", sd)
			}
		})
	}
}

// TestTLBEpochDifferential drives an epoch-mode TLB and the eager
// reference through identical random interleavings of Lookup, Insert,
// Invalidate, InvalidateRange, Flush, and Stats. Every lookup result and
// every observed (hits, misses, shootdowns) triple must match: the epoch
// path defers shootdown work, never changes what it resolves to.
func TestTLBEpochDifferential(t *testing.T) {
	type shape struct{ sets, ways int }
	shapes := []shape{{4, 2}, {16, 4}, {64, 8}}
	const trials = 30
	const ops = 400
	for trial := 0; trial < trials; trial++ {
		sh := shapes[trial%len(shapes)]
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		ep := MustNewTLB(sh.sets, sh.ways, 4*units.KB)
		ref := newRefTLB(sh.sets, sh.ways, 4*units.KB)
		// A vpn space a few times the capacity forces conflict evictions
		// while keeping re-references (hits) likely.
		span := uint64(sh.sets * sh.ways * 3)
		va := func() uint64 { return (rng.Uint64() % span) << 12 }
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(100); {
			case k < 40:
				a := va()
				p1, ok1 := ep.Lookup(a)
				p2, ok2 := ref.Lookup(a)
				if ok1 != ok2 || p1 != p2 {
					t.Fatalf("trial %d op %d: Lookup(%#x) = %+v,%v (epoch) vs %+v,%v (reference)",
						trial, op, a, p1, ok1, p2, ok2)
				}
			case k < 70:
				a := va()
				pte := PTE{Loc: Location(rng.Intn(3)), Addr: rng.Uint64() % 1024}
				ep.Insert(a, pte)
				ref.Insert(a, pte)
			case k < 80:
				a := va()
				ep.Invalidate(a)
				ref.Invalidate(a)
			case k < 93:
				a := va()
				pages := int64(1 + rng.Intn(int(span)))
				ep.InvalidateRange(a, pages)
				ref.InvalidateRange(a, pages)
			case k < 96:
				ep.Flush()
				ref.Flush()
			default:
				h1, m1, s1 := ep.Stats()
				h2, m2, s2 := ref.Stats()
				if h1 != h2 || m1 != m2 || s1 != s2 {
					t.Fatalf("trial %d op %d: Stats = %d,%d,%d (epoch) vs %d,%d,%d (reference)",
						trial, op, h1, m1, s1, h2, m2, s2)
				}
			}
		}
		// Final sweep: every vpn resolves identically, then counters agree.
		for vpn := uint64(0); vpn < span; vpn++ {
			p1, ok1 := ep.Lookup(vpn << 12)
			p2, ok2 := ref.Lookup(vpn << 12)
			if ok1 != ok2 || p1 != p2 {
				t.Fatalf("trial %d final sweep: Lookup(vpn %d) = %+v,%v (epoch) vs %+v,%v (reference)",
					trial, vpn, p1, ok1, p2, ok2)
			}
		}
		h1, m1, s1 := ep.Stats()
		h2, m2, s2 := ref.Stats()
		if h1 != h2 || m1 != m2 || s1 != s2 {
			t.Fatalf("trial %d final: Stats = %d,%d,%d (epoch) vs %d,%d,%d (reference)",
				trial, h1, m1, s1, h2, m2, s2)
		}
		if ref.EpochShootdowns() != 0 {
			t.Fatalf("reference TLB counted %d epoch shootdowns", ref.EpochShootdowns())
		}
	}
}

// TestTLBEpochRangeOverflowReconciles drives more distinct pending ranges
// than maxTLBRanges to force the overflow reconcile, then verifies the
// structure stayed exact.
func TestTLBEpochRangeOverflowReconciles(t *testing.T) {
	ep := MustNewTLB(8, 4, 4*units.KB)
	ref := newRefTLB(8, 4, 4*units.KB)
	span := uint64(8 * 4 * 16)
	for i := uint64(0); i < span; i++ {
		pte := PTE{Loc: InGPU, Addr: i}
		ep.Insert(i<<12, pte)
		ref.Insert(i<<12, pte)
	}
	// Disjoint 2-page shootdowns at stride 4: each is a distinct range, so
	// the pending list crosses maxTLBRanges and reconciles mid-stream.
	// Interleaved lookups and re-inserts hit the overflow window itself —
	// entries stamped between ranges must survive the overflow reconcile
	// exactly as they survive the eager sweeps.
	for lo := uint64(0); lo+2 <= span; lo += 4 {
		ep.InvalidateRange(lo<<12, 2)
		ref.InvalidateRange(lo<<12, 2)
		if lo%16 == 8 {
			a := (lo - 4) << 12
			p1, ok1 := ep.Lookup(a)
			p2, ok2 := ref.Lookup(a)
			if ok1 != ok2 || p1 != p2 {
				t.Fatalf("mid-overflow Lookup(%#x) = %+v,%v (epoch) vs %+v,%v (reference)", a, p1, ok1, p2, ok2)
			}
			pte := PTE{Loc: InHost, Addr: lo}
			ep.Insert(a, pte)
			ref.Insert(a, pte)
		}
	}
	if int(span/4) <= maxTLBRanges {
		t.Fatalf("test needs >%d disjoint ranges to exercise overflow, got %d", maxTLBRanges, span/4)
	}
	if ep.EpochShootdowns() <= int64(maxTLBRanges) {
		t.Fatalf("only %d epoch shootdowns; the pending list never overflowed its %d-range cap",
			ep.EpochShootdowns(), maxTLBRanges)
	}
	for vpn := uint64(0); vpn < span; vpn++ {
		p1, ok1 := ep.Lookup(vpn << 12)
		p2, ok2 := ref.Lookup(vpn << 12)
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("Lookup(vpn %d) = %+v,%v (epoch) vs %+v,%v (reference)", vpn, p1, ok1, p2, ok2)
		}
	}
	h1, m1, s1 := ep.Stats()
	h2, m2, s2 := ref.Stats()
	if h1 != h2 || m1 != m2 || s1 != s2 {
		t.Fatalf("Stats = %d,%d,%d (epoch) vs %d,%d,%d (reference)", h1, m1, s1, h2, m2, s2)
	}
}

// Package uvm implements the paper's extended Unified Virtual Memory
// (§4.5–§4.6): a unified page table whose leaf entries point into GPU
// memory, host memory, or flash; a GPU-side TLB; and the migration metadata
// queues plus arbiter that batch tensor migrations into transfer sets
// (Figure 10).
//
// The page table stores translations as contiguous extents: runs of pages
// that are virtually contiguous, live in the same location, and map to
// consecutive device addresses. A whole-tensor migration (MapRange /
// UnmapRange, the fast path of Figure 10 step 5) updates one run in
// O(log n) instead of walking a radix tree once per page; single-page
// operations split and merge runs so the translation semantics are
// identical at any granularity (see DESIGN.md §2).
package uvm

import (
	"fmt"
	"sort"

	"g10sim/internal/units"
)

// Location identifies which memory a page currently lives in — the paper's
// extension is precisely that a PTE may name a flash address (§4.5).
type Location int

const (
	// Unmapped marks an absent translation (page fault on access).
	Unmapped Location = iota
	// InGPU is on-board HBM.
	InGPU
	// InHost is CPU DRAM.
	InHost
	// InFlash is the SSD (the G10 extension).
	InFlash
)

func (l Location) String() string {
	switch l {
	case Unmapped:
		return "unmapped"
	case InGPU:
		return "gpu"
	case InHost:
		return "host"
	case InFlash:
		return "flash"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// PTE is a leaf page-table entry: where the page is and the device-local
// frame/page number there.
type PTE struct {
	Loc  Location
	Addr uint64
}

// walkLevels mirrors the 4-level radix walk of a 48-bit VA space with 9-bit
// levels; the fault-latency model charges one memory access per level.
const walkLevels = 4

// extent is a run of pages contiguous in all three senses: virtual page
// number, location, and device address (page i of the run lives at
// addr + i). Runs never overlap and are kept sorted by vpn.
type extent struct {
	vpn   uint64
	pages int64
	loc   Location
	addr  uint64
}

func (e extent) end() uint64 { return e.vpn + uint64(e.pages) }

// PageTable is the unified (host-side) page table. GPU-local tables and
// TLBs are kept coherent by the UVM runtime; this simulator models that
// coherence cost via TLB invalidations on update.
type PageTable struct {
	pageBits uint
	pageSize units.Bytes
	runs     []extent
	mapped   int64
	// tombs counts tombstone runs (loc == Unmapped): extents an UnmapRange
	// cleared in place instead of splicing out, kept for O(1) reuse when
	// the same span is remapped (the migration commit pattern). Translate
	// and friends treat them as absent; compact() sweeps them once they
	// outnumber live runs.
	tombs int
	// WalkLevels is the number of memory accesses one translation costs —
	// used by the fault-latency model.
	WalkLevels int
}

// NewPageTable builds an empty table for the given page size (a power of
// two, e.g. 4KB per Table 2).
func NewPageTable(pageSize units.Bytes) (*PageTable, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("uvm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	return &PageTable{pageBits: bits, pageSize: pageSize, WalkLevels: walkLevels}, nil
}

// MustNewPageTable panics on config error.
func MustNewPageTable(pageSize units.Bytes) *PageTable {
	pt, err := NewPageTable(pageSize)
	if err != nil {
		panic(err)
	}
	return pt
}

// PageSize reports the translation granularity.
func (pt *PageTable) PageSize() units.Bytes { return pt.pageSize }

// Mapped reports how many pages currently have translations.
func (pt *PageTable) Mapped() int64 { return pt.mapped }

// Runs reports how many contiguous extents the table currently holds (a
// fragmentation measure; one long-lived tensor should stay one run). The
// count includes tombstones awaiting reuse or compaction.
func (pt *PageTable) Runs() int { return len(pt.runs) }

// vpn converts a virtual address to its virtual page number.
func (pt *PageTable) vpn(va uint64) uint64 { return va >> pt.pageBits }

// findRun returns the index of the live run containing vpn, or -1 (a
// tombstone covering vpn is an absent translation).
func (pt *PageTable) findRun(vpn uint64) int {
	i := sort.Search(len(pt.runs), func(i int) bool { return pt.runs[i].end() > vpn })
	if i < len(pt.runs) && pt.runs[i].vpn <= vpn && pt.runs[i].loc != Unmapped {
		return i
	}
	return -1
}

// Map installs (or replaces) the translation for the page containing va.
func (pt *PageTable) Map(va uint64, pte PTE) {
	pt.mapRun(pt.vpn(va), 1, pte.Loc, pte.Addr)
}

// Translate walks the table for va. ok is false on a missing translation
// (page fault).
func (pt *PageTable) Translate(va uint64) (PTE, bool) {
	vpn := pt.vpn(va)
	i := pt.findRun(vpn)
	if i < 0 {
		return PTE{}, false
	}
	r := &pt.runs[i]
	return PTE{Loc: r.loc, Addr: r.addr + (vpn - r.vpn)}, true
}

// Unmap removes the translation for the page containing va, reporting
// whether one existed.
func (pt *PageTable) Unmap(va uint64) bool {
	return pt.clearRange(pt.vpn(va), 1, true) > 0
}

// MapRange maps pages contiguous virtual pages starting at va to
// consecutive device addresses starting at startAddr in loc. This is how a
// whole-tensor migration updates the table (step 5 of Figure 10): one
// ordered-structure edit regardless of the tensor's page count.
func (pt *PageTable) MapRange(va uint64, pages int64, loc Location, startAddr uint64) {
	if pages <= 0 {
		return
	}
	pt.mapRun(pt.vpn(va), pages, loc, startAddr)
}

// UnmapRange unmaps a contiguous run of pages, returning how many were
// mapped.
func (pt *PageTable) UnmapRange(va uint64, pages int64) int64 {
	if pages <= 0 {
		return 0
	}
	return pt.clearRange(pt.vpn(va), pages, true)
}

// RangeLocation reports the location of a contiguous range if uniform;
// mixed or partially unmapped ranges report ok=false.
func (pt *PageTable) RangeLocation(va uint64, pages int64) (Location, bool) {
	if pages <= 0 {
		return Unmapped, false
	}
	vpn := pt.vpn(va)
	end := vpn + uint64(pages)
	i := pt.findRun(vpn)
	if i < 0 {
		return Unmapped, false
	}
	loc := pt.runs[i].loc
	// Walk forward: runs must tile [vpn, end) without gaps, all in loc.
	// (Device-address continuity across runs is not required — the per-page
	// reference model only compares locations.)
	pos := pt.runs[i].end()
	for pos < end {
		i++
		if i >= len(pt.runs) || pt.runs[i].vpn != pos || pt.runs[i].loc != loc {
			return Unmapped, false
		}
		pos = pt.runs[i].end()
	}
	return loc, true
}

// mapRun installs [vpn, vpn+pages) -> (loc, addr..), replacing whatever was
// there, then merges with adjacent runs when both the location and the
// device addresses continue across the seam — so a tensor remapped in
// chunks coalesces back into a single extent.
func (pt *PageTable) mapRun(vpn uint64, pages int64, loc Location, addr uint64) {
	if loc == Unmapped {
		// Mapping to Unmapped is an unmap.
		pt.clearRange(vpn, pages, true)
		return
	}
	end := vpn + uint64(pages)
	// Fast path: migrations rewrite a tensor's fixed span over and over.
	// When one run — live or tombstone — covers exactly [vpn, end) and no
	// seam merge would fire, only loc/addr change: no clear, no splice.
	if i := sort.Search(len(pt.runs), func(i int) bool { return pt.runs[i].vpn >= vpn }); i < len(pt.runs) {
		if r := &pt.runs[i]; r.vpn == vpn && r.pages == pages {
			leftMerge := false
			if i > 0 {
				l := &pt.runs[i-1]
				leftMerge = l.loc == loc && l.end() == vpn && l.addr+uint64(l.pages) == addr
			}
			rightMerge := false
			if i+1 < len(pt.runs) {
				rr := &pt.runs[i+1]
				rightMerge = rr.loc == loc && rr.vpn == end && addr+uint64(pages) == rr.addr
			}
			if !leftMerge && !rightMerge {
				if r.loc == Unmapped {
					pt.tombs--
					pt.mapped += pages
				}
				r.loc = loc
				r.addr = addr
				return
			}
		}
	}
	pt.clearRange(vpn, pages, false)
	n := extent{vpn: vpn, pages: pages, loc: loc, addr: addr}
	i := sort.Search(len(pt.runs), func(i int) bool { return pt.runs[i].vpn > vpn })
	// Try merging with the left neighbor.
	if i > 0 {
		l := &pt.runs[i-1]
		if l.end() == n.vpn && l.loc == n.loc && l.addr+uint64(l.pages) == n.addr {
			l.pages += n.pages
			// And across to the right neighbor.
			if i < len(pt.runs) {
				r := pt.runs[i]
				if l.end() == r.vpn && l.loc == r.loc && l.addr+uint64(l.pages) == r.addr {
					l.pages += r.pages
					pt.runs = append(pt.runs[:i], pt.runs[i+1:]...)
				}
			}
			pt.mapped += pages
			return
		}
	}
	// Try merging with the right neighbor.
	if i < len(pt.runs) {
		r := &pt.runs[i]
		if n.end() == r.vpn && n.loc == r.loc && n.addr+uint64(n.pages) == r.addr {
			r.vpn = n.vpn
			r.pages += n.pages
			r.addr = n.addr
			pt.mapped += pages
			return
		}
	}
	pt.runs = append(pt.runs, extent{})
	copy(pt.runs[i+1:], pt.runs[i:])
	pt.runs[i] = n
	pt.mapped += pages
}

// clearRange removes all translations in [vpn, vpn+pages), splitting
// partially covered runs, and returns how many pages were mapped. With
// keepTombs, fully covered runs become tombstones in place and partially
// covered ones trim in place — no splice except the rare middle split —
// so an UnmapRange costs O(log runs + runs overlapped), not O(runs).
// Without keepTombs (the mapRun slow path, which must leave the span
// empty for its insert), covered runs splice out as before.
func (pt *PageTable) clearRange(vpn uint64, pages int64, keepTombs bool) int64 {
	end := vpn + uint64(pages)
	// First run that extends past vpn.
	i := sort.Search(len(pt.runs), func(i int) bool { return pt.runs[i].end() > vpn })
	if i >= len(pt.runs) || pt.runs[i].vpn >= end {
		return 0
	}
	if keepTombs {
		var removed int64
		for j := i; j < len(pt.runs) && pt.runs[j].vpn < end; j++ {
			r := &pt.runs[j]
			if r.loc == Unmapped {
				continue // already unmapped everywhere it covers
			}
			lo, hi := r.vpn, r.end()
			switch {
			case lo >= vpn && hi <= end: // fully covered: tombstone in place
				removed += r.pages
				r.loc = Unmapped
				pt.tombs++
			case lo < vpn && hi > end: // middle split: trim left, splice right in
				right := extent{vpn: end, pages: int64(hi - end), loc: r.loc, addr: r.addr + (end - lo)}
				removed += pages
				r.pages = int64(vpn - lo)
				pt.runs = append(pt.runs, extent{})
				copy(pt.runs[j+2:], pt.runs[j+1:])
				pt.runs[j+1] = right
				pt.mapped -= removed
				return removed // the only run that can overlap
			case lo < vpn: // tail covered: trim in place
				removed += int64(hi - vpn)
				r.pages = int64(vpn - lo)
			default: // head covered: trim in place (stays sorted: vpn grows)
				removed += int64(end - lo)
				r.addr += end - lo
				r.vpn = end
				r.pages = int64(hi - end)
			}
		}
		pt.mapped -= removed
		if pt.tombs > 8 && pt.tombs*2 > len(pt.runs) {
			pt.compact()
		}
		return removed
	}
	var removed int64
	var keep [2]extent // partial remainders at the seam(s)
	nkeep := 0
	j := i
	for j < len(pt.runs) && pt.runs[j].vpn < end {
		r := pt.runs[j]
		lo, hi := r.vpn, r.end()
		if r.loc == Unmapped {
			pt.tombs--
			// Remainders outside the cleared span stay tombstones.
			if lo < vpn {
				keep[nkeep] = extent{vpn: lo, pages: int64(vpn - lo)}
				nkeep++
				pt.tombs++
			}
			if hi > end {
				keep[nkeep] = extent{vpn: end, pages: int64(hi - end)}
				nkeep++
				pt.tombs++
			}
			j++
			continue
		}
		if lo < vpn {
			keep[nkeep] = extent{vpn: lo, pages: int64(vpn - lo), loc: r.loc, addr: r.addr}
			nkeep++
			lo = vpn
		}
		if hi > end {
			keep[nkeep] = extent{vpn: end, pages: int64(hi - end), loc: r.loc, addr: r.addr + (end - r.vpn)}
			nkeep++
			hi = end
		}
		removed += int64(hi - lo)
		j++
	}
	if delta := nkeep - (j - i); delta <= 0 {
		copy(pt.runs[i:], keep[:nkeep])
		copy(pt.runs[i+nkeep:], pt.runs[j:])
		pt.runs = pt.runs[:len(pt.runs)+delta]
	} else {
		// Only a middle split grows the slice: one run became two.
		pt.runs = append(pt.runs, extent{})
		copy(pt.runs[i+2:], pt.runs[i+1:])
		pt.runs[i] = keep[0]
		pt.runs[i+1] = keep[1]
	}
	pt.mapped -= removed
	return removed
}

// compact splices out every tombstone in one sweep, restoring run-count
// proportionality to live extents. Amortized free: each tombstone was
// created by an O(1) in-place clear, and the sweep runs only once they
// outnumber live runs.
func (pt *PageTable) compact() {
	out := pt.runs[:0]
	for _, r := range pt.runs {
		if r.loc != Unmapped {
			out = append(out, r)
		}
	}
	pt.runs = out
	pt.tombs = 0
}

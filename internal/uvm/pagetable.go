// Package uvm implements the paper's extended Unified Virtual Memory
// (§4.5–§4.6): a unified page table whose leaf entries point into GPU
// memory, host memory, or flash; a GPU-side TLB; and the migration metadata
// queues plus arbiter that batch tensor migrations into transfer sets
// (Figure 10).
//
// The page table is a 4-level radix tree over 48-bit virtual addresses with
// a configurable page size. Range operations (MapRange/UnmapRange) are the
// fast path used by tensor-granularity migrations; they touch the same tree
// as per-page operations, so the translation semantics are identical at any
// granularity.
package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// Location identifies which memory a page currently lives in — the paper's
// extension is precisely that a PTE may name a flash address (§4.5).
type Location int

const (
	// Unmapped marks an absent translation (page fault on access).
	Unmapped Location = iota
	// InGPU is on-board HBM.
	InGPU
	// InHost is CPU DRAM.
	InHost
	// InFlash is the SSD (the G10 extension).
	InFlash
)

func (l Location) String() string {
	switch l {
	case Unmapped:
		return "unmapped"
	case InGPU:
		return "gpu"
	case InHost:
		return "host"
	case InFlash:
		return "flash"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// PTE is a leaf page-table entry: where the page is and the device-local
// frame/page number there.
type PTE struct {
	Loc  Location
	Addr uint64
}

const (
	levelBits = 9
	levels    = 4
	fanout    = 1 << levelBits
)

type node struct {
	children [fanout]*node
	leaves   []PTE // allocated only at the last level
	occupied int
}

// PageTable is the unified (host-side) page table. GPU-local tables and
// TLBs are kept coherent by the UVM runtime; this simulator models that
// coherence cost via TLB invalidations on update.
type PageTable struct {
	pageBits uint
	pageSize units.Bytes
	root     *node
	mapped   int64
	// WalkLevels is the number of memory accesses one translation costs —
	// used by the fault-latency model.
	WalkLevels int
}

// NewPageTable builds an empty table for the given page size (a power of
// two, e.g. 4KB per Table 2).
func NewPageTable(pageSize units.Bytes) (*PageTable, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("uvm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	return &PageTable{pageBits: bits, pageSize: pageSize, root: &node{}, WalkLevels: levels}, nil
}

// MustNewPageTable panics on config error.
func MustNewPageTable(pageSize units.Bytes) *PageTable {
	pt, err := NewPageTable(pageSize)
	if err != nil {
		panic(err)
	}
	return pt
}

// PageSize reports the translation granularity.
func (pt *PageTable) PageSize() units.Bytes { return pt.pageSize }

// Mapped reports how many pages currently have translations.
func (pt *PageTable) Mapped() int64 { return pt.mapped }

// vpn converts a virtual address to its virtual page number.
func (pt *PageTable) vpn(va uint64) uint64 { return va >> pt.pageBits }

func indexAt(vpn uint64, level int) int {
	shift := uint((levels - 1 - level) * levelBits)
	return int((vpn >> shift) & (fanout - 1))
}

// Map installs (or replaces) the translation for the page containing va.
func (pt *PageTable) Map(va uint64, pte PTE) {
	vpn := pt.vpn(va)
	n := pt.root
	for level := 0; level < levels-1; level++ {
		idx := indexAt(vpn, level)
		if n.children[idx] == nil {
			n.children[idx] = &node{}
			n.occupied++
		}
		n = n.children[idx]
	}
	if n.leaves == nil {
		n.leaves = make([]PTE, fanout)
	}
	idx := indexAt(vpn, levels-1)
	if n.leaves[idx].Loc == Unmapped {
		pt.mapped++
		n.occupied++
	}
	n.leaves[idx] = pte
}

// Translate walks the table for va. ok is false on a missing translation
// (page fault).
func (pt *PageTable) Translate(va uint64) (PTE, bool) {
	vpn := pt.vpn(va)
	n := pt.root
	for level := 0; level < levels-1; level++ {
		n = n.children[indexAt(vpn, level)]
		if n == nil {
			return PTE{}, false
		}
	}
	if n.leaves == nil {
		return PTE{}, false
	}
	pte := n.leaves[indexAt(vpn, levels-1)]
	if pte.Loc == Unmapped {
		return PTE{}, false
	}
	return pte, true
}

// Unmap removes the translation for the page containing va, reporting
// whether one existed.
func (pt *PageTable) Unmap(va uint64) bool {
	vpn := pt.vpn(va)
	n := pt.root
	for level := 0; level < levels-1; level++ {
		n = n.children[indexAt(vpn, level)]
		if n == nil {
			return false
		}
	}
	if n.leaves == nil {
		return false
	}
	idx := indexAt(vpn, levels-1)
	if n.leaves[idx].Loc == Unmapped {
		return false
	}
	n.leaves[idx] = PTE{}
	n.occupied--
	pt.mapped--
	return true
}

// MapRange maps pages contiguous virtual pages starting at va to
// consecutive device addresses starting at startAddr in loc. This is how a
// whole-tensor migration updates the table (step 5 of Figure 10).
func (pt *PageTable) MapRange(va uint64, pages int64, loc Location, startAddr uint64) {
	for i := int64(0); i < pages; i++ {
		pt.Map(va+uint64(i)*uint64(pt.pageSize), PTE{Loc: loc, Addr: startAddr + uint64(i)})
	}
}

// UnmapRange unmaps a contiguous run of pages, returning how many were
// mapped.
func (pt *PageTable) UnmapRange(va uint64, pages int64) int64 {
	var n int64
	for i := int64(0); i < pages; i++ {
		if pt.Unmap(va + uint64(i)*uint64(pt.pageSize)) {
			n++
		}
	}
	return n
}

// RangeLocation reports the location of a contiguous range if uniform;
// mixed or partially unmapped ranges report ok=false.
func (pt *PageTable) RangeLocation(va uint64, pages int64) (Location, bool) {
	if pages <= 0 {
		return Unmapped, false
	}
	first, ok := pt.Translate(va)
	if !ok {
		return Unmapped, false
	}
	for i := int64(1); i < pages; i++ {
		pte, ok := pt.Translate(va + uint64(i)*uint64(pt.pageSize))
		if !ok || pte.Loc != first.Loc {
			return Unmapped, false
		}
	}
	return first.Loc, true
}

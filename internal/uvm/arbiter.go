package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// RequestKind classifies migration metadata queue entries (Figure 10).
type RequestKind int

const (
	// FaultFetch is a demand fetch triggered by a page fault — highest
	// priority in the arbiter.
	FaultFetch RequestKind = iota
	// Prefetch is a g10_prefetch-initiated fetch.
	Prefetch
	// PreEvict is a g10_pre_evict-initiated eviction.
	PreEvict
)

func (k RequestKind) String() string {
	switch k {
	case FaultFetch:
		return "fault"
	case Prefetch:
		return "prefetch"
	case PreEvict:
		return "pre-evict"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is one tensor migration waiting in the metadata queues.
type Request struct {
	Kind     RequestKind
	TensorID int
	VA       uint64
	Bytes    units.Bytes
	Src, Dst Location
	// Scheduled marks a demand miss that the migration handler services
	// as a planned transfer (G10's compiler-instrumented runtime): it
	// takes fault-queue priority but not the fault cost model.
	Scheduled  bool
	EnqueuedAt units.Time
	seq        int64
}

// Queues are the per-kind migration metadata queues of Figure 10.
type Queues struct {
	fault, prefetch, evict []*Request
	nextSeq                int64
}

// Push enqueues a request in its kind's queue.
func (q *Queues) Push(r *Request) {
	r.seq = q.nextSeq
	q.nextSeq++
	switch r.Kind {
	case FaultFetch:
		q.fault = append(q.fault, r)
	case Prefetch:
		q.prefetch = append(q.prefetch, r)
	case PreEvict:
		q.evict = append(q.evict, r)
	default:
		panic(fmt.Sprintf("uvm: unknown request kind %v", r.Kind))
	}
}

// Reset empties every queue (crash teardown): after it returns, nothing in
// the queues references any request, so the caller may recycle them. The
// sequence counter keeps counting so requests pushed later still order
// after everything that ever preceded them.
func (q *Queues) Reset() {
	q.fault = q.fault[:0]
	q.prefetch = q.prefetch[:0]
	q.evict = q.evict[:0]
}

// Len reports total queued requests.
func (q *Queues) Len() int { return len(q.fault) + len(q.prefetch) + len(q.evict) }

// LenOf reports queued requests of one kind.
func (q *Queues) LenOf(k RequestKind) int {
	switch k {
	case FaultFetch:
		return len(q.fault)
	case Prefetch:
		return len(q.prefetch)
	case PreEvict:
		return len(q.evict)
	}
	return 0
}

// Arbiter forms transfer sets from the metadata queues: page faults first,
// then prefetches, then pre-evictions, batching up to MaxBatchBytes per set
// to saturate the interconnect (Figure 10 steps 3–4).
type Arbiter struct {
	// MaxBatchBytes bounds one transfer set. At least one request is
	// always released even if it alone exceeds the bound.
	MaxBatchBytes units.Bytes
	// scratch backs the returned set; each call invalidates the previous
	// call's slice, so the dispatcher's pop/requeue cycle allocates nothing.
	scratch []*Request
}

// NextTransferSet dequeues the next batch. Empty queues yield nil. The
// returned slice is reused by the next call.
func (a *Arbiter) NextTransferSet(q *Queues) []*Request {
	limit := a.MaxBatchBytes
	if limit <= 0 {
		limit = 256 * units.MB
	}
	set := a.scratch[:0]
	var used units.Bytes
	take := func(queue *[]*Request) {
		for len(*queue) > 0 {
			r := (*queue)[0]
			if len(set) > 0 && used+r.Bytes > limit {
				return
			}
			set = append(set, r)
			used += r.Bytes
			*queue = (*queue)[1:]
			if used >= limit {
				return
			}
		}
	}
	take(&q.fault)
	if used < limit {
		take(&q.prefetch)
	}
	if used < limit {
		take(&q.evict)
	}
	if len(set) == 0 {
		return nil // keep the empty-queues == nil contract
	}
	a.scratch = set
	return set
}

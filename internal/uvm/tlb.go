package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// TLB is a set-associative translation lookaside buffer with LRU
// replacement. Migrations invalidate affected entries (the shootdown the
// paper's UVM extension keeps coherent with the unified page table).
type TLB struct {
	sets     int
	ways     int
	pageBits uint
	entries  [][]tlbEntry // per set, most-recently-used first

	hits, misses, shootdowns int64
}

type tlbEntry struct {
	vpn   uint64
	pte   PTE
	valid bool
}

// NewTLB builds a sets×ways TLB for the given page size.
func NewTLB(sets, ways int, pageSize units.Bytes) (*TLB, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("uvm: TLB needs positive sets and ways, got %d×%d", sets, ways)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("uvm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	t := &TLB{sets: sets, ways: ways, pageBits: bits, entries: make([][]tlbEntry, sets)}
	for i := range t.entries {
		t.entries[i] = make([]tlbEntry, 0, ways)
	}
	return t, nil
}

// MustNewTLB panics on config error.
func MustNewTLB(sets, ways int, pageSize units.Bytes) *TLB {
	t, err := NewTLB(sets, ways, pageSize)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TLB) setOf(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// Lookup searches for the translation of va, updating LRU order and
// hit/miss counters.
func (t *TLB) Lookup(va uint64) (PTE, bool) {
	vpn := va >> t.pageBits
	set := t.entries[t.setOf(vpn)]
	for i, e := range set {
		if e.valid && e.vpn == vpn {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return PTE{}, false
}

// Insert fills the translation for va, evicting the set's LRU entry if
// full.
func (t *TLB) Insert(va uint64, pte PTE) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	set := t.entries[s]
	for i, e := range set {
		if e.valid && e.vpn == vpn {
			copy(set[1:i+1], set[:i])
			set[0] = tlbEntry{vpn: vpn, pte: pte, valid: true}
			return
		}
	}
	if len(set) < t.ways {
		set = append(set, tlbEntry{})
	}
	copy(set[1:], set)
	set[0] = tlbEntry{vpn: vpn, pte: pte, valid: true}
	t.entries[s] = set
}

// Invalidate drops the entry for va if present (single-page shootdown).
func (t *TLB) Invalidate(va uint64) {
	vpn := va >> t.pageBits
	set := t.entries[t.setOf(vpn)]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			t.shootdowns++
			return
		}
	}
}

// InvalidateRange shoots down all entries covering [va, va+pages).
func (t *TLB) InvalidateRange(va uint64, pages int64) {
	for i := int64(0); i < pages; i++ {
		t.Invalidate(va + uint64(i)<<t.pageBits)
	}
}

// Flush drops every entry.
func (t *TLB) Flush() {
	for s := range t.entries {
		t.entries[s] = t.entries[s][:0]
	}
	t.shootdowns++
}

// Stats reports (hits, misses, shootdowns).
func (t *TLB) Stats() (hits, misses, shootdowns int64) {
	return t.hits, t.misses, t.shootdowns
}

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// TLB is a set-associative translation lookaside buffer with LRU
// replacement. Migrations invalidate affected entries (the shootdown the
// paper's UVM extension keeps coherent with the unified page table).
type TLB struct {
	sets     int
	ways     int
	pageBits uint
	// entries is a flat sets×ways array (set s occupies
	// entries[s*ways : s*ways+setLen[s]], most-recently-used first); the
	// flat layout keeps range shootdown scans cache-friendly.
	entries  []tlbEntry
	setLen   []int32
	setValid []int32 // valid entries per set (lets shootdowns skip sets)
	valid    int64   // total valid entries

	hits, misses, shootdowns int64
}

type tlbEntry struct {
	vpn   uint64
	pte   PTE
	valid bool
}

// NewTLB builds a sets×ways TLB for the given page size.
func NewTLB(sets, ways int, pageSize units.Bytes) (*TLB, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("uvm: TLB needs positive sets and ways, got %d×%d", sets, ways)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("uvm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	t := &TLB{
		sets: sets, ways: ways, pageBits: bits,
		entries:  make([]tlbEntry, sets*ways),
		setLen:   make([]int32, sets),
		setValid: make([]int32, sets),
	}
	return t, nil
}

// MustNewTLB panics on config error.
func MustNewTLB(sets, ways int, pageSize units.Bytes) *TLB {
	t, err := NewTLB(sets, ways, pageSize)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TLB) setOf(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// set returns the occupied entries of set s, MRU first.
func (t *TLB) set(s int) []tlbEntry {
	return t.entries[s*t.ways : s*t.ways+int(t.setLen[s])]
}

// Lookup searches for the translation of va, updating LRU order and
// hit/miss counters.
func (t *TLB) Lookup(va uint64) (PTE, bool) {
	vpn := va >> t.pageBits
	set := t.set(t.setOf(vpn))
	for i, e := range set {
		if e.valid && e.vpn == vpn {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return PTE{}, false
}

// Insert fills the translation for va, evicting the set's LRU entry if
// full.
func (t *TLB) Insert(va uint64, pte PTE) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	set := t.set(s)
	for i, e := range set {
		if e.valid && e.vpn == vpn {
			copy(set[1:i+1], set[:i])
			set[0] = tlbEntry{vpn: vpn, pte: pte, valid: true}
			return
		}
	}
	evictedValid := false
	if int(t.setLen[s]) < t.ways {
		t.setLen[s]++
		set = t.set(s)
	} else {
		evictedValid = set[len(set)-1].valid
	}
	copy(set[1:], set)
	set[0] = tlbEntry{vpn: vpn, pte: pte, valid: true}
	if !evictedValid {
		t.setValid[s]++
		t.valid++
	}
}

// Invalidate drops the entry for va if present (single-page shootdown).
func (t *TLB) Invalidate(va uint64) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	if t.setValid[s] == 0 {
		return
	}
	set := t.set(s)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			t.setValid[s]--
			t.valid--
			t.shootdowns++
			return
		}
	}
}

// InvalidateRange shoots down all entries covering [va, va+pages). For
// large ranges (whole-tensor migrations), it scans the TLB's entries once
// instead of probing per page, so the shootdown cost is bounded by the TLB
// size rather than the tensor size. The crossover point is where one probe
// per page (each touching up to `ways` entries) starts costing more than
// one pass over all sets×ways entries.
func (t *TLB) InvalidateRange(va uint64, pages int64) {
	if t.valid == 0 {
		return
	}
	if pages <= int64(t.sets) {
		for i := int64(0); i < pages; i++ {
			t.Invalidate(va + uint64(i)<<t.pageBits)
		}
		return
	}
	lo := va >> t.pageBits
	hi := lo + uint64(pages)
	for s := 0; s < t.sets; s++ {
		if t.setValid[s] == 0 {
			continue
		}
		set := t.set(s)
		for i := range set {
			if set[i].valid && set[i].vpn >= lo && set[i].vpn < hi {
				set[i].valid = false
				t.setValid[s]--
				t.valid--
				t.shootdowns++
			}
		}
	}
}

// Flush drops every entry.
func (t *TLB) Flush() {
	for s := range t.setLen {
		t.setLen[s] = 0
		t.setValid[s] = 0
	}
	t.valid = 0
	t.shootdowns++
}

// Stats reports (hits, misses, shootdowns).
func (t *TLB) Stats() (hits, misses, shootdowns int64) {
	return t.hits, t.misses, t.shootdowns
}

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

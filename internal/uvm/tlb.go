package uvm

import (
	"fmt"
	"sort"
	"sync/atomic"

	"g10sim/internal/units"
)

// forceReferenceTLB makes NewTLB latch the eager per-entry shootdown path
// (the pre-epoch reference implementation) for differential testing.
var forceReferenceTLB atomic.Bool

// ForceReferenceTLBForTest toggles the eager reference shootdown path for
// TLBs created while set. Tests only.
func ForceReferenceTLBForTest(v bool) { forceReferenceTLB.Store(v) }

// maxTLBRanges bounds the pending-shootdown range list. Past it, a full
// reconcile (one sets×ways sweep) applies every pending range eagerly, so
// the amortized cost per range shootdown stays O(sets×ways / maxTLBRanges)
// and every Lookup's staleness check stays O(log maxTLBRanges).
const maxTLBRanges = 64

// TLB is a set-associative translation lookaside buffer with LRU
// replacement. Migrations invalidate affected entries (the shootdown the
// paper's UVM extension keeps coherent with the unified page table).
//
// Whole-tensor range shootdowns are epoch-based: InvalidateRange records
// the range with a fresh epoch instead of sweeping entries, and an entry is
// live iff its valid bit is set AND no later-epoch range covers its vpn.
// Stale entries resolve lazily — Lookup/Insert check only the entries they
// touch (one binary search over the range list), and Stats/Flush reconcile
// everything so counters stay exact at observation points. The eager
// reference path is retained behind ForceReferenceTLBForTest.
type TLB struct {
	sets     int
	ways     int
	pageBits uint
	// entries is a flat sets×ways array (set s occupies
	// entries[s*ways : s*ways+setLen[s]], most-recently-used first); the
	// flat layout keeps range shootdown scans cache-friendly.
	entries  []tlbEntry
	setLen   []int32
	setValid []int32 // live entries per set (upper bound until reconciled)
	valid    int64   // total live entries (upper bound until reconciled)

	// epoch shootdown state. ranges is sorted by lo and non-overlapping;
	// epochs are assigned monotonically, so any covered part of an older
	// range is simply superseded when a new one splices in.
	reference bool // eager per-entry shootdowns (differential reference)
	epoch     uint64
	ranges    []tlbRange

	hits, misses, shootdowns int64
	epochShootdowns          int64 // range shootdowns served by an epoch bump
}

type tlbEntry struct {
	vpn   uint64
	pte   PTE
	stamp uint64 // epoch at insertion; stale if an epoch range covers vpn
	valid bool
}

// tlbRange is a pending shootdown of vpns in [lo, hi) issued at epoch.
type tlbRange struct {
	lo, hi uint64
	epoch  uint64
}

// NewTLB builds a sets×ways TLB for the given page size.
func NewTLB(sets, ways int, pageSize units.Bytes) (*TLB, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("uvm: TLB needs positive sets and ways, got %d×%d", sets, ways)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("uvm: page size %d not a positive power of two", pageSize)
	}
	bits := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		bits++
	}
	t := &TLB{
		sets: sets, ways: ways, pageBits: bits,
		entries:   make([]tlbEntry, sets*ways),
		setLen:    make([]int32, sets),
		setValid:  make([]int32, sets),
		reference: forceReferenceTLB.Load(),
	}
	return t, nil
}

// MustNewTLB panics on config error.
func MustNewTLB(sets, ways int, pageSize units.Bytes) *TLB {
	t, err := NewTLB(sets, ways, pageSize)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TLB) setOf(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// set returns the occupied entries of set s, MRU first.
func (t *TLB) set(s int) []tlbEntry {
	return t.entries[s*t.ways : s*t.ways+int(t.setLen[s])]
}

// stale reports whether a pending epoch range supersedes the entry: some
// range inserted after the entry's stamp covers its vpn. The stamp check
// short-circuits the binary search for entries newer than every range.
func (t *TLB) stale(e *tlbEntry) bool {
	if e.stamp >= t.epoch || len(t.ranges) == 0 {
		return false
	}
	rs := t.ranges
	i := sort.Search(len(rs), func(i int) bool { return rs[i].hi > e.vpn })
	return i < len(rs) && rs[i].lo <= e.vpn && rs[i].epoch > e.stamp
}

// drop invalidates the entry in set s, counting the shootdown. Used both
// when a pending epoch shootdown lands on a touched entry and for direct
// single-page invalidations — the total matches the eager reference either
// way, since the reference would have counted the same entry exactly once.
func (t *TLB) drop(s int, e *tlbEntry) {
	e.valid = false
	t.setValid[s]--
	t.valid--
	t.shootdowns++
}

// Lookup searches for the translation of va, updating LRU order and
// hit/miss counters. A matching entry superseded by a pending epoch
// shootdown resolves to a miss here (at most one live entry per vpn exists,
// so no further scan can hit).
func (t *TLB) Lookup(va uint64) (PTE, bool) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	set := t.set(s)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			if t.stale(&set[i]) {
				t.drop(s, &set[i])
				break
			}
			// Move to front (MRU).
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return PTE{}, false
}

// Insert fills the translation for va, evicting the set's LRU entry if
// full. A stale match or stale evictee resolves first, so the structural
// outcome (overwrite-in-place vs evict) matches the eager reference.
func (t *TLB) Insert(va uint64, pte PTE) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	set := t.set(s)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			if t.stale(&set[i]) {
				t.drop(s, &set[i])
				break
			}
			copy(set[1:i+1], set[:i])
			set[0] = tlbEntry{vpn: vpn, pte: pte, stamp: t.epoch, valid: true}
			return
		}
	}
	evictedValid := false
	if int(t.setLen[s]) < t.ways {
		t.setLen[s]++
		set = t.set(s)
	} else {
		last := &set[len(set)-1]
		if last.valid && t.stale(last) {
			t.drop(s, last)
		}
		evictedValid = last.valid
	}
	copy(set[1:], set)
	set[0] = tlbEntry{vpn: vpn, pte: pte, stamp: t.epoch, valid: true}
	if !evictedValid {
		t.setValid[s]++
		t.valid++
	}
}

// Invalidate drops the entry for va if present (single-page shootdown).
func (t *TLB) Invalidate(va uint64) {
	vpn := va >> t.pageBits
	s := t.setOf(vpn)
	if t.setValid[s] == 0 {
		return
	}
	set := t.set(s)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.drop(s, &set[i])
			return
		}
	}
}

// InvalidateRange shoots down all entries covering [va, va+pages). On the
// epoch path a multi-page shootdown records the range with a fresh epoch —
// O(log ranges) plus a splice — and covered entries self-invalidate when
// next touched (or at the next reconcile), so whole-tensor shootdowns no
// longer sweep sets×ways entries. The reference path scans: per-page
// probes when the range is small, one pass over all entries otherwise.
func (t *TLB) InvalidateRange(va uint64, pages int64) {
	if pages <= 0 || t.valid == 0 {
		return
	}
	if !t.reference {
		if pages == 1 {
			t.Invalidate(va)
			return
		}
		lo := va >> t.pageBits
		t.epoch++
		t.epochShootdowns++
		t.noteRange(lo, lo+uint64(pages))
		if len(t.ranges) > maxTLBRanges {
			t.reconcile()
		}
		return
	}
	if pages <= int64(t.sets) {
		for i := int64(0); i < pages; i++ {
			t.Invalidate(va + uint64(i)<<t.pageBits)
		}
		return
	}
	lo := va >> t.pageBits
	hi := lo + uint64(pages)
	for s := 0; s < t.sets; s++ {
		if t.setValid[s] == 0 {
			continue
		}
		set := t.set(s)
		for i := range set {
			if set[i].valid && set[i].vpn >= lo && set[i].vpn < hi {
				t.drop(s, &set[i])
			}
		}
	}
}

// noteRange splices [lo, hi) at the current epoch into the sorted,
// non-overlapping range list, trimming older ranges it covers (their
// surviving remainders keep their own epochs).
func (t *TLB) noteRange(lo, hi uint64) {
	rs := t.ranges
	i := sort.Search(len(rs), func(i int) bool { return rs[i].hi > lo })
	j := i
	var repl [3]tlbRange
	nrepl := 0
	for j < len(rs) && rs[j].lo < hi {
		if r := rs[j]; r.lo < lo {
			repl[nrepl] = tlbRange{lo: r.lo, hi: lo, epoch: r.epoch}
			nrepl++
		}
		j++
	}
	repl[nrepl] = tlbRange{lo: lo, hi: hi, epoch: t.epoch}
	nrepl++
	if j > i {
		if r := rs[j-1]; r.hi > hi {
			repl[nrepl] = tlbRange{lo: hi, hi: r.hi, epoch: r.epoch}
			nrepl++
		}
	}
	old := len(rs)
	switch delta := nrepl - (j - i); {
	case delta > 0:
		for k := 0; k < delta; k++ {
			rs = append(rs, tlbRange{})
		}
		copy(rs[j+delta:], rs[j:old])
	case delta < 0:
		copy(rs[i+nrepl:], rs[j:])
		rs = rs[:old+delta]
	}
	copy(rs[i:], repl[:nrepl])
	t.ranges = rs
}

// reconcile applies every pending epoch shootdown eagerly, making the
// valid counts and the shootdown counter exact, then clears the range
// list (surviving entries stay live under the no-covering-range rule).
func (t *TLB) reconcile() {
	if len(t.ranges) == 0 {
		return
	}
	for s := 0; s < t.sets; s++ {
		if t.setValid[s] == 0 {
			continue
		}
		set := t.set(s)
		for i := range set {
			if set[i].valid && t.stale(&set[i]) {
				t.drop(s, &set[i])
			}
		}
	}
	t.ranges = t.ranges[:0]
}

// Flush drops every entry, counting one shootdown per entry actually
// dropped (consistent with InvalidateRange's per-entry accounting); a
// flush of an empty TLB shoots nothing down.
func (t *TLB) Flush() {
	t.reconcile()
	t.shootdowns += t.valid
	t.valid = 0
	for s := range t.setLen {
		t.setLen[s] = 0
		t.setValid[s] = 0
	}
}

// Stats reports (hits, misses, shootdowns). Pending epoch shootdowns are
// reconciled first so the counts match the eager reference exactly.
func (t *TLB) Stats() (hits, misses, shootdowns int64) {
	t.reconcile()
	return t.hits, t.misses, t.shootdowns
}

// EpochShootdowns reports how many range shootdowns were served by an
// epoch bump instead of an entry sweep (0 on the reference path).
func (t *TLB) EpochShootdowns() int64 { return t.epochShootdowns }

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

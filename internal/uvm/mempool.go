package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// MemPool is a capacity arbiter over one host memory: every tenant of a
// cluster reserves staging space from the same pool, so a job that parks
// large working sets in host DRAM genuinely starves its neighbours (their
// evictions fall back to flash), which a statically divided capacity cannot
// model. A single-machine simulation owns a private pool, making the two
// configurations behave identically at one tenant.
//
// The pool is also a wakeup source for event-driven schedulers: a tenant
// whose reservation was denied can subscribe with AwaitFree and is notified
// — FIFO, grant-sized — when released capacity could satisfy it, instead of
// every tenant re-polling the pool on every event.
type MemPool struct {
	capacity units.Bytes
	used     units.Bytes
	waiters  []poolWaiter
	// scratch is the retired waiter array of the previous notify round; the
	// two backing arrays ping-pong so steady-state notification allocates
	// nothing. nil while a notify round is mid-wake (see notify).
	scratch []poolWaiter
}

// poolWaiter is one pending capacity subscription.
type poolWaiter struct {
	need units.Bytes
	wake func()
}

// NewMemPool builds a pool of the given capacity.
func NewMemPool(capacity units.Bytes) *MemPool {
	return &MemPool{capacity: capacity}
}

// Reserve claims n bytes; it reports false (claiming nothing) when the pool
// cannot hold them.
func (p *MemPool) Reserve(n units.Bytes) bool {
	if n < 0 || p.used+n > p.capacity {
		return false
	}
	p.used += n
	return true
}

// Release returns n previously reserved bytes to the pool and notifies
// waiters the freed capacity could satisfy.
func (p *MemPool) Release(n units.Bytes) {
	if n < 0 || n > p.used {
		panic(fmt.Sprintf("uvm: releasing %v from a pool holding %v", n, p.used))
	}
	p.used -= n
	p.notify()
}

// AwaitFree subscribes a wakeup for when at least need bytes could be
// reserved. Wakeups are advisory grants: the callback runs once (FIFO order
// among waiters, head first) after a Release leaves enough room, and the
// subscriber must re-attempt its reservation — nothing is held on its
// behalf. A need satisfiable right now fires on the next Release too, not
// immediately, so subscribing never re-enters the caller.
func (p *MemPool) AwaitFree(need units.Bytes, wake func()) {
	if need < 0 {
		need = 0
	}
	p.waiters = append(p.waiters, poolWaiter{need: need, wake: wake})
}

// notify pops waiters in FIFO order as long as the head's need fits the
// capacity not yet promised to an earlier grant this round. Deducting each
// grant before looking at the next waiter keeps one large Release from
// waking the whole queue at once (each wakeup is one grant).
//
// The FIFO order is a determinism contract, not just fairness: grant order
// is exactly subscription order, so any scheduler that subscribes its
// tenants in a fixed order (the cluster drivers use ascending tenant
// index) observes an identical wake sequence regardless of how the
// simulation work is partitioned — the sharded driver's byte-identity to
// the sequential one depends on it.
func (p *MemPool) notify() {
	grantable := p.Free()
	woken := 0
	for woken < len(p.waiters) && p.waiters[woken].need <= grantable {
		grantable -= p.waiters[woken].need
		woken++
	}
	if woken == 0 {
		return
	}
	// Compact the survivors into the recycled scratch array, then run the
	// grants off the retired one. The scratch is taken (nil) while the
	// wakeups run: a callback may Release reentrantly, and the nested
	// notify must not reuse the array this round is still walking.
	ready := p.waiters
	scratch := p.scratch
	p.scratch = nil
	p.waiters = append(scratch[:0], ready[woken:]...)
	for _, w := range ready[:woken] {
		w.wake()
	}
	p.scratch = ready[:0]
}

// Waiters reports the pending subscription count.
func (p *MemPool) Waiters() int { return len(p.waiters) }

// Capacity reports the pool size.
func (p *MemPool) Capacity() units.Bytes { return p.capacity }

// Used reports the reserved bytes.
func (p *MemPool) Used() units.Bytes { return p.used }

// Free reports the unreserved bytes.
func (p *MemPool) Free() units.Bytes { return p.capacity - p.used }

package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// MemPool is a capacity arbiter over one host memory: every tenant of a
// cluster reserves staging space from the same pool, so a job that parks
// large working sets in host DRAM genuinely starves its neighbours (their
// evictions fall back to flash), which a statically divided capacity cannot
// model. A single-machine simulation owns a private pool, making the two
// configurations behave identically at one tenant.
//
// The pool is also a wakeup source for event-driven schedulers: a tenant
// whose reservation was denied can subscribe with AwaitFree and is notified
// — FIFO, grant-sized — when released capacity could satisfy it, instead of
// every tenant re-polling the pool on every event.
type MemPool struct {
	capacity units.Bytes
	used     units.Bytes
	waiters  []poolWaiter
	// scratch is the retired waiter array of the previous notify round; the
	// two backing arrays ping-pong so steady-state notification allocates
	// nothing. nil while a notify round is mid-wake (see notify).
	scratch []poolWaiter
	// owned ledgers the bytes each tagged owner (ReserveFor) currently
	// holds, so a crashed tenant's grants can be bulk-released without the
	// caller replaying its reservation history. Lazily allocated; anonymous
	// Reserve/Release traffic never touches it.
	owned map[int]units.Bytes
}

// poolWaiter is one pending capacity subscription. owner is the tag passed
// to AwaitFreeFor (anonOwner for plain AwaitFree) so ReleaseAll can drop a
// dead tenant's subscriptions.
type poolWaiter struct {
	need  units.Bytes
	wake  func()
	owner int
}

// anonOwner tags reservations and subscriptions made through the untagged
// API; ReleaseAll never matches it.
const anonOwner = -1

// NewMemPool builds a pool of the given capacity.
func NewMemPool(capacity units.Bytes) *MemPool {
	return &MemPool{capacity: capacity}
}

// Reserve claims n bytes; it reports false (claiming nothing) when the pool
// cannot hold them.
func (p *MemPool) Reserve(n units.Bytes) bool {
	if n < 0 || p.used+n > p.capacity {
		return false
	}
	p.used += n
	return true
}

// Release returns n previously reserved bytes to the pool and notifies
// waiters the freed capacity could satisfy.
func (p *MemPool) Release(n units.Bytes) {
	if n < 0 || n > p.used {
		panic(fmt.Sprintf("uvm: releasing %v from a pool holding %v", n, p.used))
	}
	p.used -= n
	p.notify()
}

// AwaitFree subscribes a wakeup for when at least need bytes could be
// reserved. Wakeups are advisory grants: the callback runs once (FIFO order
// among waiters, head first) after a Release leaves enough room, and the
// subscriber must re-attempt its reservation — nothing is held on its
// behalf. A need satisfiable right now fires on the next Release too, not
// immediately, so subscribing never re-enters the caller.
func (p *MemPool) AwaitFree(need units.Bytes, wake func()) {
	p.AwaitFreeFor(anonOwner, need, wake)
}

// AwaitFreeFor is AwaitFree with the subscription tagged by owner, so a
// later ReleaseAll(owner) drops it (a dead tenant must not consume a grant
// a surviving waiter behind it is queued for).
func (p *MemPool) AwaitFreeFor(owner int, need units.Bytes, wake func()) {
	if need < 0 {
		need = 0
	}
	p.waiters = append(p.waiters, poolWaiter{need: need, wake: wake, owner: owner})
}

// ReserveFor is Reserve with the grant ledgered under owner for ReleaseAll.
func (p *MemPool) ReserveFor(owner int, n units.Bytes) bool {
	if !p.Reserve(n) {
		return false
	}
	if p.owned == nil {
		p.owned = make(map[int]units.Bytes)
	}
	p.owned[owner] += n
	return true
}

// ReleaseFor returns n bytes previously claimed with ReserveFor(owner).
func (p *MemPool) ReleaseFor(owner int, n units.Bytes) {
	if held := p.owned[owner]; n > held {
		panic(fmt.Sprintf("uvm: owner %d releasing %v but holds %v", owner, n, held))
	}
	p.owned[owner] -= n
	p.Release(n)
}

// OwnedBy reports the bytes owner currently holds via ReserveFor.
func (p *MemPool) OwnedBy(owner int) units.Bytes { return p.owned[owner] }

// ReleaseAll releases every byte owner holds and drops its pending
// subscriptions, then runs one FIFO notify round over the survivors — the
// bulk teardown a server crash needs. The round runs even when the owner
// held nothing: dropping a queue-head subscription alone can unblock the
// waiters behind it. Returns the bytes released.
func (p *MemPool) ReleaseAll(owner int) units.Bytes {
	n := p.owned[owner]
	delete(p.owned, owner)
	kept := p.waiters[:0]
	for _, w := range p.waiters {
		if w.owner != owner {
			kept = append(kept, w)
		}
	}
	p.waiters = kept
	if n > 0 {
		p.used -= n
	}
	p.notify()
	return n
}

// notify pops waiters in FIFO order as long as the head's need fits the
// capacity not yet promised to an earlier grant this round. Deducting each
// grant before looking at the next waiter keeps one large Release from
// waking the whole queue at once (each wakeup is one grant).
//
// The FIFO order is a determinism contract, not just fairness: grant order
// is exactly subscription order, so any scheduler that subscribes its
// tenants in a fixed order (the cluster drivers use ascending tenant
// index) observes an identical wake sequence regardless of how the
// simulation work is partitioned — the sharded driver's byte-identity to
// the sequential one depends on it.
func (p *MemPool) notify() {
	grantable := p.Free()
	woken := 0
	for woken < len(p.waiters) && p.waiters[woken].need <= grantable {
		grantable -= p.waiters[woken].need
		woken++
	}
	if woken == 0 {
		return
	}
	// Compact the survivors into the recycled scratch array, then run the
	// grants off the retired one. The scratch is taken (nil) while the
	// wakeups run: a callback may Release reentrantly, and the nested
	// notify must not reuse the array this round is still walking.
	ready := p.waiters
	scratch := p.scratch
	p.scratch = nil
	p.waiters = append(scratch[:0], ready[woken:]...)
	for _, w := range ready[:woken] {
		w.wake()
	}
	p.scratch = ready[:0]
}

// Waiters reports the pending subscription count.
func (p *MemPool) Waiters() int { return len(p.waiters) }

// Capacity reports the pool size.
func (p *MemPool) Capacity() units.Bytes { return p.capacity }

// Used reports the reserved bytes.
func (p *MemPool) Used() units.Bytes { return p.used }

// Free reports the unreserved bytes.
func (p *MemPool) Free() units.Bytes { return p.capacity - p.used }

package uvm

import (
	"fmt"

	"g10sim/internal/units"
)

// MemPool is a capacity arbiter over one host memory: every tenant of a
// cluster reserves staging space from the same pool, so a job that parks
// large working sets in host DRAM genuinely starves its neighbours (their
// evictions fall back to flash), which a statically divided capacity cannot
// model. A single-machine simulation owns a private pool, making the two
// configurations behave identically at one tenant.
type MemPool struct {
	capacity units.Bytes
	used     units.Bytes
}

// NewMemPool builds a pool of the given capacity.
func NewMemPool(capacity units.Bytes) *MemPool {
	return &MemPool{capacity: capacity}
}

// Reserve claims n bytes; it reports false (claiming nothing) when the pool
// cannot hold them.
func (p *MemPool) Reserve(n units.Bytes) bool {
	if n < 0 || p.used+n > p.capacity {
		return false
	}
	p.used += n
	return true
}

// Release returns n previously reserved bytes to the pool.
func (p *MemPool) Release(n units.Bytes) {
	if n < 0 || n > p.used {
		panic(fmt.Sprintf("uvm: releasing %v from a pool holding %v", n, p.used))
	}
	p.used -= n
}

// Capacity reports the pool size.
func (p *MemPool) Capacity() units.Bytes { return p.capacity }

// Used reports the reserved bytes.
func (p *MemPool) Used() units.Bytes { return p.used }

// Free reports the unreserved bytes.
func (p *MemPool) Free() units.Bytes { return p.capacity - p.used }

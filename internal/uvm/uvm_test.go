package uvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"g10sim/internal/units"
)

func TestPageTableMapTranslate(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	pt.Map(0x1000, PTE{Loc: InGPU, Addr: 42})
	pte, ok := pt.Translate(0x1000)
	if !ok || pte.Loc != InGPU || pte.Addr != 42 {
		t.Fatalf("Translate = %+v, %v", pte, ok)
	}
	// Same page, different offset.
	if pte2, ok := pt.Translate(0x1FFF); !ok || pte2 != pte {
		t.Error("offset within page translated differently")
	}
	// Next page unmapped.
	if _, ok := pt.Translate(0x2000); ok {
		t.Error("unmapped page translated")
	}
	if pt.Mapped() != 1 {
		t.Errorf("Mapped = %d", pt.Mapped())
	}
}

func TestPageTableRemapAndUnmap(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	pt.Map(0x4000, PTE{Loc: InGPU, Addr: 1})
	pt.Map(0x4000, PTE{Loc: InFlash, Addr: 9}) // migration updates in place
	if pt.Mapped() != 1 {
		t.Errorf("remap changed count: %d", pt.Mapped())
	}
	pte, _ := pt.Translate(0x4000)
	if pte.Loc != InFlash || pte.Addr != 9 {
		t.Errorf("remapped PTE = %+v", pte)
	}
	if !pt.Unmap(0x4000) {
		t.Error("Unmap returned false")
	}
	if pt.Unmap(0x4000) {
		t.Error("double Unmap returned true")
	}
	if _, ok := pt.Translate(0x4000); ok {
		t.Error("translated after unmap")
	}
}

func TestPageTableFlashPTEs(t *testing.T) {
	// The G10 extension: leaf PTEs can point at flash addresses (§4.5).
	pt := MustNewPageTable(4 * units.KB)
	pt.MapRange(0x10_0000, 16, InFlash, 7000)
	loc, ok := pt.RangeLocation(0x10_0000, 16)
	if !ok || loc != InFlash {
		t.Fatalf("RangeLocation = %v, %v", loc, ok)
	}
	pte, _ := pt.Translate(0x10_0000 + 5*4096)
	if pte.Addr != 7005 {
		t.Errorf("5th page addr = %d, want 7005", pte.Addr)
	}
}

func TestPageTableRangeOps(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	pt.MapRange(0, 1000, InGPU, 0)
	if pt.Mapped() != 1000 {
		t.Errorf("Mapped = %d", pt.Mapped())
	}
	// Migrate the middle third to host.
	pt.MapRange(333*4096, 334, InHost, 10)
	if _, ok := pt.RangeLocation(0, 1000); ok {
		t.Error("mixed range reported uniform")
	}
	if loc, ok := pt.RangeLocation(333*4096, 334); !ok || loc != InHost {
		t.Error("migrated range not in host")
	}
	if n := pt.UnmapRange(0, 1000); n != 1000 {
		t.Errorf("UnmapRange = %d", n)
	}
	if pt.Mapped() != 0 {
		t.Errorf("Mapped after unmap = %d", pt.Mapped())
	}
}

func TestPageTableHighAddresses(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	// Spread across the 48-bit space to hit distinct radix subtrees.
	vas := []uint64{0, 1 << 20, 1 << 30, 1 << 38, 1<<39 + 12345<<12}
	for i, va := range vas {
		pt.Map(va, PTE{Loc: InHost, Addr: uint64(i)})
	}
	for i, va := range vas {
		pte, ok := pt.Translate(va)
		if !ok || pte.Addr != uint64(i) {
			t.Errorf("va %#x => %+v, %v", va, pte, ok)
		}
	}
}

func TestNewPageTableRejectsBadPageSize(t *testing.T) {
	for _, sz := range []units.Bytes{0, 3000, -4096} {
		if _, err := NewPageTable(sz); err == nil {
			t.Errorf("page size %d accepted", sz)
		}
	}
}

// Property: translate(map(va, pte)) == pte for random addresses; unmap
// clears exactly the mapped page.
func TestPageTableRoundTripProperty(t *testing.T) {
	pt := MustNewPageTable(4 * units.KB)
	f := func(vpnRaw uint32, addr uint32) bool {
		va := uint64(vpnRaw) << 12
		pte := PTE{Loc: InFlash, Addr: uint64(addr)}
		pt.Map(va, pte)
		got, ok := pt.Translate(va)
		if !ok || got != pte {
			return false
		}
		if !pt.Unmap(va) {
			return false
		}
		_, ok = pt.Translate(va)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: range ops agree with per-page ops.
func TestRangeAgreesWithPerPage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := MustNewPageTable(4 * units.KB)
		b := MustNewPageTable(4 * units.KB)
		base := uint64(rng.Intn(1<<20)) << 12
		pages := int64(rng.Intn(50) + 1)
		addr := uint64(rng.Intn(1 << 20))
		a.MapRange(base, pages, InHost, addr)
		for i := int64(0); i < pages; i++ {
			b.Map(base+uint64(i)*4096, PTE{Loc: InHost, Addr: addr + uint64(i)})
		}
		for i := int64(0); i < pages; i++ {
			va := base + uint64(i)*4096
			pa, oka := a.Translate(va)
			pb, okb := b.Translate(va)
			if oka != okb || pa != pb {
				t.Fatalf("trial %d page %d: range %+v/%v vs per-page %+v/%v", trial, i, pa, oka, pb, okb)
			}
		}
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tlb := MustNewTLB(1, 2, 4*units.KB) // one set, two ways
	pteA := PTE{Loc: InGPU, Addr: 1}
	pteB := PTE{Loc: InGPU, Addr: 2}
	pteC := PTE{Loc: InGPU, Addr: 3}
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(0x1000, pteA)
	tlb.Insert(0x2000, pteB)
	if got, ok := tlb.Lookup(0x1000); !ok || got != pteA {
		t.Fatal("miss after insert")
	}
	// A is now MRU; inserting C evicts B (LRU).
	tlb.Insert(0x3000, pteC)
	if _, ok := tlb.Lookup(0x2000); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := tlb.Lookup(0x1000); !ok {
		t.Error("MRU entry evicted")
	}
	// Lookups: empty miss, hit(A), miss(B evicted), hit(A) = 2 hits, 2 misses.
	hits, misses, _ := tlb.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
	if tlb.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", tlb.HitRate())
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := MustNewTLB(4, 4, 4*units.KB)
	tlb.Insert(0x1000, PTE{Loc: InGPU, Addr: 1})
	tlb.Invalidate(0x1000)
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("hit after invalidate")
	}
	for i := uint64(0); i < 8; i++ {
		tlb.Insert(i<<12, PTE{Loc: InGPU, Addr: i})
	}
	tlb.InvalidateRange(0, 8)
	for i := uint64(0); i < 8; i++ {
		if _, ok := tlb.Lookup(i << 12); ok {
			t.Fatalf("page %d survived range shootdown", i)
		}
	}
	tlb.Insert(0x9000, PTE{Loc: InHost, Addr: 9})
	tlb.Flush()
	if _, ok := tlb.Lookup(0x9000); ok {
		t.Error("hit after flush")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb := MustNewTLB(2, 2, 4*units.KB)
	tlb.Insert(0x1000, PTE{Loc: InGPU, Addr: 1})
	tlb.Insert(0x1000, PTE{Loc: InFlash, Addr: 2}) // migration re-insert
	got, ok := tlb.Lookup(0x1000)
	if !ok || got.Loc != InFlash || got.Addr != 2 {
		t.Errorf("updated entry = %+v, %v", got, ok)
	}
}

func TestNewTLBRejectsBadConfig(t *testing.T) {
	if _, err := NewTLB(0, 4, 4*units.KB); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := NewTLB(4, 0, 4*units.KB); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := NewTLB(4, 4, 3000); err == nil {
		t.Error("non-power-of-two page accepted")
	}
}

func TestArbiterPriorities(t *testing.T) {
	q := &Queues{}
	q.Push(&Request{Kind: PreEvict, TensorID: 1, Bytes: units.MB})
	q.Push(&Request{Kind: Prefetch, TensorID: 2, Bytes: units.MB})
	q.Push(&Request{Kind: FaultFetch, TensorID: 3, Bytes: units.MB})
	q.Push(&Request{Kind: FaultFetch, TensorID: 4, Bytes: units.MB})

	a := &Arbiter{MaxBatchBytes: 10 * units.MB}
	set := a.NextTransferSet(q)
	if len(set) != 4 {
		t.Fatalf("set size = %d", len(set))
	}
	// Faults first, then prefetch, then evict.
	order := []int{3, 4, 2, 1}
	for i, want := range order {
		if set[i].TensorID != want {
			t.Errorf("set[%d] = tensor %d, want %d", i, set[i].TensorID, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queues not drained: %d", q.Len())
	}
}

func TestArbiterBatchLimit(t *testing.T) {
	q := &Queues{}
	for i := 0; i < 5; i++ {
		q.Push(&Request{Kind: Prefetch, TensorID: i, Bytes: 4 * units.MB})
	}
	a := &Arbiter{MaxBatchBytes: 10 * units.MB}
	// 4+4 = 8MB fits; adding the third would exceed 10MB, so sets come out
	// as 2, 2, 1.
	for i, want := range []int{2, 2, 1} {
		set := a.NextTransferSet(q)
		if len(set) != want {
			t.Fatalf("set %d size = %d, want %d", i, len(set), want)
		}
	}
	if a.NextTransferSet(q) != nil {
		t.Error("empty queues yielded a set")
	}
}

func TestArbiterOversizedRequestStillReleased(t *testing.T) {
	q := &Queues{}
	q.Push(&Request{Kind: PreEvict, TensorID: 9, Bytes: units.GB})
	a := &Arbiter{MaxBatchBytes: units.MB}
	set := a.NextTransferSet(q)
	if len(set) != 1 || set[0].TensorID != 9 {
		t.Fatalf("oversized request not released: %v", set)
	}
}

func TestQueueLens(t *testing.T) {
	q := &Queues{}
	q.Push(&Request{Kind: Prefetch})
	q.Push(&Request{Kind: PreEvict})
	if q.LenOf(Prefetch) != 1 || q.LenOf(PreEvict) != 1 || q.LenOf(FaultFetch) != 0 {
		t.Error("LenOf wrong")
	}
	if FaultFetch.String() != "fault" || Prefetch.String() != "prefetch" || PreEvict.String() != "pre-evict" {
		t.Error("kind strings wrong")
	}
	if InFlash.String() != "flash" || Unmapped.String() != "unmapped" {
		t.Error("location strings wrong")
	}
}

func TestTLBManyRandomInsertLookup(t *testing.T) {
	tlb := MustNewTLB(64, 8, 4*units.KB)
	rng := rand.New(rand.NewSource(123))
	ref := map[uint64]PTE{}
	for i := 0; i < 5000; i++ {
		va := uint64(rng.Intn(4096)) << 12
		pte := PTE{Loc: InHost, Addr: uint64(rng.Intn(1 << 20))}
		tlb.Insert(va, pte)
		ref[va>>12] = pte
	}
	// Every hit must agree with the reference (misses are allowed — the
	// TLB is smaller than the working set).
	for vpn, want := range ref {
		if got, ok := tlb.Lookup(vpn << 12); ok && got != want {
			t.Fatalf("vpn %d: stale entry %+v, want %+v", vpn, got, want)
		}
	}
}

func TestScheduledRequestKeepsFaultPriority(t *testing.T) {
	// A Scheduled demand miss rides the fault queue ahead of ordinary
	// prefetches (G10's late-tensor handling).
	q := &Queues{}
	q.Push(&Request{Kind: Prefetch, TensorID: 1, Bytes: units.MB})
	q.Push(&Request{Kind: FaultFetch, TensorID: 2, Bytes: units.MB, Scheduled: true})
	a := &Arbiter{MaxBatchBytes: 10 * units.MB}
	set := a.NextTransferSet(q)
	if len(set) != 2 || set[0].TensorID != 2 {
		t.Fatalf("scheduled demand miss not first: %+v", set)
	}
	if !set[0].Scheduled || set[1].Scheduled {
		t.Error("Scheduled flag lost in transit")
	}
}

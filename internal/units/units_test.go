package units

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50µs"},
		{45 * Microsecond, "45.00µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
		{Forever, "forever"},
		{-45 * Microsecond, "-45.00µs"},
		// -2^63 must not recurse on negation (FuzzTraceLoad regression).
		{-1 << 63, "-forever"},
		{-Forever, "-forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.0KB"},
		{40 * GB, "40.00GB"},
		{3200 * GB, "3.12TB"}, // 3.125 rounds half-to-even
		{-KB, "-1.0KB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 3.2 GB at 3.2 GB/s should take one second.
	gb := float64(GB) // force runtime conversion; 3.2*GB is not an integer constant
	size := Bytes(3.2 * gb)
	got := TransferTime(size, GBps(3.2))
	if diff := got - Second; diff > Microsecond || diff < -Microsecond {
		t.Errorf("TransferTime(3.2GB, 3.2GB/s) = %v, want ~1s", got)
	}
	if got := TransferTime(GB, 0); got != Forever {
		t.Errorf("TransferTime at zero bandwidth = %v, want Forever", got)
	}
	if got := TransferTime(0, GBps(1)); got != 0 {
		t.Errorf("TransferTime(0 bytes) = %v, want 0", got)
	}
	if got := TransferTime(-5, GBps(1)); got != 0 {
		t.Errorf("TransferTime(negative bytes) = %v, want 0", got)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	// Property: more bytes never take less time at fixed bandwidth.
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, GBps(3.0)) <= TransferTime(y, GBps(3.0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		n, page Bytes
		want    int64
	}{
		{0, 4 * KB, 0},
		{1, 4 * KB, 1},
		{4 * KB, 4 * KB, 1},
		{4*KB + 1, 4 * KB, 2},
		{40 * GB, 4 * KB, 10 * 1024 * 1024},
	}
	for _, c := range cases {
		if got := PagesFor(c.n, c.page); got != c.want {
			t.Errorf("PagesFor(%d, %d) = %d, want %d", c.n, c.page, got, c.want)
		}
	}
}

func TestPagesForPanicsOnBadPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PagesFor(1, 0) did not panic")
		}
	}()
	PagesFor(1, 0)
}

func TestPagesForCoversExactly(t *testing.T) {
	// Property: pages*pageSize covers n but removing one page does not.
	f := func(n uint32, shift uint8) bool {
		page := Bytes(1) << (shift%8 + 9) // 512B..64KB
		sz := Bytes(n)
		p := PagesFor(sz, page)
		if sz == 0 {
			return p == 0
		}
		return Bytes(p)*page >= sz && Bytes(p-1)*page < sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if MinTime(1, 2) != 1 || MaxTime(1, 2) != 2 {
		t.Error("MinTime/MaxTime wrong")
	}
	if MinBytes(3, 2) != 2 || MaxBytes(3, 2) != 3 {
		t.Error("MinBytes/MaxBytes wrong")
	}
}

func TestBandwidthRoundTrip(t *testing.T) {
	bw := GBps(15.754)
	if v := bw.GBpsValue(); v < 15.753 || v > 15.755 {
		t.Errorf("GBpsValue = %v, want 15.754", v)
	}
	if s := bw.String(); s != "15.75GB/s" {
		t.Errorf("String = %q", s)
	}
}

// Package units provides the base quantities used throughout the simulator:
// simulated time, byte sizes, and bandwidths.
//
// Simulated time is an int64 nanosecond count from the start of the
// simulation. It is deliberately not time.Time: simulations start at zero and
// only durations and ordering matter. Bandwidth is bytes per second as a
// float64 so that transfer-time arithmetic stays exact enough at GB/s scales.
package units

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel "infinitely far in the future" time.
const Forever Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t == -1<<63:
		// -2^63 has no positive counterpart; negating it would recurse
		// forever (found by FuzzTraceLoad via an overflowing trace total).
		return "-forever"
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Bytes is a byte count (tensor sizes, memory capacities, traffic volumes).
type Bytes int64

// Common sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// GiB reports b as floating-point gibibytes.
func (b Bytes) GiB() float64 { return float64(b) / float64(GB) }

// String formats the size with an adaptive unit.
func (b Bytes) String() string {
	switch {
	case b < 0:
		return fmt.Sprintf("-%v", -b)
	case b < KB:
		return fmt.Sprintf("%dB", int64(b))
	case b < MB:
		return fmt.Sprintf("%.1fKB", float64(b)/float64(KB))
	case b < GB:
		return fmt.Sprintf("%.1fMB", float64(b)/float64(MB))
	case b < TB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	default:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	}
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// GBps builds a Bandwidth from gigabytes (10^9 semantics are NOT used;
// this simulator follows the paper's convention of binary GB) per second.
func GBps(gb float64) Bandwidth { return Bandwidth(gb * float64(GB)) }

// GBpsValue reports the bandwidth in (binary) GB per second.
func (bw Bandwidth) GBpsValue() float64 { return float64(bw) / float64(GB) }

// String formats the bandwidth in GB/s.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.2fGB/s", bw.GBpsValue()) }

// TransferTime reports how long moving n bytes takes at bandwidth bw.
// A non-positive bandwidth yields Forever (the transfer can never finish).
func TransferTime(n Bytes, bw Bandwidth) Duration {
	if bw <= 0 {
		return Forever
	}
	if n <= 0 {
		return 0
	}
	secs := float64(n) / float64(bw)
	return Duration(secs * float64(Second))
}

// PagesFor reports how many pages of pageSize bytes are needed to hold n
// bytes (ceiling division). pageSize must be positive.
func PagesFor(n Bytes, pageSize Bytes) int64 {
	if pageSize <= 0 {
		panic("units: non-positive page size")
	}
	if n <= 0 {
		return 0
	}
	return int64((n + pageSize - 1) / pageSize)
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinBytes returns the smaller of a and b.
func MinBytes(a, b Bytes) Bytes {
	if a < b {
		return a
	}
	return b
}

// MaxBytes returns the larger of a and b.
func MaxBytes(a, b Bytes) Bytes {
	if a > b {
		return a
	}
	return b
}

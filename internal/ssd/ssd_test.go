package ssd

import (
	"math/rand"
	"strings"
	"testing"

	"g10sim/internal/units"
)

// smallConfig is a 64MB device with 4KB mapping units for fast tests.
func smallConfig() Config {
	return Config{
		Channels:        2,
		ChipsPerChannel: 2,
		PageSize:        4 * units.KB,
		PagesPerBlock:   16,
		Capacity:        64 * units.MB,
		OverProvision:   0.15,
		GCThreshold:     0.08,
		ReadBandwidth:   units.GBps(3.2),
		WriteBandwidth:  units.GBps(3.0),
		ReadLatency:     20 * units.Microsecond,
		WriteLatency:    16 * units.Microsecond,
	}
}

func TestAllocWriteReadRoundTrip(t *testing.T) {
	d := MustNew(smallConfig())
	r, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(r); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.HostWriteBytes != 100*4*units.KB || st.HostReadBytes != 100*4*units.KB {
		t.Errorf("stats = %+v", st)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnmappedFails(t *testing.T) {
	d := MustNew(smallConfig())
	r, _ := d.Alloc(10)
	if err := d.Read(r); err == nil {
		t.Error("read of never-written range succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	d := MustNew(smallConfig())
	logical := int64(64 * units.MB / (4 * units.KB))
	if _, err := d.Alloc(logical); err != nil {
		t.Fatalf("full-device alloc failed: %v", err)
	}
	if _, err := d.Alloc(1); err == nil {
		t.Error("over-alloc succeeded")
	}
}

func TestFreeEnablesReuse(t *testing.T) {
	d := MustNew(smallConfig())
	logical := int64(64 * units.MB / (4 * units.KB))
	r, err := d.Alloc(logical)
	if err != nil {
		t.Fatal(err)
	}
	d.Free(r)
	r2, err := d.Alloc(logical / 2)
	if err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	if _, err := d.Write(r2); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteInvalidatesOldPages(t *testing.T) {
	d := MustNew(smallConfig())
	r, _ := d.Alloc(50)
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	free1 := d.FreePhysicalPages()
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	free2 := d.FreePhysicalPages()
	if free2 >= free1 {
		t.Errorf("rewrite did not consume fresh pages: %d -> %d", free1, free2)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// WA is still 1 until GC runs.
	if wa := d.WriteAmplification(); wa != 1 {
		t.Errorf("WA before GC = %v", wa)
	}
}

func TestGCReclaimsSpaceUnderChurn(t *testing.T) {
	d := MustNew(smallConfig())
	// Fill 70% of the logical space, then rewrite it repeatedly: GC must
	// keep the device writable and WA must stay finite and >= 1.
	logical := int64(64 * units.MB / (4 * units.KB))
	r, err := d.Alloc(logical * 7 / 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := d.Write(r); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
	}
	if d.Stats().GCRuns == 0 {
		t.Error("GC never ran under churn")
	}
	wa := d.WriteAmplification()
	if wa < 1 || wa > 5 {
		t.Errorf("write amplification = %v, want [1, 5]", wa)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestWAGrowsWithUtilization(t *testing.T) {
	// Random sub-range overwrites fragment block validity; sequential
	// rewrites would age out whole blocks and keep WA at 1.
	churn := func(frac float64) float64 {
		rng := rand.New(rand.NewSource(3))
		d := MustNew(smallConfig())
		logical := int64(64 * units.MB / (4 * units.KB))
		n := int64(float64(logical) * frac)
		r, err := d.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Write(r); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 12*n/8; i++ {
			off := rng.Int63n(n - 8)
			sub := LogicalRange{Start: r.Start + off, Count: 8}
			if _, err := d.Write(sub); err != nil {
				t.Fatal(err)
			}
		}
		return d.WriteAmplification()
	}
	low := churn(0.3)
	high := churn(0.9)
	if high < low {
		t.Errorf("WA at 90%% utilization (%v) below WA at 30%% (%v)", high, low)
	}
	if high <= 1 {
		t.Errorf("WA at 90%% utilization = %v, want > 1", high)
	}
}

func TestEffectiveWriteBandwidthDegradesWithWA(t *testing.T) {
	d := MustNew(smallConfig())
	rated := d.Config().WriteBandwidth
	if d.EffectiveWriteBandwidth() != rated {
		t.Error("fresh device should deliver rated write bandwidth")
	}
	logical := int64(64 * units.MB / (4 * units.KB))
	n := logical * 9 / 10
	r, _ := d.Alloc(n)
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := int64(0); i < 12*n/8; i++ {
		off := rng.Int63n(n - 8)
		if _, err := d.Write(LogicalRange{Start: r.Start + off, Count: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if eff := d.EffectiveWriteBandwidth(); eff >= rated {
		t.Errorf("effective write bandwidth %v did not degrade from %v under churn", eff, rated)
	}
	if d.EffectiveReadBandwidth() != d.Config().ReadBandwidth {
		t.Error("read bandwidth should stay rated")
	}
}

// TestEffectiveWriteBandwidthCacheTracksWrites: the cached effective write
// bandwidth must be indistinguishable from recomputing it — every Write
// (including the GC it may trigger) invalidates the cache.
func TestEffectiveWriteBandwidthCacheTracksWrites(t *testing.T) {
	d := MustNew(smallConfig())
	logical := int64(64 * units.MB / (4 * units.KB))
	n := logical * 9 / 10
	r, _ := d.Alloc(n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		off := rng.Int63n(n - 8)
		if _, err := d.Write(LogicalRange{Start: r.Start + off, Count: 8}); err != nil {
			t.Fatal(err)
		}
		want := units.Bandwidth(float64(d.Config().WriteBandwidth) / d.WriteAmplification())
		if got := d.EffectiveWriteBandwidth(); got != want {
			t.Fatalf("write %d: cached effective bandwidth %v, fresh computation %v", i, got, want)
		}
		// Re-reading without an intervening write must hit the cache and
		// return the identical value.
		if got := d.EffectiveWriteBandwidth(); got != want {
			t.Fatalf("write %d: cache re-read drifted to %v from %v", i, got, want)
		}
	}
}

func TestLifetimeYearsMatchesPaperFormula(t *testing.T) {
	// §7.7: 30 DWPD × 1825 days × 3.2TB at 1.5 GB/s of writes ≈ 3.7 years.
	cfg := ZNAND()
	years := cfg.LifetimeYears(units.GBps(1.5))
	if years < 3.5 || years > 3.9 {
		t.Errorf("lifetime = %.2f years, paper computes ~3.7", years)
	}
	if cfg.LifetimeYears(0) != 0 {
		t.Error("zero write rate should yield zero lifetime")
	}
	// Halving the write rate doubles the lifetime.
	double := cfg.LifetimeYears(units.GBps(0.75))
	if ratio := double / years; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("lifetime scaling ratio = %v", ratio)
	}
}

func TestZNANDDefaults(t *testing.T) {
	cfg := ZNAND()
	if cfg.Capacity != 3200*units.GB {
		t.Errorf("capacity = %v", cfg.Capacity)
	}
	if cfg.ReadBandwidth.GBpsValue() != 3.2 || cfg.WriteBandwidth.GBpsValue() != 3.0 {
		t.Error("bandwidths do not match Table 2")
	}
	if cfg.ReadLatency != 20*units.Microsecond || cfg.WriteLatency != 16*units.Microsecond {
		t.Error("latencies do not match Table 2")
	}
	d := MustNew(cfg)
	if got := d.PagesFor(units.GB); got != 1024 {
		t.Errorf("PagesFor(1GB) = %d with 1MB pages", got)
	}
}

func TestNewRejectsTinyGeometry(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 64 * units.KB
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Errorf("expected geometry error, got %v", err)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	d := MustNew(smallConfig())
	if _, err := d.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := d.Alloc(-3); err == nil {
		t.Error("Alloc(-3) succeeded")
	}
}

// TestRandomChurnConsistency fuzzes alloc/write/free cycles and checks FTL
// invariants hold throughout.
func TestRandomChurnConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := MustNew(smallConfig())
	live := []LogicalRange{}
	for step := 0; step < 400; step++ {
		switch rng.Intn(3) {
		case 0: // alloc+write
			n := int64(rng.Intn(64) + 1)
			r, err := d.Alloc(n)
			if err != nil {
				// Device full: free something instead.
				if len(live) > 0 {
					d.Free(live[0])
					live = live[1:]
				}
				continue
			}
			if _, err := d.Write(r); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			live = append(live, r)
		case 1: // rewrite
			if len(live) == 0 {
				continue
			}
			r := live[rng.Intn(len(live))]
			if _, err := d.Write(r); err != nil {
				t.Fatalf("step %d rewrite: %v", step, err)
			}
		case 2: // free
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			d.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if step%50 == 0 {
			if err := d.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if d.WriteAmplification() < 1 {
		t.Errorf("WA = %v < 1", d.WriteAmplification())
	}
}

func TestGCReportsRelocations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := MustNew(smallConfig())
	logical := int64(64 * units.MB / (4 * units.KB))
	n := logical * 9 / 10
	r, _ := d.Alloc(n)
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := int64(0); i < 12*n/8; i++ {
		off := rng.Int63n(n - 8)
		gc, err := d.Write(LogicalRange{Start: r.Start + off, Count: 8})
		if err != nil {
			t.Fatal(err)
		}
		total += gc
	}
	if total != d.Stats().GCRelocated {
		t.Errorf("per-write GC sum %d != stats %d", total, d.Stats().GCRelocated)
	}
	if total == 0 {
		t.Error("expected GC relocations under 90% churn")
	}
}

// TestFailDies: die failures shrink bandwidth and allocatable space by the
// dead fraction, clamp so one die survives, and leave written data readable.
func TestFailDies(t *testing.T) {
	d := MustNew(smallConfig()) // 2 channels x 2 chips = 4 dies
	r, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	wbw, rbw := d.EffectiveWriteBandwidth(), d.EffectiveReadBandwidth()

	if got := d.FailDies(2); got != 2 {
		t.Fatalf("FailDies(2) = %d, want 2", got)
	}
	if d.DeadChips() != 2 {
		t.Errorf("DeadChips = %d, want 2", d.DeadChips())
	}
	if got := d.EffectiveWriteBandwidth(); got != wbw/2 {
		t.Errorf("write bandwidth = %v after losing half the dies, want %v", got, wbw/2)
	}
	if got := d.EffectiveReadBandwidth(); got != rbw/2 {
		t.Errorf("read bandwidth = %v after losing half the dies, want %v", got, rbw/2)
	}
	if err := d.Read(r); err != nil {
		t.Errorf("surviving data unreadable after die failure: %v", err)
	}

	// At least one die always survives: asking for the rest clamps.
	if got := d.FailDies(10); got != 1 {
		t.Errorf("FailDies(10) = %d with one spare die, want 1", got)
	}
	if got := d.FailDies(1); got != 0 {
		t.Errorf("FailDies on the last die = %d, want 0", got)
	}
}

// TestFailDiesShrinksAllocTail: dead dies bound new allocations while
// existing ranges persist.
func TestFailDiesShrinksAllocTail(t *testing.T) {
	d := MustNew(smallConfig())
	total := d.logicalPages
	r, err := d.Alloc(total / 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(r); err != nil {
		t.Fatal(err)
	}
	d.FailDies(2) // half the array gone
	if _, err := d.Alloc(total / 2); err == nil {
		t.Error("alloc past the shrunken tail succeeded")
	}
	if _, err := d.Alloc(total / 8); err != nil {
		t.Errorf("alloc within the surviving space failed: %v", err)
	}
	if err := d.Read(r); err != nil {
		t.Errorf("pre-failure range unreadable: %v", err)
	}
}

// TestHealthyDeviceBandwidthExact: with no failures the alive fraction must
// be exactly 1.0 — fault-free effective bandwidths are bit-identical to the
// pre-fault-model values.
func TestHealthyDeviceBandwidthExact(t *testing.T) {
	d := MustNew(smallConfig())
	cfg := smallConfig().withDefaults()
	if got := d.EffectiveReadBandwidth(); got != cfg.ReadBandwidth {
		t.Errorf("healthy read bandwidth = %v, want rated %v", got, cfg.ReadBandwidth)
	}
	if got := d.EffectiveWriteBandwidth(); got != cfg.WriteBandwidth {
		t.Errorf("healthy write bandwidth = %v, want rated %v (WA=1)", got, cfg.WriteBandwidth)
	}
}

package ssd

import (
	"testing"

	"g10sim/internal/units"
)

// tenantTestConfig is a small device that GCs quickly under churn.
func tenantTestConfig() Config {
	cfg := ZNAND()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.Capacity = 128 * units.MB
	cfg.PageSize = 64 * units.KB
	cfg.OverProvision = 0.10
	return cfg
}

func mustAllocWrite(t *testing.T, v *Tenant, pages int64) LogicalRange {
	t.Helper()
	r, err := v.Alloc(pages)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(r); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTenantAttributionSumsToDevice: with two tenants churning one device,
// each device counter must equal the sum of the tenants' attributed shares.
func TestTenantAttributionSumsToDevice(t *testing.T) {
	d := MustNew(tenantTestConfig())
	a, b := d.Tenant(), d.Tenant()
	ra := mustAllocWrite(t, a, 200)
	rb := mustAllocWrite(t, b, 100)
	// Churn: rewrites invalidate and force log growth (and eventually GC).
	for i := 0; i < 24; i++ {
		if _, err := a.Write(ra); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Write(rb); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Read(ra); err != nil {
		t.Fatal(err)
	}
	dev, sa, sb := d.Stats(), a.Stats(), b.Stats()
	sum := Stats{
		HostReadBytes:  sa.HostReadBytes + sb.HostReadBytes,
		HostWriteBytes: sa.HostWriteBytes + sb.HostWriteBytes,
		NANDWriteBytes: sa.NANDWriteBytes + sb.NANDWriteBytes,
		GCRelocated:    sa.GCRelocated + sb.GCRelocated,
		GCRuns:         sa.GCRuns + sb.GCRuns,
		Erases:         sa.Erases + sb.Erases,
	}
	if sum != dev {
		t.Errorf("tenant shares %+v do not sum to device stats %+v", sum, dev)
	}
	// A wrote 2x B's pages the same number of times: its host-write share
	// must be exactly double.
	if sa.HostWriteBytes != 2*sb.HostWriteBytes {
		t.Errorf("host writes a=%v b=%v, want 2:1", sa.HostWriteBytes, sb.HostWriteBytes)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleTenantViewEqualsDevice: one view over a fresh device accumulates
// exactly the device stats — the cluster engine's 1-tenant equivalence rests
// on this.
func TestSingleTenantViewEqualsDevice(t *testing.T) {
	d := MustNew(tenantTestConfig())
	v := d.Tenant()
	r := mustAllocWrite(t, v, 1500)
	for i := 0; i < 16; i++ {
		if _, err := v.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Read(r); err != nil {
		t.Fatal(err)
	}
	if v.Stats() != d.Stats() {
		t.Errorf("view stats %+v != device stats %+v", v.Stats(), d.Stats())
	}
	if v.WriteAmplification() != d.WriteAmplification() {
		t.Errorf("view WA %v != device WA %v", v.WriteAmplification(), d.WriteAmplification())
	}
	if d.Stats().Erases == 0 {
		t.Error("test device never garbage-collected; churn harder")
	}
}

// TestTenantGCAttribution: GC work lands on the tenant whose write triggered
// the collection.
func TestTenantGCAttribution(t *testing.T) {
	d := MustNew(tenantTestConfig())
	quiet, churner := d.Tenant(), d.Tenant()
	rq := mustAllocWrite(t, quiet, 600)
	rc := mustAllocWrite(t, churner, 700)
	_ = rq
	// Strided overlapping rewrites leave each log block a mix of churned and
	// still-valid pages, so GC victims carry live data to relocate.
	for i := 0; i < 300; i++ {
		sub := LogicalRange{Start: rc.Start + int64(i*131)%600, Count: 100}
		if _, err := churner.Write(sub); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().GCRelocated == 0 {
		t.Skip("device too large to GC under this churn")
	}
	cs, qs := churner.Stats(), quiet.Stats()
	if cs.GCRelocated <= qs.GCRelocated {
		t.Errorf("churner attributed %d relocations, quiet tenant %d", cs.GCRelocated, qs.GCRelocated)
	}
	if churner.WriteAmplification() < quiet.WriteAmplification() {
		t.Errorf("churner WA %v below quiet tenant WA %v", churner.WriteAmplification(), quiet.WriteAmplification())
	}
}

// TestTenantRegistry: views are indexed by registration order and the
// device enumerates them, so per-tenant attribution lookups stay O(1) per
// view under large fleets.
func TestTenantRegistry(t *testing.T) {
	d, err := New(tenantTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	views := make([]*Tenant, 100)
	for i := range views {
		views[i] = d.Tenant()
		if got := views[i].ID(); got != i {
			t.Fatalf("view %d has ID %d", i, got)
		}
	}
	reg := d.Tenants()
	if len(reg) != len(views) {
		t.Fatalf("registry holds %d views, want %d", len(reg), len(views))
	}
	for i, v := range views {
		if reg[i] != v {
			t.Fatalf("registry slot %d does not match view %d", i, i)
		}
	}
}

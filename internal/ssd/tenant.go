package ssd

import "g10sim/internal/units"

// Tenant is one cluster tenant's handle on a shared Device. Operations are
// forwarded to the device — the FTL, its log structure, and its garbage
// collector stay genuinely shared — while the stat deltas of each call are
// attributed to the calling tenant, including the GC work its writes
// trigger. A single-tenant device's view therefore accumulates exactly the
// device's own stats.
type Tenant struct {
	d     *Device
	id    int
	stats Stats
}

// Tenant returns a new attribution view on the device, registered in the
// device's tenant index.
func (d *Device) Tenant() *Tenant {
	t := &Tenant{d: d, id: len(d.tenants)}
	d.tenants = append(d.tenants, t)
	return t
}

// Tenants returns the registered attribution views, indexed by ID.
func (d *Device) Tenants() []*Tenant { return d.tenants }

// ID reports the view's slot in the device's tenant index.
func (t *Tenant) ID() int { return t.id }

// PageSize reports the FTL mapping unit.
func (t *Tenant) PageSize() units.Bytes { return t.d.PageSize() }

// PagesFor reports how many device pages hold n bytes.
func (t *Tenant) PagesFor(n units.Bytes) int64 { return t.d.PagesFor(n) }

// Alloc reserves a contiguous logical range of n pages.
func (t *Tenant) Alloc(n int64) (LogicalRange, error) { return t.d.Alloc(n) }

// Free releases a logical range (TRIM).
func (t *Tenant) Free(r LogicalRange) { t.d.Free(r) }

// Write programs the range on the shared device and attributes the host
// write plus any GC relocation it triggered to this tenant.
func (t *Tenant) Write(r LogicalRange) (gcRelocated int64, err error) {
	before := t.d.stats
	gc, err := t.d.Write(r)
	t.absorb(before)
	return gc, err
}

// Read accounts the range's read traffic to this tenant.
func (t *Tenant) Read(r LogicalRange) error {
	before := t.d.stats
	err := t.d.Read(r)
	t.absorb(before)
	return err
}

// absorb adds the device-stat delta since before to the tenant's share.
func (t *Tenant) absorb(before Stats) {
	now := t.d.stats
	t.stats.HostReadBytes += now.HostReadBytes - before.HostReadBytes
	t.stats.HostWriteBytes += now.HostWriteBytes - before.HostWriteBytes
	t.stats.NANDWriteBytes += now.NANDWriteBytes - before.NANDWriteBytes
	t.stats.GCRelocated += now.GCRelocated - before.GCRelocated
	t.stats.GCRuns += now.GCRuns - before.GCRuns
	t.stats.Erases += now.Erases - before.Erases
}

// Stats returns this tenant's attributed share of the device counters.
func (t *Tenant) Stats() Stats { return t.stats }

// WriteAmplification reports the tenant's attributed NAND writes divided by
// its host writes (>= 1): a tenant whose write pattern churns the shared log
// is charged for the relocations it causes.
func (t *Tenant) WriteAmplification() float64 {
	if t.stats.HostWriteBytes == 0 {
		return 1
	}
	return float64(t.stats.NANDWriteBytes) / float64(t.stats.HostWriteBytes)
}

// EffectiveWriteBandwidth is the shared device's sustained write bandwidth
// (GC degradation is a property of the array, not of one tenant).
func (t *Tenant) EffectiveWriteBandwidth() units.Bandwidth { return t.d.EffectiveWriteBandwidth() }

// EffectiveReadBandwidth is the shared device's rated read bandwidth.
func (t *Tenant) EffectiveReadBandwidth() units.Bandwidth { return t.d.EffectiveReadBandwidth() }

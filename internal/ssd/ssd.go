// Package ssd simulates the flash solid-state drive backing the unified
// memory space: geometry (channels × chips × blocks × pages), a page-mapped
// flash translation layer with log-structured writes, greedy garbage
// collection with overprovisioning, write-amplification accounting, and the
// DWPD lifetime model of the paper's §7.7.
//
// The exterior timing contract (sustained read/write bandwidth and access
// latency) is calibrated to the Samsung Z-NAND SZ985 of Table 2
// (3.2/3.0 GB/s, 20/16 µs, 3.2 TB); garbage collection degrades the
// effective write bandwidth by the current write-amplification factor,
// which the interconnect model picks up when migrations are in flight.
//
// To keep full-scale simulations tractable the FTL maps fixed-size units
// ("pages" here) of 1 MB by default rather than 4 KB; the GC and WA
// behaviour depends on the ratio of working set to capacity, not on the
// absolute unit (see DESIGN.md §1).
package ssd

import (
	"fmt"

	"g10sim/internal/units"
)

// Config describes the device geometry and calibrated exterior behaviour.
type Config struct {
	// Geometry.
	Channels        int
	ChipsPerChannel int
	PageSize        units.Bytes // FTL mapping unit
	PagesPerBlock   int
	Capacity        units.Bytes // logical (host-visible) capacity
	OverProvision   float64     // extra physical space fraction
	// GCThreshold triggers collection when the free-block fraction of a
	// chip falls below it.
	GCThreshold float64

	// Calibrated exterior behaviour (Table 2).
	ReadBandwidth  units.Bandwidth
	WriteBandwidth units.Bandwidth
	ReadLatency    units.Duration
	WriteLatency   units.Duration

	// Endurance for the §7.7 lifetime model.
	EnduranceDWPD float64
	RatedDays     float64
}

// ZNAND returns the paper's SSD: Samsung SZ985-like Z-NAND, 3.2 TB,
// 3.2/3.0 GB/s, 20/16 µs, rated 30 drive-writes-per-day for five years.
func ZNAND() Config {
	return Config{
		Channels:        8,
		ChipsPerChannel: 4,
		PageSize:        units.MB,
		PagesPerBlock:   64,
		Capacity:        3200 * units.GB,
		OverProvision:   0.07,
		GCThreshold:     0.05,
		ReadBandwidth:   units.GBps(3.2),
		WriteBandwidth:  units.GBps(3.0),
		ReadLatency:     20 * units.Microsecond,
		WriteLatency:    16 * units.Microsecond,
		EnduranceDWPD:   30,
		RatedDays:       1825,
	}
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.ChipsPerChannel <= 0 {
		c.ChipsPerChannel = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = units.MB
	}
	if c.PagesPerBlock <= 0 {
		c.PagesPerBlock = 64
	}
	if c.Capacity <= 0 {
		c.Capacity = 3200 * units.GB
	}
	if c.OverProvision <= 0 {
		c.OverProvision = 0.07
	}
	if c.GCThreshold <= 0 {
		c.GCThreshold = 0.05
	}
	if c.EnduranceDWPD <= 0 {
		c.EnduranceDWPD = 30
	}
	if c.RatedDays <= 0 {
		c.RatedDays = 1825
	}
	return c
}

// Page states.
const (
	pageFree uint8 = iota
	pageValid
	pageInvalid
)

const unmapped = int64(-1)

// LogicalRange is a contiguous run of logical pages assigned to a tensor.
type LogicalRange struct {
	Start, Count int64
}

// Bytes reports the range size given the device page size.
func (r LogicalRange) bytes(pageSize units.Bytes) units.Bytes {
	return units.Bytes(r.Count) * pageSize
}

// Stats aggregates device activity.
type Stats struct {
	HostReadBytes  units.Bytes
	HostWriteBytes units.Bytes
	NANDWriteBytes units.Bytes // host writes + GC relocations
	GCRelocated    int64       // pages moved by GC
	GCRuns         int64
	Erases         int64
}

// Device is one simulated SSD.
type Device struct {
	cfg Config

	totalPhysPages int64
	blocks         int64 // total physical blocks
	chips          int

	mapping   []int64 // logical page -> physical page (or unmapped)
	reverse   []int64 // physical page -> logical page (or unmapped)
	pageState []uint8

	validInBlock []int32 // valid-page count per block
	writePtr     []int64 // per chip: next physical page in its active block
	activeBlock  []int64 // per chip: current log block (-1 = none)
	freeBlocks   [][]int64
	nextChip     int

	allocCursor int64
	freeList    []LogicalRange

	stats Stats
}

// New builds a device. Geometry must divide evenly; use ZNAND() or the test
// helpers for consistent configs.
func New(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	logicalPages := int64(cfg.Capacity / cfg.PageSize)
	physPages := int64(float64(logicalPages) * (1 + cfg.OverProvision))
	chips := cfg.Channels * cfg.ChipsPerChannel
	blocks := physPages / int64(cfg.PagesPerBlock)
	// Round blocks up to a multiple of chips (slightly increasing the
	// overprovision) so striping stays uniform without eating the spare
	// space on small devices.
	if rem := blocks % int64(chips); rem != 0 {
		blocks += int64(chips) - rem
	}
	if blocks < int64(2*chips) {
		return nil, fmt.Errorf("ssd: capacity too small for geometry (%d blocks, %d chips)", blocks, chips)
	}
	physPages = blocks * int64(cfg.PagesPerBlock)
	if physPages <= logicalPages {
		return nil, fmt.Errorf("ssd: physical pages (%d) not above logical (%d); raise OverProvision", physPages, logicalPages)
	}

	d := &Device{
		cfg:            cfg,
		totalPhysPages: physPages,
		blocks:         blocks,
		chips:          chips,
		mapping:        make([]int64, logicalPages),
		reverse:        make([]int64, physPages),
		pageState:      make([]uint8, physPages),
		validInBlock:   make([]int32, blocks),
		writePtr:       make([]int64, chips),
		activeBlock:    make([]int64, chips),
		freeBlocks:     make([][]int64, chips),
	}
	for i := range d.mapping {
		d.mapping[i] = unmapped
	}
	for i := range d.reverse {
		d.reverse[i] = unmapped
	}
	// Distribute blocks round-robin across chips.
	for b := int64(0); b < blocks; b++ {
		chip := int(b % int64(chips))
		d.freeBlocks[chip] = append(d.freeBlocks[chip], b)
	}
	for c := 0; c < chips; c++ {
		d.activeBlock[c] = -1
	}
	return d, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration (with defaults applied).
func (d *Device) Config() Config { return d.cfg }

// PageSize reports the FTL mapping unit.
func (d *Device) PageSize() units.Bytes { return d.cfg.PageSize }

// PagesFor reports how many device pages hold n bytes.
func (d *Device) PagesFor(n units.Bytes) int64 { return units.PagesFor(n, d.cfg.PageSize) }

// Alloc reserves a contiguous logical range of n pages.
func (d *Device) Alloc(n int64) (LogicalRange, error) {
	if n <= 0 {
		return LogicalRange{}, fmt.Errorf("ssd: alloc of %d pages", n)
	}
	// First fit from the free list.
	for i, r := range d.freeList {
		if r.Count >= n {
			out := LogicalRange{Start: r.Start, Count: n}
			if r.Count == n {
				d.freeList = append(d.freeList[:i], d.freeList[i+1:]...)
			} else {
				d.freeList[i] = LogicalRange{Start: r.Start + n, Count: r.Count - n}
			}
			return out, nil
		}
	}
	if d.allocCursor+n > int64(len(d.mapping)) {
		return LogicalRange{}, fmt.Errorf("ssd: out of logical space (%d pages requested, %d free at tail)",
			n, int64(len(d.mapping))-d.allocCursor)
	}
	out := LogicalRange{Start: d.allocCursor, Count: n}
	d.allocCursor += n
	return out, nil
}

// Free releases a logical range (TRIM): mapped pages are invalidated.
func (d *Device) Free(r LogicalRange) {
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if pp := d.mapping[lp]; pp != unmapped {
			d.invalidate(pp)
			d.mapping[lp] = unmapped
		}
	}
	d.freeList = append(d.freeList, r)
}

func (d *Device) invalidate(pp int64) {
	if d.pageState[pp] == pageValid {
		d.pageState[pp] = pageInvalid
		d.validInBlock[pp/int64(d.cfg.PagesPerBlock)]--
		d.reverse[pp] = unmapped
	}
}

// Write programs every page of the range (a tensor eviction). Previously
// mapped pages are invalidated, new pages are appended log-structured, and
// GC runs when a chip exhausts its free blocks. Returns the number of pages
// GC relocated as a side effect (the caller charges that work to the
// device's internal bandwidth).
func (d *Device) Write(r LogicalRange) (gcRelocated int64, err error) {
	before := d.stats.GCRelocated
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if lp < 0 || lp >= int64(len(d.mapping)) {
			return 0, fmt.Errorf("ssd: write beyond logical space at page %d", lp)
		}
		if pp := d.mapping[lp]; pp != unmapped {
			d.invalidate(pp)
		}
		pp, werr := d.program(lp)
		if werr != nil {
			return d.stats.GCRelocated - before, werr
		}
		d.mapping[lp] = pp
	}
	d.stats.HostWriteBytes += r.bytes(d.cfg.PageSize)
	d.stats.NANDWriteBytes += r.bytes(d.cfg.PageSize)
	return d.stats.GCRelocated - before, nil
}

// Read verifies the range is mapped and accounts the traffic.
func (d *Device) Read(r LogicalRange) error {
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if lp < 0 || lp >= int64(len(d.mapping)) || d.mapping[lp] == unmapped {
			return fmt.Errorf("ssd: read of unmapped logical page %d", lp)
		}
	}
	d.stats.HostReadBytes += r.bytes(d.cfg.PageSize)
	return nil
}

// program appends one page for logical page lp on the next chip
// (round-robin striping), running GC if the chip is out of blocks.
func (d *Device) program(lp int64) (int64, error) {
	chip := d.nextChip
	d.nextChip = (d.nextChip + 1) % d.chips
	pp, err := d.appendOnChip(chip)
	if err != nil {
		return 0, err
	}
	d.pageState[pp] = pageValid
	d.reverse[pp] = lp
	d.validInBlock[pp/int64(d.cfg.PagesPerBlock)]++
	return pp, nil
}

func (d *Device) appendOnChip(chip int) (int64, error) {
	ppb := int64(d.cfg.PagesPerBlock)
	if d.activeBlock[chip] >= 0 && d.writePtr[chip] < (d.activeBlock[chip]+1)*ppb {
		pp := d.writePtr[chip]
		d.writePtr[chip]++
		return pp, nil
	}
	// Need a fresh block; collect if the chip is low.
	if d.lowOnBlocks(chip) {
		if err := d.collect(chip); err != nil {
			return 0, err
		}
	}
	if len(d.freeBlocks[chip]) == 0 {
		return 0, fmt.Errorf("ssd: chip %d out of blocks after GC", chip)
	}
	b := d.freeBlocks[chip][0]
	d.freeBlocks[chip] = d.freeBlocks[chip][1:]
	d.activeBlock[chip] = b
	d.writePtr[chip] = b * ppb
	pp := d.writePtr[chip]
	d.writePtr[chip]++
	return pp, nil
}

func (d *Device) lowOnBlocks(chip int) bool {
	perChip := d.blocks / int64(d.chips)
	return float64(len(d.freeBlocks[chip])) < d.cfg.GCThreshold*float64(perChip)+1
}

// collect performs greedy GC on one chip: pick the sealed block with the
// fewest valid pages, relocate them, erase.
func (d *Device) collect(chip int) error {
	ppb := int64(d.cfg.PagesPerBlock)
	d.stats.GCRuns++
	for d.lowOnBlocks(chip) {
		victim := int64(-1)
		best := int32(d.cfg.PagesPerBlock) + 1
		for b := int64(chip); b < d.blocks; b += int64(d.chips) {
			if b == d.activeBlock[chip] || d.isFree(chip, b) {
				continue
			}
			if d.validInBlock[b] < best {
				best = d.validInBlock[b]
				victim = b
			}
		}
		if victim < 0 {
			return fmt.Errorf("ssd: chip %d has no GC victim", chip)
		}
		if best == int32(d.cfg.PagesPerBlock) {
			return fmt.Errorf("ssd: chip %d full of valid data (logical overcommit)", chip)
		}
		// Relocate valid pages into the chip's active block stream.
		for pp := victim * ppb; pp < (victim+1)*ppb; pp++ {
			if d.pageState[pp] != pageValid {
				continue
			}
			lp := d.reverse[pp]
			d.pageState[pp] = pageInvalid
			d.validInBlock[victim]--
			d.reverse[pp] = unmapped

			np, err := d.appendOnChipForGC(chip, victim)
			if err != nil {
				return err
			}
			d.pageState[np] = pageValid
			d.reverse[np] = lp
			d.validInBlock[np/ppb]++
			d.mapping[lp] = np
			d.stats.GCRelocated++
			d.stats.NANDWriteBytes += d.cfg.PageSize
		}
		// Erase the victim.
		for pp := victim * ppb; pp < (victim+1)*ppb; pp++ {
			d.pageState[pp] = pageFree
		}
		d.stats.Erases++
		d.freeBlocks[chip] = append(d.freeBlocks[chip], victim)
	}
	return nil
}

// appendOnChipForGC appends without re-entering GC (the erased victim is
// about to come back to the free list).
func (d *Device) appendOnChipForGC(chip int, victim int64) (int64, error) {
	ppb := int64(d.cfg.PagesPerBlock)
	if d.activeBlock[chip] >= 0 && d.writePtr[chip] < (d.activeBlock[chip]+1)*ppb {
		pp := d.writePtr[chip]
		d.writePtr[chip]++
		return pp, nil
	}
	if len(d.freeBlocks[chip]) == 0 {
		return 0, fmt.Errorf("ssd: chip %d deadlocked during GC of block %d", chip, victim)
	}
	b := d.freeBlocks[chip][0]
	d.freeBlocks[chip] = d.freeBlocks[chip][1:]
	d.activeBlock[chip] = b
	d.writePtr[chip] = b * ppb
	pp := d.writePtr[chip]
	d.writePtr[chip]++
	return pp, nil
}

func (d *Device) isFree(chip int, b int64) bool {
	for _, fb := range d.freeBlocks[chip] {
		if fb == b {
			return true
		}
	}
	return false
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// WriteAmplification reports NAND writes divided by host writes (>= 1).
func (d *Device) WriteAmplification() float64 {
	if d.stats.HostWriteBytes == 0 {
		return 1
	}
	return float64(d.stats.NANDWriteBytes) / float64(d.stats.HostWriteBytes)
}

// EffectiveWriteBandwidth is the sustained host write bandwidth after GC
// steals its share: rated bandwidth divided by write amplification.
func (d *Device) EffectiveWriteBandwidth() units.Bandwidth {
	return units.Bandwidth(float64(d.cfg.WriteBandwidth) / d.WriteAmplification())
}

// EffectiveReadBandwidth is the rated read bandwidth (GC reads are folded
// into the write path's amplification charge).
func (d *Device) EffectiveReadBandwidth() units.Bandwidth { return d.cfg.ReadBandwidth }

// LifetimeYears implements §7.7: endurance bytes (DWPD × capacity × rated
// days) divided by a continuous write rate.
func (c Config) LifetimeYears(writeRate units.Bandwidth) float64 {
	c = c.withDefaults()
	if writeRate <= 0 {
		return 0
	}
	enduranceBytes := c.EnduranceDWPD * float64(c.Capacity) * c.RatedDays
	seconds := enduranceBytes / float64(writeRate)
	return seconds / (365.25 * 24 * 3600)
}

// FreePhysicalPages reports unwritten physical pages (for tests).
func (d *Device) FreePhysicalPages() int64 {
	var n int64
	for _, s := range d.pageState {
		if s == pageFree {
			n++
		}
	}
	return n
}

// CheckConsistency validates FTL invariants: every mapped logical page
// points at a valid physical page that points back, and per-block valid
// counts match page states. For tests.
func (d *Device) CheckConsistency() error {
	counts := make([]int32, d.blocks)
	for pp, st := range d.pageState {
		if st != pageValid {
			continue
		}
		counts[int64(pp)/int64(d.cfg.PagesPerBlock)]++
		lp := d.reverse[pp]
		if lp == unmapped {
			return fmt.Errorf("ssd: valid page %d has no reverse mapping", pp)
		}
		if d.mapping[lp] != int64(pp) {
			return fmt.Errorf("ssd: page %d reverse-maps to %d whose mapping is %d", pp, lp, d.mapping[lp])
		}
	}
	for b := int64(0); b < d.blocks; b++ {
		if counts[b] != d.validInBlock[b] {
			return fmt.Errorf("ssd: block %d valid count %d, recount %d", b, d.validInBlock[b], counts[b])
		}
	}
	for lp, pp := range d.mapping {
		if pp == unmapped {
			continue
		}
		if d.pageState[pp] != pageValid {
			return fmt.Errorf("ssd: logical %d maps to non-valid physical %d", lp, pp)
		}
	}
	return nil
}

// Package ssd simulates the flash solid-state drive backing the unified
// memory space: geometry (channels × chips × blocks × pages), a page-mapped
// flash translation layer with log-structured writes, greedy garbage
// collection with overprovisioning, write-amplification accounting, and the
// DWPD lifetime model of the paper's §7.7.
//
// The exterior timing contract (sustained read/write bandwidth and access
// latency) is calibrated to the Samsung Z-NAND SZ985 of Table 2
// (3.2/3.0 GB/s, 20/16 µs, 3.2 TB); garbage collection degrades the
// effective write bandwidth by the current write-amplification factor,
// which the interconnect model picks up when migrations are in flight.
//
// To keep full-scale simulations tractable the FTL maps fixed-size units
// ("pages" here) of 1 MB by default rather than 4 KB; the GC and WA
// behaviour depends on the ratio of working set to capacity, not on the
// absolute unit (see DESIGN.md §1).
package ssd

import (
	"fmt"

	"g10sim/internal/units"
)

// Config describes the device geometry and calibrated exterior behaviour.
type Config struct {
	// Geometry.
	Channels        int
	ChipsPerChannel int
	PageSize        units.Bytes // FTL mapping unit
	PagesPerBlock   int
	Capacity        units.Bytes // logical (host-visible) capacity
	OverProvision   float64     // extra physical space fraction
	// GCThreshold triggers collection when the free-block fraction of a
	// chip falls below it.
	GCThreshold float64

	// Calibrated exterior behaviour (Table 2).
	ReadBandwidth  units.Bandwidth
	WriteBandwidth units.Bandwidth
	ReadLatency    units.Duration
	WriteLatency   units.Duration

	// Endurance for the §7.7 lifetime model.
	EnduranceDWPD float64
	RatedDays     float64
}

// ZNAND returns the paper's SSD: Samsung SZ985-like Z-NAND, 3.2 TB,
// 3.2/3.0 GB/s, 20/16 µs, rated 30 drive-writes-per-day for five years.
func ZNAND() Config {
	return Config{
		Channels:        8,
		ChipsPerChannel: 4,
		PageSize:        units.MB,
		PagesPerBlock:   64,
		Capacity:        3200 * units.GB,
		OverProvision:   0.07,
		GCThreshold:     0.05,
		ReadBandwidth:   units.GBps(3.2),
		WriteBandwidth:  units.GBps(3.0),
		ReadLatency:     20 * units.Microsecond,
		WriteLatency:    16 * units.Microsecond,
		EnduranceDWPD:   30,
		RatedDays:       1825,
	}
}

// Array returns the configuration of an n-drive array of this device:
// aggregate bandwidth and capacity scale linearly (the §6 sharing model).
// n <= 1 returns the single-drive config unchanged.
func (c Config) Array(n int) Config {
	if n <= 1 {
		return c
	}
	scale := float64(n)
	c.ReadBandwidth = units.Bandwidth(float64(c.ReadBandwidth) * scale)
	c.WriteBandwidth = units.Bandwidth(float64(c.WriteBandwidth) * scale)
	c.Capacity = units.Bytes(float64(c.Capacity) * scale)
	return c
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.ChipsPerChannel <= 0 {
		c.ChipsPerChannel = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = units.MB
	}
	if c.PagesPerBlock <= 0 {
		c.PagesPerBlock = 64
	}
	if c.Capacity <= 0 {
		c.Capacity = 3200 * units.GB
	}
	if c.OverProvision <= 0 {
		c.OverProvision = 0.07
	}
	if c.GCThreshold <= 0 {
		c.GCThreshold = 0.05
	}
	if c.EnduranceDWPD <= 0 {
		c.EnduranceDWPD = 30
	}
	if c.RatedDays <= 0 {
		c.RatedDays = 1825
	}
	return c
}

// Page states.
const (
	pageFree uint8 = iota
	pageValid
	pageInvalid
)

const unmapped = int64(-1)

// LogicalRange is a contiguous run of logical pages assigned to a tensor.
type LogicalRange struct {
	Start, Count int64
}

// Bytes reports the range size given the device page size.
func (r LogicalRange) bytes(pageSize units.Bytes) units.Bytes {
	return units.Bytes(r.Count) * pageSize
}

// Stats aggregates device activity.
type Stats struct {
	HostReadBytes  units.Bytes
	HostWriteBytes units.Bytes
	NANDWriteBytes units.Bytes // host writes + GC relocations
	GCRelocated    int64       // pages moved by GC
	GCRuns         int64
	Erases         int64
}

// chunkBits sizes the lazily-materialised FTL array chunks (entries per
// chunk). 8K entries (64KB for int64 chunks) keeps materialisation close to
// the pages actually touched; GC-churned physical regions still amortise the
// chunk header over thousands of entries.
const chunkBits = 13

// pagedI64 is a chunked int64 array: untouched chunks read as def and cost
// nothing. Chunking avoids both the O(capacity) zero-fill of an eager array
// and the copy churn of a growing one — the simulator touches a few percent
// of a multi-TB device per run. Entries are stored biased by -def, so a
// freshly materialised chunk is plain zeroed memory (no fill loop) yet reads
// back as def.
type pagedI64 struct {
	chunks [][]int64
	def    int64
}

func newPagedI64(size int64, def int64) pagedI64 {
	return pagedI64{chunks: make([][]int64, (size+(1<<chunkBits)-1)>>chunkBits), def: def}
}

func (p *pagedI64) at(i int64) int64 {
	c := p.chunks[i>>chunkBits]
	if c == nil {
		return p.def
	}
	return c[i&(1<<chunkBits-1)] + p.def
}

func (p *pagedI64) set(i int64, v int64) {
	ci := i >> chunkBits
	c := p.chunks[ci]
	if c == nil {
		c = make([]int64, 1<<chunkBits)
		p.chunks[ci] = c
	}
	c[i&(1<<chunkBits-1)] = v - p.def
}

// pagedU8 is the uint8 counterpart (untouched chunks read as zero).
type pagedU8 struct {
	chunks [][]uint8
}

func newPagedU8(size int64) pagedU8 {
	return pagedU8{chunks: make([][]uint8, (size+(1<<chunkBits)-1)>>chunkBits)}
}

func (p *pagedU8) at(i int64) uint8 {
	c := p.chunks[i>>chunkBits]
	if c == nil {
		return 0
	}
	return c[i&(1<<chunkBits-1)]
}

func (p *pagedU8) set(i int64, v uint8) {
	ci := i >> chunkBits
	c := p.chunks[ci]
	if c == nil {
		if v == 0 {
			return // already the implicit default
		}
		c = make([]uint8, 1<<chunkBits)
		p.chunks[ci] = c
	}
	c[i&(1<<chunkBits-1)] = v
}

// Device is one simulated SSD.
//
// The FTL arrays (logical→physical mapping, reverse mapping, page states)
// are materialised lazily in chunks: the simulator builds one device per
// run over a multi-TB logical space of which a workload touches a few
// percent, so construction allocates O(chips) state and memory follows the
// pages actually written. Untouched indices read as unmapped/free;
// semantics are identical to fully-allocated arrays.
type Device struct {
	cfg Config

	totalPhysPages int64
	logicalPages   int64
	blocks         int64 // total physical blocks
	chips          int

	mapping   pagedI64 // logical page -> physical page (or unmapped)
	reverse   pagedI64 // physical page -> logical page (or unmapped)
	pageState pagedU8

	validInBlock []int32 // valid-page count per block
	writePtr     []int64 // per chip: next physical page in its active block
	activeBlock  []int64 // per chip: current log block (-1 = none)
	// The per-chip free-block list is [remaining virgin blocks in block-
	// number order] ++ [GC-recycled blocks FIFO]. Virgin blocks of chip c
	// are the arithmetic sequence c, c+chips, c+2·chips, …, represented by
	// the next unpopped element instead of a materialised slice.
	virginNext []int64   // per chip: next never-used block, ≥ blocks when exhausted
	recycled   [][]int64 // per chip: erased blocks, pop from the front
	// onFreeList marks blocks currently in a recycled list, so GC's victim
	// scan tests membership in O(1) instead of scanning the list per block.
	onFreeList []bool
	nextChip   int

	allocCursor int64
	freeList    []LogicalRange

	// deadChips counts flash dies lost to injected failures. The failure
	// model is exterior — calibrated behaviour, not FTL surgery: the array
	// is assumed to rebuild dead dies' data from internal redundancy, so no
	// mapping is lost, but the alive fraction scales both effective
	// bandwidths and caps how far Alloc may extend the logical tail.
	deadChips int

	stats Stats
	// effWrite caches EffectiveWriteBandwidth between writes: the GPU layer
	// re-derives the shared ssd-write channel after every device write, and
	// in the common no-GC case the write-amplification ratio — and with it
	// the sustained bandwidth — is unchanged since last time.
	effWrite   units.Bandwidth
	effWriteOK bool
	// tenants indexes every attribution view handed out by Tenant(), in
	// registration order; a view's ID is its slot, so per-tenant lookups
	// and end-of-run aggregation stay O(1) per view under hundreds of
	// tenants.
	tenants []*Tenant
}

// New builds a device. Geometry must divide evenly; use ZNAND() or the test
// helpers for consistent configs.
func New(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	logicalPages := int64(cfg.Capacity / cfg.PageSize)
	physPages := int64(float64(logicalPages) * (1 + cfg.OverProvision))
	chips := cfg.Channels * cfg.ChipsPerChannel
	blocks := physPages / int64(cfg.PagesPerBlock)
	// Round blocks up to a multiple of chips (slightly increasing the
	// overprovision) so striping stays uniform without eating the spare
	// space on small devices.
	if rem := blocks % int64(chips); rem != 0 {
		blocks += int64(chips) - rem
	}
	if blocks < int64(2*chips) {
		return nil, fmt.Errorf("ssd: capacity too small for geometry (%d blocks, %d chips)", blocks, chips)
	}
	physPages = blocks * int64(cfg.PagesPerBlock)
	if physPages <= logicalPages {
		return nil, fmt.Errorf("ssd: physical pages (%d) not above logical (%d); raise OverProvision", physPages, logicalPages)
	}

	d := &Device{
		cfg:            cfg,
		totalPhysPages: physPages,
		logicalPages:   logicalPages,
		blocks:         blocks,
		chips:          chips,
		mapping:        newPagedI64(logicalPages, unmapped),
		reverse:        newPagedI64(physPages, unmapped),
		pageState:      newPagedU8(physPages),
		validInBlock:   make([]int32, blocks),
		onFreeList:     make([]bool, blocks),
		writePtr:       make([]int64, chips),
		activeBlock:    make([]int64, chips),
		virginNext:     make([]int64, chips),
		recycled:       make([][]int64, chips),
	}
	for c := 0; c < chips; c++ {
		d.activeBlock[c] = -1
		d.virginNext[c] = int64(c)
	}
	return d, nil
}

// freeBlockCount reports how many free blocks chip has.
func (d *Device) freeBlockCount(chip int) int64 {
	var virgin int64
	if d.virginNext[chip] < d.blocks {
		virgin = (d.blocks-1-d.virginNext[chip])/int64(d.chips) + 1
	}
	return virgin + int64(len(d.recycled[chip]))
}

// popFreeBlock removes and returns the chip's next free block: remaining
// virgin blocks first (in block order), then recycled blocks FIFO. Returns
// -1 when none are free.
func (d *Device) popFreeBlock(chip int) int64 {
	if d.virginNext[chip] < d.blocks {
		b := d.virginNext[chip]
		d.virginNext[chip] += int64(d.chips)
		return b
	}
	if rs := d.recycled[chip]; len(rs) > 0 {
		b := rs[0]
		d.recycled[chip] = rs[1:]
		d.onFreeList[b] = false
		return b
	}
	return -1
}

// isFree reports whether block b (owned by chip) is on the free list.
func (d *Device) isFree(chip int, b int64) bool {
	return b >= d.virginNext[chip] /* virgin, never popped */ || d.onFreeList[b]
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration (with defaults applied).
func (d *Device) Config() Config { return d.cfg }

// PageSize reports the FTL mapping unit.
func (d *Device) PageSize() units.Bytes { return d.cfg.PageSize }

// PagesFor reports how many device pages hold n bytes.
func (d *Device) PagesFor(n units.Bytes) int64 { return units.PagesFor(n, d.cfg.PageSize) }

// Alloc reserves a contiguous logical range of n pages.
func (d *Device) Alloc(n int64) (LogicalRange, error) {
	if n <= 0 {
		return LogicalRange{}, fmt.Errorf("ssd: alloc of %d pages", n)
	}
	// First fit from the free list.
	for i, r := range d.freeList {
		if r.Count >= n {
			out := LogicalRange{Start: r.Start, Count: n}
			if r.Count == n {
				d.freeList = append(d.freeList[:i], d.freeList[i+1:]...)
			} else {
				d.freeList[i] = LogicalRange{Start: r.Start + n, Count: r.Count - n}
			}
			return out, nil
		}
	}
	if limit := d.allocLimit(); d.allocCursor+n > limit {
		return LogicalRange{}, fmt.Errorf("ssd: out of logical space (%d pages requested, %d free at tail)",
			n, limit-d.allocCursor)
	}
	out := LogicalRange{Start: d.allocCursor, Count: n}
	d.allocCursor += n
	return out, nil
}

// Free releases a logical range (TRIM): mapped pages are invalidated.
func (d *Device) Free(r LogicalRange) {
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if pp := d.mapping.at(lp); pp != unmapped {
			d.invalidate(pp)
			d.mapping.set(lp, unmapped)
		}
	}
	d.freeList = append(d.freeList, r)
}

func (d *Device) invalidate(pp int64) {
	if d.pageState.at(pp) == pageValid {
		d.pageState.set(pp, pageInvalid)
		d.validInBlock[pp/int64(d.cfg.PagesPerBlock)]--
		d.reverse.set(pp, unmapped)
	}
}

// Write programs every page of the range (a tensor eviction). Previously
// mapped pages are invalidated, new pages are appended log-structured, and
// GC runs when a chip exhausts its free blocks. Returns the number of pages
// GC relocated as a side effect (the caller charges that work to the
// device's internal bandwidth).
func (d *Device) Write(r LogicalRange) (gcRelocated int64, err error) {
	// Invalidate up front: even a failing write may already have programmed
	// pages and run GC, moving the write-amplification ratio.
	d.effWriteOK = false
	before := d.stats.GCRelocated
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if lp < 0 || lp >= d.logicalPages {
			return 0, fmt.Errorf("ssd: write beyond logical space at page %d", lp)
		}
		if pp := d.mapping.at(lp); pp != unmapped {
			d.invalidate(pp)
		}
		pp, werr := d.program(lp)
		if werr != nil {
			return d.stats.GCRelocated - before, werr
		}
		d.mapping.set(lp, pp)
	}
	d.stats.HostWriteBytes += r.bytes(d.cfg.PageSize)
	d.stats.NANDWriteBytes += r.bytes(d.cfg.PageSize)
	return d.stats.GCRelocated - before, nil
}

// Read verifies the range is mapped and accounts the traffic.
func (d *Device) Read(r LogicalRange) error {
	for lp := r.Start; lp < r.Start+r.Count; lp++ {
		if lp < 0 || lp >= d.logicalPages || d.mapping.at(lp) == unmapped {
			return fmt.Errorf("ssd: read of unmapped logical page %d", lp)
		}
	}
	d.stats.HostReadBytes += r.bytes(d.cfg.PageSize)
	return nil
}

// program appends one page for logical page lp on the next chip
// (round-robin striping), running GC if the chip is out of blocks.
func (d *Device) program(lp int64) (int64, error) {
	chip := d.nextChip
	d.nextChip = (d.nextChip + 1) % d.chips
	pp, err := d.appendOnChip(chip)
	if err != nil {
		return 0, err
	}
	d.pageState.set(pp, pageValid)
	d.reverse.set(pp, lp)
	d.validInBlock[pp/int64(d.cfg.PagesPerBlock)]++
	return pp, nil
}

func (d *Device) appendOnChip(chip int) (int64, error) {
	ppb := int64(d.cfg.PagesPerBlock)
	if d.activeBlock[chip] >= 0 && d.writePtr[chip] < (d.activeBlock[chip]+1)*ppb {
		pp := d.writePtr[chip]
		d.writePtr[chip]++
		return pp, nil
	}
	// Need a fresh block; collect if the chip is low.
	if d.lowOnBlocks(chip) {
		if err := d.collect(chip); err != nil {
			return 0, err
		}
	}
	b := d.popFreeBlock(chip)
	if b < 0 {
		return 0, fmt.Errorf("ssd: chip %d out of blocks after GC", chip)
	}
	d.activeBlock[chip] = b
	d.writePtr[chip] = b * ppb
	pp := d.writePtr[chip]
	d.writePtr[chip]++
	return pp, nil
}

func (d *Device) lowOnBlocks(chip int) bool {
	perChip := d.blocks / int64(d.chips)
	return float64(d.freeBlockCount(chip)) < d.cfg.GCThreshold*float64(perChip)+1
}

// collect performs greedy GC on one chip: pick the sealed block with the
// fewest valid pages, relocate them, erase.
func (d *Device) collect(chip int) error {
	ppb := int64(d.cfg.PagesPerBlock)
	d.stats.GCRuns++
	for d.lowOnBlocks(chip) {
		victim := int64(-1)
		best := int32(d.cfg.PagesPerBlock) + 1
		for b := int64(chip); b < d.blocks; b += int64(d.chips) {
			if b == d.activeBlock[chip] || d.isFree(chip, b) {
				continue
			}
			if d.validInBlock[b] < best {
				best = d.validInBlock[b]
				victim = b
			}
		}
		if victim < 0 {
			return fmt.Errorf("ssd: chip %d has no GC victim", chip)
		}
		if best == int32(d.cfg.PagesPerBlock) {
			return fmt.Errorf("ssd: chip %d full of valid data (logical overcommit)", chip)
		}
		// Relocate valid pages into the chip's active block stream.
		for pp := victim * ppb; pp < (victim+1)*ppb; pp++ {
			if d.pageState.at(pp) != pageValid {
				continue
			}
			lp := d.reverse.at(pp)
			d.pageState.set(pp, pageInvalid)
			d.validInBlock[victim]--
			d.reverse.set(pp, unmapped)

			np, err := d.appendOnChipForGC(chip, victim)
			if err != nil {
				return err
			}
			d.pageState.set(np, pageValid)
			d.reverse.set(np, lp)
			d.validInBlock[np/ppb]++
			d.mapping.set(lp, np)
			d.stats.GCRelocated++
			d.stats.NANDWriteBytes += d.cfg.PageSize
		}
		// Erase the victim (untouched pages are already free).
		for pp := victim * ppb; pp < (victim+1)*ppb; pp++ {
			d.pageState.set(pp, pageFree)
		}
		d.stats.Erases++
		d.recycled[chip] = append(d.recycled[chip], victim)
		d.onFreeList[victim] = true
	}
	return nil
}

// appendOnChipForGC appends without re-entering GC (the erased victim is
// about to come back to the free list).
func (d *Device) appendOnChipForGC(chip int, victim int64) (int64, error) {
	ppb := int64(d.cfg.PagesPerBlock)
	if d.activeBlock[chip] >= 0 && d.writePtr[chip] < (d.activeBlock[chip]+1)*ppb {
		pp := d.writePtr[chip]
		d.writePtr[chip]++
		return pp, nil
	}
	b := d.popFreeBlock(chip)
	if b < 0 {
		return 0, fmt.Errorf("ssd: chip %d deadlocked during GC of block %d", chip, victim)
	}
	d.activeBlock[chip] = b
	d.writePtr[chip] = b * ppb
	pp := d.writePtr[chip]
	d.writePtr[chip]++
	return pp, nil
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// WriteAmplification reports NAND writes divided by host writes (>= 1).
func (d *Device) WriteAmplification() float64 {
	if d.stats.HostWriteBytes == 0 {
		return 1
	}
	return float64(d.stats.NANDWriteBytes) / float64(d.stats.HostWriteBytes)
}

// EffectiveWriteBandwidth is the sustained host write bandwidth after GC
// steals its share: rated bandwidth divided by write amplification. The
// value is cached between writes (every dev.Write invalidates it), so the
// per-chunk refresh in the GPU layer costs a flag test when nothing wrote.
func (d *Device) EffectiveWriteBandwidth() units.Bandwidth {
	if !d.effWriteOK {
		d.effWrite = units.Bandwidth(float64(d.cfg.WriteBandwidth) / d.WriteAmplification() * d.aliveFraction())
		d.effWriteOK = true
	}
	return d.effWrite
}

// EffectiveReadBandwidth is the rated read bandwidth (GC reads are folded
// into the write path's amplification charge), scaled by the surviving die
// fraction after injected failures.
func (d *Device) EffectiveReadBandwidth() units.Bandwidth {
	return units.Bandwidth(float64(d.cfg.ReadBandwidth) * d.aliveFraction())
}

// FailDies marks n flash dies failed, clamped so at least one die survives.
// Reports how many dies actually failed. Capacity and bandwidth shrink by
// the dead fraction (see the deadChips field for the model's scope); data
// already written stays readable.
func (d *Device) FailDies(n int) int {
	if lim := d.chips - 1 - d.deadChips; n > lim {
		n = lim
	}
	if n <= 0 {
		return 0
	}
	d.deadChips += n
	d.effWriteOK = false
	return n
}

// DeadChips reports how many dies FailDies has removed.
func (d *Device) DeadChips() int { return d.deadChips }

// aliveFraction is the surviving share of the array's dies (exactly 1.0
// with no failures, so the fault-free fast paths are bit-unchanged).
func (d *Device) aliveFraction() float64 {
	if d.deadChips == 0 {
		return 1
	}
	return float64(d.chips-d.deadChips) / float64(d.chips)
}

// allocLimit is the logical tail bound: dead dies shrink the space Alloc
// may extend into (ranges already allocated, and the free list, are kept).
func (d *Device) allocLimit() int64 {
	if d.deadChips == 0 {
		return d.logicalPages
	}
	return d.logicalPages - int64(float64(d.logicalPages)*float64(d.deadChips)/float64(d.chips))
}

// LifetimeYears implements §7.7: endurance bytes (DWPD × capacity × rated
// days) divided by a continuous write rate.
func (c Config) LifetimeYears(writeRate units.Bandwidth) float64 {
	c = c.withDefaults()
	if writeRate <= 0 {
		return 0
	}
	enduranceBytes := c.EnduranceDWPD * float64(c.Capacity) * c.RatedDays
	seconds := enduranceBytes / float64(writeRate)
	return seconds / (365.25 * 24 * 3600)
}

// FreePhysicalPages reports unwritten physical pages (for tests).
// Unmaterialised chunks are wholly free.
func (d *Device) FreePhysicalPages() int64 {
	n := d.totalPhysPages
	for _, c := range d.pageState.chunks {
		for _, s := range c {
			if s != pageFree {
				n--
			}
		}
	}
	return n
}

// CheckConsistency validates FTL invariants: every mapped logical page
// points at a valid physical page that points back, and per-block valid
// counts match page states. For tests.
func (d *Device) CheckConsistency() error {
	counts := make([]int32, d.blocks)
	for ci, c := range d.pageState.chunks {
		base := int64(ci) << chunkBits
		for j, st := range c {
			if st != pageValid {
				continue
			}
			pp := base + int64(j)
			counts[pp/int64(d.cfg.PagesPerBlock)]++
			lp := d.reverse.at(pp)
			if lp == unmapped {
				return fmt.Errorf("ssd: valid page %d has no reverse mapping", pp)
			}
			if d.mapping.at(lp) != pp {
				return fmt.Errorf("ssd: page %d reverse-maps to %d whose mapping is %d", pp, lp, d.mapping.at(lp))
			}
		}
	}
	for b := int64(0); b < d.blocks; b++ {
		if counts[b] != d.validInBlock[b] {
			return fmt.Errorf("ssd: block %d valid count %d, recount %d", b, d.validInBlock[b], counts[b])
		}
	}
	for ci, c := range d.mapping.chunks {
		base := int64(ci) << chunkBits
		for j, raw := range c {
			pp := raw + d.mapping.def // entries are stored biased by -def
			if pp == unmapped {
				continue
			}
			if d.pageState.at(pp) != pageValid {
				return fmt.Errorf("ssd: logical %d maps to non-valid physical %d", base+int64(j), pp)
			}
		}
	}
	return nil
}
